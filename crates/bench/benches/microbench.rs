//! Criterion micro-benchmarks for the per-component costs behind Tab. VII:
//! scoring, ranking queries, SRF extraction, canonicalization / filtering,
//! predictor fit+rank, one training epoch and one evaluation pass.

use autosf::filter::DedupFilter;
use autosf::invariance::canonical;
use autosf::predictor::{FeatureKind, PerformancePredictor};
use autosf::space::random_spec;
use autosf::srf::srf;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use kg_core::FilterIndex;
use kg_datagen::{preset, Preset, Scale};
use kg_eval::ranking::evaluate;
use kg_linalg::SeededRng;
use kg_models::blm::classics;
use kg_models::LinkPredictor;
use kg_train::{train, TrainConfig};

fn bench_scoring(c: &mut Criterion) {
    let mut rng = SeededRng::new(1);
    let dsub = 16; // d = 64, the paper's search dimension
    let d = 4 * dsub;
    let spec = classics::complex();
    let mut h = vec![0.0f32; d];
    let mut r = vec![0.0f32; d];
    let mut t = vec![0.0f32; d];
    rng.fill_normal(1.0, &mut h);
    rng.fill_normal(1.0, &mut r);
    rng.fill_normal(1.0, &mut t);
    c.bench_function("blockspec_score_d64", |b| {
        b.iter(|| black_box(spec.score(&h, &r, &t, dsub)))
    });
    let mut q = vec![0.0f32; d];
    c.bench_function("blockspec_tail_query_d64", |b| {
        b.iter(|| {
            spec.tail_query(&h, &r, &mut q, dsub);
            black_box(q[0])
        })
    });
}

fn bench_srf_and_filter(c: &mut Criterion) {
    let mut rng = SeededRng::new(2);
    let specs: Vec<_> = (0..32)
        .map(|_| random_spec(6, &mut rng, 500).expect("valid f6"))
        .collect();
    c.bench_function("srf_f6", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % specs.len();
            black_box(srf(&specs[i]))
        })
    });
    c.bench_function("canonicalize_f6", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % specs.len();
            black_box(canonical(&specs[i]))
        })
    });
    c.bench_function("filter_admit_f6", |b| {
        let mut i = 0;
        b.iter(|| {
            let mut f = DedupFilter::new();
            i = (i + 1) % specs.len();
            black_box(f.admit(&specs[i]))
        })
    });
}

fn bench_predictor(c: &mut Criterion) {
    let mut rng = SeededRng::new(3);
    let data: Vec<_> = (0..24)
        .map(|i| {
            let s = random_spec(6, &mut rng, 500).expect("valid");
            (s, 0.3 + 0.01 * i as f64)
        })
        .collect();
    c.bench_function("predictor_fit_srf_24pts", |b| {
        b.iter(|| {
            let mut p = PerformancePredictor::new(FeatureKind::Srf, 9);
            p.fit_epochs = 100;
            p.fit(&data);
            black_box(p.predict(&data[0].0))
        })
    });
    let mut p = PerformancePredictor::new(FeatureKind::Srf, 9);
    p.fit(&data);
    c.bench_function("predictor_predict_srf", |b| {
        b.iter(|| black_box(p.predict(&data[0].0)))
    });
}

fn bench_train_eval(c: &mut Criterion) {
    let ds = preset(Preset::Wn18rrLike, Scale::Tiny, 4);
    let cfg = TrainConfig { dim: 16, epochs: 1, batch_size: 256, ..Default::default() };
    c.bench_function("train_one_epoch_tiny", |b| {
        b.iter(|| black_box(train(&classics::simple(), &ds, &cfg)))
    });
    let model = train(&classics::simple(), &ds, &TrainConfig { epochs: 5, ..cfg });
    let filter = FilterIndex::from_dataset(&ds);
    c.bench_function("evaluate_valid_tiny", |b| {
        b.iter(|| black_box(evaluate(&model, &ds.valid, &filter)))
    });
    let mut scores = vec![0.0f32; model.n_entities()];
    c.bench_function("score_all_tails_tiny", |b| {
        b.iter(|| {
            model.score_tails(0, 0, &mut scores);
            black_box(scores[0])
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_scoring, bench_srf_and_filter, bench_predictor, bench_train_eval
}
criterion_main!(benches);

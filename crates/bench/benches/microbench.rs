//! Self-harnessed micro-benchmarks (no external bench framework — the
//! build runs offline), focused on the batched scoring engine.
//!
//! The headline case compares filtered-ranking throughput of the per-query
//! GEMV path (`evaluate_sequential`) against the batched GEMM path
//! (`evaluate`) at the paper's search dimension (d = 64) on a 10k-entity
//! table — the workload the engine was built for. The serving section
//! measures the same workload through `kg-serve`'s request-level facade,
//! one-at-a-time dispatch (`block(1)`) vs 64-query batching. The kernel
//! section A/Bs the explicit-SIMD backend against the forced-scalar
//! reference (`KG_FORCE_SCALAR` would pin the whole process; here the
//! public `*_scalar` entry points measure the fallback directly), and the
//! `rank_100k_d64` scenario stretches the entity table past the shared
//! cache — the regime the sharding layer was built for — with 2/4/8-worker
//! scaling rows for the pipelined sharded engine. `policy=fast` rows A/B
//! the relaxed FMA tier (`KernelPolicy::Fast`) against the exact kernels
//! on both the raw 64-query GEMM and the 100k ranking workload, with the
//! measured rank-inversion rate recorded in the meta. The training section
//! times one multi-class epoch on the same 10k-entity scenario through the
//! sequential trainer and through the cooperative sharded crew at 1/2/4
//! threads, with the 4-thread 2× gate armed only on runners with >= 4
//! logical cores. Ranking rows calibrate
//! their iteration counts to a minimum wall-time per repetition instead of
//! hard-coding them, so no gate ever compares single noisy samples.
//! Results are printed and written to `BENCH_microbench.json` — rows plus
//! a metadata record of the detected CPU features, the dispatched kernel
//! backend, and the logical/physical core counts, so trajectories (and
//! scaling efficiencies) compared across machines are interpretable.
//!
//! Run with `cargo bench -p bench`.

use kg_core::{Dataset, FilterIndex, Triple};
use kg_eval::ranking::{
    evaluate, evaluate_parallel, evaluate_parallel_chunked, evaluate_parallel_with,
    evaluate_sequential, evaluate_with, filtered_rank, top_k,
};
use kg_eval::two_stage::{evaluate_two_stage, quantise_scorer, two_stage_outcomes, TwoStageConfig};
use kg_linalg::{gemm, simd, vecops, KernelPolicy, Mat, SeededRng};
use kg_models::blm::classics;
use kg_models::{BatchScorer, BatchScratch, BlmModel, Embeddings, LinkPredictor};
use kg_serve::{KgEngine, RequestClass, SubmitError};
use kg_train::{train, TrainConfig, Trainer};
use serde::Serialize;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// One benchmark row of the JSON artefact.
#[derive(Debug, Serialize)]
struct BenchRow {
    name: String,
    iters: usize,
    secs_per_iter: f64,
    throughput: Option<f64>,
    throughput_unit: Option<String>,
    /// Which kernel backend this row's hot path dispatched to — `avx2` or
    /// `scalar` for rows that touch the dispatched kernels (the per-query
    /// ranking baseline counts: its GEMV is undispatched but its rank
    /// sweep is the dispatched `count_cmp`), explicitly `scalar` for the
    /// forced-scalar A/B rows, `None` for rows that never enter them
    /// (e.g. the raw GEMV loop and the single-query scoring adapter).
    backend: Option<String>,
}

/// Provenance for cross-machine trajectory comparisons: which CPU features
/// the runner detected, which backend the one-time dispatch selected, and
/// how many cores the runner actually has — scaling-efficiency ratios are
/// uninterpretable without the core counts.
#[derive(Debug, Serialize)]
struct BenchMeta {
    kernel_backend: String,
    /// Which kernel `KernelPolicy::Fast` resolves to on this runner
    /// (`avx2+fma` when FMA is detected, else it degrades to the exact
    /// backend) — the provenance for the `*_fast` rows.
    fast_kernel: String,
    /// Measured adjacent-pair rank-inversion rate of fast vs exact scores
    /// on the 64-query × 10k kernel block: sort each query's entities by
    /// exact score, count adjacent pairs the fast scores order the other
    /// way. Exactly 0.0 when `Fast` degrades to the exact backend.
    fast_rank_inversion_rate: f64,
    avx2_detected: bool,
    fma_detected: bool,
    force_scalar_env: bool,
    /// Logical CPUs visible to this process (hyperthreads included).
    logical_cores: usize,
    /// Distinct physical cores (from `/proc/cpuinfo`; falls back to the
    /// logical count when the topology is unreadable).
    physical_cores: usize,
    /// The million-entity two-stage scenario's quality/size numbers —
    /// recall and table footprints belong with the provenance, not the
    /// timing rows, because they are what make the timing rows honest.
    two_stage_1m_d64: TwoStageBenchMeta,
}

/// Quality and footprint record of the `rank_1M_d64` two-stage scenario:
/// how much smaller the coarse tier is, how much of the exact top-10 the
/// candidate set recalls at each budget, and how many answers certified
/// their own exactness at the gated budget.
#[derive(Debug, Serialize)]
struct TwoStageBenchMeta {
    /// f32 entity table the exact path streams per query (bytes).
    exact_table_bytes: u64,
    /// i8 code mirror the coarse pass streams instead (bytes).
    coarse_codes_bytes: u64,
    /// Per-row scales + integer L1 norms riding along (bytes).
    coarse_aux_bytes: u64,
    /// Ranking queries measured (2 per triple).
    queries: usize,
    /// Wall-clock speedup of two-stage over the exact 4-worker path.
    speedup_c64: f64,
    speedup_c256: f64,
    speedup_c1024: f64,
    /// Mean recall@C of the exact top-10 inside the candidate set.
    recall_c64: f64,
    recall_c256: f64,
    recall_c1024: f64,
    /// Queries whose C=1024 answer certified its own exactness.
    certified_c1024: usize,
}

/// Distinct `(physical id, core id)` pairs from `/proc/cpuinfo`, the
/// physical-core count behind the logical CPUs; `logical` when the
/// topology is unreadable (non-Linux, restricted /proc).
fn physical_cores(logical: usize) -> usize {
    let Ok(info) = std::fs::read_to_string("/proc/cpuinfo") else {
        return logical;
    };
    let mut package = String::new();
    let mut cores = std::collections::HashSet::new();
    for line in info.lines() {
        let value = || line.split(':').nth(1).map(|v| v.trim().to_string()).unwrap_or_default();
        if line.starts_with("physical id") {
            package = value();
        } else if line.starts_with("core id") {
            cores.insert((package.clone(), value()));
        }
    }
    if cores.is_empty() {
        logical
    } else {
        cores.len()
    }
}

/// The whole JSON artefact: metadata first, then the measurement rows.
#[derive(Debug, Serialize)]
struct BenchReport {
    meta: BenchMeta,
    rows: Vec<BenchRow>,
}

/// Best-of-5 wall-clock seconds per iteration of `f` — best-of smooths
/// scheduler noise on shared CI runners, where the 2× speedup gate runs.
fn time_best<R>(iters: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        best = best.min(start.elapsed().as_secs_f64() / iters as f64);
    }
    best
}

/// Minimum wall-clock one timed repetition must spend: enough that a
/// single scheduler hiccup cannot dominate the measurement the gates
/// compare.
const MIN_REP_SECS: f64 = 0.05;

/// [`time_best`] with the iteration count **calibrated to wall-time**
/// instead of hard-coded: one warm-up run is timed and the count chosen so
/// each best-of repetition spends at least [`MIN_REP_SECS`]. Returns
/// `(iters, secs_per_iter)`. This is what keeps the ranking gates honest —
/// fixed counts rot as kernels speed up (the 100k rows gated on
/// `iters: 1`, a single noisy sample, before calibration).
fn time_calibrated<R>(mut f: impl FnMut() -> R) -> (usize, f64) {
    let start = Instant::now();
    black_box(f());
    let once = start.elapsed().as_secs_f64().max(1e-9);
    let iters = ((MIN_REP_SECS / once).ceil() as usize).clamp(1, 1024);
    (iters, time_best(iters, f))
}

fn main() {
    // Log the dispatch decision up front (the CI microbench job greps for
    // this line) and freeze it for the row/meta provenance fields.
    let backend = simd::active_backend().name();
    let avx2_detected = simd::avx2_available();
    #[cfg(target_arch = "x86_64")]
    let fma_detected = std::arch::is_x86_feature_detected!("fma");
    #[cfg(not(target_arch = "x86_64"))]
    let fma_detected = false;
    let logical_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let physical_cores = physical_cores(logical_cores);
    println!(
        "cpu features: avx2={avx2_detected} fma={fma_detected} (is_x86_feature_detected) → \
         kernel backend: {backend}{}",
        if simd::force_scalar_requested() { " (forced scalar via KG_FORCE_SCALAR)" } else { "" }
    );
    let fast_kernel = KernelPolicy::Fast.resolve();
    let fast_name = fast_kernel.name();
    let fast_is_fma = fast_kernel == simd::ResolvedKernel::Avx2Fma;
    println!(
        "kernel policies: default={} (env) → {}, fast → {fast_name}",
        KernelPolicy::default_from_env().name(),
        KernelPolicy::default_from_env().resolve().name(),
    );
    println!("cores: {logical_cores} logical / {physical_cores} physical");

    let mut rows: Vec<BenchRow> = Vec::new();
    // `backend`: None for rows that never enter the dispatched kernels,
    // Some(name) for rows that do (the active backend, or "scalar" for the
    // explicit fallback rows).
    let mut record = |name: &str,
                      iters: usize,
                      secs: f64,
                      thr: Option<(f64, &str)>,
                      row_backend: Option<&str>| {
        println!(
            "{name:<42} {:>12.3} µs/iter{}",
            secs * 1e6,
            thr.map(|(v, u)| format!("  ({v:.0} {u})")).unwrap_or_default()
        );
        rows.push(BenchRow {
            name: name.to_string(),
            iters,
            secs_per_iter: secs,
            throughput: thr.map(|(v, _)| v),
            throughput_unit: thr.map(|(_, u)| u.to_string()),
            backend: row_backend.map(str::to_string),
        });
    };

    // ---- headline: filtered ranking, per-query GEMV vs batched GEMM ----
    // 10k entities at the paper's search dimension d = 64.
    let n_entities = 10_000;
    let dim = 64;
    let n_triples = 256;
    let mut rng = SeededRng::new(2020);
    let emb = Embeddings::init(n_entities, 4, dim, &mut rng);
    let model = BlmModel::new(classics::complex(), emb);
    let triples: Vec<Triple> = (0..n_triples)
        .map(|_| {
            Triple::new(
                rng.below(n_entities) as u32,
                rng.below(4) as u32,
                rng.below(n_entities) as u32,
            )
        })
        .collect();
    let filter = FilterIndex::build(&triples);
    let queries_per_iter = (2 * n_triples) as f64;

    let (seq_iters, seq) = time_calibrated(|| evaluate_sequential(&model, &triples, &filter));
    // The per-query baseline's scoring GEMV never dispatches, but its
    // filtered-rank sweep is the dispatched `count_cmp` — so the row is
    // backend-dependent and tagged as such.
    record(
        "rank_10k_d64_per_query_gemv",
        seq_iters,
        seq,
        Some((queries_per_iter / seq, "queries/s")),
        Some(backend),
    );
    let (bat_iters, bat) = time_calibrated(|| evaluate(&model, &triples, &filter));
    record(
        "rank_10k_d64_batched_gemm",
        bat_iters,
        bat,
        Some((queries_per_iter / bat, "queries/s")),
        Some(backend),
    );
    let speedup = seq / bat;
    println!("{:<42} {speedup:>11.2}x", "batched ranking speedup");
    // Bit-identity gates pin Exact explicitly: under `KG_KERNEL_POLICY=fast`
    // the timed rows above may relax rounding, but the exact tier must
    // still reproduce the per-query reference bit for bit.
    assert_eq!(
        evaluate_with(KernelPolicy::Exact, &model, &triples, &filter),
        evaluate_sequential(&model, &triples, &filter),
        "batched and per-query ranking diverged"
    );

    // ---- parallel ranking: entity-table-sharded vs triple-chunked ----
    // Sharded workers cooperate on one query block (each owns a contiguous
    // entity shard that stays resident in its private cache); chunked
    // workers each re-stream the whole table for their own triple chunk.
    // Calibrated iterations × best-of-5: multithreaded timings are noisier
    // than the single-threaded ones, and the parity gate below needs a
    // stable ratio.
    let mut sharded_vs_chunked_at_4 = None;
    for threads in [2usize, 4, 8] {
        let (chunked_iters, chunked) =
            time_calibrated(|| evaluate_parallel_chunked(&model, &triples, &filter, threads));
        record(
            &format!("rank_10k_d64_chunked_par{threads}"),
            chunked_iters,
            chunked,
            Some((queries_per_iter / chunked, "queries/s")),
            Some(backend),
        );
        let (sharded_iters, sharded) =
            time_calibrated(|| evaluate_parallel(&model, &triples, &filter, threads));
        record(
            &format!("rank_10k_d64_sharded_par{threads}"),
            sharded_iters,
            sharded,
            Some((queries_per_iter / sharded, "queries/s")),
            Some(backend),
        );
        println!(
            "{:<42} {:>11.2}x",
            format!("sharded vs chunked at {threads} threads"),
            chunked / sharded
        );
        if threads == 4 {
            sharded_vs_chunked_at_4 = Some(chunked / sharded);
        }
    }
    let sharded_vs_chunked_at_4 = sharded_vs_chunked_at_4.expect("4-thread case measured");
    assert_eq!(
        evaluate_parallel_with(KernelPolicy::Exact, &model, &triples, &filter, 4),
        evaluate_sequential(&model, &triples, &filter),
        "sharded parallel ranking diverged from the sequential reference"
    );

    // ---- large tables: the entity table outgrows the shared cache ----
    // 100k entities × d = 64 is a ~25.6 MiB table — past the L2/L3 of the
    // CI runners — the regime entity-sharding was built for: each worker's
    // shard stays resident in its private cache while chunked workers
    // re-stream all 25 MiB per triple chunk. Recorded for trend-watching
    // (wall-clock ratios at this size are runner-dependent); the
    // bit-identity assert is the hard gate.
    let big_entities = 100_000;
    let big_triples: Vec<Triple> = (0..64)
        .map(|_| {
            Triple::new(
                rng.below(big_entities) as u32,
                rng.below(4) as u32,
                rng.below(big_entities) as u32,
            )
        })
        .collect();
    let big_emb = Embeddings::init(big_entities, 4, dim, &mut rng);
    let big_model = BlmModel::new(classics::complex(), big_emb);
    let big_filter = FilterIndex::build(&big_triples);
    let big_queries = (2 * big_triples.len()) as f64;
    let (big_batched_iters, big_batched) =
        time_calibrated(|| evaluate(&big_model, &big_triples, &big_filter));
    record(
        "rank_100k_d64_batched_gemm",
        big_batched_iters,
        big_batched,
        Some((big_queries / big_batched, "queries/s")),
        Some(backend),
    );
    // The same workload under `policy=fast`: ranking at this size is
    // largely memory-bound, so the ratio is recorded for trend-watching
    // (the compute-bound fast-vs-exact gate lives on the raw kernel row).
    let (big_fast_iters, big_fast) = time_calibrated(|| {
        evaluate_with(KernelPolicy::Fast, &big_model, &big_triples, &big_filter)
    });
    record(
        "rank_100k_d64_batched_gemm_fast",
        big_fast_iters,
        big_fast,
        Some((big_queries / big_fast, "queries/s")),
        Some(fast_name),
    );
    println!("{:<42} {:>11.2}x", "100k batched fast vs exact", big_batched / big_fast);
    let (big_chunked_iters, big_chunked) =
        time_calibrated(|| evaluate_parallel_chunked(&big_model, &big_triples, &big_filter, 4));
    record(
        "rank_100k_d64_chunked_par4",
        big_chunked_iters,
        big_chunked,
        Some((big_queries / big_chunked, "queries/s")),
        Some(backend),
    );
    // Pipelined sharded scaling at 2/4/8 workers, each with an explicit
    // scaling row: speedup over the single-thread batched path, and the
    // per-worker efficiency that number implies. The meta's core counts
    // are what make these interpretable — an 8-worker row on a 4-core
    // runner *should* show flat speedup.
    let mut big_sharded_par4_speedup = None;
    for threads in [2usize, 4, 8] {
        let (iters, sharded) =
            time_calibrated(|| evaluate_parallel(&big_model, &big_triples, &big_filter, threads));
        record(
            &format!("rank_100k_d64_sharded_par{threads}"),
            iters,
            sharded,
            Some((big_queries / sharded, "queries/s")),
            Some(backend),
        );
        let speedup = big_batched / sharded;
        record(
            &format!("rank_100k_d64_scaling_par{threads}"),
            iters,
            sharded,
            Some((speedup, "x vs 1-thread batched")),
            Some(backend),
        );
        println!(
            "{:<42} {speedup:>11.2}x ({:.0}% / worker)",
            format!("100k sharded par{threads} vs single-thread"),
            100.0 * speedup / threads as f64
        );
        if threads == 4 {
            big_sharded_par4_speedup = Some(speedup);
        }
    }
    let big_sharded_par4_speedup = big_sharded_par4_speedup.expect("4-thread case measured");
    // And the crew under `policy=fast` — the full serving-tier A/B.
    let (big_sharded_fast_iters, big_sharded_fast) = time_calibrated(|| {
        evaluate_parallel_with(KernelPolicy::Fast, &big_model, &big_triples, &big_filter, 4)
    });
    record(
        "rank_100k_d64_sharded_par4_fast",
        big_sharded_fast_iters,
        big_sharded_fast,
        Some((big_queries / big_sharded_fast, "queries/s")),
        Some(fast_name),
    );
    assert_eq!(
        evaluate_parallel_with(KernelPolicy::Exact, &big_model, &big_triples, &big_filter, 4),
        evaluate_with(KernelPolicy::Exact, &big_model, &big_triples, &big_filter),
        "sharded parallel ranking diverged from batched at 100k entities"
    );

    // ---- million entities: exact ranking vs the two-stage coarse tier ----
    // 1M × d = 64 is a 256 MiB f32 table — every exact query streams all of
    // it. The two-stage path scores everything through the 64 MiB i8 mirror
    // instead, keeps the top-C candidates, and rescores only those with the
    // exact f32 kernels. Both sides run 4 workers so the comparison is
    // tier vs tier, not serial vs parallel. Alongside wall-clock, the
    // scenario measures what the speedup costs: recall@C of the exact
    // top-10 inside the candidate set (gated at the C=1024 budget) and the
    // per-query certification rate; certified answers are additionally
    // checked bit-identical against the reference rank.
    let m1_entities = 1_000_000usize;
    let m1_triples: Vec<Triple> = (0..16)
        .map(|_| {
            Triple::new(
                rng.below(m1_entities) as u32,
                rng.below(4) as u32,
                rng.below(m1_entities) as u32,
            )
        })
        .collect();
    let m1_model =
        BlmModel::new(classics::complex(), Embeddings::init(m1_entities, 4, dim, &mut rng));
    let m1_filter = FilterIndex::build(&m1_triples);
    let m1_queries = 2 * m1_triples.len();
    let m1_quant = quantise_scorer(&m1_model);
    let (m1_exact_iters, m1_exact) =
        time_calibrated(|| evaluate_parallel(&m1_model, &m1_triples, &m1_filter, 4));
    record(
        "rank_1M_d64_exact_par4",
        m1_exact_iters,
        m1_exact,
        Some((m1_queries as f64 / m1_exact, "queries/s")),
        Some(backend),
    );
    let budgets = [64usize, 256, 1024];
    let mut m1_speedups = [0.0f64; 3];
    let mut m1_outcomes = Vec::with_capacity(budgets.len());
    for (ci, &c) in budgets.iter().enumerate() {
        let cfg = TwoStageConfig::new(c).with_threads(4);
        let (iters, secs) = time_calibrated(|| {
            evaluate_two_stage(&m1_model, m1_quant.view(), &m1_triples, &m1_filter, cfg)
        });
        record(
            &format!("rank_1M_d64_two_stage_c{c}_par4"),
            iters,
            secs,
            Some((m1_queries as f64 / secs, "queries/s")),
            Some(backend),
        );
        m1_speedups[ci] = m1_exact / secs;
        println!("{:<42} {:>11.2}x", format!("two-stage C={c} vs exact par4"), m1_speedups[ci]);
        m1_outcomes.push(two_stage_outcomes(
            &m1_model,
            m1_quant.view(),
            &m1_triples,
            &m1_filter,
            cfg,
        ));
    }
    // Quality sweep: one reference score row per query (untimed) feeds the
    // recall@C accounting for all three budgets and the certified ⇒
    // bit-identical gate.
    let mut m1_row = vec![0.0f32; m1_entities];
    let mut m1_recall_sum = [0.0f64; 3];
    let mut m1_certified_gated = 0usize;
    let mut m1_recall_per_query = Vec::with_capacity(m1_queries);
    for (qi, tr) in m1_triples.iter().flat_map(|t| [(t, true), (t, false)]).enumerate() {
        let (t, tails) = tr;
        let (target, known) = if tails {
            m1_model.score_tails(t.h.idx(), t.r.idx(), &mut m1_row);
            (t.t.idx(), m1_filter.tails(t.h, t.r))
        } else {
            m1_model.score_heads(t.r.idx(), t.t.idx(), &mut m1_row);
            (t.h.idx(), m1_filter.heads(t.r, t.t))
        };
        let top10 = top_k(&m1_row, 10);
        let mut reference_rank = None;
        for (ci, outcomes) in m1_outcomes.iter().enumerate() {
            let out = &outcomes[qi];
            let hit = top10.iter().filter(|(e, _)| out.candidates.contains(&(*e as u32))).count();
            let recall = hit as f64 / top10.len() as f64;
            m1_recall_sum[ci] += recall;
            if ci == budgets.len() - 1 {
                m1_recall_per_query.push(recall);
                if out.certified {
                    m1_certified_gated += 1;
                }
            }
            if out.certified {
                let want =
                    *reference_rank.get_or_insert_with(|| filtered_rank(&m1_row, target, known));
                assert_eq!(
                    out.rank.to_bits(),
                    want.to_bits(),
                    "certified two-stage rank diverged at 1M (query {qi}, C={})",
                    budgets[ci]
                );
            }
        }
    }
    let m1_recall = m1_recall_sum.map(|s| s / m1_queries as f64);
    println!(
        "{:<42} C=64 {:.4}  C=256 {:.4}  C=1024 {:.4}",
        "two-stage recall@C of exact top-10", m1_recall[0], m1_recall[1], m1_recall[2]
    );
    println!(
        "two-stage per-query recall@1024 ({} certified/{} queries): {m1_recall_per_query:?}",
        m1_certified_gated, m1_queries
    );
    let two_stage_1m_d64 = TwoStageBenchMeta {
        exact_table_bytes: (m1_entities * dim * 4) as u64,
        coarse_codes_bytes: (m1_entities * dim) as u64,
        coarse_aux_bytes: (m1_entities * 8) as u64,
        queries: m1_queries,
        speedup_c64: m1_speedups[0],
        speedup_c256: m1_speedups[1],
        speedup_c1024: m1_speedups[2],
        recall_c64: m1_recall[0],
        recall_c256: m1_recall[1],
        recall_c1024: m1_recall[2],
        certified_c1024: m1_certified_gated,
    };
    let m1_best_speedup = m1_speedups.iter().cloned().fold(0.0f64, f64::max);
    let m1_recall_gated = m1_recall[2];
    drop(m1_outcomes);
    drop(m1_quant);
    drop(m1_model);
    drop(m1_row);

    // ---- serving facade: one-at-a-time vs 64-query batched dispatch ----
    // The same 10k-entity ranking workload through kg-serve's request-level
    // API. block(1) dispatches every query alone (the per-query baseline an
    // unbatched server would run); block(64) lets the queue accumulate the
    // pending tickets into full GEMM blocks. One worker each, so the gap is
    // pure batching, not parallelism.
    let serve_queries: Vec<(usize, usize, usize)> =
        triples.iter().map(|tr| (tr.h.idx(), tr.r.idx(), tr.t.idx())).collect();
    let engine_1 = KgEngine::with_filter(model.clone(), filter.clone()).threads(1).block(1).build();
    let engine_64 =
        KgEngine::with_filter(model.clone(), filter.clone()).threads(1).block(64).build();
    let serve_unbatched = time_best(3, || {
        // Sequential request-response round trips: nothing to batch.
        serve_queries.iter().map(|&(h, r, t)| engine_1.rank_tail(h, r, t)).sum::<f64>()
    });
    record(
        "serve_rank_10k_d64_batch1",
        3,
        serve_unbatched,
        Some((n_triples as f64 / serve_unbatched, "queries/s")),
        Some(backend),
    );
    let serve_batched = time_best(3, || {
        // Submit every ticket up front; the dispatcher drains the queue in
        // 64-row blocks.
        let tickets: Vec<_> = serve_queries
            .iter()
            .map(|&(h, r, t)| engine_64.submit_rank_tail(h, r, t).expect("admitted"))
            .collect();
        tickets.into_iter().map(|ticket| ticket.wait()).sum::<f64>()
    });
    record(
        "serve_rank_10k_d64_batch64",
        3,
        serve_batched,
        Some((n_triples as f64 / serve_batched, "queries/s")),
        Some(backend),
    );
    let serve_speedup = serve_unbatched / serve_batched;
    println!("{:<42} {serve_speedup:>11.2}x", "batched serving speedup");
    // Batching must never change an answer: submit the whole query set to
    // the batching engine up front (so its dispatcher really cuts
    // multi-query blocks), then compare every rank against one-at-a-time
    // dispatch.
    let batched_ranks: Vec<_> = serve_queries
        .iter()
        .map(|&(h, r, t)| engine_64.submit_rank_tail(h, r, t).expect("admitted"))
        .collect();
    for (ticket, &(h, r, t)) in batched_ranks.into_iter().zip(&serve_queries) {
        assert_eq!(
            ticket.wait(),
            engine_1.rank_tail(h, r, t),
            "served rank diverged between block sizes"
        );
    }

    // ---- mixed-direction serving: serialised vs split-crew dispatch ----
    // 50/50 tail-head traffic, arrival-skewed (the tail backlog lands
    // first) — the ROADMAP's "mixed workloads serialise by direction"
    // pathology. The serialised dispatcher (split_crew(false), the PR 3
    // behaviour) drains oldest-class-first, so the first head answer waits
    // behind the *entire* tail backlog; the split-crew dispatcher hands
    // heads to their own sub-crew immediately. The gate is on that
    // head-of-line latency: it is the property dual-direction draining
    // exists to bound, and it holds on any core count (total compute is
    // conserved, so a single-core runner shows no throughput gap — the
    // drain rows below are recorded for trend-watching, not gated).
    let mixed_half = 256usize;
    let engine_serial = KgEngine::with_filter(model.clone(), filter.clone())
        .threads(4)
        .block(64)
        .split_crew(false)
        .build();
    let engine_split = KgEngine::with_filter(model.clone(), filter.clone())
        .threads(4)
        .block(64)
        .split_crew(true)
        .build();
    let mixed_queries: Vec<(usize, usize, usize)> = serve_queries[..mixed_half].to_vec();
    // (first-head latency, full-drain seconds, sum of all ranks)
    let run_mixed = |engine: &KgEngine| {
        let start = Instant::now();
        let tails: Vec<_> = mixed_queries
            .iter()
            .map(|&(h, r, t)| engine.submit_rank_tail(h, r, t).expect("admitted"))
            .collect();
        let heads: Vec<_> = mixed_queries
            .iter()
            .map(|&(h, r, t)| engine.submit_rank_head(h, r, t).expect("admitted"))
            .collect();
        let mut heads = heads.into_iter();
        let first_head = heads.next().expect("one head ticket").wait();
        let first_head_latency = start.elapsed().as_secs_f64();
        let mut rank_sum = first_head;
        rank_sum += heads.map(|ticket| ticket.wait()).sum::<f64>();
        rank_sum += tails.into_iter().map(|ticket| ticket.wait()).sum::<f64>();
        (first_head_latency, start.elapsed().as_secs_f64(), rank_sum)
    };
    let mut serial_first = f64::INFINITY;
    let mut serial_drain = f64::INFINITY;
    let mut split_first = f64::INFINITY;
    let mut split_drain = f64::INFINITY;
    let mut serial_ranks = 0.0;
    let mut split_ranks = 0.0;
    for _ in 0..5 {
        let (first, drain, ranks) = run_mixed(&engine_serial);
        serial_first = serial_first.min(first);
        serial_drain = serial_drain.min(drain);
        serial_ranks = ranks;
        let (first, drain, ranks) = run_mixed(&engine_split);
        split_first = split_first.min(first);
        split_drain = split_drain.min(drain);
        split_ranks = ranks;
    }
    assert_eq!(serial_ranks, split_ranks, "split-crew dispatch changed an answer");
    record("serve_mixed_10k_d64_serialised_first_head", 5, serial_first, None, Some(backend));
    record("serve_mixed_10k_d64_split_first_head", 5, split_first, None, Some(backend));
    let mixed_total = (2 * mixed_half) as f64;
    record(
        "serve_mixed_10k_d64_serialised_drain",
        5,
        serial_drain,
        Some((mixed_total / serial_drain, "queries/s")),
        Some(backend),
    );
    record(
        "serve_mixed_10k_d64_split_drain",
        5,
        split_drain,
        Some((mixed_total / split_drain, "queries/s")),
        Some(backend),
    );
    let split_hol_speedup = serial_first / split_first;
    println!("{:<42} {split_hol_speedup:>11.2}x", "split-crew head-of-line speedup");
    let split_stats = engine_split.stats();
    assert!(
        split_stats.split_blocks > 0,
        "mixed backlog never engaged split-crew draining: {split_stats:?}"
    );
    drop(engine_serial);
    drop(engine_split);

    // ---- overload admission: bounded queue + deadline at 2x capacity ----
    // Phase 1 (baseline): the same 10k tail-rank workload through a
    // one-worker engine in a pipelined closed loop — a bounded window of
    // outstanding tickets keeps the crew saturated without ever building
    // a backlog beyond the engine's own pipeline. Its settle-latency
    // histogram is the uncongested distribution. Sustained capacity is
    // taken from the batched serving row above — the closed loop's own
    // wall-clock undercounts it on small runners, where the waiting
    // client contends with the crew for cores, and an undercounted
    // capacity would make "2x" not actually overload.
    let window = 128usize;
    let capacity = n_triples as f64 / serve_batched;
    let engine_base =
        KgEngine::with_filter(model.clone(), filter.clone()).threads(1).block(64).build();
    let mut in_flight: std::collections::VecDeque<kg_serve::RankTicket> =
        std::collections::VecDeque::with_capacity(window);
    for &(h, r, t) in &serve_queries {
        if in_flight.len() == window {
            let front: f64 = in_flight.pop_front().expect("window non-empty").wait();
            black_box(front);
        }
        in_flight.push_back(engine_base.submit_rank_tail(h, r, t).expect("uncongested admit"));
    }
    for ticket in in_flight {
        black_box(ticket.wait());
    }
    let base_p99 = engine_base
        .stats()
        .latency_tails
        .quantile(0.99)
        .expect("uncongested histogram is non-empty");
    record(
        "serve_overload_10k_d64_uncongested_p99",
        1,
        base_p99.as_secs_f64(),
        Some((capacity, "queries/s")),
        Some(backend),
    );
    drop(engine_base);

    // Phase 2 (overload): arrivals paced open-loop at 2x that capacity
    // against an engine with a one-block tail cap and a deadline of a
    // quarter of the uncongested p99 — the pipeline already holds two
    // blocks in flight (that is what the uncongested p99 measures), so
    // the deadline budget must stay well inside it for admitted settle
    // latency to stay flat. Over-capacity submissions shed at the door
    // (no retry — the bench client fails fast); whatever the cap admits
    // but the crew cannot reach in time expires typed. Best-of-3 runs on
    // the gated quantile, the time_best convention.
    let deadline = (base_p99 / 4).max(Duration::from_micros(50));
    let pace_chunk = 32usize;
    let chunk_every = Duration::from_secs_f64(pace_chunk as f64 / (2.0 * capacity));
    let mut overload_p99 = Duration::MAX;
    let mut overload_secs = f64::INFINITY;
    let mut overload_stats = None;
    for _ in 0..3 {
        let engine_bounded = KgEngine::with_filter(model.clone(), filter.clone())
            .threads(1)
            .block(64)
            .max_queued(RequestClass::Tails, 64)
            .deadline(deadline)
            .build();
        let mut admitted = Vec::with_capacity(serve_queries.len());
        let mut shed = 0u64;
        let run_start = Instant::now();
        for (i, arrivals) in serve_queries.chunks(pace_chunk).enumerate() {
            for &(h, r, t) in arrivals {
                match engine_bounded.submit_rank_tail(h, r, t) {
                    Ok(ticket) => admitted.push(ticket),
                    Err(SubmitError::Shed { .. }) => shed += 1,
                }
            }
            // Absolute schedule so sleep overshoot never lowers the
            // offered rate below 2x.
            let next = chunk_every * (i as u32 + 1);
            if let Some(nap) = next.checked_sub(run_start.elapsed()) {
                std::thread::sleep(nap);
            }
        }
        let n_admitted = admitted.len() as u64;
        let (mut answered, mut expired) = (0u64, 0u64);
        for ticket in admitted {
            match ticket.wait_result() {
                Ok(rank) => {
                    assert!(rank >= 1.0);
                    answered += 1;
                }
                Err(err) if err.is_expired() => expired += 1,
                Err(err) => panic!("overload run may only shed or expire, got: {err}"),
            }
        }
        let secs = run_start.elapsed().as_secs_f64();
        let stats = engine_bounded.stats();
        // The cap + deadline bound the queue: every admitted ticket
        // settled, the counters account for each exactly once, nothing
        // is left queued.
        assert_eq!(answered + expired, n_admitted, "an admitted ticket did not settle");
        assert_eq!(stats.queries_shed, shed, "shed accounting diverged from the client's count");
        assert_eq!(stats.queries_served + stats.queries_expired, n_admitted);
        assert_eq!(stats.queries_failed, 0, "overload must not fail requests");
        assert_eq!(stats.depth_score + stats.depth_tails + stats.depth_heads, 0);
        assert!(shed > 0, "2x-capacity arrivals against a one-block cap never shed");
        let p99 = stats.latency_tails.quantile(0.99).expect("overload histogram is non-empty");
        if p99 < overload_p99 {
            overload_p99 = p99;
            overload_secs = secs;
            overload_stats = Some((answered, expired, shed));
        }
    }
    let (ov_answered, ov_expired, ov_shed) = overload_stats.expect("three overload runs");
    record(
        "serve_overload_10k_d64",
        3,
        overload_secs,
        Some((ov_answered as f64 / overload_secs, "answered/s")),
        Some(backend),
    );
    record(
        "serve_overload_10k_d64_admitted_p99",
        3,
        overload_p99.as_secs_f64(),
        None,
        Some(backend),
    );
    let overload_p99_ratio = overload_p99.as_secs_f64() / base_p99.as_secs_f64();
    println!(
        "{:<42} {overload_p99_ratio:>11.2}x (answered {ov_answered}, expired {ov_expired}, \
         shed {ov_shed})",
        "overload admitted p99 vs uncongested"
    );

    // ---- raw kernels: 64-query block against the 10k × 64 table ----
    // Dispatched (AVX2 where detected) vs forced-scalar A/B for each hot
    // kernel. The explicit `*_scalar` entry points measure the fallback
    // without re-launching the process under KG_FORCE_SCALAR; both
    // backends produce bit-identical output, so the rows differ only in
    // time.
    let block = 64usize;
    let mut q = Mat::zeros(block, dim);
    rng.fill_normal(1.0, q.as_mut_slice());
    let mut scores = vec![0.0f32; block * n_entities];
    let kernel_gemv = time_best(4, || {
        for i in 0..block {
            model.emb.ent.gemv(q.row(i), &mut scores[i * n_entities..(i + 1) * n_entities]);
        }
        scores[0]
    });
    record("kernel_64q_gemv_loop", 4, kernel_gemv, None, None);
    let kernel_gemm = time_best(4, || {
        gemm::gemm_nt(q.as_slice(), block, dim, &model.emb.ent, &mut scores);
        scores[0]
    });
    record("kernel_64q_gemm_nt", 4, kernel_gemm, None, Some(backend));
    // The relaxed tier on the same block: FMA + multi-chain accumulation.
    let kernel_gemm_fast = time_best(4, || {
        gemm::gemm_nt_with(
            KernelPolicy::Fast,
            q.as_slice(),
            block,
            dim,
            &model.emb.ent,
            &mut scores,
        );
        scores[0]
    });
    record("kernel_64q_gemm_nt_fast", 4, kernel_gemm_fast, None, Some(fast_name));
    let gemm_nt_fast_speedup = kernel_gemm / kernel_gemm_fast;
    println!("{:<42} {gemm_nt_fast_speedup:>11.2}x", "gemm_nt fast vs exact");
    // What the fast rows cost in ordering: sort each query's entities by
    // exact score, count adjacent pairs the fast scores flip. Recorded in
    // the meta so the speedup rows carry their own quality price tag.
    let mut exact_scores = vec![0.0f32; block * n_entities];
    gemm::gemm_nt_with(
        KernelPolicy::Exact,
        q.as_slice(),
        block,
        dim,
        &model.emb.ent,
        &mut exact_scores,
    );
    let mut fast_scores = vec![0.0f32; block * n_entities];
    gemm::gemm_nt_with(
        KernelPolicy::Fast,
        q.as_slice(),
        block,
        dim,
        &model.emb.ent,
        &mut fast_scores,
    );
    let mut inversions = 0u64;
    let mut adjacent_pairs = 0u64;
    let mut order: Vec<usize> = Vec::new();
    for i in 0..block {
        let exact_row = &exact_scores[i * n_entities..(i + 1) * n_entities];
        let fast_row = &fast_scores[i * n_entities..(i + 1) * n_entities];
        order.clear();
        order.extend(0..n_entities);
        order.sort_unstable_by(|&x, &y| exact_row[y].total_cmp(&exact_row[x]).then(x.cmp(&y)));
        for pair in order.windows(2) {
            adjacent_pairs += 1;
            if fast_row[pair[0]] < fast_row[pair[1]] {
                inversions += 1;
            }
        }
    }
    let fast_rank_inversion_rate = inversions as f64 / adjacent_pairs as f64;
    println!(
        "{:<42} {fast_rank_inversion_rate:>12.2e} ({inversions}/{adjacent_pairs} adjacent pairs)",
        "fast rank-inversion rate"
    );
    let kernel_gemm_scalar = time_best(4, || {
        gemm::gemm_nt_scalar(q.as_slice(), block, dim, &model.emb.ent, &mut scores);
        scores[0]
    });
    record("kernel_64q_gemm_nt_scalar", 4, kernel_gemm_scalar, None, Some("scalar"));
    let gemm_nt_simd_speedup = kernel_gemm_scalar / kernel_gemm;
    println!("{:<42} {gemm_nt_simd_speedup:>11.2}x", "gemm_nt dispatched vs forced scalar");

    // gemm_acc_t over the same block shape (the softmax backward's kernel).
    let coeff: Vec<f32> = scores.clone();
    let mut acc_out = vec![0.0f32; block * dim];
    let kernel_acc = time_best(4, || {
        gemm::gemm_acc_t(&coeff, block, &model.emb.ent, &mut acc_out);
        acc_out[0]
    });
    record("kernel_64q_gemm_acc_t", 4, kernel_acc, None, Some(backend));
    let kernel_acc_scalar = time_best(4, || {
        gemm::gemm_acc_t_scalar(&coeff, block, &model.emb.ent, &mut acc_out);
        acc_out[0]
    });
    record("kernel_64q_gemm_acc_t_scalar", 4, kernel_acc_scalar, None, Some("scalar"));

    // count_cmp over one 10k-entity score row (the rank-count sweep).
    let sweep_row = &scores[..n_entities];
    let threshold = sweep_row[n_entities / 2];
    let sweep = time_best(64, || vecops::count_cmp(black_box(sweep_row), black_box(threshold)));
    record("kernel_count_cmp_10k", 64, sweep, None, Some(backend));
    let sweep_scalar =
        time_best(64, || vecops::count_cmp_scalar(black_box(sweep_row), black_box(threshold)));
    record("kernel_count_cmp_10k_scalar", 64, sweep_scalar, None, Some("scalar"));

    // ---- batch adapter overhead: one 64-query block through BatchScorer ----
    let mut scratch = BatchScratch::new();
    let tail_queries: Vec<(usize, usize)> =
        (0..block).map(|i| (i * 131 % n_entities, i % 4)).collect();
    let batch_call = time_best(4, || {
        model.score_tails_batch(&tail_queries, &mut scores, &mut scratch);
        scores[0]
    });
    record("score_tails_batch_64q", 4, batch_call, None, Some(backend));

    // ---- single-triple scoring stays cheap (per-query adapter path) ----
    let mut one = vec![0.0f32; n_entities];
    let single = time_best(16, || {
        model.score_tails(7, 1, &mut one);
        one[0]
    });
    record("score_tails_single_query", 16, single, None, None);

    // ---- training: one multi-class epoch, sequential vs sharded crew ----
    // The ranking headline's 10k-entity, d = 64 scenario for the training
    // loop: 512 triples in batches of 256, so an epoch is 16 block steps
    // with two batch flushes. `par1` runs the same grid-based crew engine
    // solo — its gap to the sequential row is the engine's bookkeeping
    // overhead — and par2/par4 add workers on the same fixed shard grid,
    // bit-identical to par1 by construction, so those rows measure pure
    // scheduling. Per-epoch model (re)init is part of every timed rep on
    // both sides, so the comparison stays epoch-for-epoch fair.
    let train_triples: Vec<Triple> = (0..512)
        .map(|_| {
            Triple::new(
                rng.below(n_entities) as u32,
                rng.below(4) as u32,
                rng.below(n_entities) as u32,
            )
        })
        .collect();
    let train_ds = Dataset {
        name: "bench-train-10k".into(),
        n_entities,
        n_relations: 4,
        train: train_triples,
        valid: Vec::new(),
        test: Vec::new(),
    };
    let train_cfg = TrainConfig { dim: 64, epochs: 1, batch_size: 256, ..TrainConfig::default() };
    let train_spec = classics::complex();
    let train_triples_per_iter = train_ds.train.len() as f64;
    let (train_seq_iters, train_seq) =
        time_calibrated(|| train(&train_spec, &train_ds, &train_cfg));
    record(
        "train_10k_d64_epoch_seq",
        train_seq_iters,
        train_seq,
        Some((train_triples_per_iter / train_seq, "triples/s")),
        Some(backend),
    );
    let mut train_par = [0.0f64; 3];
    for (ti, threads) in [1usize, 2, 4].into_iter().enumerate() {
        let trainer = Trainer::new(train_cfg).threads(threads);
        let (iters, secs) = time_calibrated(|| trainer.train(&train_spec, &train_ds));
        record(
            &format!("train_10k_d64_epoch_par{threads}"),
            iters,
            secs,
            Some((train_triples_per_iter / secs, "triples/s")),
            Some(backend),
        );
        train_par[ti] = secs;
    }
    let train_par1_vs_seq = train_seq / train_par[0];
    let train_par4_speedup = train_par[0] / train_par[2];
    record(
        "train_10k_d64_crew_par1_vs_seq",
        1,
        train_par[0],
        Some((train_par1_vs_seq, "x vs sequential")),
        Some(backend),
    );
    record(
        "train_10k_d64_crew_scaling_par4",
        1,
        train_par[2],
        Some((train_par4_speedup, "x vs 1-thread crew")),
        Some(backend),
    );
    println!("{:<42} {train_par1_vs_seq:>11.2}x", "train crew par1 vs sequential");
    println!(
        "{:<42} {train_par4_speedup:>11.2}x ({:.0}% / worker)",
        "train crew par4 vs par1",
        100.0 * train_par4_speedup / 4.0
    );

    let report = BenchReport {
        meta: BenchMeta {
            kernel_backend: backend.to_string(),
            fast_kernel: fast_name.to_string(),
            fast_rank_inversion_rate,
            avx2_detected,
            fma_detected,
            force_scalar_env: simd::force_scalar_requested(),
            logical_cores,
            physical_cores,
            two_stage_1m_d64,
        },
        rows,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialise bench report");
    // Anchor to the workspace root whatever cwd cargo hands the bench.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_microbench.json");
    std::fs::write(path, &json).expect("write BENCH_microbench.json");
    println!("(wrote {path})");

    assert!(speedup >= 2.0, "batched ranking speedup regressed below 2x: {speedup:.2}x");
    // The serving queue must buy back the GEMM batching win: accumulating
    // pending single queries into 64-row blocks has to beat one-at-a-time
    // dispatch by >= 2x (the measured gap tracks the per-query-vs-batched
    // ranking headline minus queue overhead).
    assert!(
        serve_speedup >= 2.0,
        "batched serving throughput regressed below 2x one-at-a-time: {serve_speedup:.2}x"
    );
    // Entity-sharding must hold parity with the triple-chunked strategy at
    // 4 threads. At this workload the two are expected to be a near dead
    // heat (the cache-residency margin grows with table size), and
    // cross-strategy timing ratios wobble on shared CI runners — so the
    // exact ratio is recorded in the JSON for trend-watching while the
    // hard gate only catches the systematic failure mode: workers
    // re-scoring the full table lands near 1/threads ≈ 0.25x, far below
    // any plausible scheduler noise.
    assert!(
        sharded_vs_chunked_at_4 >= 0.75,
        "sharded parallel ranking regressed below chunked at 4 threads: {sharded_vs_chunked_at_4:.2}x"
    );
    // The pipelined sharded engine must make multi-core ranking actually
    // pay at the cache-hostile table size: 4 workers on the 100k table
    // have to beat the single-thread batched path by >= 2x. The gate only
    // arms when the runner really has >= 4 logical cores — on smaller
    // machines 4 workers time-slice the same silicon, there is no
    // parallelism to buy the speedup with, and the ratio is recorded
    // ungated for trend-watching (the conditional-AVX2 gate precedent).
    if logical_cores >= 4 {
        assert!(
            big_sharded_par4_speedup >= 2.0,
            "pipelined 4-worker ranking regressed below 2x single-thread at 100k entities: \
             {big_sharded_par4_speedup:.2}x"
        );
    } else {
        println!(
            "(only {logical_cores} logical cores: 100k par4 speedup \
             {big_sharded_par4_speedup:.2}x recorded, 2x gate needs >= 4)"
        );
    }
    // The coarse tier must actually select well: at the C=1024 budget the
    // candidate sets have to recall >= 99% of the exact top-10, averaged
    // over the 1M-entity scenario's queries. Recall is a deterministic
    // function of the seeded data — no timing noise — so this gate arms
    // unconditionally.
    assert!(
        m1_recall_gated >= 0.99,
        "two-stage recall@1024 of the exact top-10 regressed below 0.99: {m1_recall_gated:.4}"
    );
    // And the tier must pay for itself where it was built to: at 1M
    // entities, two-stage ranking (at its best measured budget) has to
    // beat the exact 4-worker path by >= 2x. Core-gated like the 100k
    // scaling gate: with fewer than 4 logical cores both sides time-slice
    // the same silicon and the ratio is recorded ungated.
    if logical_cores >= 4 {
        assert!(
            m1_best_speedup >= 2.0,
            "two-stage ranking regressed below 2x exact at 1M entities: {m1_best_speedup:.2}x"
        );
    } else {
        println!(
            "(only {logical_cores} logical cores: 1M two-stage speedup \
             {m1_best_speedup:.2}x recorded, 2x gate needs >= 4)"
        );
    }
    // Split-crew draining must bound the head-of-line latency a
    // direction-serialised dispatcher imposes on the late direction: the
    // first head answer behind a 256-query tail backlog has to arrive
    // >= 1.2x sooner with the crew split. (The structural gap is the whole
    // tail backlog vs one block, so the honest ratio sits far above the
    // gate on any machine; 1.2x only catches the regression where split
    // mode quietly stops engaging.)
    assert!(
        split_hol_speedup >= 1.2,
        "split-crew head-of-line speedup regressed below 1.2x serialised: {split_hol_speedup:.2}x"
    );
    // Bounded admission must keep admitted latency flat under sustained
    // 2x-capacity overload: the cap sheds the excess at the door and the
    // deadline (half the uncongested p99) expires whatever the cap admits
    // but the crew cannot reach in time, so the admitted p99 stays within
    // 2x the uncongested p99 — an unbounded queue would push it toward
    // the full run length instead. The fail-fast and accounting halves of
    // the property (sheds observed, every admitted ticket settled, queues
    // drained) are asserted inside each overload run above.
    assert!(
        overload_p99_ratio <= 2.0,
        "admitted p99 under 2x overload regressed above 2x uncongested: \
         {overload_p99_ratio:.2}x ({overload_p99:?} vs {base_p99:?})"
    );
    // The explicit-SIMD backend has to actually pay for itself: when the
    // dispatcher selected AVX2, the dispatched gemm_nt must beat the
    // forced-scalar reference by >= 1.3x on the headline 64-query kernel
    // (the measured gap is well above the gate; 1.3x catches a dispatch
    // seam that quietly falls back or a SIMD kernel that stops being
    // faster). On scalar-only machines the two rows measure the same
    // kernel and the ratio is recorded ungated for parity tracking.
    if simd::active_backend() == simd::Backend::Avx2 {
        assert!(
            gemm_nt_simd_speedup >= 1.3,
            "AVX2 gemm_nt regressed below 1.3x the scalar reference: {gemm_nt_simd_speedup:.2}x"
        );
    } else {
        println!(
            "(scalar backend active: gemm_nt parity {gemm_nt_simd_speedup:.2}x recorded, no gate)"
        );
    }
    // The fast tier has to pay for its relaxed rounding: where FMA is
    // detected, the fast gemm_nt must beat the exact dispatched kernel by
    // >= 1.3x on the headline 64-query block. Where Fast degrades to the
    // exact backend the two rows measure the same kernel — parity recorded,
    // no gate — and the measured inversion rate must be exactly zero.
    if fast_is_fma {
        assert!(
            gemm_nt_fast_speedup >= 1.3,
            "fast gemm_nt regressed below 1.3x the exact kernel: {gemm_nt_fast_speedup:.2}x"
        );
    } else {
        println!(
            "(fast tier degrades to {fast_name}: gemm_nt fast parity \
             {gemm_nt_fast_speedup:.2}x recorded, no gate)"
        );
        assert_eq!(
            fast_rank_inversion_rate, 0.0,
            "fast tier degraded to the exact backend but scores still moved"
        );
    }
    // The training crew must make multi-core epochs actually pay: 4
    // workers on the 10k-entity scenario have to beat the 1-thread crew
    // by >= 2x. Core-gated like the ranking scaling gate — below 4
    // logical cores the workers time-slice the same silicon and the ratio
    // is recorded ungated for trend-watching.
    if logical_cores >= 4 {
        assert!(
            train_par4_speedup >= 2.0,
            "4-thread training crew regressed below 2x the 1-thread crew: \
             {train_par4_speedup:.2}x"
        );
    } else {
        println!(
            "(only {logical_cores} logical cores: train par4 speedup \
             {train_par4_speedup:.2}x recorded, 2x gate needs >= 4)"
        );
    }
    // And running the crew solo must stay within noise of the sequential
    // trainer (target: <= 5% overhead, recorded exactly in the JSON). The
    // hard gate follows the sharded-vs-chunked precedent: it only catches
    // the systematic failure mode — grid bookkeeping swamping the GEMMs
    // lands far below any plausible scheduler noise on a loaded runner.
    assert!(
        train_par1_vs_seq >= 0.75,
        "1-thread training crew regressed below 0.75x the sequential trainer: \
         {train_par1_vs_seq:.2}x"
    );
}

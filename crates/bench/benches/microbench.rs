//! Self-harnessed micro-benchmarks (no external bench framework — the
//! build runs offline), focused on the batched scoring engine.
//!
//! The headline case compares filtered-ranking throughput of the per-query
//! GEMV path (`evaluate_sequential`) against the batched GEMM path
//! (`evaluate`) at the paper's search dimension (d = 64) on a 10k-entity
//! table — the workload the engine was built for. The serving section
//! measures the same workload through `kg-serve`'s request-level facade,
//! one-at-a-time dispatch (`block(1)`) vs 64-query batching. Results are
//! printed and written to `BENCH_microbench.json` so speedups are tracked
//! run to run.
//!
//! Run with `cargo bench -p bench`.

use kg_core::{FilterIndex, Triple};
use kg_eval::ranking::{
    evaluate, evaluate_parallel, evaluate_parallel_chunked, evaluate_sequential,
};
use kg_linalg::{gemm, Mat, SeededRng};
use kg_models::blm::classics;
use kg_models::{BatchScorer, BatchScratch, BlmModel, Embeddings, LinkPredictor};
use kg_serve::KgEngine;
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

/// One benchmark row of the JSON artefact.
#[derive(Debug, Serialize)]
struct BenchRow {
    name: String,
    iters: usize,
    secs_per_iter: f64,
    throughput: Option<f64>,
    throughput_unit: Option<String>,
}

/// Best-of-5 wall-clock seconds per iteration of `f` — best-of smooths
/// scheduler noise on shared CI runners, where the 2× speedup gate runs.
fn time_best<R>(iters: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        best = best.min(start.elapsed().as_secs_f64() / iters as f64);
    }
    best
}

fn main() {
    let mut rows: Vec<BenchRow> = Vec::new();
    let mut record = |name: &str, iters: usize, secs: f64, thr: Option<(f64, &str)>| {
        println!(
            "{name:<42} {:>12.3} µs/iter{}",
            secs * 1e6,
            thr.map(|(v, u)| format!("  ({v:.0} {u})")).unwrap_or_default()
        );
        rows.push(BenchRow {
            name: name.to_string(),
            iters,
            secs_per_iter: secs,
            throughput: thr.map(|(v, _)| v),
            throughput_unit: thr.map(|(_, u)| u.to_string()),
        });
    };

    // ---- headline: filtered ranking, per-query GEMV vs batched GEMM ----
    // 10k entities at the paper's search dimension d = 64.
    let n_entities = 10_000;
    let dim = 64;
    let n_triples = 256;
    let mut rng = SeededRng::new(2020);
    let emb = Embeddings::init(n_entities, 4, dim, &mut rng);
    let model = BlmModel::new(classics::complex(), emb);
    let triples: Vec<Triple> = (0..n_triples)
        .map(|_| {
            Triple::new(
                rng.below(n_entities) as u32,
                rng.below(4) as u32,
                rng.below(n_entities) as u32,
            )
        })
        .collect();
    let filter = FilterIndex::build(&triples);
    let queries_per_iter = (2 * n_triples) as f64;

    let seq = time_best(1, || evaluate_sequential(&model, &triples, &filter));
    record("rank_10k_d64_per_query_gemv", 1, seq, Some((queries_per_iter / seq, "queries/s")));
    let bat = time_best(1, || evaluate(&model, &triples, &filter));
    record("rank_10k_d64_batched_gemm", 1, bat, Some((queries_per_iter / bat, "queries/s")));
    let speedup = seq / bat;
    println!("{:<42} {speedup:>11.2}x", "batched ranking speedup");
    assert_eq!(
        evaluate(&model, &triples, &filter),
        evaluate_sequential(&model, &triples, &filter),
        "batched and per-query ranking diverged"
    );

    // ---- parallel ranking: entity-table-sharded vs triple-chunked ----
    // Sharded workers cooperate on one query block (each owns a contiguous
    // entity shard that stays resident in its private cache); chunked
    // workers each re-stream the whole table for their own triple chunk.
    // 3 iterations × best-of-5: multithreaded timings are noisier than the
    // single-threaded ones, and the parity gate below needs a stable ratio.
    let mut sharded_vs_chunked_at_4 = None;
    for threads in [2usize, 4, 8] {
        let chunked =
            time_best(3, || evaluate_parallel_chunked(&model, &triples, &filter, threads));
        record(
            &format!("rank_10k_d64_chunked_par{threads}"),
            3,
            chunked,
            Some((queries_per_iter / chunked, "queries/s")),
        );
        let sharded = time_best(3, || evaluate_parallel(&model, &triples, &filter, threads));
        record(
            &format!("rank_10k_d64_sharded_par{threads}"),
            3,
            sharded,
            Some((queries_per_iter / sharded, "queries/s")),
        );
        println!(
            "{:<42} {:>11.2}x",
            format!("sharded vs chunked at {threads} threads"),
            chunked / sharded
        );
        if threads == 4 {
            sharded_vs_chunked_at_4 = Some(chunked / sharded);
        }
    }
    let sharded_vs_chunked_at_4 = sharded_vs_chunked_at_4.expect("4-thread case measured");
    assert_eq!(
        evaluate_parallel(&model, &triples, &filter, 4),
        evaluate_sequential(&model, &triples, &filter),
        "sharded parallel ranking diverged from the sequential reference"
    );

    // ---- serving facade: one-at-a-time vs 64-query batched dispatch ----
    // The same 10k-entity ranking workload through kg-serve's request-level
    // API. block(1) dispatches every query alone (the per-query baseline an
    // unbatched server would run); block(64) lets the queue accumulate the
    // pending tickets into full GEMM blocks. One worker each, so the gap is
    // pure batching, not parallelism.
    let serve_queries: Vec<(usize, usize, usize)> =
        triples.iter().map(|tr| (tr.h.idx(), tr.r.idx(), tr.t.idx())).collect();
    let engine_1 = KgEngine::with_filter(model.clone(), filter.clone()).threads(1).block(1).build();
    let engine_64 =
        KgEngine::with_filter(model.clone(), filter.clone()).threads(1).block(64).build();
    let serve_unbatched = time_best(3, || {
        // Sequential request-response round trips: nothing to batch.
        serve_queries.iter().map(|&(h, r, t)| engine_1.rank_tail(h, r, t)).sum::<f64>()
    });
    record(
        "serve_rank_10k_d64_batch1",
        3,
        serve_unbatched,
        Some((n_triples as f64 / serve_unbatched, "queries/s")),
    );
    let serve_batched = time_best(3, || {
        // Submit every ticket up front; the dispatcher drains the queue in
        // 64-row blocks.
        let tickets: Vec<_> =
            serve_queries.iter().map(|&(h, r, t)| engine_64.submit_rank_tail(h, r, t)).collect();
        tickets.into_iter().map(|ticket| ticket.wait()).sum::<f64>()
    });
    record(
        "serve_rank_10k_d64_batch64",
        3,
        serve_batched,
        Some((n_triples as f64 / serve_batched, "queries/s")),
    );
    let serve_speedup = serve_unbatched / serve_batched;
    println!("{:<42} {serve_speedup:>11.2}x", "batched serving speedup");
    // Batching must never change an answer: submit the whole query set to
    // the batching engine up front (so its dispatcher really cuts
    // multi-query blocks), then compare every rank against one-at-a-time
    // dispatch.
    let batched_ranks: Vec<_> =
        serve_queries.iter().map(|&(h, r, t)| engine_64.submit_rank_tail(h, r, t)).collect();
    for (ticket, &(h, r, t)) in batched_ranks.into_iter().zip(&serve_queries) {
        assert_eq!(
            ticket.wait(),
            engine_1.rank_tail(h, r, t),
            "served rank diverged between block sizes"
        );
    }

    // ---- mixed-direction serving: serialised vs split-crew dispatch ----
    // 50/50 tail-head traffic, arrival-skewed (the tail backlog lands
    // first) — the ROADMAP's "mixed workloads serialise by direction"
    // pathology. The serialised dispatcher (split_crew(false), the PR 3
    // behaviour) drains oldest-class-first, so the first head answer waits
    // behind the *entire* tail backlog; the split-crew dispatcher hands
    // heads to their own sub-crew immediately. The gate is on that
    // head-of-line latency: it is the property dual-direction draining
    // exists to bound, and it holds on any core count (total compute is
    // conserved, so a single-core runner shows no throughput gap — the
    // drain rows below are recorded for trend-watching, not gated).
    let mixed_half = 256usize;
    let engine_serial = KgEngine::with_filter(model.clone(), filter.clone())
        .threads(4)
        .block(64)
        .split_crew(false)
        .build();
    let engine_split = KgEngine::with_filter(model.clone(), filter.clone())
        .threads(4)
        .block(64)
        .split_crew(true)
        .build();
    let mixed_queries: Vec<(usize, usize, usize)> = serve_queries[..mixed_half].to_vec();
    // (first-head latency, full-drain seconds, sum of all ranks)
    let run_mixed = |engine: &KgEngine| {
        let start = Instant::now();
        let tails: Vec<_> =
            mixed_queries.iter().map(|&(h, r, t)| engine.submit_rank_tail(h, r, t)).collect();
        let heads: Vec<_> =
            mixed_queries.iter().map(|&(h, r, t)| engine.submit_rank_head(h, r, t)).collect();
        let mut heads = heads.into_iter();
        let first_head = heads.next().expect("one head ticket").wait();
        let first_head_latency = start.elapsed().as_secs_f64();
        let mut rank_sum = first_head;
        rank_sum += heads.map(|ticket| ticket.wait()).sum::<f64>();
        rank_sum += tails.into_iter().map(|ticket| ticket.wait()).sum::<f64>();
        (first_head_latency, start.elapsed().as_secs_f64(), rank_sum)
    };
    let mut serial_first = f64::INFINITY;
    let mut serial_drain = f64::INFINITY;
    let mut split_first = f64::INFINITY;
    let mut split_drain = f64::INFINITY;
    let mut serial_ranks = 0.0;
    let mut split_ranks = 0.0;
    for _ in 0..5 {
        let (first, drain, ranks) = run_mixed(&engine_serial);
        serial_first = serial_first.min(first);
        serial_drain = serial_drain.min(drain);
        serial_ranks = ranks;
        let (first, drain, ranks) = run_mixed(&engine_split);
        split_first = split_first.min(first);
        split_drain = split_drain.min(drain);
        split_ranks = ranks;
    }
    assert_eq!(serial_ranks, split_ranks, "split-crew dispatch changed an answer");
    record("serve_mixed_10k_d64_serialised_first_head", 5, serial_first, None);
    record("serve_mixed_10k_d64_split_first_head", 5, split_first, None);
    let mixed_total = (2 * mixed_half) as f64;
    record(
        "serve_mixed_10k_d64_serialised_drain",
        5,
        serial_drain,
        Some((mixed_total / serial_drain, "queries/s")),
    );
    record(
        "serve_mixed_10k_d64_split_drain",
        5,
        split_drain,
        Some((mixed_total / split_drain, "queries/s")),
    );
    let split_hol_speedup = serial_first / split_first;
    println!("{:<42} {split_hol_speedup:>11.2}x", "split-crew head-of-line speedup");
    let split_stats = engine_split.stats();
    assert!(
        split_stats.split_blocks > 0,
        "mixed backlog never engaged split-crew draining: {split_stats:?}"
    );
    drop(engine_serial);
    drop(engine_split);

    // ---- raw kernels: 64-query block against the 10k × 64 table ----
    let block = 64usize;
    let mut q = Mat::zeros(block, dim);
    rng.fill_normal(1.0, q.as_mut_slice());
    let mut scores = vec![0.0f32; block * n_entities];
    let kernel_gemv = time_best(4, || {
        for i in 0..block {
            model.emb.ent.gemv(q.row(i), &mut scores[i * n_entities..(i + 1) * n_entities]);
        }
        scores[0]
    });
    record("kernel_64q_gemv_loop", 4, kernel_gemv, None);
    let kernel_gemm = time_best(4, || {
        gemm::gemm_nt(q.as_slice(), block, dim, &model.emb.ent, &mut scores);
        scores[0]
    });
    record("kernel_64q_gemm_nt", 4, kernel_gemm, None);

    // ---- batch adapter overhead: one 64-query block through BatchScorer ----
    let mut scratch = BatchScratch::new();
    let tail_queries: Vec<(usize, usize)> =
        (0..block).map(|i| (i * 131 % n_entities, i % 4)).collect();
    let batch_call = time_best(4, || {
        model.score_tails_batch(&tail_queries, &mut scores, &mut scratch);
        scores[0]
    });
    record("score_tails_batch_64q", 4, batch_call, None);

    // ---- single-triple scoring stays cheap (per-query adapter path) ----
    let mut one = vec![0.0f32; n_entities];
    let single = time_best(16, || {
        model.score_tails(7, 1, &mut one);
        one[0]
    });
    record("score_tails_single_query", 16, single, None);

    let json = serde_json::to_string_pretty(&rows).expect("serialise bench rows");
    // Anchor to the workspace root whatever cwd cargo hands the bench.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_microbench.json");
    std::fs::write(path, &json).expect("write BENCH_microbench.json");
    println!("(wrote {path})");

    assert!(speedup >= 2.0, "batched ranking speedup regressed below 2x: {speedup:.2}x");
    // The serving queue must buy back the GEMM batching win: accumulating
    // pending single queries into 64-row blocks has to beat one-at-a-time
    // dispatch by >= 2x (the measured gap tracks the per-query-vs-batched
    // ranking headline minus queue overhead).
    assert!(
        serve_speedup >= 2.0,
        "batched serving throughput regressed below 2x one-at-a-time: {serve_speedup:.2}x"
    );
    // Entity-sharding must hold parity with the triple-chunked strategy at
    // 4 threads. At this workload the two are expected to be a near dead
    // heat (the cache-residency margin grows with table size), and
    // cross-strategy timing ratios wobble on shared CI runners — so the
    // exact ratio is recorded in the JSON for trend-watching while the
    // hard gate only catches the systematic failure mode: workers
    // re-scoring the full table lands near 1/threads ≈ 0.25x, far below
    // any plausible scheduler noise.
    assert!(
        sharded_vs_chunked_at_4 >= 0.75,
        "sharded parallel ranking regressed below chunked at 4 threads: {sharded_vs_chunked_at_4:.2}x"
    );
    // Split-crew draining must bound the head-of-line latency a
    // direction-serialised dispatcher imposes on the late direction: the
    // first head answer behind a 256-query tail backlog has to arrive
    // >= 1.2x sooner with the crew split. (The structural gap is the whole
    // tail backlog vs one block, so the honest ratio sits far above the
    // gate on any machine; 1.2x only catches the regression where split
    // mode quietly stops engaging.)
    assert!(
        split_hol_speedup >= 1.2,
        "split-crew head-of-line speedup regressed below 1.2x serialised: {split_hol_speedup:.2}x"
    );
}

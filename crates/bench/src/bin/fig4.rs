//! Figure 4: learning curves — test MRR vs training wall-clock for the
//! four human-designed BLMs and the searched structure, per dataset.

use bench::ExpCtx;
use kg_core::FilterIndex;
use kg_datagen::Preset;
use kg_eval::ranking::evaluate_parallel;
use kg_eval::Curve;
use kg_models::blm::classics;
use kg_train::train_with_callback;

fn main() {
    let ctx = ExpCtx::new();
    ctx.banner("Figure 4 — learning curves (test MRR vs seconds)");
    let cfg = ctx.final_train_cfg();
    // evaluate every `stride` epochs to keep curve capture cheap
    let stride = (cfg.epochs / 8).max(1);

    let mut all_curves: Vec<Curve> = Vec::new();
    for p in Preset::ALL {
        let ds = ctx.dataset(p);
        let (sf, _) = ctx.search_best(p);
        let filter = FilterIndex::from_dataset(&ds);
        println!("\n--- {} ---", ds.name);
        let entries = classics::all()
            .into_iter()
            .map(|(n, s)| (n.to_string(), s))
            .chain([("AutoSF".to_string(), sf.spec.clone())]);
        for (name, spec) in entries {
            let mut curve = Curve::new(format!("{}/{}", ds.name, name));
            train_with_callback(&spec, &ds, &cfg, |model: &_, info: kg_train::EpochInfo| {
                if info.epoch.is_multiple_of(stride) || info.epoch + 1 == cfg.epochs {
                    let m = evaluate_parallel(model, &ds.test, &filter, ctx.threads);
                    curve.push(info.seconds, m.mrr);
                }
                kg_train::ControlFlow::Continue
            });
            println!(
                "{:<12} final test MRR {:.3} after {:.1}s",
                name,
                curve.final_y(),
                curve.points.last().map(|p| p.x).unwrap_or(0.0)
            );
            print!("{}", curve.to_text());
            all_curves.push(curve);
        }
    }
    ctx.write_json("fig4_curves", &all_curves);
    println!(
        "\nreproduction target (paper Fig. 4): the searched SF reaches the\n\
         highest final MRR and converges at least as fast as the baselines."
    );
}

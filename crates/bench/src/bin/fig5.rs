//! Figure 5: the searched scoring functions drawn as block matrices, one
//! per dataset, plus their SRF signature and the nearest human baseline
//! (by invariance-equivalence, as the paper's distinctiveness case study).

use autosf::invariance::equivalent;
use autosf::srf::srf;
use bench::ExpCtx;
use kg_datagen::Preset;
use kg_models::blm::classics;

fn main() {
    let ctx = ExpCtx::new();
    ctx.banner("Figure 5 — searched scoring functions per dataset");
    let mut found = Vec::new();
    for p in Preset::ALL {
        let (sf, _) = ctx.search_best(p);
        println!("\n--- {} (val MRR {:.3}) ---", sf.dataset, sf.valid_mrr);
        print!("{}", sf.spec.render());
        println!("formula: {}", sf.spec.formula());
        let f = srf(&sf.spec);
        let sym_bits: String = (0..11).map(|i| if f[2 * i] > 0.0 { '1' } else { '0' }).collect();
        let skew_bits: String =
            (0..11).map(|i| if f[2 * i + 1] > 0.0 { '1' } else { '0' }).collect();
        println!("SRF  sym bits S1..S11:  {sym_bits}");
        println!("SRF skew bits S1..S11:  {skew_bits}");
        match classics::all().into_iter().find(|(_, c)| equivalent(c, &sf.spec)) {
            Some((name, _)) => println!("equivalent to human baseline: {name}"),
            None => {
                println!("not equivalent to any human-designed baseline (new to the literature)")
            }
        }
        found.push(sf);
    }

    // pairwise distinctness (the paper: "they are not equivalent regarding
    // invariance properties")
    println!("\npairwise equivalence of searched structures:");
    for i in 0..found.len() {
        for j in i + 1..found.len() {
            if found[i].spec.n_blocks() == found[j].spec.n_blocks()
                && equivalent(&found[i].spec, &found[j].spec)
            {
                println!("  {} ~ {}", found[i].dataset, found[j].dataset);
            }
        }
    }
    println!("  (no output above = all distinct)");
    ctx.write_json("fig5_specs", &found);
}

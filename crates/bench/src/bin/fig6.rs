//! Figure 6: AutoSF vs other AutoML approaches at an equal training-budget
//! — random search, TPE ("Bayes") over f6 structures, the general
//! approximator (Gen-Approx MLP), and AutoSF itself. Curves are best
//! validation MRR vs models trained.

use autosf::baselines::{bayes_search, random_search};
use autosf::{GreedyConfig, GreedySearch, SearchDriver};
use bench::ExpCtx;
use kg_core::FilterIndex;
use kg_datagen::Preset;
use kg_eval::ranking::evaluate_parallel;
use kg_eval::Curve;
use kg_linalg::SeededRng;
use kg_models::nnm::{GenApprox, NnmConfig};

fn main() {
    let ctx = ExpCtx::new();
    ctx.banner("Figure 6 — AutoSF vs random / Bayes / Gen-Approx");
    let budget = ctx.search_budget();
    let mut curves: Vec<Curve> = Vec::new();

    for p in [Preset::Wn18rrLike, Preset::Fb15k237Like] {
        let ds = ctx.dataset(p);
        println!("\n--- {} (budget {} models) ---", ds.name, budget);

        // AutoSF (greedy + filter + predictor)
        let mut driver = SearchDriver::new(&ds, ctx.search_train_cfg(), ctx.threads);
        let gcfg = GreedyConfig { seed: ctx.seed, ..ctx.greedy_cfg() };
        GreedySearch::new(gcfg).run(&mut driver);
        let autosf_curve = driver.trace.best_so_far_curve(&format!("{}/AutoSF", ds.name));
        println!(
            "AutoSF   best {:.3} ({} models)",
            autosf_curve.final_y(),
            driver.models_trained()
        );

        // Random search over f6
        let mut driver = SearchDriver::new(&ds, ctx.search_train_cfg(), ctx.threads);
        random_search(&mut driver, 6, budget, ctx.seed);
        let rand_curve = driver.trace.best_so_far_curve(&format!("{}/Random", ds.name));
        println!("Random   best {:.3}", rand_curve.final_y());

        // Bayes (TPE) over f6
        let mut driver = SearchDriver::new(&ds, ctx.search_train_cfg(), ctx.threads);
        bayes_search(&mut driver, 6, budget, ctx.seed);
        let bayes_curve = driver.trace.best_so_far_curve(&format!("{}/Bayes", ds.name));
        println!("Bayes    best {:.3}", bayes_curve.final_y());

        // Gen-Approx: one MLP model trained once (a flat reference line)
        let mut rng = SeededRng::new(ctx.seed);
        let scfg = ctx.search_train_cfg();
        let ncfg = NnmConfig { dim: scfg.dim, epochs: scfg.epochs, lr: 0.1, l2: 1e-4 };
        let mut nnm = GenApprox::init(ds.n_entities, ds.n_relations, ncfg, &mut rng);
        nnm.train(&ds.train, &mut rng);
        let mut filter = FilterIndex::build(&ds.train);
        for t in &ds.valid {
            filter.insert(*t);
        }
        let nnm_mrr = evaluate_parallel(&nnm, &ds.valid, &filter, ctx.threads).mrr;
        let mut nnm_curve = Curve::new(format!("{}/Gen-Approx", ds.name));
        nnm_curve.push(1.0, nnm_mrr);
        nnm_curve.push(budget as f64, nnm_mrr);
        println!("Gen-Approx val MRR {:.3} (single model)", nnm_mrr);

        for c in [autosf_curve, rand_curve, bayes_curve, nnm_curve] {
            print!("{}", c.to_text());
            curves.push(c);
        }
    }
    ctx.write_json("fig6_curves", &curves);
    println!(
        "\nreproduction target (paper Fig. 6): Gen-Approx ≪ BLM searches;\n\
         Bayes ≥ random; AutoSF has the best any-time curve."
    );
}

//! Figure 7: ablation of the filter and the predictor — full AutoSF vs
//! no-filter vs no-predictor vs plain greedy, best-so-far curves at equal
//! budget.

use autosf::{GreedyConfig, GreedySearch, SearchDriver};
use bench::ExpCtx;
use kg_datagen::Preset;
use kg_eval::Curve;

fn main() {
    let ctx = ExpCtx::new();
    ctx.banner("Figure 7 — filter/predictor ablation");
    let mut curves: Vec<Curve> = Vec::new();

    for p in [Preset::Wn18rrLike, Preset::Fb15k237Like] {
        let ds = ctx.dataset(p);
        println!("\n--- {} ---", ds.name);
        let variants: [(&str, bool, bool); 4] = [
            ("AutoSF", true, true),
            ("no-filter", false, true),
            ("no-predictor", true, false),
            ("greedy", false, false),
        ];
        for (label, use_filter, use_predictor) in variants {
            let mut driver = SearchDriver::new(&ds, ctx.search_train_cfg(), ctx.threads);
            let gcfg =
                GreedyConfig { use_filter, use_predictor, seed: ctx.seed, ..ctx.greedy_cfg() };
            GreedySearch::new(gcfg).run(&mut driver);
            let curve = driver.trace.best_so_far_curve(&format!("{}/{}", ds.name, label));
            println!(
                "{:<14} best {:.3} after {} models",
                label,
                curve.final_y(),
                driver.models_trained()
            );
            print!("{}", curve.to_text());
            curves.push(curve);
        }
    }
    ctx.write_json("fig7_curves", &curves);
    println!(
        "\nreproduction target (paper Fig. 7): removing either component\n\
         degrades the any-time curve; full AutoSF is the most efficient."
    );
}

//! Figure 8: SRF features vs one-hot features for the performance
//! predictor (plus the no-predictor baseline).

use autosf::{FeatureKind, GreedyConfig, GreedySearch, SearchDriver};
use bench::ExpCtx;
use kg_datagen::Preset;
use kg_eval::Curve;

fn main() {
    let ctx = ExpCtx::new();
    ctx.banner("Figure 8 — SRF vs one-hot predictor features");
    let mut curves: Vec<Curve> = Vec::new();

    for p in [Preset::Wn18rrLike, Preset::Fb15k237Like] {
        let ds = ctx.dataset(p);
        println!("\n--- {} ---", ds.name);
        let variants: [(&str, FeatureKind, bool); 3] = [
            ("SRF (22-2-1)", FeatureKind::Srf, true),
            ("one-hot (96-8-1)", FeatureKind::OneHot, true),
            ("no predictor", FeatureKind::Srf, false),
        ];
        for (label, feature, use_predictor) in variants {
            let mut driver = SearchDriver::new(&ds, ctx.search_train_cfg(), ctx.threads);
            let gcfg = GreedyConfig { feature, use_predictor, seed: ctx.seed, ..ctx.greedy_cfg() };
            GreedySearch::new(gcfg).run(&mut driver);
            let curve = driver.trace.best_so_far_curve(&format!("{}/{}", ds.name, label));
            println!("{:<18} best {:.3}", label, curve.final_y());
            print!("{}", curve.to_text());
            curves.push(curve);
        }
    }
    ctx.write_json("fig8_curves", &curves);
    println!(
        "\nreproduction target (paper Fig. 8): SRF ≥ one-hot ≥ no predictor —\n\
         the invariance-aware features learn from fewer samples."
    );
}

//! Figure 9: sensitivity to the meta hyper-parameters N (candidates per
//! stage) and K2 (models trained per round), with plain greedy as the
//! contrast. The paper's finding: all settings behave similarly and beat
//! greedy.

use autosf::{GreedyConfig, GreedySearch, SearchDriver};
use bench::ExpCtx;
use kg_datagen::Preset;
use kg_eval::Curve;

fn main() {
    let ctx = ExpCtx::new();
    ctx.banner("Figure 9 — meta hyper-parameter sensitivity (N, K2)");
    let base = ctx.greedy_cfg();
    let ds = ctx.dataset(Preset::Wn18rrLike);
    let mut curves: Vec<Curve> = Vec::new();

    let variants: Vec<(String, GreedyConfig)> = vec![
        (
            format!("N={}", base.n_candidates / 2),
            GreedyConfig { n_candidates: (base.n_candidates / 2).max(base.k2), ..base },
        ),
        (format!("N={} (default)", base.n_candidates), base),
        (
            format!("N={}", base.n_candidates * 2),
            GreedyConfig { n_candidates: base.n_candidates * 2, ..base },
        ),
        (format!("K2={}", (base.k2 / 2).max(1)), GreedyConfig { k2: (base.k2 / 2).max(1), ..base }),
        (
            format!("K2={}", base.k2 * 2),
            GreedyConfig {
                k2: base.k2 * 2,
                n_candidates: base.n_candidates.max(base.k2 * 2),
                ..base
            },
        ),
        (
            "greedy (no filter/predictor)".to_string(),
            GreedyConfig { use_filter: false, use_predictor: false, ..base },
        ),
    ];

    for (label, mut gcfg) in variants {
        gcfg.seed = ctx.seed;
        let mut driver = SearchDriver::new(&ds, ctx.search_train_cfg(), ctx.threads);
        GreedySearch::new(gcfg).run(&mut driver);
        let curve = driver.trace.best_so_far_curve(&label);
        println!(
            "{:<28} best {:.3} after {} models",
            label,
            curve.final_y(),
            driver.models_trained()
        );
        print!("{}", curve.to_text());
        curves.push(curve);
    }
    ctx.write_json("fig9_curves", &curves);
    println!(
        "\nreproduction target (paper Fig. 9): the N/K2 settings cluster\n\
         together and clearly above the plain-greedy contrast."
    );
}

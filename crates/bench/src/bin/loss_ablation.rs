//! Extra ablation (beyond the paper, justified by Sec. II-A's loss
//! discussion): multi-class full-softmax loss vs negative-sampling logistic
//! loss for the same structures on the same data.

use bench::ExpCtx;
use kg_core::FilterIndex;
use kg_datagen::Preset;
use kg_eval::ranking::evaluate_parallel;
use kg_models::blm::classics;
use kg_train::{train, LossKind, TrainConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    model: String,
    loss: String,
    mrr: f64,
}

fn main() {
    let ctx = ExpCtx::new();
    ctx.banner("Loss ablation — multi-class vs negative sampling");
    let mut rows = Vec::new();
    for p in [Preset::Wn18rrLike, Preset::Fb15k237Like] {
        let ds = ctx.dataset(p);
        let filter = FilterIndex::from_dataset(&ds);
        println!("\n--- {} ---", ds.name);
        println!("{:<12} {:>14} {:>14}", "model", "multi-class", "neg-sampling");
        for (name, spec) in classics::all() {
            let base = ctx.final_train_cfg();
            let mc_cfg = TrainConfig { loss: LossKind::MultiClass, ..base };
            let ns_cfg = TrainConfig { loss: LossKind::NegSampling { m: 8 }, lr: 0.1, ..base };
            let mc = evaluate_parallel(&train(&spec, &ds, &mc_cfg), &ds.test, &filter, ctx.threads);
            let ns = evaluate_parallel(&train(&spec, &ds, &ns_cfg), &ds.test, &filter, ctx.threads);
            println!("{:<12} {:>14.3} {:>14.3}", name, mc.mrr, ns.mrr);
            rows.push(Row {
                dataset: ds.name.clone(),
                model: name.into(),
                loss: "multi-class".into(),
                mrr: mc.mrr,
            });
            rows.push(Row {
                dataset: ds.name.clone(),
                model: name.into(),
                loss: "neg-sampling".into(),
                mrr: ns.mrr,
            });
        }
    }
    ctx.write_json("loss_ablation", &rows);
    println!("\nexpectation (Lacroix et al., adopted in Sec. II-A): multi-class ≥ neg-sampling.");
}

//! Table III: dataset statistics, including the relation-pattern census
//! computed with the paper's 0.9/0.1 thresholds.

use bench::ExpCtx;
use kg_core::DatasetStats;
use kg_datagen::Preset;

fn main() {
    let ctx = ExpCtx::new();
    ctx.banner("Table III — dataset statistics");
    println!("{}", DatasetStats::header());
    let mut rows = Vec::new();
    for p in Preset::ALL {
        let ds = ctx.dataset(p);
        let s = DatasetStats::of(&ds);
        println!("{}", s.row());
        rows.push(s);
    }
    ctx.write_json("table3", &rows);
    println!(
        "\npaper reference censuses (sym/anti/inv/gen): WN18 4/7/7/0, FB15k 66/38/556/685,\n\
         WN18RR 4/3/1/3, FB15k237 33/5/20/179, YAGO3-10 8/0/1/28 — the generated datasets\n\
         match the small censuses exactly and the FB15k-family ratios proportionally."
    );
}

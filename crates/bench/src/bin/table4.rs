//! Table IV: link prediction — the searched structure vs human-designed
//! baselines on all five datasets.
//!
//! The search runs at the reduced search dimension and the winners retrain
//! at the final dimension, exactly as in Sec. V-A2. Results cache to
//! `target/experiments/` so `table5`, `fig4` and `fig5` reuse the searched
//! structures.

use bench::zoo::{print_zoo, run_zoo};
use bench::ExpCtx;
use kg_datagen::Preset;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    model: String,
    mrr: f64,
    hits1: f64,
    hits10: f64,
}

fn main() {
    let ctx = ExpCtx::new();
    ctx.banner("Table IV — link prediction");
    let mut rows = Vec::new();
    for p in Preset::ALL {
        let ds = ctx.dataset(p);
        let (sf, _) = ctx.search_best(p);
        println!(
            "\nsearch on {}: {} models, {:.1}s, val MRR {:.3}, best = {}",
            ds.name,
            sf.models_trained,
            sf.seconds,
            sf.valid_mrr,
            sf.spec.formula()
        );
        let results = run_zoo(&ds, &ctx.final_train_cfg(), Some(&sf.spec), ctx.threads, true);
        print_zoo(&ds.name, &results);
        for r in &results {
            rows.push(Row {
                dataset: ds.name.clone(),
                model: r.name.clone(),
                mrr: r.metrics.mrr,
                hits1: r.metrics.hits1,
                hits10: r.metrics.hits10,
            });
        }
    }
    ctx.write_json("table4", &rows);
    println!(
        "\nreproduction target (paper Tab. IV): AutoSF is best or runner-up on every\n\
         dataset; no single human-designed SF wins everywhere; TDMs and the MLP trail BLMs."
    );
}

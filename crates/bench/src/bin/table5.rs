//! Table V: cross-dataset transfer — the structure searched on dataset A
//! (row) trained and tested on dataset B (column). The searched SFs are
//! KG-dependent, so the diagonal should dominate each column.

use bench::zoo::eval_blm;
use bench::ExpCtx;
use kg_core::FilterIndex;
use kg_datagen::Preset;
use serde::Serialize;

#[derive(Serialize)]
struct Cell {
    searched_on: String,
    evaluated_on: String,
    mrr: f64,
}

fn main() {
    let ctx = ExpCtx::new();
    ctx.banner("Table V — transfer of searched SFs across datasets");

    let searched: Vec<_> = Preset::ALL.iter().map(|&p| ctx.search_best(p).0).collect();
    let datasets: Vec<_> = Preset::ALL.iter().map(|&p| ctx.dataset(p)).collect();
    let cfg = ctx.final_train_cfg();

    print!("{:<16}", "searched\\eval");
    for ds in &datasets {
        print!(" {:>13}", ds.name);
    }
    println!();

    let mut cells = Vec::new();
    for sf in &searched {
        print!("{:<16}", sf.dataset);
        for ds in &datasets {
            let filter = FilterIndex::from_dataset(ds);
            let m = eval_blm(&sf.spec, ds, &cfg, &filter, ctx.threads);
            print!(" {:>13.3}", m.mrr);
            cells.push(Cell {
                searched_on: sf.dataset.clone(),
                evaluated_on: ds.name.clone(),
                mrr: m.mrr,
            });
        }
        println!();
    }
    ctx.write_json("table5", &cells);

    // diagonal-dominance summary
    let mut diag_wins = 0usize;
    for (j, ds) in datasets.iter().enumerate() {
        let col: Vec<&Cell> = cells.iter().filter(|c| c.evaluated_on == ds.name).collect();
        let best = col.iter().max_by(|a, b| a.mrr.total_cmp(&b.mrr)).expect("non-empty");
        if best.searched_on == datasets[j].name {
            diag_wins += 1;
        }
    }
    println!(
        "\ndiagonal best in {diag_wins}/5 columns \
         (paper: the SF searched on a dataset performs best there)"
    );
}

//! Table VI: triplet classification accuracy on the FB15k-like,
//! WN18RR-like and FB15k237-like datasets — human BLMs vs the searched
//! structure, per-relation thresholds tuned on validation.

use bench::ExpCtx;
use kg_core::FilterIndex;
use kg_datagen::Preset;
use kg_eval::classification::{accuracy, make_negatives, tune_thresholds};
use kg_linalg::SeededRng;
use kg_models::blm::classics;
use kg_train::train;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    model: String,
    accuracy: f64,
}

fn main() {
    let ctx = ExpCtx::new();
    ctx.banner("Table VI — triplet classification");
    let presets = [Preset::Fb15kLike, Preset::Wn18rrLike, Preset::Fb15k237Like];
    let cfg = ctx.final_train_cfg();
    let mut rows = Vec::new();

    for p in presets {
        let ds = ctx.dataset(p);
        let (sf, _) = ctx.search_best(p);
        let filter = FilterIndex::from_dataset(&ds);
        let mut rng = SeededRng::new(ctx.seed ^ 0xC1A5);
        let valid_neg = make_negatives(&ds.valid, &filter, ds.n_entities, &mut rng);
        let test_neg = make_negatives(&ds.test, &filter, ds.n_entities, &mut rng);

        println!("\n--- {} ---", ds.name);
        println!("{:<12} {:>10}", "model", "accuracy");
        let specs = classics::all()
            .into_iter()
            .map(|(n, s)| (n.to_string(), s))
            .chain([("AutoSF".to_string(), sf.spec.clone())]);
        for (name, spec) in specs {
            let model = train(&spec, &ds, &cfg);
            let th = tune_thresholds(&model, &ds.valid, &valid_neg, ds.n_relations);
            let acc = accuracy(&model, &ds.test, &test_neg, &th);
            println!("{:<12} {:>9.1}%", name, acc * 100.0);
            rows.push(Row { dataset: ds.name.clone(), model: name, accuracy: acc });
        }
    }
    ctx.write_json("table6", &rows);
    println!("\nreproduction target (paper Tab. VI): AutoSF ≥ every human BLM per dataset.");
}

//! Table VII: running time per greedy stage, broken into the paper's
//! components — filtering (steps 2-6), predictor (steps 7, 10-11), and
//! train+evaluate (steps 8-9). The headline claim: filter and predictor
//! cost a rounding error next to model training.

use autosf::{GreedyConfig, GreedySearch, SearchDriver};
use bench::ExpCtx;
use kg_datagen::Preset;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    stage_b: usize,
    filter_secs: f64,
    predictor_secs: f64,
    train_eval_secs: f64,
}

fn main() {
    let ctx = ExpCtx::new();
    ctx.banner("Table VII — running time per greedy stage");
    let mut rows = Vec::new();
    println!(
        "{:<16} {:>4} {:>12} {:>12} {:>12}",
        "dataset", "b", "filter(s)", "predictor(s)", "train+eval(s)"
    );
    for p in Preset::ALL {
        let ds = ctx.dataset(p);
        let mut driver = SearchDriver::new(&ds, ctx.search_train_cfg(), ctx.threads);
        let gcfg = GreedyConfig { seed: ctx.seed, ..ctx.greedy_cfg() };
        let outcome = GreedySearch::new(gcfg).run(&mut driver);
        for t in &outcome.timings {
            println!(
                "{:<16} {:>4} {:>12.3} {:>12.3} {:>12.3}",
                ds.name, t.b, t.filter_secs, t.predictor_secs, t.train_eval_secs
            );
            rows.push(Row {
                dataset: ds.name.clone(),
                stage_b: t.b,
                filter_secs: t.filter_secs,
                predictor_secs: t.predictor_secs,
                train_eval_secs: t.train_eval_secs,
            });
        }
    }
    ctx.write_json("table7", &rows);

    let totals = rows.iter().fold((0.0, 0.0, 0.0), |acc, r| {
        (acc.0 + r.filter_secs, acc.1 + r.predictor_secs, acc.2 + r.train_eval_secs)
    });
    println!(
        "\ntotals: filter {:.2}s, predictor {:.2}s, train+eval {:.2}s \
         ({:.1}% of time is training — the paper's Tab. VII shows the same shape)",
        totals.0,
        totals.1,
        totals.2,
        100.0 * totals.2 / (totals.0 + totals.1 + totals.2).max(1e-9)
    );
}

//! The experiment context: scale-dependent configurations, dataset
//! construction, the AutoSF search wrapper and its on-disk result cache.

use autosf::{GreedyConfig, GreedySearch, SearchDriver, SearchTrace};
use kg_core::Dataset;
use kg_datagen::{preset, Preset, Scale};
use kg_models::BlockSpec;
use kg_train::TrainConfig;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// Scale-aware experiment context shared by all binaries.
pub struct ExpCtx {
    /// Dataset/search scale.
    pub scale: Scale,
    /// Base seed (fixed so every binary is reproducible).
    pub seed: u64,
    /// Worker threads for training/evaluation.
    pub threads: usize,
    /// Output directory for JSON artefacts.
    pub out_dir: PathBuf,
}

/// A searched structure with its provenance, cached to disk.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchedSf {
    /// Dataset the structure was searched on.
    pub dataset: String,
    /// The structure.
    pub spec: BlockSpec,
    /// Validation MRR at search time.
    pub valid_mrr: f64,
    /// Models trained during the search.
    pub models_trained: usize,
    /// Search wall-clock seconds.
    pub seconds: f64,
}

impl Default for ExpCtx {
    fn default() -> Self {
        Self::new()
    }
}

impl ExpCtx {
    /// Build from the environment (`SCALE`, `THREADS`).
    pub fn new() -> Self {
        let scale = Scale::from_env();
        let threads = std::env::var("THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4));
        let out_dir = PathBuf::from("target/experiments");
        std::fs::create_dir_all(&out_dir).expect("create experiment output dir");
        ExpCtx { scale, seed: 2020, threads, out_dir }
    }

    /// Human-readable scale tag for file names.
    pub fn scale_tag(&self) -> &'static str {
        match self.scale {
            Scale::Tiny => "tiny",
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    }

    /// The dataset for a preset at this scale (deterministic).
    pub fn dataset(&self, p: Preset) -> Dataset {
        preset(p, self.scale, self.seed)
    }

    /// Training configuration used during the *search* (the paper searches
    /// at a reduced dimension, Sec. V-A2). Batch sizes are small because
    /// the generated datasets are small — the Adagrad step count, not the
    /// epoch count, is what converges the multi-class loss.
    pub fn search_train_cfg(&self) -> TrainConfig {
        match self.scale {
            Scale::Tiny => TrainConfig {
                dim: 32,
                epochs: 35,
                lr: 0.3,
                l2: 1e-5,
                batch_size: 32,
                ..Default::default()
            },
            Scale::Quick => TrainConfig {
                dim: 32,
                epochs: 30,
                lr: 0.3,
                l2: 1e-5,
                batch_size: 64,
                ..Default::default()
            },
            Scale::Full => TrainConfig {
                dim: 64,
                epochs: 50,
                lr: 0.3,
                l2: 1e-5,
                batch_size: 128,
                ..Default::default()
            },
        }
    }

    /// Training configuration for *final* models (the paper retrains the
    /// searched structure at a larger dimension).
    pub fn final_train_cfg(&self) -> TrainConfig {
        let base = self.search_train_cfg();
        match self.scale {
            Scale::Tiny => TrainConfig { dim: 64, epochs: 60, batch_size: 32, ..base },
            Scale::Quick => TrainConfig { dim: 64, epochs: 100, batch_size: 32, ..base },
            Scale::Full => TrainConfig { dim: 128, epochs: 150, batch_size: 64, ..base },
        }
    }

    /// Greedy meta hyper-parameters at this scale (paper: N=256, K1=K2=8).
    pub fn greedy_cfg(&self) -> GreedyConfig {
        match self.scale {
            Scale::Tiny => GreedyConfig {
                b_max: 8,
                n_candidates: 24,
                k1: 4,
                k2: 6,
                rounds: 2,
                ..Default::default()
            },
            Scale::Quick => GreedyConfig {
                b_max: 8,
                n_candidates: 64,
                k1: 8,
                k2: 8,
                rounds: 2,
                ..Default::default()
            },
            Scale::Full => GreedyConfig {
                b_max: 10,
                n_candidates: 256,
                k1: 8,
                k2: 8,
                rounds: 4,
                ..Default::default()
            },
        }
    }

    /// Model budget for the search-comparison figures (Fig. 6-9).
    pub fn search_budget(&self) -> usize {
        match self.scale {
            Scale::Tiny => 16,
            Scale::Quick => 40,
            Scale::Full => 128,
        }
    }

    /// Run (or load from cache) the AutoSF search on a preset. Returns the
    /// cached structure and the trace when freshly searched.
    pub fn search_best(&self, p: Preset) -> (SearchedSf, Option<SearchTrace>) {
        let cache = self.out_dir.join(format!("searched_{}_{}.json", p.name(), self.scale_tag()));
        if let Ok(text) = std::fs::read_to_string(&cache) {
            if let Ok(sf) = serde_json::from_str::<SearchedSf>(&text) {
                return (sf, None);
            }
        }
        let ds = self.dataset(p);
        let mut driver = SearchDriver::new(&ds, self.search_train_cfg(), self.threads);
        // independent exploration per dataset (searches are separate runs
        // in the paper): derive the search seed from the dataset name
        let name_salt: u64 = p
            .name()
            .bytes()
            .fold(0xCBF2_9CE4_8422_2325, |acc, b| (acc ^ b as u64).wrapping_mul(0x1000_0000_01B3));
        let gcfg = GreedyConfig { seed: self.seed ^ name_salt, ..self.greedy_cfg() };
        let outcome = GreedySearch::new(gcfg).run(&mut driver);
        let sf = SearchedSf {
            dataset: ds.name.clone(),
            spec: outcome.best_spec,
            valid_mrr: outcome.best_mrr,
            models_trained: driver.models_trained(),
            seconds: driver.elapsed(),
        };
        let _ = std::fs::write(&cache, serde_json::to_string_pretty(&sf).expect("serialise"));
        (sf, Some(driver.trace.clone()))
    }

    /// Write a JSON artefact next to the printed table.
    pub fn write_json<T: Serialize>(&self, name: &str, value: &T) {
        let path = self.out_dir.join(format!("{}_{}.json", name, self.scale_tag()));
        match serde_json::to_string_pretty(value) {
            Ok(text) => {
                if let Err(e) = std::fs::write(&path, text) {
                    eprintln!("warning: could not write {}: {e}", path.display());
                } else {
                    eprintln!("(wrote {})", path.display());
                }
            }
            Err(e) => eprintln!("warning: could not serialise {name}: {e}"),
        }
    }

    /// Banner every binary prints first.
    pub fn banner(&self, what: &str) {
        println!(
            "== {} ==  scale={} threads={} seed={}",
            what,
            self.scale_tag(),
            self.threads,
            self.seed
        );
    }
}

//! Shared experiment harness.
//!
//! Every paper table/figure has a binary in `src/bin/` (see DESIGN.md §4);
//! this library holds what they share: the scale-aware experiment context,
//! the searched-structure disk cache (so `table5`/`fig4`/`fig5` reuse what
//! `table4` found instead of re-searching), the baseline model zoo, and
//! JSON/report output.
//!
//! Scale is controlled by `SCALE=tiny|quick|full` (default `quick`).

pub mod ctx;
pub mod zoo;

pub use ctx::ExpCtx;

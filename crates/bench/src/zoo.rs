//! The baseline model zoo: everything Tab. IV compares, trained and
//! evaluated behind one interface.

use kg_core::{Dataset, FilterIndex};
use kg_eval::ranking::{evaluate_parallel, RankMetrics};
use kg_linalg::SeededRng;
use kg_models::blm::classics;
use kg_models::nnm::{GenApprox, NnmConfig};
use kg_models::rules::{RuleConfig, RuleModel};
use kg_models::tdm::{RotatE, TdmConfig, TransE, TransH};
use kg_models::{BatchScorer, BlockSpec};
use kg_train::{train, TrainConfig};

/// Which baseline family a zoo entry belongs to (Tab. IV's "type" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Translational-distance models.
    Tdm,
    /// Neural-network models.
    Nnm,
    /// Bilinear models.
    Blm,
    /// Rule learners.
    Rules,
    /// The searched structure.
    AutoSf,
}

/// One Tab. IV row: name, family, metrics.
pub struct ZooResult {
    /// Model name as printed.
    pub name: String,
    /// Baseline family.
    pub family: Family,
    /// Test metrics.
    pub metrics: RankMetrics,
}

fn tdm_cfg(train_cfg: &TrainConfig) -> TdmConfig {
    TdmConfig {
        dim: train_cfg.dim,
        epochs: train_cfg.epochs,
        lr: 0.05,
        margin: 2.0,
        n_negatives: 4,
    }
}

/// Train and evaluate one BLM structure; returns test metrics.
pub fn eval_blm(
    spec: &BlockSpec,
    ds: &Dataset,
    cfg: &TrainConfig,
    filter: &FilterIndex,
    threads: usize,
) -> RankMetrics {
    let model = train(spec, ds, cfg);
    evaluate_parallel(&model, &ds.test, filter, threads)
}

/// Run the whole baseline zoo on a dataset (the Tab. IV column for it).
///
/// `include_expensive` adds the TDM/NNM/rule baselines; the BLM four and
/// the searched structure are always included.
pub fn run_zoo(
    ds: &Dataset,
    cfg: &TrainConfig,
    searched: Option<&BlockSpec>,
    threads: usize,
    include_expensive: bool,
) -> Vec<ZooResult> {
    let filter = FilterIndex::from_dataset(ds);
    let mut out = Vec::new();

    if include_expensive {
        let mut rng = SeededRng::new(404);
        let tcfg = tdm_cfg(cfg);

        let mut transe = TransE::init(ds.n_entities, ds.n_relations, tcfg, &mut rng);
        transe.train(&ds.train, &mut rng);
        out.push(ZooResult {
            name: "TransE".into(),
            family: Family::Tdm,
            metrics: eval_seq(&transe, ds, &filter, threads),
        });

        let mut transh = TransH::init(ds.n_entities, ds.n_relations, tcfg, &mut rng);
        transh.train(&ds.train, &mut rng);
        out.push(ZooResult {
            name: "TransH".into(),
            family: Family::Tdm,
            metrics: eval_seq(&transh, ds, &filter, threads),
        });

        let mut rotate = RotatE::init(ds.n_entities, ds.n_relations, tcfg, &mut rng);
        rotate.train(&ds.train, &mut rng);
        out.push(ZooResult {
            name: "RotatE".into(),
            family: Family::Tdm,
            metrics: eval_seq(&rotate, ds, &filter, threads),
        });

        let ncfg =
            NnmConfig { dim: cfg.dim.min(32), epochs: (cfg.epochs / 2).max(5), lr: 0.1, l2: 1e-4 };
        let mut nnm = GenApprox::init(ds.n_entities, ds.n_relations, ncfg, &mut rng);
        nnm.train(&ds.train, &mut rng);
        out.push(ZooResult {
            name: "MLP (Gen-Approx)".into(),
            family: Family::Nnm,
            metrics: eval_seq(&nnm, ds, &filter, threads),
        });

        let rules =
            RuleModel::learn(&ds.train, ds.n_entities, ds.n_relations, RuleConfig::default());
        out.push(ZooResult {
            name: "AnyBURL-lite".into(),
            family: Family::Rules,
            metrics: eval_seq(&rules, ds, &filter, threads),
        });
    }

    for (name, spec) in classics::all() {
        out.push(ZooResult {
            name: name.into(),
            family: Family::Blm,
            metrics: eval_blm(&spec, ds, cfg, &filter, threads),
        });
    }

    if let Some(spec) = searched {
        out.push(ZooResult {
            name: "AutoSF".into(),
            family: Family::AutoSf,
            metrics: eval_blm(spec, ds, cfg, &filter, threads),
        });
    }
    out
}

fn eval_seq<M: BatchScorer + Sync>(
    model: &M,
    ds: &Dataset,
    filter: &FilterIndex,
    threads: usize,
) -> RankMetrics {
    evaluate_parallel(model, &ds.test, filter, threads)
}

/// Print zoo results as a Tab. IV-style block.
pub fn print_zoo(dataset: &str, results: &[ZooResult]) {
    println!("\n--- {dataset} ---");
    println!("{:<18} {:>7} {:>7} {:>7}", "model", "MRR", "H@1", "H@10");
    for r in results {
        println!(
            "{:<18} {:>7.3} {:>6.1}% {:>6.1}%",
            r.name,
            r.metrics.mrr,
            r.metrics.hits1 * 100.0,
            r.metrics.hits10 * 100.0
        );
    }
}

//! Interpretation of searched structures — the machinery behind the
//! paper's case study (Sec. V-B2): which relation patterns can a structure
//! express, and is it genuinely new or a disguise of a known baseline?

use crate::invariance::equivalent;
use crate::srf::{srf, SRF_DIM};
use kg_models::blm::classics;
use kg_models::BlockSpec;
use serde::{Deserialize, Serialize};

/// What a structure can express and how it relates to the literature.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Explanation {
    /// Number of non-zero blocks.
    pub n_blocks: usize,
    /// Can `g(r)` be symmetric under some assignment (handles symmetric
    /// relations, Proposition 1)?
    pub can_be_symmetric: bool,
    /// Can `g(r)` be skew-symmetric (handles anti-symmetric relations)?
    pub can_be_skew_symmetric: bool,
    /// Satisfies the full expressiveness precondition (C1).
    pub expressive: bool,
    /// The 22-dim SRF signature.
    pub srf: [f32; SRF_DIM],
    /// Name of the invariance-equivalent human baseline, when one exists.
    pub equivalent_baseline: Option<String>,
    /// The paper-style formula.
    pub formula: String,
}

/// Explain a structure.
pub fn explain(spec: &BlockSpec) -> Explanation {
    let f = srf(spec);
    let can_sym = (0..11).any(|i| f[2 * i] == 1.0);
    let can_skew = (0..11).any(|i| f[2 * i + 1] == 1.0);
    let equivalent_baseline = classics::all()
        .into_iter()
        .find(|(_, c)| c.n_blocks() == spec.n_blocks() && equivalent(c, spec))
        .map(|(name, _)| name.to_string());
    Explanation {
        n_blocks: spec.n_blocks(),
        can_be_symmetric: can_sym,
        can_be_skew_symmetric: can_skew,
        expressive: can_sym && can_skew,
        srf: f,
        equivalent_baseline,
        formula: spec.formula(),
    }
}

impl Explanation {
    /// Multi-line human-readable report.
    pub fn report(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("structure: {} ({} blocks)\n", self.formula, self.n_blocks));
        s.push_str(&format!(
            "expressiveness: symmetric={} skew-symmetric={} (C1 {})\n",
            self.can_be_symmetric,
            self.can_be_skew_symmetric,
            if self.expressive { "satisfied" } else { "NOT satisfied" }
        ));
        match &self.equivalent_baseline {
            Some(name) => s.push_str(&format!("equivalent to the human-designed {name}\n")),
            None => s.push_str("new to the literature (no equivalent human baseline)\n"),
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariance::Transform;

    #[test]
    fn distmult_explanation() {
        let e = explain(&classics::distmult());
        assert!(e.can_be_symmetric);
        assert!(!e.can_be_skew_symmetric);
        assert!(!e.expressive);
        assert_eq!(e.equivalent_baseline.as_deref(), Some("DistMult"));
        assert!(e.report().contains("NOT satisfied"));
    }

    #[test]
    fn complex_explanation() {
        let e = explain(&classics::complex());
        assert!(e.expressive);
        assert_eq!(e.equivalent_baseline.as_deref(), Some("ComplEx"));
    }

    #[test]
    fn disguised_simple_is_recognised() {
        let t = Transform {
            ent_perm: [3, 1, 0, 2],
            rel_perm: [2, 0, 3, 1],
            flips: [true, true, false, false],
        };
        let disguised = t.apply(&classics::simple());
        let e = explain(&disguised);
        assert_eq!(e.equivalent_baseline.as_deref(), Some("SimplE"));
    }

    #[test]
    fn novel_structure_reports_new() {
        // DistMult plus off-diagonal couplings — not any of the four
        let spec = classics::distmult()
            .extended(kg_models::Block::new(0, 2, 1, 1))
            .expect("free cell")
            .extended(kg_models::Block::new(1, 3, 0, -1))
            .expect("free cell");
        let e = explain(&spec);
        assert_eq!(e.equivalent_baseline, None);
        assert!(e.report().contains("new to the literature"));
    }
}

//! The comparison searchers of Fig. 6: random search and a TPE "Bayes"
//! search over fixed-size structures. (The Gen-Approx comparison model
//! lives in `kg_models::nnm`; the greedy ablations are flags on
//! [`crate::GreedyConfig`].)

use crate::search::SearchDriver;
use crate::space::random_spec;
use kg_linalg::SeededRng;
use kg_models::{Block, BlockSpec};
use kg_train::tpe::{Param, Tpe};

/// Random search: sample C2-valid structures with `b` blocks, train up to
/// `budget` models. Returns the best validation MRR.
pub fn random_search(driver: &mut SearchDriver<'_>, b: usize, budget: usize, seed: u64) -> f64 {
    let mut rng = SeededRng::new(seed ^ 0x7A5D_0000_1111_2222);
    let mut best = 0.0f64;
    while driver.models_trained() < budget {
        let Some(spec) = random_spec(b, &mut rng, 200) else { break };
        if driver.seen(&spec) {
            continue;
        }
        let mrr = driver.evaluate(&spec);
        best = best.max(mrr);
    }
    best
}

/// Encode/decode between a structure with `b` blocks and the TPE's
/// categorical space: per block (cell ∈ 0..16, relation ∈ 0..4, sign ∈ 0..2).
pub fn tpe_space(b: usize) -> Vec<Param> {
    let mut space = Vec::with_capacity(3 * b);
    for _ in 0..b {
        space.push(Param::Choice { n: 16 });
        space.push(Param::Choice { n: 4 });
        space.push(Param::Choice { n: 2 });
    }
    space
}

/// Decode a TPE point into a structure; `None` when two blocks collide on
/// a cell.
pub fn decode_point(point: &[f64]) -> Option<BlockSpec> {
    assert!(point.len().is_multiple_of(3), "point length must be a multiple of 3");
    let blocks: Vec<Block> = point
        .chunks(3)
        .map(|c| {
            let cell = (c[0] as usize).min(15);
            Block {
                hc: (cell / 4) as u8,
                rc: (c[1] as usize).min(3) as u8,
                tc: (cell % 4) as u8,
                sign: if c[2] as usize == 0 { 1 } else { -1 },
            }
        })
        .collect();
    BlockSpec::try_new(blocks)
}

/// Bayes (TPE) search over structures with `b` blocks; trains up to
/// `budget` models. Invalid decodings are penalised with score 0 so the
/// estimator learns to avoid colliding cells. Returns the best MRR.
pub fn bayes_search(driver: &mut SearchDriver<'_>, b: usize, budget: usize, seed: u64) -> f64 {
    let mut rng = SeededRng::new(seed ^ 0xBA1E_5EED_0000_0001);
    let mut tpe = Tpe::new(tpe_space(b)).with_startup(8);
    let mut best = 0.0f64;
    let mut stall = 0usize;
    while driver.models_trained() < budget && stall < budget * 40 {
        let point = tpe.suggest(&mut rng);
        match decode_point(&point) {
            Some(spec) if crate::filter::satisfies_c2(&spec) && !driver.seen(&spec) => {
                let mrr = driver.evaluate(&spec);
                tpe.observe(point, mrr);
                best = best.max(mrr);
                stall = 0;
            }
            _ => {
                // structurally invalid or already trained: tell the
                // estimator this region is bad, at zero training cost
                tpe.observe(point, 0.0);
                stall += 1;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_datagen::{preset, Preset, Scale};
    use kg_train::TrainConfig;

    fn driver(ds: &kg_core::Dataset) -> SearchDriver<'_> {
        let cfg = TrainConfig { dim: 16, epochs: 5, batch_size: 256, ..Default::default() };
        SearchDriver::new(ds, cfg, 2)
    }

    #[test]
    fn random_search_respects_budget() {
        let ds = preset(Preset::Wn18rrLike, Scale::Tiny, 17);
        let mut d = driver(&ds);
        let best = random_search(&mut d, 6, 6, 1);
        assert!(d.models_trained() <= 6);
        assert!(best > 0.0);
    }

    #[test]
    fn decode_roundtrip() {
        // blocks (0,0,0,+) and (1,1,1,-): cells 0 and 5
        let point = vec![0.0, 0.0, 0.0, 5.0, 1.0, 1.0];
        let spec = decode_point(&point).expect("valid");
        assert_eq!(spec.n_blocks(), 2);
        let m = spec.substitute_matrix();
        assert_eq!(m[0][0], 1);
        assert_eq!(m[1][1], -2);
    }

    #[test]
    fn decode_rejects_cell_collisions() {
        // both blocks on cell 3
        let point = vec![3.0, 0.0, 0.0, 3.0, 1.0, 0.0];
        assert!(decode_point(&point).is_none());
    }

    #[test]
    fn bayes_search_trains_models() {
        let ds = preset(Preset::Wn18rrLike, Scale::Tiny, 18);
        let mut d = driver(&ds);
        let best = bayes_search(&mut d, 6, 5, 2);
        assert!(d.models_trained() >= 1);
        assert!(best >= 0.0);
    }
}

//! The candidate filter (Sec. IV-B2): constraint (C2) plus invariance
//! deduplication.
//!
//! (C2) on the 4×4 substitute matrix:
//! * no zero rows or columns (otherwise some embedding dimensions are never
//!   optimised),
//! * all four relation components `r1..r4` appear,
//! * no repeated rows or columns (repeated rows make components
//!   indistinguishable — a degenerate structure).
//!
//! Deduplication: a [`DedupFilter`] keeps the canonical form of every
//! structure it has accepted and rejects newcomers whose orbit was already
//! seen — this is what cuts the f4 space from ~700k raw structures to the
//! handful the paper reports.

use crate::invariance::canonical;
use kg_core::fxhash::FxHashSet;
use kg_models::{Block, BlockSpec};

/// Does the structure satisfy constraint (C2)?
pub fn satisfies_c2(spec: &BlockSpec) -> bool {
    let m = spec.substitute_matrix();
    // no zero rows / columns
    for i in 0..4 {
        if (0..4).all(|j| m[i][j] == 0) {
            return false;
        }
        if (0..4).all(|j| m[j][i] == 0) {
            return false;
        }
    }
    // covers all four relation components
    let mut used = [false; 4];
    for b in spec.blocks() {
        used[b.rc as usize] = true;
    }
    if used.iter().any(|u| !u) {
        return false;
    }
    // no repeated rows / columns (as signed vectors)
    for i in 0..4 {
        for j in i + 1..4 {
            if m[i] == m[j] {
                return false;
            }
            if (0..4).all(|k| m[k][i] == m[k][j]) {
                return false;
            }
        }
    }
    true
}

/// A set of already-seen structure orbits.
#[derive(Debug, Default)]
pub struct DedupFilter {
    seen: FxHashSet<Vec<Block>>,
}

impl DedupFilter {
    /// Empty filter.
    pub fn new() -> Self {
        DedupFilter::default()
    }

    /// Number of distinct orbits recorded.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// Has an equivalent structure been seen before?
    pub fn contains(&self, spec: &BlockSpec) -> bool {
        self.seen.contains(canonical(spec).blocks())
    }

    /// Record a structure's orbit; returns `false` if it was already known.
    pub fn insert(&mut self, spec: &BlockSpec) -> bool {
        self.seen.insert(canonical(spec).blocks().to_vec())
    }

    /// The combined filter of Alg. 2 step 5: accept iff (C2) holds and the
    /// orbit is new; accepted structures are recorded.
    pub fn admit(&mut self, spec: &BlockSpec) -> bool {
        satisfies_c2(spec) && self.insert(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_models::blm::classics;

    #[test]
    fn classics_satisfy_c2() {
        for (name, spec) in classics::all() {
            assert!(satisfies_c2(&spec), "{name} must satisfy C2");
        }
    }

    #[test]
    fn zero_row_fails_c2() {
        // all blocks in rows 0..3, row 3 of the matrix empty, col 3 empty
        let spec = BlockSpec::new(vec![
            Block::new(0, 0, 0, 1),
            Block::new(1, 1, 1, 1),
            Block::new(2, 2, 2, 1),
            Block::new(2, 3, 1, 1),
        ]);
        assert!(!satisfies_c2(&spec));
    }

    #[test]
    fn missing_relation_component_fails_c2() {
        // r4 never used
        let spec = BlockSpec::new(vec![
            Block::new(0, 0, 0, 1),
            Block::new(1, 1, 1, 1),
            Block::new(2, 2, 2, 1),
            Block::new(3, 0, 3, 1),
        ]);
        assert!(!satisfies_c2(&spec));
    }

    #[test]
    fn repeated_rows_fail_c2() {
        // rows 0 and 1 identical: same relation in the same columns
        let spec = BlockSpec::new(vec![
            Block::new(0, 0, 0, 1),
            Block::new(0, 1, 1, 1),
            Block::new(1, 0, 0, 1),
            Block::new(1, 1, 1, 1),
            Block::new(2, 2, 2, 1),
            Block::new(3, 3, 3, 1),
        ])
        // wait: cells (0,0) and (1,0) both exist; the rows as vectors are
        // [r1, r2, 0, 0] and [r1, r2, 0, 0] — identical.
        ;
        assert!(!satisfies_c2(&spec));
    }

    #[test]
    fn dedup_filter_rejects_equivalents() {
        let mut f = DedupFilter::new();
        let spec = classics::simple();
        assert!(f.admit(&spec));
        // an equivalent permutation of SimplE must be rejected
        let t = crate::invariance::Transform {
            ent_perm: [1, 0, 3, 2],
            rel_perm: [2, 3, 0, 1],
            flips: [true, false, false, true],
        };
        assert!(!f.admit(&t.apply(&spec)));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn dedup_filter_accepts_distinct_structures() {
        let mut f = DedupFilter::new();
        for (name, spec) in classics::all() {
            assert!(f.admit(&spec), "{name} should be admitted");
        }
        assert_eq!(f.len(), 4);
    }

    #[test]
    fn admit_rejects_c2_violations_without_recording() {
        let mut f = DedupFilter::new();
        let bad = BlockSpec::new(vec![
            Block::new(0, 0, 0, 1),
            Block::new(1, 1, 1, 1),
            Block::new(2, 2, 2, 1),
            Block::new(3, 0, 3, 1),
        ]);
        assert!(!f.admit(&bad));
        assert!(f.is_empty());
    }
}

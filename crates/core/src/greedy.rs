//! The progressive greedy search — Alg. 2.
//!
//! Starting from the complete filtered f4 space, each stage `b = 6, 8, …, B`
//! generates `N` candidates by extending random top-`K1` parents from stage
//! `b-2` with two random multiplicative terms (Eq. 7), pushes them through
//! the filter (C2 + invariance dedup), keeps the `K2` most promising
//! according to the predictor, trains those in parallel and records their
//! validation MRR. The predictor refits on all records after every stage.
//!
//! The `use_filter` / `use_predictor` switches implement the ablations of
//! Fig. 7 (and plain "Greedy" when both are off); `feature` switches SRF
//! vs one-hot for Fig. 8.

use crate::filter::DedupFilter;
use crate::predictor::{FeatureKind, PerformancePredictor};
use crate::search::SearchDriver;
use crate::space::{enumerate_b4, extend_two};
use kg_linalg::SeededRng;
use kg_models::BlockSpec;
use serde::{Deserialize, Serialize};

/// Meta hyper-parameters of Alg. 2.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GreedyConfig {
    /// Largest structure size `B` (inclusive; stages run b = 6, 8, …, B).
    pub b_max: usize,
    /// Candidates generated per stage (`N`, paper default 256).
    pub n_candidates: usize,
    /// Parents sampled from the top of the previous stage (`K1`, paper 8).
    pub k1: usize,
    /// Candidates trained per stage (`K2`, paper 8).
    pub k2: usize,
    /// Training batches per stage: the paper iterates steps 2-11 in an
    /// inner loop (e.g. 32 × 8 models); we run `rounds` rounds of
    /// N-generate / K2-train per stage.
    pub rounds: usize,
    /// Predictor feature encoding.
    pub feature: FeatureKind,
    /// Apply the C2 + invariance filter (Fig. 7 ablation).
    pub use_filter: bool,
    /// Use the predictor to pick the K2 (Fig. 7 ablation; random when off).
    pub use_predictor: bool,
    /// RNG seed for candidate generation.
    pub seed: u64,
}

impl Default for GreedyConfig {
    fn default() -> Self {
        GreedyConfig {
            b_max: 8,
            n_candidates: 64,
            k1: 8,
            k2: 8,
            rounds: 2,
            feature: FeatureKind::Srf,
            use_filter: true,
            use_predictor: true,
            seed: 0,
        }
    }
}

/// Wall-clock accounting of one greedy stage round (Tab. VII rows).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct StageTiming {
    /// Structure size `b` of this stage.
    pub b: usize,
    /// Seconds in candidate generation + filtering (Alg. 2 steps 2-6).
    pub filter_secs: f64,
    /// Seconds in predictor ranking + refit (steps 7, 10-11).
    pub predictor_secs: f64,
    /// Seconds training + evaluating the selected candidates (steps 8-9).
    pub train_eval_secs: f64,
}

/// Result of a greedy run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GreedyOutcome {
    /// The best structure found (by validation MRR).
    pub best_spec: BlockSpec,
    /// Its validation MRR.
    pub best_mrr: f64,
    /// Per-stage timing rows.
    pub timings: Vec<StageTiming>,
}

/// The progressive greedy searcher.
pub struct GreedySearch {
    cfg: GreedyConfig,
    predictor: PerformancePredictor,
}

impl GreedySearch {
    /// Create with the given meta hyper-parameters.
    pub fn new(cfg: GreedyConfig) -> Self {
        assert!(cfg.b_max >= 4 && cfg.b_max.is_multiple_of(2), "B must be an even number ≥ 4");
        assert!(cfg.k1 > 0 && cfg.k2 > 0 && cfg.n_candidates >= cfg.k2, "bad K1/K2/N");
        let predictor = PerformancePredictor::new(cfg.feature, cfg.seed ^ 0x51F0);
        GreedySearch { cfg, predictor }
    }

    /// Run Alg. 2 against a driver. The driver's trace accumulates every
    /// trained structure, so any-time curves come for free.
    pub fn run(&mut self, driver: &mut SearchDriver<'_>) -> GreedyOutcome {
        let cfg = self.cfg;
        let mut rng = SeededRng::new(cfg.seed ^ 0xA5A5_5A5A_1234_8765);
        let mut timings = Vec::new();

        // Stage b=4: the filtered space is tiny — evaluate it completely
        // (the paper makes the same exception, Sec. IV-B1).
        let t0 = std::time::Instant::now();
        let b4 = enumerate_b4();
        let filter_secs = t0.elapsed().as_secs_f64();
        let t0 = std::time::Instant::now();
        let scores4 = driver.evaluate_batch(&b4);
        timings.push(StageTiming {
            b: 4,
            filter_secs,
            predictor_secs: 0.0,
            train_eval_secs: t0.elapsed().as_secs_f64(),
        });
        // per-stage record of (spec, mrr)
        let mut tiers: Vec<Vec<(BlockSpec, f64)>> =
            vec![b4.iter().cloned().zip(scores4.iter().copied()).collect()];
        let mut all_records: Vec<(BlockSpec, f64)> = tiers[0].clone();
        let mut dedup = DedupFilter::new();
        if cfg.use_filter {
            for s in &b4 {
                dedup.insert(s);
            }
        }

        let mut b = 6;
        while b <= cfg.b_max {
            let mut stage = StageTiming { b, ..Default::default() };
            let mut stage_records: Vec<(BlockSpec, f64)> = Vec::new();
            for _round in 0..cfg.rounds {
                // ---- steps 2-6: generate N candidates through the filter
                let t0 = std::time::Instant::now();
                let parents = &tiers[(b - 4) / 2 - 1];
                let mut sorted_parents: Vec<&(BlockSpec, f64)> = parents.iter().collect();
                sorted_parents.sort_by(|a, b| b.1.total_cmp(&a.1));
                let top = &sorted_parents[..cfg.k1.min(sorted_parents.len())];
                let mut candidates: Vec<BlockSpec> = Vec::with_capacity(cfg.n_candidates);
                let mut attempts = 0usize;
                let max_attempts = cfg.n_candidates * 400;
                while candidates.len() < cfg.n_candidates && attempts < max_attempts {
                    attempts += 1;
                    let parent = &top[rng.below(top.len())].0;
                    let Some(child) = extend_two(parent, &mut rng) else { continue };
                    let admit = if cfg.use_filter {
                        !driver.seen(&child) && dedup.admit(&child)
                    } else {
                        // no-filter ablation: only structural validity and
                        // exact-duplicate suppression within this batch
                        satisfies_c2_weakly(&child) && !candidates.contains(&child)
                    };
                    if admit {
                        candidates.push(child);
                    }
                }
                stage.filter_secs += t0.elapsed().as_secs_f64();
                if candidates.is_empty() {
                    break;
                }

                // ---- step 7: predictor picks K2
                let t0 = std::time::Instant::now();
                let chosen: Vec<BlockSpec> = if cfg.use_predictor {
                    let ranked = self.predictor.rank(&candidates);
                    ranked.into_iter().take(cfg.k2).map(|i| candidates[i].clone()).collect()
                } else {
                    let picks = rng.sample_distinct(candidates.len(), cfg.k2.min(candidates.len()));
                    picks.into_iter().map(|i| candidates[i].clone()).collect()
                };
                stage.predictor_secs += t0.elapsed().as_secs_f64();

                // ---- steps 8-9: train + evaluate
                let t0 = std::time::Instant::now();
                let scores = driver.evaluate_batch(&chosen);
                stage.train_eval_secs += t0.elapsed().as_secs_f64();

                // ---- steps 10-11: record + refit predictor
                let t0 = std::time::Instant::now();
                for (spec, mrr) in chosen.into_iter().zip(scores) {
                    stage_records.push((spec.clone(), mrr));
                    all_records.push((spec, mrr));
                }
                if cfg.use_predictor {
                    self.predictor.fit(&all_records);
                }
                stage.predictor_secs += t0.elapsed().as_secs_f64();
            }
            if stage_records.is_empty() {
                // nothing could be generated at this size; stop growing
                timings.push(stage);
                break;
            }
            tiers.push(stage_records);
            timings.push(stage);
            b += 2;
        }

        let best = driver.best().expect("at least the f4 space was evaluated");
        GreedyOutcome { best_spec: best.spec.clone(), best_mrr: best.mrr, timings }
    }
}

/// The weakened admission used by the no-filter ablation: blocks must not
/// leave unused embedding components (training would silently waste
/// capacity and the comparison would be vacuous), but duplicate rows and
/// invariance equivalence go unchecked.
fn satisfies_c2_weakly(spec: &BlockSpec) -> bool {
    let m = spec.substitute_matrix();
    for i in 0..4 {
        if (0..4).all(|j| m[i][j] == 0) || (0..4).all(|j| m[j][i] == 0) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_datagen::{preset, Preset, Scale};
    use kg_train::TrainConfig;

    fn tiny_cfg() -> (TrainConfig, GreedyConfig) {
        (
            TrainConfig { dim: 16, epochs: 6, batch_size: 256, ..Default::default() },
            GreedyConfig {
                b_max: 6,
                n_candidates: 12,
                k1: 4,
                k2: 4,
                rounds: 1,
                ..Default::default()
            },
        )
    }

    #[test]
    fn greedy_runs_and_improves_over_worst_f4() {
        let ds = preset(Preset::Wn18rrLike, Scale::Tiny, 7);
        let (tcfg, gcfg) = tiny_cfg();
        let mut driver = SearchDriver::new(&ds, tcfg, 2);
        let mut search = GreedySearch::new(gcfg);
        let outcome = search.run(&mut driver);
        assert!(outcome.best_mrr > 0.0);
        // evaluated the 5 f4 structures plus one round of K2 at b=6
        assert!(driver.models_trained() >= 5 + 4, "{} models", driver.models_trained());
        let worst_f4 =
            driver.trace.records.iter().take(5).map(|r| r.mrr).fold(f64::INFINITY, f64::min);
        assert!(outcome.best_mrr >= worst_f4);
        assert_eq!(outcome.best_spec.n_blocks() % 2, 0);
    }

    #[test]
    fn timings_cover_all_stages() {
        let ds = preset(Preset::Wn18rrLike, Scale::Tiny, 8);
        let (tcfg, gcfg) = tiny_cfg();
        let mut driver = SearchDriver::new(&ds, tcfg, 2);
        let outcome = GreedySearch::new(gcfg).run(&mut driver);
        let bs: Vec<usize> = outcome.timings.iter().map(|t| t.b).collect();
        assert_eq!(bs, vec![4, 6]);
        assert!(outcome.timings[1].train_eval_secs > 0.0);
    }

    #[test]
    fn ablations_run() {
        let ds = preset(Preset::Wn18rrLike, Scale::Tiny, 9);
        let (tcfg, mut gcfg) = tiny_cfg();
        gcfg.use_filter = false;
        gcfg.use_predictor = false;
        let mut driver = SearchDriver::new(&ds, tcfg, 2);
        let outcome = GreedySearch::new(gcfg).run(&mut driver);
        assert!(outcome.best_mrr > 0.0);
    }

    #[test]
    #[should_panic(expected = "B must be an even number")]
    fn odd_b_rejected() {
        let (_, mut gcfg) = tiny_cfg();
        gcfg.b_max = 7;
        GreedySearch::new(gcfg);
    }
}

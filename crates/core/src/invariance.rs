//! The invariance group of scoring-function structures (Sec. IV-A2).
//!
//! Three families of transforms leave a structure's trainable semantics
//! unchanged (Fig. 2d-f):
//!
//! 1. simultaneously permuting head and tail components (h and t share
//!    entity embeddings, so the permutation is applied to both `hc` and
//!    `tc`);
//! 2. permuting relation components;
//! 3. flipping the sign of any relation component (flips the sign of every
//!    block using it).
//!
//! That is `4! × 4! × 2⁴ = 9,216` transforms. [`canonical`] maps a
//! structure to the lexicographically-least member of its orbit, giving the
//! equality test the filter uses to avoid training equivalent structures.

use kg_models::{Block, BlockSpec};

/// All 24 permutations of `{0, 1, 2, 3}`.
pub const PERMS: [[u8; 4]; 24] = {
    let mut out = [[0u8; 4]; 24];
    let mut idx = 0;
    let mut a = 0u8;
    while a < 4 {
        let mut b = 0u8;
        while b < 4 {
            let mut c = 0u8;
            while c < 4 {
                let mut d = 0u8;
                while d < 4 {
                    if a != b && a != c && a != d && b != c && b != d && c != d {
                        out[idx] = [a, b, c, d];
                        idx += 1;
                    }
                    d += 1;
                }
                c += 1;
            }
            b += 1;
        }
        a += 1;
    }
    out
};

/// One group element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transform {
    /// Permutation applied to entity components (both `hc` and `tc`).
    pub ent_perm: [u8; 4],
    /// Permutation applied to relation components.
    pub rel_perm: [u8; 4],
    /// Sign flip per relation component (`true` = flip).
    pub flips: [bool; 4],
}

impl Transform {
    /// The identity transform.
    pub fn identity() -> Self {
        Transform { ent_perm: [0, 1, 2, 3], rel_perm: [0, 1, 2, 3], flips: [false; 4] }
    }

    /// Apply to one block.
    pub fn apply_block(&self, b: Block) -> Block {
        let sign = if self.flips[b.rc as usize] { -b.sign } else { b.sign };
        Block {
            hc: self.ent_perm[b.hc as usize],
            rc: self.rel_perm[b.rc as usize],
            tc: self.ent_perm[b.tc as usize],
            sign,
        }
    }

    /// Apply to a whole structure.
    pub fn apply(&self, spec: &BlockSpec) -> BlockSpec {
        BlockSpec::new(spec.blocks().iter().map(|&b| self.apply_block(b)).collect())
    }

    /// Group composition: `self ∘ other` (apply `other` first).
    pub fn compose(&self, other: &Transform) -> Transform {
        let mut ent_perm = [0u8; 4];
        let mut rel_perm = [0u8; 4];
        let mut flips = [false; 4];
        for i in 0..4 {
            ent_perm[i] = self.ent_perm[other.ent_perm[i] as usize];
            rel_perm[i] = self.rel_perm[other.rel_perm[i] as usize];
            // other maps component i to other.rel_perm[i], flipping by
            // other.flips[i]; self then flips by self.flips[target].
            flips[i] = other.flips[i] ^ self.flips[other.rel_perm[i] as usize];
        }
        Transform { ent_perm, rel_perm, flips }
    }

    /// Group inverse.
    pub fn inverse(&self) -> Transform {
        let mut ent_perm = [0u8; 4];
        let mut rel_perm = [0u8; 4];
        let mut flips = [false; 4];
        for i in 0..4 {
            ent_perm[self.ent_perm[i] as usize] = i as u8;
            rel_perm[self.rel_perm[i] as usize] = i as u8;
        }
        for i in 0..4 {
            flips[i] = self.flips[rel_perm[i] as usize];
        }
        Transform { ent_perm, rel_perm, flips }
    }

    /// Enumerate the whole group (9,216 elements).
    pub fn all() -> impl Iterator<Item = Transform> {
        PERMS.iter().flat_map(move |&ent_perm| {
            PERMS.iter().flat_map(move |&rel_perm| {
                (0..16u8).map(move |mask| Transform {
                    ent_perm,
                    rel_perm,
                    flips: [mask & 1 != 0, mask & 2 != 0, mask & 4 != 0, mask & 8 != 0],
                })
            })
        })
    }
}

/// Canonical signature of a structure's orbit: the lexicographically-least
/// block list over all 9,216 transforms. Two structures are equivalent iff
/// their canonical forms are equal.
pub fn canonical(spec: &BlockSpec) -> BlockSpec {
    let mut best: Option<Vec<Block>> = None;
    for t in Transform::all() {
        let mut blocks: Vec<Block> = spec.blocks().iter().map(|&b| t.apply_block(b)).collect();
        blocks.sort_unstable();
        match &best {
            Some(cur) if blocks >= *cur => {}
            _ => best = Some(blocks),
        }
    }
    BlockSpec::new(best.expect("group is non-empty"))
}

/// Are two structures in the same orbit?
pub fn equivalent(a: &BlockSpec, b: &BlockSpec) -> bool {
    if a.n_blocks() != b.n_blocks() {
        return false;
    }
    canonical(a) == canonical(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_linalg::SeededRng;
    use kg_models::blm::classics;

    fn random_transform(rng: &mut SeededRng) -> Transform {
        Transform {
            ent_perm: PERMS[rng.below(24)],
            rel_perm: PERMS[rng.below(24)],
            flips: [rng.coin(), rng.coin(), rng.coin(), rng.coin()],
        }
    }

    #[test]
    fn perms_are_distinct_and_complete() {
        let mut set = std::collections::HashSet::new();
        for p in PERMS {
            assert!(set.insert(p));
            let mut sorted = p;
            sorted.sort_unstable();
            assert_eq!(sorted, [0, 1, 2, 3]);
        }
        assert_eq!(set.len(), 24);
    }

    #[test]
    fn group_size_is_9216() {
        assert_eq!(Transform::all().count(), 24 * 24 * 16);
    }

    #[test]
    fn identity_fixes_everything() {
        let id = Transform::identity();
        for (_, spec) in classics::all() {
            assert_eq!(id.apply(&spec), spec);
        }
    }

    #[test]
    fn inverse_undoes_apply() {
        let mut rng = SeededRng::new(61);
        let spec = classics::complex();
        for _ in 0..50 {
            let t = random_transform(&mut rng);
            let back = t.inverse().apply(&t.apply(&spec));
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn compose_matches_sequential_application() {
        let mut rng = SeededRng::new(62);
        let spec = classics::analogy();
        for _ in 0..50 {
            let t1 = random_transform(&mut rng);
            let t2 = random_transform(&mut rng);
            let seq = t1.apply(&t2.apply(&spec));
            let comp = t1.compose(&t2).apply(&spec);
            assert_eq!(seq, comp);
        }
    }

    #[test]
    fn canonical_is_orbit_invariant() {
        let mut rng = SeededRng::new(63);
        for (_, spec) in classics::all() {
            let c = canonical(&spec);
            for _ in 0..20 {
                let t = random_transform(&mut rng);
                assert_eq!(canonical(&t.apply(&spec)), c);
            }
        }
    }

    #[test]
    fn equivalent_detects_permuted_simple() {
        // Fig. 2d: permute entity components of SimplE
        let spec = classics::simple();
        let t = Transform { ent_perm: [0, 2, 1, 3], rel_perm: [0, 1, 2, 3], flips: [false; 4] };
        let permuted = t.apply(&spec);
        assert_ne!(permuted, spec, "the raw block lists differ");
        assert!(equivalent(&permuted, &spec), "but they are in the same orbit");
    }

    #[test]
    fn flip_signs_is_equivalent() {
        // Fig. 2f: flip the signs of r2 and r4
        let spec = classics::complex();
        let t = Transform {
            ent_perm: [0, 1, 2, 3],
            rel_perm: [0, 1, 2, 3],
            flips: [false, true, false, true],
        };
        assert!(equivalent(&t.apply(&spec), &spec));
    }

    #[test]
    fn different_classics_are_not_equivalent() {
        let models = classics::all();
        for i in 0..models.len() {
            for j in i + 1..models.len() {
                assert!(
                    !equivalent(&models[i].1, &models[j].1),
                    "{} ~ {}",
                    models[i].0,
                    models[j].0
                );
            }
        }
    }

    #[test]
    fn semantic_invariance_scores_match_after_transform() {
        // h>g1(r)t == h̄>g2(r̄)t̄ when embeddings are permuted/flipped
        // consistently (the training-equivalence argument of Sec. IV-A2).
        let mut rng = SeededRng::new(64);
        let spec = classics::analogy();
        let t = random_transform(&mut rng);
        let transformed = t.apply(&spec);
        let dsub = 3;
        let d = 4 * dsub;
        let mut h = vec![0.0f32; d];
        let mut r = vec![0.0f32; d];
        let mut tt = vec![0.0f32; d];
        rng.fill_normal(1.0, &mut h);
        rng.fill_normal(1.0, &mut r);
        rng.fill_normal(1.0, &mut tt);
        // build the transformed embeddings: component c of the new vector
        // is component c' of the old where perm[c'] = c; signs flip for
        // flipped relation components.
        // flips are indexed by the *old* relation component (the transform
        // flips block signs by `flips[old rc]`), so the compensating
        // embedding flip also keys on the old component index.
        let permute = |v: &[f32], perm: [u8; 4], flips: Option<[bool; 4]>| {
            let mut out = vec![0.0f32; d];
            for c_old in 0..4usize {
                let c_new = perm[c_old] as usize;
                for i in 0..dsub {
                    let mut val = v[c_old * dsub + i];
                    if let Some(f) = flips {
                        if f[c_old] {
                            val = -val;
                        }
                    }
                    out[c_new * dsub + i] = val;
                }
            }
            out
        };
        let h2 = permute(&h, t.ent_perm, None);
        let t2 = permute(&tt, t.ent_perm, None);
        let r2 = permute(&r, t.rel_perm, Some(t.flips));
        let s1 = spec.score(&h, &r, &tt, dsub);
        let s2 = transformed.score(&h2, &r2, &t2, dsub);
        assert!((s1 - s2).abs() < 1e-3, "scores diverge: {s1} vs {s2}");
    }
}

//! AutoSF: automated search for bilinear scoring-function structures
//! (Zhang, Yao, Dai, Chen — ICDE 2020).
//!
//! Given a knowledge graph, AutoSF searches the space of unified bilinear
//! structures ([`kg_models::BlockSpec`], Definition 2) with a progressive
//! greedy algorithm (Alg. 2) whose cost is kept tractable by two
//! domain-specific components:
//!
//! * the **filter** ([`filter`]) enforces structural constraint (C2) and
//!   discards candidates equivalent under the invariance group
//!   ([`invariance`]: component permutations × sign flips, 9,216 transforms
//!   — Sec. IV-A2);
//! * the **predictor** ([`predictor`]) ranks surviving candidates by
//!   symmetry-related features ([`srf`], Appendix C) so only the most
//!   promising `K2` are actually trained (Sec. IV-B3).
//!
//! [`search`] wires structure evaluation (train on `S_tra`, score by
//! validation MRR — the bi-level objective of Definition 1) and [`greedy`]
//! runs Alg. 2 on top. [`baselines`] holds the comparison searchers of
//! Fig. 6/7: random, TPE ("Bayes"), and the ablated greedy variants.
//!
//! ```no_run
//! use autosf::{GreedyConfig, GreedySearch, SearchDriver};
//! use kg_datagen::{preset, Preset, Scale};
//! use kg_train::TrainConfig;
//!
//! let ds = preset(Preset::Wn18rrLike, Scale::Tiny, 42);
//! let mut driver = SearchDriver::new(&ds, TrainConfig::default(), 4);
//! let outcome = GreedySearch::new(GreedyConfig::default()).run(&mut driver);
//! println!("best SF ({:.3} MRR):\n{}", outcome.best_mrr, outcome.best_spec.render());
//! ```

// Index loops mirror the paper's subscript notation in numeric kernels.
#![allow(clippy::needless_range_loop)]
pub mod analysis;
pub mod baselines;
pub mod filter;
pub mod greedy;
pub mod invariance;
pub mod predictor;
pub mod search;
pub mod space;
pub mod srf;

pub use greedy::{GreedyConfig, GreedySearch};
pub use predictor::{FeatureKind, PerformancePredictor};
pub use search::{SearchDriver, SearchRecord, SearchTrace};

//! The performance predictor (Sec. IV-B3).
//!
//! A tiny regression network maps structure features to predicted
//! validation MRR. It only has to *rank* candidates (Principle (P1)) and
//! must learn from the few dozen structures trained so far (Principle
//! (P2)) — hence the 22-2-1 network over [`crate::srf`] features. The
//! one-hot alternative (96-8-1, the PNAS-style encoding the paper compares
//! against in Fig. 8) is provided for that experiment.

use crate::srf::{srf, SRF_DIM};
use kg_linalg::{Activation, Adam, Mlp, SeededRng};
use kg_models::BlockSpec;
use serde::{Deserialize, Serialize};

/// Which feature encoding the predictor uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureKind {
    /// 22-dim symmetry-related features, 22-2-1 network (the paper's).
    Srf,
    /// 96-dim one-hot cell encoding, 96-8-1 network (Fig. 8 baseline).
    OneHot,
}

/// One-hot feature dimension: 16 cells × (sign⁺, sign⁻, r1..r4).
pub const ONEHOT_DIM: usize = 96;

/// Encode a structure as the one-hot feature vector.
pub fn one_hot(spec: &BlockSpec) -> [f32; ONEHOT_DIM] {
    let mut f = [0.0f32; ONEHOT_DIM];
    for b in spec.blocks() {
        let cell = (b.hc as usize) * 4 + (b.tc as usize);
        let base = cell * 6;
        if b.sign > 0 {
            f[base] = 1.0;
        } else {
            f[base + 1] = 1.0;
        }
        f[base + 2 + b.rc as usize] = 1.0;
    }
    f
}

/// The trainable predictor.
pub struct PerformancePredictor {
    kind: FeatureKind,
    mlp: Mlp,
    seed: u64,
    /// Full-batch Adam epochs per [`PerformancePredictor::fit`].
    pub fit_epochs: usize,
}

impl PerformancePredictor {
    /// Fresh predictor of the given kind.
    pub fn new(kind: FeatureKind, seed: u64) -> Self {
        let mut rng = SeededRng::new(seed);
        let mlp = Self::fresh_mlp(kind, &mut rng);
        PerformancePredictor { kind, mlp, seed, fit_epochs: 400 }
    }

    fn fresh_mlp(kind: FeatureKind, rng: &mut SeededRng) -> Mlp {
        let sizes: &[usize] = match kind {
            FeatureKind::Srf => &[SRF_DIM, 2, 1],
            FeatureKind::OneHot => &[ONEHOT_DIM, 8, 1],
        };
        Mlp::new(sizes, Activation::Tanh, Activation::Identity, rng)
    }

    /// The feature encoding this predictor consumes.
    pub fn features(&self, spec: &BlockSpec) -> Vec<f32> {
        match self.kind {
            FeatureKind::Srf => srf(spec).to_vec(),
            FeatureKind::OneHot => one_hot(spec).to_vec(),
        }
    }

    /// Refit from scratch on (structure, observed MRR) pairs. Re-training
    /// from scratch avoids drift on these tiny data sets and costs
    /// milliseconds.
    pub fn fit(&mut self, data: &[(BlockSpec, f64)]) {
        if data.is_empty() {
            return;
        }
        let mut rng = SeededRng::new(self.seed ^ 0x9D2C_5680_ACE1_2345);
        self.mlp = Self::fresh_mlp(self.kind, &mut rng);
        let inputs: Vec<Vec<f32>> = data.iter().map(|(s, _)| self.features(s)).collect();
        let targets: Vec<f32> = data.iter().map(|(_, y)| *y as f32).collect();
        let mut opt = Adam::new(self.mlp.param_count(), 0.02);
        for _ in 0..self.fit_epochs {
            opt.tick();
            self.mlp.mse_step(&inputs, &targets, &mut opt, 1e-4);
        }
    }

    /// Predicted score for one structure.
    pub fn predict(&self, spec: &BlockSpec) -> f32 {
        self.mlp.forward(&self.features(spec))[0]
    }

    /// Indices of `specs` sorted by predicted score, best first.
    pub fn rank(&self, specs: &[BlockSpec]) -> Vec<usize> {
        let scores: Vec<f32> = specs.iter().map(|s| self.predict(s)).collect();
        let mut idx: Vec<usize> = (0..specs.len()).collect();
        idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_models::blm::classics;

    #[test]
    fn one_hot_marks_each_block() {
        let f = one_hot(&classics::distmult());
        // diagonal cells 0,5,10,15; cell c occupies dims 6c..6c+6
        for (c, rc) in [(0usize, 0usize), (5, 1), (10, 2), (15, 3)] {
            assert_eq!(f[6 * c], 1.0, "sign+ of cell {c}");
            assert_eq!(f[6 * c + 2 + rc], 1.0, "r{} of cell {c}", rc + 1);
        }
        assert_eq!(f.iter().filter(|&&v| v != 0.0).count(), 8);
    }

    #[test]
    fn predictor_learns_to_rank_srf_separable_data() {
        // targets depend on the SRF "can be skew" bits — learnable from SRF
        let mut pred = PerformancePredictor::new(FeatureKind::Srf, 3);
        let specs: Vec<BlockSpec> = classics::all().into_iter().map(|(_, s)| s).collect();
        let data: Vec<(BlockSpec, f64)> = specs
            .iter()
            .map(|s| {
                let y = if crate::srf::satisfies_c1(s) { 0.9 } else { 0.2 };
                (s.clone(), y)
            })
            .collect();
        pred.fit(&data);
        // DistMult (no C1) must rank below the others
        let ranked = pred.rank(&specs);
        assert_ne!(ranked[0], 0, "DistMult (index 0) should not rank first");
        assert_eq!(*ranked.last().unwrap(), 0, "DistMult should rank last");
    }

    #[test]
    fn predictions_correlate_with_targets_after_fit() {
        let mut pred = PerformancePredictor::new(FeatureKind::OneHot, 4);
        let specs: Vec<BlockSpec> = classics::all().into_iter().map(|(_, s)| s).collect();
        let targets = [0.1f64, 0.9, 0.7, 0.5];
        let data: Vec<(BlockSpec, f64)> =
            specs.iter().cloned().zip(targets.iter().copied()).collect();
        pred.fit(&data);
        let preds: Vec<f32> = specs.iter().map(|s| pred.predict(s)).collect();
        let tgt: Vec<f32> = targets.iter().map(|&t| t as f32).collect();
        let rho = kg_linalg::vecops::spearman(&preds, &tgt);
        assert!(rho > 0.7, "rank correlation {rho}");
    }

    #[test]
    fn fit_on_empty_is_noop() {
        let mut pred = PerformancePredictor::new(FeatureKind::Srf, 5);
        let before = pred.predict(&classics::simple());
        pred.fit(&[]);
        assert_eq!(pred.predict(&classics::simple()), before);
    }

    #[test]
    fn rank_returns_permutation() {
        let pred = PerformancePredictor::new(FeatureKind::Srf, 6);
        let specs: Vec<BlockSpec> = classics::all().into_iter().map(|(_, s)| s).collect();
        let mut r = pred.rank(&specs);
        r.sort_unstable();
        assert_eq!(r, vec![0, 1, 2, 3]);
    }
}

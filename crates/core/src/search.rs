//! Structure evaluation: the inner level of the bi-level AutoSF objective
//! (Definition 1). A [`SearchDriver`] trains candidate structures on
//! `S_tra` (in parallel), scores them by filtered MRR on `S_val`, caches
//! results per orbit, and keeps a trace for the any-time curves of
//! Fig. 6-9.

use crate::invariance::canonical;
use kg_core::fxhash::FxHashMap;
use kg_core::{Dataset, FilterIndex};
use kg_eval::ranking::evaluate_parallel;
use kg_models::{Block, BlockSpec};
use kg_train::parallel::train_many;
use kg_train::TrainConfig;
use serde::{Deserialize, Serialize};

/// One evaluated structure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchRecord {
    /// The structure.
    pub spec: BlockSpec,
    /// Filtered validation MRR (the search signal).
    pub mrr: f64,
    /// How many models had been trained when this one finished (1-based).
    pub model_index: usize,
    /// Seconds since the driver was created.
    pub seconds: f64,
}

/// The evaluation history of one search run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SearchTrace {
    /// Records in evaluation order.
    pub records: Vec<SearchRecord>,
}

impl SearchTrace {
    /// Best record so far.
    pub fn best(&self) -> Option<&SearchRecord> {
        self.records.iter().max_by(|a, b| a.mrr.total_cmp(&b.mrr))
    }

    /// "Best MRR vs models trained" curve (Fig. 6-9 presentation).
    pub fn best_so_far_curve(&self, label: &str) -> kg_eval::Curve {
        let mut c = kg_eval::Curve::new(label);
        for r in &self.records {
            c.push(r.model_index as f64, r.mrr);
        }
        c.running_best()
    }
}

/// Trains and scores candidate structures against one dataset.
pub struct SearchDriver<'a> {
    ds: &'a Dataset,
    cfg: TrainConfig,
    n_threads: usize,
    /// Filter over train+valid (test stays unseen during the search).
    filter: FilterIndex,
    /// Orbit-canonical block list → MRR. Equivalent structures train once
    /// (the cache backs the filter's "avoid training equivalents" promise
    /// even when the search is run without the filter).
    cache: FxHashMap<Vec<Block>, f64>,
    /// Evaluation history.
    pub trace: SearchTrace,
    models_trained: usize,
    start: std::time::Instant,
    /// When true (default), cache hits are served without retraining.
    pub use_cache: bool,
}

impl<'a> SearchDriver<'a> {
    /// Create a driver; the filter index covers train+valid.
    pub fn new(ds: &'a Dataset, cfg: TrainConfig, n_threads: usize) -> Self {
        let mut filter = FilterIndex::build(&ds.train);
        for t in &ds.valid {
            filter.insert(*t);
        }
        SearchDriver {
            ds,
            cfg,
            n_threads,
            filter,
            cache: FxHashMap::default(),
            trace: SearchTrace::default(),
            models_trained: 0,
            start: std::time::Instant::now(),
            use_cache: true,
        }
    }

    /// The dataset under search.
    pub fn dataset(&self) -> &Dataset {
        self.ds
    }

    /// Training configuration used for every candidate.
    pub fn config(&self) -> &TrainConfig {
        &self.cfg
    }

    /// Models actually trained so far (cache hits excluded).
    pub fn models_trained(&self) -> usize {
        self.models_trained
    }

    /// Seconds since creation.
    pub fn elapsed(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Best record so far.
    pub fn best(&self) -> Option<&SearchRecord> {
        self.trace.best()
    }

    /// Evaluate a batch of structures; returns their validation MRRs in
    /// order. Uncached structures are trained in parallel.
    pub fn evaluate_batch(&mut self, specs: &[BlockSpec]) -> Vec<f64> {
        let keys: Vec<Vec<Block>> = specs.iter().map(|s| canonical(s).blocks().to_vec()).collect();
        let mut todo: Vec<usize> = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            if !(self.use_cache && self.cache.contains_key(key)) {
                // avoid training the same orbit twice within one batch
                if !todo.iter().any(|&j| keys[j] == *key) {
                    todo.push(i);
                }
            }
        }
        if !todo.is_empty() {
            let batch: Vec<BlockSpec> = todo.iter().map(|&i| specs[i].clone()).collect();
            let seed_base = self.cfg.seed.wrapping_add(self.models_trained as u64 * 7919);
            let cfg = self.cfg.with_seed(seed_base);
            let models = train_many(&batch, self.ds, &cfg, self.n_threads);
            for (bi, model) in models.into_iter().enumerate() {
                let metrics =
                    evaluate_parallel(&model, &self.ds.valid, &self.filter, self.n_threads);
                self.models_trained += 1;
                let record = SearchRecord {
                    spec: batch[bi].clone(),
                    mrr: metrics.mrr,
                    model_index: self.models_trained,
                    seconds: self.elapsed(),
                };
                self.cache.insert(keys[todo[bi]].clone(), metrics.mrr);
                self.trace.records.push(record);
            }
        }
        keys.iter().map(|k| *self.cache.get(k).expect("all orbits evaluated")).collect()
    }

    /// Evaluate one structure (convenience wrapper).
    pub fn evaluate(&mut self, spec: &BlockSpec) -> f64 {
        self.evaluate_batch(std::slice::from_ref(spec))[0]
    }

    /// Was this orbit evaluated before? (Used by search algorithms to skip
    /// known structures without paying for training.)
    pub fn seen(&self, spec: &BlockSpec) -> bool {
        self.cache.contains_key(canonical(spec).blocks())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_datagen::{preset, Preset, Scale};
    use kg_models::blm::classics;

    fn tiny_driver(ds: &Dataset) -> SearchDriver<'_> {
        let cfg = TrainConfig { dim: 16, epochs: 8, batch_size: 128, ..Default::default() };
        SearchDriver::new(ds, cfg, 2)
    }

    #[test]
    fn evaluate_produces_finite_mrr_and_traces() {
        let ds = preset(Preset::Wn18rrLike, Scale::Tiny, 3);
        let mut driver = tiny_driver(&ds);
        let mrr = driver.evaluate(&classics::simple());
        assert!(mrr.is_finite() && mrr > 0.0 && mrr <= 1.0);
        assert_eq!(driver.models_trained(), 1);
        assert_eq!(driver.trace.records.len(), 1);
        assert_eq!(driver.best().unwrap().model_index, 1);
    }

    #[test]
    fn cache_avoids_retraining_equivalents() {
        let ds = preset(Preset::Wn18rrLike, Scale::Tiny, 3);
        let mut driver = tiny_driver(&ds);
        let a = driver.evaluate(&classics::simple());
        // an equivalent permutation of SimplE: cache hit, no new training
        let t = crate::invariance::Transform {
            ent_perm: [2, 3, 0, 1],
            rel_perm: [1, 0, 3, 2],
            flips: [true, false, true, false],
        };
        let b = driver.evaluate(&t.apply(&classics::simple()));
        assert_eq!(a, b);
        assert_eq!(driver.models_trained(), 1, "equivalent retrained");
    }

    #[test]
    fn batch_evaluation_matches_requested_order() {
        let ds = preset(Preset::Wn18rrLike, Scale::Tiny, 4);
        let mut driver = tiny_driver(&ds);
        let specs = vec![classics::distmult(), classics::simple(), classics::distmult()];
        let out = driver.evaluate_batch(&specs);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], out[2], "same spec same score");
        assert_eq!(driver.models_trained(), 2, "duplicate trained once");
    }

    #[test]
    fn curve_is_monotone() {
        let ds = preset(Preset::Wn18rrLike, Scale::Tiny, 5);
        let mut driver = tiny_driver(&ds);
        driver.evaluate_batch(&[classics::distmult(), classics::simple(), classics::complex()]);
        let curve = driver.trace.best_so_far_curve("test");
        let ys: Vec<f64> = curve.points.iter().map(|p| p.y).collect();
        for w in ys.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }
}

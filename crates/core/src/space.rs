//! The search space and candidate generators (Sec. III-B, Sec. IV-B).
//!
//! * [`enumerate_b4`] — the complete filtered f4 space: constraint (C2)
//!   forces the four blocks of a 4-block structure onto distinct rows,
//!   distinct columns and distinct relation components, i.e. a signed
//!   double permutation. 24 × 24 × 16 raw combinations collapse to a
//!   handful of orbits (the paper reports 5 good unique f4 candidates).
//! * [`extend_two`] — Alg. 2 step 4: append two random multiplicative
//!   terms to a parent structure (Eq. 7 applied twice; adding blocks in
//!   pairs avoids pure-diagonal growth).
//! * [`random_spec`] — uniform C2-valid structures for the random-search
//!   baseline.

use crate::filter::{satisfies_c2, DedupFilter};
use crate::invariance::PERMS;
use kg_linalg::SeededRng;
use kg_models::{Block, BlockSpec};

/// Enumerate all inequivalent f4 structures satisfying (C2).
pub fn enumerate_b4() -> Vec<BlockSpec> {
    let mut dedup = DedupFilter::new();
    let mut out = Vec::new();
    for &col_perm in &PERMS {
        for &rel_perm in &PERMS {
            for mask in 0..16u8 {
                let blocks: Vec<Block> = (0..4u8)
                    .map(|i| Block {
                        hc: i,
                        rc: rel_perm[i as usize],
                        tc: col_perm[i as usize],
                        sign: if mask & (1 << i) != 0 { -1 } else { 1 },
                    })
                    .collect();
                let spec = BlockSpec::new(blocks);
                if dedup.admit(&spec) {
                    out.push(spec);
                }
            }
        }
    }
    out
}

/// One random block.
pub fn random_block(rng: &mut SeededRng) -> Block {
    Block {
        hc: rng.below(4) as u8,
        rc: rng.below(4) as u8,
        tc: rng.below(4) as u8,
        sign: rng.sign(),
    }
}

/// Alg. 2 step 4: `f_b ← f_{b-2} + s₁⟨h,r,t⟩ + s₂⟨h,r,t⟩` with random
/// indices. Returns `None` when a sampled cell is already occupied (the
/// caller just resamples).
pub fn extend_two(parent: &BlockSpec, rng: &mut SeededRng) -> Option<BlockSpec> {
    let first = parent.extended(random_block(rng))?;
    first.extended(random_block(rng))
}

/// A random structure with `b` blocks satisfying (C2); `None` when
/// `max_attempts` attempts all failed.
///
/// Sampling is seeded with a random signed double permutation (which
/// already satisfies (C2) at `b = 4` — a uniform 4-block placement passes
/// only ~0.2% of the time) and grown with `b - 4` random extra blocks,
/// retrying until the grown structure still satisfies (C2).
pub fn random_spec(b: usize, rng: &mut SeededRng, max_attempts: usize) -> Option<BlockSpec> {
    assert!((4..=16).contains(&b), "block count must be in 4..=16");
    for _ in 0..max_attempts {
        // random signed double permutation
        let col_perm = PERMS[rng.below(24)];
        let rel_perm = PERMS[rng.below(24)];
        let mut spec = BlockSpec::new(
            (0..4u8)
                .map(|i| Block {
                    hc: i,
                    rc: rel_perm[i as usize],
                    tc: col_perm[i as usize],
                    sign: rng.sign(),
                })
                .collect(),
        );
        let mut ok = true;
        for _ in 0..b - 4 {
            let mut placed = false;
            for _ in 0..32 {
                if let Some(next) = spec.extended(random_block(rng)) {
                    spec = next;
                    placed = true;
                    break;
                }
            }
            if !placed {
                ok = false;
                break;
            }
        }
        if ok && satisfies_c2(&spec) {
            return Some(spec);
        }
    }
    None
}

/// Total raw space size (the 9^16 of Sec. IV-C) as a printable string —
/// used in logs and docs; exceeds u64 so kept as f64.
pub fn raw_space_size() -> f64 {
    9f64.powi(16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariance::equivalent;
    use kg_models::blm::classics;

    #[test]
    fn b4_space_is_small_and_valid() {
        let specs = enumerate_b4();
        // the paper reports 5 good unique candidates in f4
        assert_eq!(specs.len(), 5, "got {} f4 orbits", specs.len());
        for s in &specs {
            assert_eq!(s.n_blocks(), 4);
            assert!(satisfies_c2(s));
        }
        // pairwise inequivalent
        for i in 0..specs.len() {
            for j in i + 1..specs.len() {
                assert!(!equivalent(&specs[i], &specs[j]));
            }
        }
    }

    #[test]
    fn b4_contains_distmult_and_simple() {
        let specs = enumerate_b4();
        assert!(
            specs.iter().any(|s| equivalent(s, &classics::distmult())),
            "DistMult orbit missing from f4"
        );
        assert!(
            specs.iter().any(|s| equivalent(s, &classics::simple())),
            "SimplE orbit missing from f4"
        );
    }

    #[test]
    fn extend_two_adds_exactly_two_blocks() {
        let mut rng = SeededRng::new(81);
        let parent = classics::simple();
        let mut grown = 0;
        for _ in 0..50 {
            if let Some(child) = extend_two(&parent, &mut rng) {
                assert_eq!(child.n_blocks(), parent.n_blocks() + 2);
                grown += 1;
            }
        }
        assert!(grown > 10, "extension almost always failed");
    }

    #[test]
    fn random_spec_satisfies_c2() {
        let mut rng = SeededRng::new(82);
        for b in [4usize, 6, 8, 10] {
            let s = random_spec(b, &mut rng, 200).expect("a valid spec exists");
            assert_eq!(s.n_blocks(), b);
            assert!(satisfies_c2(&s));
        }
    }

    #[test]
    fn random_specs_are_diverse() {
        let mut rng = SeededRng::new(83);
        let a = random_spec(6, &mut rng, 200).unwrap();
        let b = random_spec(6, &mut rng, 200).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn raw_space_is_huge() {
        assert!(raw_space_size() > 1e15);
    }
}

//! Symmetry-Related Features (SRF) — Appendix C / Alg. 3.
//!
//! A structure's quality correlates with *which kinds of relations its
//! `g(r)` can express* (Proposition 1): symmetric relations need `g(r)` to
//! admit a symmetric assignment, anti-symmetric ones a skew-symmetric
//! assignment. The exact check depends on trained values of `r`, unknown
//! before training — so the paper probes `g` with scalar **assignments**:
//! replace `(r1, r2, r3, r4)` by small integers `v` and check whether the
//! 4×4 matrix `g(v)` is symmetric / skew-symmetric.
//!
//! Eleven assignment classes (S1-S11) exhaustively cover the patterns of
//! equal/zero absolute values; each class contributes
//! (can-be-symmetric, can-be-skew-symmetric) bits over all permutations and
//! sign flips of its base example — a 22-dimensional binary feature that is
//! invariant under the invariance group (Proposition 2).

use kg_models::BlockSpec;

/// The 11 base assignments of Remark A.1 (S1-S11).
pub const BASE_ASSIGNMENTS: [[i8; 4]; 11] = [
    [1, 2, 3, 4], // S1: four distinct absolute values
    [1, 1, 2, 2], // S2: two pairs
    [1, 1, 2, 3], // S3: one pair, two distinct
    [1, 1, 1, 2], // S4: a triple and one distinct
    [1, 1, 1, 1], // S5: all equal
    [0, 1, 2, 3], // S6: one zero, three distinct
    [0, 1, 1, 2], // S7: one zero, a pair
    [0, 1, 1, 1], // S8: one zero, a triple
    [0, 0, 1, 2], // S9: two zeros, distinct
    [0, 0, 1, 1], // S10: two zeros, a pair
    [0, 0, 0, 1], // S11: single non-zero
];

/// Number of SRF dimensions (11 cases × {symmetric, skew-symmetric}).
pub const SRF_DIM: usize = 22;

/// Evaluate `g(v)`: substitute scalars for relation components in the
/// substitute matrix.
fn g_of(m: &[[i8; 4]; 4], v: [i8; 4]) -> [[i8; 4]; 4] {
    let mut out = [[0i8; 4]; 4];
    for i in 0..4 {
        for j in 0..4 {
            let cell = m[i][j];
            if cell != 0 {
                let comp = cell.unsigned_abs() as usize - 1;
                out[i][j] = cell.signum() * v[comp];
            }
        }
    }
    out
}

fn is_symmetric(g: &[[i8; 4]; 4]) -> bool {
    (0..4).all(|i| (0..4).all(|j| g[i][j] == g[j][i]))
}

fn is_skew_symmetric(g: &[[i8; 4]; 4]) -> bool {
    (0..4).all(|i| (0..4).all(|j| g[i][j] == -g[j][i]))
}

/// All distinct assignments in the class of `base`: permutations × sign
/// flips of non-zero entries.
fn assignments_of(base: [i8; 4]) -> Vec<[i8; 4]> {
    let mut out = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for perm in crate::invariance::PERMS {
        let mut permuted = [0i8; 4];
        for (i, &p) in perm.iter().enumerate() {
            permuted[i] = base[p as usize];
        }
        // flip signs of non-zero entries
        for mask in 0..16u8 {
            let mut v = permuted;
            let mut valid = true;
            for (c, val) in v.iter_mut().enumerate() {
                if mask & (1 << c) != 0 {
                    if *val == 0 {
                        valid = false;
                        break;
                    }
                    *val = -*val;
                }
            }
            if valid && seen.insert(v) {
                out.push(v);
            }
        }
    }
    out
}

/// Compute the 22-dimensional SRF of a structure (Alg. 3).
pub fn srf(spec: &BlockSpec) -> [f32; SRF_DIM] {
    let m = spec.substitute_matrix();
    let mut features = [0.0f32; SRF_DIM];
    for (si, &base) in BASE_ASSIGNMENTS.iter().enumerate() {
        for v in assignments_of(base) {
            let g = g_of(&m, v);
            if is_symmetric(&g) {
                features[2 * si] = 1.0;
            }
            if is_skew_symmetric(&g) {
                features[2 * si + 1] = 1.0;
            }
            if features[2 * si] == 1.0 && features[2 * si + 1] == 1.0 {
                break;
            }
        }
    }
    features
}

/// Constraint (C1) of Sec. IV-A1: `g(r)` can be symmetric for some
/// assignment *and* skew-symmetric for some other — the expressiveness
/// precondition of Proposition 1.
pub fn satisfies_c1(spec: &BlockSpec) -> bool {
    let f = srf(spec);
    let any_sym = (0..11).any(|i| f[2 * i] == 1.0);
    let any_skew = (0..11).any(|i| f[2 * i + 1] == 1.0);
    any_sym && any_skew
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_models::blm::classics;
    use kg_models::Block;

    #[test]
    fn assignment_counts_are_bounded() {
        for base in BASE_ASSIGNMENTS {
            let a = assignments_of(base);
            assert!(!a.is_empty());
            assert!(a.len() <= 24 * 16, "{} assignments", a.len());
            // all members keep the multiset of absolute values
            let mut expect: Vec<i8> = base.to_vec();
            expect.sort_unstable();
            for v in &a {
                let mut got: Vec<i8> = v.iter().map(|x| x.abs()).collect();
                got.sort_unstable();
                assert_eq!(got, expect);
            }
        }
    }

    #[test]
    fn distmult_is_symmetric_never_skew() {
        let f = srf(&classics::distmult());
        // symmetric under every assignment class (diagonal matrix)...
        for i in 0..11 {
            assert_eq!(f[2 * i], 1.0, "S{} symmetric bit", i + 1);
        }
        // ...and skew-symmetric only when the diagonal can vanish — it
        // cannot, except when all components are forced to zero, which no
        // class allows (S11 still has one non-zero on the diagonal
        // somewhere? no: with v=[0,0,0,1] and the diagonal holding r1..r4,
        // three diagonal entries are 0 but one is ±1 → not skew).
        for i in 0..11 {
            assert_eq!(f[2 * i + 1], 0.0, "S{} skew bit", i + 1);
        }
        assert!(!satisfies_c1(&classics::distmult()));
    }

    #[test]
    fn complex_simple_analogy_satisfy_c1() {
        for name_spec in [
            ("ComplEx", classics::complex()),
            ("Analogy", classics::analogy()),
            ("SimplE", classics::simple()),
        ] {
            assert!(satisfies_c1(&name_spec.1), "{} must satisfy C1", name_spec.0);
        }
    }

    /// Fig. 2b/2c: SimplE's g(r) becomes symmetric with r3 = r1, r4 = r2
    /// (class S2), and skew-symmetric with r3 = -r1, r4 = -r2.
    #[test]
    fn simple_fig2_assignments() {
        let m = classics::simple().substitute_matrix();
        let sym = g_of(&m, [1, 2, 1, 2]);
        assert!(is_symmetric(&sym));
        let skew = g_of(&m, [1, 2, -1, -2]);
        assert!(is_skew_symmetric(&skew));
        // and the S2 bits of the SRF reflect it
        let f = srf(&classics::simple());
        assert_eq!(f[2], 1.0, "S2 symmetric");
        assert_eq!(f[3], 1.0, "S2 skew");
    }

    /// Proposition 2(i): SRFs are invariant under the invariance group.
    #[test]
    fn srf_is_invariant_under_group() {
        let mut rng = kg_linalg::SeededRng::new(77);
        for (_, spec) in classics::all() {
            let f = srf(&spec);
            for _ in 0..15 {
                let t = crate::invariance::Transform {
                    ent_perm: crate::invariance::PERMS[rng.below(24)],
                    rel_perm: crate::invariance::PERMS[rng.below(24)],
                    flips: [rng.coin(), rng.coin(), rng.coin(), rng.coin()],
                };
                assert_eq!(srf(&t.apply(&spec)), f);
            }
        }
    }

    #[test]
    fn srf_distinguishes_distmult_from_complex() {
        assert_ne!(srf(&classics::distmult()), srf(&classics::complex()));
    }

    #[test]
    fn fully_asymmetric_structure_has_no_symmetric_bit() {
        // a permutation structure that can never be symmetric: cells
        // (0,1),(1,2),(2,3),(3,0) — no diagonal, no transposed pair, so
        // g(v) ≠ g(v)ᵀ unless everything is zero, which no class allows on
        // all four cells at once... except classes with ≥2 zeros can zero
        // out enough cells. Compute and sanity-check basic shape instead.
        let spec = BlockSpec::new(vec![
            Block::new(0, 0, 1, 1),
            Block::new(1, 1, 2, 1),
            Block::new(2, 2, 3, 1),
            Block::new(3, 3, 0, 1),
        ]);
        let f = srf(&spec);
        // S5 (all same value): g(v) has 4 equal off-diagonal entries in a
        // cycle — not symmetric (transposed cells are empty)
        assert_eq!(f[8], 0.0, "S5 symmetric bit should be 0");
        // but with zeros allowed (S9-S11) some bits may fire; just check
        // the feature is not all-ones
        assert!(f.contains(&0.0));
    }

    #[test]
    fn c1_matches_manual_proposition_check() {
        // ComplEx: r_im = 0 gives DistMult (symmetric); r_re = 0 gives a
        // skew matrix — the canonical Proposition 1 example.
        let m = classics::complex().substitute_matrix();
        assert!(is_symmetric(&g_of(&m, [1, 1, 0, 0])));
        assert!(is_skew_symmetric(&g_of(&m, [0, 0, 1, 1])));
    }
}

//! Property-based tests for the search machinery: group laws,
//! canonicalization, SRF invariance (Proposition 2) and filter guarantees.

use autosf::filter::{satisfies_c2, DedupFilter};
use autosf::invariance::{canonical, equivalent, Transform, PERMS};
use autosf::space::random_spec;
use autosf::srf::srf;
use kg_linalg::SeededRng;
use kg_models::BlockSpec;
use proptest::prelude::*;

fn arb_transform() -> impl Strategy<Value = Transform> {
    (0usize..24, 0usize..24, prop::array::uniform4(prop::bool::ANY))
        .prop_map(|(e, r, flips)| Transform { ent_perm: PERMS[e], rel_perm: PERMS[r], flips })
}

/// A random C2-valid structure of size 4, 6 or 8.
fn arb_valid_spec() -> impl Strategy<Value = BlockSpec> {
    (0u64..10_000, prop::sample::select(vec![4usize, 6, 8])).prop_map(|(seed, b)| {
        let mut rng = SeededRng::new(seed);
        random_spec(b, &mut rng, 500).expect("a valid structure exists at any size")
    })
}

proptest! {
    /// Group law: composition then application equals sequential application.
    #[test]
    fn compose_is_group_operation(s in arb_valid_spec(), t1 in arb_transform(), t2 in arb_transform()) {
        let seq = t1.apply(&t2.apply(&s));
        let comp = t1.compose(&t2).apply(&s);
        prop_assert_eq!(seq, comp);
    }

    /// Group law: inverses cancel.
    #[test]
    fn inverse_cancels(s in arb_valid_spec(), t in arb_transform()) {
        prop_assert_eq!(t.inverse().apply(&t.apply(&s)), s.clone());
        prop_assert_eq!(t.apply(&t.inverse().apply(&s)), s);
    }

    /// Canonical form is constant on orbits.
    #[test]
    fn canonical_is_orbit_invariant(s in arb_valid_spec(), t in arb_transform()) {
        prop_assert_eq!(canonical(&t.apply(&s)), canonical(&s));
    }

    /// Equivalence is reflexive and symmetric, and transformed structures
    /// are always equivalent to their source.
    #[test]
    fn equivalence_relation_properties(s in arb_valid_spec(), t in arb_transform()) {
        prop_assert!(equivalent(&s, &s));
        let ts = t.apply(&s);
        prop_assert!(equivalent(&s, &ts));
        prop_assert!(equivalent(&ts, &s));
    }

    /// Proposition 2(i): SRF is invariant under the invariance group.
    #[test]
    fn srf_invariant_under_group(s in arb_valid_spec(), t in arb_transform()) {
        prop_assert_eq!(srf(&t.apply(&s)), srf(&s));
    }

    /// C2 is invariant under the group (the filter's two halves agree).
    #[test]
    fn c2_invariant_under_group(s in arb_valid_spec(), t in arb_transform()) {
        prop_assert_eq!(satisfies_c2(&t.apply(&s)), satisfies_c2(&s));
    }

    /// The dedup filter accepts a structure once and rejects its whole
    /// orbit afterwards.
    #[test]
    fn dedup_rejects_orbit(s in arb_valid_spec(), t in arb_transform()) {
        let mut f = DedupFilter::new();
        prop_assert!(f.admit(&s));
        prop_assert!(!f.admit(&t.apply(&s)));
        prop_assert_eq!(f.len(), 1);
    }

    /// random_spec output always satisfies its contract.
    #[test]
    fn random_specs_valid(seed in 0u64..10_000, b in prop::sample::select(vec![4usize, 6, 8, 10])) {
        let mut rng = SeededRng::new(seed);
        let s = random_spec(b, &mut rng, 500).expect("valid structure");
        prop_assert_eq!(s.n_blocks(), b);
        prop_assert!(satisfies_c2(&s));
    }
}

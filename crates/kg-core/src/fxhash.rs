//! A small Fx-style (Firefox/rustc) hasher.
//!
//! The filtered-ranking index performs one hash lookup per candidate entity
//! per test triple; std's default SipHash is the dominant cost there. The
//! performance guide recommends `rustc-hash`; to stay within the approved
//! dependency set we re-implement the same multiply-rotate scheme (it is
//! ~30 lines) and expose `FxHashMap`/`FxHashSet` aliases.
//!
//! Not HashDoS-resistant — all keys come from our own generators.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash state: a single u64 folded with multiply-rotate per word.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` with the Fx hasher.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<(u32, u32), Vec<u32>> = FxHashMap::default();
        m.insert((1, 2), vec![3]);
        m.entry((1, 2)).or_default().push(4);
        assert_eq!(m.get(&(1, 2)), Some(&vec![3, 4]));
        assert_eq!(m.get(&(2, 1)), None);
    }

    #[test]
    fn set_distinguishes_keys() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..10_000u64 {
            s.insert(i);
        }
        assert_eq!(s.len(), 10_000);
        assert!(s.contains(&42));
        assert!(!s.contains(&10_000));
    }

    #[test]
    fn hasher_is_deterministic() {
        let h = |x: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(x);
            hasher.finish()
        };
        assert_eq!(h(7), h(7));
        assert_ne!(h(7), h(8));
    }

    #[test]
    fn write_handles_unaligned_tails() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3]);
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(&[1, 2, 3, 0, 0, 0, 0, 0, 9]);
        assert_ne!(a.finish(), c.finish());
    }
}

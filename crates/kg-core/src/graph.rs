//! The [`Dataset`] type: entity/relation vocabularies plus the
//! train/valid/test triple splits used by the bi-level AutoSF objective
//! (Definition 1: parameters fit on `S_tra`, structures scored on `S_val`).

use crate::ids::{EntityId, RelationId};
use crate::triple::{self, Triple};
use serde::{Deserialize, Serialize};

/// A knowledge-graph dataset with its standard three-way split.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Human-readable name (e.g. "wn18-like").
    pub name: String,
    /// Number of entities; ids are dense in `[0, n_entities)`.
    pub n_entities: usize,
    /// Number of relations; ids are dense in `[0, n_relations)`.
    pub n_relations: usize,
    /// Training triples (`S_tra`).
    pub train: Vec<Triple>,
    /// Validation triples (`S_val`) — the search signal in AutoSF.
    pub valid: Vec<Triple>,
    /// Test triples, only touched by final evaluation.
    pub test: Vec<Triple>,
}

impl Dataset {
    /// Build a dataset, inferring vocabulary sizes from the triples.
    ///
    /// # Panics
    /// Panics if any split references an entity/relation id beyond the
    /// inferred dense bound of the union (which cannot happen when ids are
    /// dense, but guards against caller mistakes).
    pub fn new(
        name: impl Into<String>,
        train: Vec<Triple>,
        valid: Vec<Triple>,
        test: Vec<Triple>,
    ) -> Self {
        let n_entities = triple::entity_bound(&train)
            .max(triple::entity_bound(&valid))
            .max(triple::entity_bound(&test));
        let n_relations = triple::relation_bound(&train)
            .max(triple::relation_bound(&valid))
            .max(triple::relation_bound(&test));
        Dataset { name: name.into(), n_entities, n_relations, train, valid, test }
    }

    /// Build with explicit vocabulary sizes (allows entities that only
    /// appear as negatives).
    pub fn with_vocab(
        name: impl Into<String>,
        n_entities: usize,
        n_relations: usize,
        train: Vec<Triple>,
        valid: Vec<Triple>,
        test: Vec<Triple>,
    ) -> Self {
        let ds = Dataset { name: name.into(), n_entities, n_relations, train, valid, test };
        ds.validate().expect("triples must stay within the declared vocabulary");
        ds
    }

    /// All triples across the three splits, in split order.
    pub fn all_triples(&self) -> Vec<Triple> {
        let mut out = Vec::with_capacity(self.train.len() + self.valid.len() + self.test.len());
        out.extend_from_slice(&self.train);
        out.extend_from_slice(&self.valid);
        out.extend_from_slice(&self.test);
        out
    }

    /// Total triple count.
    pub fn len(&self) -> usize {
        self.train.len() + self.valid.len() + self.test.len()
    }

    /// True when all splits are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Check id bounds of every triple against the vocabulary.
    pub fn validate(&self) -> Result<(), String> {
        for (split, ts) in [("train", &self.train), ("valid", &self.valid), ("test", &self.test)] {
            for t in ts.iter() {
                if t.h.idx() >= self.n_entities || t.t.idx() >= self.n_entities {
                    return Err(format!("{split}: entity id out of range in {t}"));
                }
                if t.r.idx() >= self.n_relations {
                    return Err(format!("{split}: relation id out of range in {t}"));
                }
            }
        }
        Ok(())
    }

    /// Iterator over all entity ids.
    pub fn entities(&self) -> impl Iterator<Item = EntityId> {
        (0..self.n_entities as u32).map(EntityId)
    }

    /// Iterator over all relation ids.
    pub fn relations(&self) -> impl Iterator<Item = RelationId> {
        (0..self.n_relations as u32).map(RelationId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            "toy",
            vec![Triple::new(0, 0, 1), Triple::new(1, 1, 2)],
            vec![Triple::new(2, 0, 3)],
            vec![Triple::new(3, 1, 0)],
        )
    }

    #[test]
    fn vocab_inferred_from_all_splits() {
        let ds = toy();
        assert_eq!(ds.n_entities, 4);
        assert_eq!(ds.n_relations, 2);
        assert_eq!(ds.len(), 4);
        assert!(!ds.is_empty());
    }

    #[test]
    fn all_triples_order() {
        let ds = toy();
        let all = ds.all_triples();
        assert_eq!(all.len(), 4);
        assert_eq!(all[0], Triple::new(0, 0, 1));
        assert_eq!(all[3], Triple::new(3, 1, 0));
    }

    #[test]
    fn validate_catches_out_of_range() {
        let mut ds = toy();
        ds.n_entities = 2;
        assert!(ds.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "declared vocabulary")]
    fn with_vocab_panics_on_bad_ids() {
        Dataset::with_vocab("bad", 1, 1, vec![Triple::new(0, 0, 5)], vec![], vec![]);
    }

    #[test]
    fn iterators_cover_vocab() {
        let ds = toy();
        assert_eq!(ds.entities().count(), 4);
        assert_eq!(ds.relations().count(), 2);
    }
}

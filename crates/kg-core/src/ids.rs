//! Typed identifiers for entities and relations.
//!
//! Plain `u32` newtypes: KGs in the reproduction stay far below 2³² nodes,
//! and 4-byte ids keep triple arrays compact (the performance guide's
//! "smaller integers" advice).

use serde::{Deserialize, Serialize};

/// Identifier of an entity (a node of the KG).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EntityId(pub u32);

/// Identifier of a relation (an edge label of the KG).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RelationId(pub u32);

impl EntityId {
    /// The id as an index into entity-major arrays.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl RelationId {
    /// The id as an index into relation-major arrays.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for EntityId {
    fn from(v: u32) -> Self {
        EntityId(v)
    }
}

impl From<u32> for RelationId {
    fn from(v: u32) -> Self {
        RelationId(v)
    }
}

impl std::fmt::Display for EntityId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl std::fmt::Display for RelationId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idx_roundtrip() {
        assert_eq!(EntityId(7).idx(), 7);
        assert_eq!(RelationId(3).idx(), 3);
        assert_eq!(EntityId::from(5u32), EntityId(5));
    }

    #[test]
    fn display_forms() {
        assert_eq!(EntityId(1).to_string(), "e1");
        assert_eq!(RelationId(2).to_string(), "r2");
    }

    #[test]
    fn ids_are_small() {
        assert_eq!(std::mem::size_of::<EntityId>(), 4);
        assert_eq!(std::mem::size_of::<RelationId>(), 4);
    }
}

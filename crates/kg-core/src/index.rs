//! Filtered-ranking index.
//!
//! Link prediction in the "filtered setting" (Sec. V-B) ranks the true
//! entity against all candidates *excluding other known true triples*. This
//! index answers, in O(1):
//!
//! * `known(h, r, t)` — is the triple observed anywhere in the dataset?
//! * `tails(h, r)` / `heads(r, t)` — all observed completions, used both for
//!   filtering and for fast relation-pattern classification.

use crate::fxhash::{FxHashMap, FxHashSet};
use crate::ids::{EntityId, RelationId};
use crate::triple::Triple;

/// Immutable lookup structure over a set of triples.
#[derive(Debug, Default, Clone)]
pub struct FilterIndex {
    all: FxHashSet<Triple>,
    by_hr: FxHashMap<(EntityId, RelationId), Vec<EntityId>>,
    by_rt: FxHashMap<(RelationId, EntityId), Vec<EntityId>>,
}

impl FilterIndex {
    /// Build from any iterator of triples (duplicates are collapsed).
    pub fn build<'a, I: IntoIterator<Item = &'a Triple>>(triples: I) -> Self {
        let mut idx = FilterIndex::default();
        for &t in triples {
            idx.insert(t);
        }
        idx
    }

    /// Build from a whole dataset (train + valid + test), the standard
    /// filtered-evaluation convention.
    pub fn from_dataset(ds: &crate::graph::Dataset) -> Self {
        let mut idx = FilterIndex::default();
        for t in ds.train.iter().chain(ds.valid.iter()).chain(ds.test.iter()) {
            idx.insert(*t);
        }
        idx
    }

    /// Insert one triple.
    pub fn insert(&mut self, t: Triple) {
        if self.all.insert(t) {
            self.by_hr.entry((t.h, t.r)).or_default().push(t.t);
            self.by_rt.entry((t.r, t.t)).or_default().push(t.h);
        }
    }

    /// Is `(h, r, t)` a known positive?
    #[inline]
    pub fn known(&self, h: EntityId, r: RelationId, t: EntityId) -> bool {
        self.all.contains(&Triple { h, r, t })
    }

    /// All known tails for `(h, r, ·)`.
    #[inline]
    pub fn tails(&self, h: EntityId, r: RelationId) -> &[EntityId] {
        self.by_hr.get(&(h, r)).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All known heads for `(·, r, t)`.
    #[inline]
    pub fn heads(&self, r: RelationId, t: EntityId) -> &[EntityId] {
        self.by_rt.get(&(r, t)).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct triples indexed.
    pub fn len(&self) -> usize {
        self.all.len()
    }

    /// True when no triples are indexed.
    pub fn is_empty(&self) -> bool {
        self.all.is_empty()
    }

    /// Iterate over all indexed triples (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Triple> {
        self.all.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Dataset;

    fn idx() -> FilterIndex {
        FilterIndex::build(&[
            Triple::new(0, 0, 1),
            Triple::new(0, 0, 2),
            Triple::new(3, 0, 1),
            Triple::new(0, 1, 1),
        ])
    }

    #[test]
    fn known_membership() {
        let i = idx();
        assert!(i.known(EntityId(0), RelationId(0), EntityId(1)));
        assert!(!i.known(EntityId(1), RelationId(0), EntityId(0)));
    }

    #[test]
    fn tails_and_heads() {
        let i = idx();
        let mut tails: Vec<u32> = i.tails(EntityId(0), RelationId(0)).iter().map(|e| e.0).collect();
        tails.sort_unstable();
        assert_eq!(tails, vec![1, 2]);
        let mut heads: Vec<u32> = i.heads(RelationId(0), EntityId(1)).iter().map(|e| e.0).collect();
        heads.sort_unstable();
        assert_eq!(heads, vec![0, 3]);
        assert!(i.tails(EntityId(9), RelationId(0)).is_empty());
    }

    #[test]
    fn duplicates_collapse() {
        let i = FilterIndex::build(&[Triple::new(0, 0, 1), Triple::new(0, 0, 1)]);
        assert_eq!(i.len(), 1);
        assert_eq!(i.tails(EntityId(0), RelationId(0)).len(), 1);
    }

    #[test]
    fn from_dataset_spans_all_splits() {
        let ds = Dataset::new(
            "toy",
            vec![Triple::new(0, 0, 1)],
            vec![Triple::new(1, 0, 2)],
            vec![Triple::new(2, 0, 3)],
        );
        let i = FilterIndex::from_dataset(&ds);
        assert_eq!(i.len(), 3);
        assert!(i.known(EntityId(2), RelationId(0), EntityId(3)));
    }

    #[test]
    fn empty_index() {
        let i = FilterIndex::default();
        assert!(i.is_empty());
        assert_eq!(i.iter().count(), 0);
    }
}

//! Import/export of datasets in the standard benchmark text format.
//!
//! The real WN18/FB15k-family distributions ship as three files
//! (`train.txt`, `valid.txt`, `test.txt`) of tab-separated
//! `head<TAB>relation<TAB>tail` lines with string names. This module loads
//! that format (building dense id vocabularies) and writes it back, so the
//! reproduction runs unchanged on the genuine benchmarks when they are
//! available — the generated presets are a drop-in substitute, not a
//! replacement of the interface.

use crate::fxhash::FxHashMap;
use crate::graph::Dataset;
use crate::triple::Triple;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// String-name vocabularies built while loading.
#[derive(Debug, Clone, Default)]
pub struct Vocab {
    /// Entity name per dense id.
    pub entities: Vec<String>,
    /// Relation name per dense id.
    pub relations: Vec<String>,
    ent_ids: FxHashMap<String, u32>,
    rel_ids: FxHashMap<String, u32>,
}

impl Vocab {
    /// Id of an entity name, allocating a fresh id when unseen.
    pub fn entity_id(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.ent_ids.get(name) {
            return id;
        }
        let id = self.entities.len() as u32;
        self.entities.push(name.to_string());
        self.ent_ids.insert(name.to_string(), id);
        id
    }

    /// Id of a relation name, allocating a fresh id when unseen.
    pub fn relation_id(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.rel_ids.get(name) {
            return id;
        }
        let id = self.relations.len() as u32;
        self.relations.push(name.to_string());
        self.rel_ids.insert(name.to_string(), id);
        id
    }

    /// Lookup without allocation.
    pub fn find_entity(&self, name: &str) -> Option<u32> {
        self.ent_ids.get(name).copied()
    }

    /// Lookup without allocation.
    pub fn find_relation(&self, name: &str) -> Option<u32> {
        self.rel_ids.get(name).copied()
    }
}

/// A parse failure with its line number.
#[derive(Debug)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse one split from a reader, extending `vocab`.
pub fn read_triples<R: Read>(reader: R, vocab: &mut Vocab) -> Result<Vec<Triple>, ParseError> {
    let mut out = Vec::new();
    for (i, line) in BufReader::new(reader).lines().enumerate() {
        let line = line.map_err(|e| ParseError { line: i + 1, message: e.to_string() })?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split('\t');
        let (h, r, t) = match (parts.next(), parts.next(), parts.next()) {
            (Some(h), Some(r), Some(t)) if !h.is_empty() && !r.is_empty() && !t.is_empty() => {
                (h, r, t)
            }
            _ => {
                return Err(ParseError {
                    line: i + 1,
                    message: format!("expected `head\\trelation\\ttail`, got {trimmed:?}"),
                })
            }
        };
        out.push(Triple::new(vocab.entity_id(h), vocab.relation_id(r), vocab.entity_id(t)));
    }
    Ok(out)
}

/// Load a benchmark directory containing `train.txt`, `valid.txt`,
/// `test.txt`. Returns the dataset and the name vocabularies.
pub fn load_dir(dir: &Path, name: &str) -> Result<(Dataset, Vocab), String> {
    let mut vocab = Vocab::default();
    let mut split = |file: &str| -> Result<Vec<Triple>, String> {
        let path = dir.join(file);
        let f = std::fs::File::open(&path)
            .map_err(|e| format!("cannot open {}: {e}", path.display()))?;
        read_triples(f, &mut vocab).map_err(|e| format!("{}: {e}", path.display()))
    };
    let train = split("train.txt")?;
    let valid = split("valid.txt")?;
    let test = split("test.txt")?;
    let ds =
        Dataset::with_vocab(name, vocab.entities.len(), vocab.relations.len(), train, valid, test);
    Ok((ds, vocab))
}

/// Write one split in the benchmark format (ids rendered through `vocab`
/// when provided, else as `e{i}`/`r{i}`).
pub fn write_triples<W: Write>(
    mut w: W,
    triples: &[Triple],
    vocab: Option<&Vocab>,
) -> std::io::Result<()> {
    for t in triples {
        match vocab {
            Some(v) => writeln!(
                w,
                "{}\t{}\t{}",
                v.entities[t.h.idx()],
                v.relations[t.r.idx()],
                v.entities[t.t.idx()]
            )?,
            None => writeln!(w, "e{}\tr{}\te{}", t.h.0, t.r.0, t.t.0)?,
        }
    }
    Ok(())
}

/// Write a whole dataset into `dir` as the three benchmark files.
pub fn save_dir(ds: &Dataset, dir: &Path, vocab: Option<&Vocab>) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for (file, triples) in
        [("train.txt", &ds.train), ("valid.txt", &ds.valid), ("test.txt", &ds.test)]
    {
        let f = std::fs::File::create(dir.join(file))?;
        write_triples(std::io::BufWriter::new(f), triples, vocab)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_file() {
        let text = "alice\tknows\tbob\nbob\tknows\tcarol\n\n# comment\nalice\tlikes\tcarol\n";
        let mut vocab = Vocab::default();
        let ts = read_triples(text.as_bytes(), &mut vocab).expect("parses");
        assert_eq!(ts.len(), 3);
        assert_eq!(vocab.entities, vec!["alice", "bob", "carol"]);
        assert_eq!(vocab.relations, vec!["knows", "likes"]);
        assert_eq!(ts[0], Triple::new(0, 0, 1));
        assert_eq!(ts[2], Triple::new(0, 1, 2));
    }

    #[test]
    fn parse_error_reports_line() {
        let text = "a\tb\tc\nbroken line\n";
        let mut vocab = Vocab::default();
        let err = read_triples(text.as_bytes(), &mut vocab).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn vocab_ids_are_stable() {
        let mut v = Vocab::default();
        assert_eq!(v.entity_id("x"), 0);
        assert_eq!(v.entity_id("y"), 1);
        assert_eq!(v.entity_id("x"), 0);
        assert_eq!(v.find_entity("y"), Some(1));
        assert_eq!(v.find_entity("z"), None);
        assert_eq!(v.find_relation("r"), None);
        assert_eq!(v.relation_id("r"), 0);
        assert_eq!(v.find_relation("r"), Some(0));
    }

    #[test]
    fn roundtrip_through_directory() {
        let dir = std::env::temp_dir().join(format!("kgio-{}", std::process::id()));
        let ds = Dataset::new(
            "tiny",
            vec![Triple::new(0, 0, 1), Triple::new(1, 0, 2)],
            vec![Triple::new(2, 0, 0)],
            vec![Triple::new(0, 0, 2)],
        );
        save_dir(&ds, &dir, None).expect("save");
        let (loaded, vocab) = load_dir(&dir, "tiny").expect("load");
        assert_eq!(loaded.train.len(), 2);
        assert_eq!(loaded.valid.len(), 1);
        assert_eq!(loaded.test.len(), 1);
        assert_eq!(loaded.n_entities, 3);
        assert_eq!(loaded.n_relations, 1);
        assert_eq!(vocab.entities.len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_uses_vocab_names() {
        let mut vocab = Vocab::default();
        let ts = read_triples("sun\tshines_on\tearth\n".as_bytes(), &mut vocab).expect("parses");
        let mut buf = Vec::new();
        write_triples(&mut buf, &ts, Some(&vocab)).expect("write");
        assert_eq!(String::from_utf8(buf).expect("utf8"), "sun\tshines_on\tearth\n");
    }
}

//! Knowledge-graph data model for the AutoSF reproduction.
//!
//! A KG is a set of triples `(h, r, t)` over entity set `E` and relation set
//! `R` (paper, Notations). This crate owns everything the rest of the
//! workspace needs to *hold and query* KGs:
//!
//! * [`ids`] — typed entity/relation identifiers.
//! * [`triple`] — the [`triple::Triple`] record and triple-set helpers.
//! * [`graph`] — [`graph::Dataset`]: vocabularies plus train/valid/test splits.
//! * [`index`] — [`index::FilterIndex`], the "filtered setting" lookup used
//!   by link-prediction evaluation (Bordes et al., adopted in Sec. V-B).
//! * [`reltype`] — the relation-pattern classifier behind Tab. III
//!   (#symmetric / #anti-symmetric / #inverse / #general with the paper's
//!   0.9 / 0.1 thresholds).
//! * [`split`] — deterministic train/valid/test splitting.
//! * [`stats`] — dataset statistics (Tab. III rows).
//! * [`fxhash`] — a small Fx-style hasher so hot index lookups don't pay
//!   SipHash costs (std's default), per the performance guide.

pub mod fxhash;
pub mod graph;
pub mod ids;
pub mod index;
pub mod io;
pub mod reltype;
pub mod split;
pub mod stats;
pub mod triple;

pub use graph::Dataset;
pub use ids::{EntityId, RelationId};
pub use index::FilterIndex;
pub use reltype::{RelationKind, RelationProfile};
pub use stats::DatasetStats;
pub use triple::Triple;

//! Relation-pattern classification — the procedure behind Tab. III.
//!
//! The paper classifies each relation `r` with `n_r` positive triples:
//!
//! 1. **symmetric** — the number of reversed triples `(t, r, h)` present
//!    exceeds `0.9 · n_r`;
//! 2. **anti-symmetric** — no reversed triple is present *and* the head and
//!    tail entity sets overlap by at least `0.1 · n_r` (so head and tail
//!    ranges have the same type, ruling out trivially-asymmetric bipartite
//!    relations);
//! 3. **inverse** — some other relation `r'` contains at least `0.9 · n_r`
//!    of the reversed pairs `(t, r', h)`;
//! 4. **general asymmetric** — everything else.
//!
//! The 0.9 / 0.1 thresholds are the paper's (configurable here).
//!
//! **Partition semantics.** The paper's Tab. III rows sum exactly to the
//! relation count (WN18: 4 + 7 + 7 + 0 = 18), yet in WN18 both members of a
//! *hypernym/hyponym*-style pair satisfy the anti-symmetric test *and* the
//! inverse test. The only coherent reading (and the one consistent with
//! Tab. II listing *Hypernym* under anti-symmetric but *Hypernym/Hyponym*
//! under inverse) is that each inverse pair contributes **one** relation
//! keeping its intrinsic class and **one** classified `Inverse`. We
//! implement that in two phases: first every relation gets its intrinsic
//! class (symmetric / anti-symmetric / general); then, scanning in id
//! order, a relation is re-labelled `Inverse` when it has a reverse-overlap
//! partner with a smaller id that itself is not `Inverse` or `Symmetric`.

use crate::fxhash::{FxHashMap, FxHashSet};
use crate::ids::{EntityId, RelationId};
use crate::triple::Triple;
use serde::{Deserialize, Serialize};

/// The pattern class of one relation (Tab. II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RelationKind {
    /// `f(t,r,h) = f(h,r,t)`, e.g. *IsSimilarTo*.
    Symmetric,
    /// `f(t,r,h) = -f(h,r,t)`, e.g. *Hypernym*.
    AntiSymmetric,
    /// `f(t,r,h) = f(h,r',t)` for a partner `r' ≠ r`, e.g. *Hypernym/Hyponym*.
    Inverse,
    /// No constraint ties the two directions, e.g. *Profession*.
    General,
}

/// Classification thresholds; defaults are the paper's hand-made values.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RelTypeConfig {
    /// Fraction of reversed triples required for symmetric / inverse (0.9).
    pub reverse_fraction: f64,
    /// Fraction of head-tail overlap required for anti-symmetric (0.1).
    pub overlap_fraction: f64,
}

impl Default for RelTypeConfig {
    fn default() -> Self {
        RelTypeConfig { reverse_fraction: 0.9, overlap_fraction: 0.1 }
    }
}

/// Per-relation classification results for a dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RelationProfile {
    kinds: Vec<RelationKind>,
    /// Inverse partner (for `Inverse` relations): the `r'` realising the
    /// reverse-fraction threshold.
    partners: Vec<Option<RelationId>>,
    counts: [usize; 4],
}

impl RelationProfile {
    /// Classify every relation appearing in `triples`; `n_relations` sizes
    /// the dense output (relations with zero triples classify as General).
    pub fn classify(triples: &[Triple], n_relations: usize) -> Self {
        Self::classify_with(triples, n_relations, RelTypeConfig::default())
    }

    /// Classify with explicit thresholds.
    pub fn classify_with(triples: &[Triple], n_relations: usize, cfg: RelTypeConfig) -> Self {
        // Group triples by relation and index ordered pairs.
        let mut by_rel: Vec<Vec<(EntityId, EntityId)>> = vec![Vec::new(); n_relations];
        let mut pair_rels: FxHashMap<(EntityId, EntityId), Vec<RelationId>> = FxHashMap::default();
        for t in triples {
            by_rel[t.r.idx()].push((t.h, t.t));
            pair_rels.entry((t.h, t.t)).or_default().push(t.r);
        }

        // Phase 1: intrinsic class (symmetric / anti-symmetric / general)
        // and the best reverse-overlap partner of every relation.
        let mut kinds = vec![RelationKind::General; n_relations];
        let mut partners: Vec<Option<RelationId>> = vec![None; n_relations];
        for (ri, pairs) in by_rel.iter().enumerate() {
            let n_r = pairs.len();
            if n_r == 0 {
                continue;
            }
            let r = RelationId(ri as u32);

            // How often is each relation (including r itself) the label of
            // the reversed pair?
            let mut rev_counts: FxHashMap<RelationId, usize> = FxHashMap::default();
            for &(h, t) in pairs {
                if let Some(rels) = pair_rels.get(&(t, h)) {
                    let mut seen_here: FxHashSet<RelationId> = FxHashSet::default();
                    for &rp in rels {
                        // A pair can carry duplicate relation labels only if
                        // the input had duplicate triples; count each
                        // (pair, relation) once.
                        if seen_here.insert(rp) {
                            *rev_counts.entry(rp).or_insert(0) += 1;
                        }
                    }
                }
            }

            let threshold = cfg.reverse_fraction * n_r as f64;
            partners[ri] = rev_counts
                .iter()
                .filter(|(rp, _)| **rp != r)
                .filter(|(_, &c)| c as f64 >= threshold)
                .max_by_key(|(_, &c)| c)
                .map(|(rp, _)| *rp);

            let self_rev = rev_counts.get(&r).copied().unwrap_or(0);
            if self_rev as f64 > threshold {
                kinds[ri] = RelationKind::Symmetric;
                continue;
            }
            if self_rev == 0 {
                let heads: FxHashSet<EntityId> = pairs.iter().map(|p| p.0).collect();
                let tails: FxHashSet<EntityId> = pairs.iter().map(|p| p.1).collect();
                let joint = heads.intersection(&tails).count();
                if joint as f64 >= cfg.overlap_fraction * n_r as f64 {
                    kinds[ri] = RelationKind::AntiSymmetric;
                    continue;
                }
            }
            kinds[ri] = RelationKind::General;
        }

        // Phase 2: one member of each inverse pair becomes `Inverse` — the
        // later one in id order, provided its partner keeps a non-inverse,
        // non-symmetric class (symmetric relations are their own inverses
        // and stay symmetric, as in Tab. III).
        for ri in 0..n_relations {
            if kinds[ri] == RelationKind::Symmetric {
                continue;
            }
            if let Some(rp) = partners[ri] {
                if rp.idx() < ri
                    && kinds[rp.idx()] != RelationKind::Inverse
                    && kinds[rp.idx()] != RelationKind::Symmetric
                {
                    kinds[ri] = RelationKind::Inverse;
                }
            }
        }
        // Report partners only for relations that ended up `Inverse`.
        for ri in 0..n_relations {
            if kinds[ri] != RelationKind::Inverse {
                partners[ri] = None;
            }
        }

        let mut counts = [0usize; 4];
        for k in &kinds {
            counts[Self::slot(*k)] += 1;
        }
        RelationProfile { kinds, partners, counts }
    }

    fn slot(k: RelationKind) -> usize {
        match k {
            RelationKind::Symmetric => 0,
            RelationKind::AntiSymmetric => 1,
            RelationKind::Inverse => 2,
            RelationKind::General => 3,
        }
    }

    /// The kind of relation `r`.
    pub fn kind(&self, r: RelationId) -> RelationKind {
        self.kinds[r.idx()]
    }

    /// Inverse partner of `r`, when `r` classified as `Inverse`.
    pub fn partner(&self, r: RelationId) -> Option<RelationId> {
        self.partners[r.idx()]
    }

    /// Number of relations classified symmetric.
    pub fn n_symmetric(&self) -> usize {
        self.counts[0]
    }

    /// Number of relations classified anti-symmetric.
    pub fn n_anti_symmetric(&self) -> usize {
        self.counts[1]
    }

    /// Number of relations participating in inverse pairs.
    pub fn n_inverse(&self) -> usize {
        self.counts[2]
    }

    /// Number of general asymmetric relations.
    pub fn n_general(&self) -> usize {
        self.counts[3]
    }

    /// All kinds, indexed by relation id.
    pub fn kinds(&self) -> &[RelationKind] {
        &self.kinds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a perfectly symmetric relation over 10 entity pairs.
    fn symmetric_triples(r: u32) -> Vec<Triple> {
        let mut ts = Vec::new();
        for i in 0..10u32 {
            ts.push(Triple::new(2 * i, r, 2 * i + 1));
            ts.push(Triple::new(2 * i + 1, r, 2 * i));
        }
        ts
    }

    #[test]
    fn detects_symmetric() {
        let p = RelationProfile::classify(&symmetric_triples(0), 1);
        assert_eq!(p.kind(RelationId(0)), RelationKind::Symmetric);
        assert_eq!(p.n_symmetric(), 1);
    }

    #[test]
    fn detects_anti_symmetric_chain() {
        // A strict hierarchy over one entity type: 0->1->2->...->9, never
        // reversed, heads and tails overlap heavily.
        let ts: Vec<Triple> = (0..9).map(|i| Triple::new(i, 0, i + 1)).collect();
        let p = RelationProfile::classify(&ts, 1);
        assert_eq!(p.kind(RelationId(0)), RelationKind::AntiSymmetric);
    }

    #[test]
    fn bipartite_without_overlap_is_general() {
        // heads 0..10, tails 100..110: no reversed triples but no overlap
        // either, so the "same type" guard rejects anti-symmetric.
        let ts: Vec<Triple> = (0..10).map(|i| Triple::new(i, 0, 100 + i)).collect();
        let p = RelationProfile::classify(&ts, 1);
        assert_eq!(p.kind(RelationId(0)), RelationKind::General);
    }

    #[test]
    fn inverse_pair_splits_base_and_mirror() {
        // r0 is a bipartite base relation, r1 mirrors every r0 edge. The
        // base keeps its intrinsic class (general), the mirror classifies
        // inverse — the partition that makes Tab. III rows sum to |R|.
        let mut ts = Vec::new();
        for i in 0..10u32 {
            ts.push(Triple::new(i, 0, i + 50));
            ts.push(Triple::new(i + 50, 1, i));
        }
        let p = RelationProfile::classify(&ts, 2);
        assert_eq!(p.kind(RelationId(0)), RelationKind::General);
        assert_eq!(p.kind(RelationId(1)), RelationKind::Inverse);
        assert_eq!(p.partner(RelationId(1)), Some(RelationId(0)));
        assert_eq!(p.partner(RelationId(0)), None);
        assert_eq!(p.n_inverse(), 1);
    }

    #[test]
    fn anti_symmetric_base_with_mirror_stays_anti() {
        // hypernym/hyponym: same entity pool, strict orientation, mirrored.
        let mut ts = Vec::new();
        for i in 0..20u32 {
            ts.push(Triple::new(i, 0, i + 1));
            ts.push(Triple::new(i + 1, 1, i));
        }
        let p = RelationProfile::classify(&ts, 2);
        assert_eq!(p.kind(RelationId(0)), RelationKind::AntiSymmetric);
        assert_eq!(p.kind(RelationId(1)), RelationKind::Inverse);
        assert_eq!(p.partner(RelationId(1)), Some(RelationId(0)));
    }

    #[test]
    fn partial_reversal_below_threshold_is_not_symmetric() {
        // 10 forward edges, only 5 reversed: 5/10 < 0.9.
        let mut ts: Vec<Triple> = (0..10).map(|i| Triple::new(2 * i, 0, 2 * i + 1)).collect();
        for i in 0..5 {
            ts.push(Triple::new(2 * i + 1, 0, 2 * i));
        }
        let p = RelationProfile::classify(&ts, 1);
        assert_ne!(p.kind(RelationId(0)), RelationKind::Symmetric);
    }

    #[test]
    fn empty_relation_defaults_to_general() {
        let p = RelationProfile::classify(&[Triple::new(0, 1, 1)], 3);
        assert_eq!(p.kind(RelationId(0)), RelationKind::General);
        assert_eq!(p.kind(RelationId(2)), RelationKind::General);
    }

    #[test]
    fn counts_partition_the_relations() {
        let mut ts = symmetric_triples(0);
        ts.extend((0..9).map(|i| Triple::new(i, 1, i + 1)));
        for i in 0..10u32 {
            ts.push(Triple::new(i, 2, i + 50));
            ts.push(Triple::new(i + 50, 3, i));
        }
        let p = RelationProfile::classify(&ts, 4);
        assert_eq!(p.n_symmetric() + p.n_anti_symmetric() + p.n_inverse() + p.n_general(), 4);
        assert_eq!(p.n_symmetric(), 1);
        // relation 2 is a bipartite base (general), relation 3 its mirror
        assert_eq!(p.n_inverse(), 1);
        assert_eq!(p.n_general(), 1);
    }

    #[test]
    fn custom_thresholds_respected() {
        // 10 forward, 6 reversed: symmetric under a 0.5 threshold, not 0.9.
        let mut ts: Vec<Triple> = (0..10).map(|i| Triple::new(2 * i, 0, 2 * i + 1)).collect();
        for i in 0..6 {
            ts.push(Triple::new(2 * i + 1, 0, 2 * i));
        }
        let relaxed = RelTypeConfig { reverse_fraction: 0.5, overlap_fraction: 0.1 };
        let p = RelationProfile::classify_with(&ts, 1, relaxed);
        assert_eq!(p.kind(RelationId(0)), RelationKind::Symmetric);
    }
}

//! Deterministic train/valid/test splitting.
//!
//! The generators emit one flat triple list; this module splits it the way
//! the benchmark datasets are split: a random partition by given fractions,
//! with the constraint that **every entity and relation appears in the
//! training set** (otherwise its embedding is never optimised and filtered
//! ranking is meaningless — the benchmark datasets satisfy this property).
//!
//! Self-contained splitmix64 randomness keeps this crate dependency-free.

use crate::triple::Triple;

/// Fractions of triples for valid and test (the rest train).
#[derive(Debug, Clone, Copy)]
pub struct SplitSpec {
    /// Fraction sent to the validation split.
    pub valid_fraction: f64,
    /// Fraction sent to the test split.
    pub test_fraction: f64,
}

impl Default for SplitSpec {
    fn default() -> Self {
        SplitSpec { valid_fraction: 0.05, test_fraction: 0.05 }
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Split `triples` into (train, valid, test) deterministically from `seed`.
///
/// Entity/relation coverage: after the random partition, any valid/test
/// triple containing an entity or relation not seen in train is moved to
/// train (so the split fractions are approximate on pathological inputs).
///
/// # Panics
/// Panics if the fractions are negative or sum to ≥ 1.
pub fn split_triples(
    mut triples: Vec<Triple>,
    spec: SplitSpec,
    seed: u64,
) -> (Vec<Triple>, Vec<Triple>, Vec<Triple>) {
    assert!(spec.valid_fraction >= 0.0 && spec.test_fraction >= 0.0, "negative fraction");
    assert!(spec.valid_fraction + spec.test_fraction < 1.0, "held-out fractions must sum below 1");
    let mut rng = SplitMix64(seed ^ 0xA076_1D64_78BD_642F);
    // Fisher-Yates
    let n = triples.len();
    if n > 1 {
        for i in (1..n).rev() {
            let j = rng.below(i + 1);
            triples.swap(i, j);
        }
    }
    let n_valid = (n as f64 * spec.valid_fraction).round() as usize;
    let n_test = (n as f64 * spec.test_fraction).round() as usize;
    let n_held = (n_valid + n_test).min(n.saturating_sub(1));

    let held: Vec<Triple> = triples.split_off(n - n_held);
    let mut train = triples;

    // Coverage repair: held-out triples whose entities/relations never occur
    // in train are pulled back into train.
    let mut ent_seen = crate::fxhash::FxHashSet::default();
    let mut rel_seen = crate::fxhash::FxHashSet::default();
    for t in &train {
        ent_seen.insert(t.h);
        ent_seen.insert(t.t);
        rel_seen.insert(t.r);
    }
    let mut kept = Vec::with_capacity(held.len());
    for t in held {
        if ent_seen.contains(&t.h) && ent_seen.contains(&t.t) && rel_seen.contains(&t.r) {
            kept.push(t);
        } else {
            ent_seen.insert(t.h);
            ent_seen.insert(t.t);
            rel_seen.insert(t.r);
            train.push(t);
        }
    }
    let n_valid = n_valid.min(kept.len());
    let test = kept.split_off(n_valid);
    (train, kept, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triple::{count_entities, count_relations};

    fn dense_triples(n_ent: u32, per_ent: u32) -> Vec<Triple> {
        let mut ts = Vec::new();
        for h in 0..n_ent {
            for k in 0..per_ent {
                ts.push(Triple::new(h, k % 3, (h + k + 1) % n_ent));
            }
        }
        ts
    }

    #[test]
    fn fractions_roughly_respected() {
        let ts = dense_triples(100, 10);
        let n = ts.len();
        let (train, valid, test) =
            split_triples(ts, SplitSpec { valid_fraction: 0.1, test_fraction: 0.1 }, 1);
        assert_eq!(train.len() + valid.len() + test.len(), n);
        assert!((valid.len() as f64 - n as f64 * 0.1).abs() < n as f64 * 0.03);
        assert!((test.len() as f64 - n as f64 * 0.1).abs() < n as f64 * 0.03);
    }

    #[test]
    fn deterministic_for_seed() {
        let ts = dense_triples(50, 5);
        let a = split_triples(ts.clone(), SplitSpec::default(), 7);
        let b = split_triples(ts, SplitSpec::default(), 7);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let ts = dense_triples(50, 5);
        let a = split_triples(ts.clone(), SplitSpec::default(), 1);
        let b = split_triples(ts, SplitSpec::default(), 2);
        assert_ne!(a.0, b.0);
    }

    #[test]
    fn train_covers_all_entities_and_relations() {
        let ts = dense_triples(60, 4);
        let ne = count_entities(&ts);
        let nr = count_relations(&ts);
        let (train, _, _) =
            split_triples(ts, SplitSpec { valid_fraction: 0.3, test_fraction: 0.3 }, 3);
        assert_eq!(count_entities(&train), ne);
        assert_eq!(count_relations(&train), nr);
    }

    #[test]
    fn rare_entity_forced_into_train() {
        // entity 999 appears exactly once; it must land in train.
        let mut ts = dense_triples(20, 5);
        ts.push(Triple::new(999, 0, 1));
        for seed in 0..10 {
            let (train, valid, test) = split_triples(
                ts.clone(),
                SplitSpec { valid_fraction: 0.2, test_fraction: 0.2 },
                seed,
            );
            let in_train = train.iter().any(|t| t.h.0 == 999);
            assert!(in_train, "seed {seed}");
            assert!(!valid.iter().chain(test.iter()).any(|t| t.h.0 == 999));
        }
    }

    #[test]
    fn tiny_inputs_do_not_panic() {
        let (tr, va, te) = split_triples(vec![Triple::new(0, 0, 1)], SplitSpec::default(), 0);
        assert_eq!(tr.len() + va.len() + te.len(), 1);
        let (tr, _, _) = split_triples(vec![], SplitSpec::default(), 0);
        assert!(tr.is_empty());
    }

    #[test]
    #[should_panic(expected = "sum below 1")]
    fn overfull_fractions_panic() {
        split_triples(vec![], SplitSpec { valid_fraction: 0.6, test_fraction: 0.6 }, 0);
    }
}

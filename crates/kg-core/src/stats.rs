//! Dataset statistics — the rows of Tab. III.

use crate::graph::Dataset;
use crate::reltype::RelationProfile;
use serde::{Deserialize, Serialize};

/// One Tab. III row: sizes plus the relation-pattern census.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// |E|
    pub n_entities: usize,
    /// |R|
    pub n_relations: usize,
    /// #train
    pub n_train: usize,
    /// #valid
    pub n_valid: usize,
    /// #test
    pub n_test: usize,
    /// #symmetric relations
    pub n_symmetric: usize,
    /// #anti-symmetric relations
    pub n_anti_symmetric: usize,
    /// #relations participating in inverse pairs
    pub n_inverse: usize,
    /// #general asymmetric relations
    pub n_general: usize,
}

impl DatasetStats {
    /// Compute the census over **all** splits, as the paper does for its
    /// dataset table.
    pub fn of(ds: &Dataset) -> Self {
        let all = ds.all_triples();
        let profile = RelationProfile::classify(&all, ds.n_relations);
        DatasetStats {
            name: ds.name.clone(),
            n_entities: ds.n_entities,
            n_relations: ds.n_relations,
            n_train: ds.train.len(),
            n_valid: ds.valid.len(),
            n_test: ds.test.len(),
            n_symmetric: profile.n_symmetric(),
            n_anti_symmetric: profile.n_anti_symmetric(),
            n_inverse: profile.n_inverse(),
            n_general: profile.n_general(),
        }
    }

    /// Render as a Tab. III-style row.
    pub fn row(&self) -> String {
        format!(
            "{:<14} {:>8} {:>6} {:>9} {:>7} {:>7} {:>5} {:>9} {:>8} {:>8}",
            self.name,
            self.n_entities,
            self.n_relations,
            self.n_train,
            self.n_valid,
            self.n_test,
            self.n_symmetric,
            self.n_anti_symmetric,
            self.n_inverse,
            self.n_general
        )
    }

    /// Header matching [`DatasetStats::row`].
    pub fn header() -> String {
        format!(
            "{:<14} {:>8} {:>6} {:>9} {:>7} {:>7} {:>5} {:>9} {:>8} {:>8}",
            "data set",
            "#entity",
            "#rel",
            "#train",
            "#valid",
            "#test",
            "#sym",
            "#anti-sym",
            "#inverse",
            "#general"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triple::Triple;

    #[test]
    fn stats_count_everything() {
        let mut train = Vec::new();
        // symmetric relation 0
        for i in 0..10u32 {
            train.push(Triple::new(2 * i, 0, 2 * i + 1));
            train.push(Triple::new(2 * i + 1, 0, 2 * i));
        }
        // anti-symmetric chain relation 1
        for i in 0..9 {
            train.push(Triple::new(i, 1, i + 1));
        }
        let ds = Dataset::new("toy", train, vec![Triple::new(0, 0, 2)], vec![]);
        let s = DatasetStats::of(&ds);
        assert_eq!(s.n_relations, 2);
        assert_eq!(s.n_symmetric, 1);
        assert_eq!(s.n_anti_symmetric, 1);
        assert_eq!(s.n_train, 29);
        assert_eq!(s.n_valid, 1);
        assert_eq!(s.n_test, 0);
    }

    #[test]
    fn row_and_header_align() {
        let ds = Dataset::new("x", vec![Triple::new(0, 0, 1)], vec![], vec![]);
        let s = DatasetStats::of(&ds);
        // both render without panicking and have equal field counts
        assert_eq!(
            DatasetStats::header().split_whitespace().count(),
            10 + 1 // "data set" splits into two tokens
        );
        assert!(!s.row().is_empty());
    }
}

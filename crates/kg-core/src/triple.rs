//! The triple record `(h, r, t)` and helpers over triple slices.

use crate::ids::{EntityId, RelationId};
use serde::{Deserialize, Serialize};

/// One observed fact: head entity, relation, tail entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Triple {
    /// Head entity `h`.
    pub h: EntityId,
    /// Relation `r`.
    pub r: RelationId,
    /// Tail entity `t`.
    pub t: EntityId,
}

impl Triple {
    /// Construct from raw ids.
    #[inline]
    pub fn new(h: u32, r: u32, t: u32) -> Self {
        Triple { h: EntityId(h), r: RelationId(r), t: EntityId(t) }
    }

    /// The reversed triple `(t, r, h)` — used by the relation-pattern
    /// classifier (Tab. III) and symmetry tests.
    #[inline]
    pub fn reversed(self) -> Triple {
        Triple { h: self.t, r: self.r, t: self.h }
    }

    /// True if head equals tail (a self-loop).
    #[inline]
    pub fn is_loop(self) -> bool {
        self.h == self.t
    }
}

impl std::fmt::Display for Triple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {}, {})", self.h, self.r, self.t)
    }
}

/// Number of distinct entities referenced by `triples`.
pub fn count_entities(triples: &[Triple]) -> usize {
    let mut seen = crate::fxhash::FxHashSet::default();
    for t in triples {
        seen.insert(t.h);
        seen.insert(t.t);
    }
    seen.len()
}

/// Number of distinct relations referenced by `triples`.
pub fn count_relations(triples: &[Triple]) -> usize {
    let mut seen = crate::fxhash::FxHashSet::default();
    for t in triples {
        seen.insert(t.r);
    }
    seen.len()
}

/// Largest entity id + 1 (0 for the empty slice) — the array size needed to
/// index entities densely.
pub fn entity_bound(triples: &[Triple]) -> usize {
    triples.iter().map(|t| t.h.0.max(t.t.0) as usize + 1).max().unwrap_or(0)
}

/// Largest relation id + 1 (0 for the empty slice).
pub fn relation_bound(triples: &[Triple]) -> usize {
    triples.iter().map(|t| t.r.0 as usize + 1).max().unwrap_or(0)
}

/// Deduplicate while preserving first-occurrence order.
pub fn dedup_preserving_order(triples: Vec<Triple>) -> Vec<Triple> {
    let mut seen = crate::fxhash::FxHashSet::default();
    triples.into_iter().filter(|t| seen.insert(*t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reversed_swaps_entities() {
        let t = Triple::new(1, 2, 3);
        assert_eq!(t.reversed(), Triple::new(3, 2, 1));
        assert_eq!(t.reversed().reversed(), t);
    }

    #[test]
    fn loops_detected() {
        assert!(Triple::new(5, 0, 5).is_loop());
        assert!(!Triple::new(5, 0, 6).is_loop());
    }

    #[test]
    fn counting_helpers() {
        let ts = vec![Triple::new(0, 0, 1), Triple::new(1, 1, 2), Triple::new(0, 0, 1)];
        assert_eq!(count_entities(&ts), 3);
        assert_eq!(count_relations(&ts), 2);
        assert_eq!(entity_bound(&ts), 3);
        assert_eq!(relation_bound(&ts), 2);
    }

    #[test]
    fn bounds_of_empty() {
        assert_eq!(entity_bound(&[]), 0);
        assert_eq!(relation_bound(&[]), 0);
    }

    #[test]
    fn dedup_keeps_order() {
        let ts = vec![
            Triple::new(0, 0, 1),
            Triple::new(1, 0, 2),
            Triple::new(0, 0, 1),
            Triple::new(2, 0, 3),
        ];
        let d = dedup_preserving_order(ts);
        assert_eq!(d, vec![Triple::new(0, 0, 1), Triple::new(1, 0, 2), Triple::new(2, 0, 3)]);
    }

    #[test]
    fn display() {
        assert_eq!(Triple::new(1, 2, 3).to_string(), "(e1, r2, e3)");
    }
}

//! Property-based tests for the KG data model.

use kg_core::split::{split_triples, SplitSpec};
use kg_core::triple::{count_entities, count_relations};
use kg_core::{FilterIndex, Triple};
use proptest::prelude::*;

fn arb_triple(n_ent: u32, n_rel: u32) -> impl Strategy<Value = Triple> {
    (0..n_ent, 0..n_rel, 0..n_ent).prop_map(|(h, r, t)| Triple::new(h, r, t))
}

fn arb_triples(n: usize) -> impl Strategy<Value = Vec<Triple>> {
    prop::collection::vec(arb_triple(40, 4), 1..n)
}

proptest! {
    #[test]
    fn split_is_a_partition(ts in arb_triples(200), seed in 0u64..1000) {
        let spec = SplitSpec { valid_fraction: 0.15, test_fraction: 0.15 };
        let total = ts.len();
        let (tr, va, te) = split_triples(ts, spec, seed);
        prop_assert_eq!(tr.len() + va.len() + te.len(), total);
    }

    #[test]
    fn split_train_covers_vocabulary(ts in arb_triples(200), seed in 0u64..1000) {
        let spec = SplitSpec { valid_fraction: 0.2, test_fraction: 0.2 };
        let ne = count_entities(&ts);
        let nr = count_relations(&ts);
        let (tr, _, _) = split_triples(ts, spec, seed);
        prop_assert_eq!(count_entities(&tr), ne);
        prop_assert_eq!(count_relations(&tr), nr);
    }

    #[test]
    fn filter_index_membership_is_exact(ts in arb_triples(150)) {
        let idx = FilterIndex::build(&ts);
        for t in &ts {
            prop_assert!(idx.known(t.h, t.r, t.t));
            prop_assert!(idx.tails(t.h, t.r).contains(&t.t));
            prop_assert!(idx.heads(t.r, t.t).contains(&t.h));
        }
    }

    #[test]
    fn filter_index_no_false_positives(ts in arb_triples(80), probe in arb_triple(40, 4)) {
        let idx = FilterIndex::build(&ts);
        let in_set = ts.contains(&probe);
        prop_assert_eq!(idx.known(probe.h, probe.r, probe.t), in_set);
    }

    #[test]
    fn reversal_is_involution(t in arb_triple(100, 10)) {
        prop_assert_eq!(t.reversed().reversed(), t);
    }
}

mod reltype_props {
    use super::*;
    use kg_core::reltype::{RelationKind, RelationProfile};

    proptest! {
        /// Whatever the input, the four counts partition the relations.
        #[test]
        fn census_partitions_relations(ts in arb_triples(150)) {
            let nr = 4;
            let p = RelationProfile::classify(&ts, nr);
            prop_assert_eq!(
                p.n_symmetric() + p.n_anti_symmetric() + p.n_inverse() + p.n_general(),
                nr
            );
        }

        /// Fully-mirrored relations always classify symmetric.
        #[test]
        fn closed_symmetric_sets_classify_symmetric(
            pairs in prop::collection::vec((0u32..30, 31u32..60), 5..40)
        ) {
            let mut ts = Vec::new();
            for (a, b) in pairs {
                ts.push(Triple::new(a, 0, b));
                ts.push(Triple::new(b, 0, a));
            }
            let p = RelationProfile::classify(&ts, 1);
            prop_assert_eq!(p.kind(kg_core::RelationId(0)), RelationKind::Symmetric);
        }

        /// Inverse partners are mutual: if r' reports partner r, then r's
        /// reversed pairs really do appear under r'.
        #[test]
        fn reported_partner_is_consistent(ts in arb_triples(150)) {
            let nr = 4;
            let p = RelationProfile::classify(&ts, nr);
            for r in 0..nr as u32 {
                if let Some(partner) = p.partner(kg_core::RelationId(r)) {
                    prop_assert_ne!(partner.0, r);
                    prop_assert_eq!(p.kind(kg_core::RelationId(r)), RelationKind::Inverse);
                }
            }
        }
    }
}

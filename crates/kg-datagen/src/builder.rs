//! Composable KG assembly.
//!
//! A [`KgBuilder`] owns a latent world and accumulates relations one pattern
//! at a time; [`KgBuilder::build`] deduplicates, splits deterministically and
//! returns a ready [`Dataset`]. The builder records which pattern each
//! relation was generated with, so tests can assert the census matches the
//! design.

use crate::patterns;
use crate::world::{LatentRelation, LatentWorld};
use kg_core::split::{split_triples, SplitSpec};
use kg_core::triple::dedup_preserving_order;
use kg_core::{Dataset, Triple};
use kg_linalg::SeededRng;
use serde::{Deserialize, Serialize};

/// The pattern a relation was generated with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GeneratedKind {
    /// Emitted in both directions.
    Symmetric,
    /// Emitted in one orientation only.
    AntiSymmetric,
    /// Mirror of another relation (the id it mirrors).
    InverseOf(u32),
    /// Unconstrained bilinear relation.
    General,
    /// Uniform random edges.
    Noise,
}

/// Incremental KG builder over a latent world.
pub struct KgBuilder {
    world: LatentWorld,
    rng: SeededRng,
    triples: Vec<Triple>,
    kinds: Vec<GeneratedKind>,
    /// Latent matrices for already-added relations (None for noise).
    latents: Vec<Option<LatentRelation>>,
    /// Triples per relation, kept for inverse mirroring.
    per_relation: Vec<Vec<Triple>>,
}

impl KgBuilder {
    /// Start a builder with `n_entities` entities, latent dimension `k`,
    /// `n_clusters` entity communities and a seed.
    pub fn new(n_entities: usize, k: usize, n_clusters: usize, seed: u64) -> Self {
        let mut rng = SeededRng::new(seed);
        let world = LatentWorld::generate(n_entities, k, n_clusters, &mut rng);
        KgBuilder {
            world,
            rng,
            triples: Vec::new(),
            kinds: Vec::new(),
            latents: Vec::new(),
            per_relation: Vec::new(),
        }
    }

    /// Number of relations added so far.
    pub fn n_relations(&self) -> usize {
        self.kinds.len()
    }

    /// Number of entities in the world.
    pub fn n_entities(&self) -> usize {
        self.world.n_entities()
    }

    /// The pattern each relation was generated with.
    pub fn kinds(&self) -> &[GeneratedKind] {
        &self.kinds
    }

    fn push_relation(
        &mut self,
        kind: GeneratedKind,
        latent: Option<LatentRelation>,
        triples: Vec<Triple>,
    ) -> u32 {
        let r = self.kinds.len() as u32;
        self.kinds.push(kind);
        self.latents.push(latent);
        self.triples.extend_from_slice(&triples);
        self.per_relation.push(triples);
        r
    }

    /// Add a symmetric relation of about `2n` triples; returns its id.
    pub fn add_symmetric(&mut self, n: usize, completeness: f64) -> u32 {
        let rel = self.world.symmetric_relation(&mut self.rng);
        let r = self.kinds.len() as u32;
        let pool = 0..self.world.n_entities();
        let ts = patterns::symmetric(&self.world, &rel, r, n, pool, completeness, &mut self.rng);
        self.push_relation(GeneratedKind::Symmetric, Some(rel), ts)
    }

    /// Add an anti-symmetric relation of about `n` triples; returns its id.
    pub fn add_anti_symmetric(&mut self, n: usize) -> u32 {
        let rel = self.world.anti_symmetric_relation(&mut self.rng);
        let r = self.kinds.len() as u32;
        let pool = 0..self.world.n_entities();
        let ts = patterns::anti_symmetric(&self.world, &rel, r, n, pool, &mut self.rng);
        self.push_relation(GeneratedKind::AntiSymmetric, Some(rel), ts)
    }

    /// Add a general asymmetric relation of about `n` triples; returns its
    /// id. Heads and tails come from disjoint entity pools (the relation is
    /// type-bipartite, like real-world relations such as *Profession*), with
    /// the split point drawn per relation.
    pub fn add_general(&mut self, n: usize) -> u32 {
        let rel = self.world.general_relation(&mut self.rng);
        let r = self.kinds.len() as u32;
        let ne = self.world.n_entities();
        // split somewhere in the middle half, orientation random
        let s = ne / 4 + self.rng.below((ne / 2).max(1));
        let (head_pool, tail_pool) = if self.rng.coin() { (0..s, s..ne) } else { (s..ne, 0..s) };
        let ts = patterns::general(&self.world, &rel, r, n, head_pool, tail_pool, &mut self.rng);
        self.push_relation(GeneratedKind::General, Some(rel), ts)
    }

    /// Add the inverse of relation `base` with the given fidelity; returns
    /// the new relation's id.
    ///
    /// # Panics
    /// Panics if `base` does not exist yet.
    pub fn add_inverse_of(&mut self, base: u32, fidelity: f64) -> u32 {
        assert!((base as usize) < self.per_relation.len(), "relation {base} does not exist yet");
        let r = self.kinds.len() as u32;
        let ts =
            patterns::inverse_of(&self.per_relation[base as usize], r, fidelity, &mut self.rng);
        let latent = self.latents[base as usize].as_ref().map(|l| self.world.inverse_of(l));
        self.push_relation(GeneratedKind::InverseOf(base), latent, ts)
    }

    /// Add a pure-noise relation of `n` triples; returns its id.
    pub fn add_noise_relation(&mut self, n: usize) -> u32 {
        let r = self.kinds.len() as u32;
        let ts = patterns::noise(self.world.n_entities(), r, n, &mut self.rng);
        self.push_relation(GeneratedKind::Noise, None, ts)
    }

    /// Finish: deduplicate, split, and construct the dataset.
    pub fn build(mut self, name: impl Into<String>, spec: SplitSpec) -> Dataset {
        let triples = dedup_preserving_order(std::mem::take(&mut self.triples));
        let seed = self.rng.next_u64();
        let (train, valid, test) = split_triples(triples, spec, seed);
        Dataset::with_vocab(name, self.world.n_entities(), self.kinds.len(), train, valid, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_core::reltype::{RelationKind, RelationProfile};
    use kg_core::DatasetStats;

    fn small_builder() -> KgBuilder {
        KgBuilder::new(150, 6, 4, 7)
    }

    #[test]
    fn builder_census_matches_design() {
        let mut b = small_builder();
        let sym = b.add_symmetric(120, 1.0);
        let anti = b.add_anti_symmetric(150);
        let gen = b.add_general(150);
        let inv = b.add_inverse_of(gen, 1.0);
        let ds = b.build("census", SplitSpec::default());
        let all = ds.all_triples();
        let p = RelationProfile::classify(&all, ds.n_relations);
        assert_eq!(p.kind(kg_core::RelationId(sym)), RelationKind::Symmetric);
        assert_eq!(p.kind(kg_core::RelationId(anti)), RelationKind::AntiSymmetric);
        assert_eq!(p.kind(kg_core::RelationId(gen)), RelationKind::General);
        assert_eq!(p.kind(kg_core::RelationId(inv)), RelationKind::Inverse);
    }

    #[test]
    fn build_produces_valid_dataset() {
        let mut b = small_builder();
        b.add_general(200);
        b.add_symmetric(80, 0.95);
        let ds = b.build("valid", SplitSpec { valid_fraction: 0.1, test_fraction: 0.1 });
        assert!(ds.validate().is_ok());
        assert!(!ds.train.is_empty());
        assert!(!ds.valid.is_empty());
        assert!(!ds.test.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            let mut b = KgBuilder::new(100, 4, 3, 42);
            b.add_general(100);
            b.add_symmetric(50, 1.0);
            b.build("det", SplitSpec::default())
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.train, b.train);
        assert_eq!(a.valid, b.valid);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn stats_pipeline_runs() {
        let mut b = small_builder();
        b.add_symmetric(60, 1.0);
        b.add_general(100);
        let ds = b.build("stats", SplitSpec::default());
        let s = DatasetStats::of(&ds);
        assert_eq!(s.n_relations, 2);
        assert_eq!(s.n_train + s.n_valid + s.n_test, ds.len());
    }

    #[test]
    #[should_panic(expected = "does not exist yet")]
    fn inverse_of_missing_relation_panics() {
        let mut b = small_builder();
        b.add_inverse_of(3, 1.0);
    }
}

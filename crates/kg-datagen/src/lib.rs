//! Seeded synthetic knowledge-graph generators.
//!
//! The paper evaluates on WN18, FB15k, WN18RR, FB15k237 and YAGO3-10 —
//! download-gated benchmark dumps we substitute with generators (see
//! DESIGN.md §2). The design goal is *not* to match absolute benchmark
//! numbers but to preserve the property the paper's analysis hinges on: each
//! dataset has a distinct census of relation patterns (Tab. III), and which
//! scoring function wins depends on that census (Tab. II).
//!
//! Generation is driven by a **latent bilinear world** ([`world::LatentWorld`]):
//! every entity gets a low-dimensional latent vector, and every relation a
//! latent k×k matrix whose algebraic shape enforces its pattern —
//! symmetric matrices yield symmetric relations, skew-symmetric matrices
//! yield anti-symmetric ones, transposed matrices yield inverse pairs.
//! Because the ground truth is itself bilinear, held-out triples are
//! *learnable* by BLM scoring functions (the model class the paper
//! searches), while the pattern census stays under exact control.
//!
//! * [`world`] — the latent entity/relation model.
//! * [`patterns`] — per-pattern triple generators.
//! * [`builder`] — composable KG assembly + splitting into a [`kg_core::Dataset`].
//! * [`presets`] — the five benchmark-like datasets of Tab. III, scaled.

// Index loops mirror the paper's subscript notation in numeric kernels.
#![allow(clippy::needless_range_loop)]
pub mod builder;
pub mod patterns;
pub mod presets;
pub mod world;

pub use builder::KgBuilder;
pub use presets::{preset, Preset, Scale};
pub use world::LatentWorld;

//! Per-pattern triple generators over a [`LatentWorld`].
//!
//! Each generator emits approximately `n` triples for one relation id,
//! selecting tails by ground-truth latent score among a random candidate
//! pool (so the graph is *structured but noisy*, like real KGs: a high
//! latent score makes an edge likely, not certain).
//!
//! Generators take **entity pools** (index ranges): symmetric and
//! anti-symmetric relations draw heads and tails from one pool (their head
//! and tail sets overlap, as Tab. II's "same type" requirement demands),
//! while general relations draw heads and tails from disjoint pools —
//! mirroring real type-bipartite relations like *Profession* — which is
//! what keeps them out of the anti-symmetric class under the paper's
//! 0.1-overlap rule.

use crate::world::{LatentRelation, LatentWorld};
use kg_core::fxhash::FxHashSet;
use kg_core::Triple;
use kg_linalg::SeededRng;
use std::ops::Range;

/// How many random tail candidates are scored per emitted triple. Larger
/// values make the graph more deterministic given the latent world.
const CANDIDATES: usize = 24;

fn sample_in(pool: &Range<usize>, rng: &mut SeededRng) -> usize {
    pool.start + rng.below(pool.len())
}

/// Pick the best-scoring tail for `h` among `CANDIDATES` random candidates
/// from `pool`, excluding self-loops.
fn pick_tail(
    world: &LatentWorld,
    rel: &LatentRelation,
    h: usize,
    pool: &Range<usize>,
    rng: &mut SeededRng,
) -> usize {
    let mut best = usize::MAX;
    let mut best_score = f32::NEG_INFINITY;
    for _ in 0..CANDIDATES {
        let t = sample_in(pool, rng);
        if t == h {
            continue;
        }
        let s = world.score(h, rel, t);
        if s > best_score {
            best_score = s;
            best = t;
        }
    }
    if best == usize::MAX {
        // pool was {h}; fall back to the neighbouring entity
        (h + 1) % world.n_entities()
    } else {
        best
    }
}

/// Generate `n` triples for a **general asymmetric** relation with heads
/// from `head_pool` and tails from `tail_pool`.
///
/// Each sampled head emits its `FANOUT` best-scoring tails, making the
/// relation many-to-many like real Freebase relations. This matters for
/// baseline fidelity: near-functional synthetic relations would hand
/// translational models an unrealistic memorisation advantage (a
/// translation maps each head to *one* point, which is exactly wrong for
/// 1-to-N relations — the weakness TransH was designed around).
pub fn general(
    world: &LatentWorld,
    rel: &LatentRelation,
    r: u32,
    n: usize,
    head_pool: Range<usize>,
    tail_pool: Range<usize>,
    rng: &mut SeededRng,
) -> Vec<Triple> {
    assert!(!head_pool.is_empty() && !tail_pool.is_empty(), "empty entity pool");
    /// Tails emitted per sampled head.
    const FANOUT: usize = 3;
    let mut seen: FxHashSet<(usize, usize)> = FxHashSet::default();
    let mut out = Vec::with_capacity(n);
    let mut attempts = 0usize;
    let mut scored: Vec<(f32, usize)> = Vec::with_capacity(CANDIDATES);
    while out.len() < n && attempts < n * 20 {
        attempts += 1;
        let h = sample_in(&head_pool, rng);
        // score a candidate pool and keep the FANOUT best tails
        scored.clear();
        for _ in 0..CANDIDATES {
            let t = sample_in(&tail_pool, rng);
            if t != h {
                scored.push((world.score(h, rel, t), t));
            }
        }
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));
        scored.dedup_by_key(|s| s.1);
        for &(_, t) in scored.iter().take(FANOUT) {
            if out.len() >= n {
                break;
            }
            if seen.insert((h, t)) {
                out.push(Triple::new(h as u32, r, t as u32));
            }
        }
    }
    out
}

/// Generate a **symmetric** relation over `pool`: `n` *undirected* facts
/// emitted in both directions (≈ 2n triples), with a `completeness`
/// fraction of reverse edges actually materialised (1.0 = perfectly
/// symmetric; real KGs sit slightly below).
pub fn symmetric(
    world: &LatentWorld,
    rel: &LatentRelation,
    r: u32,
    n: usize,
    pool: Range<usize>,
    completeness: f64,
    rng: &mut SeededRng,
) -> Vec<Triple> {
    assert!((0.0..=1.0).contains(&completeness), "completeness must be a fraction");
    assert!(pool.len() >= 2, "symmetric pool needs at least two entities");
    let mut seen: FxHashSet<(usize, usize)> = FxHashSet::default();
    let mut out = Vec::with_capacity(2 * n);
    let mut attempts = 0usize;
    while seen.len() < n && attempts < n * 20 {
        attempts += 1;
        let h = sample_in(&pool, rng);
        let t = pick_tail(world, rel, h, &pool, rng);
        let key = (h.min(t), h.max(t));
        if h != t && seen.insert(key) {
            out.push(Triple::new(h as u32, r, t as u32));
            if rng.uniform() < completeness {
                out.push(Triple::new(t as u32, r, h as u32));
            }
        }
    }
    out
}

/// Generate an **anti-symmetric** relation over `pool`: only the direction
/// the skew ground truth prefers is emitted, guaranteeing zero reversed
/// pairs, while head/tail sets overlap (same pool).
pub fn anti_symmetric(
    world: &LatentWorld,
    rel: &LatentRelation,
    r: u32,
    n: usize,
    pool: Range<usize>,
    rng: &mut SeededRng,
) -> Vec<Triple> {
    assert!(pool.len() >= 2, "anti-symmetric pool needs at least two entities");
    let mut seen: FxHashSet<(usize, usize)> = FxHashSet::default();
    let mut out = Vec::with_capacity(n);
    let mut attempts = 0usize;
    while out.len() < n && attempts < n * 20 {
        attempts += 1;
        let h = sample_in(&pool, rng);
        let t = pick_tail(world, rel, h, &pool, rng);
        if h == t {
            continue;
        }
        // Orient along the skew score; never emit both directions.
        let (h, t) = if world.score(h, rel, t) >= 0.0 { (h, t) } else { (t, h) };
        if seen.contains(&(t, h)) {
            continue;
        }
        if seen.insert((h, t)) {
            out.push(Triple::new(h as u32, r, t as u32));
        }
    }
    out
}

/// Generate the **inverse** of existing triples under a new relation id:
/// each base triple `(h, r, t)` yields `(t, r', h)` with probability
/// `fidelity`. Fidelity ≥ 0.9 makes the *pair* classify as inverse under
/// Tab. III rules; fidelity around 0.5 yields a one-sided inverse (only the
/// mirror classifies as inverse), which is how YAGO3-10's lone inverse
/// relation arises.
pub fn inverse_of(base: &[Triple], r_new: u32, fidelity: f64, rng: &mut SeededRng) -> Vec<Triple> {
    assert!((0.0..=1.0).contains(&fidelity), "fidelity must be a fraction");
    base.iter()
        .filter(|_| rng.uniform() < fidelity)
        .map(|t| Triple::new(t.t.0, r_new, t.h.0))
        .collect()
}

/// Uniform random noise triples for a relation (used to stress robustness;
/// real KGs carry an unlearnable fraction too).
pub fn noise(n_entities: usize, r: u32, n: usize, rng: &mut SeededRng) -> Vec<Triple> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let h = rng.below(n_entities) as u32;
        let mut t = rng.below(n_entities) as u32;
        if t == h {
            t = (t + 1) % n_entities as u32;
        }
        out.push(Triple::new(h, r, t));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_core::reltype::{RelationKind, RelationProfile};

    const N_ENT: usize = 120;

    fn setup() -> (LatentWorld, SeededRng) {
        let mut rng = SeededRng::new(2024);
        let w = LatentWorld::generate(N_ENT, 6, 4, &mut rng);
        (w, rng)
    }

    #[test]
    fn symmetric_generator_classifies_symmetric() {
        let (w, mut rng) = setup();
        let rel = w.symmetric_relation(&mut rng);
        let ts = symmetric(&w, &rel, 0, 100, 0..N_ENT, 1.0, &mut rng);
        let p = RelationProfile::classify(&ts, 1);
        assert_eq!(p.kind(kg_core::RelationId(0)), RelationKind::Symmetric);
    }

    #[test]
    fn anti_symmetric_generator_classifies_anti_symmetric() {
        let (w, mut rng) = setup();
        let rel = w.anti_symmetric_relation(&mut rng);
        let ts = anti_symmetric(&w, &rel, 0, 150, 0..N_ENT, &mut rng);
        // no reversed pairs at all
        let set: FxHashSet<Triple> = ts.iter().copied().collect();
        for t in &ts {
            assert!(!set.contains(&t.reversed()), "reversed pair leaked: {t}");
        }
        let p = RelationProfile::classify(&ts, 1);
        assert_eq!(p.kind(kg_core::RelationId(0)), RelationKind::AntiSymmetric);
    }

    #[test]
    fn inverse_generator_creates_inverse_pair() {
        let (w, mut rng) = setup();
        let rel = w.general_relation(&mut rng);
        let base = general(&w, &rel, 0, 150, 0..60, 60..N_ENT, &mut rng);
        let mirrored = inverse_of(&base, 1, 1.0, &mut rng);
        assert_eq!(base.len(), mirrored.len());
        let mut all = base;
        all.extend(mirrored);
        let p = RelationProfile::classify(&all, 2);
        // base keeps its intrinsic class; mirror classifies inverse
        assert_eq!(p.kind(kg_core::RelationId(0)), RelationKind::General);
        assert_eq!(p.kind(kg_core::RelationId(1)), RelationKind::Inverse);
        assert_eq!(p.partner(kg_core::RelationId(1)), Some(kg_core::RelationId(0)));
    }

    #[test]
    fn half_fidelity_inverse_is_one_sided() {
        let (w, mut rng) = setup();
        let rel = w.general_relation(&mut rng);
        let base = general(&w, &rel, 0, 200, 0..60, 60..N_ENT, &mut rng);
        let mirrored = inverse_of(&base, 1, 0.5, &mut rng);
        let mut all = base;
        all.extend(mirrored);
        let p = RelationProfile::classify(&all, 2);
        assert_eq!(p.kind(kg_core::RelationId(0)), RelationKind::General);
        assert_eq!(p.kind(kg_core::RelationId(1)), RelationKind::Inverse);
    }

    #[test]
    fn bipartite_general_classifies_general() {
        let (w, mut rng) = setup();
        let rel = w.general_relation(&mut rng);
        let ts = general(&w, &rel, 0, 200, 0..60, 60..N_ENT, &mut rng);
        let p = RelationProfile::classify(&ts, 1);
        assert_eq!(p.kind(kg_core::RelationId(0)), RelationKind::General);
        // pools respected
        assert!(ts.iter().all(|t| (t.h.0 as usize) < 60 && (t.t.0 as usize) >= 60));
    }

    #[test]
    fn generators_avoid_loops_and_duplicates() {
        let (w, mut rng) = setup();
        let rel = w.general_relation(&mut rng);
        let ts = general(&w, &rel, 0, 200, 0..N_ENT, 0..N_ENT, &mut rng);
        let set: FxHashSet<Triple> = ts.iter().copied().collect();
        assert_eq!(set.len(), ts.len(), "duplicates emitted");
        assert!(ts.iter().all(|t| !t.is_loop()));
    }

    #[test]
    fn requested_sizes_roughly_met() {
        let (w, mut rng) = setup();
        let rel = w.general_relation(&mut rng);
        let ts = general(&w, &rel, 0, 300, 0..60, 60..N_ENT, &mut rng);
        assert!(ts.len() >= 250, "only {} triples emitted", ts.len());
    }

    #[test]
    fn noise_is_in_range() {
        let mut rng = SeededRng::new(1);
        let ts = noise(10, 3, 50, &mut rng);
        assert_eq!(ts.len(), 50);
        assert!(ts.iter().all(|t| t.h.0 < 10 && t.t.0 < 10 && t.r.0 == 3 && !t.is_loop()));
    }

    #[test]
    fn partial_symmetric_completeness() {
        let (w, mut rng) = setup();
        let rel = w.symmetric_relation(&mut rng);
        let ts = symmetric(&w, &rel, 0, 100, 0..N_ENT, 0.5, &mut rng);
        // between n and 2n triples
        assert!(ts.len() > 100 && ts.len() < 200, "{} triples", ts.len());
    }
}

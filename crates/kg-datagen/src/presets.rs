//! Benchmark-like dataset presets — the five rows of Tab. III, scaled.
//!
//! Each preset reproduces its benchmark's *relation-pattern census* (the
//! property that drives which scoring function wins, per Tab. II/III), at a
//! size a laptop trains in seconds-to-minutes:
//!
//! | preset | relations | census target (sym / anti / inverse / general) |
//! |---|---|---|
//! | `Wn18Like`     | 18 | 4 / 7 / 7 / 0   (paper: 4 / 7 / 7 / 0)    |
//! | `Fb15kLike`    | 54 | 3 / 2 / 22 / 27 (paper ratios of 66/38/556/685) |
//! | `Wn18rrLike`   | 11 | 4 / 3 / 1 / 3   (paper: 4 / 3 / 1 / 3)    |
//! | `Fb15k237Like` | 24 | 3 / 1 / 2 / 18  (paper ratios of 33/5/20/179) |
//! | `Yago310Like`  | 37 | 8 / 0 / 1 / 28  (paper: 8 / 0 / 1 / 28)   |
//!
//! `Wn18rrLike`/`Fb15k237Like` carry far fewer inverse relations than their
//! parents, exactly like the real `-RR`/`-237` variants that removed
//! inverse-duplicate leakage.

use crate::builder::KgBuilder;
use kg_core::split::SplitSpec;
use kg_core::Dataset;
use serde::{Deserialize, Serialize};

/// The five benchmark-like datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Preset {
    /// WordNet-18-like: symmetry/inversion-dominated lexical graph.
    Wn18Like,
    /// Freebase-15k-like: inverse-heavy, many general relations.
    Fb15kLike,
    /// WN18RR-like: WN18 with inverse duplicates removed.
    Wn18rrLike,
    /// FB15k-237-like: FB15k with inverse/near-duplicates removed.
    Fb15k237Like,
    /// YAGO3-10-like: larger, general-dominated.
    Yago310Like,
}

impl Preset {
    /// All presets in Tab. III order.
    pub const ALL: [Preset; 5] = [
        Preset::Wn18Like,
        Preset::Fb15kLike,
        Preset::Wn18rrLike,
        Preset::Fb15k237Like,
        Preset::Yago310Like,
    ];

    /// The dataset name used in tables and file names.
    pub fn name(self) -> &'static str {
        match self {
            Preset::Wn18Like => "wn18-like",
            Preset::Fb15kLike => "fb15k-like",
            Preset::Wn18rrLike => "wn18rr-like",
            Preset::Fb15k237Like => "fb15k237-like",
            Preset::Yago310Like => "yago310-like",
        }
    }

    /// Parse from [`Preset::name`] output (case-insensitive).
    pub fn parse(s: &str) -> Option<Preset> {
        let s = s.to_ascii_lowercase();
        Preset::ALL.into_iter().find(|p| p.name() == s)
    }
}

/// Generation scale: multiplies entity counts and triples-per-relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scale {
    /// Unit-test scale — trains in well under a second.
    Tiny,
    /// Default experiment scale — a search run takes minutes.
    Quick,
    /// Closer-to-paper scale — experiments take hours.
    Full,
}

impl Scale {
    fn ent_mul(self) -> f64 {
        match self {
            Scale::Tiny => 0.35,
            Scale::Quick => 1.0,
            Scale::Full => 3.0,
        }
    }

    fn triple_mul(self) -> f64 {
        match self {
            Scale::Tiny => 0.25,
            Scale::Quick => 1.0,
            Scale::Full => 4.0,
        }
    }

    /// Read from the `SCALE` environment variable (`tiny`/`quick`/`full`),
    /// defaulting to `Quick`.
    pub fn from_env() -> Scale {
        match std::env::var("SCALE").unwrap_or_default().to_ascii_lowercase().as_str() {
            "tiny" => Scale::Tiny,
            "full" => Scale::Full,
            _ => Scale::Quick,
        }
    }
}

fn scaled(base: usize, mul: f64) -> usize {
    ((base as f64 * mul).round() as usize).max(8)
}

/// Generate a preset dataset at the given scale, deterministically in
/// `seed`.
///
/// ```
/// use kg_datagen::{preset, Preset, Scale};
/// use kg_core::DatasetStats;
///
/// let ds = preset(Preset::Wn18Like, Scale::Tiny, 42);
/// let stats = DatasetStats::of(&ds);
/// // the WN18 relation census of Tab. III
/// assert_eq!(stats.n_relations, 18);
/// assert_eq!(stats.n_symmetric, 4);
/// assert_eq!(stats.n_anti_symmetric, 7);
/// assert_eq!(stats.n_inverse, 7);
/// ```
pub fn preset(which: Preset, scale: Scale, seed: u64) -> Dataset {
    let em = scale.ent_mul();
    let tm = scale.triple_mul();
    let split = SplitSpec { valid_fraction: 0.05, test_fraction: 0.05 };
    match which {
        Preset::Wn18Like => {
            // 4 sym + 7 anti + 7 mirrors-of-anti = 18 relations.
            let mut b = KgBuilder::new(scaled(700, em), 8, 6, seed);
            for _ in 0..4 {
                b.add_symmetric(scaled(180, tm), 0.97);
            }
            let antis: Vec<u32> = (0..7).map(|_| b.add_anti_symmetric(scaled(330, tm))).collect();
            for a in antis {
                b.add_inverse_of(a, 0.97);
            }
            b.build(which.name(), split)
        }
        Preset::Fb15kLike => {
            // 3 sym + 2 anti + 22 (general base + mirror) + 5 general = 54;
            // census 3 / 2 / 22 / 27 (the 27 general = 22 bases + 5 plain),
            // matching FB15k's inverse-heavy profile.
            let mut b = KgBuilder::new(scaled(550, em), 8, 8, seed);
            for _ in 0..3 {
                b.add_symmetric(scaled(110, tm), 0.95);
            }
            for _ in 0..2 {
                b.add_anti_symmetric(scaled(200, tm));
            }
            for _ in 0..22 {
                let g = b.add_general(scaled(180, tm));
                b.add_inverse_of(g, 0.97);
            }
            for _ in 0..5 {
                b.add_general(scaled(180, tm));
            }
            b.build(which.name(), split)
        }
        Preset::Wn18rrLike => {
            // 4 sym + 3 anti (one mirrored) + 3 general = 11 relations.
            let mut b = KgBuilder::new(scaled(700, em), 8, 6, seed);
            for _ in 0..4 {
                b.add_symmetric(scaled(140, tm), 0.97);
            }
            let a0 = b.add_anti_symmetric(scaled(300, tm));
            for _ in 0..2 {
                b.add_anti_symmetric(scaled(300, tm));
            }
            b.add_inverse_of(a0, 0.97);
            for _ in 0..3 {
                b.add_general(scaled(250, tm));
            }
            b.build(which.name(), split)
        }
        Preset::Fb15k237Like => {
            // 3 sym + 1 anti + 2×(general base + mirror) + 16 general = 24;
            // census 3 / 1 / 2 / 18.
            let mut b = KgBuilder::new(scaled(550, em), 8, 8, seed);
            for _ in 0..3 {
                b.add_symmetric(scaled(120, tm), 0.95);
            }
            b.add_anti_symmetric(scaled(250, tm));
            for _ in 0..2 {
                let g = b.add_general(scaled(250, tm));
                b.add_inverse_of(g, 0.97);
            }
            for _ in 0..16 {
                b.add_general(scaled(280, tm));
            }
            b.build(which.name(), split)
        }
        Preset::Yago310Like => {
            // 8 sym + (1 general with a half-fidelity mirror → 1 inverse)
            // + 27 general = 37 relations.
            let mut b = KgBuilder::new(scaled(1200, em), 8, 10, seed);
            for _ in 0..8 {
                b.add_symmetric(scaled(150, tm), 0.95);
            }
            let g = b.add_general(scaled(320, tm));
            b.add_inverse_of(g, 0.5);
            for _ in 0..27 {
                b.add_general(scaled(350, tm));
            }
            b.build(which.name(), split)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_core::DatasetStats;

    fn census(p: Preset) -> DatasetStats {
        DatasetStats::of(&preset(p, Scale::Tiny, 11))
    }

    #[test]
    fn wn18_like_census() {
        let s = census(Preset::Wn18Like);
        assert_eq!(s.n_relations, 18);
        assert_eq!(s.n_symmetric, 4, "{s:?}");
        assert_eq!(s.n_anti_symmetric, 7, "{s:?}");
        assert_eq!(s.n_inverse, 7, "{s:?}");
        assert_eq!(s.n_general, 0, "{s:?}");
    }

    #[test]
    fn wn18rr_like_census() {
        let s = census(Preset::Wn18rrLike);
        assert_eq!(s.n_relations, 11);
        assert_eq!(s.n_symmetric, 4, "{s:?}");
        assert_eq!(s.n_anti_symmetric, 3, "{s:?}");
        assert_eq!(s.n_inverse, 1, "{s:?}");
        assert_eq!(s.n_general, 3, "{s:?}");
    }

    #[test]
    fn fb15k_like_census() {
        let s = census(Preset::Fb15kLike);
        assert_eq!(s.n_relations, 54);
        assert_eq!(s.n_symmetric, 3, "{s:?}");
        assert_eq!(s.n_inverse, 22, "{s:?}");
        assert!(s.n_general >= 25, "{s:?}");
    }

    #[test]
    fn fb15k237_like_census() {
        let s = census(Preset::Fb15k237Like);
        assert_eq!(s.n_relations, 24);
        assert_eq!(s.n_symmetric, 3, "{s:?}");
        assert_eq!(s.n_inverse, 2, "{s:?}");
        assert!(s.n_general >= 17, "{s:?}");
    }

    #[test]
    fn yago310_like_census() {
        let s = census(Preset::Yago310Like);
        assert_eq!(s.n_relations, 37);
        assert_eq!(s.n_symmetric, 8, "{s:?}");
        assert_eq!(s.n_anti_symmetric, 0, "{s:?}");
        assert_eq!(s.n_inverse, 1, "{s:?}");
        assert_eq!(s.n_general, 28, "{s:?}");
    }

    #[test]
    fn yago_is_largest() {
        let y = census(Preset::Yago310Like);
        let w = census(Preset::Wn18Like);
        assert!(y.n_entities > w.n_entities);
    }

    #[test]
    fn presets_are_deterministic() {
        let a = preset(Preset::Wn18rrLike, Scale::Tiny, 5);
        let b = preset(Preset::Wn18rrLike, Scale::Tiny, 5);
        assert_eq!(a.train, b.train);
        let c = preset(Preset::Wn18rrLike, Scale::Tiny, 6);
        assert_ne!(a.train, c.train);
    }

    #[test]
    fn names_roundtrip() {
        for p in Preset::ALL {
            assert_eq!(Preset::parse(p.name()), Some(p));
        }
        assert_eq!(Preset::parse("nope"), None);
    }

    #[test]
    fn all_presets_validate() {
        for p in Preset::ALL {
            let ds = preset(p, Scale::Tiny, 1);
            assert!(ds.validate().is_ok(), "{}", p.name());
            assert!(!ds.valid.is_empty(), "{} has no validation split", p.name());
            assert!(!ds.test.is_empty(), "{} has no test split", p.name());
        }
    }
}

//! The latent bilinear world model behind all generated KGs.
//!
//! Entities live in a latent space `z_e ∈ R^k`; a relation is a latent
//! matrix `W_r ∈ R^{k×k}` and the ground-truth plausibility of `(h, r, t)`
//! is `z_hᵀ W_r z_t`. Relation patterns are algebraic properties of `W_r`:
//!
//! * `W_r = W_rᵀ`  (symmetric part only)  → symmetric relation,
//! * `W_r = -W_rᵀ` (skew part only)       → anti-symmetric relation,
//! * `W_{r'} = W_rᵀ`                      → `(r, r')` inverse pair.
//!
//! This mirrors exactly the expressiveness argument of the paper's
//! Proposition 1, so the generated data exercises the same mechanics the
//! searched scoring functions must capture.

use kg_linalg::{Mat, SeededRng};

/// Latent entity representation shared by all relations of one KG.
#[derive(Debug, Clone)]
pub struct LatentWorld {
    /// `n_entities × k` latent entity matrix.
    z: Mat,
    /// Latent dimensionality `k`.
    k: usize,
}

/// A latent relation matrix with a named algebraic shape.
#[derive(Debug, Clone)]
pub struct LatentRelation {
    /// `k × k` ground-truth relation matrix.
    pub w: Mat,
}

impl LatentWorld {
    /// Sample a world of `n_entities` latent vectors of dimension `k`.
    /// Entities are drawn from a small number of soft clusters so that the
    /// generated KGs have the community structure real KGs show.
    pub fn generate(n_entities: usize, k: usize, n_clusters: usize, rng: &mut SeededRng) -> Self {
        assert!(k >= 2, "latent dimension must be at least 2");
        assert!(n_clusters >= 1, "need at least one cluster");
        let mut centers = Mat::zeros(n_clusters, k);
        rng.fill_normal(1.0, centers.as_mut_slice());
        let mut z = Mat::zeros(n_entities, k);
        for e in 0..n_entities {
            let c = rng.below(n_clusters);
            let row = z.row_mut(e);
            for (i, v) in row.iter_mut().enumerate() {
                *v = centers.get(c, i) + rng.normal_ms(0.0, 0.5) as f32;
            }
        }
        LatentWorld { z, k }
    }

    /// Number of entities.
    pub fn n_entities(&self) -> usize {
        self.z.rows()
    }

    /// Latent dimension.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Latent vector of entity `e`.
    pub fn latent(&self, e: usize) -> &[f32] {
        self.z.row(e)
    }

    /// Ground-truth score `z_hᵀ W z_t`.
    pub fn score(&self, h: usize, rel: &LatentRelation, t: usize) -> f32 {
        let zh = self.z.row(h);
        let zt = self.z.row(t);
        let mut acc = 0.0f32;
        for i in 0..self.k {
            let mut wi = 0.0f32;
            for j in 0..self.k {
                wi += rel.w.get(i, j) * zt[j];
            }
            acc += zh[i] * wi;
        }
        acc
    }

    /// Sample a relation with no structural constraint (general asymmetric).
    pub fn general_relation(&self, rng: &mut SeededRng) -> LatentRelation {
        let mut w = Mat::zeros(self.k, self.k);
        rng.fill_normal(1.0, w.as_mut_slice());
        LatentRelation { w }
    }

    /// Sample a symmetric relation: `W = (A + Aᵀ)/2`.
    pub fn symmetric_relation(&self, rng: &mut SeededRng) -> LatentRelation {
        let a = self.general_relation(rng).w;
        let mut w = Mat::zeros(self.k, self.k);
        for i in 0..self.k {
            for j in 0..self.k {
                w.set(i, j, 0.5 * (a.get(i, j) + a.get(j, i)));
            }
        }
        LatentRelation { w }
    }

    /// Sample an anti-symmetric relation: `W = (A - Aᵀ)/2`, so
    /// `score(h, t) = -score(t, h)` exactly.
    pub fn anti_symmetric_relation(&self, rng: &mut SeededRng) -> LatentRelation {
        let a = self.general_relation(rng).w;
        let mut w = Mat::zeros(self.k, self.k);
        for i in 0..self.k {
            for j in 0..self.k {
                w.set(i, j, 0.5 * (a.get(i, j) - a.get(j, i)));
            }
        }
        LatentRelation { w }
    }

    /// The inverse of an existing relation: `W' = Wᵀ`, so
    /// `score'(h, t) = score(t, h)`.
    pub fn inverse_of(&self, rel: &LatentRelation) -> LatentRelation {
        LatentRelation { w: rel.w.transposed() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> (LatentWorld, SeededRng) {
        let mut rng = SeededRng::new(99);
        let w = LatentWorld::generate(50, 6, 4, &mut rng);
        (w, rng)
    }

    #[test]
    fn symmetric_relation_scores_symmetrically() {
        let (w, mut rng) = world();
        let r = w.symmetric_relation(&mut rng);
        for (h, t) in [(0, 1), (5, 9), (20, 49)] {
            let a = w.score(h, &r, t);
            let b = w.score(t, &r, h);
            assert!((a - b).abs() < 1e-5, "score({h},{t})={a} vs score({t},{h})={b}");
        }
    }

    #[test]
    fn anti_symmetric_relation_flips_sign() {
        let (w, mut rng) = world();
        let r = w.anti_symmetric_relation(&mut rng);
        for (h, t) in [(0, 1), (5, 9), (20, 49)] {
            let a = w.score(h, &r, t);
            let b = w.score(t, &r, h);
            assert!((a + b).abs() < 1e-5);
        }
        // self-score is zero for skew matrices
        assert!(w.score(3, &r, 3).abs() < 1e-5);
    }

    #[test]
    fn inverse_relation_transposes_scores() {
        let (w, mut rng) = world();
        let r = w.general_relation(&mut rng);
        let ri = w.inverse_of(&r);
        for (h, t) in [(0, 1), (7, 31)] {
            assert!((w.score(h, &ri, t) - w.score(t, &r, h)).abs() < 1e-5);
        }
    }

    #[test]
    fn worlds_are_deterministic() {
        let mut r1 = SeededRng::new(5);
        let mut r2 = SeededRng::new(5);
        let a = LatentWorld::generate(10, 4, 2, &mut r1);
        let b = LatentWorld::generate(10, 4, 2, &mut r2);
        assert_eq!(a.latent(3), b.latent(3));
    }

    #[test]
    fn general_relation_is_usually_asymmetric() {
        let (w, mut rng) = world();
        let r = w.general_relation(&mut rng);
        let a = w.score(0, &r, 1);
        let b = w.score(1, &r, 0);
        assert!((a - b).abs() > 1e-6, "a general latent relation should not be symmetric");
    }
}

//! Property-based tests for the generators: whatever the seed and size,
//! the pattern guarantees the presets rely on must hold.

use kg_core::fxhash::FxHashSet;
use kg_core::reltype::{RelationKind, RelationProfile};
use kg_core::Triple;
use kg_datagen::{patterns, LatentWorld};
use kg_linalg::SeededRng;
use proptest::prelude::*;

const N_ENT: usize = 80;

fn world(seed: u64) -> (LatentWorld, SeededRng) {
    let mut rng = SeededRng::new(seed);
    let w = LatentWorld::generate(N_ENT, 6, 4, &mut rng);
    (w, rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Anti-symmetric generators never emit both directions of a pair.
    #[test]
    fn anti_symmetric_never_reversed(seed in 0u64..5000, n in 30usize..120) {
        let (w, mut rng) = world(seed);
        let rel = w.anti_symmetric_relation(&mut rng);
        let ts = patterns::anti_symmetric(&w, &rel, 0, n, 0..N_ENT, &mut rng);
        let set: FxHashSet<Triple> = ts.iter().copied().collect();
        for t in &ts {
            prop_assert!(!set.contains(&t.reversed()), "both directions of {t}");
        }
    }

    /// Fully-complete symmetric generators classify symmetric.
    #[test]
    fn symmetric_classifies_symmetric(seed in 0u64..5000, n in 30usize..100) {
        let (w, mut rng) = world(seed);
        let rel = w.symmetric_relation(&mut rng);
        let ts = patterns::symmetric(&w, &rel, 0, n, 0..N_ENT, 1.0, &mut rng);
        let p = RelationProfile::classify(&ts, 1);
        prop_assert_eq!(p.kind(kg_core::RelationId(0)), RelationKind::Symmetric);
    }

    /// Bipartite general relations respect their pools and never classify
    /// symmetric or anti-symmetric.
    #[test]
    fn general_respects_pools(seed in 0u64..5000, n in 40usize..120) {
        let (w, mut rng) = world(seed);
        let rel = w.general_relation(&mut rng);
        let ts = patterns::general(&w, &rel, 0, n, 0..40, 40..N_ENT, &mut rng);
        prop_assert!(!ts.is_empty());
        for t in &ts {
            prop_assert!((t.h.0 as usize) < 40 && (t.t.0 as usize) >= 40);
        }
        let p = RelationProfile::classify(&ts, 1);
        let k = p.kind(kg_core::RelationId(0));
        prop_assert!(k == RelationKind::General, "classified {k:?}");
    }

    /// Full-fidelity mirrors always classify as an inverse pair with the
    /// base keeping its class.
    #[test]
    fn mirror_classifies_inverse(seed in 0u64..5000) {
        let (w, mut rng) = world(seed);
        let rel = w.general_relation(&mut rng);
        let base = patterns::general(&w, &rel, 0, 80, 0..40, 40..N_ENT, &mut rng);
        prop_assume!(base.len() >= 20);
        let mirror = patterns::inverse_of(&base, 1, 1.0, &mut rng);
        let mut all = base;
        all.extend(mirror);
        let p = RelationProfile::classify(&all, 2);
        prop_assert_eq!(p.kind(kg_core::RelationId(1)), RelationKind::Inverse);
        prop_assert_eq!(p.partner(kg_core::RelationId(1)), Some(kg_core::RelationId(0)));
    }

    /// No generator emits self-loops or duplicate triples.
    #[test]
    fn no_loops_no_duplicates(seed in 0u64..5000) {
        let (w, mut rng) = world(seed);
        let rel = w.general_relation(&mut rng);
        let ts = patterns::general(&w, &rel, 0, 100, 0..N_ENT, 0..N_ENT, &mut rng);
        let set: FxHashSet<Triple> = ts.iter().copied().collect();
        prop_assert_eq!(set.len(), ts.len());
        prop_assert!(ts.iter().all(|t| !t.is_loop()));
    }
}

//! Triplet classification (Sec. V-C / Tab. VI).
//!
//! Decide whether a given `(h, r, t)` holds: positive iff its score exceeds
//! the relation-specific threshold `σ_r`, tuned to maximise validation
//! accuracy. The benchmark datasets ship fixed negative triples; our
//! generated datasets don't, so [`make_negatives`] corrupts one side of
//! each positive and rejects corruptions that hit known positives — the
//! construction the original task (Socher et al.) used.

use kg_core::{FilterIndex, Triple};
use kg_linalg::SeededRng;
use kg_models::LinkPredictor;
use serde::{Deserialize, Serialize};

/// Per-relation decision thresholds with a global fallback.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Thresholds {
    per_relation: Vec<Option<f32>>,
    global: f32,
}

impl Thresholds {
    /// The threshold used for relation `r`.
    pub fn for_relation(&self, r: usize) -> f32 {
        self.per_relation.get(r).copied().flatten().unwrap_or(self.global)
    }
}

/// Generate one negative per positive by corrupting head or tail, avoiding
/// known positives (filtered corruption).
pub fn make_negatives(
    positives: &[Triple],
    filter: &FilterIndex,
    n_entities: usize,
    rng: &mut SeededRng,
) -> Vec<Triple> {
    positives
        .iter()
        .map(|&tr| {
            for _ in 0..64 {
                let e = rng.below(n_entities) as u32;
                let neg = if rng.coin() {
                    Triple::new(e, tr.r.0, tr.t.0)
                } else {
                    Triple::new(tr.h.0, tr.r.0, e)
                };
                if !filter.known(neg.h, neg.r, neg.t) && !neg.is_loop() {
                    return neg;
                }
            }
            // pathological fallback: give up on filtering
            Triple::new(tr.t.0, tr.r.0, tr.h.0)
        })
        .collect()
}

/// Scores for a triple set under a model.
fn score_all(model: &dyn LinkPredictor, triples: &[Triple]) -> Vec<f32> {
    triples.iter().map(|t| model.score_triple(t.h.idx(), t.r.idx(), t.t.idx())).collect()
}

/// Find the threshold maximising accuracy over (score, label) pairs.
/// Returns the midpoint between the best-separating consecutive scores.
fn best_threshold(mut pairs: Vec<(f32, bool)>) -> f32 {
    assert!(!pairs.is_empty(), "cannot tune a threshold on no data");
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let total_pos: usize = pairs.iter().filter(|p| p.1).count();
    // Sweep: classify "≥ cut" as positive. Start below the minimum.
    let mut best_acc = total_pos; // everything predicted positive
    let mut best_cut = pairs[0].0 - 1.0;
    let mut pos_below = 0usize;
    let mut neg_below = 0usize;
    for i in 0..pairs.len() {
        if pairs[i].1 {
            pos_below += 1;
        } else {
            neg_below += 1;
        }
        // cut above pairs[i]
        let correct = neg_below + (total_pos - pos_below);
        if correct > best_acc {
            best_acc = correct;
            best_cut = if i + 1 < pairs.len() {
                (pairs[i].0 + pairs[i + 1].0) / 2.0
            } else {
                pairs[i].0 + 1.0
            };
        }
    }
    best_cut
}

/// Tune per-relation thresholds on validation positives/negatives.
pub fn tune_thresholds(
    model: &dyn LinkPredictor,
    valid_pos: &[Triple],
    valid_neg: &[Triple],
    n_relations: usize,
) -> Thresholds {
    let pos_scores = score_all(model, valid_pos);
    let neg_scores = score_all(model, valid_neg);
    let mut by_rel: Vec<Vec<(f32, bool)>> = vec![Vec::new(); n_relations];
    let mut all: Vec<(f32, bool)> = Vec::with_capacity(pos_scores.len() + neg_scores.len());
    for (t, &s) in valid_pos.iter().zip(&pos_scores) {
        by_rel[t.r.idx()].push((s, true));
        all.push((s, true));
    }
    for (t, &s) in valid_neg.iter().zip(&neg_scores) {
        by_rel[t.r.idx()].push((s, false));
        all.push((s, false));
    }
    let global = if all.is_empty() { 0.0 } else { best_threshold(all) };
    let per_relation = by_rel
        .into_iter()
        .map(|pairs| {
            // need both classes to tune meaningfully
            let has_pos = pairs.iter().any(|p| p.1);
            let has_neg = pairs.iter().any(|p| !p.1);
            if has_pos && has_neg {
                Some(best_threshold(pairs))
            } else {
                None
            }
        })
        .collect();
    Thresholds { per_relation, global }
}

/// Classification accuracy on test positives/negatives under thresholds.
pub fn accuracy(
    model: &dyn LinkPredictor,
    test_pos: &[Triple],
    test_neg: &[Triple],
    thresholds: &Thresholds,
) -> f64 {
    let mut correct = 0usize;
    let mut total = 0usize;
    for t in test_pos {
        let s = model.score_triple(t.h.idx(), t.r.idx(), t.t.idx());
        if s >= thresholds.for_relation(t.r.idx()) {
            correct += 1;
        }
        total += 1;
    }
    for t in test_neg {
        let s = model.score_triple(t.h.idx(), t.r.idx(), t.t.idx());
        if s < thresholds.for_relation(t.r.idx()) {
            correct += 1;
        }
        total += 1;
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Model that scores a triple by whether it's in a golden set.
    struct Golden {
        set: std::collections::HashSet<(usize, usize, usize)>,
        n: usize,
    }

    impl LinkPredictor for Golden {
        fn n_entities(&self) -> usize {
            self.n
        }
        fn score_triple(&self, h: usize, r: usize, t: usize) -> f32 {
            if self.set.contains(&(h, r, t)) {
                1.0
            } else {
                -1.0
            }
        }
        fn score_tails(&self, h: usize, r: usize, out: &mut [f32]) {
            for (e, o) in out.iter_mut().enumerate() {
                *o = self.score_triple(h, r, e);
            }
        }
        fn score_heads(&self, r: usize, t: usize, out: &mut [f32]) {
            for (e, o) in out.iter_mut().enumerate() {
                *o = self.score_triple(e, r, t);
            }
        }
    }

    fn golden(pos: &[Triple]) -> Golden {
        Golden { set: pos.iter().map(|t| (t.h.idx(), t.r.idx(), t.t.idx())).collect(), n: 20 }
    }

    #[test]
    fn perfect_model_achieves_perfect_accuracy() {
        let pos: Vec<Triple> = (0..10).map(|i| Triple::new(i, i % 2, (i + 1) % 20)).collect();
        let m = golden(&pos);
        let mut rng = SeededRng::new(1);
        let filter = FilterIndex::build(&pos);
        let neg = make_negatives(&pos, &filter, 20, &mut rng);
        let th = tune_thresholds(&m, &pos, &neg, 2);
        assert_eq!(accuracy(&m, &pos, &neg, &th), 1.0);
    }

    #[test]
    fn negatives_avoid_known_positives() {
        let pos: Vec<Triple> = (0..15).map(|i| Triple::new(i, 0, (i + 1) % 16)).collect();
        let filter = FilterIndex::build(&pos);
        let mut rng = SeededRng::new(2);
        let neg = make_negatives(&pos, &filter, 16, &mut rng);
        assert_eq!(neg.len(), pos.len());
        for n in &neg {
            assert!(!filter.known(n.h, n.r, n.t), "negative {n} is a known positive");
        }
    }

    #[test]
    fn per_relation_thresholds_beat_global_when_scales_differ() {
        // relation 0 separates at 0; relation 1 separates at 10 — one global
        // threshold cannot satisfy both.
        struct TwoScales;
        impl LinkPredictor for TwoScales {
            fn n_entities(&self) -> usize {
                8
            }
            fn score_triple(&self, h: usize, r: usize, _t: usize) -> f32 {
                // heads 0..4 are "positive-looking"
                let base = if h < 4 { 1.0 } else { -1.0 };
                if r == 0 {
                    base
                } else {
                    10.0 + base
                }
            }
            fn score_tails(&self, h: usize, r: usize, out: &mut [f32]) {
                for (e, o) in out.iter_mut().enumerate() {
                    let _ = e;
                    *o = self.score_triple(h, r, 0);
                }
            }
            fn score_heads(&self, r: usize, t: usize, out: &mut [f32]) {
                for (e, o) in out.iter_mut().enumerate() {
                    *o = self.score_triple(e, r, t);
                }
            }
        }
        let pos: Vec<Triple> =
            (0..4).flat_map(|h| [Triple::new(h, 0, 5), Triple::new(h, 1, 5)]).collect();
        let neg: Vec<Triple> =
            (4..8).flat_map(|h| [Triple::new(h, 0, 5), Triple::new(h, 1, 5)]).collect();
        let th = tune_thresholds(&TwoScales, &pos, &neg, 2);
        assert_eq!(accuracy(&TwoScales, &pos, &neg, &th), 1.0);
        assert!(th.for_relation(0) < 5.0);
        assert!(th.for_relation(1) > 5.0);
    }

    #[test]
    fn unseen_relation_uses_global_threshold() {
        let pos = vec![Triple::new(0, 0, 1)];
        let neg = vec![Triple::new(2, 0, 3)];
        let m = golden(&pos);
        let th = tune_thresholds(&m, &pos, &neg, 5);
        // relation 4 never observed → global fallback
        assert_eq!(th.for_relation(4), th.global);
    }

    #[test]
    fn threshold_sweep_handles_all_negative_best() {
        // scores: positives low, negatives high → best is to flip... the
        // sweep can only pick "≥ cut = positive", so best accuracy puts the
        // cut above everything (all predicted negative) or below; verify no
        // panic and a sane threshold.
        let pairs = vec![(0.0f32, true), (1.0, false), (2.0, false)];
        let cut = best_threshold(pairs);
        assert!(cut.is_finite());
    }

    #[test]
    fn empty_test_set_gives_zero() {
        let pos = vec![Triple::new(0, 0, 1)];
        let m = golden(&pos);
        let th = tune_thresholds(&m, &pos, &[Triple::new(1, 0, 0)], 1);
        assert_eq!(accuracy(&m, &[], &[], &th), 0.0);
    }
}

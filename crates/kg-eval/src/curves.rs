//! Learning-curve capture (Fig. 4: test MRR vs wall-clock; Fig. 6-9:
//! best-so-far MRR vs models trained).

use serde::{Deserialize, Serialize};

/// One measurement on a curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// X-axis: wall-clock seconds (Fig. 4) or models trained (Fig. 6-9).
    pub x: f64,
    /// Y-axis: the tracked metric (MRR in all the paper's figures).
    pub y: f64,
}

/// A labelled series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Curve {
    /// Legend label, e.g. "AutoSF" or "DistMult".
    pub label: String,
    /// Measurements in x order.
    pub points: Vec<CurvePoint>,
}

impl Curve {
    /// New empty curve.
    pub fn new(label: impl Into<String>) -> Self {
        Curve { label: label.into(), points: Vec::new() }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push(CurvePoint { x, y });
    }

    /// Convert to a running best (monotone non-decreasing y) — the
    /// "best MRR so far" presentation of Fig. 6-9.
    pub fn running_best(&self) -> Curve {
        let mut best = f64::NEG_INFINITY;
        let mut out = Curve::new(self.label.clone());
        for p in &self.points {
            best = best.max(p.y);
            out.push(p.x, best);
        }
        out
    }

    /// Final y value (0.0 when empty).
    pub fn final_y(&self) -> f64 {
        self.points.last().map(|p| p.y).unwrap_or(0.0)
    }

    /// Render as a gnuplot-ready two-column block with a `# label` header.
    pub fn to_text(&self) -> String {
        let mut s = format!("# {}\n", self.label);
        for p in &self.points {
            s.push_str(&format!("{:.4}\t{:.5}\n", p.x, p.y));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_best_is_monotone() {
        let mut c = Curve::new("x");
        for (x, y) in [(0.0, 0.3), (1.0, 0.2), (2.0, 0.5), (3.0, 0.4)] {
            c.push(x, y);
        }
        let rb = c.running_best();
        let ys: Vec<f64> = rb.points.iter().map(|p| p.y).collect();
        assert_eq!(ys, vec![0.3, 0.3, 0.5, 0.5]);
        assert_eq!(rb.final_y(), 0.5);
    }

    #[test]
    fn text_rendering() {
        let mut c = Curve::new("test");
        c.push(1.0, 0.5);
        let t = c.to_text();
        assert!(t.starts_with("# test\n"));
        assert!(t.contains("1.0000\t0.50000"));
    }

    #[test]
    fn empty_curve_final_is_zero() {
        assert_eq!(Curve::new("e").final_y(), 0.0);
    }
}

//! The shared shard/block scoring engine.
//!
//! Both consumers of the batched scoring seam — offline filtered ranking
//! ([`crate::ranking`]) and the online serving facade (`kg-serve`) — do the
//! same thing at their core: take a block of `(entity, relation)` queries,
//! split the work across a crew of workers, and dispatch each worker's
//! slice through [`kg_models::BatchScorer`]. This module owns that shared
//! logic so the two stay one engine:
//!
//! * [`BLOCK`] — the common query-block size (64 rows per GEMM);
//! * [`shard_bounds`] — even entity-shard cut points;
//! * [`WorkerShard`] — one worker's slice of a block (a contiguous entity
//!   range, or an even slice of the query rows);
//! * [`plan_shards`] — the entity-vs-query split decision, driven by
//!   [`kg_models::BatchScorer::native_shard_scoring`];
//! * [`score_block_shard`] — the dispatch from a worker's shard to the
//!   right `BatchScorer` entry point;
//! * [`PipelineSlots`] — the double-buffered per-block exchange state
//!   (published target thresholds, per-worker count slots) behind the
//!   pipelined cooperative ranker: two parity lanes ping-pong so the crew
//!   scores step `N+1` while the lead worker still converts step `N`'s
//!   merged counts to ranks.
//!
//! Everything here preserves the engine's **bit-identity contract**: shard
//! scores are bit-identical column (or row) slices of the full-table
//! per-query output, and per-shard rank counts are integers whose merge is
//! associative, so how a block is split across workers — or which pipeline
//! stage it is in — never shows in the results.

use kg_models::{BatchScorer, BatchScratch};
use std::ops::Range;
use std::sync::atomic::{AtomicI64, AtomicU32, Ordering::Relaxed};

/// Queries scored per block — one GEMM against the entity table per
/// direction: small enough that a block's score rows stay cache-resident
/// for the ranking sweep, large enough to amortise each streaming pass over
/// the entity table across many queries. Shared by offline ranking
/// (`EVAL_BLOCK`) and the `kg-serve` batching queue's default block size.
pub const BLOCK: usize = 64;

/// Which direction a query block scores: tail queries `(h, r, ·)` or head
/// queries `(·, r, t)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Score every entity as a tail completion of `(head, relation)`.
    Tails,
    /// Score every entity as a head completion of `(relation, tail)`.
    Heads,
}

impl Direction {
    /// The other scoring direction — tail queries pair with head queries in
    /// the serving dispatcher's dual-direction draining.
    pub fn opposite(self) -> Direction {
        match self {
            Direction::Tails => Direction::Heads,
            Direction::Heads => Direction::Tails,
        }
    }
}

/// Even entity-shard boundaries for `n_shards` workers over an
/// `n_entities`-row table: `n_shards + 1` non-decreasing cut points with
/// `bounds[w] = ⌊w · n / s⌋`, so shard widths differ by at most one row and
/// the final shard absorbs the raggedness.
pub fn shard_bounds(n_entities: usize, n_shards: usize) -> Vec<usize> {
    assert!(n_shards > 0, "need at least one shard");
    (0..=n_shards).map(|w| w * n_entities / n_shards).collect()
}

/// One worker's slice of the cooperative engine's work on a query block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerShard {
    /// A contiguous entity row range: the worker scores *every* query of
    /// the block against its shard of the table (row-restricted GEMM for
    /// factorising models) and owns the corresponding score columns.
    Entities(Range<usize>),
    /// Worker `worker` of `n_workers` owns an even slice of the block's
    /// *query rows*, scored full-width. Chosen for models whose shard
    /// scoring stages full-table rows anyway
    /// (`!`[`BatchScorer::native_shard_scoring`]): splitting entities would
    /// cost every worker a full scoring pass, splitting queries costs
    /// exactly one pass in total.
    Queries {
        /// This worker's index in `0..n_workers`.
        worker: usize,
        /// Total workers splitting the block's query rows.
        n_workers: usize,
    },
}

impl WorkerShard {
    /// The query rows of a `block_len`-row block this worker scores: every
    /// row for an entity shard, an even contiguous slice for a query shard.
    pub fn rows(&self, block_len: usize) -> Range<usize> {
        match self {
            WorkerShard::Entities(_) => 0..block_len,
            WorkerShard::Queries { worker, n_workers } => {
                worker * block_len / n_workers..(worker + 1) * block_len / n_workers
            }
        }
    }

    /// Width of this worker's score rows: the shard width for an entity
    /// shard, the full table for a query shard.
    pub fn width(&self, n_entities: usize) -> usize {
        match self {
            WorkerShard::Entities(range) => range.len(),
            WorkerShard::Queries { .. } => n_entities,
        }
    }
}

/// Split one query block's work across `n_workers` workers, the way the
/// parallel ranking engine does: models with native shard scoring get the
/// entity table cut into even contiguous shards (at most one per entity,
/// at least one), everything else gets the block's query rows split evenly
/// (workers beyond the row count receive empty slices).
///
/// Summing any worker's output back together is bit-identical to a single
/// full-table pass, whatever the split — the [`BatchScorer`] shard
/// contract.
pub fn plan_shards(model: &dyn BatchScorer, n_workers: usize) -> Vec<WorkerShard> {
    assert!(n_workers > 0, "need at least one worker");
    if model.native_shard_scoring() {
        entity_shard_grid(model.n_entities(), n_workers.min(model.n_entities()).max(1))
    } else {
        (0..n_workers).map(|worker| WorkerShard::Queries { worker, n_workers }).collect()
    }
}

/// A fixed entity-shard grid: `n_shards` contiguous [`WorkerShard::Entities`]
/// ranges partitioning `0..n_entities` via [`shard_bounds`].
///
/// The shared planner behind both cooperative engines. Ranking
/// ([`plan_shards`]) sizes the grid to the crew (one shard per worker);
/// the training crew decouples the two — a *fixed* grid whose shards are
/// dealt round-robin to however many workers exist, so per-shard gradient
/// partials (and their fixed ascending-order merge) are identical for any
/// thread count.
pub fn entity_shard_grid(n_entities: usize, n_shards: usize) -> Vec<WorkerShard> {
    shard_bounds(n_entities, n_shards)
        .windows(2)
        .map(|w| WorkerShard::Entities(w[0]..w[1]))
        .collect()
}

/// Partition a crew of `n_workers` into two sub-crews and plan each one's
/// shards independently — the layout behind dual-direction draining in the
/// serving dispatcher: when both tail and head queries are queued, sub-crew
/// A (the first `n_workers / 2` workers) scores one direction's block while
/// sub-crew B (the rest — the larger half when `n_workers` is odd) scores
/// the other, so one direction running dry never idles half the engine.
///
/// Each returned plan is a complete [`plan_shards`] layout over the *whole*
/// entity table (or all query rows) for its sub-crew's thread count: a
/// sub-crew scores its block exactly as a full crew of that size would, so
/// every shard slice keeps the engine's bit-identity contract and a
/// sub-crew's stitched block equals the full-crew stitched block byte for
/// byte. Worker indices inside each plan are sub-crew-local; the caller
/// maps them onto its global crew.
///
/// # Panics
/// Panics if `n_workers < 2` — a one-worker crew has nothing to split.
pub fn split_plan(
    model: &dyn BatchScorer,
    n_workers: usize,
) -> (Vec<WorkerShard>, Vec<WorkerShard>) {
    assert!(n_workers >= 2, "splitting a crew needs at least two workers");
    let half = n_workers / 2;
    (plan_shards(model, half), plan_shards(model, n_workers - half))
}

/// One parity lane of [`PipelineSlots`]: the shared per-row exchange state
/// for a single in-flight pipeline step (one block × direction).
struct LaneSlots {
    /// Each query row's target score as `f32` bits, published by the entity
    /// shard that owns the target (query-split workers read their own rows
    /// directly and never touch these).
    thresholds: Vec<AtomicU32>,
    /// Per-worker `greater` counts, laid out `worker * BLOCK + row` so a
    /// worker's 2·[`BLOCK`] slots are contiguous — one plain store per row
    /// instead of a contended per-row `fetch_add`.
    better: Vec<AtomicI64>,
    /// Per-worker `equal` counts, same layout as `better`.
    ties: Vec<AtomicI64>,
}

/// Double-buffered shared state of the pipelined cooperative ranking
/// engine: **two parity lanes** of per-row target thresholds and
/// *per-worker* `(greater, equal)` count slots.
///
/// The engine runs one step per (block, direction) pair and assigns step
/// `s` the lane `s % 2`. Per step each worker scores its shard, publishes
/// the target thresholds it owns into the step's lane, crosses **one**
/// barrier, and writes its shard's counts into its own slots of the same
/// lane; the lead worker then converts the *previous* step's lane (parity
/// `1 - s % 2`) into ranks while the rest of the crew is already scoring
/// the next step — no worker ever waits on rank conversion.
///
/// All cells use `Relaxed` atomics: the engine's barrier is the only
/// synchronisation. The ping-pong is safe because a lane written at step
/// `s` is read by the lead strictly between the barriers of steps `s + 1`
/// and `s + 2`, and rewritten only after the barrier of step `s + 2` —
/// which the lead reaches only after finishing the read. Counts are
/// integers and their merge is a plain sum over worker slots, so the rank
/// of every row is bit-identical to the sequential reference no matter how
/// the pipeline stages interleave.
pub struct PipelineSlots {
    n_workers: usize,
    lanes: [LaneSlots; 2],
}

impl PipelineSlots {
    /// Allocate both lanes for an `n_workers`-strong crew. All slots start
    /// zeroed; every row a step reads is written during that same step.
    pub fn new(n_workers: usize) -> Self {
        assert!(n_workers > 0, "need at least one worker");
        let lane = || LaneSlots {
            thresholds: (0..BLOCK).map(|_| AtomicU32::new(0)).collect(),
            better: (0..n_workers * BLOCK).map(|_| AtomicI64::new(0)).collect(),
            ties: (0..n_workers * BLOCK).map(|_| AtomicI64::new(0)).collect(),
        };
        PipelineSlots { n_workers, lanes: [lane(), lane()] }
    }

    /// Publish query `row`'s target score (as `f32` bits) into `parity`'s
    /// lane — called during the scoring phase by the entity shard that owns
    /// the target.
    pub fn publish_threshold(&self, parity: usize, row: usize, bits: u32) {
        self.lanes[parity].thresholds[row].store(bits, Relaxed);
    }

    /// Read query `row`'s published target score from `parity`'s lane —
    /// valid after the step's barrier.
    pub fn threshold(&self, parity: usize, row: usize) -> f32 {
        f32::from_bits(self.lanes[parity].thresholds[row].load(Relaxed))
    }

    /// Store `worker`'s `(greater, equal)` contribution for query `row`
    /// into `parity`'s lane. Plain stores into worker-owned slots — the
    /// single-merge replacement for the old per-row `fetch_add`s.
    pub fn store_counts(&self, parity: usize, worker: usize, row: usize, better: i64, ties: i64) {
        let lane = &self.lanes[parity];
        lane.better[worker * BLOCK + row].store(better, Relaxed);
        lane.ties[worker * BLOCK + row].store(ties, Relaxed);
    }

    /// Sum every worker's `(greater, equal)` contribution for query `row`
    /// in `parity`'s lane — the lead worker's merge, valid from the barrier
    /// *after* the step that wrote the lane until the barrier of the step
    /// that rewrites it.
    pub fn merged_counts(&self, parity: usize, row: usize) -> (i64, i64) {
        let lane = &self.lanes[parity];
        let mut counts = (0i64, 0i64);
        for w in 0..self.n_workers {
            counts.0 += lane.better[w * BLOCK + row].load(Relaxed);
            counts.1 += lane.ties[w * BLOCK + row].load(Relaxed);
        }
        counts
    }
}

/// Dispatch one worker's slice of a query block to the matching
/// [`BatchScorer`] entry point: the row-restricted shard call for an entity
/// shard, the full-width batch call for a query shard. `queries` must
/// already be this worker's rows (`shard.rows(block_len)` of the block) and
/// `out` must hold `queries.len() * shard.width(n_entities)` elements —
/// empty output is a no-op, so zero-width shards and empty row slices are
/// legal.
pub fn score_block_shard(
    model: &dyn BatchScorer,
    dir: Direction,
    queries: &[(usize, usize)],
    shard: &WorkerShard,
    out: &mut [f32],
    scratch: &mut BatchScratch,
) {
    if out.is_empty() {
        return;
    }
    match (shard, dir) {
        (WorkerShard::Entities(range), Direction::Tails) => {
            model.score_tails_shard(queries, range.clone(), out, scratch);
        }
        (WorkerShard::Entities(range), Direction::Heads) => {
            model.score_heads_shard(queries, range.clone(), out, scratch);
        }
        (WorkerShard::Queries { .. }, Direction::Tails) => {
            model.score_tails_batch(queries, out, scratch);
        }
        (WorkerShard::Queries { .. }, Direction::Heads) => {
            model.score_heads_batch(queries, out, scratch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_models::LinkPredictor;

    struct Ramp {
        n: usize,
        native: bool,
    }

    impl LinkPredictor for Ramp {
        fn n_entities(&self) -> usize {
            self.n
        }
        fn score_triple(&self, h: usize, _r: usize, t: usize) -> f32 {
            (h * self.n + t) as f32
        }
        fn score_tails(&self, h: usize, r: usize, out: &mut [f32]) {
            for (e, o) in out.iter_mut().enumerate() {
                *o = self.score_triple(h, r, e);
            }
        }
        fn score_heads(&self, r: usize, t: usize, out: &mut [f32]) {
            for (e, o) in out.iter_mut().enumerate() {
                *o = self.score_triple(e, r, t);
            }
        }
    }

    impl BatchScorer for Ramp {
        fn native_shard_scoring(&self) -> bool {
            self.native
        }
    }

    #[test]
    fn plan_matches_capability_flag() {
        let native = Ramp { n: 10, native: true };
        let plan = plan_shards(&native, 3);
        assert_eq!(
            plan,
            vec![
                WorkerShard::Entities(0..3),
                WorkerShard::Entities(3..6),
                WorkerShard::Entities(6..10)
            ]
        );
        // More workers than entities: capped at one single-entity shard each.
        assert_eq!(plan_shards(&native, 64).len(), 10);

        let staged = Ramp { n: 10, native: false };
        let plan = plan_shards(&staged, 3);
        assert_eq!(plan.len(), 3);
        assert!(matches!(plan[2], WorkerShard::Queries { worker: 2, n_workers: 3 }));
    }

    #[test]
    fn split_plan_gives_two_complete_sub_crew_layouts() {
        let native = Ramp { n: 10, native: true };
        for n_workers in [2usize, 3, 5, 8] {
            let (a, b) = split_plan(&native, n_workers);
            assert_eq!(a.len(), (n_workers / 2).min(native.n));
            assert_eq!(b.len(), (n_workers - n_workers / 2).min(native.n));
            // Each sub-plan partitions the whole table on its own.
            for plan in [&a, &b] {
                let mut next = 0;
                for shard in plan {
                    match shard {
                        WorkerShard::Entities(r) => {
                            assert_eq!(r.start, next);
                            next = r.end;
                        }
                        _ => unreachable!("native model plans entity shards"),
                    }
                }
                assert_eq!(next, native.n, "sub-plan must cover the full table");
            }
        }

        // Staged models: each sub-crew splits all query rows among itself.
        let staged = Ramp { n: 10, native: false };
        let (a, b) = split_plan(&staged, 5);
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 3);
        let mut covered = Vec::new();
        for shard in &b {
            covered.extend(shard.rows(7));
        }
        assert_eq!(covered, (0..7).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "at least two workers")]
    fn split_plan_rejects_single_worker_crews() {
        let _ = split_plan(&Ramp { n: 4, native: true }, 1);
    }

    #[test]
    fn rows_and_width_partition_the_block() {
        let entity = WorkerShard::Entities(4..9);
        assert_eq!(entity.rows(7), 0..7);
        assert_eq!(entity.width(20), 5);

        // Query shards partition the rows exactly, even when ragged.
        let n_workers = 3;
        let mut covered = Vec::new();
        for worker in 0..n_workers {
            let shard = WorkerShard::Queries { worker, n_workers };
            assert_eq!(shard.width(20), 20);
            covered.extend(shard.rows(7));
        }
        assert_eq!(covered, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn dispatch_reassembles_the_full_block_bit_for_bit() {
        let model = Ramp { n: 11, native: true };
        let queries = [(0usize, 0usize), (4, 0), (7, 0)];
        let mut reference = vec![0.0f32; queries.len() * model.n];
        let mut scratch = BatchScratch::new();
        model.score_tails_batch(&queries, &mut reference, &mut scratch);

        for dir in [Direction::Tails, Direction::Heads] {
            if dir == Direction::Heads {
                model.score_heads_batch(&queries, &mut reference, &mut scratch);
            }
            let mut stitched = vec![0.0f32; queries.len() * model.n];
            for shard in plan_shards(&model, 4) {
                let range = match &shard {
                    WorkerShard::Entities(r) => r.clone(),
                    _ => unreachable!("native model plans entity shards"),
                };
                let width = shard.width(model.n);
                let mut out = vec![0.0f32; queries.len() * width];
                score_block_shard(&model, dir, &queries, &shard, &mut out, &mut scratch);
                for q in 0..queries.len() {
                    stitched[q * model.n + range.start..q * model.n + range.end]
                        .copy_from_slice(&out[q * width..(q + 1) * width]);
                }
            }
            assert_eq!(stitched, reference, "{dir:?}");
        }
    }

    #[test]
    fn empty_out_is_a_no_op() {
        let model = Ramp { n: 5, native: true };
        let mut scratch = BatchScratch::new();
        let shard = WorkerShard::Entities(2..2);
        score_block_shard(&model, Direction::Tails, &[(0, 0)], &shard, &mut [], &mut scratch);
    }

    #[test]
    fn pipeline_slots_merge_per_worker_counts_and_keep_lanes_apart() {
        let slots = PipelineSlots::new(3);
        // Lane 0: three workers contribute to row 5; lane 1 stays untouched.
        slots.store_counts(0, 0, 5, 2, 1);
        slots.store_counts(0, 1, 5, 0, 4);
        slots.store_counts(0, 2, 5, 7, 0);
        assert_eq!(slots.merged_counts(0, 5), (9, 5));
        assert_eq!(slots.merged_counts(1, 5), (0, 0));
        // Overwriting a worker's slot replaces (not accumulates) its share.
        slots.store_counts(0, 2, 5, 1, 1);
        assert_eq!(slots.merged_counts(0, 5), (3, 6));
        // Thresholds round-trip exact bit patterns per lane.
        slots.publish_threshold(1, 0, (-0.0f32).to_bits());
        assert_eq!(slots.threshold(1, 0).to_bits(), (-0.0f32).to_bits());
        assert_eq!(slots.threshold(0, 0).to_bits(), 0.0f32.to_bits());
    }

    #[test]
    fn shard_bounds_partition_evenly() {
        for (n, s) in [(10, 3), (5, 8), (64, 64), (1, 1), (0, 4), (100, 7)] {
            let b = shard_bounds(n, s);
            assert_eq!(b.len(), s + 1);
            assert_eq!(b[0], 0);
            assert_eq!(*b.last().unwrap(), n);
            assert!(b.windows(2).all(|w| w[0] <= w[1]));
            let widths: Vec<usize> = b.windows(2).map(|w| w[1] - w[0]).collect();
            let (lo, hi) = (widths.iter().min().unwrap(), widths.iter().max().unwrap());
            assert!(hi - lo <= 1, "uneven split for n={n} s={s}: {widths:?}");
        }
    }
}

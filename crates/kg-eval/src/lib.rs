//! Evaluation substrate.
//!
//! * [`ranking`] — filtered link-prediction ranking (MRR, MR, Hits@k over
//!   head and tail queries), the protocol of Sec. V-B. Since the batched
//!   scoring engine, triples are ranked in blocks (one GEMM per block for
//!   factorising models) with bit-identical metrics to the per-query
//!   reference path ([`ranking::evaluate_sequential`]); parallel ranking
//!   shards the *entity table* across cooperating workers
//!   ([`ranking::evaluate_parallel_sharded`]) and stays bit-identical for
//!   any shard layout and thread count.
//! * [`classification`] — triplet classification with per-relation
//!   thresholds σ_r tuned on validation (Sec. V-C / Tab. VI).
//! * [`curves`] — learning-curve capture for Fig. 4 / Fig. 6-9.
//! * [`engine`] — the shared shard/block scoring engine: block size, shard
//!   planning and the per-shard `BatchScorer` dispatch, reused by both the
//!   offline rankers here and the online `kg-serve` facade.
//! * [`two_stage`] — million-entity-scale ranking through the quantised
//!   coarse tier (`kg-table`): score everything in i8, keep the top-C
//!   candidates, rescore them through the exact f32 kernels — with
//!   per-query certification of when the answer provably equals the
//!   reference bit for bit.

pub mod classification;
pub mod curves;
pub mod engine;
pub mod ranking;
pub mod two_stage;

pub use classification::{accuracy, make_negatives, tune_thresholds, Thresholds};
pub use curves::{Curve, CurvePoint};
pub use ranking::{
    evaluate, evaluate_parallel, evaluate_parallel_chunked, evaluate_parallel_sharded,
    evaluate_sequential, filtered_rank, shard_bounds, top_k, top_k_into, RankMetrics,
};
pub use two_stage::{
    evaluate_two_stage, fold_outcomes, quantise_scorer, two_stage_outcomes, two_stage_top_k_heads,
    two_stage_top_k_tails, QueryOutcome, TwoStageConfig, TwoStageMetrics, TwoStageTopK,
};

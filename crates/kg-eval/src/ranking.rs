//! Filtered link-prediction ranking (Sec. V-B).
//!
//! For each test triple `(h, r, t)` the model scores `(h, r, e)` for every
//! entity `e` and we compute the rank of `t` — and symmetrically the rank
//! of `h` over `(e, r, t)` — in the **filtered** setting: candidates that
//! form a *different* known positive are excluded from the count. Ties
//! count half (the unbiased convention), so constant scorers get the random
//! expectation instead of a free rank 1.

use kg_core::{FilterIndex, Triple};
use kg_models::LinkPredictor;
use serde::{Deserialize, Serialize};

/// Aggregate ranking metrics over a triple set (head + tail queries).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankMetrics {
    /// Mean reciprocal rank.
    pub mrr: f64,
    /// Mean rank.
    pub mr: f64,
    /// Fraction with rank ≤ 1.
    pub hits1: f64,
    /// Fraction with rank ≤ 3.
    pub hits3: f64,
    /// Fraction with rank ≤ 10.
    pub hits10: f64,
    /// Number of ranked queries (2 per triple).
    pub n_queries: usize,
}

impl RankMetrics {
    /// The all-zero metrics (identity for [`RankMetrics::merge`]).
    pub fn zero() -> Self {
        RankMetrics { mrr: 0.0, mr: 0.0, hits1: 0.0, hits3: 0.0, hits10: 0.0, n_queries: 0 }
    }

    fn accumulate(&mut self, rank: f64) {
        self.mrr += 1.0 / rank;
        self.mr += rank;
        if rank <= 1.0 {
            self.hits1 += 1.0;
        }
        if rank <= 3.0 {
            self.hits3 += 1.0;
        }
        if rank <= 10.0 {
            self.hits10 += 1.0;
        }
        self.n_queries += 1;
    }

    /// Merge partial sums (both sides must still be un-normalised).
    pub fn merge(mut self, other: RankMetrics) -> RankMetrics {
        self.mrr += other.mrr;
        self.mr += other.mr;
        self.hits1 += other.hits1;
        self.hits3 += other.hits3;
        self.hits10 += other.hits10;
        self.n_queries += other.n_queries;
        self
    }

    fn normalised(mut self) -> RankMetrics {
        let n = self.n_queries.max(1) as f64;
        self.mrr /= n;
        self.mr /= n;
        self.hits1 /= n;
        self.hits3 /= n;
        self.hits10 /= n;
        self
    }

    /// Render as a compact `MRR/H@1/H@10` cell.
    pub fn cell(&self) -> String {
        format!("{:.3}/{:.1}/{:.1}", self.mrr, self.hits1 * 100.0, self.hits10 * 100.0)
    }
}

/// Rank of the target given raw scores, filtered by `is_known_other`.
/// `rank = 1 + #better + #ties/2` over non-filtered candidates.
fn filtered_rank<F: Fn(usize) -> bool>(
    scores: &[f32],
    target: usize,
    is_known_other: F,
) -> f64 {
    let s_t = scores[target];
    let mut better = 0usize;
    let mut ties = 0usize;
    for (e, &s) in scores.iter().enumerate() {
        if e == target || is_known_other(e) {
            continue;
        }
        if s > s_t {
            better += 1;
        } else if s == s_t {
            ties += 1;
        }
    }
    1.0 + better as f64 + ties as f64 / 2.0
}

/// Evaluate sequentially over `triples`.
pub fn evaluate(model: &dyn LinkPredictor, triples: &[Triple], filter: &FilterIndex) -> RankMetrics {
    let mut metrics = RankMetrics::zero();
    let mut scores = vec![0.0f32; model.n_entities()];
    for tr in triples {
        rank_triple(model, *tr, filter, &mut scores, &mut metrics);
    }
    metrics.normalised()
}

fn rank_triple(
    model: &dyn LinkPredictor,
    tr: Triple,
    filter: &FilterIndex,
    scores: &mut [f32],
    metrics: &mut RankMetrics,
) {
    let (h, r, t) = (tr.h, tr.r, tr.t);
    // tail query
    model.score_tails(h.idx(), r.idx(), scores);
    let rank = filtered_rank(scores, t.idx(), |e| {
        filter.known(h, r, kg_core::EntityId(e as u32))
    });
    metrics.accumulate(rank);
    // head query
    model.score_heads(r.idx(), t.idx(), scores);
    let rank = filtered_rank(scores, h.idx(), |e| {
        filter.known(kg_core::EntityId(e as u32), r, t)
    });
    metrics.accumulate(rank);
}

/// Evaluate with a per-relation breakdown (used by case-study analysis à la
/// Sec. V-B2: which relation patterns a scoring function handles well).
/// Returns normalised metrics per relation id; relations with no test
/// triples get zeroed metrics.
pub fn evaluate_per_relation(
    model: &dyn LinkPredictor,
    triples: &[Triple],
    filter: &FilterIndex,
    n_relations: usize,
) -> Vec<RankMetrics> {
    let mut per: Vec<RankMetrics> = vec![RankMetrics::zero(); n_relations];
    let mut scores = vec![0.0f32; model.n_entities()];
    for tr in triples {
        rank_triple(model, *tr, filter, &mut scores, &mut per[tr.r.idx()]);
    }
    per.into_iter().map(|m| if m.n_queries > 0 { m.normalised() } else { m }).collect()
}

/// Evaluate with `n_threads` workers (the model is shared read-only).
pub fn evaluate_parallel<M: LinkPredictor + Sync>(
    model: &M,
    triples: &[Triple],
    filter: &FilterIndex,
    n_threads: usize,
) -> RankMetrics {
    assert!(n_threads > 0, "need at least one thread");
    if triples.is_empty() {
        return RankMetrics::zero();
    }
    let n_threads = n_threads.min(triples.len());
    let chunk = triples.len().div_ceil(n_threads);
    let partials = crossbeam::scope(|scope| {
        let mut handles = Vec::new();
        for part in triples.chunks(chunk) {
            handles.push(scope.spawn(move |_| {
                let mut metrics = RankMetrics::zero();
                let mut scores = vec![0.0f32; model.n_entities()];
                for tr in part {
                    rank_triple(model, *tr, filter, &mut scores, &mut metrics);
                }
                metrics
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("eval worker panicked"))
            .fold(RankMetrics::zero(), RankMetrics::merge)
    })
    .expect("crossbeam scope failed");
    partials.normalised()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An oracle that scores entity `t` highest for every `(h, r)` query by
    /// looking up a fixed mapping.
    struct Oracle {
        n: usize,
        target: usize,
    }

    impl LinkPredictor for Oracle {
        fn n_entities(&self) -> usize {
            self.n
        }
        fn score_triple(&self, _h: usize, _r: usize, t: usize) -> f32 {
            if t == self.target {
                1.0
            } else {
                0.0
            }
        }
        fn score_tails(&self, _h: usize, _r: usize, out: &mut [f32]) {
            for (e, o) in out.iter_mut().enumerate() {
                *o = if e == self.target { 1.0 } else { 0.0 };
            }
        }
        fn score_heads(&self, _r: usize, _t: usize, out: &mut [f32]) {
            for (e, o) in out.iter_mut().enumerate() {
                *o = if e == self.target { 1.0 } else { 0.0 };
            }
        }
    }

    #[test]
    fn perfect_tail_prediction_gets_rank_one() {
        let m = Oracle { n: 10, target: 3 };
        let triples = vec![Triple::new(0, 0, 3)];
        let filter = FilterIndex::build(&triples);
        let r = evaluate(&m, &triples, &filter);
        // tail query: rank 1. head query: the true head 0 scores 0, entity 3
        // scores 1 (1 better), the other 8 tie at 0 → rank = 1 + 1 + 8/2 = 6
        assert_eq!(r.n_queries, 2);
        assert!((r.mrr - (1.0 + 1.0 / 6.0) / 2.0).abs() < 1e-9, "mrr {}", r.mrr);
    }

    #[test]
    fn filtering_excludes_other_positives() {
        // entity 1 scores higher than true target 3, but (0,0,1) is a known
        // positive → filtered out → rank stays 1.
        struct TwoPeaks;
        impl LinkPredictor for TwoPeaks {
            fn n_entities(&self) -> usize {
                5
            }
            fn score_triple(&self, _: usize, _: usize, t: usize) -> f32 {
                [0.0, 2.0, 0.0, 1.0, 0.0][t]
            }
            fn score_tails(&self, _: usize, _: usize, out: &mut [f32]) {
                out.copy_from_slice(&[0.0, 2.0, 0.0, 1.0, 0.0]);
            }
            fn score_heads(&self, _: usize, _: usize, out: &mut [f32]) {
                out.copy_from_slice(&[0.0, 2.0, 0.0, 1.0, 0.0]);
            }
        }
        let known = vec![Triple::new(0, 0, 1), Triple::new(0, 0, 3)];
        let filter = FilterIndex::build(&known);
        let r = evaluate(&TwoPeaks, &[Triple::new(0, 0, 3)], &filter);
        // tail rank of 3: entity 1 filtered → rank 1
        // head rank of 0: head filtering only removes (e,0,3) positives, so
        // entities 1 (score 2) and 3 (score 1) rank above, {2,4} tie at 0
        // → rank = 1 + 2 + 2/2 = 4
        let expect = (1.0 + 1.0 / 4.0) / 2.0;
        assert!((r.mrr - expect).abs() < 1e-9, "mrr {} expect {expect}", r.mrr);
    }

    #[test]
    fn constant_scorer_gets_random_expectation() {
        struct Flat;
        impl LinkPredictor for Flat {
            fn n_entities(&self) -> usize {
                11
            }
            fn score_triple(&self, _: usize, _: usize, _: usize) -> f32 {
                0.5
            }
            fn score_tails(&self, _: usize, _: usize, out: &mut [f32]) {
                out.fill(0.5);
            }
            fn score_heads(&self, _: usize, _: usize, out: &mut [f32]) {
                out.fill(0.5);
            }
        }
        let triples = vec![Triple::new(0, 0, 1)];
        let filter = FilterIndex::build(&triples);
        let r = evaluate(&Flat, &triples, &filter);
        // 10 non-target candidates all tied → rank = 1 + 5 = 6 (the mean
        // rank of a uniformly random ordering over 11 entities)
        assert!((r.mr - 6.0).abs() < 1e-9, "mr {}", r.mr);
    }

    #[test]
    fn parallel_matches_sequential() {
        let m = Oracle { n: 20, target: 7 };
        let triples: Vec<Triple> = (0..12).map(|i| Triple::new(i, 0, 7)).collect();
        let filter = FilterIndex::build(&triples);
        let seq = evaluate(&m, &triples, &filter);
        for threads in [1, 2, 3, 7] {
            let par = evaluate_parallel(&m, &triples, &filter, threads);
            assert!((par.mrr - seq.mrr).abs() < 1e-12, "threads={threads}");
            assert_eq!(par.n_queries, seq.n_queries);
        }
    }

    #[test]
    fn empty_triples_are_safe() {
        let m = Oracle { n: 4, target: 0 };
        let filter = FilterIndex::default();
        let r = evaluate(&m, &[], &filter);
        assert_eq!(r.n_queries, 0);
        assert_eq!(r.mrr, 0.0);
        let rp = evaluate_parallel(&m, &[], &filter, 4);
        assert_eq!(rp.n_queries, 0);
    }

    #[test]
    fn per_relation_breakdown_partitions_queries() {
        let m = Oracle { n: 10, target: 3 };
        let triples =
            vec![Triple::new(0, 0, 3), Triple::new(1, 1, 3), Triple::new(2, 1, 3)];
        let filter = FilterIndex::build(&triples);
        let per = evaluate_per_relation(&m, &triples, &filter, 3);
        assert_eq!(per.len(), 3);
        assert_eq!(per[0].n_queries, 2);
        assert_eq!(per[1].n_queries, 4);
        assert_eq!(per[2].n_queries, 0);
        // aggregate matches the flat evaluation on per-query counts
        let total: usize = per.iter().map(|m| m.n_queries).sum();
        assert_eq!(total, evaluate(&m, &triples, &filter).n_queries);
    }

    #[test]
    fn metrics_cell_formats() {
        let mut m = RankMetrics::zero();
        m.accumulate(1.0);
        m.accumulate(2.0);
        let n = m.normalised();
        assert_eq!(n.n_queries, 2);
        assert!(n.cell().contains('/'));
        assert!((n.mrr - 0.75).abs() < 1e-9);
        assert!((n.hits1 - 0.5).abs() < 1e-9);
    }
}

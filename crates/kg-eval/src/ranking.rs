//! Filtered link-prediction ranking (Sec. V-B), batched.
//!
//! For each test triple `(h, r, t)` the model scores `(h, r, e)` for every
//! entity `e` and we compute the rank of `t` — and symmetrically the rank
//! of `h` over `(e, r, t)` — in the **filtered** setting: candidates that
//! form a *different* known positive are excluded from the count. Ties
//! count half (the unbiased convention), so constant scorers get the random
//! expectation instead of a free rank 1.
//!
//! Since the batched-scoring-engine refactor, triples are ranked in blocks:
//! one [`kg_models::BatchScorer`] call scores a whole block of queries
//! (one GEMM against the entity table for factorising models) and each
//! score row is then filtered-ranked. Metrics are accumulated in the
//! original per-triple order (tail query then head query, triple by
//! triple), and the block kernels are bit-identical per element to the
//! per-query kernels, so [`evaluate`] reproduces the sequential reference
//! [`evaluate_sequential`] **bit for bit** — the equivalence suite in
//! `tests/batch_equivalence.rs` pins this down for every shipped model.
//!
//! **Parallelism shards the entity table, not the triple list.** All of
//! [`evaluate_parallel`]'s workers cooperate on one block of queries: each
//! worker scores its contiguous entity shard (a disjoint column range of
//! the conceptual score block) through
//! [`kg_models::BatchScorer::score_tails_shard`], publishes the target
//! scores that fall in its shard, and counts its shard's
//! `(greater, equal)` contributions with the branchless
//! [`kg_linalg::vecops::count_cmp`] sweep — immediately after scoring,
//! while the shard block is still hot in its private cache — into its own
//! slots of the double-buffered [`engine::PipelineSlots`]. The steps
//! (block × direction) flow through a **two-lane pipeline**: one barrier
//! per step, after which the lead worker sums the *previous* step's
//! per-worker slots into ranks and folds metrics while the rest of the
//! crew is already scoring the next step. Integer counts over disjoint
//! shards are order-independent, so the merged ranks — and therefore the
//! metrics — are **bit-identical to [`evaluate_sequential`]** for *any*
//! shard layout, thread count and pipeline interleaving
//! (`tests/shard_equivalence.rs` pins this down). Models whose shard
//! scoring would stage full-table rows anyway (no
//! [`kg_models::BatchScorer::native_shard_scoring`]) get the block's
//! *query rows* split across the same engine instead — full parallelism
//! without redundant scoring, same bit-identity. The previous
//! triples-per-thread strategy survives as [`evaluate_parallel_chunked`],
//! the microbenchmark's comparison baseline.
//!
//! **Kernel policy.** Every evaluator has a `*_with` form taking an
//! explicit [`kg_models::KernelPolicy`] that workers carry into their
//! scoring scratch: `Exact` (the default) keeps every bit-identity claim
//! above; `Fast` opts the GEMM overrides into the relaxed-precision FMA
//! kernels, where scores — and therefore ranks near float-noise ties —
//! may differ from the sequential reference (bounded by the relaxed
//! equivalence suite in kg-linalg). The plain entry points resolve the
//! policy from the environment ([`KernelPolicy::default_from_env`]), so
//! existing callers keep exact semantics unless `KG_KERNEL_POLICY=fast`
//! is set process-wide.

use crate::engine::{self, Direction, WorkerShard};
use kg_core::{EntityId, FilterIndex, Triple};
use kg_linalg::vecops;
use kg_models::{BatchScorer, BatchScratch, KernelPolicy, LinkPredictor};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};
use std::sync::Barrier;

pub use crate::engine::shard_bounds;

/// Triples ranked per scoring block — each block issues two 64-row GEMMs
/// (tail queries, then head queries, reusing one `64 × n_entities` score
/// buffer). The size is the engine-wide [`engine::BLOCK`], shared with the
/// `kg-serve` batching queue.
const EVAL_BLOCK: usize = engine::BLOCK;

/// Aggregate ranking metrics over a triple set (head + tail queries).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankMetrics {
    /// Mean reciprocal rank.
    pub mrr: f64,
    /// Mean rank.
    pub mr: f64,
    /// Fraction with rank ≤ 1.
    pub hits1: f64,
    /// Fraction with rank ≤ 3.
    pub hits3: f64,
    /// Fraction with rank ≤ 10.
    pub hits10: f64,
    /// Number of ranked queries (2 per triple).
    pub n_queries: usize,
}

impl RankMetrics {
    /// The all-zero metrics (identity for [`RankMetrics::merge`]).
    pub fn zero() -> Self {
        RankMetrics { mrr: 0.0, mr: 0.0, hits1: 0.0, hits3: 0.0, hits10: 0.0, n_queries: 0 }
    }

    /// Fold one query's rank into the (un-normalised) partial sums. Every
    /// consumer — the offline evaluators here and callers folding
    /// `kg-serve` rank responses — must use this same fold so aggregate
    /// metrics stay bit-identical across surfaces.
    pub fn accumulate(&mut self, rank: f64) {
        self.mrr += 1.0 / rank;
        self.mr += rank;
        if rank <= 1.0 {
            self.hits1 += 1.0;
        }
        if rank <= 3.0 {
            self.hits3 += 1.0;
        }
        if rank <= 10.0 {
            self.hits10 += 1.0;
        }
        self.n_queries += 1;
    }

    /// Merge partial sums (both sides must still be un-normalised).
    pub fn merge(mut self, other: RankMetrics) -> RankMetrics {
        self.mrr += other.mrr;
        self.mr += other.mr;
        self.hits1 += other.hits1;
        self.hits3 += other.hits3;
        self.hits10 += other.hits10;
        self.n_queries += other.n_queries;
        self
    }

    /// Divide the partial sums by the query count (no-op on zero queries):
    /// the final step after [`RankMetrics::accumulate`]/[`RankMetrics::merge`].
    pub fn normalised(mut self) -> RankMetrics {
        let n = self.n_queries.max(1) as f64;
        self.mrr /= n;
        self.mr /= n;
        self.hits1 /= n;
        self.hits3 /= n;
        self.hits10 /= n;
        self
    }

    /// Render as a compact `MRR/H@1/H@10` cell.
    pub fn cell(&self) -> String {
        format!("{:.3}/{:.1}/{:.1}", self.mrr, self.hits1 * 100.0, self.hits10 * 100.0)
    }
}

/// One entity shard's contribution to a filtered rank: branchless
/// `(greater, equal)` counts of the shard-local score `row` (covering
/// entities `shard_start .. shard_start + row.len()`) against the target's
/// score, minus the contributions of candidates excluded by the filtered
/// protocol — the target itself and every other known positive — that fall
/// inside this shard.
///
/// The bulk sweep is [`vecops::count_cmp`]; exclusions are then subtracted,
/// which gives identical integer counts to filtering inside the sweep (the
/// completion list is duplicate-free) without a hash probe per entity. The
/// target's own self-tie is subtracted by the shard that contains it —
/// unless its score is NaN, which `count_cmp` never counted to begin with.
///
/// Counts are integers, so summing this function over any disjoint shard
/// partition of the entity table yields exactly the full-table counts: the
/// seam that makes sharded parallel ranking bit-identical to the
/// sequential reference.
fn shard_filtered_counts(
    row: &[f32],
    shard_start: usize,
    threshold: f32,
    target: usize,
    known_others: &[EntityId],
) -> (i64, i64) {
    let shard = shard_start..shard_start + row.len();
    let (gt, eq) = vecops::count_cmp(row, threshold);
    let mut better = gt as i64;
    let mut ties = eq as i64;
    if shard.contains(&target) && !threshold.is_nan() {
        ties -= 1;
    }
    for &e in known_others {
        let e = e.idx();
        if e == target || !shard.contains(&e) {
            continue;
        }
        let s = row[e - shard_start];
        if s > threshold {
            better -= 1;
        } else if s == threshold {
            ties -= 1;
        }
    }
    (better, ties)
}

/// `rank = 1 + #better + #ties/2` — ties count half (the unbiased
/// convention), so constant scorers get the random expectation. Shared
/// with the two-stage ranker ([`crate::two_stage`]), whose
/// candidate-restricted counts must fold into ranks with the exact same
/// arithmetic to stay bit-identical to this reference.
pub(crate) fn rank_from_counts(better: i64, ties: i64) -> f64 {
    1.0 + better as f64 + ties as f64 / 2.0
}

/// Rank of the target given raw scores in the filtered setting, over
/// candidates that are neither the target nor another known positive
/// (`known_others`, the filter index's completion list for this query — it
/// may include the target itself). The single-shard view of the engine's
/// `shard_filtered_counts`, `rank = 1 + #better + #ties/2` with ties
/// counting half (the unbiased convention).
///
/// This is the per-query primitive behind every ranking surface — the
/// offline evaluators here and `kg-serve`'s request-level `rank_tail` /
/// `rank_head` — so both produce bit-identical ranks from identical score
/// rows.
///
/// ```
/// let scores = [0.5, 2.0, 1.0, 0.25];
/// // target entity 2 is beaten by entity 1 only → rank 2; filtering 1 out
/// // as a known positive lifts the target to rank 1.
/// assert_eq!(kg_eval::ranking::filtered_rank(&scores, 2, &[]), 2.0);
/// assert_eq!(kg_eval::ranking::filtered_rank(&scores, 2, &[kg_core::EntityId(1)]), 1.0);
/// ```
///
/// # Panics
/// Panics — with an explicit message, before any indexing — if
/// `target >= scores.len()`; in particular an **empty score table** is
/// always rejected this way (there is no entity to rank, so no rank
/// exists), instead of surfacing as an unhelpful slice-index panic from
/// deep inside the count sweep.
pub fn filtered_rank(scores: &[f32], target: usize, known_others: &[EntityId]) -> f64 {
    assert!(
        target < scores.len(),
        "filtered_rank: target entity {target} out of range for a {}-entity score table",
        scores.len()
    );
    let (better, ties) = shard_filtered_counts(scores, 0, scores[target], target, known_others);
    rank_from_counts(better, ties)
}

/// The `k` best-scoring entities, deterministically ordered: score
/// descending, ties broken by entity id ascending, NaN scores ranking
/// strictly below every real score — `-∞` included — and tying only with
/// each other. Returns `(entity, score)` pairs; fewer than `k` only when
/// the table is smaller than `k`.
///
/// Shared by `kg-serve`'s `top_k_tails` / `top_k_heads` and offline
/// analysis, so the serving path's answers are bit-identical to what a
/// per-query caller would compute from a [`LinkPredictor`] score row with
/// this helper.
///
/// ```
/// let scores = [1.0, 3.0, 3.0, f32::NAN, 2.0];
/// // 3.0 ties broken by id; NaN sorts last.
/// assert_eq!(kg_eval::ranking::top_k(&scores, 3), vec![(1, 3.0), (2, 3.0), (4, 2.0)]);
/// assert_eq!(kg_eval::ranking::top_k(&scores, 0), vec![]);
/// ```
pub fn top_k(scores: &[f32], k: usize) -> Vec<(usize, f32)> {
    let mut entries = Vec::new();
    top_k_into(scores, k, &mut entries);
    entries
}

/// The deterministic [`top_k`] order: score descending, ties broken by
/// entity id ascending. NaN sorts strictly below every real score (`-∞`
/// included) and NaNs tie only with each other, so even all-NaN tables
/// order deterministically by the id tiebreak. Shared with the two-stage
/// ranker ([`crate::two_stage`]) so candidate-restricted top-k answers
/// sort with the exact same comparator as this full-table reference.
pub(crate) fn top_k_cmp(a: &(usize, f32), b: &(usize, f32)) -> std::cmp::Ordering {
    match (a.1.is_nan(), b.1.is_nan()) {
        (false, false) => {
            b.1.partial_cmp(&a.1).expect("non-NaN scores compare").then(a.0.cmp(&b.0))
        }
        (true, true) => a.0.cmp(&b.0),
        (a_nan, _) => {
            if a_nan {
                std::cmp::Ordering::Greater
            } else {
                std::cmp::Ordering::Less
            }
        }
    }
}

/// [`top_k`] into a caller-owned buffer: `entries` is cleared, used as the
/// selection scratch (it grows to `scores.len()` pairs while selecting)
/// and left holding exactly the top-`k` result, in the same deterministic
/// order as [`top_k`]. Reusing one buffer across calls makes the
/// steady-state selection allocation-free — the serving dispatcher keeps
/// one per lane, so a top-k request no longer allocates an
/// `n_entities`-entry `Vec` per query on the hot path.
pub fn top_k_into(scores: &[f32], k: usize, entries: &mut Vec<(usize, f32)>) {
    let better = top_k_cmp;
    entries.clear();
    let k = k.min(scores.len());
    if k == 0 {
        return;
    }
    entries.extend(scores.iter().copied().enumerate());
    if k < entries.len() {
        // Partition the k best to the front, then order just those.
        entries.select_nth_unstable_by(k - 1, better);
        entries.truncate(k);
    }
    entries.sort_unstable_by(better);
}

/// Reusable buffers for ranking one block of triples — allocate once per
/// worker, then the steady-state loop is allocation-free.
struct BlockRanker {
    n_entities: usize,
    scratch: BatchScratch,
    queries: Vec<(usize, usize)>,
    /// Row-major `block × n_entities` score block.
    scores: Vec<f32>,
    tail_ranks: Vec<f64>,
    head_ranks: Vec<f64>,
}

impl BlockRanker {
    fn with_policy(n_entities: usize, policy: KernelPolicy) -> Self {
        BlockRanker {
            n_entities,
            scratch: BatchScratch::with_policy(policy),
            queries: Vec::with_capacity(EVAL_BLOCK),
            scores: Vec::new(),
            tail_ranks: Vec::with_capacity(EVAL_BLOCK),
            head_ranks: Vec::with_capacity(EVAL_BLOCK),
        }
    }

    /// Rank every triple of `block`, then fold the ranks into `sink` in the
    /// sequential order (tail rank then head rank, triple by triple) so
    /// accumulation is bit-identical to the per-query reference path.
    fn rank_block(
        &mut self,
        model: &dyn BatchScorer,
        block: &[Triple],
        filter: &FilterIndex,
        mut sink: impl FnMut(usize, f64),
    ) {
        let n = self.n_entities;
        self.scores.resize(block.len() * n, 0.0);

        // Tail direction: score (h, r, ·) for the whole block, rank t.
        self.queries.clear();
        self.queries.extend(block.iter().map(|tr| (tr.h.idx(), tr.r.idx())));
        model.score_tails_batch(
            &self.queries,
            &mut self.scores[..block.len() * n],
            &mut self.scratch,
        );
        self.tail_ranks.clear();
        for (i, tr) in block.iter().enumerate() {
            let row = &self.scores[i * n..(i + 1) * n];
            self.tail_ranks.push(filtered_rank(row, tr.t.idx(), filter.tails(tr.h, tr.r)));
        }

        // Head direction: score (·, r, t), rank h.
        self.queries.clear();
        self.queries.extend(block.iter().map(|tr| (tr.r.idx(), tr.t.idx())));
        model.score_heads_batch(
            &self.queries,
            &mut self.scores[..block.len() * n],
            &mut self.scratch,
        );
        self.head_ranks.clear();
        for (i, tr) in block.iter().enumerate() {
            let row = &self.scores[i * n..(i + 1) * n];
            self.head_ranks.push(filtered_rank(row, tr.h.idx(), filter.heads(tr.r, tr.t)));
        }

        for i in 0..block.len() {
            sink(i, self.tail_ranks[i]);
            sink(i, self.head_ranks[i]);
        }
    }
}

/// Evaluate over `triples` with the batched scoring engine (single thread)
/// under the environment-resolved default [`KernelPolicy`].
pub fn evaluate(model: &dyn BatchScorer, triples: &[Triple], filter: &FilterIndex) -> RankMetrics {
    evaluate_with(KernelPolicy::default_from_env(), model, triples, filter)
}

/// [`evaluate`] under an explicit [`KernelPolicy`]: `Exact` reproduces
/// [`evaluate_sequential`] bit for bit; `Fast` may move ranks at
/// float-noise ties (see the module docs).
pub fn evaluate_with(
    policy: KernelPolicy,
    model: &dyn BatchScorer,
    triples: &[Triple],
    filter: &FilterIndex,
) -> RankMetrics {
    let mut metrics = RankMetrics::zero();
    let mut ranker = BlockRanker::with_policy(model.n_entities(), policy);
    for block in triples.chunks(EVAL_BLOCK) {
        ranker.rank_block(model, block, filter, |_, rank| metrics.accumulate(rank));
    }
    metrics.normalised()
}

/// Per-query reference implementation: scores one query at a time through
/// the [`LinkPredictor`] adapter. Kept as the semantic baseline the batched
/// path must reproduce bit for bit (see `tests/batch_equivalence.rs`), and
/// as the microbenchmark's "before" side.
pub fn evaluate_sequential(
    model: &dyn LinkPredictor,
    triples: &[Triple],
    filter: &FilterIndex,
) -> RankMetrics {
    let mut metrics = RankMetrics::zero();
    let mut scores = vec![0.0f32; model.n_entities()];
    for tr in triples {
        let (h, r, t) = (tr.h, tr.r, tr.t);
        model.score_tails(h.idx(), r.idx(), &mut scores);
        let rank = filtered_rank(&scores, t.idx(), filter.tails(h, r));
        metrics.accumulate(rank);
        model.score_heads(r.idx(), t.idx(), &mut scores);
        let rank = filtered_rank(&scores, h.idx(), filter.heads(r, t));
        metrics.accumulate(rank);
    }
    metrics.normalised()
}

/// Evaluate with a per-relation breakdown (used by case-study analysis à la
/// Sec. V-B2: which relation patterns a scoring function handles well).
/// Returns normalised metrics per relation id; relations with no test
/// triples get zeroed metrics.
pub fn evaluate_per_relation(
    model: &dyn BatchScorer,
    triples: &[Triple],
    filter: &FilterIndex,
    n_relations: usize,
) -> Vec<RankMetrics> {
    evaluate_per_relation_with(
        KernelPolicy::default_from_env(),
        model,
        triples,
        filter,
        n_relations,
    )
}

/// [`evaluate_per_relation`] under an explicit [`KernelPolicy`].
pub fn evaluate_per_relation_with(
    policy: KernelPolicy,
    model: &dyn BatchScorer,
    triples: &[Triple],
    filter: &FilterIndex,
    n_relations: usize,
) -> Vec<RankMetrics> {
    let mut per: Vec<RankMetrics> = vec![RankMetrics::zero(); n_relations];
    let mut ranker = BlockRanker::with_policy(model.n_entities(), policy);
    for block in triples.chunks(EVAL_BLOCK) {
        ranker.rank_block(model, block, filter, |i, rank| per[block[i].r.idx()].accumulate(rank));
    }
    per.into_iter().map(|m| if m.n_queries > 0 { m.normalised() } else { m }).collect()
}

/// Evaluate with `n_threads` workers cooperating on each query block.
/// Models with native shard scoring get the entity table split into (at
/// most `n_entities`) even contiguous shards, one worker per shard — see
/// [`evaluate_parallel_sharded`]; other models get the block's query rows
/// split instead, each scored against the full table (the
/// [`engine::plan_shards`] decision, shared with `kg-serve`). Either way
/// the engine merges integer rank counts, so thread count and work layout
/// never change the metrics, which equal [`evaluate_sequential`]'s exactly.
pub fn evaluate_parallel<M: BatchScorer + Sync>(
    model: &M,
    triples: &[Triple],
    filter: &FilterIndex,
    n_threads: usize,
) -> RankMetrics {
    evaluate_parallel_with(KernelPolicy::default_from_env(), model, triples, filter, n_threads)
}

/// [`evaluate_parallel`] under an explicit [`KernelPolicy`] — every worker
/// scores its shard under the same policy.
pub fn evaluate_parallel_with<M: BatchScorer + Sync>(
    policy: KernelPolicy,
    model: &M,
    triples: &[Triple],
    filter: &FilterIndex,
    n_threads: usize,
) -> RankMetrics {
    assert!(n_threads > 0, "need at least one thread");
    if n_threads == 1 {
        // One worker would shard nothing: take the single-threaded batched
        // path without the coordination scaffolding.
        return evaluate_with(policy, model, triples, filter);
    }
    if triples.is_empty() {
        return RankMetrics::zero();
    }
    let n_workers = if model.native_shard_scoring() {
        n_threads
    } else {
        // Query-row splitting: workers beyond the block (or triple) count
        // would only hit barriers.
        n_threads.min(EVAL_BLOCK).min(triples.len())
    };
    run_cooperative(policy, model, triples, filter, engine::plan_shards(model, n_workers))
}

/// Evaluate with one worker thread per entity shard, shards given by the
/// explicit cut points `bounds` (`bounds[w]..bounds[w+1]` is worker `w`'s
/// shard): non-decreasing, starting at 0, ending at `n_entities`.
/// Zero-width shards are legal — their workers score nothing and contribute
/// identity counts.
///
/// The work flows through the **double-buffered block pipeline**: one step
/// per (block, direction) pair, one barrier per step. In a step each
/// worker scores its shard for the whole query block
/// ([`kg_models::BatchScorer::score_tails_shard`] / `score_heads_shard`)
/// into its private shard-local block, publishes the target scores its
/// shard owns (as `f32` bits) into the step's [`engine::PipelineSlots`]
/// lane, crosses the step barrier, and immediately counts its still
/// cache-hot shard's filtered `(greater, equal)` contributions
/// (`shard_filtered_counts`) into its own per-worker slots of the same
/// lane — plain stores, one merge per block, no per-row `fetch_add`. The
/// lead worker then sums the *previous* step's lane into ranks and folds
/// metrics while the rest of the crew has already moved on to scoring the
/// next step: rank conversion never stalls the crew.
///
/// **Bit-identity.** A shard's score elements are bit-identical to the
/// corresponding columns of the full-table path (the [`BatchScorer`] shard
/// contract), and per-shard counts are integers, so their merge is
/// associative and order-independent — no matter how the shards race or
/// which pipeline stage a block is in, every rank equals the sequential
/// reference's rank exactly, and ranks are folded into the metrics in the
/// sequential order (tail then head, triple by triple). The result is
/// bit-identical to [`evaluate_sequential`] for any `bounds`.
///
/// # Panics
/// Panics if `bounds` is not a partition of `0..n_entities` as described,
/// or if any triple references an entity `≥ n_entities` (the sequential
/// path would fault on the same input).
pub fn evaluate_parallel_sharded<M: BatchScorer + Sync>(
    model: &M,
    triples: &[Triple],
    filter: &FilterIndex,
    bounds: &[usize],
) -> RankMetrics {
    evaluate_parallel_sharded_with(KernelPolicy::default_from_env(), model, triples, filter, bounds)
}

/// [`evaluate_parallel_sharded`] under an explicit [`KernelPolicy`] —
/// every worker scores its shard under the same policy. Bit-identity to
/// [`evaluate_sequential`] is the `Exact` tier's guarantee.
pub fn evaluate_parallel_sharded_with<M: BatchScorer + Sync>(
    policy: KernelPolicy,
    model: &M,
    triples: &[Triple],
    filter: &FilterIndex,
    bounds: &[usize],
) -> RankMetrics {
    let n = model.n_entities();
    assert!(bounds.len() >= 2, "need at least one shard");
    assert_eq!(bounds[0], 0, "shard bounds must start at entity 0");
    assert_eq!(*bounds.last().unwrap(), n, "shard bounds must end at n_entities");
    assert!(bounds.windows(2).all(|w| w[0] <= w[1]), "shard bounds must be non-decreasing");
    if triples.is_empty() {
        return RankMetrics::zero();
    }
    let shards = bounds.windows(2).map(|w| WorkerShard::Entities(w[0]..w[1])).collect();
    run_cooperative(policy, model, triples, filter, shards)
}

/// Spawn one worker per entry of `shards` and run the pipelined
/// cooperative engine over `triples` (see [`evaluate_parallel_sharded`] for
/// the step structure). The caller guarantees `shards` covers the work:
/// entity shards partition `0..n_entities`, query shards enumerate
/// `0..n_workers`.
fn run_cooperative<M: BatchScorer + Sync>(
    policy: KernelPolicy,
    model: &M,
    triples: &[Triple],
    filter: &FilterIndex,
    shards: Vec<WorkerShard>,
) -> RankMetrics {
    let n = model.n_entities();
    assert!(
        triples.iter().all(|t| t.h.idx() < n && t.t.idx() < n),
        "triple references an entity outside the model's table"
    );
    let n_workers = shards.len();
    let barrier = Barrier::new(n_workers);
    // The double-buffered exchange state: two parity lanes of published
    // target thresholds and per-worker count slots. Atomics + barriers
    // keep the engine in safe code; the barrier is the only
    // synchronisation the `Relaxed` cells need (see `PipelineSlots`).
    let slots = engine::PipelineSlots::new(n_workers);
    // `Barrier` has no poisoning: a worker that panicked mid-phase would
    // leave the others waiting at the next rendezvous forever. Each worker
    // catches its phase panics and records the earliest *step index* at
    // whose barrier check the whole crew must abort (`fetch_min`); the
    // original panic is re-thrown on join. A plain "poisoned" bool is not
    // enough: a fast worker that panics scoring step s+1 would set it
    // while slow workers are still waking from step s's barrier, making
    // them break one rendezvous earlier than the rest of the crew — a
    // deadlock. Tagging the abort with a step pins every worker to the
    // same barrier.
    let poisoned = AtomicUsize::new(usize::MAX);
    let metrics = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n_workers);
        for (w, shard) in shards.into_iter().enumerate() {
            let (barrier, poisoned, slots) = (&barrier, &poisoned, &slots);
            handles.push(scope.spawn(move || {
                shard_worker(policy, model, triples, filter, shard, w, barrier, poisoned, slots)
            }));
        }
        // Only the lead worker accumulates; the fold just picks it up. A
        // worker panic is re-thrown with its original payload so callers
        // see the model's actual error, not an opaque wrapper.
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| resume_unwind(p)))
            .fold(RankMetrics::zero(), RankMetrics::merge)
    });
    metrics.normalised()
}

/// The lead worker's conversion of one *completed* pipeline step: sum the
/// per-worker count slots of the step's lane into ranks, staged per
/// direction, and — when the step closes a block (heads direction) — fold
/// that block's tail and head ranks into `metrics` interleaved, in the
/// sequential per-triple order the reference path uses.
fn convert_step(
    slots: &engine::PipelineSlots,
    step: usize,
    block_len: usize,
    tail_ranks: &mut [f64; EVAL_BLOCK],
    head_ranks: &mut [f64; EVAL_BLOCK],
    metrics: &mut RankMetrics,
) {
    // Step parity doubles as the direction: tails are even steps.
    let tails = step.is_multiple_of(2);
    let ranks: &mut [f64] = if tails { &mut tail_ranks[..] } else { &mut head_ranks[..] };
    for (i, rank) in ranks.iter_mut().take(block_len).enumerate() {
        let (better, ties) = slots.merged_counts(step % 2, i);
        *rank = rank_from_counts(better, ties);
    }
    if !tails {
        for i in 0..block_len {
            metrics.accumulate(tail_ranks[i]);
            metrics.accumulate(head_ranks[i]);
        }
    }
}

/// One worker of the pipelined cooperative engine: scores its
/// [`WorkerShard`] for every step, counts it into its own
/// [`engine::PipelineSlots`] slots, and — when `worker == 0` (the lead) —
/// converts each *previous* step's merged counts into ranks and folds them
/// into the metrics it returns (non-lead workers return zero metrics).
///
/// One barrier per step. The worker's step `s` looks like:
///
/// 1. score the shard's slice of step `s`'s block and publish the target
///    thresholds it owns into lane `s % 2`;
/// 2. cross the step barrier — every shard scored, every target published;
/// 3. count the still cache-hot shard scores into its own slots of lane
///    `s % 2`; the lead additionally converts step `s - 1` (lane
///    `1 - s % 2`) into ranks — overlapping the other workers, which move
///    straight on to scoring step `s + 1` without waiting.
///
/// One final barrier after the last step lets the lead convert the last
/// lane. Every worker must execute the same barrier sequence, including
/// workers with a zero-width entity shard or an empty query slice, whose
/// scoring and counting phases are no-ops. A phase that panics (a model
/// override, an out-of-range index) is caught and poisons the crew with an
/// *abort step*: every worker — fast ones already a step ahead included —
/// leaves the pipeline at that step's barrier check, never one rendezvous
/// early or late, and the original panic is re-thrown on join, so failures
/// propagate instead of deadlocking the rendezvous.
#[allow(clippy::too_many_arguments)] // one crew-wide wiring site, every argument load-bearing
fn shard_worker<M: BatchScorer + ?Sized>(
    policy: KernelPolicy,
    model: &M,
    triples: &[Triple],
    filter: &FilterIndex,
    shard: WorkerShard,
    worker: usize,
    barrier: &Barrier,
    poisoned: &AtomicUsize,
    slots: &engine::PipelineSlots,
) -> RankMetrics {
    let lead = worker == 0;
    let mut scratch = BatchScratch::with_policy(policy);
    let mut queries: Vec<(usize, usize)> = Vec::with_capacity(EVAL_BLOCK);
    let mut scores = vec![
        0.0f32;
        match &shard {
            WorkerShard::Entities(range) => EVAL_BLOCK * range.len(),
            WorkerShard::Queries { n_workers, .. } =>
                EVAL_BLOCK.div_ceil(*n_workers) * model.n_entities(),
        }
    ];
    // Rank staging (lead only): a step's ranks are converted one step after
    // its counts land, but accumulated interleaved in the sequential order.
    let mut tail_ranks = [0.0f64; EVAL_BLOCK];
    let mut head_ranks = [0.0f64; EVAL_BLOCK];
    let mut metrics = RankMetrics::zero();
    let mut payload: Option<Box<dyn std::any::Any + Send>> = None;
    let blocks: Vec<&[Triple]> = triples.chunks(EVAL_BLOCK).collect();
    let n_steps = blocks.len() * 2;
    let mut aborted = false;
    for step in 0..n_steps {
        let block = blocks[step / 2];
        // Step parity doubles as the direction (and the lane): tails are
        // even steps, so consecutive steps always use opposite lanes.
        let tail_dir = step % 2 == 0;
        let dir = if tail_dir { Direction::Tails } else { Direction::Heads };
        // This worker's slice of the block: every query against an entity
        // shard, or a slice of the queries against everything.
        let rows = shard.rows(block.len());
        let width = shard.width(model.n_entities());
        let scored = catch_unwind(AssertUnwindSafe(|| {
            queries.clear();
            if tail_dir {
                queries.extend(block[rows.clone()].iter().map(|tr| (tr.h.idx(), tr.r.idx())));
            } else {
                queries.extend(block[rows.clone()].iter().map(|tr| (tr.r.idx(), tr.t.idx())));
            }
            let out = &mut scores[..rows.len() * width];
            engine::score_block_shard(&model, dir, &queries, &shard, out, &mut scratch);
            // Entity mode exchanges target scores through the threshold
            // slots (each target lives in exactly one shard); query mode
            // reads them straight off its own full-width rows.
            if let WorkerShard::Entities(range) = &shard {
                for (i, tr) in block.iter().enumerate() {
                    let target = if tail_dir { tr.t.idx() } else { tr.h.idx() };
                    if range.contains(&target) {
                        let bits = out[i * width + (target - range.start)].to_bits();
                        slots.publish_threshold(step % 2, i, bits);
                    }
                }
            }
        }));
        if let Err(p) = scored {
            payload = Some(p);
            // A scoring panic at step `s` is published *before* this
            // worker's barrier wait, so every worker's check after the
            // step-`s` barrier sees it — and no worker can be past that
            // check yet (the barrier had not released). `fetch_min` keeps
            // the earliest abort step if several workers panic.
            poisoned.fetch_min(step, Relaxed);
        }
        // The step barrier: every shard scored, every target published —
        // and the previous step's conversion finished (the lead converts
        // below, before it can reach this rendezvous again), so its lane
        // is free to be rewritten next step.
        barrier.wait();
        // Abort only at the barrier the poison is tagged with: a poison
        // tagged `step + 1` (set by a racing worker already scoring the
        // next step, or by a count-phase panic below) must not peel slow
        // workers off one rendezvous early.
        if poisoned.load(Relaxed) <= step {
            aborted = true;
            break;
        }
        let counted = catch_unwind(AssertUnwindSafe(|| {
            let out = &scores[..rows.len() * width];
            for (i, tr) in block.iter().enumerate() {
                if !rows.contains(&i) {
                    // Unowned rows (query-split mode): identity counts, so
                    // the lead's merge can sum every worker's slot blindly.
                    slots.store_counts(step % 2, worker, i, 0, 0);
                    continue;
                }
                let local = i - rows.start;
                let (target, known) = if tail_dir {
                    (tr.t.idx(), filter.tails(tr.h, tr.r))
                } else {
                    (tr.h.idx(), filter.heads(tr.r, tr.t))
                };
                let row = &out[local * width..(local + 1) * width];
                let (shard_start, threshold) = match &shard {
                    WorkerShard::Entities(range) => (range.start, slots.threshold(step % 2, i)),
                    WorkerShard::Queries { .. } => (0, row[target]),
                };
                let (b, t) = shard_filtered_counts(row, shard_start, threshold, target, known);
                slots.store_counts(step % 2, worker, i, b, t);
            }
            // Pipeline overlap: while the other workers move on to scoring
            // step + 1, the lead folds the *previous* step's lane — its
            // counts landed before the barrier just crossed.
            if lead && step > 0 {
                let prev_len = blocks[(step - 1) / 2].len();
                convert_step(
                    slots,
                    step - 1,
                    prev_len,
                    &mut tail_ranks,
                    &mut head_ranks,
                    &mut metrics,
                );
            }
        }));
        if let Err(p) = counted {
            payload = Some(p);
            // A count-phase panic lands *after* this step's barrier, when
            // other workers may already have passed this step's check — so
            // the abort is tagged for the next rendezvous, which every
            // worker (this one included) can still reach.
            poisoned.fetch_min(step + 1, Relaxed);
        }
    }
    if !aborted {
        // Drain the pipeline: one final rendezvous so the last step's
        // counts are all in, then the lead converts the remaining lane.
        // (`aborted` is crew-consistent: abort steps are tagged to a
        // barrier every worker reaches, so either the whole crew broke at
        // the same check or the whole crew arrives here.)
        barrier.wait();
        if poisoned.load(Relaxed) == usize::MAX && lead && n_steps > 0 {
            let last_len = blocks[(n_steps - 1) / 2].len();
            convert_step(
                slots,
                n_steps - 1,
                last_len,
                &mut tail_ranks,
                &mut head_ranks,
                &mut metrics,
            );
        }
    }
    if let Some(p) = payload {
        resume_unwind(p);
    }
    metrics
}

/// The pre-sharding parallel strategy — `n_threads` workers each ranking a
/// contiguous *triple* chunk in blocks through the batched engine, every
/// worker re-streaming the whole entity table. Kept as the
/// microbenchmark's comparison baseline for [`evaluate_parallel`] (and as
/// the better choice when callers genuinely want per-chunk isolation).
/// Metrics match the sequential reference to merge-rounding (`merge` adds
/// chunk partials in chunk order), not necessarily bit for bit.
pub fn evaluate_parallel_chunked<M: BatchScorer + Sync>(
    model: &M,
    triples: &[Triple],
    filter: &FilterIndex,
    n_threads: usize,
) -> RankMetrics {
    evaluate_parallel_chunked_with(
        KernelPolicy::default_from_env(),
        model,
        triples,
        filter,
        n_threads,
    )
}

/// [`evaluate_parallel_chunked`] under an explicit [`KernelPolicy`].
pub fn evaluate_parallel_chunked_with<M: BatchScorer + Sync>(
    policy: KernelPolicy,
    model: &M,
    triples: &[Triple],
    filter: &FilterIndex,
    n_threads: usize,
) -> RankMetrics {
    assert!(n_threads > 0, "need at least one thread");
    if triples.is_empty() {
        return RankMetrics::zero();
    }
    let n_threads = n_threads.min(triples.len());
    let chunk = triples.len().div_ceil(n_threads);
    let partials = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for part in triples.chunks(chunk) {
            handles.push(scope.spawn(move || {
                let mut metrics = RankMetrics::zero();
                let mut ranker = BlockRanker::with_policy(model.n_entities(), policy);
                for block in part.chunks(EVAL_BLOCK) {
                    ranker.rank_block(model, block, filter, |_, rank| metrics.accumulate(rank));
                }
                metrics
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| resume_unwind(p)))
            .fold(RankMetrics::zero(), RankMetrics::merge)
    });
    partials.normalised()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An oracle that scores entity `t` highest for every `(h, r)` query by
    /// looking up a fixed mapping.
    struct Oracle {
        n: usize,
        target: usize,
    }

    impl LinkPredictor for Oracle {
        fn n_entities(&self) -> usize {
            self.n
        }
        fn score_triple(&self, _h: usize, _r: usize, t: usize) -> f32 {
            if t == self.target {
                1.0
            } else {
                0.0
            }
        }
        fn score_tails(&self, _h: usize, _r: usize, out: &mut [f32]) {
            for (e, o) in out.iter_mut().enumerate() {
                *o = if e == self.target { 1.0 } else { 0.0 };
            }
        }
        fn score_heads(&self, _r: usize, _t: usize, out: &mut [f32]) {
            for (e, o) in out.iter_mut().enumerate() {
                *o = if e == self.target { 1.0 } else { 0.0 };
            }
        }
    }

    impl kg_models::BatchScorer for Oracle {}

    #[test]
    fn perfect_tail_prediction_gets_rank_one() {
        let m = Oracle { n: 10, target: 3 };
        let triples = vec![Triple::new(0, 0, 3)];
        let filter = FilterIndex::build(&triples);
        let r = evaluate(&m, &triples, &filter);
        // tail query: rank 1. head query: the true head 0 scores 0, entity 3
        // scores 1 (1 better), the other 8 tie at 0 → rank = 1 + 1 + 8/2 = 6
        assert_eq!(r.n_queries, 2);
        assert!((r.mrr - (1.0 + 1.0 / 6.0) / 2.0).abs() < 1e-9, "mrr {}", r.mrr);
    }

    #[test]
    fn filtering_excludes_other_positives() {
        // entity 1 scores higher than true target 3, but (0,0,1) is a known
        // positive → filtered out → rank stays 1.
        struct TwoPeaks;
        impl LinkPredictor for TwoPeaks {
            fn n_entities(&self) -> usize {
                5
            }
            fn score_triple(&self, _: usize, _: usize, t: usize) -> f32 {
                [0.0, 2.0, 0.0, 1.0, 0.0][t]
            }
            fn score_tails(&self, _: usize, _: usize, out: &mut [f32]) {
                out.copy_from_slice(&[0.0, 2.0, 0.0, 1.0, 0.0]);
            }
            fn score_heads(&self, _: usize, _: usize, out: &mut [f32]) {
                out.copy_from_slice(&[0.0, 2.0, 0.0, 1.0, 0.0]);
            }
        }
        impl kg_models::BatchScorer for TwoPeaks {}
        let known = vec![Triple::new(0, 0, 1), Triple::new(0, 0, 3)];
        let filter = FilterIndex::build(&known);
        let r = evaluate(&TwoPeaks, &[Triple::new(0, 0, 3)], &filter);
        // tail rank of 3: entity 1 filtered → rank 1
        // head rank of 0: head filtering only removes (e,0,3) positives, so
        // entities 1 (score 2) and 3 (score 1) rank above, {2,4} tie at 0
        // → rank = 1 + 2 + 2/2 = 4
        let expect = (1.0 + 1.0 / 4.0) / 2.0;
        assert!((r.mrr - expect).abs() < 1e-9, "mrr {} expect {expect}", r.mrr);
    }

    #[test]
    fn constant_scorer_gets_random_expectation() {
        struct Flat;
        impl LinkPredictor for Flat {
            fn n_entities(&self) -> usize {
                11
            }
            fn score_triple(&self, _: usize, _: usize, _: usize) -> f32 {
                0.5
            }
            fn score_tails(&self, _: usize, _: usize, out: &mut [f32]) {
                out.fill(0.5);
            }
            fn score_heads(&self, _: usize, _: usize, out: &mut [f32]) {
                out.fill(0.5);
            }
        }
        impl kg_models::BatchScorer for Flat {}
        let triples = vec![Triple::new(0, 0, 1)];
        let filter = FilterIndex::build(&triples);
        let r = evaluate(&Flat, &triples, &filter);
        // 10 non-target candidates all tied → rank = 1 + 5 = 6 (the mean
        // rank of a uniformly random ordering over 11 entities)
        assert!((r.mr - 6.0).abs() < 1e-9, "mr {}", r.mr);
    }

    #[test]
    fn parallel_matches_sequential() {
        let m = Oracle { n: 20, target: 7 };
        let triples: Vec<Triple> = (0..12).map(|i| Triple::new(i, 0, 7)).collect();
        let filter = FilterIndex::build(&triples);
        let seq = evaluate(&m, &triples, &filter);
        for threads in [1, 2, 3, 7] {
            let par = evaluate_parallel(&m, &triples, &filter, threads);
            assert_eq!(par, seq, "threads={threads}");
            let chunked = evaluate_parallel_chunked(&m, &triples, &filter, threads);
            assert!((chunked.mrr - seq.mrr).abs() < 1e-12, "chunked threads={threads}");
            assert_eq!(chunked.n_queries, seq.n_queries);
        }
    }

    #[test]
    fn more_threads_than_entities_is_capped_and_exact() {
        // 8 requested workers over a 5-entity table: the even split must cap
        // at 5 single-entity shards and stay bit-identical.
        let m = Oracle { n: 5, target: 2 };
        let triples: Vec<Triple> = (0..9).map(|i| Triple::new(i % 5, 0, 2)).collect();
        let filter = FilterIndex::build(&triples);
        let seq = evaluate_sequential(&m, &triples, &filter);
        for threads in [6, 8, 64] {
            assert_eq!(evaluate_parallel(&m, &triples, &filter, threads), seq, "t={threads}");
        }
    }

    #[test]
    fn zero_width_shards_contribute_identity_counts() {
        let m = Oracle { n: 10, target: 3 };
        let triples: Vec<Triple> = (0..7).map(|i| Triple::new(i, 0, 3)).collect();
        let filter = FilterIndex::build(&triples);
        let seq = evaluate_sequential(&m, &triples, &filter);
        // width-0 shards at the front, middle and back of the table
        for bounds in
            [vec![0, 0, 10], vec![0, 4, 4, 4, 10], vec![0, 10, 10], vec![0, 0, 0, 10, 10, 10]]
        {
            assert_eq!(
                evaluate_parallel_sharded(&m, &triples, &filter, &bounds),
                seq,
                "bounds {bounds:?}"
            );
        }
    }

    #[test]
    fn ragged_final_shard_is_exact() {
        // 10 entities over 3 workers: even bounds [0, 3, 6, 10] leave a
        // wider final shard; a hand-rolled [0, 7, 9, 10] leaves a 1-wide one.
        let m = Oracle { n: 10, target: 6 };
        let triples: Vec<Triple> = (0..5).map(|i| Triple::new(i, 0, 6)).collect();
        let filter = FilterIndex::build(&triples);
        let seq = evaluate_sequential(&m, &triples, &filter);
        assert_eq!(shard_bounds(10, 3), vec![0, 3, 6, 10]);
        assert_eq!(evaluate_parallel(&m, &triples, &filter, 3), seq);
        assert_eq!(evaluate_parallel_sharded(&m, &triples, &filter, &[0, 7, 9, 10]), seq);
    }

    #[test]
    fn top_k_orders_by_score_then_id() {
        let scores = [0.5, 2.0, 0.5, 3.0, 2.0];
        assert_eq!(top_k(&scores, 3), vec![(3, 3.0), (1, 2.0), (4, 2.0)]);
        // k beyond the table returns the whole ordering.
        assert_eq!(top_k(&scores, 99), vec![(3, 3.0), (1, 2.0), (4, 2.0), (0, 0.5), (2, 0.5)]);
        assert_eq!(top_k(&scores, 0), vec![]);
        assert_eq!(top_k(&[], 4), vec![]);
    }

    #[test]
    fn top_k_all_ties_falls_back_to_entity_ids() {
        // The constant-scorer case: ordering must be exactly id-ascending,
        // whatever k is — the determinism the serving API contracts on.
        let scores = [0.25f32; 9];
        for k in [1usize, 4, 9] {
            let got = top_k(&scores, k);
            assert_eq!(got.len(), k);
            assert!(got.iter().enumerate().all(|(i, &(e, s))| e == i && s == 0.25), "{got:?}");
        }
    }

    #[test]
    fn filtered_rank_rejects_empty_table_with_explicit_message() {
        // An empty score table must fail the documented early bound check,
        // not an anonymous `scores[target]` index panic.
        let err = std::panic::catch_unwind(|| filtered_rank(&[], 0, &[]))
            .expect_err("empty table must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("target entity 0 out of range for a 0-entity score table"),
            "unexpected panic message: {msg}"
        );
    }

    #[test]
    #[should_panic(expected = "target entity 7 out of range for a 3-entity score table")]
    fn filtered_rank_rejects_out_of_range_target() {
        filtered_rank(&[1.0, 2.0, 3.0], 7, &[]);
    }

    #[test]
    fn top_k_into_reuses_buffer_and_matches_allocating_wrapper() {
        let scores = [0.5f32, 2.0, 0.5, 3.0, 2.0];
        let mut buf: Vec<(usize, f32)> = Vec::new();
        for k in [0usize, 1, 3, 5, 99] {
            top_k_into(&scores, k, &mut buf);
            assert_eq!(buf, top_k(&scores, k), "k={k}");
        }
        // Stale contents from a previous (larger) result never leak.
        top_k_into(&scores, 4, &mut buf);
        top_k_into(&scores, 1, &mut buf);
        assert_eq!(buf, vec![(3, 3.0)]);
        top_k_into(&[], 7, &mut buf);
        assert!(buf.is_empty());
        // The scratch grows once and is then reused, never reallocated.
        top_k_into(&scores, 2, &mut buf);
        let cap = buf.capacity();
        for _ in 0..3 {
            top_k_into(&scores, 2, &mut buf);
            assert_eq!(buf.capacity(), cap, "steady-state calls must not reallocate");
        }
    }

    #[test]
    fn top_k_on_empty_table_is_empty_for_any_k() {
        // The graceful counterpart: top-k over no entities is no entities,
        // never a panic — pinned so the serving facade can rely on it.
        for k in [0usize, 1, 64] {
            assert_eq!(top_k(&[], k), vec![]);
        }
    }

    #[test]
    fn top_k_sorts_nan_last() {
        let scores = [f32::NAN, 1.0, f32::NAN, -7.0];
        assert_eq!(top_k(&scores, 2), vec![(1, 1.0), (3, -7.0)]);
        // NaNs tie with each other below every real score, ids break the tie.
        let got = top_k(&scores, 4);
        assert_eq!(got[2].0, 0);
        assert_eq!(got[3].0, 2);
        // …strictly below: a real -∞ still beats a NaN.
        assert_eq!(top_k(&[f32::NAN, f32::NEG_INFINITY], 1), vec![(1, f32::NEG_INFINITY)]);
    }

    /// A model that panics when scoring a specific head entity — stands in
    /// for any fallible scorer override.
    struct Grenade {
        n: usize,
        trip_on: usize,
    }

    impl LinkPredictor for Grenade {
        fn n_entities(&self) -> usize {
            self.n
        }
        fn score_triple(&self, _: usize, _: usize, _: usize) -> f32 {
            0.0
        }
        fn score_tails(&self, h: usize, _: usize, out: &mut [f32]) {
            assert!(h != self.trip_on, "grenade tripped");
            out.fill(0.0);
        }
        fn score_heads(&self, _: usize, _: usize, out: &mut [f32]) {
            out.fill(0.0);
        }
    }

    impl kg_models::BatchScorer for Grenade {}

    #[test]
    #[should_panic(expected = "grenade tripped")]
    fn worker_panic_propagates_instead_of_deadlocking_query_mode() {
        let m = Grenade { n: 10, trip_on: 5 };
        let triples: Vec<Triple> = (0..8).map(|i| Triple::new(i, 0, 3)).collect();
        let filter = FilterIndex::build(&triples);
        // Grenade reports no native shard scoring → query-split mode; the
        // worker that draws head 5 panics and must take the crew with it.
        evaluate_parallel(&m, &triples, &filter, 4);
    }

    #[test]
    #[should_panic(expected = "grenade tripped")]
    fn worker_panic_propagates_instead_of_deadlocking_entity_mode() {
        let m = Grenade { n: 10, trip_on: 2 };
        let triples: Vec<Triple> = (0..8).map(|i| Triple::new(i, 0, 3)).collect();
        let filter = FilterIndex::build(&triples);
        // Explicit bounds force entity mode; the default shard path funnels
        // into score_tails, so every worker trips — still no deadlock.
        evaluate_parallel_sharded(&m, &triples, &filter, &[0, 4, 7, 10]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_shard_bounds_are_rejected() {
        let m = Oracle { n: 10, target: 3 };
        let triples = vec![Triple::new(0, 0, 3)];
        let filter = FilterIndex::build(&triples);
        evaluate_parallel_sharded(&m, &triples, &filter, &[0, 6, 4, 10]);
    }

    #[test]
    fn batched_evaluate_is_bit_identical_to_reference_across_blocks() {
        // Enough triples to span several EVAL_BLOCK boundaries, incl. a
        // ragged final block.
        let m = Oracle { n: 31, target: 9 };
        let triples: Vec<Triple> =
            (0..(super::EVAL_BLOCK as u32 * 2 + 17)).map(|i| Triple::new(i % 31, 0, 9)).collect();
        let filter = FilterIndex::build(&triples);
        let batched = evaluate(&m, &triples, &filter);
        let reference = evaluate_sequential(&m, &triples, &filter);
        assert_eq!(batched, reference);
    }

    #[test]
    fn empty_triples_are_safe() {
        let m = Oracle { n: 4, target: 0 };
        let filter = FilterIndex::default();
        let r = evaluate(&m, &[], &filter);
        assert_eq!(r.n_queries, 0);
        assert_eq!(r.mrr, 0.0);
        let rp = evaluate_parallel(&m, &[], &filter, 4);
        assert_eq!(rp.n_queries, 0);
    }

    #[test]
    fn per_relation_breakdown_partitions_queries() {
        let m = Oracle { n: 10, target: 3 };
        let triples = vec![Triple::new(0, 0, 3), Triple::new(1, 1, 3), Triple::new(2, 1, 3)];
        let filter = FilterIndex::build(&triples);
        let per = evaluate_per_relation(&m, &triples, &filter, 3);
        assert_eq!(per.len(), 3);
        assert_eq!(per[0].n_queries, 2);
        assert_eq!(per[1].n_queries, 4);
        assert_eq!(per[2].n_queries, 0);
        // aggregate matches the flat evaluation on per-query counts
        let total: usize = per.iter().map(|m| m.n_queries).sum();
        assert_eq!(total, evaluate(&m, &triples, &filter).n_queries);
    }

    #[test]
    fn metrics_cell_formats() {
        let mut m = RankMetrics::zero();
        m.accumulate(1.0);
        m.accumulate(2.0);
        let n = m.normalised();
        assert_eq!(n.n_queries, 2);
        assert!(n.cell().contains('/'));
        assert!((n.mrr - 0.75).abs() < 1e-9);
        assert!((n.hits1 - 0.5).abs() < 1e-9);
    }
}

//! Filtered link-prediction ranking (Sec. V-B), batched.
//!
//! For each test triple `(h, r, t)` the model scores `(h, r, e)` for every
//! entity `e` and we compute the rank of `t` — and symmetrically the rank
//! of `h` over `(e, r, t)` — in the **filtered** setting: candidates that
//! form a *different* known positive are excluded from the count. Ties
//! count half (the unbiased convention), so constant scorers get the random
//! expectation instead of a free rank 1.
//!
//! Since the batched-scoring-engine refactor, triples are ranked in blocks:
//! one [`kg_models::BatchScorer`] call scores a whole block of queries
//! (one GEMM against the entity table for factorising models) and each
//! score row is then filtered-ranked. Metrics are accumulated in the
//! original per-triple order (tail query then head query, triple by
//! triple), and the block kernels are bit-identical per element to the
//! per-query kernels, so [`evaluate`] reproduces the sequential reference
//! [`evaluate_sequential`] **bit for bit** — the equivalence suite in
//! `tests/batch_equivalence.rs` pins this down for every shipped model.

use kg_core::{FilterIndex, Triple};
use kg_models::{BatchScorer, BatchScratch, LinkPredictor};
use serde::{Deserialize, Serialize};

/// Triples ranked per scoring block — each block issues two 64-row GEMMs
/// (tail queries, then head queries, reusing one `64 × n_entities` score
/// buffer): small enough that a block's score rows stay cache-resident for
/// the ranking sweep, large enough to amortise each streaming pass over
/// the entity table across many queries.
const EVAL_BLOCK: usize = 64;

/// Aggregate ranking metrics over a triple set (head + tail queries).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankMetrics {
    /// Mean reciprocal rank.
    pub mrr: f64,
    /// Mean rank.
    pub mr: f64,
    /// Fraction with rank ≤ 1.
    pub hits1: f64,
    /// Fraction with rank ≤ 3.
    pub hits3: f64,
    /// Fraction with rank ≤ 10.
    pub hits10: f64,
    /// Number of ranked queries (2 per triple).
    pub n_queries: usize,
}

impl RankMetrics {
    /// The all-zero metrics (identity for [`RankMetrics::merge`]).
    pub fn zero() -> Self {
        RankMetrics { mrr: 0.0, mr: 0.0, hits1: 0.0, hits3: 0.0, hits10: 0.0, n_queries: 0 }
    }

    fn accumulate(&mut self, rank: f64) {
        self.mrr += 1.0 / rank;
        self.mr += rank;
        if rank <= 1.0 {
            self.hits1 += 1.0;
        }
        if rank <= 3.0 {
            self.hits3 += 1.0;
        }
        if rank <= 10.0 {
            self.hits10 += 1.0;
        }
        self.n_queries += 1;
    }

    /// Merge partial sums (both sides must still be un-normalised).
    pub fn merge(mut self, other: RankMetrics) -> RankMetrics {
        self.mrr += other.mrr;
        self.mr += other.mr;
        self.hits1 += other.hits1;
        self.hits3 += other.hits3;
        self.hits10 += other.hits10;
        self.n_queries += other.n_queries;
        self
    }

    fn normalised(mut self) -> RankMetrics {
        let n = self.n_queries.max(1) as f64;
        self.mrr /= n;
        self.mr /= n;
        self.hits1 /= n;
        self.hits3 /= n;
        self.hits10 /= n;
        self
    }

    /// Render as a compact `MRR/H@1/H@10` cell.
    pub fn cell(&self) -> String {
        format!("{:.3}/{:.1}/{:.1}", self.mrr, self.hits1 * 100.0, self.hits10 * 100.0)
    }
}

/// Rank of the target given raw scores in the filtered setting:
/// `rank = 1 + #better + #ties/2` over candidates that are neither the
/// target nor another known positive (`known_others`, the filter index's
/// completion list for this query — it may include the target itself).
///
/// Counts every candidate first and then subtracts the known positives'
/// contributions — identical integer counts to filtering inside the sweep
/// (the completion list is duplicate-free), but the hot loop is a plain
/// comparison scan instead of a hash probe per entity.
fn filtered_rank(scores: &[f32], target: usize, known_others: &[kg_core::EntityId]) -> f64 {
    let s_t = scores[target];
    let mut better = 0isize;
    let mut ties = 0isize;
    for (e, &s) in scores.iter().enumerate() {
        if e == target {
            continue;
        }
        if s > s_t {
            better += 1;
        } else if s == s_t {
            ties += 1;
        }
    }
    for &e in known_others {
        let e = e.idx();
        if e == target {
            continue;
        }
        let s = scores[e];
        if s > s_t {
            better -= 1;
        } else if s == s_t {
            ties -= 1;
        }
    }
    1.0 + better as f64 + ties as f64 / 2.0
}

/// Reusable buffers for ranking one block of triples — allocate once per
/// worker, then the steady-state loop is allocation-free.
struct BlockRanker {
    n_entities: usize,
    scratch: BatchScratch,
    queries: Vec<(usize, usize)>,
    /// Row-major `block × n_entities` score block.
    scores: Vec<f32>,
    tail_ranks: Vec<f64>,
    head_ranks: Vec<f64>,
}

impl BlockRanker {
    fn new(n_entities: usize) -> Self {
        BlockRanker {
            n_entities,
            scratch: BatchScratch::new(),
            queries: Vec::with_capacity(EVAL_BLOCK),
            scores: Vec::new(),
            tail_ranks: Vec::with_capacity(EVAL_BLOCK),
            head_ranks: Vec::with_capacity(EVAL_BLOCK),
        }
    }

    /// Rank every triple of `block`, then fold the ranks into `sink` in the
    /// sequential order (tail rank then head rank, triple by triple) so
    /// accumulation is bit-identical to the per-query reference path.
    fn rank_block(
        &mut self,
        model: &dyn BatchScorer,
        block: &[Triple],
        filter: &FilterIndex,
        mut sink: impl FnMut(usize, f64),
    ) {
        let n = self.n_entities;
        self.scores.resize(block.len() * n, 0.0);

        // Tail direction: score (h, r, ·) for the whole block, rank t.
        self.queries.clear();
        self.queries.extend(block.iter().map(|tr| (tr.h.idx(), tr.r.idx())));
        model.score_tails_batch(
            &self.queries,
            &mut self.scores[..block.len() * n],
            &mut self.scratch,
        );
        self.tail_ranks.clear();
        for (i, tr) in block.iter().enumerate() {
            let row = &self.scores[i * n..(i + 1) * n];
            self.tail_ranks.push(filtered_rank(row, tr.t.idx(), filter.tails(tr.h, tr.r)));
        }

        // Head direction: score (·, r, t), rank h.
        self.queries.clear();
        self.queries.extend(block.iter().map(|tr| (tr.r.idx(), tr.t.idx())));
        model.score_heads_batch(
            &self.queries,
            &mut self.scores[..block.len() * n],
            &mut self.scratch,
        );
        self.head_ranks.clear();
        for (i, tr) in block.iter().enumerate() {
            let row = &self.scores[i * n..(i + 1) * n];
            self.head_ranks.push(filtered_rank(row, tr.h.idx(), filter.heads(tr.r, tr.t)));
        }

        for i in 0..block.len() {
            sink(i, self.tail_ranks[i]);
            sink(i, self.head_ranks[i]);
        }
    }
}

/// Evaluate over `triples` with the batched scoring engine (single thread).
pub fn evaluate(model: &dyn BatchScorer, triples: &[Triple], filter: &FilterIndex) -> RankMetrics {
    let mut metrics = RankMetrics::zero();
    let mut ranker = BlockRanker::new(model.n_entities());
    for block in triples.chunks(EVAL_BLOCK) {
        ranker.rank_block(model, block, filter, |_, rank| metrics.accumulate(rank));
    }
    metrics.normalised()
}

/// Per-query reference implementation: scores one query at a time through
/// the [`LinkPredictor`] adapter. Kept as the semantic baseline the batched
/// path must reproduce bit for bit (see `tests/batch_equivalence.rs`), and
/// as the microbenchmark's "before" side.
pub fn evaluate_sequential(
    model: &dyn LinkPredictor,
    triples: &[Triple],
    filter: &FilterIndex,
) -> RankMetrics {
    let mut metrics = RankMetrics::zero();
    let mut scores = vec![0.0f32; model.n_entities()];
    for tr in triples {
        let (h, r, t) = (tr.h, tr.r, tr.t);
        model.score_tails(h.idx(), r.idx(), &mut scores);
        let rank = filtered_rank(&scores, t.idx(), filter.tails(h, r));
        metrics.accumulate(rank);
        model.score_heads(r.idx(), t.idx(), &mut scores);
        let rank = filtered_rank(&scores, h.idx(), filter.heads(r, t));
        metrics.accumulate(rank);
    }
    metrics.normalised()
}

/// Evaluate with a per-relation breakdown (used by case-study analysis à la
/// Sec. V-B2: which relation patterns a scoring function handles well).
/// Returns normalised metrics per relation id; relations with no test
/// triples get zeroed metrics.
pub fn evaluate_per_relation(
    model: &dyn BatchScorer,
    triples: &[Triple],
    filter: &FilterIndex,
    n_relations: usize,
) -> Vec<RankMetrics> {
    let mut per: Vec<RankMetrics> = vec![RankMetrics::zero(); n_relations];
    let mut ranker = BlockRanker::new(model.n_entities());
    for block in triples.chunks(EVAL_BLOCK) {
        ranker.rank_block(model, block, filter, |i, rank| per[block[i].r.idx()].accumulate(rank));
    }
    per.into_iter().map(|m| if m.n_queries > 0 { m.normalised() } else { m }).collect()
}

/// Evaluate with `n_threads` workers (the model is shared read-only); each
/// worker ranks its chunk in blocks through the batched engine.
pub fn evaluate_parallel<M: BatchScorer + Sync>(
    model: &M,
    triples: &[Triple],
    filter: &FilterIndex,
    n_threads: usize,
) -> RankMetrics {
    assert!(n_threads > 0, "need at least one thread");
    if triples.is_empty() {
        return RankMetrics::zero();
    }
    let n_threads = n_threads.min(triples.len());
    let chunk = triples.len().div_ceil(n_threads);
    let partials = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for part in triples.chunks(chunk) {
            handles.push(scope.spawn(move || {
                let mut metrics = RankMetrics::zero();
                let mut ranker = BlockRanker::new(model.n_entities());
                for block in part.chunks(EVAL_BLOCK) {
                    ranker.rank_block(model, block, filter, |_, rank| metrics.accumulate(rank));
                }
                metrics
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("eval worker panicked"))
            .fold(RankMetrics::zero(), RankMetrics::merge)
    });
    partials.normalised()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An oracle that scores entity `t` highest for every `(h, r)` query by
    /// looking up a fixed mapping.
    struct Oracle {
        n: usize,
        target: usize,
    }

    impl LinkPredictor for Oracle {
        fn n_entities(&self) -> usize {
            self.n
        }
        fn score_triple(&self, _h: usize, _r: usize, t: usize) -> f32 {
            if t == self.target {
                1.0
            } else {
                0.0
            }
        }
        fn score_tails(&self, _h: usize, _r: usize, out: &mut [f32]) {
            for (e, o) in out.iter_mut().enumerate() {
                *o = if e == self.target { 1.0 } else { 0.0 };
            }
        }
        fn score_heads(&self, _r: usize, _t: usize, out: &mut [f32]) {
            for (e, o) in out.iter_mut().enumerate() {
                *o = if e == self.target { 1.0 } else { 0.0 };
            }
        }
    }

    impl kg_models::BatchScorer for Oracle {}

    #[test]
    fn perfect_tail_prediction_gets_rank_one() {
        let m = Oracle { n: 10, target: 3 };
        let triples = vec![Triple::new(0, 0, 3)];
        let filter = FilterIndex::build(&triples);
        let r = evaluate(&m, &triples, &filter);
        // tail query: rank 1. head query: the true head 0 scores 0, entity 3
        // scores 1 (1 better), the other 8 tie at 0 → rank = 1 + 1 + 8/2 = 6
        assert_eq!(r.n_queries, 2);
        assert!((r.mrr - (1.0 + 1.0 / 6.0) / 2.0).abs() < 1e-9, "mrr {}", r.mrr);
    }

    #[test]
    fn filtering_excludes_other_positives() {
        // entity 1 scores higher than true target 3, but (0,0,1) is a known
        // positive → filtered out → rank stays 1.
        struct TwoPeaks;
        impl LinkPredictor for TwoPeaks {
            fn n_entities(&self) -> usize {
                5
            }
            fn score_triple(&self, _: usize, _: usize, t: usize) -> f32 {
                [0.0, 2.0, 0.0, 1.0, 0.0][t]
            }
            fn score_tails(&self, _: usize, _: usize, out: &mut [f32]) {
                out.copy_from_slice(&[0.0, 2.0, 0.0, 1.0, 0.0]);
            }
            fn score_heads(&self, _: usize, _: usize, out: &mut [f32]) {
                out.copy_from_slice(&[0.0, 2.0, 0.0, 1.0, 0.0]);
            }
        }
        impl kg_models::BatchScorer for TwoPeaks {}
        let known = vec![Triple::new(0, 0, 1), Triple::new(0, 0, 3)];
        let filter = FilterIndex::build(&known);
        let r = evaluate(&TwoPeaks, &[Triple::new(0, 0, 3)], &filter);
        // tail rank of 3: entity 1 filtered → rank 1
        // head rank of 0: head filtering only removes (e,0,3) positives, so
        // entities 1 (score 2) and 3 (score 1) rank above, {2,4} tie at 0
        // → rank = 1 + 2 + 2/2 = 4
        let expect = (1.0 + 1.0 / 4.0) / 2.0;
        assert!((r.mrr - expect).abs() < 1e-9, "mrr {} expect {expect}", r.mrr);
    }

    #[test]
    fn constant_scorer_gets_random_expectation() {
        struct Flat;
        impl LinkPredictor for Flat {
            fn n_entities(&self) -> usize {
                11
            }
            fn score_triple(&self, _: usize, _: usize, _: usize) -> f32 {
                0.5
            }
            fn score_tails(&self, _: usize, _: usize, out: &mut [f32]) {
                out.fill(0.5);
            }
            fn score_heads(&self, _: usize, _: usize, out: &mut [f32]) {
                out.fill(0.5);
            }
        }
        impl kg_models::BatchScorer for Flat {}
        let triples = vec![Triple::new(0, 0, 1)];
        let filter = FilterIndex::build(&triples);
        let r = evaluate(&Flat, &triples, &filter);
        // 10 non-target candidates all tied → rank = 1 + 5 = 6 (the mean
        // rank of a uniformly random ordering over 11 entities)
        assert!((r.mr - 6.0).abs() < 1e-9, "mr {}", r.mr);
    }

    #[test]
    fn parallel_matches_sequential() {
        let m = Oracle { n: 20, target: 7 };
        let triples: Vec<Triple> = (0..12).map(|i| Triple::new(i, 0, 7)).collect();
        let filter = FilterIndex::build(&triples);
        let seq = evaluate(&m, &triples, &filter);
        for threads in [1, 2, 3, 7] {
            let par = evaluate_parallel(&m, &triples, &filter, threads);
            assert!((par.mrr - seq.mrr).abs() < 1e-12, "threads={threads}");
            assert_eq!(par.n_queries, seq.n_queries);
        }
    }

    #[test]
    fn batched_evaluate_is_bit_identical_to_reference_across_blocks() {
        // Enough triples to span several EVAL_BLOCK boundaries, incl. a
        // ragged final block.
        let m = Oracle { n: 31, target: 9 };
        let triples: Vec<Triple> =
            (0..(super::EVAL_BLOCK as u32 * 2 + 17)).map(|i| Triple::new(i % 31, 0, 9)).collect();
        let filter = FilterIndex::build(&triples);
        let batched = evaluate(&m, &triples, &filter);
        let reference = evaluate_sequential(&m, &triples, &filter);
        assert_eq!(batched, reference);
    }

    #[test]
    fn empty_triples_are_safe() {
        let m = Oracle { n: 4, target: 0 };
        let filter = FilterIndex::default();
        let r = evaluate(&m, &[], &filter);
        assert_eq!(r.n_queries, 0);
        assert_eq!(r.mrr, 0.0);
        let rp = evaluate_parallel(&m, &[], &filter, 4);
        assert_eq!(rp.n_queries, 0);
    }

    #[test]
    fn per_relation_breakdown_partitions_queries() {
        let m = Oracle { n: 10, target: 3 };
        let triples = vec![Triple::new(0, 0, 3), Triple::new(1, 1, 3), Triple::new(2, 1, 3)];
        let filter = FilterIndex::build(&triples);
        let per = evaluate_per_relation(&m, &triples, &filter, 3);
        assert_eq!(per.len(), 3);
        assert_eq!(per[0].n_queries, 2);
        assert_eq!(per[1].n_queries, 4);
        assert_eq!(per[2].n_queries, 0);
        // aggregate matches the flat evaluation on per-query counts
        let total: usize = per.iter().map(|m| m.n_queries).sum();
        assert_eq!(total, evaluate(&m, &triples, &filter).n_queries);
    }

    #[test]
    fn metrics_cell_formats() {
        let mut m = RankMetrics::zero();
        m.accumulate(1.0);
        m.accumulate(2.0);
        let n = m.normalised();
        assert_eq!(n.n_queries, 2);
        assert!(n.cell().contains('/'));
        assert!((n.mrr - 0.75).abs() < 1e-9);
        assert!((n.hits1 - 0.5).abs() < 1e-9);
    }
}

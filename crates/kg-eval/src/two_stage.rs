//! Two-stage ranking: a quantised coarse scan selects candidates, an
//! exact f32 rescore answers — bit-identical to the reference whenever
//! the coarse pass recalls the entities that matter.
//!
//! The reference evaluators ([`crate::ranking`]) stream full `f32` score
//! rows: `O(n·d)` f32 FLOPs and `4·n·d` bytes of entity table per query.
//! At the million-entity scale that is memory-bandwidth bound. This
//! module answers the same queries in two passes over a quantised mirror
//! of the entity table ([`kg_table::QuantTable`]):
//!
//! 1. **Coarse pass** — score *all* entities as
//!    `s_q · s_e · ⟨q̂, ê⟩` with exact-integer i8 kernels
//!    ([`kg_linalg::qgemm`]) over a 4×-smaller table, keeping the top-C
//!    per query (deterministic order: coarse score descending, entity id
//!    ascending).
//! 2. **Exact pass** — rescore only the C candidates with the *same*
//!    per-row [`kg_linalg::vecops::dot`] the reference paths use
//!    ([`FactorScorer::entity_row`] against the factored query vector),
//!    then fold counts into ranks with the reference arithmetic
//!    ([`crate::ranking::filtered_rank`]'s shared core).
//!
//! # Exactness and certification
//!
//! A two-stage rank equals the reference `filtered_rank` — as in,
//! the same `f64` bit pattern — iff every non-excluded entity whose
//! exact f32 score ties or beats the target's is a candidate. The scan
//! certifies that from two facts it gets for free:
//!
//! * every rejected (non-candidate) entity's coarse score is `≤ thr`,
//!   the final selection threshold — rejection *means* falling below it;
//! * every entity's exact score is `≤ coarse_e + slack_e` with `slack_e`
//!   the sound per-row error bound derived in the [`kg_table`] crate
//!   docs ([`kg_table::CertCoeffs`]), and
//!   `slack_e = c1·(s_e·‖ê‖₁) + c0·s_e` is monotone in two per-row
//!   quantities whose **table-wide maxima** are query-independent.
//!
//! So `thr + |thr|·ε + c1·max(s_e·‖ê‖₁) + c0·max(s_e)` bounds every
//! rejected entity's exact score — no per-rejection bookkeeping at all.
//! When that bound sits strictly below the target's exact score — and
//! the table, the query, and an f32-overflow magnitude guard are all
//! clean — no missed entity could have counted, and the answer is
//! **certified** exact ([`QueryOutcome::certified`]). The aggregate
//! bound is looser than a per-rejection maximum (it charges every
//! rejection the worst row's slack), which costs some certifications at
//! small budgets but none of the soundness; in exchange the hot loop
//! does nothing per rejected entity. The comparisons themselves carry
//! orders of magnitude more headroom than f64 evaluation-order noise:
//! `c1`/`c0` are inflated by `F64_SLOP` (≈ 10⁻⁶ relative) and the
//! threshold by `COARSE_EVAL_SLOP` (10⁻¹²), both ≫ the ≈ 10⁻¹⁶
//! rounding of the bound's own arithmetic. Certification is sufficient,
//! not necessary: uncertified answers are usually still exact, which is
//! what recall@C measures empirically (the equivalence suite and the
//! `rank_1M_d64` bench both report it).
//!
//! The overflow guard exists because the bound lives in f64 while the
//! reference scores live in f32: a rejected entity whose true dot
//! magnitude could approach `f32::MAX` might overflow to `±inf` in the
//! reference's f32 arithmetic, which the finite f64 bound cannot see.
//! Guarding the coarse-derived magnitude bound `max_j|q_j| · Σ_j|x_j|`
//! at half of `f32::MAX` rules that out.
//!
//! # Determinism
//!
//! Outcomes are byte-identical for every thread count, backend and
//! candidate buffer state: queries are partitioned into contiguous
//! chunks, each query's scan is a fixed-order pass over fixed-size
//! entity chunks, the integer kernels are exact and the coarse sift
//! evaluates one IEEE-pinned f64 expression
//! ([`kg_linalg::qgemm::coarse_sift`] — backend-identical by
//! construction), and the streamed top-C selection is a pure function
//! of the (coarse, id) total order. The sift filters against the
//! threshold frozen at chunk entry — a lower bound of the live one — so
//! it admits a superset of what the buffer can accept, and the buffer's
//! own exact re-check leaves the selected set identical to an unsifted
//! scan. Entities whose coarse score is NaN (possible only for
//! non-finite scales, which also void certification) are rejections in
//! every backend.

use crate::engine::BLOCK;
use crate::ranking::{rank_from_counts, top_k_cmp, RankMetrics};
use kg_core::{EntityId, FilterIndex, Triple};
use kg_linalg::{qgemm, vecops, KernelPolicy};
use kg_models::FactorScorer;
use kg_table::{quantise_row_into, CertCoeffs, QuantTable, QuantView, EPS_HALF};

/// Entities scored per i8 GEMM call during the coarse scan — small
/// enough that a query block's i32 dot panel stays cache-resident,
/// large enough to amortise the kernel's row loop.
const COARSE_CHUNK: usize = 4096;

/// Relative slop on the f64 coarse score folded into the upper bound:
/// computing `(s_q·s_e)·I` in f64 rounds at most twice (≈ 2·2⁻⁵³
/// relative), so 10⁻¹² of headroom is four orders of magnitude more
/// than needed — and also absorbs the final `coarse + slack` additions.
const COARSE_EVAL_SLOP: f64 = 1e-12;

/// Magnitude ceiling for certification: if any rejected entity's
/// `max|q| · Σ|x|` bound reaches this, its f32 reference score could
/// overflow to `±inf` and escape the f64 upper bound, so certification
/// is refused.
const OVERFLOW_GUARD: f64 = f32::MAX as f64 * 0.5;

/// Knobs of a two-stage evaluation.
#[derive(Debug, Clone, Copy)]
pub struct TwoStageConfig {
    /// Candidate budget C: how many coarse winners survive to the exact
    /// rescore. Must be at least 1; `C ≥ n_entities` degrades gracefully
    /// to an exact (single-tier) evaluation.
    pub candidates: usize,
    /// Worker threads for the query-parallel scan (queries are split
    /// into contiguous chunks; results are byte-identical for every
    /// value). Clamped to at least 1.
    pub n_threads: usize,
    /// Kernel policy, accepted for API uniformity with the ranking
    /// evaluators but **ignored by construction**: the coarse tier is
    /// exact integer i8 GEMM plus an IEEE-pinned f64 sift, and the exact
    /// rescore scores each surviving candidate with an undispatched
    /// per-pair dot — neither has any rounding-order freedom for
    /// [`KernelPolicy::Fast`] to relax, so every policy returns
    /// byte-identical outcomes.
    pub policy: KernelPolicy,
}

impl TwoStageConfig {
    /// Single-threaded config with candidate budget `candidates`.
    pub fn new(candidates: usize) -> TwoStageConfig {
        TwoStageConfig { candidates, n_threads: 1, policy: KernelPolicy::Exact }
    }

    /// Same config with `n_threads` workers.
    pub fn with_threads(mut self, n_threads: usize) -> TwoStageConfig {
        self.n_threads = n_threads;
        self
    }

    /// Same config with an explicit [`KernelPolicy`] — a no-op for the
    /// two-stage path (see [`TwoStageConfig::policy`]), carried so callers
    /// can thread one policy value through mixed pipelines.
    pub fn with_policy(mut self, policy: KernelPolicy) -> TwoStageConfig {
        self.policy = policy;
        self
    }
}

/// One ranking query's two-stage answer.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// Filtered rank computed from the candidates — equal to the
    /// reference [`crate::ranking::filtered_rank`] bit for bit whenever
    /// the coarse pass recalled every entity that ties or beats the
    /// target (always, when [`QueryOutcome::certified`]).
    pub rank: f64,
    /// Whether the certification bound *proves* this rank exact (see the
    /// module docs). `false` does not mean wrong — only unproven.
    pub certified: bool,
    /// The coarse top-C candidate entities, coarse score descending with
    /// ties broken by id ascending. Exposed so callers can measure
    /// recall@C against any reference they care about.
    pub candidates: Vec<u32>,
}

/// Aggregate of a two-stage evaluation: the reference-shaped metrics
/// plus how many of the per-query answers were certified exact.
#[derive(Debug, Clone, PartialEq)]
pub struct TwoStageMetrics {
    /// Rank metrics folded with the reference arithmetic and query
    /// order, so an all-certified run equals `evaluate_sequential`
    /// byte for byte.
    pub metrics: RankMetrics,
    /// Number of query outcomes (out of `metrics.n_queries`) whose
    /// exactness was certified.
    pub certified: usize,
}

/// A two-stage top-k answer: `(entity, exact f32 score)` pairs in the
/// reference [`crate::ranking::top_k`] order, plus the certification
/// flag (when `true`, `entries` equals the reference answer byte for
/// byte).
#[derive(Debug, Clone, PartialEq)]
pub struct TwoStageTopK {
    /// At most `min(k, C, n_entities)` pairs, score descending, ties by
    /// id ascending, NaN strictly last.
    pub entries: Vec<(usize, f32)>,
    /// Whether the candidate bound proves `entries` equals the full
    /// reference top-k.
    pub certified: bool,
}

/// Quantise a factorising model's entity table into an owned coarse
/// tier. Image-backed models ([`kg_models::ImageBlmModel`]) should use
/// their baked-in [`kg_models::ImageBlmModel::quant`] view instead —
/// that one is zero-copy and was checksummed at build time.
pub fn quantise_scorer<M: FactorScorer + ?Sized>(model: &M) -> QuantTable {
    QuantTable::from_row_iter((0..model.n_entities()).map(|e| model.entity_row(e)), model.dim())
}

/// Per-query precomputation: the quantisation summary and certification
/// coefficients, all in f64.
struct QueryQuant {
    /// Query scale `s_q`.
    sq: f64,
    /// `s_q · (127 + ε)` — upper bound on `max_j |q_j|`.
    qmax: f64,
    /// [`CertCoeffs::c1`].
    c1: f64,
    /// [`CertCoeffs::c0`].
    c0: f64,
    /// Whether the query vector was entirely finite.
    finite: bool,
}

impl QueryQuant {
    fn from_scale_l1(scale: f32, l1: u32, finite: bool, dim: usize) -> QueryQuant {
        let cc = CertCoeffs::new(scale, l1, dim);
        let sq = scale as f64;
        QueryQuant { sq, qmax: sq * (127.0 + EPS_HALF), c1: cc.c1, c0: cc.c0, finite }
    }
}

/// The table-wide aggregates that turn the per-query certification into
/// O(1) arithmetic: the slack and magnitude bounds are monotone in
/// `s_e·‖ê‖₁` and `s_e`, so their maxima bound every row's. Computed
/// once per evaluation ([`table_aggregates`]).
#[derive(Debug, Clone, Copy)]
struct TableAggregates {
    /// `max_e (s_e · ‖ê‖₁)` in f64.
    sel1_max: f64,
    /// `max_e s_e` in f64.
    se_max: f64,
    /// `dim · (1/2 + ε)` — the code-rounding term of the magnitude bound.
    d_eps: f64,
}

fn table_aggregates(quant: QuantView<'_>) -> TableAggregates {
    let mut sel1_max = 0.0f64;
    let mut se_max = 0.0f64;
    for (&s, &l1) in quant.scales().iter().zip(quant.l1_norms().iter()) {
        let se = s as f64;
        se_max = se_max.max(se);
        sel1_max = sel1_max.max(se * l1 as f64);
    }
    TableAggregates { sel1_max, se_max, d_eps: quant.dim() as f64 * EPS_HALF }
}

/// Streaming top-C selection over `(coarse, id)`. Rejections need no
/// per-entity bookkeeping: the certification bound is reconstructed at
/// [`TopCBuf::finish`] from the final threshold and the table-wide
/// slack maxima (see the module docs), so rejecting an entity is free —
/// which is what lets the scan sift whole chunks through
/// [`kg_linalg::qgemm::coarse_sift`] and touch only the survivors.
///
/// Invariant: `entries` is always a superset of the true top-`cap` of
/// the entities offered so far, every rejected entity's coarse score is
/// `≤ thr` at the moment of rejection (and `thr` only rises), and
/// `any_rejected` is set iff some entity was sifted out, rejected or
/// evicted.
struct TopCBuf {
    /// `(coarse, entity)` — at most `2·cap` live entries.
    entries: Vec<(f64, u32)>,
    cap: usize,
    /// Coarse score of the `cap`-th best entry at the last compression;
    /// anything at or above must be kept (ids only break exact ties, so
    /// a strictly-worse coarse score can never re-enter the top-`cap`).
    thr: f64,
    /// Whether `thr` is meaningful yet.
    full: bool,
    /// Whether any offered entity was rejected — when `false`, every
    /// entity is a candidate and the certification bound is `-∞`.
    any_rejected: bool,
    /// Upper bound on every rejected entity's exact score, set at
    /// [`TopCBuf::finish`]; `-∞` when nothing was rejected.
    bound: f64,
    /// Upper bound on every rejected entity's `max|q|·Σ|x|` overflow
    /// magnitude, set at [`TopCBuf::finish`]; `0` when nothing was
    /// rejected.
    mag: f64,
}

/// Coarse order: score descending, entity id ascending. NaN coarse
/// scores never enter the buffer — the sift rejects them in every
/// backend — and anything else is comparable (finite or ±∞).
fn cmp_coarse(a: &(f64, u32), b: &(f64, u32)) -> std::cmp::Ordering {
    b.0.partial_cmp(&a.0).expect("coarse scores are never NaN").then(a.1.cmp(&b.1))
}

impl TopCBuf {
    fn new(cap: usize) -> TopCBuf {
        assert!(cap > 0, "two_stage: candidate budget must be at least 1");
        TopCBuf {
            entries: Vec::with_capacity(2 * cap),
            cap,
            thr: f64::NEG_INFINITY,
            full: false,
            any_rejected: false,
            bound: f64::NEG_INFINITY,
            mag: 0.0,
        }
    }

    /// The threshold the sift of the next chunk must use: a frozen lower
    /// bound of the live threshold, so the sift admits a superset of
    /// what [`TopCBuf::offer`] can accept.
    fn sift_thr(&self) -> f64 {
        if self.full {
            self.thr
        } else {
            f64::NEG_INFINITY
        }
    }

    fn offer(&mut self, coarse: f64, e: u32) {
        if !self.full || coarse >= self.thr {
            self.entries.push((coarse, e));
            if self.entries.len() >= 2 * self.cap {
                self.compress();
            }
        } else {
            self.any_rejected = true;
        }
    }

    /// Partition the exact top-`cap` to the front, tighten the
    /// threshold. Every evicted entry's coarse score is `≤` the new
    /// threshold by construction of the partition.
    fn compress(&mut self) {
        debug_assert!(self.entries.len() > self.cap);
        self.entries.select_nth_unstable_by(self.cap - 1, cmp_coarse);
        self.entries.truncate(self.cap);
        self.thr = self.entries[self.cap - 1].0;
        self.full = true;
        self.any_rejected = true;
    }

    /// Final compression, deterministic ordering of the candidates, and
    /// the certification bounds: every rejected entity has coarse score
    /// `≤ thr` and slack `≤ c1·max(s_e·‖ê‖₁) + c0·max(s_e)`, so the sum
    /// (plus the coarse-evaluation slop) bounds every rejected exact
    /// score. With no rejections the bounds stay at their `-∞`/`0`
    /// identities and certification is automatic.
    fn finish(&mut self, pq: &QueryQuant, agg: TableAggregates) {
        if self.entries.len() > self.cap {
            self.compress();
        }
        self.entries.sort_unstable_by(cmp_coarse);
        if self.any_rejected {
            let slack_max = pq.c1 * agg.sel1_max + pq.c0 * agg.se_max;
            self.bound = self.thr + self.thr.abs() * COARSE_EVAL_SLOP + slack_max;
            self.mag = pq.qmax * (agg.sel1_max + agg.d_eps * agg.se_max);
        }
    }
}

/// One flattened ranking query: direction, the two query-defining ids
/// (`(h, r)` for tails, `(r, t)` for heads), the target entity, and the
/// filter's completion list.
struct QuerySpec<'a> {
    tails: bool,
    x: usize,
    y: usize,
    target: usize,
    known: &'a [EntityId],
}

/// Coarse-scan a block of quantised queries (`qcodes` is row-major
/// `m × dim`) against the whole table, returning each query's finished
/// [`TopCBuf`]. `dots` is scratch for at least `m · COARSE_CHUNK` i32s.
///
/// Per chunk and query the work is one i8 GEMM stripe plus one
/// [`qgemm::coarse_sift`] pass; only the sift survivors — a superset of
/// the entities the buffer can still accept, re-checked exactly by
/// [`TopCBuf::offer`] — pay the scalar f64 path, so the selected set is
/// byte-identical to an unsifted scan at a fraction of its cost.
fn coarse_scan(
    quant: QuantView<'_>,
    qcodes: &[i8],
    pqs: &[QueryQuant],
    c: usize,
    agg: TableAggregates,
    dots: &mut [i32],
) -> Vec<TopCBuf> {
    let m = pqs.len();
    let dim = quant.dim();
    let n = quant.n_rows();
    let scales = quant.scales();
    let mut bufs: Vec<TopCBuf> = (0..m).map(|_| TopCBuf::new(c)).collect();
    let mut passers: Vec<u32> = Vec::new();
    let mut start = 0usize;
    while start < n {
        let end = (start + COARSE_CHUNK).min(n);
        let w = end - start;
        qgemm::gemm_i8_nt_rows(qcodes, m, dim, quant.codes(), n, start..end, &mut dots[..m * w]);
        for (i, buf) in bufs.iter_mut().enumerate() {
            let pq = &pqs[i];
            let chunk_dots = &dots[i * w..(i + 1) * w];
            passers.clear();
            qgemm::coarse_sift(
                chunk_dots,
                &scales[start..end],
                pq.sq,
                buf.sift_thr(),
                start as u32,
                &mut passers,
            );
            if passers.len() < w {
                buf.any_rejected = true;
            }
            for &e in &passers {
                let idx = e as usize;
                let se = scales[idx] as f64;
                // Same expression order as QuantView::coarse_score and
                // the sift, so per-row spot checks agree bitwise.
                let coarse = (pq.sq * se) * chunk_dots[idx - start] as f64;
                buf.offer(coarse, e);
            }
        }
        start = end;
    }
    for (buf, pq) in bufs.iter_mut().zip(pqs.iter()) {
        buf.finish(pq, agg);
    }
    bufs
}

/// Exact rescore of one query's candidates: the reference per-entity
/// dot (`vecops::dot(entity_row, q)` — bit-identical to the score-row
/// element by the [`FactorScorer`] contract) and the reference counting
/// rule, restricted to the candidate set.
fn rescore_rank<M: FactorScorer + ?Sized>(
    model: &M,
    q: &[f32],
    buf: &TopCBuf,
    target: usize,
    known: &[EntityId],
) -> (f64, f32) {
    let t_s = vecops::dot(model.entity_row(target), q);
    let mut better = 0i64;
    let mut ties = 0i64;
    for &(_, e) in &buf.entries {
        let ei = e as usize;
        if ei == target || known.iter().any(|k| k.idx() == ei) {
            continue;
        }
        let s = vecops::dot(model.entity_row(ei), q);
        // NaN scores count nothing, NaN t_s counts nothing — exactly the
        // reference's count_cmp semantics.
        if s > t_s {
            better += 1;
        } else if s == t_s {
            ties += 1;
        }
    }
    (rank_from_counts(better, ties), t_s)
}

/// Process a contiguous run of queries (one worker's share), block by
/// block. Pure per query, so the concatenation over any partition of
/// the specs is byte-identical.
fn process_specs<M: FactorScorer + ?Sized>(
    model: &M,
    quant: QuantView<'_>,
    specs: &[QuerySpec<'_>],
    c: usize,
    agg: TableAggregates,
) -> Vec<QueryOutcome> {
    let dim = quant.dim();
    let mut out = Vec::with_capacity(specs.len());
    let mut qvecs = vec![0.0f32; BLOCK * dim];
    let mut qcodes = vec![0i8; BLOCK * dim];
    let mut dots = vec![0i32; BLOCK * COARSE_CHUNK];
    for block in specs.chunks(BLOCK) {
        let m = block.len();
        let mut pqs = Vec::with_capacity(m);
        for (i, spec) in block.iter().enumerate() {
            let q = &mut qvecs[i * dim..(i + 1) * dim];
            if spec.tails {
                model.tail_query_into(spec.x, spec.y, q);
            } else {
                model.head_query_into(spec.x, spec.y, q);
            }
            let rq = quantise_row_into(q, &mut qcodes[i * dim..(i + 1) * dim]);
            pqs.push(QueryQuant::from_scale_l1(rq.scale, rq.l1, rq.finite, dim));
        }
        let bufs = coarse_scan(quant, &qcodes[..m * dim], &pqs, c, agg, &mut dots);
        for (i, spec) in block.iter().enumerate() {
            let q = &qvecs[i * dim..(i + 1) * dim];
            let buf = &bufs[i];
            let (rank, t_s) = rescore_rank(model, q, buf, spec.target, spec.known);
            // Strict comparison: a NaN target score certifies nothing.
            let certified = quant.all_finite()
                && pqs[i].finite
                && buf.mag < OVERFLOW_GUARD
                && buf.bound < t_s as f64;
            out.push(QueryOutcome {
                rank,
                certified,
                candidates: buf.entries.iter().map(|e| e.1).collect(),
            });
        }
    }
    out
}

/// Two-stage answers for every ranking query of `triples` — two per
/// triple (tail direction then head direction), in triple order, the
/// same flattening as [`crate::ranking::evaluate_sequential`].
///
/// `quant` must mirror `model`'s entity table: pass
/// [`kg_models::ImageBlmModel::quant`] for image-backed models (zero
/// copy) or [`quantise_scorer`]'s view for in-memory ones.
///
/// # Panics
/// Panics when `cfg.candidates == 0` or when `quant`'s shape disagrees
/// with the model.
pub fn two_stage_outcomes<M: FactorScorer + Sync>(
    model: &M,
    quant: QuantView<'_>,
    triples: &[Triple],
    filter: &FilterIndex,
    cfg: TwoStageConfig,
) -> Vec<QueryOutcome> {
    assert!(cfg.candidates > 0, "two_stage: candidate budget must be at least 1");
    assert_eq!(quant.n_rows(), model.n_entities(), "two_stage: quant table row count mismatch");
    assert_eq!(quant.dim(), model.dim(), "two_stage: quant table dimension mismatch");
    let specs: Vec<QuerySpec<'_>> = triples
        .iter()
        .flat_map(|t| {
            [
                QuerySpec {
                    tails: true,
                    x: t.h.idx(),
                    y: t.r.idx(),
                    target: t.t.idx(),
                    known: filter.tails(t.h, t.r),
                },
                QuerySpec {
                    tails: false,
                    x: t.r.idx(),
                    y: t.t.idx(),
                    target: t.h.idx(),
                    known: filter.heads(t.r, t.t),
                },
            ]
        })
        .collect();
    let c = cfg.candidates;
    let agg = table_aggregates(quant);
    let n_threads = cfg.n_threads.max(1).min(specs.len().max(1));
    if n_threads <= 1 {
        return process_specs(model, quant, &specs, c, agg);
    }
    let chunk = specs.len().div_ceil(n_threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = specs
            .chunks(chunk)
            .map(|part| scope.spawn(move || process_specs(model, quant, part, c, agg)))
            .collect();
        let mut out = Vec::with_capacity(specs.len());
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

/// Fold per-query outcomes into aggregate metrics, with the reference
/// accumulation order — so when every query recalled its winner set the
/// result equals [`crate::ranking::evaluate_sequential`] byte for byte.
pub fn fold_outcomes(outcomes: &[QueryOutcome]) -> TwoStageMetrics {
    let mut metrics = RankMetrics::zero();
    let mut certified = 0usize;
    for o in outcomes {
        metrics.accumulate(o.rank);
        if o.certified {
            certified += 1;
        }
    }
    TwoStageMetrics { metrics: metrics.normalised(), certified }
}

/// [`two_stage_outcomes`] folded into aggregate metrics — the two-stage
/// counterpart of [`crate::ranking::evaluate`].
pub fn evaluate_two_stage<M: FactorScorer + Sync>(
    model: &M,
    quant: QuantView<'_>,
    triples: &[Triple],
    filter: &FilterIndex,
    cfg: TwoStageConfig,
) -> TwoStageMetrics {
    fold_outcomes(&two_stage_outcomes(model, quant, triples, filter, cfg))
}

/// Two-stage top-k tails of `(h, r, ?)`: coarse-select `candidates`
/// entities, rescore them exactly, order with the reference
/// [`crate::ranking::top_k`] comparator. Certified answers equal the
/// full-table reference byte for byte.
///
/// # Panics
/// Panics when `candidates == 0` or on a quant/model shape mismatch.
pub fn two_stage_top_k_tails<M: FactorScorer + ?Sized>(
    model: &M,
    quant: QuantView<'_>,
    h: usize,
    r: usize,
    k: usize,
    candidates: usize,
) -> TwoStageTopK {
    two_stage_top_k(model, quant, true, h, r, k, candidates)
}

/// Two-stage top-k heads of `(?, r, t)` — the head-direction counterpart
/// of [`two_stage_top_k_tails`].
pub fn two_stage_top_k_heads<M: FactorScorer + ?Sized>(
    model: &M,
    quant: QuantView<'_>,
    r: usize,
    t: usize,
    k: usize,
    candidates: usize,
) -> TwoStageTopK {
    two_stage_top_k(model, quant, false, r, t, k, candidates)
}

fn two_stage_top_k<M: FactorScorer + ?Sized>(
    model: &M,
    quant: QuantView<'_>,
    tails: bool,
    x: usize,
    y: usize,
    k: usize,
    c: usize,
) -> TwoStageTopK {
    assert!(c > 0, "two_stage: candidate budget must be at least 1");
    assert_eq!(quant.n_rows(), model.n_entities(), "two_stage: quant table row count mismatch");
    assert_eq!(quant.dim(), model.dim(), "two_stage: quant table dimension mismatch");
    let dim = quant.dim();
    let mut qvec = vec![0.0f32; dim];
    if tails {
        model.tail_query_into(x, y, &mut qvec);
    } else {
        model.head_query_into(x, y, &mut qvec);
    }
    let mut qcodes = vec![0i8; dim];
    let rq = quantise_row_into(&qvec, &mut qcodes);
    let pq = QueryQuant::from_scale_l1(rq.scale, rq.l1, rq.finite, dim);
    let mut dots = vec![0i32; COARSE_CHUNK];
    let agg = table_aggregates(quant);
    let bufs = coarse_scan(quant, &qcodes, std::slice::from_ref(&pq), c, agg, &mut dots);
    let buf = &bufs[0];
    let mut entries: Vec<(usize, f32)> = buf
        .entries
        .iter()
        .map(|e| {
            let ei = e.1 as usize;
            (ei, vecops::dot(model.entity_row(ei), &qvec))
        })
        .collect();
    entries.sort_unstable_by(top_k_cmp);
    // How many entries the full-table reference would return.
    let kk = k.min(quant.n_rows());
    entries.truncate(k.min(entries.len()));
    let certified = if kk == 0 {
        true
    } else if entries.len() < kk {
        // Fewer candidates than the reference answer is long.
        false
    } else {
        let kth = entries[kk - 1].1;
        // A NaN k-th score certifies nothing (and under the finiteness +
        // overflow preconditions it cannot occur anyway).
        quant.all_finite()
            && pq.finite
            && buf.mag < OVERFLOW_GUARD
            && !kth.is_nan()
            && buf.bound < kth as f64
    };
    TwoStageTopK { entries, certified }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranking;
    use kg_models::{classics, BlmModel, Embeddings, LinkPredictor};

    fn model(seed: u64, n: usize, dim: usize) -> BlmModel {
        let mut rng = kg_linalg::SeededRng::new(seed);
        BlmModel::new(classics::complex(), Embeddings::init(n, 3, dim, &mut rng))
    }

    fn triples(n_e: usize, n_r: usize, n: usize, seed: u64) -> Vec<Triple> {
        let mut rng = kg_linalg::SeededRng::new(seed);
        (0..n)
            .map(|_| {
                Triple::new(rng.below(n_e) as u32, rng.below(n_r) as u32, rng.below(n_e) as u32)
            })
            .collect()
    }

    #[test]
    fn full_candidate_budget_reproduces_the_sequential_reference() {
        let m = model(7, 30, 8);
        let ts = triples(30, 3, 12, 11);
        let filter = FilterIndex::build(&ts);
        let table = quantise_scorer(&m);
        let two = evaluate_two_stage(&m, table.view(), &ts, &filter, TwoStageConfig::new(30));
        let reference = ranking::evaluate_sequential(&m, &ts, &filter);
        assert_eq!(two.metrics, reference);
        // With every entity a candidate the bound is -inf: all certified.
        assert_eq!(two.certified, two.metrics.n_queries);
    }

    #[test]
    fn certified_outcomes_match_per_query_reference_ranks() {
        let m = model(3, 64, 16);
        let ts = triples(64, 3, 20, 5);
        let filter = FilterIndex::build(&ts);
        let table = quantise_scorer(&m);
        for c in [1, 4, 16] {
            let outs = two_stage_outcomes(&m, table.view(), &ts, &filter, TwoStageConfig::new(c));
            let mut scores = vec![0.0f32; m.n_entities()];
            for (q, o) in outs.iter().enumerate() {
                let t = &ts[q / 2];
                let (target, known) = if q % 2 == 0 {
                    m.score_tails(t.h.idx(), t.r.idx(), &mut scores);
                    (t.t.idx(), filter.tails(t.h, t.r))
                } else {
                    m.score_heads(t.r.idx(), t.t.idx(), &mut scores);
                    (t.h.idx(), filter.heads(t.r, t.t))
                };
                assert_eq!(o.candidates.len(), c.min(m.n_entities()));
                if o.certified {
                    let want = ranking::filtered_rank(&scores, target, known);
                    assert_eq!(o.rank.to_bits(), want.to_bits(), "query {q} at C={c}");
                }
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_outcomes() {
        let m = model(9, 48, 8);
        let ts = triples(48, 3, 15, 2);
        let filter = FilterIndex::build(&ts);
        let table = quantise_scorer(&m);
        let base = two_stage_outcomes(&m, table.view(), &ts, &filter, TwoStageConfig::new(8));
        for threads in [2, 3, 7] {
            let got = two_stage_outcomes(
                &m,
                table.view(),
                &ts,
                &filter,
                TwoStageConfig::new(8).with_threads(threads),
            );
            assert_eq!(base, got, "{threads} threads");
        }
    }

    #[test]
    fn kernel_policy_does_not_change_outcomes() {
        // The two-stage path is policy-independent by construction: exact
        // integer coarse tier, undispatched per-candidate rescore. `Fast`
        // must therefore be a byte-level no-op.
        let m = model(9, 48, 8);
        let ts = triples(48, 3, 15, 2);
        let filter = FilterIndex::build(&ts);
        let table = quantise_scorer(&m);
        let base = two_stage_outcomes(
            &m,
            table.view(),
            &ts,
            &filter,
            TwoStageConfig::new(8).with_policy(KernelPolicy::Exact),
        );
        let fast = two_stage_outcomes(
            &m,
            table.view(),
            &ts,
            &filter,
            TwoStageConfig::new(8).with_policy(KernelPolicy::Fast),
        );
        assert_eq!(base, fast, "Fast must be a no-op for the two-stage path");
    }

    #[test]
    fn top_k_with_full_coverage_matches_the_reference() {
        let m = model(21, 40, 8);
        let table = quantise_scorer(&m);
        let mut scores = vec![0.0f32; m.n_entities()];
        m.score_tails(5, 1, &mut scores);
        let two = two_stage_top_k_tails(&m, table.view(), 5, 1, 10, 40);
        assert!(two.certified);
        assert_eq!(two.entries, ranking::top_k(&scores, 10));
        m.score_heads(2, 7, &mut scores);
        let two = two_stage_top_k_heads(&m, table.view(), 2, 7, 3, 40);
        assert!(two.certified);
        assert_eq!(two.entries, ranking::top_k(&scores, 3));
    }

    #[test]
    fn certified_top_k_matches_the_reference_at_small_budgets() {
        let m = model(13, 50, 16);
        let table = quantise_scorer(&m);
        let mut scores = vec![0.0f32; m.n_entities()];
        let mut certified = 0;
        for (h, r) in [(0, 0), (3, 1), (17, 2), (42, 0), (8, 1)] {
            for c in [2, 8, 25] {
                let two = two_stage_top_k_tails(&m, table.view(), h, r, 2, c);
                if two.certified {
                    certified += 1;
                    m.score_tails(h, r, &mut scores);
                    assert_eq!(two.entries, ranking::top_k(&scores, 2), "({h},{r}) C={c}");
                }
            }
        }
        assert!(certified > 0, "no budget certified anything — bound is vacuous");
    }

    #[test]
    fn nonfinite_rows_disable_certification_but_not_ranking() {
        let mut m = model(4, 20, 8);
        let dim = m.emb.dim();
        m.emb.ent.as_mut_slice()[3 * dim] = f32::NAN;
        let ts = triples(20, 3, 6, 8);
        let filter = FilterIndex::build(&ts);
        let table = quantise_scorer(&m);
        assert!(!table.all_finite());
        let outs = two_stage_outcomes(&m, table.view(), &ts, &filter, TwoStageConfig::new(20));
        assert!(outs.iter().all(|o| !o.certified));
        assert!(outs.iter().all(|o| o.rank >= 1.0));
    }

    #[test]
    #[should_panic(expected = "candidate budget must be at least 1")]
    fn zero_candidate_budget_is_rejected() {
        let m = model(1, 10, 8);
        let table = quantise_scorer(&m);
        let ts = triples(10, 3, 1, 1);
        let filter = FilterIndex::build(&ts);
        two_stage_outcomes(&m, table.view(), &ts, &filter, TwoStageConfig::new(0));
    }

    #[test]
    fn quantise_scorer_matches_the_contiguous_quantiser() {
        let m = model(17, 12, 8);
        let a = quantise_scorer(&m);
        let b = QuantTable::from_rows(m.emb.ent.as_slice(), 12, m.emb.dim());
        assert_eq!(a.view().codes(), b.view().codes());
        assert_eq!(a.view().scales(), b.view().scales());
        assert_eq!(a.view().l1_norms(), b.view().l1_norms());
        assert_eq!(a.all_finite(), b.all_finite());
    }
}

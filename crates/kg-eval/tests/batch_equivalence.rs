//! Equivalence suite for the batched scoring engine: batched filtered
//! ranking must reproduce the per-query reference path **bit-identically**
//! (same `RankMetrics` bytes, not approximately) for every shipped model
//! family, across block boundaries, filtering and degenerate tie cases.

use kg_core::{FilterIndex, Triple};
use kg_eval::ranking::{
    evaluate_parallel_with, evaluate_per_relation_with, evaluate_sequential, evaluate_with,
};
use kg_linalg::{KernelPolicy, SeededRng};
use kg_models::blm::classics;
use kg_models::nnm::{GenApprox, NnmConfig};
use kg_models::tdm::{RotatE, TdmConfig, TransE, TransH};
use kg_models::{BatchScorer, BlmModel, Embeddings, LinkPredictor};

const N_ENTITIES: usize = 50;
const N_RELATIONS: usize = 4;

/// A triple set long enough to cross several evaluation-block boundaries,
/// with repeated `(h, r)` and `(r, t)` groups so the filter actually bites.
fn triples(seed: u64) -> Vec<Triple> {
    let mut rng = SeededRng::new(seed);
    (0..150)
        .map(|i| {
            if i % 5 == 0 {
                // clustered queries: same (h, r), several known tails
                Triple::new(3, 1, rng.below(N_ENTITIES) as u32)
            } else {
                Triple::new(
                    rng.below(N_ENTITIES) as u32,
                    rng.below(N_RELATIONS) as u32,
                    rng.below(N_ENTITIES) as u32,
                )
            }
        })
        .collect()
}

fn assert_bit_identical(model: &(impl BatchScorer + Sync), name: &str) {
    let ts = triples(0xBEEF ^ name.len() as u64);
    let filter = FilterIndex::build(&ts);
    let batched = evaluate_with(KernelPolicy::Exact, model, &ts, &filter);
    let reference = evaluate_sequential(model, &ts, &filter);
    assert_eq!(batched, reference, "{name}: batched evaluate() diverged from reference");
    // Single-threaded parallel evaluation walks the same blocks in the same
    // order, so it must also match exactly.
    let par1 = evaluate_parallel_with(KernelPolicy::Exact, model, &ts, &filter, 1);
    assert_eq!(par1, reference, "{name}: evaluate_parallel(1) diverged from reference");
}

#[test]
fn every_classic_blm_spec_is_bit_identical() {
    let mut rng = SeededRng::new(42);
    for (name, spec) in classics::all() {
        let emb = Embeddings::init(N_ENTITIES, N_RELATIONS, 16, &mut rng);
        let model = BlmModel::new(spec, emb);
        assert_bit_identical(&model, name);
    }
}

#[test]
fn random_block_structures_are_bit_identical() {
    // Beyond the four classics: asymmetric structures with negative blocks.
    use kg_models::{Block, BlockSpec};
    let mut rng = SeededRng::new(7);
    let specs = [
        BlockSpec::new(vec![Block::new(0, 0, 0, 1), Block::new(1, 2, 3, -1)]),
        BlockSpec::new(vec![
            Block::new(0, 1, 2, -1),
            Block::new(2, 3, 0, 1),
            Block::new(3, 0, 1, -1),
            Block::new(1, 2, 3, 1),
        ]),
    ];
    for (i, spec) in specs.into_iter().enumerate() {
        let emb = Embeddings::init(N_ENTITIES, N_RELATIONS, 32, &mut rng);
        let model = BlmModel::new(spec, emb);
        assert_bit_identical(&model, &format!("random_spec_{i}"));
    }
}

#[test]
fn tdm_family_is_bit_identical() {
    let mut rng = SeededRng::new(9);
    let cfg = TdmConfig { dim: 16, epochs: 3, lr: 0.05, margin: 1.0, n_negatives: 2 };
    let ts = triples(0x7D);

    let mut transe = TransE::init(N_ENTITIES, N_RELATIONS, cfg, &mut rng);
    transe.train(&ts, &mut rng);
    assert_bit_identical(&transe, "TransE");

    let mut transh = TransH::init(N_ENTITIES, N_RELATIONS, cfg, &mut rng);
    transh.train(&ts, &mut rng);
    assert_bit_identical(&transh, "TransH");

    let mut rotate = RotatE::init(N_ENTITIES, N_RELATIONS, cfg, &mut rng);
    rotate.train(&ts, &mut rng);
    assert_bit_identical(&rotate, "RotatE");
}

#[test]
fn nnm_is_bit_identical() {
    let mut rng = SeededRng::new(10);
    let cfg = NnmConfig { dim: 16, epochs: 2, lr: 0.1, l2: 1e-4 };
    let mut nnm = GenApprox::init(N_ENTITIES, N_RELATIONS, cfg, &mut rng);
    nnm.train(&triples(0x11)[..40], &mut rng);
    assert_bit_identical(&nnm, "GenApprox");
}

/// The degenerate all-ties case: a constant scorer must keep the unbiased
/// half-tie ranks (the random expectation), identically in both paths.
#[test]
fn constant_scorer_ties_are_bit_identical() {
    struct Flat {
        n: usize,
    }
    impl LinkPredictor for Flat {
        fn n_entities(&self) -> usize {
            self.n
        }
        fn score_triple(&self, _: usize, _: usize, _: usize) -> f32 {
            0.25
        }
        fn score_tails(&self, _: usize, _: usize, out: &mut [f32]) {
            out.fill(0.25);
        }
        fn score_heads(&self, _: usize, _: usize, out: &mut [f32]) {
            out.fill(0.25);
        }
    }
    impl BatchScorer for Flat {}

    let model = Flat { n: N_ENTITIES };
    assert_bit_identical(&model, "Flat");
    // And the absolute value is the known closed form: with every candidate
    // tied, rank = 1 + (n - 1 - #filtered)/2 for each query.
    let ts = vec![Triple::new(0, 0, 1), Triple::new(0, 0, 2)];
    let filter = FilterIndex::build(&ts);
    let m = evaluate_with(KernelPolicy::Exact, &model, &ts, &filter);
    // tail queries: 2 known tails for (0,0) → one filtered besides target
    // → rank = 1 + 48/2 = 25; head queries: nothing else known → 1 + 49/2.
    let expect_tail = 25.0;
    let expect_head = 1.0 + 49.0 / 2.0;
    assert!((m.mr - (expect_tail + expect_head) / 2.0).abs() < 1e-12, "mr {}", m.mr);
}

#[test]
fn per_relation_breakdown_is_bit_identical_to_flat_slices() {
    let mut rng = SeededRng::new(12);
    let emb = Embeddings::init(N_ENTITIES, N_RELATIONS, 16, &mut rng);
    let model = BlmModel::new(classics::simple(), emb);
    let ts = triples(0x5EED);
    let filter = FilterIndex::build(&ts);
    let per = evaluate_per_relation_with(KernelPolicy::Exact, &model, &ts, &filter, N_RELATIONS);
    // Reference: evaluate each relation's triple subset on its own. Ranks
    // are per-triple quantities, so the per-relation breakdown must equal
    // the flat evaluation of the filtered subset exactly.
    for (r, per_metrics) in per.iter().enumerate() {
        let subset: Vec<Triple> = ts.iter().copied().filter(|t| t.r.idx() == r).collect();
        let reference = evaluate_sequential(&model, &subset, &filter);
        assert_eq!(*per_metrics, reference, "relation {r}");
    }
}

#[test]
fn multithreaded_parallel_matches_merged_reference_exactly() {
    // With explicit chunking, each worker's partial equals the sequential
    // partial of its chunk, so the merged result is deterministic given the
    // thread count. Check the 2-thread split against a hand-merged mirror.
    let mut rng = SeededRng::new(13);
    let emb = Embeddings::init(N_ENTITIES, N_RELATIONS, 16, &mut rng);
    let model = BlmModel::new(classics::complex(), emb);
    let ts = triples(0xA11);
    let filter = FilterIndex::build(&ts);
    for threads in [2, 3, 5] {
        let a = evaluate_parallel_with(KernelPolicy::Exact, &model, &ts, &filter, threads);
        let b = evaluate_parallel_with(KernelPolicy::Exact, &model, &ts, &filter, threads);
        assert_eq!(a, b, "parallel evaluation must be deterministic at {threads} threads");
        let seq = evaluate_with(KernelPolicy::Exact, &model, &ts, &filter);
        assert!((a.mrr - seq.mrr).abs() < 1e-12, "threads={threads}");
        assert_eq!(a.n_queries, seq.n_queries);
    }
}

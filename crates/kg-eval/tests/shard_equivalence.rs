//! Equivalence suite for entity-table-sharded parallel ranking: for **any**
//! model family, thread count and shard layout — including degenerate ones
//! — sharded [`evaluate_parallel`] / [`evaluate_parallel_sharded`] must
//! reproduce the per-query reference [`evaluate_sequential`]
//! **bit-identically** (same `RankMetrics` bytes, not approximately).
//!
//! This is the safety net every future scale-out PR inherits: shard scores
//! are bit-identical columns of the full-table path, and per-shard
//! `(greater, equal)` counts are integers whose merge is order-independent,
//! so nothing about scheduling, shard widths or thread counts may show in
//! the metrics. The properties below drive random models × random thread
//! counts × random (often degenerate) shard boundaries through that claim.

use kg_core::{FilterIndex, Triple};
use kg_eval::ranking::{
    evaluate_parallel_chunked_with, evaluate_parallel_sharded_with, evaluate_parallel_with,
    evaluate_sequential, shard_bounds,
};
use kg_linalg::{KernelPolicy, SeededRng};
use kg_models::blm::classics;
use kg_models::nnm::{GenApprox, NnmConfig};
use kg_models::rules::{RuleConfig, RuleModel};
use kg_models::tdm::{RotatE, TdmConfig, TransE, TransH};
use kg_models::{BatchScorer, BlmModel, Embeddings, LinkPredictor};
use proptest::prelude::*;

const N_ENTITIES: usize = 40;
const N_RELATIONS: usize = 3;

/// A triple set long enough to cross the 64-triple evaluation-block
/// boundary (ragged final block included), with repeated `(h, r)` groups so
/// the filtered protocol actually excludes candidates.
fn triples(seed: u64) -> Vec<Triple> {
    let mut rng = SeededRng::new(seed);
    (0..90)
        .map(|i| {
            if i % 4 == 0 {
                Triple::new(2, 1, rng.below(N_ENTITIES) as u32)
            } else {
                Triple::new(
                    rng.below(N_ENTITIES) as u32,
                    rng.below(N_RELATIONS) as u32,
                    rng.below(N_ENTITIES) as u32,
                )
            }
        })
        .collect()
}

/// Turn random cut points into legal shard bounds: sorted, clamped by the
/// mandatory 0 and `N_ENTITIES` endpoints. Duplicates survive on purpose —
/// they are zero-width shards, one of the degenerate cases under test.
fn bounds_from_cuts(mut cuts: Vec<usize>) -> Vec<usize> {
    cuts.push(0);
    cuts.push(N_ENTITIES);
    cuts.sort_unstable();
    cuts
}

fn assert_sharded_equivalent(model: &(impl BatchScorer + Sync), name: &str, bounds: &[usize]) {
    let ts = triples(0xC0FFEE ^ name.len() as u64);
    let filter = FilterIndex::build(&ts);
    let reference = evaluate_sequential(model, &ts, &filter);
    let sharded = evaluate_parallel_sharded_with(KernelPolicy::Exact, model, &ts, &filter, bounds);
    assert_eq!(sharded, reference, "{name}: sharded ranking diverged at bounds {bounds:?}");
}

/// The all-ties degenerate case: every candidate scores the same, so every
/// rank is pure tie-counting — the easiest place for a sharded count merge
/// to drift by one.
struct Flat {
    n: usize,
}

impl LinkPredictor for Flat {
    fn n_entities(&self) -> usize {
        self.n
    }
    fn score_triple(&self, _: usize, _: usize, _: usize) -> f32 {
        0.125
    }
    fn score_tails(&self, _: usize, _: usize, out: &mut [f32]) {
        out.fill(0.125);
    }
    fn score_heads(&self, _: usize, _: usize, out: &mut [f32]) {
        out.fill(0.125);
    }
}

impl BatchScorer for Flat {}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Classic BLM specs (row-restricted GEMM override) across random
    /// thread counts: the public `evaluate_parallel` entry point. The
    /// range deliberately runs past the core count of typical CI runners —
    /// oversubscribed crews (workers > cores) get preempted mid-pipeline,
    /// which is exactly the scheduling pressure that surfaces lane races.
    #[test]
    fn blm_classics_any_thread_count(spec_idx in 0usize..4, n_threads in 1usize..=16) {
        let (name, spec) = classics::all().swap_remove(spec_idx);
        let mut rng = SeededRng::new(0xB1 + spec_idx as u64);
        let model = BlmModel::new(spec, Embeddings::init(N_ENTITIES, N_RELATIONS, 16, &mut rng));
        let ts = triples(0xB1);
        let filter = FilterIndex::build(&ts);
        prop_assert_eq!(
            evaluate_parallel_with(KernelPolicy::Exact, &model, &ts, &filter, n_threads),
            evaluate_sequential(&model, &ts, &filter),
            "{} diverged at {} threads", name, n_threads
        );
    }

    /// Random (frequently degenerate) shard boundaries for a BLM: width-0
    /// shards, single-entity shards, ragged tails — all bit-identical.
    #[test]
    fn blm_random_shard_boundaries(
        seed in 0u64..1_000,
        cuts in prop::collection::vec(0usize..=N_ENTITIES, 0..6),
    ) {
        let mut rng = SeededRng::new(seed);
        let model = BlmModel::new(
            classics::complex(),
            Embeddings::init(N_ENTITIES, N_RELATIONS, 16, &mut rng),
        );
        let bounds = bounds_from_cuts(cuts);
        assert_sharded_equivalent(&model, "ComplEx", &bounds);
    }

    /// The TDM family across its native shard paths: TransE and TransH
    /// restrict their distance loops to shard rows, RotatE's paired-lane
    /// `(re, im)` kernel hoists the rotation per query — same guarantee,
    /// different kernels.
    #[test]
    fn tdm_family_random_shards(
        family in 0usize..3,
        n_threads in 1usize..=16,
        cuts in prop::collection::vec(0usize..=N_ENTITIES, 0..4),
    ) {
        let mut rng = SeededRng::new(0x7D + family as u64);
        let cfg = TdmConfig { dim: 12, ..Default::default() };
        let bounds = bounds_from_cuts(cuts);
        match family {
            0 => {
                let m = TransE::init(N_ENTITIES, N_RELATIONS, cfg, &mut rng);
                assert_sharded_equivalent(&m, "TransE", &bounds);
                assert_sharded_equivalent(&m, "TransE", &shard_bounds(N_ENTITIES, n_threads));
            }
            1 => {
                let m = TransH::init(N_ENTITIES, N_RELATIONS, cfg, &mut rng);
                assert_sharded_equivalent(&m, "TransH", &bounds);
            }
            _ => {
                let m = RotatE::init(N_ENTITIES, N_RELATIONS, cfg, &mut rng);
                assert_sharded_equivalent(&m, "RotatE", &bounds);
            }
        }
    }

    /// Through the public entry point, non-factorising models take the
    /// query-row-splitting mode (no redundant full-table passes) — still
    /// bit-identical at every thread count, including oversubscribed crews
    /// (up to 16 workers, more than most CI runners have cores).
    #[test]
    fn tdm_query_split_mode_any_thread_count(n_threads in 1usize..=16, seed in 0u64..1_000) {
        // With the whole TDM family sharding natively now, RuleModel is the
        // shipped model without native shard scoring, so it exercises the
        // query-row-splitting crew layout.
        let ts = triples(seed);
        let m = RuleModel::learn(&ts, N_ENTITIES, N_RELATIONS, RuleConfig::default());
        let filter = FilterIndex::build(&ts);
        prop_assert_eq!(
            evaluate_parallel_with(KernelPolicy::Exact, &m, &ts, &filter, n_threads),
            evaluate_sequential(&m, &ts, &filter),
            "RuleModel query-split mode diverged at {} threads", n_threads
        );
    }

    /// The Gen-Approx MLP (query-network forward + row-restricted GEMM
    /// override) across random thread counts and shard splits.
    #[test]
    fn nnm_random_shards(
        seed in 0u64..1_000,
        cuts in prop::collection::vec(0usize..=N_ENTITIES, 0..4),
    ) {
        let mut rng = SeededRng::new(seed);
        let cfg = NnmConfig { dim: 16, epochs: 0, lr: 0.1, l2: 1e-4 };
        let m = GenApprox::init(N_ENTITIES, N_RELATIONS, cfg, &mut rng);
        assert_sharded_equivalent(&m, "GenApprox", &bounds_from_cuts(cuts));
    }

    /// The constant scorer: all ties, every rank decided purely by the
    /// merged tie counts (and the filter), at every thread count and split.
    #[test]
    fn constant_scorer_all_ties(
        n_threads in 1usize..=16,
        cuts in prop::collection::vec(0usize..=N_ENTITIES, 0..6),
    ) {
        let model = Flat { n: N_ENTITIES };
        let ts = triples(0xF1A7);
        let filter = FilterIndex::build(&ts);
        let reference = evaluate_sequential(&model, &ts, &filter);
        prop_assert_eq!(evaluate_parallel_with(KernelPolicy::Exact, &model, &ts, &filter, n_threads), reference);
        prop_assert_eq!(
            evaluate_parallel_sharded_with(KernelPolicy::Exact, &model, &ts, &filter, &bounds_from_cuts(cuts)),
            reference
        );
    }
}

/// More workers than entities: `evaluate_parallel` must cap the shard count
/// at the table size and stay exact (a one-entity table included).
#[test]
fn thread_counts_beyond_table_size_are_exact() {
    let mut rng = SeededRng::new(0x5CA1E);
    let model = BlmModel::new(classics::simple(), Embeddings::init(6, 2, 8, &mut rng));
    let ts: Vec<Triple> = (0..10u32).map(|i| Triple::new(i % 6, i % 2, i * 5 % 6)).collect();
    let filter = FilterIndex::build(&ts);
    let reference = evaluate_sequential(&model, &ts, &filter);
    for n_threads in [7, 8, 16, 64] {
        assert_eq!(
            evaluate_parallel_with(KernelPolicy::Exact, &model, &ts, &filter, n_threads),
            reference,
            "{n_threads} threads over a 6-entity table"
        );
    }
}

/// Every shard degenerate at once: all width-0 but one, plus the all-ties
/// scorer, crossing an evaluation-block boundary.
#[test]
fn fully_degenerate_bounds_on_all_ties() {
    let model = Flat { n: N_ENTITIES };
    let ts = triples(0xDE6E);
    let filter = FilterIndex::build(&ts);
    let reference = evaluate_sequential(&model, &ts, &filter);
    let degenerate: Vec<usize> = vec![0, 0, 0, N_ENTITIES, N_ENTITIES, N_ENTITIES];
    assert_eq!(
        evaluate_parallel_sharded_with(KernelPolicy::Exact, &model, &ts, &filter, &degenerate),
        reference
    );
    let singletons = shard_bounds(N_ENTITIES, N_ENTITIES);
    assert_eq!(
        evaluate_parallel_sharded_with(KernelPolicy::Exact, &model, &ts, &filter, &singletons),
        reference
    );
}

/// Panics when asked to score tails for head entity `trip_on` — placed so
/// the trip happens in the **second** 64-query evaluation block, i.e. while
/// the pipelined crew is scoring block N+1 and the lead worker is still
/// converting block N's merged counts to ranks.
struct LateGrenade {
    n: usize,
    trip_on: usize,
}

impl LinkPredictor for LateGrenade {
    fn n_entities(&self) -> usize {
        self.n
    }
    fn score_triple(&self, _: usize, _: usize, _: usize) -> f32 {
        0.0
    }
    fn score_tails(&self, h: usize, _: usize, out: &mut [f32]) {
        assert!(h != self.trip_on, "grenade tripped");
        out.fill(0.0);
    }
    fn score_heads(&self, _: usize, _: usize, out: &mut [f32]) {
        out.fill(0.0);
    }
}

impl BatchScorer for LateGrenade {}

/// 70 triples = one full 64-query block plus a ragged second block; only
/// index 68 carries the tripping head, so block 1 scores cleanly in both
/// directions before the pipeline hits the grenade mid-overlap.
fn late_grenade_triples(trip_on: u32) -> Vec<Triple> {
    let mut ts: Vec<Triple> = (0..70u32).map(|i| Triple::new(i % 10, 0, (i + 1) % 10)).collect();
    ts[68] = Triple::new(trip_on, 0, 3);
    ts
}

/// A model panic while scoring block 2 — during block 1's rank conversion
/// in the double-buffered pipeline — must abort cleanly: no hung barrier
/// (the test would time out), original payload re-thrown on join.
/// Entity-shard mode: explicit bounds, every worker stages full rows, so
/// the whole crew trips at the same pipeline step.
#[test]
#[should_panic(expected = "grenade tripped")]
fn panic_in_second_block_aborts_pipeline_entity_mode() {
    let m = LateGrenade { n: 12, trip_on: 11 };
    let ts = late_grenade_triples(11);
    let filter = FilterIndex::build(&ts);
    evaluate_parallel_sharded_with(KernelPolicy::Exact, &m, &ts, &filter, &[0, 4, 8, 12]);
}

/// Same mid-pipeline grenade through the query-split crew layout: only the
/// worker that owns the tripping row panics; it must poison the crew so
/// everyone abandons the pipeline at the same barrier instead of deadlocking
/// on a missing participant.
#[test]
#[should_panic(expected = "grenade tripped")]
fn panic_in_second_block_aborts_pipeline_query_mode() {
    let m = LateGrenade { n: 12, trip_on: 11 };
    let ts = late_grenade_triples(11);
    let filter = FilterIndex::build(&ts);
    // LateGrenade has no native shard scoring → query-split mode.
    evaluate_parallel_with(KernelPolicy::Exact, &m, &ts, &filter, 4);
}

/// The chunked baseline stays deterministic and metric-equivalent (to
/// float merge rounding) — it is the microbench's comparison point, so keep
/// it honest too.
#[test]
fn chunked_baseline_still_agrees_to_rounding() {
    let mut rng = SeededRng::new(0xC4);
    let model =
        BlmModel::new(classics::analogy(), Embeddings::init(N_ENTITIES, N_RELATIONS, 16, &mut rng));
    let ts = triples(0xC4);
    let filter = FilterIndex::build(&ts);
    let reference = evaluate_sequential(&model, &ts, &filter);
    for n_threads in [2, 3, 5] {
        let chunked =
            evaluate_parallel_chunked_with(KernelPolicy::Exact, &model, &ts, &filter, n_threads);
        assert_eq!(
            chunked,
            evaluate_parallel_chunked_with(KernelPolicy::Exact, &model, &ts, &filter, n_threads)
        );
        assert!((chunked.mrr - reference.mrr).abs() < 1e-12);
        assert_eq!(chunked.n_queries, reference.n_queries);
    }
}

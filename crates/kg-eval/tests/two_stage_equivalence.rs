//! The two-stage equivalence suite (ISSUE acceptance): across random
//! models, candidate budgets and thread counts, every query whose coarse
//! pass recalls the exact winner set must return a byte-identical answer
//! to the sequential reference — and certification must imply that
//! recall. Also covers the image-backed model path end to end.

use kg_core::{FilterIndex, Triple};
use kg_eval::ranking;
use kg_eval::two_stage::{
    evaluate_two_stage, quantise_scorer, two_stage_outcomes, two_stage_top_k_tails, TwoStageConfig,
};
use kg_linalg::SeededRng;
use kg_models::{classics, BlmModel, BlockSpec, Embeddings, ImageBlmModel, LinkPredictor};

fn random_triples(n_e: usize, n_r: usize, n: usize, rng: &mut SeededRng) -> Vec<Triple> {
    (0..n)
        .map(|_| Triple::new(rng.below(n_e) as u32, rng.below(n_r) as u32, rng.below(n_e) as u32))
        .collect()
}

/// One query's reference view: its exact score row, target and known
/// list, in the same flattening order as `two_stage_outcomes` (per
/// triple: tails then heads).
struct RefQuery<'a> {
    scores: Vec<f32>,
    target: usize,
    known: &'a [kg_core::EntityId],
}

fn reference_queries<'a>(
    model: &dyn LinkPredictor,
    triples: &[Triple],
    filter: &'a FilterIndex,
) -> Vec<RefQuery<'a>> {
    let n = model.n_entities();
    let mut out = Vec::with_capacity(2 * triples.len());
    for t in triples {
        let mut scores = vec![0.0f32; n];
        model.score_tails(t.h.idx(), t.r.idx(), &mut scores);
        out.push(RefQuery { scores, target: t.t.idx(), known: filter.tails(t.h, t.r) });
        let mut scores = vec![0.0f32; n];
        model.score_heads(t.r.idx(), t.t.idx(), &mut scores);
        out.push(RefQuery { scores, target: t.h.idx(), known: filter.heads(t.r, t.t) });
    }
    out
}

/// The entities that decide this query's filtered rank: every
/// non-excluded entity (target and known positives aside) whose exact
/// score ties or beats the target's. NaN target scores have an empty
/// winner set — nothing compares to them, so rank 1 needs no recall.
fn winner_set(q: &RefQuery<'_>) -> Vec<usize> {
    let t_s = q.scores[q.target];
    q.scores
        .iter()
        .enumerate()
        .filter(|&(e, &s)| e != q.target && !q.known.iter().any(|k| k.idx() == e) && s >= t_s)
        .map(|(e, _)| e)
        .collect()
}

/// The acceptance sweep: random models × candidate budgets × thread
/// counts. Conditional bit-identity, certification soundness, full-recall
/// aggregate equality, thread invariance — plus per-query recall@C
/// accounting, printed so failures come with coverage context.
#[test]
fn recalled_queries_are_bit_identical_to_the_sequential_reference() {
    let specs: Vec<(&str, BlockSpec)> = vec![
        ("distmult", classics::distmult()),
        ("complex", classics::complex()),
        ("simple", classics::simple()),
        ("analogy", classics::analogy()),
    ];
    let mut conditional_checked = 0usize;
    let mut certified_total = 0usize;
    for (si, (name, spec)) in specs.into_iter().enumerate() {
        let (n_e, dim) = [(41, 8), (64, 16), (97, 8), (30, 32)][si];
        let mut rng = SeededRng::new(1000 + si as u64);
        let model = BlmModel::new(spec, Embeddings::init(n_e, 4, dim, &mut rng));
        let triples = random_triples(n_e, 4, 18, &mut rng);
        let filter = FilterIndex::build(&triples);
        let refs = reference_queries(&model, &triples, &filter);
        let table = quantise_scorer(&model);
        for c in [1usize, 5, 17, n_e] {
            let base =
                two_stage_outcomes(&model, table.view(), &triples, &filter, TwoStageConfig::new(c));
            assert_eq!(base.len(), refs.len());
            // Thread invariance: outcomes are byte-identical for every
            // worker count (ranks compared as bit patterns via PartialEq
            // on the full outcome, candidates included).
            for threads in [2usize, 4] {
                let got = two_stage_outcomes(
                    &model,
                    table.view(),
                    &triples,
                    &filter,
                    TwoStageConfig::new(c).with_threads(threads),
                );
                assert_eq!(base, got, "{name}: C={c}, {threads} threads");
            }
            let mut recalled = 0usize;
            for (qi, (out, rq)) in base.iter().zip(refs.iter()).enumerate() {
                let winners = winner_set(rq);
                let covered = winners.iter().all(|&w| out.candidates.contains(&(w as u32)));
                // Certification must imply the winner set was recalled —
                // this is the soundness of the u-bound.
                if out.certified {
                    certified_total += 1;
                    assert!(covered, "{name}: C={c} query {qi} certified but missed a winner");
                }
                // Conditional bit-identity: recalled winners ⇒ the rank
                // is the reference rank, as in the same f64 bits.
                if covered {
                    recalled += 1;
                    conditional_checked += 1;
                    let want = ranking::filtered_rank(&rq.scores, rq.target, rq.known);
                    assert_eq!(
                        out.rank.to_bits(),
                        want.to_bits(),
                        "{name}: C={c} query {qi} recalled its winners but rank {} != {want}",
                        out.rank
                    );
                }
                // Per-query recall@C against the exact top-10 — the
                // measured (not gated) recall the ISSUE asks the suite
                // to report.
                let top = ranking::top_k(&rq.scores, 10.min(n_e));
                let hit = top.iter().filter(|(e, _)| out.candidates.contains(&(*e as u32))).count();
                if c >= n_e {
                    assert_eq!(hit, top.len(), "{name}: full budget must recall everything");
                }
            }
            println!(
                "{name}: n={n_e} d={dim} C={c}: {recalled}/{} queries recalled their winner set",
                base.len()
            );
            // Full candidate budget ⇒ aggregate equality with the
            // sequential reference, byte for byte.
            if c >= n_e {
                assert_eq!(recalled, base.len());
                let agg = evaluate_two_stage(
                    &model,
                    table.view(),
                    &triples,
                    &filter,
                    TwoStageConfig::new(c).with_threads(3),
                );
                let want = ranking::evaluate_sequential(&model, &triples, &filter);
                assert_eq!(agg.metrics, want, "{name}: full-budget aggregate diverged");
                assert_eq!(agg.certified, base.len());
            }
        }
    }
    // The sweep must actually exercise the conditional branch and the
    // certifier, or the suite is vacuous.
    assert!(conditional_checked > 100, "only {conditional_checked} conditional checks ran");
    assert!(certified_total > 0, "certification never fired across the whole sweep");
}

/// The image-backed model must rank exactly like its in-memory source
/// through the two-stage path — same outcomes from the baked-in quant
/// segments as from a fresh quantisation, at every budget.
#[test]
fn image_backed_models_rank_identically_through_two_stage() {
    let mut rng = SeededRng::new(77);
    let model = BlmModel::new(classics::complex(), Embeddings::init(52, 3, 16, &mut rng));
    let triples = random_triples(52, 3, 14, &mut rng);
    let filter = FilterIndex::build(&triples);
    let bytes = kg_models::model_image_bytes(&model).expect("image build");
    let image = kg_table::Image::from_bytes(&bytes).expect("image parse");
    let im = ImageBlmModel::new(image).expect("image schema");
    let fresh = quantise_scorer(&model);
    for c in [3usize, 20, 52] {
        let cfg = TwoStageConfig::new(c).with_threads(2);
        let from_image = two_stage_outcomes(&im, im.quant(), &triples, &filter, cfg);
        let from_memory = two_stage_outcomes(&model, fresh.view(), &triples, &filter, cfg);
        assert_eq!(from_image, from_memory, "C={c}");
    }
    // Top-k through the image path matches the reference when certified.
    let mut scores = vec![0.0f32; 52];
    let two = two_stage_top_k_tails(&im, im.quant(), 7, 1, 5, 52);
    assert!(two.certified);
    model.score_tails(7, 1, &mut scores);
    assert_eq!(two.entries, ranking::top_k(&scores, 5));
}

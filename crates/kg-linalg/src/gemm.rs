//! Batched scoring kernels: cache-blocked GEMM variants.
//!
//! The ranking and training hot paths score *blocks* of queries against the
//! whole entity table. Done one query at a time ([`Mat::gemv`]), every query
//! streams the full `n × d` table through the cache; done as a block, a tile
//! of entity rows is loaded once and reused across every query in the block,
//! which is where the batched engine's speedup comes from.
//!
//! **Bit-identity contract.** Both kernels compute each output element with
//! exactly the same floating-point operations, in exactly the same order, as
//! the per-query kernels they replace:
//!
//! * [`gemm_nt`] row `i`, column `j` equals `vecops::dot(a_i, b_j)` — the
//!   same full-length sequential dot product [`Mat::gemv`] performs, so a
//!   batched score block matches per-query GEMV scores bit for bit;
//! * [`gemm_acc_t`] row `i` equals [`Mat::gemv_t`] applied to row `i` of the
//!   coefficient block — the same `axpy` accumulation over table rows in the
//!   same row order.
//!
//! Blocking therefore only reorders *which output is computed when*, never
//! how any single output is computed. The equivalence suite in
//! `kg-eval/tests/batch_equivalence.rs` and the proptests here pin this down.
//!
//! **Policy-based dispatch.** Each kernel exists in three implementations:
//! the portable scalar reference (kept public as [`gemm_nt_scalar`],
//! [`gemm_nt_rows_scalar`], [`gemm_acc_t_scalar`],
//! [`gemm_acc_t_rows_scalar`] for A/B benchmarking and
//! equivalence testing), the bit-identical explicit AVX2 kernels in
//! [`crate::simd::avx2`], and the relaxed-precision FMA kernels in
//! [`crate::simd::avx2fma`]. Which one runs is chosen by the
//! [`KernelPolicy`] a caller passes to the `*_with` entry points
//! ([`gemm_nt_with`], [`gemm_nt_rows_with`], [`gemm_nt_slice_with`],
//! [`gemm_nt_rows_slice_with`], [`gemm_acc_t_with`],
//! [`gemm_acc_t_rows_with`]); the plain entry
//! points are hard [`KernelPolicy::Exact`] wrappers, so every pre-policy
//! call site keeps the bit-identity contract unchanged.
//!
//! Under `Exact`, both backends produce bit-identical bytes: the scalar
//! kernels vectorise across *independent outputs* (the `NT_UNROLL`
//! accumulator chains), so the AVX2 kernels assign one lane per output
//! and use separate multiply and add intrinsics — no FMA contraction,
//! lane-per-output only. Under [`KernelPolicy::Fast`] the FMA kernels may
//! contract multiply-adds and split one output's reduction across several
//! chains — scores then agree with `Exact` only to a relative error bound
//! pinned by the relaxed-equivalence suite (`tests/relaxed_fast.rs`).
//! `KG_FORCE_SCALAR` pins the scalar reference for **every** policy; on
//! CPUs without FMA, `Fast` degrades to the exact kernels. See
//! [`crate::simd`] for the full contract and resolution rules.

use crate::matrix::Mat;
use crate::simd;
use crate::simd::KernelPolicy;
use crate::vecops;

/// Entity-table rows per tile. The tile is transposed once into the
/// thread-local scratch (`NT_ROW_TILE · k` floats — 8 KiB at the search
/// dimension d = 64) and then reused by every query of the block.
pub(crate) const NT_ROW_TILE: usize = 32;

/// Entity rows computed concurrently per query: one SIMD-friendly group.
/// Each row keeps its own strict sequential accumulator (bit-identity);
/// the width buys lane-parallelism across the FP-add latency chain that
/// serialises a lone dot product — and maps one-to-one onto the 8 `f32`
/// lanes of an AVX2 register in the explicit backend.
pub(crate) const NT_UNROLL: usize = 8;

thread_local! {
    /// Transposed-tile scratch for [`gemm_nt`], grown on demand so the
    /// steady-state kernel allocates nothing. Shared by both backends via
    /// [`with_tile_scratch`].
    static TILE_SCRATCH: std::cell::RefCell<Vec<f32>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Run `f` over this thread's transposed-tile scratch, grown to
/// `NT_ROW_TILE · k` floats — the single scratch both the scalar and the
/// AVX2 `gemm_nt` drivers use, so backends never differ in allocation
/// behaviour.
pub(crate) fn with_tile_scratch<R>(k: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    TILE_SCRATCH.with(|scratch| {
        let mut scratch = scratch.borrow_mut();
        if scratch.len() < NT_ROW_TILE * k {
            scratch.resize(NT_ROW_TILE * k, 0.0);
        }
        f(&mut scratch[..NT_ROW_TILE * k])
    })
}

/// The shape preconditions every `gemm_nt_rows` backend enforces —
/// defined once so the backends cannot drift in what they accept or in
/// the panic messages the tests pin. The table is a raw `n × k` row-major
/// slice so memory-mapped tables (no [`Mat`] behind them) share the same
/// checks.
pub(crate) fn check_nt_rows_shapes(
    a: &[f32],
    m: usize,
    k: usize,
    bs: &[f32],
    n: usize,
    rows: &std::ops::Range<usize>,
    out: &[f32],
) {
    assert_eq!(a.len(), m * k, "gemm_nt: A shape mismatch");
    assert_eq!(bs.len(), n * k, "gemm_nt: table shape mismatch");
    assert!(
        rows.start <= rows.end && rows.end <= n,
        "gemm_nt: row range {rows:?} out of bounds for {n} table rows"
    );
    assert_eq!(out.len(), m * rows.len(), "gemm_nt: out shape mismatch");
}

/// Transpose table rows `j0..j1` of `bs` (row stride `k`) into the tile:
/// `tile[c·NT_ROW_TILE + u] = B[j0+u][c]`, so the `NT_UNROLL` operands of
/// inner-loop step `c` sit contiguously. Copies only — no arithmetic — and
/// defined once so both backends score the identical tile layout.
pub(crate) fn transpose_tile(bs: &[f32], k: usize, j0: usize, j1: usize, tile: &mut [f32]) {
    for u in 0..(j1 - j0) {
        let b_row = &bs[(j0 + u) * k..(j0 + u + 1) * k];
        for (c, &v) in b_row.iter().enumerate() {
            tile[c * NT_ROW_TILE + u] = v;
        }
    }
}

/// `out = A · Bᵀ` where `A` is an `m × k` row-major slice of query vectors
/// and `B` is the `n × k` entity table: `out[i·n + j] = ⟨a_i, b_j⟩`.
///
/// Each output element is `vecops::dot(a_i, b_j)` — the same multiplies
/// and the same strictly-sequential additions in the same index order —
/// so a batched score block is bit-identical to scoring query `i` with
/// [`Mat::gemv`] against `B`. The kernel is still much faster: a tile of
/// `NT_ROW_TILE` table rows is transposed once (amortised over the whole
/// query block), turning the `NT_UNROLL` per-element row operands into a
/// single contiguous load, and the `NT_UNROLL` independent accumulator
/// chains vectorise where the per-query path is latency-bound on one chain.
///
/// # Panics
/// Panics when the slice lengths disagree with `m`, `k` and `b`'s shape.
pub fn gemm_nt(a: &[f32], m: usize, k: usize, b: &Mat, out: &mut [f32]) {
    gemm_nt_with(KernelPolicy::Exact, a, m, k, b, out);
}

/// [`gemm_nt`] under an explicit [`KernelPolicy`]: `Exact` is the plain
/// entry point's bit-identity contract; `Fast` may run the FMA kernels
/// (relaxed rounding, same shape semantics).
///
/// # Panics
/// Same shape panics as [`gemm_nt`].
pub fn gemm_nt_with(policy: KernelPolicy, a: &[f32], m: usize, k: usize, b: &Mat, out: &mut [f32]) {
    gemm_nt_rows_with(policy, a, m, k, b, 0..b.rows(), out);
}

/// The scalar reference backend of [`gemm_nt`], bypassing dispatch. Public
/// for A/B benchmarking and backend-equivalence tests; every byte of `out`
/// equals the dispatched kernel's.
pub fn gemm_nt_scalar(a: &[f32], m: usize, k: usize, b: &Mat, out: &mut [f32]) {
    gemm_nt_rows_scalar(a, m, k, b, 0..b.rows(), out);
}

/// Row-tile-range variant of [`gemm_nt`]: score the query block against only
/// the entity rows `rows = j_0..j_1` of `B`, writing a **shard-local**
/// row-major `m × rows.len()` block:
/// `out[i·w + (j − j_0)] = ⟨a_i, b_j⟩` with `w = rows.len()`.
///
/// This is the kernel behind entity-table sharding: each worker owns a
/// contiguous row range of the table and scores it into its own compact
/// block, so one tile of entity rows stays resident in *that worker's*
/// private cache across the whole query block. Every output element is the
/// same strict sequential `vecops::dot(a_i, b_j)` as the full-table kernel
/// — shard boundaries (like tile boundaries) only change which elements are
/// computed where, never their value, so concatenating shard blocks over a
/// partition of `0..b.rows()` reproduces [`gemm_nt`]'s output bit for bit.
///
/// An empty range is a no-op on an empty `out`.
///
/// # Panics
/// Panics when the slice lengths disagree with `m`, `k`, `rows` and `b`'s
/// shape, or when `rows` is decreasing or exceeds `b.rows()`.
pub fn gemm_nt_rows(
    a: &[f32],
    m: usize,
    k: usize,
    b: &Mat,
    rows: std::ops::Range<usize>,
    out: &mut [f32],
) {
    gemm_nt_rows_with(KernelPolicy::Exact, a, m, k, b, rows, out);
}

/// [`gemm_nt_rows`] under an explicit [`KernelPolicy`]. Under `Fast` the
/// shard property weakens with the precision: shard blocks still equal the
/// corresponding columns of the same-policy full-table call (the kernels
/// are deterministic and tile-local), but only the `Exact` tier promises
/// bit-equality to the per-query reference.
///
/// # Panics
/// Same shape panics as [`gemm_nt_rows`].
pub fn gemm_nt_rows_with(
    policy: KernelPolicy,
    a: &[f32],
    m: usize,
    k: usize,
    b: &Mat,
    rows: std::ops::Range<usize>,
    out: &mut [f32],
) {
    assert_eq!(b.cols(), k, "gemm_nt: inner dimension mismatch");
    gemm_nt_rows_slice_with(policy, a, m, k, b.as_slice(), b.rows(), rows, out);
}

/// The scalar reference backend of [`gemm_nt_rows`], bypassing dispatch.
/// Public for A/B benchmarking and backend-equivalence tests; every byte
/// of `out` equals the dispatched kernel's.
///
/// # Panics
/// Same shape panics as [`gemm_nt_rows`].
pub fn gemm_nt_rows_scalar(
    a: &[f32],
    m: usize,
    k: usize,
    b: &Mat,
    rows: std::ops::Range<usize>,
    out: &mut [f32],
) {
    assert_eq!(b.cols(), k, "gemm_nt: inner dimension mismatch");
    gemm_nt_rows_slice_scalar(a, m, k, b.as_slice(), b.rows(), rows, out);
}

/// Raw-slice core of [`gemm_nt_rows`]: the table is an `n × k` row-major
/// `f32` slice rather than a [`Mat`]. This is the zero-copy entry point
/// for memory-mapped model images — a table living inside an mmap'd file
/// scores without being copied into an owned matrix first. [`gemm_nt_rows`]
/// is a thin wrapper over this kernel, so both paths are bit-identical by
/// construction.
///
/// # Panics
/// Panics when the slice lengths disagree with `m`, `k`, `n` and `rows`,
/// or when `rows` is decreasing or exceeds `n`.
pub fn gemm_nt_rows_slice(
    a: &[f32],
    m: usize,
    k: usize,
    bs: &[f32],
    n: usize,
    rows: std::ops::Range<usize>,
    out: &mut [f32],
) {
    gemm_nt_rows_slice_with(KernelPolicy::Exact, a, m, k, bs, n, rows, out);
}

/// [`gemm_nt_rows_slice`] under an explicit [`KernelPolicy`] — the single
/// dispatch point every `gemm_nt*` entry funnels through.
///
/// # Panics
/// Same shape panics as [`gemm_nt_rows_slice`].
// The raw-slice signature is already at clippy's argument limit; the
// policy parameter pushes it one over, and bundling the shape arguments
// into a struct would break the symmetry with every other gemm entry.
#[allow(clippy::too_many_arguments)]
pub fn gemm_nt_rows_slice_with(
    policy: KernelPolicy,
    a: &[f32],
    m: usize,
    k: usize,
    bs: &[f32],
    n: usize,
    rows: std::ops::Range<usize>,
    out: &mut [f32],
) {
    match policy.resolve() {
        // SAFETY: the AVX2/FMA implementations are only ever resolved
        // after runtime feature detection confirmed CPU support.
        #[cfg(target_arch = "x86_64")]
        simd::ResolvedKernel::Avx2 => unsafe {
            simd::avx2::gemm_nt_rows_slice(a, m, k, bs, n, rows, out)
        },
        #[cfg(target_arch = "x86_64")]
        simd::ResolvedKernel::Avx2Fma => unsafe {
            simd::avx2fma::gemm_nt_rows_slice(a, m, k, bs, n, rows, out)
        },
        _ => gemm_nt_rows_slice_scalar(a, m, k, bs, n, rows, out),
    }
}

/// Full-table convenience wrapper over [`gemm_nt_rows_slice`] — the
/// raw-slice analogue of [`gemm_nt`].
///
/// # Panics
/// Same shape panics as [`gemm_nt_rows_slice`].
pub fn gemm_nt_slice(a: &[f32], m: usize, k: usize, bs: &[f32], n: usize, out: &mut [f32]) {
    gemm_nt_rows_slice(a, m, k, bs, n, 0..n, out);
}

/// [`gemm_nt_slice`] under an explicit [`KernelPolicy`].
///
/// # Panics
/// Same shape panics as [`gemm_nt_rows_slice`].
pub fn gemm_nt_slice_with(
    policy: KernelPolicy,
    a: &[f32],
    m: usize,
    k: usize,
    bs: &[f32],
    n: usize,
    out: &mut [f32],
) {
    gemm_nt_rows_slice_with(policy, a, m, k, bs, n, 0..n, out);
}

/// The scalar reference backend of [`gemm_nt_rows_slice`], bypassing
/// dispatch. Public for A/B benchmarking and backend-equivalence tests.
///
/// # Panics
/// Same shape panics as [`gemm_nt_rows_slice`].
pub fn gemm_nt_rows_slice_scalar(
    a: &[f32],
    m: usize,
    k: usize,
    bs: &[f32],
    n: usize,
    rows: std::ops::Range<usize>,
    out: &mut [f32],
) {
    check_nt_rows_shapes(a, m, k, bs, n, &rows, out);
    let width = rows.len();
    with_tile_scratch(k, |tile| {
        let mut j0 = rows.start;
        while j0 < rows.end {
            let j1 = (j0 + NT_ROW_TILE).min(rows.end);
            let groups = (j1 - j0) / NT_UNROLL;
            transpose_tile(bs, k, j0, j1, tile);
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                let out_row = &mut out[i * width..(i + 1) * width];
                let col0 = j0 - rows.start;
                for g in 0..groups {
                    // NT_UNROLL independent strict dots sharing each a[c].
                    let mut acc = [0.0f32; NT_UNROLL];
                    let base = g * NT_UNROLL;
                    for (c, &av) in a_row.iter().enumerate() {
                        let lanes = &tile[c * NT_ROW_TILE + base..][..NT_UNROLL];
                        for u in 0..NT_UNROLL {
                            acc[u] += av * lanes[u];
                        }
                    }
                    out_row[col0 + base..col0 + base + NT_UNROLL].copy_from_slice(&acc);
                }
                // Ragged tail of the tile: plain dots.
                for j in (j0 + groups * NT_UNROLL)..j1 {
                    out_row[j - rows.start] = vecops::dot(a_row, &bs[j * k..(j + 1) * k]);
                }
            }
            j0 = j1;
        }
    });
}

/// Batched transposed product: for each of the `m` coefficient rows of `s`
/// (each `n` long), compute `out_i = Bᵀ s_i`, i.e.
/// `out[i·k + c] = Σ_r s[i·n + r] · b[r][c]`, accumulating over table rows
/// `r` in increasing order — bit-identical to calling [`Mat::gemv_t`] once
/// per row. `B` is streamed through the cache once for the whole block
/// instead of once per row.
///
/// # Panics
/// Panics when the slice lengths disagree with `m` and `b`'s shape.
pub fn gemm_acc_t(s: &[f32], m: usize, b: &Mat, out: &mut [f32]) {
    gemm_acc_t_with(KernelPolicy::Exact, s, m, b, out);
}

/// [`gemm_acc_t`] under an explicit [`KernelPolicy`]: `Fast` may fuse the
/// per-element multiply-add (same accumulation order over table rows,
/// contracted rounding).
///
/// # Panics
/// Same shape panics as [`gemm_acc_t`].
pub fn gemm_acc_t_with(policy: KernelPolicy, s: &[f32], m: usize, b: &Mat, out: &mut [f32]) {
    match policy.resolve() {
        // SAFETY: the AVX2/FMA implementations are only ever resolved
        // after runtime feature detection confirmed CPU support.
        #[cfg(target_arch = "x86_64")]
        simd::ResolvedKernel::Avx2 => unsafe { simd::avx2::gemm_acc_t(s, m, b, out) },
        #[cfg(target_arch = "x86_64")]
        simd::ResolvedKernel::Avx2Fma => unsafe { simd::avx2fma::gemm_acc_t(s, m, b, out) },
        _ => gemm_acc_t_scalar(s, m, b, out),
    }
}

/// The scalar reference backend of [`gemm_acc_t`], bypassing dispatch.
/// Public for A/B benchmarking and backend-equivalence tests; every byte
/// of `out` equals the dispatched kernel's.
///
/// # Panics
/// Same shape panics as [`gemm_acc_t`].
pub fn gemm_acc_t_scalar(s: &[f32], m: usize, b: &Mat, out: &mut [f32]) {
    let n = b.rows();
    let k = b.cols();
    assert_eq!(s.len(), m * n, "gemm_acc_t: S shape mismatch");
    assert_eq!(out.len(), m * k, "gemm_acc_t: out shape mismatch");
    vecops::zero(out);
    for r in 0..n {
        let b_row = b.row(r);
        for i in 0..m {
            let coeff = s[i * n + r];
            vecops::axpy(coeff, b_row, &mut out[i * k..(i + 1) * k]);
        }
    }
}

/// The shape preconditions every `gemm_acc_t_rows` backend enforces —
/// defined once (like [`check_nt_rows_shapes`]) so the backends cannot
/// drift in what they accept or in the panic messages the tests pin.
pub(crate) fn check_acc_t_rows_shapes(
    s: &[f32],
    m: usize,
    n: usize,
    k: usize,
    rows: &std::ops::Range<usize>,
    out: &[f32],
) {
    assert!(
        rows.start <= rows.end && rows.end <= n,
        "gemm_acc_t: row range {rows:?} out of bounds for {n} table rows"
    );
    assert_eq!(s.len(), m * rows.len(), "gemm_acc_t: S shape mismatch");
    assert_eq!(out.len(), m * k, "gemm_acc_t: out shape mismatch");
}

/// Row-range variant of [`gemm_acc_t`]: accumulate only the table rows
/// `rows = r_0..r_1`, with a **shard-compact** coefficient block —
/// `s[i·w + (r − r_0)]` is the coefficient of table row `r` for output row
/// `i` (`w = rows.len()`), i.e. the columns [`gemm_nt_rows`] wrote for the
/// same shard. `out` is a self-contained `m × k` partial:
/// `out[i·k + c] = Σ_{r ∈ rows} s_i[r] · b[r][c]`, accumulated over `r`
/// ascending.
///
/// This is the backward kernel behind owner-split sharded training: each
/// worker reduces its own entity shard into a private partial, and the lead
/// merges the partials **in ascending shard order**. The per-shard partial
/// is bit-identical to running the full kernel on just the shard's rows
/// (same `axpy` accumulation in the same row order), so the merged result
/// is deterministic for any worker count at a fixed shard layout — but,
/// unlike [`gemm_nt_rows`]'s disjoint columns, summing partials *re-orders
/// the additions* relative to the single full-table sweep, so the merge is
/// equal to [`gemm_acc_t`] only up to f32 reassociation (exception: the
/// trivial one-shard layout `0..n`, which is bit-identical).
///
/// An empty range zeroes `out` (the partial of an empty shard).
///
/// # Panics
/// Panics when the slice lengths disagree with `m`, `rows` and `b`'s
/// shape, or when `rows` is decreasing or exceeds `b.rows()`.
pub fn gemm_acc_t_rows(
    s: &[f32],
    m: usize,
    b: &Mat,
    rows: std::ops::Range<usize>,
    out: &mut [f32],
) {
    gemm_acc_t_rows_with(KernelPolicy::Exact, s, m, b, rows, out);
}

/// [`gemm_acc_t_rows`] under an explicit [`KernelPolicy`]: `Fast` may fuse
/// the per-element multiply-add (same accumulation order over the shard's
/// table rows, contracted rounding).
///
/// # Panics
/// Same shape panics as [`gemm_acc_t_rows`].
pub fn gemm_acc_t_rows_with(
    policy: KernelPolicy,
    s: &[f32],
    m: usize,
    b: &Mat,
    rows: std::ops::Range<usize>,
    out: &mut [f32],
) {
    match policy.resolve() {
        // SAFETY: the AVX2/FMA implementations are only ever resolved
        // after runtime feature detection confirmed CPU support.
        #[cfg(target_arch = "x86_64")]
        simd::ResolvedKernel::Avx2 => unsafe { simd::avx2::gemm_acc_t_rows(s, m, b, rows, out) },
        #[cfg(target_arch = "x86_64")]
        simd::ResolvedKernel::Avx2Fma => unsafe {
            simd::avx2fma::gemm_acc_t_rows(s, m, b, rows, out)
        },
        _ => gemm_acc_t_rows_scalar(s, m, b, rows, out),
    }
}

/// The scalar reference backend of [`gemm_acc_t_rows`], bypassing dispatch.
/// Public for A/B benchmarking and backend-equivalence tests; every byte
/// of `out` equals the dispatched kernel's.
///
/// # Panics
/// Same shape panics as [`gemm_acc_t_rows`].
pub fn gemm_acc_t_rows_scalar(
    s: &[f32],
    m: usize,
    b: &Mat,
    rows: std::ops::Range<usize>,
    out: &mut [f32],
) {
    let n = b.rows();
    let k = b.cols();
    check_acc_t_rows_shapes(s, m, n, k, &rows, out);
    let width = rows.len();
    vecops::zero(out);
    for (j, r) in rows.enumerate() {
        let b_row = b.row(r);
        for i in 0..m {
            let coeff = s[i * width + j];
            vecops::axpy(coeff, b_row, &mut out[i * k..(i + 1) * k]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;

    fn rand_mat(rng: &mut SeededRng, rows: usize, cols: usize) -> Mat {
        let mut m = Mat::zeros(rows, cols);
        rng.fill_normal(1.0, m.as_mut_slice());
        m
    }

    #[test]
    fn gemm_nt_is_bit_identical_to_per_query_gemv() {
        let mut rng = SeededRng::new(17);
        for (m, n, k) in [(1, 5, 8), (7, 33, 12), (4, 40, 16), (3, 1, 4)] {
            let a = rand_mat(&mut rng, m, k);
            let b = rand_mat(&mut rng, n, k);
            let mut batched = vec![0.0f32; m * n];
            gemm_nt(a.as_slice(), m, k, &b, &mut batched);
            let mut per_query = vec![0.0f32; n];
            for i in 0..m {
                b.gemv(a.row(i), &mut per_query);
                assert_eq!(
                    &batched[i * n..(i + 1) * n],
                    per_query.as_slice(),
                    "row {i} differs at shape ({m},{n},{k})"
                );
            }
        }
    }

    #[test]
    fn gemm_nt_crosses_tile_boundaries() {
        let mut rng = SeededRng::new(18);
        // n > NT_ROW_TILE so several tiles are exercised, incl. a ragged one
        let (m, n, k) = (5, NT_ROW_TILE * 2 + 3, 8);
        let a = rand_mat(&mut rng, m, k);
        let b = rand_mat(&mut rng, n, k);
        let mut batched = vec![0.0f32; m * n];
        gemm_nt(a.as_slice(), m, k, &b, &mut batched);
        for i in 0..m {
            for j in 0..n {
                assert_eq!(batched[i * n + j], vecops::dot(a.row(i), b.row(j)));
            }
        }
    }

    #[test]
    fn gemm_acc_t_is_bit_identical_to_per_row_gemv_t() {
        let mut rng = SeededRng::new(19);
        for (m, n, k) in [(1, 6, 4), (5, 21, 8), (3, 2, 12)] {
            let s = rand_mat(&mut rng, m, n);
            let b = rand_mat(&mut rng, n, k);
            let mut batched = vec![0.0f32; m * k];
            gemm_acc_t(s.as_slice(), m, &b, &mut batched);
            let mut per_row = vec![0.0f32; k];
            for i in 0..m {
                b.gemv_t(s.row(i), &mut per_row);
                assert_eq!(&batched[i * k..(i + 1) * k], per_row.as_slice(), "row {i}");
            }
        }
    }

    #[test]
    fn gemm_nt_rows_concatenates_to_full_kernel() {
        let mut rng = SeededRng::new(20);
        let (m, n, k) = (5, NT_ROW_TILE * 2 + 5, 8);
        let a = rand_mat(&mut rng, m, k);
        let b = rand_mat(&mut rng, n, k);
        let mut full = vec![0.0f32; m * n];
        gemm_nt(a.as_slice(), m, k, &b, &mut full);
        // Shard splits that are unaligned with both tile and unroll widths,
        // including a width-0 shard and a ragged final shard.
        for bounds in [vec![0, n], vec![0, 7, 7, 40, n], vec![0, 1, NT_ROW_TILE + 3, n]] {
            for w in bounds.windows(2) {
                let (j0, j1) = (w[0], w[1]);
                let width = j1 - j0;
                let mut shard = vec![0.0f32; m * width];
                gemm_nt_rows(a.as_slice(), m, k, &b, j0..j1, &mut shard);
                for i in 0..m {
                    assert_eq!(
                        &shard[i * width..(i + 1) * width],
                        &full[i * n + j0..i * n + j1],
                        "shard {j0}..{j1} row {i} differs from full kernel"
                    );
                }
            }
        }
    }

    #[test]
    fn gemm_nt_rows_empty_range_is_noop() {
        let b = Mat::zeros(6, 4);
        let a = vec![0.0f32; 2 * 4];
        let mut out: Vec<f32> = Vec::new();
        gemm_nt_rows(&a, 2, 4, &b, 3..3, &mut out);
        gemm_nt_rows(&a, 2, 4, &b, 0..0, &mut out);
    }

    #[test]
    fn gemm_nt_rows_narrower_than_unroll_uses_plain_dots() {
        let mut rng = SeededRng::new(21);
        let (m, n, k) = (3, 40, 8);
        let a = rand_mat(&mut rng, m, k);
        let b = rand_mat(&mut rng, n, k);
        // width 3 < NT_UNROLL: the whole shard is the ragged tail
        let (j0, j1) = (17, 20);
        let mut shard = vec![0.0f32; m * 3];
        gemm_nt_rows(a.as_slice(), m, k, &b, j0..j1, &mut shard);
        for i in 0..m {
            for j in j0..j1 {
                assert_eq!(shard[i * 3 + (j - j0)], vecops::dot(a.row(i), b.row(j)));
            }
        }
    }

    #[test]
    #[should_panic(expected = "row range")]
    fn gemm_nt_rows_rejects_out_of_bounds_range() {
        let b = Mat::zeros(3, 4);
        let mut out = vec![0.0f32; 2 * 2];
        gemm_nt_rows(&[0.0; 8], 2, 4, &b, 2..4, &mut out);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn gemm_nt_rejects_bad_shapes() {
        let b = Mat::zeros(3, 4);
        let mut out = vec![0.0f32; 6];
        gemm_nt(&[0.0; 10], 2, 5, &b, &mut out);
    }

    /// The dispatched kernels must agree with the scalar reference byte
    /// for byte — on an AVX2 machine this pits the SIMD backend against
    /// scalar across unaligned shapes, ragged shard ranges and NaN/±0.0
    /// payloads; on anything else it degenerates to scalar-vs-scalar and
    /// the proptests in `tests/proptests.rs` carry the cross-backend load.
    #[test]
    fn dispatched_kernels_match_scalar_backend_bit_for_bit() {
        let mut rng = SeededRng::new(99);
        for (m, n, k) in [(1, 5, 3), (7, 33, 12), (5, NT_ROW_TILE * 2 + 3, 17), (3, 70, 64)] {
            let a = rand_mat(&mut rng, m, k);
            let mut b = rand_mat(&mut rng, n, k);
            // Seed awkward payloads: NaN propagates through its own output
            // only, signed zeros must round-trip untouched.
            b.set(0, 0, f32::NAN);
            b.set(n / 2, k / 2, -0.0);
            let mut dispatched = vec![0.0f32; m * n];
            gemm_nt(a.as_slice(), m, k, &b, &mut dispatched);
            let mut scalar = vec![0.0f32; m * n];
            gemm_nt_scalar(a.as_slice(), m, k, &b, &mut scalar);
            assert_eq!(bits(&dispatched), bits(&scalar), "gemm_nt ({m},{n},{k})");

            // Ragged, unroll-unaligned shard range.
            let (j0, j1) = (1, n - 2);
            let mut shard = vec![0.0f32; m * (j1 - j0)];
            gemm_nt_rows(a.as_slice(), m, k, &b, j0..j1, &mut shard);
            let mut shard_scalar = vec![0.0f32; m * (j1 - j0)];
            gemm_nt_rows_scalar(a.as_slice(), m, k, &b, j0..j1, &mut shard_scalar);
            assert_eq!(bits(&shard), bits(&shard_scalar), "gemm_nt_rows ({m},{n},{k})");

            let s = rand_mat(&mut rng, m, n);
            let mut acc = vec![0.0f32; m * k];
            gemm_acc_t(s.as_slice(), m, &b, &mut acc);
            let mut acc_scalar = vec![0.0f32; m * k];
            gemm_acc_t_scalar(s.as_slice(), m, &b, &mut acc_scalar);
            assert_eq!(bits(&acc), bits(&acc_scalar), "gemm_acc_t ({m},{n},{k})");
        }
    }

    /// Extract the shard-compact coefficient columns `j0..j1` from a full
    /// `m × n` coefficient block.
    fn compact_cols(s: &Mat, j0: usize, j1: usize) -> Vec<f32> {
        let mut out = Vec::with_capacity(s.rows() * (j1 - j0));
        for i in 0..s.rows() {
            out.extend_from_slice(&s.row(i)[j0..j1]);
        }
        out
    }

    #[test]
    fn gemm_acc_t_rows_full_range_is_bit_identical_to_full_kernel() {
        let mut rng = SeededRng::new(23);
        for (m, n, k) in [(1, 6, 4), (5, 21, 8), (3, 2, 12), (4, 70, 64)] {
            let s = rand_mat(&mut rng, m, n);
            let b = rand_mat(&mut rng, n, k);
            let mut full = vec![0.0f32; m * k];
            gemm_acc_t(s.as_slice(), m, &b, &mut full);
            let mut ranged = vec![0.0f32; m * k];
            gemm_acc_t_rows(s.as_slice(), m, &b, 0..n, &mut ranged);
            assert_eq!(bits(&full), bits(&ranged), "full-range call ({m},{n},{k})");
        }
    }

    /// Each shard partial must equal the full kernel run on just that
    /// shard's table rows (same axpy accumulation, same row order) — the
    /// property that makes per-shard partials worker-count independent.
    #[test]
    fn gemm_acc_t_rows_partial_matches_sliced_full_kernel() {
        let mut rng = SeededRng::new(24);
        let (m, n, k) = (5, 37, 12);
        let s = rand_mat(&mut rng, m, n);
        let b = rand_mat(&mut rng, n, k);
        // Ragged cuts, incl. a width-0 shard and a ragged final shard.
        for w in [0usize, 3, 3, 20, n].windows(2) {
            let (j0, j1) = (w[0], w[1]);
            let compact = compact_cols(&s, j0, j1);
            let mut partial = vec![0.0f32; m * k];
            gemm_acc_t_rows(&compact, m, &b, j0..j1, &mut partial);
            // Reference: the full kernel over a table holding only the
            // shard's rows.
            let mut b_sub = Mat::zeros(j1 - j0, k);
            for (u, r) in (j0..j1).enumerate() {
                b_sub.row_mut(u).copy_from_slice(b.row(r));
            }
            let mut reference = vec![0.0f32; m * k];
            gemm_acc_t(&compact, m, &b_sub, &mut reference);
            assert_eq!(bits(&partial), bits(&reference), "shard {j0}..{j1}");
        }
    }

    /// Merging shard partials in ascending shard order reproduces the full
    /// kernel up to f32 reassociation at the shard cuts — and exactly when
    /// elementwise sums happen not to reassociate differently. The test
    /// pins the *determinism* half: two different groupings of the same
    /// cuts merge to the same bytes.
    #[test]
    fn gemm_acc_t_rows_merge_is_deterministic_and_close_to_full() {
        let mut rng = SeededRng::new(25);
        let (m, n, k) = (4, 33, 8);
        let s = rand_mat(&mut rng, m, n);
        let b = rand_mat(&mut rng, n, k);
        let mut full = vec![0.0f32; m * k];
        gemm_acc_t(s.as_slice(), m, &b, &mut full);
        let cuts = [0usize, 5, 13, 13, 28, n];
        let merge = |mergeable: &[usize]| {
            let mut acc = vec![0.0f32; m * k];
            let mut partial = vec![0.0f32; m * k];
            for w in mergeable.windows(2) {
                let compact = compact_cols(&s, w[0], w[1]);
                gemm_acc_t_rows(&compact, m, &b, w[0]..w[1], &mut partial);
                for (a, p) in acc.iter_mut().zip(&partial) {
                    *a += p;
                }
            }
            acc
        };
        let merged = merge(&cuts);
        let merged_again = merge(&cuts);
        assert_eq!(bits(&merged), bits(&merged_again), "merge must be deterministic");
        for (c, (&got, &want)) in merged.iter().zip(&full).enumerate() {
            let tol = 1e-4 * want.abs().max(1.0);
            assert!(
                (got - want).abs() <= tol,
                "merged[{c}] = {got} vs full {want} beyond reassociation noise"
            );
        }
    }

    #[test]
    fn gemm_acc_t_rows_dispatched_matches_scalar_bit_for_bit() {
        let mut rng = SeededRng::new(26);
        for (m, n, k) in [(1, 5, 3), (7, 33, 12), (3, 70, 64), (4, 41, 17)] {
            let b = {
                let mut b = rand_mat(&mut rng, n, k);
                // Awkward payloads, as in the full-kernel test.
                b.set(0, 0, f32::NAN);
                b.set(n / 2, k / 2, -0.0);
                b
            };
            let (j0, j1) = (1, n - 2);
            let s = rand_mat(&mut rng, m, j1 - j0);
            let mut dispatched = vec![0.0f32; m * k];
            gemm_acc_t_rows(s.as_slice(), m, &b, j0..j1, &mut dispatched);
            let mut scalar = vec![0.0f32; m * k];
            gemm_acc_t_rows_scalar(s.as_slice(), m, &b, j0..j1, &mut scalar);
            assert_eq!(bits(&dispatched), bits(&scalar), "gemm_acc_t_rows ({m},{n},{k})");
        }
    }

    #[test]
    fn gemm_acc_t_rows_empty_range_zeroes_out() {
        let b = Mat::zeros(6, 4);
        let mut out = vec![1.0f32; 2 * 4];
        gemm_acc_t_rows(&[], 2, &b, 3..3, &mut out);
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "row range")]
    fn gemm_acc_t_rows_rejects_out_of_bounds_range() {
        let b = Mat::zeros(3, 4);
        let mut out = vec![0.0f32; 2 * 4];
        gemm_acc_t_rows(&[0.0; 4], 2, &b, 2..4, &mut out);
    }

    /// The shared cross-backend comparator (see [`crate::simd::canonical_bits`]).
    fn bits(x: &[f32]) -> Vec<u32> {
        crate::simd::canonical_bits(x)
    }
}

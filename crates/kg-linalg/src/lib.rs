//! Dense math substrate for the AutoSF reproduction.
//!
//! The paper trains knowledge-graph embeddings with PyTorch on GPUs; every
//! scoring function in the AutoSF search space is a sum of triple dot
//! products, so all gradients are closed-form and a small, allocation-free
//! set of dense kernels is enough to reproduce the system on CPU:
//!
//! * [`vecops`] — vector primitives (dot, axpy, Hadamard, softmax) plus the
//!   branchless rank-count sweep [`vecops::count_cmp`] behind filtered
//!   ranking.
//! * [`matrix`] — row-major [`matrix::Mat`] with GEMV/GEMM used for
//!   score-all-entities ranking.
//! * [`gemm`] — cache-blocked batched kernels ([`gemm::gemm_nt`], its
//!   entity-shard variant [`gemm::gemm_nt_rows`] and [`gemm::gemm_acc_t`])
//!   behind the batched scoring engine; bit-identical per element to the
//!   per-query GEMV paths they replace.
//! * [`simd`] — the explicit AVX2 (and AVX2+FMA) implementations of the
//!   hot kernels plus the [`simd::KernelPolicy`] seam that selects them.
//!   [`KernelPolicy::Exact`] (the default everywhere) keeps the
//!   bit-identity contract: lane-per-output with separate mul/add, so
//!   SIMD output is **bit-identical** to scalar. [`KernelPolicy::Fast`]
//!   opts a call site into relaxed-precision FMA kernels with multi-lane
//!   accumulators — same inputs read, same outputs written, but the
//!   accumulation order and rounding differ, so results are only
//!   *relaxed-equivalent* to `Exact` (see the [`simd`] docs for the
//!   contract and the `relaxed_fast` suite that gates it).
//! * [`rng`] — seeded random initialisation (uniform, Box-Muller normal,
//!   Xavier/Glorot).
//! * [`optim`] — SGD / Adagrad / Adam with sparse row updates (Adagrad is the
//!   paper's optimizer, Sec. V-A2).
//! * [`mlp`] — a minimal multilayer perceptron with backprop, used by the
//!   SRF performance predictor (22-2-1), the one-hot predictor (96-8-1,
//!   Fig. 8) and the Gen-Approx baseline (Appendix D).
//! * [`qgemm`] — exact-integer i8 kernels ([`qgemm::dot_i8`],
//!   [`qgemm::gemm_i8_nt_rows`]) behind the quantised coarse ranking tier
//!   in `kg-table`/`kg-eval`; same scalar/AVX2 dispatch seam, with
//!   associative integer accumulation instead of an op-order contract.

// Index loops mirror the paper's subscript notation in numeric kernels.
#![allow(clippy::needless_range_loop)]
pub mod gemm;
pub mod matrix;
pub mod mlp;
pub mod optim;
pub mod qgemm;
pub mod rng;
pub mod simd;
pub mod vecops;

pub use matrix::Mat;
pub use mlp::{Activation, Mlp};
pub use optim::{Adagrad, Adam, Optimizer, Sgd};
pub use rng::SeededRng;
pub use simd::{KernelPolicy, ResolvedKernel};

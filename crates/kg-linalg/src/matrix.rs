//! Row-major dense matrix used for embedding tables and MLP weights.
//!
//! The performance-critical operation for link-prediction evaluation is
//! "score one query against every entity", which is a GEMV against the
//! entity-embedding table; [`Mat::gemv`] implements it with simple blocked
//! loops that the compiler auto-vectorizes in release builds.

use serde::{Deserialize, Serialize};

/// A dense row-major `rows × cols` matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Mat {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Matrix filled with `v`.
    pub fn filled(rows: usize, cols: usize, v: f32) -> Self {
        Mat { rows, cols, data: vec![v; rows * cols] }
    }

    /// Build from an existing buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "Mat::from_vec: size mismatch");
        Mat { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows, "row {} out of bounds ({} rows)", r, self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows, "row {} out of bounds ({} rows)", r, self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Entry mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Whole backing buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Whole backing buffer, mutable.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Set every entry to zero, keeping the allocation.
    pub fn clear(&mut self) {
        for v in &mut self.data {
            *v = 0.0;
        }
    }

    /// `out = self * x` (matrix-vector product). `out` must have `rows`
    /// entries and `x` must have `cols` entries.
    pub fn gemv(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "gemv: x length mismatch");
        assert_eq!(out.len(), self.rows, "gemv: out length mismatch");
        for r in 0..self.rows {
            out[r] = crate::vecops::dot(self.row(r), x);
        }
    }

    /// `out = selfᵀ * x` (transposed matrix-vector product). `out` must have
    /// `cols` entries and `x` must have `rows` entries.
    pub fn gemv_t(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.rows, "gemv_t: x length mismatch");
        assert_eq!(out.len(), self.cols, "gemv_t: out length mismatch");
        crate::vecops::zero(out);
        for r in 0..self.rows {
            crate::vecops::axpy(x[r], self.row(r), out);
        }
    }

    /// Rank-1 update `self += alpha * u vᵀ` (outer-product accumulate), used
    /// by MLP weight gradients.
    pub fn ger(&mut self, alpha: f32, u: &[f32], v: &[f32]) {
        assert_eq!(u.len(), self.rows, "ger: u length mismatch");
        assert_eq!(v.len(), self.cols, "ger: v length mismatch");
        for r in 0..self.rows {
            let a = alpha * u[r];
            crate::vecops::axpy(a, v, self.row_mut(r));
        }
    }

    /// Dense `self * other` producing a fresh matrix. Only used in tests and
    /// small predictor paths; the training loop never calls GEMM.
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.rows, "matmul: inner dimension mismatch");
        let mut out = Mat::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    let cur = out.get(i, j);
                    out.set(i, j, cur + a * other.get(k, j));
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Frobenius norm squared.
    pub fn frob_sq(&self) -> f32 {
        crate::vecops::norm2_sq(&self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Mat::zeros(2, 3);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn row_views_are_disjoint_slices() {
        let mut m = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        m.row_mut(1)[0] = 9.0;
        assert_eq!(m.get(1, 0), 9.0);
    }

    #[test]
    fn gemv_matches_manual() {
        let m = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut out = [0.0; 2];
        m.gemv(&[1.0, 1.0, 1.0], &mut out);
        assert_eq!(out, [6.0, 15.0]);
    }

    #[test]
    fn gemv_t_matches_transpose_gemv() {
        let m = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = m.transposed();
        let x = [1.0, -2.0];
        let mut a = [0.0; 3];
        let mut b = [0.0; 3];
        m.gemv_t(&x, &mut a);
        t.gemv(&x, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn ger_rank_one_update() {
        let mut m = Mat::zeros(2, 2);
        m.ger(2.0, &[1.0, 3.0], &[4.0, 5.0]);
        assert_eq!(m.as_slice(), &[8.0, 10.0, 24.0, 30.0]);
    }

    #[test]
    fn matmul_identity() {
        let m = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let id = Mat::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(m.matmul(&id), m);
        assert_eq!(id.matmul(&m), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Mat::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn frob_sq() {
        let m = Mat::from_vec(1, 2, vec![3.0, 4.0]);
        assert_eq!(m.frob_sq(), 25.0);
    }

    #[test]
    #[should_panic(expected = "gemv: x length mismatch")]
    fn gemv_length_mismatch_panics() {
        let m = Mat::zeros(2, 3);
        let mut out = [0.0; 2];
        m.gemv(&[1.0], &mut out);
    }
}

//! A minimal multilayer perceptron with explicit backpropagation.
//!
//! Three consumers in the reproduction:
//!
//! * the SRF performance predictor — a 22-2-1 regression network (Sec. IV-B3),
//! * the one-hot predictor variant — 96-8-1 (Fig. 8), and
//! * the Gen-Approx baseline of Fig. 6 — two 128-64-64 networks combining
//!   entity and relation embeddings (Appendix D). Gen-Approx needs gradients
//!   with respect to the *inputs* as well (the embeddings are trained
//!   through the network), so [`Mlp::backward`] returns the input gradient.

use crate::matrix::Mat;
use crate::optim::Optimizer;
use crate::rng::SeededRng;
use serde::{Deserialize, Serialize};

/// Supported activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// max(0, x)
    Relu,
    /// tanh(x)
    Tanh,
    /// logistic
    Sigmoid,
    /// identity (linear layer)
    Identity,
}

impl Activation {
    #[inline]
    fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => crate::vecops::sigmoid(x),
            Activation::Identity => x,
        }
    }

    /// Derivative expressed through the *activated* value `y = act(x)`,
    /// which is what the backward pass has at hand.
    #[inline]
    fn derivative_from_output(self, y: f32) -> f32 {
        match self {
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - y * y,
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Identity => 1.0,
        }
    }
}

/// One dense layer `y = act(W x + b)` with `W: out × in`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Dense {
    w: Mat,
    b: Vec<f32>,
    act: Activation,
}

/// A feed-forward network of dense layers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
}

/// Cached forward-pass activations (`acts[0]` is the input, `acts[i]` the
/// output of layer `i-1`).
#[derive(Debug, Clone)]
pub struct MlpCache {
    acts: Vec<Vec<f32>>,
}

impl MlpCache {
    /// The network output of this forward pass.
    pub fn output(&self) -> &[f32] {
        self.acts.last().expect("cache always has input layer")
    }
}

/// Per-layer gradients matching an [`Mlp`]'s shape.
#[derive(Debug, Clone)]
pub struct MlpGrads {
    dw: Vec<Mat>,
    db: Vec<Vec<f32>>,
}

impl MlpGrads {
    /// Reset all gradients to zero, keeping allocations.
    pub fn clear(&mut self) {
        for m in &mut self.dw {
            m.clear();
        }
        for b in &mut self.db {
            crate::vecops::zero(b);
        }
    }

    /// Scale every gradient by `alpha` (e.g. 1/batch).
    pub fn scale(&mut self, alpha: f32) {
        for m in &mut self.dw {
            crate::vecops::scale(alpha, m.as_mut_slice());
        }
        for b in &mut self.db {
            crate::vecops::scale(alpha, b);
        }
    }
}

impl Mlp {
    /// Build an MLP with the given layer `sizes` (e.g. `[22, 2, 1]`),
    /// `hidden` activation on all but the last layer and `output` activation
    /// on the last. Weights are Xavier-initialised from `rng`.
    ///
    /// # Panics
    /// Panics if fewer than two sizes are given.
    pub fn new(
        sizes: &[usize],
        hidden: Activation,
        output: Activation,
        rng: &mut SeededRng,
    ) -> Self {
        assert!(sizes.len() >= 2, "an MLP needs at least input and output sizes");
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for i in 0..sizes.len() - 1 {
            let (fan_in, fan_out) = (sizes[i], sizes[i + 1]);
            let mut w = Mat::zeros(fan_out, fan_in);
            rng.xavier_uniform(fan_in + fan_out, w.as_mut_slice());
            let act = if i + 2 == sizes.len() { output } else { hidden };
            layers.push(Dense { w, b: vec![0.0; fan_out], act });
        }
        Mlp { layers }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.layers.first().expect("non-empty").w.cols()
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("non-empty").w.rows()
    }

    /// Total number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.w.rows() * l.w.cols() + l.b.len()).sum()
    }

    /// Allocate a zeroed gradient buffer matching this network.
    pub fn zero_grads(&self) -> MlpGrads {
        MlpGrads {
            dw: self.layers.iter().map(|l| Mat::zeros(l.w.rows(), l.w.cols())).collect(),
            db: self.layers.iter().map(|l| vec![0.0; l.b.len()]).collect(),
        }
    }

    /// Plain forward pass.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        self.forward_cached(x).acts.pop().expect("output present")
    }

    /// Forward pass retaining intermediate activations for backprop.
    pub fn forward_cached(&self, x: &[f32]) -> MlpCache {
        assert_eq!(x.len(), self.input_dim(), "mlp forward: input dim mismatch");
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(x.to_vec());
        for layer in &self.layers {
            let prev = acts.last().expect("non-empty");
            let mut out = vec![0.0f32; layer.w.rows()];
            layer.w.gemv(prev, &mut out);
            for (o, b) in out.iter_mut().zip(layer.b.iter()) {
                *o = layer.act.apply(*o + *b);
            }
            acts.push(out);
        }
        MlpCache { acts }
    }

    /// Backpropagate `dloss_dout` (gradient of the loss w.r.t. the network
    /// output) through the cached forward pass, *accumulating* into `grads`,
    /// and return the gradient with respect to the input.
    pub fn backward(&self, cache: &MlpCache, dloss_dout: &[f32], grads: &mut MlpGrads) -> Vec<f32> {
        assert_eq!(dloss_dout.len(), self.output_dim(), "mlp backward: output dim mismatch");
        assert_eq!(cache.acts.len(), self.layers.len() + 1, "stale cache");
        let mut delta = dloss_dout.to_vec();
        for (li, layer) in self.layers.iter().enumerate().rev() {
            let out = &cache.acts[li + 1];
            // delta ∘= act'(out)
            for (d, &y) in delta.iter_mut().zip(out.iter()) {
                *d *= layer.act.derivative_from_output(y);
            }
            let input = &cache.acts[li];
            grads.dw[li].ger(1.0, &delta, input);
            crate::vecops::axpy(1.0, &delta, &mut grads.db[li]);
            // propagate: d_input = Wᵀ delta
            let mut next = vec![0.0f32; layer.w.cols()];
            layer.w.gemv_t(&delta, &mut next);
            delta = next;
        }
        delta
    }

    /// Apply accumulated gradients with the given optimizer (which must have
    /// been created with [`Mlp::param_count`] parameters). L2 weight decay
    /// `l2` is added to the weight gradients (not the biases).
    pub fn apply_grads(&mut self, grads: &MlpGrads, opt: &mut dyn Optimizer, l2: f32) {
        assert_eq!(opt.len(), self.param_count(), "optimizer sized for a different network");
        let mut offset = 0usize;
        for (li, layer) in self.layers.iter_mut().enumerate() {
            let wlen = layer.w.rows() * layer.w.cols();
            if l2 > 0.0 {
                let mut g = grads.dw[li].as_slice().to_vec();
                crate::vecops::axpy(l2, layer.w.as_slice(), &mut g);
                opt.update(offset, layer.w.as_mut_slice(), &g);
            } else {
                opt.update(offset, layer.w.as_mut_slice(), grads.dw[li].as_slice());
            }
            offset += wlen;
            opt.update(offset, &mut layer.b, &grads.db[li]);
            offset += grads.db[li].len();
        }
    }

    /// Convenience: one full-batch MSE regression step. Returns the mean
    /// squared error *before* the step. Used by the performance predictors,
    /// whose training sets are tiny (tens of points).
    pub fn mse_step(
        &mut self,
        inputs: &[Vec<f32>],
        targets: &[f32],
        opt: &mut dyn Optimizer,
        l2: f32,
    ) -> f32 {
        assert_eq!(inputs.len(), targets.len(), "mse_step: input/target mismatch");
        assert_eq!(self.output_dim(), 1, "mse_step expects a scalar output");
        if inputs.is_empty() {
            return 0.0;
        }
        let mut grads = self.zero_grads();
        let mut loss = 0.0f32;
        for (x, &t) in inputs.iter().zip(targets.iter()) {
            let cache = self.forward_cached(x);
            let y = cache.output()[0];
            let err = y - t;
            loss += err * err;
            self.backward(&cache, &[2.0 * err], &mut grads);
        }
        let inv = 1.0 / inputs.len() as f32;
        grads.scale(inv);
        self.apply_grads(&grads, opt, l2);
        loss * inv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;

    fn tiny_rng() -> SeededRng {
        SeededRng::new(1234)
    }

    #[test]
    fn shapes_and_param_count() {
        let mlp = Mlp::new(&[22, 2, 1], Activation::Tanh, Activation::Identity, &mut tiny_rng());
        assert_eq!(mlp.input_dim(), 22);
        assert_eq!(mlp.output_dim(), 1);
        assert_eq!(mlp.param_count(), 22 * 2 + 2 + 2 + 1);
    }

    #[test]
    fn forward_identity_single_layer_is_affine() {
        let mut mlp = Mlp::new(&[2, 1], Activation::Tanh, Activation::Identity, &mut tiny_rng());
        // overwrite with known weights
        mlp.layers[0].w.as_mut_slice().copy_from_slice(&[2.0, -1.0]);
        mlp.layers[0].b[0] = 0.5;
        let y = mlp.forward(&[3.0, 4.0]);
        assert!((y[0] - (2.0 * 3.0 - 4.0 + 0.5)).abs() < 1e-6);
    }

    /// Finite-difference check of the full backward pass, including the
    /// input gradient that Gen-Approx relies on.
    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = tiny_rng();
        let mlp = Mlp::new(&[4, 5, 3], Activation::Tanh, Activation::Identity, &mut rng);
        let x: Vec<f32> = (0..4).map(|i| 0.3 * (i as f32) - 0.5).collect();
        // loss = sum(output^2) / 2 -> dloss/dout = out
        let cache = mlp.forward_cached(&x);
        let dout: Vec<f32> = cache.output().to_vec();
        let mut grads = mlp.zero_grads();
        let dx = mlp.backward(&cache, &dout, &mut grads);

        let loss = |m: &Mlp, x: &[f32]| -> f32 {
            let y = m.forward(x);
            0.5 * crate::vecops::norm2_sq(&y)
        };
        let eps = 1e-3f32;
        // input gradient
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp[i] += eps;
            let mut xm = x.clone();
            xm[i] -= eps;
            let num = (loss(&mlp, &xp) - loss(&mlp, &xm)) / (2.0 * eps);
            assert!((num - dx[i]).abs() < 5e-3, "input grad {i}: fd {num} vs bp {}", dx[i]);
        }
        // a few weight gradients in layer 0
        for (r, c) in [(0, 0), (2, 3), (4, 1)] {
            let mut mp = mlp.clone();
            let v = mp.layers[0].w.get(r, c);
            mp.layers[0].w.set(r, c, v + eps);
            let mut mm = mlp.clone();
            mm.layers[0].w.set(r, c, v - eps);
            let num = (loss(&mp, &x) - loss(&mm, &x)) / (2.0 * eps);
            let bp = grads.dw[0].get(r, c);
            assert!((num - bp).abs() < 5e-3, "w grad ({r},{c}): fd {num} vs bp {bp}");
        }
    }

    #[test]
    fn mse_training_fits_linear_function() {
        let mut rng = tiny_rng();
        let mut mlp = Mlp::new(&[2, 8, 1], Activation::Tanh, Activation::Identity, &mut rng);
        let mut opt = Adam::new(mlp.param_count(), 0.02);
        // target: y = x0 - 2 x1
        let inputs: Vec<Vec<f32>> = (0..40)
            .map(|i| vec![((i % 7) as f32 - 3.0) / 3.0, ((i % 5) as f32 - 2.0) / 2.0])
            .collect();
        let targets: Vec<f32> = inputs.iter().map(|x| x[0] - 2.0 * x[1]).collect();
        let mut last = f32::INFINITY;
        for _ in 0..800 {
            opt.tick();
            last = mlp.mse_step(&inputs, &targets, &mut opt, 0.0);
        }
        assert!(last < 0.02, "final training MSE {last}");
    }

    #[test]
    fn relu_kills_negative_gradient() {
        assert_eq!(Activation::Relu.derivative_from_output(0.0), 0.0);
        assert_eq!(Activation::Relu.derivative_from_output(1.5), 1.0);
    }

    #[test]
    fn grads_clear_and_scale() {
        let mlp = Mlp::new(&[2, 2], Activation::Relu, Activation::Identity, &mut tiny_rng());
        let mut g = mlp.zero_grads();
        let cache = mlp.forward_cached(&[1.0, 1.0]);
        mlp.backward(&cache, &[1.0, 1.0], &mut g);
        g.scale(0.0);
        assert!(g.dw[0].as_slice().iter().all(|&v| v == 0.0));
        g.clear();
        assert!(g.db[0].iter().all(|&v| v == 0.0));
    }
}

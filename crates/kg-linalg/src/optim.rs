//! First-order optimizers with support for sparse (row-wise) updates.
//!
//! KGE training touches only the embedding rows present in a mini-batch, so
//! the optimizer API works on *(offset, slice)* pairs: the caller hands the
//! parameter slice it wants updated together with its offset into the flat
//! parameter space, and the optimizer keeps per-coordinate state (Adagrad
//! accumulators, Adam moments) indexed by that offset.
//!
//! Adagrad is the paper's optimizer ("we use Adagrad as the optimizer since
//! it tends to perform better", Sec. V-A2); Adam is used for the tiny
//! predictor MLP; plain SGD exists as a baseline and for tests.

/// A first-order optimizer over a flat parameter vector of fixed size.
pub trait Optimizer {
    /// Total number of parameters this optimizer tracks state for.
    fn len(&self) -> usize;

    /// True when tracking zero parameters.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Apply one update to `params`, which is the parameter sub-slice living
    /// at `offset` in the flat space, given the gradient `grad` of the same
    /// length. Implementations must not read or write state outside
    /// `[offset, offset + params.len())`.
    fn update(&mut self, offset: usize, params: &mut [f32], grad: &[f32]);

    /// Hook called once per epoch; learning-rate decay lives here.
    fn end_epoch(&mut self) {}

    /// Current effective base learning rate.
    fn learning_rate(&self) -> f32;
}

/// Plain SGD with optional multiplicative per-epoch decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    n: usize,
    lr: f32,
    decay: f32,
}

impl Sgd {
    /// `decay` multiplies the learning rate after every epoch (1.0 = none).
    pub fn new(n: usize, lr: f32, decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!(decay > 0.0 && decay <= 1.0, "decay must be in (0, 1]");
        Sgd { n, lr, decay }
    }
}

impl Optimizer for Sgd {
    fn len(&self) -> usize {
        self.n
    }

    fn update(&mut self, _offset: usize, params: &mut [f32], grad: &[f32]) {
        assert_eq!(params.len(), grad.len(), "sgd: grad length mismatch");
        for (p, g) in params.iter_mut().zip(grad.iter()) {
            *p -= self.lr * g;
        }
    }

    fn end_epoch(&mut self) {
        self.lr *= self.decay;
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

/// Adagrad with per-coordinate squared-gradient accumulators and optional
/// per-epoch learning-rate decay (the paper tunes a decay rate in
/// [0.99, 1.0]).
#[derive(Debug, Clone)]
pub struct Adagrad {
    accum: Vec<f32>,
    lr: f32,
    decay: f32,
    eps: f32,
}

impl Adagrad {
    /// Create for `n` parameters.
    pub fn new(n: usize, lr: f32, decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!(decay > 0.0 && decay <= 1.0, "decay must be in (0, 1]");
        Adagrad { accum: vec![0.0; n], lr, decay, eps: 1e-8 }
    }
}

impl Optimizer for Adagrad {
    fn len(&self) -> usize {
        self.accum.len()
    }

    fn update(&mut self, offset: usize, params: &mut [f32], grad: &[f32]) {
        assert_eq!(params.len(), grad.len(), "adagrad: grad length mismatch");
        assert!(offset + params.len() <= self.accum.len(), "adagrad: offset out of range");
        let acc = &mut self.accum[offset..offset + params.len()];
        for i in 0..params.len() {
            let g = grad[i];
            acc[i] += g * g;
            params[i] -= self.lr * g / (acc[i].sqrt() + self.eps);
        }
    }

    fn end_epoch(&mut self) {
        self.lr *= self.decay;
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

/// Adam with bias correction. Step count is global (incremented per epoch
/// would under-correct, so we count calls per coordinate group via a shared
/// step counter advanced by [`Adam::tick`] or implicitly on `end_epoch`).
#[derive(Debug, Clone)]
pub struct Adam {
    m: Vec<f32>,
    v: Vec<f32>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: i32,
}

impl Adam {
    /// Create for `n` parameters with standard betas (0.9, 0.999).
    pub fn new(n: usize, lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam { m: vec![0.0; n], v: vec![0.0; n], lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0 }
    }

    /// Advance the global step (call once per optimizer step over the full
    /// parameter set — the MLP trainer does this once per mini-batch).
    pub fn tick(&mut self) {
        self.t += 1;
    }
}

impl Optimizer for Adam {
    fn len(&self) -> usize {
        self.m.len()
    }

    fn update(&mut self, offset: usize, params: &mut [f32], grad: &[f32]) {
        assert_eq!(params.len(), grad.len(), "adam: grad length mismatch");
        assert!(offset + params.len() <= self.m.len(), "adam: offset out of range");
        let t = self.t.max(1);
        let bc1 = 1.0 - self.beta1.powi(t);
        let bc2 = 1.0 - self.beta2.powi(t);
        for i in 0..params.len() {
            let g = grad[i];
            let mi = &mut self.m[offset + i];
            *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
            let vi = &mut self.v[offset + i];
            *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
            let mhat = *mi / bc1;
            let vhat = *vi / bc2;
            params[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise f(x) = (x - 3)^2 with each optimizer; all should converge.
    fn minimise(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut x = [0.0f32];
        for _ in 0..steps {
            let g = [2.0 * (x[0] - 3.0)];
            opt.update(0, &mut x, &g);
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = minimise(&mut Sgd::new(1, 0.1, 1.0), 200);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn adagrad_converges_on_quadratic() {
        let x = minimise(&mut Adagrad::new(1, 0.9, 1.0), 500);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(1, 0.05);
        let mut x = [0.0f32];
        for _ in 0..2000 {
            opt.tick();
            let g = [2.0 * (x[0] - 3.0)];
            opt.update(0, &mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 1e-2, "x = {}", x[0]);
    }

    #[test]
    fn adagrad_sparse_offsets_keep_independent_state() {
        let mut opt = Adagrad::new(4, 0.5, 1.0);
        let mut a = [0.0f32; 2];
        let mut b = [0.0f32; 2];
        // Hammer the first two coordinates; the last two stay fresh.
        for _ in 0..50 {
            opt.update(0, &mut a, &[1.0, 1.0]);
        }
        opt.update(2, &mut b, &[1.0, 1.0]);
        // First update at offset 2 behaves like a fresh Adagrad step
        // (lr * g / sqrt(g^2) = lr), while 'a' has much smaller steps now.
        assert!((b[0] + 0.5).abs() < 1e-4, "b[0] = {}", b[0]);
    }

    #[test]
    fn sgd_decay_shrinks_lr() {
        let mut opt = Sgd::new(1, 1.0, 0.5);
        opt.end_epoch();
        assert_eq!(opt.learning_rate(), 0.5);
        opt.end_epoch();
        assert_eq!(opt.learning_rate(), 0.25);
    }

    #[test]
    #[should_panic(expected = "offset out of range")]
    fn adagrad_out_of_range_panics() {
        let mut opt = Adagrad::new(2, 0.1, 1.0);
        let mut p = [0.0f32; 2];
        opt.update(1, &mut p, &[0.0, 0.0]);
    }
}

//! Quantised-integer scoring kernels for the coarse ranking tier.
//!
//! The two-stage ranking path (`kg-eval`) scores every entity through a
//! compact i8 mirror of the f32 entity table, keeps the top-C candidates
//! per query and rescores only the survivors through the bit-identical
//! f32 kernels. This module is the coarse tier's math: i8 dot products
//! and a query-block × entity-rows GEMM over i8 codes, accumulating in
//! **exact i32 integer arithmetic**. The per-row scales that turn an
//! integer dot back into an approximate f32 score live one level up, in
//! `kg-table` — the kernels here never touch a float.
//!
//! **Exactness contract.** Integer addition is associative, so unlike the
//! f32 kernels there is no operation-order freedom to pin down: every
//! backend must return the mathematically exact `⟨a, b⟩` over the i8
//! codes, and SIMD-vs-scalar equality is therefore *bitwise by
//! construction* — any divergence is an outright kernel bug, not a
//! rounding-order artefact. Accumulating in integers (rather than f32)
//! also makes the coarse tier's error analysis exact: the only
//! approximation in a coarse score is the quantisation itself, which is
//! what lets `kg-eval`'s two-stage path certify ranks (see the
//! `kg-table` crate docs for the bound).
//!
//! **Backend dispatch.** Exactly like the f32 kernels: the public entry
//! points pick a backend once per process via
//! [`crate::simd::active_backend`] (`KG_FORCE_SCALAR` honoured), the
//! scalar reference stays public as `*_scalar` for A/B benchmarking and
//! equivalence testing, and the explicit AVX2 kernels live in
//! [`crate::simd::avx2`].
//!
//! **Policy seam.** The `*_with` forms accept a [`KernelPolicy`] so the
//! integer tier composes with the policy plumbing the f32 kernels use,
//! but the policy is *ignored by construction*: i32 accumulation is
//! associative, so there is no rounding-order freedom for
//! [`KernelPolicy::Fast`] to relax — every policy resolves to the same
//! exact integer result, byte for byte. `Fast` is silently accepted (not
//! rejected) so callers can thread one policy value through mixed
//! f32/i8 pipelines without special-casing the coarse tier.

use crate::simd;
use crate::simd::KernelPolicy;

/// Maximum inner dimension the i8 kernels accept. Each product is at most
/// `127² = 16129`, so an i32 accumulator is exact while
/// `k · 16129 < 2³¹`, i.e. `k ≤ 133 152`; rounded down to a power of two
/// for a bound that is easy to audit. Every kernel asserts it.
pub const I8_DOT_MAX_K: usize = 131_072;

/// The shape preconditions every `gemm_i8_nt_rows` backend enforces —
/// defined once so the backends cannot drift in what they accept or in
/// the panic messages the tests pin.
pub(crate) fn check_i8_nt_rows_shapes(
    a: &[i8],
    m: usize,
    k: usize,
    b: &[i8],
    n: usize,
    rows: &std::ops::Range<usize>,
    out: &[i32],
) {
    assert!(k <= I8_DOT_MAX_K, "gemm_i8_nt: inner dimension {k} exceeds exact-i32 bound");
    assert_eq!(a.len(), m * k, "gemm_i8_nt: A shape mismatch");
    assert_eq!(b.len(), n * k, "gemm_i8_nt: table shape mismatch");
    assert!(
        rows.start <= rows.end && rows.end <= n,
        "gemm_i8_nt: row range {rows:?} out of bounds for {n} table rows"
    );
    assert_eq!(out.len(), m * rows.len(), "gemm_i8_nt: out shape mismatch");
}

/// Exact integer dot product of two i8 code vectors:
/// `Σ_c a[c] · b[c]` in i32.
///
/// # Panics
/// Panics when the lengths differ or exceed [`I8_DOT_MAX_K`].
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    dot_i8_with(KernelPolicy::Exact, a, b)
}

/// [`dot_i8`] under an explicit [`KernelPolicy`]. The policy is ignored:
/// integer accumulation is exact under every policy (see the module
/// docs), so `Fast` and `Exact` return the identical i32.
///
/// # Panics
/// Same shape panics as [`dot_i8`].
pub fn dot_i8_with(_policy: KernelPolicy, a: &[i8], b: &[i8]) -> i32 {
    match simd::active_backend() {
        // SAFETY: the AVX2 backend is only ever selected after
        // `is_x86_feature_detected!("avx2")` confirmed CPU support.
        #[cfg(target_arch = "x86_64")]
        simd::Backend::Avx2 => unsafe { simd::avx2::dot_i8(a, b) },
        _ => dot_i8_scalar(a, b),
    }
}

/// The scalar reference backend of [`dot_i8`], bypassing dispatch. Public
/// for A/B benchmarking and backend-equivalence tests; the result is the
/// exact integer sum, so every backend returns the identical i32.
///
/// # Panics
/// Same shape panics as [`dot_i8`].
pub fn dot_i8_scalar(a: &[i8], b: &[i8]) -> i32 {
    assert_eq!(a.len(), b.len(), "dot_i8: length mismatch");
    assert!(a.len() <= I8_DOT_MAX_K, "dot_i8: length {} exceeds exact-i32 bound", a.len());
    let mut acc = 0i32;
    for (&x, &y) in a.iter().zip(b.iter()) {
        acc += x as i32 * y as i32;
    }
    acc
}

/// Exact integer L1 norm of an i8 code vector: `Σ_c |a[c]|` in u32.
/// This is the per-row ingredient of the two-stage certification bound
/// (`kg-table` stores it per entity row at quantisation time).
///
/// # Panics
/// Panics when the length exceeds [`I8_DOT_MAX_K`].
pub fn l1_i8(a: &[i8]) -> u32 {
    assert!(a.len() <= I8_DOT_MAX_K, "l1_i8: length {} exceeds exact-i32 bound", a.len());
    a.iter().map(|&x| (x as i32).unsigned_abs()).sum()
}

/// `out = A · Bᵀ` over i8 codes: `A` is an `m × k` row-major block of
/// quantised query vectors, `B` the `n × k` quantised entity table, and
/// `out[i·n + j] = ⟨a_i, b_j⟩` exactly, in i32.
///
/// # Panics
/// Panics when the slice lengths disagree with `m`, `k`, `n`, or when
/// `k` exceeds [`I8_DOT_MAX_K`].
pub fn gemm_i8_nt(a: &[i8], m: usize, k: usize, b: &[i8], n: usize, out: &mut [i32]) {
    gemm_i8_nt_rows(a, m, k, b, n, 0..n, out);
}

/// [`gemm_i8_nt`] under an explicit [`KernelPolicy`]. The policy is
/// ignored: the integer tier is exact under every policy (see the module
/// docs), so `Fast` and `Exact` produce byte-identical score blocks.
///
/// # Panics
/// Same shape panics as [`gemm_i8_nt`].
pub fn gemm_i8_nt_with(
    policy: KernelPolicy,
    a: &[i8],
    m: usize,
    k: usize,
    b: &[i8],
    n: usize,
    out: &mut [i32],
) {
    gemm_i8_nt_rows_with(policy, a, m, k, b, n, 0..n, out);
}

/// Row-range variant of [`gemm_i8_nt`]: score the query block against only
/// the entity rows `rows = j_0..j_1` of `B`, writing a chunk-local
/// row-major `m × rows.len()` block:
/// `out[i·w + (j − j_0)] = ⟨a_i, b_j⟩` with `w = rows.len()`.
///
/// This is the kernel behind the chunked coarse pass: the two-stage
/// ranker walks the entity table in column chunks so the i32 score block
/// stays cache-resident at million-entity scale. Results are exact
/// integers, so chunking cannot change any value. An empty range is a
/// no-op on an empty `out`.
///
/// # Panics
/// Panics when the slice lengths disagree with `m`, `k`, `n` and `rows`,
/// when `rows` is decreasing or exceeds `n`, or when `k` exceeds
/// [`I8_DOT_MAX_K`].
pub fn gemm_i8_nt_rows(
    a: &[i8],
    m: usize,
    k: usize,
    b: &[i8],
    n: usize,
    rows: std::ops::Range<usize>,
    out: &mut [i32],
) {
    gemm_i8_nt_rows_with(KernelPolicy::Exact, a, m, k, b, n, rows, out);
}

/// [`gemm_i8_nt_rows`] under an explicit [`KernelPolicy`]. The policy is
/// ignored: the integer tier is exact under every policy (see the module
/// docs), so `Fast` and `Exact` produce byte-identical score blocks.
///
/// # Panics
/// Same shape panics as [`gemm_i8_nt_rows`].
#[allow(clippy::too_many_arguments)]
pub fn gemm_i8_nt_rows_with(
    _policy: KernelPolicy,
    a: &[i8],
    m: usize,
    k: usize,
    b: &[i8],
    n: usize,
    rows: std::ops::Range<usize>,
    out: &mut [i32],
) {
    match simd::active_backend() {
        // SAFETY: the AVX2 backend is only ever selected after
        // `is_x86_feature_detected!("avx2")` confirmed CPU support.
        #[cfg(target_arch = "x86_64")]
        simd::Backend::Avx2 => unsafe { simd::avx2::gemm_i8_nt_rows(a, m, k, b, n, rows, out) },
        _ => gemm_i8_nt_rows_scalar(a, m, k, b, n, rows, out),
    }
}

/// The scalar reference backend of [`gemm_i8_nt_rows`], bypassing
/// dispatch. Public for A/B benchmarking and backend-equivalence tests.
///
/// # Panics
/// Same shape panics as [`gemm_i8_nt_rows`].
pub fn gemm_i8_nt_rows_scalar(
    a: &[i8],
    m: usize,
    k: usize,
    b: &[i8],
    n: usize,
    rows: std::ops::Range<usize>,
    out: &mut [i32],
) {
    check_i8_nt_rows_shapes(a, m, k, b, n, &rows, out);
    let width = rows.len();
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * width..(i + 1) * width];
        for j in rows.clone() {
            out_row[j - rows.start] = dot_i8_scalar(a_row, &b[j * k..(j + 1) * k]);
        }
    }
}

/// The coarse tier's selection filter: append `base + j` to `out` for
/// every position `j` where the f64 coarse score
/// `(sq · scales[j] as f64) · dots[j] as f64` is `>= thr`.
///
/// This is the two-stage ranker's hot rejection test, hoisted behind the
/// kernel seam so it can run four entities per SIMD step: with the
/// threshold fixed, the overwhelming majority of entities fail it, and
/// the survivors (a superset of the entities that can still enter the
/// top-C buffer — the caller re-checks each against its live threshold)
/// come back as a compact index list.
///
/// **Exactness contract.** Every backend evaluates the *identical* f64
/// expression — the i32→f64 and f32→f64 conversions are exact, the two
/// multiplies round like scalar f64 multiplies lane for lane, and the
/// comparison is IEEE `>=` (false on NaN, so a NaN coarse score — only
/// possible for non-finite scales — is never selected). The output list
/// is therefore byte-identical across backends.
///
/// # Panics
/// Panics when `dots` and `scales` differ in length.
pub fn coarse_sift(dots: &[i32], scales: &[f32], sq: f64, thr: f64, base: u32, out: &mut Vec<u32>) {
    coarse_sift_with(KernelPolicy::Exact, dots, scales, sq, thr, base, out);
}

/// [`coarse_sift`] under an explicit [`KernelPolicy`]. The policy is
/// ignored: every backend evaluates the identical IEEE f64 expression
/// lane for lane (see the exactness contract on [`coarse_sift`]), so
/// there is no rounding-order freedom for `Fast` to relax.
///
/// # Panics
/// Same shape panics as [`coarse_sift`].
#[allow(clippy::too_many_arguments)]
pub fn coarse_sift_with(
    _policy: KernelPolicy,
    dots: &[i32],
    scales: &[f32],
    sq: f64,
    thr: f64,
    base: u32,
    out: &mut Vec<u32>,
) {
    match simd::active_backend() {
        // SAFETY: the AVX2 backend is only ever selected after
        // `is_x86_feature_detected!("avx2")` confirmed CPU support.
        #[cfg(target_arch = "x86_64")]
        simd::Backend::Avx2 => unsafe { simd::avx2::coarse_sift(dots, scales, sq, thr, base, out) },
        _ => coarse_sift_scalar(dots, scales, sq, thr, base, out),
    }
}

/// The scalar reference backend of [`coarse_sift`], bypassing dispatch.
/// Public for A/B benchmarking and backend-equivalence tests.
///
/// # Panics
/// Same shape panics as [`coarse_sift`].
pub fn coarse_sift_scalar(
    dots: &[i32],
    scales: &[f32],
    sq: f64,
    thr: f64,
    base: u32,
    out: &mut Vec<u32>,
) {
    assert_eq!(dots.len(), scales.len(), "coarse_sift: length mismatch");
    for (j, (&d, &s)) in dots.iter().zip(scales.iter()).enumerate() {
        if (sq * s as f64) * d as f64 >= thr {
            out.push(base + j as u32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random i8 fill with full-range magnitudes.
    fn fill_codes(seed: u64, out: &mut [i8]) {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
        for v in out.iter_mut() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *v = (state as i32 % 128) as i8; // -127..=127
        }
    }

    #[test]
    fn dot_i8_matches_wide_integer_reference() {
        for len in [0usize, 1, 7, 31, 32, 33, 64, 100, 257] {
            let mut a = vec![0i8; len];
            let mut b = vec![0i8; len];
            fill_codes(len as u64 + 1, &mut a);
            fill_codes(len as u64 + 1000, &mut b);
            let wide: i64 = a.iter().zip(&b).map(|(&x, &y)| x as i64 * y as i64).sum();
            assert_eq!(dot_i8(&a, &b) as i64, wide, "len {len}");
            assert_eq!(dot_i8_scalar(&a, &b) as i64, wide, "len {len} (scalar)");
        }
    }

    #[test]
    fn dot_i8_extreme_codes_cannot_overflow() {
        // All-saturated codes at a large k: the worst case the bound allows.
        let k = 4096;
        let a = vec![127i8; k];
        let b = vec![-127i8; k];
        assert_eq!(dot_i8(&a, &b), -(k as i32) * 127 * 127);
    }

    #[test]
    fn gemm_i8_matches_per_pair_dots_and_chunks_concatenate() {
        let (m, n, k) = (5, 77, 13);
        let mut a = vec![0i8; m * k];
        let mut b = vec![0i8; n * k];
        fill_codes(7, &mut a);
        fill_codes(8, &mut b);
        let mut full = vec![0i32; m * n];
        gemm_i8_nt(&a, m, k, &b, n, &mut full);
        for i in 0..m {
            for j in 0..n {
                assert_eq!(
                    full[i * n + j],
                    dot_i8_scalar(&a[i * k..(i + 1) * k], &b[j * k..(j + 1) * k]),
                    "({i},{j})"
                );
            }
        }
        // Ragged chunk split reproduces the full kernel exactly.
        for bounds in [vec![0, n], vec![0, 9, 9, 40, n]] {
            for w in bounds.windows(2) {
                let (j0, j1) = (w[0], w[1]);
                let width = j1 - j0;
                let mut chunk = vec![0i32; m * width];
                gemm_i8_nt_rows(&a, m, k, &b, n, j0..j1, &mut chunk);
                for i in 0..m {
                    assert_eq!(
                        &chunk[i * width..(i + 1) * width],
                        &full[i * n + j0..i * n + j1],
                        "chunk {j0}..{j1} row {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn dispatched_i8_kernels_match_scalar_exactly() {
        for (m, n, k) in
            [(1, 5, 3), (4, 33, 17), (3, 70, 64), (2, 40, 95), (5, 129, 32), (1, 4, 16), (6, 3, 48)]
        {
            let mut a = vec![0i8; m * k];
            let mut b = vec![0i8; n * k];
            fill_codes((m * n * k) as u64, &mut a);
            fill_codes((m + n + k) as u64, &mut b);
            let mut dispatched = vec![0i32; m * n];
            gemm_i8_nt(&a, m, k, &b, n, &mut dispatched);
            let mut scalar = vec![0i32; m * n];
            gemm_i8_nt_rows_scalar(&a, m, k, &b, n, 0..n, &mut scalar);
            assert_eq!(dispatched, scalar, "gemm_i8_nt ({m},{n},{k})");
        }
    }

    #[test]
    fn coarse_sift_selects_exactly_the_threshold_passers() {
        let dots: Vec<i32> = (-40..41).map(|x| x * 100).collect();
        let scales: Vec<f32> = (0..dots.len()).map(|j| 0.5 + (j % 5) as f32 * 0.25).collect();
        let (sq, thr, base) = (0.03f64, 11.0f64, 7u32);
        let mut got = Vec::new();
        coarse_sift(&dots, &scales, sq, thr, base, &mut got);
        let want: Vec<u32> = dots
            .iter()
            .zip(&scales)
            .enumerate()
            .filter(|(_, (&d, &s))| (sq * s as f64) * d as f64 >= thr)
            .map(|(j, _)| base + j as u32)
            .collect();
        assert!(!want.is_empty() && want.len() < dots.len(), "test must mix passes and rejects");
        assert_eq!(got, want);
        // -inf threshold selects everything, in index order.
        let mut all = Vec::new();
        coarse_sift(&dots, &scales, sq, f64::NEG_INFINITY, 0, &mut all);
        assert_eq!(all, (0..dots.len() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn coarse_sift_backends_agree_and_drop_nan_scales() {
        for n in [0usize, 1, 3, 4, 7, 64, 130] {
            let mut dots = vec![0i32; n];
            let mut raw = vec![0i8; n];
            fill_codes(n as u64 + 3, &mut raw);
            for (d, &r) in dots.iter_mut().zip(&raw) {
                *d = r as i32 * 37;
            }
            let mut scales: Vec<f32> = (0..n).map(|j| 0.1 + (j % 9) as f32 * 0.3).collect();
            if n > 2 {
                scales[2] = f32::NAN; // NaN coarse: never selected, no panic.
            }
            let mut dispatched = Vec::new();
            coarse_sift(&dots, &scales, 0.02, -1.5, 10, &mut dispatched);
            let mut scalar = Vec::new();
            coarse_sift_scalar(&dots, &scales, 0.02, -1.5, 10, &mut scalar);
            assert_eq!(dispatched, scalar, "n = {n}");
            if n > 2 {
                assert!(!dispatched.contains(&12), "NaN scale at index 2 must never pass");
            }
        }
    }

    #[test]
    fn fast_policy_is_ignored_by_the_integer_tier() {
        // The coarse tier is exact by construction, so `Fast` must be a
        // no-op: every policy produces byte-identical outputs.
        let (m, n, k) = (4, 53, 39);
        let mut a = vec![0i8; m * k];
        let mut b = vec![0i8; n * k];
        fill_codes(11, &mut a);
        fill_codes(12, &mut b);
        let mut exact = vec![0i32; m * n];
        gemm_i8_nt_with(KernelPolicy::Exact, &a, m, k, &b, n, &mut exact);
        let mut fast = vec![0i32; m * n];
        gemm_i8_nt_with(KernelPolicy::Fast, &a, m, k, &b, n, &mut fast);
        assert_eq!(exact, fast, "gemm_i8_nt_with must ignore the policy");
        assert_eq!(
            dot_i8_with(KernelPolicy::Fast, &a[..k], &b[..k]),
            dot_i8_with(KernelPolicy::Exact, &a[..k], &b[..k]),
            "dot_i8_with must ignore the policy"
        );
        let dots: Vec<i32> = exact[..n].to_vec();
        let scales: Vec<f32> = (0..n).map(|j| 0.01 + (j % 7) as f32 * 0.05).collect();
        let mut sel_exact = Vec::new();
        coarse_sift_with(KernelPolicy::Exact, &dots, &scales, 0.04, 1.0, 3, &mut sel_exact);
        let mut sel_fast = Vec::new();
        coarse_sift_with(KernelPolicy::Fast, &dots, &scales, 0.04, 1.0, 3, &mut sel_fast);
        assert_eq!(sel_exact, sel_fast, "coarse_sift_with must ignore the policy");
    }

    #[test]
    fn l1_i8_counts_magnitudes() {
        assert_eq!(l1_i8(&[]), 0);
        assert_eq!(l1_i8(&[127, -127, 1, -1, 0]), 256);
    }

    #[test]
    #[should_panic(expected = "row range")]
    fn gemm_i8_rejects_out_of_bounds_range() {
        let mut out = vec![0i32; 2];
        gemm_i8_nt_rows(&[0; 8], 2, 4, &[0; 12], 3, 2..4, &mut out);
    }

    #[test]
    #[should_panic(expected = "table shape mismatch")]
    fn gemm_i8_rejects_bad_table_shape() {
        let mut out = vec![0i32; 6];
        gemm_i8_nt(&[0; 8], 2, 4, &[0; 11], 3, &mut out);
    }
}

//! Seeded random-number helpers.
//!
//! Everything in the reproduction is deterministic given a `u64` seed: data
//! generation, embedding initialisation, mini-batch shuffling and the search
//! algorithms all take a [`SeededRng`]. The uniform source is a
//! self-contained xoshiro256++ generator (the build runs offline, so no
//! external `rand` dependency), seeded through SplitMix64 as the xoshiro
//! authors recommend; the normal sampler is a Box-Muller transform on top.

/// A deterministic RNG with convenience samplers for the reproduction.
pub struct SeededRng {
    /// xoshiro256++ state, never all-zero thanks to SplitMix64 seeding.
    state: [u64; 4],
    /// Cached second Box-Muller output.
    spare_normal: Option<f64>,
}

impl SeededRng {
    /// Construct from a `u64` seed.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the 256-bit state.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SeededRng { state: [next(), next(), next(), next()], spare_normal: None }
    }

    /// One xoshiro256++ step.
    #[inline]
    fn step(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Derive an independent child RNG; used to give each parallel worker or
    /// search stage its own deterministic stream.
    pub fn fork(&mut self, salt: u64) -> SeededRng {
        let s = self.step() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SeededRng::new(s)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.step() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)` (Lemire's multiply-shift reduction; the
    /// modulo bias at 64 bits is far below anything observable here).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        ((self.step() as u128 * n as u128) >> 64) as usize
    }

    /// Fair coin.
    #[inline]
    pub fn coin(&mut self) -> bool {
        self.step() & 1 == 1
    }

    /// ±1 with equal probability.
    #[inline]
    pub fn sign(&mut self) -> i8 {
        if self.coin() {
            1
        } else {
            -1
        }
    }

    /// Standard normal via Box-Muller.
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Avoid ln(0).
        let u1 = loop {
            let u = self.uniform();
            if u > 1e-12 {
                break u;
            }
        };
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal_ms(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.normal()
    }

    /// Fill `out` with Xavier/Glorot-uniform values for a tensor whose fan-in
    /// plus fan-out is `fan_sum` (embedding tables use `fan_sum = dim`,
    /// matching the common KGE initialisation).
    pub fn xavier_uniform(&mut self, fan_sum: usize, out: &mut [f32]) {
        let bound = (6.0 / fan_sum.max(1) as f64).sqrt();
        for v in out.iter_mut() {
            *v = self.uniform_range(-bound, bound) as f32;
        }
    }

    /// Fill `out` with `N(0, std)` values.
    pub fn fill_normal(&mut self, std: f64, out: &mut [f32]) {
        for v in out.iter_mut() {
            *v = self.normal_ms(0.0, std) as f32;
        }
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        if xs.is_empty() {
            return;
        }
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` (k ≤ n) via partial shuffle.
    pub fn sample_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "sample_distinct: k > n");
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Pick one element of a slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len())]
    }

    /// Raw u64 (for deriving sub-seeds).
    pub fn next_u64(&mut self) -> u64 {
        self.step()
    }
}

impl std::fmt::Debug for SeededRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SeededRng(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SeededRng::new(42);
        let mut b = SeededRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn normal_moments() {
        let mut rng = SeededRng::new(7);
        let n = 20_000;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for _ in 0..n {
            let z = rng.normal();
            sum += z;
            sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn below_in_range() {
        let mut rng = SeededRng::new(3);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn xavier_bound() {
        let mut rng = SeededRng::new(5);
        let mut buf = vec![0.0f32; 1000];
        rng.xavier_uniform(64, &mut buf);
        let bound = (6.0f32 / 64.0).sqrt();
        assert!(buf.iter().all(|v| v.abs() <= bound));
        // and actually spreads out
        assert!(buf.iter().any(|v| v.abs() > bound * 0.5));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SeededRng::new(9);
        let mut xs: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_distinct_no_repeats() {
        let mut rng = SeededRng::new(11);
        let s = rng.sample_distinct(20, 10);
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 10);
        assert!(s.iter().all(|&i| i < 20));
    }

    #[test]
    fn fork_streams_are_independent_but_deterministic() {
        let mut a = SeededRng::new(100);
        let mut b = SeededRng::new(100);
        let mut fa = a.fork(1);
        let mut fb = b.fork(1);
        for _ in 0..10 {
            assert_eq!(fa.next_u64(), fb.next_u64());
        }
    }
}

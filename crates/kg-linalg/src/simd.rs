//! Explicit-SIMD kernel backend with one-time runtime dispatch.
//!
//! The four hot kernels of the scoring engine — [`crate::gemm::gemm_nt`],
//! [`crate::gemm::gemm_nt_rows`], [`crate::gemm::gemm_acc_t`] and
//! [`crate::vecops::count_cmp`] — ship in two implementations: the portable
//! scalar reference (what every consumer ran before this module existed,
//! kept public as `*_scalar`) and the explicit x86-64 AVX2 kernels in
//! [`avx2`]. The public kernel entry points dispatch on
//! [`active_backend`], which is resolved **once** per process:
//!
//! 1. if the [`FORCE_SCALAR_ENV`] environment variable (`KG_FORCE_SCALAR`)
//!    is set to anything but `0` or the empty string, the scalar backend is
//!    pinned — the A/B knob for benchmarking and for exercising the
//!    fallback on CPUs that would dispatch to AVX2;
//! 2. otherwise, if the CPU reports AVX2 at runtime
//!    (`is_x86_feature_detected!("avx2")`), the AVX2 backend is selected;
//! 3. on every other CPU and every non-x86-64 architecture, the scalar
//!    backend runs — there is no compile-time feature to set and no
//!    call-site change for consumers.
//!
//! # What the bit-identity contract demands of a backend
//!
//! Every backend must compute **each output element with the identical
//! floating-point operations in the identical order** as the scalar
//! reference. The scalar kernels already vectorise *across outputs* — 8
//! independent accumulator chains in `gemm_nt`, per-column accumulators in
//! `gemm_acc_t`, independent integer lanes in `count_cmp` — so the AVX2
//! kernels simply assign one SIMD lane per output element and use
//! **separate multiply and add intrinsics** (`_mm256_mul_ps` +
//! `_mm256_add_ps`, never an FMA): each lane then performs exactly the
//! scalar reference's rounding sequence and the results match bit for bit
//! — signed zeros, infinities and the canonical NaNs of invalid operations
//! (`0 · ∞`, `∞ − ∞`) included. The single exception is the payload bits
//! of a NaN *propagated from the input*: IEEE 754 lets an operation return
//! either operand's NaN payload, x86 returns the **first** operand's, and
//! LLVM freely commutes the scalar multiply — so propagated payload bits
//! are not pinned by either backend's source code. The contract there is
//! "NaN exactly where the reference has NaN" (element-wise NaN masks
//! coincide; ranking semantics never read NaN payloads), and since model
//! embeddings are NaN-free, every real workload is fully bit-identical.
//! A future backend that fuses
//! multiply-add (FMA contraction), reassociates a reduction, or tiles
//! *within* a single output's accumulation chain would break the contract
//! and must live behind a relaxed-equivalence gate instead — see the
//! ROADMAP's "Alternative backends" item.
//!
//! The equivalence proptests in `tests/proptests.rs` (SIMD vs scalar over
//! unaligned lengths, ragged shard ranges, NaN and ±0.0 payloads) and the
//! forced-scalar seam test in `tests/forced_scalar.rs` pin all of this
//! down; the engine-level suites (`batch_equivalence`, `shard_equivalence`,
//! `serve_equivalence`) inherit the guarantee unchanged.

use std::sync::OnceLock;

/// Environment variable that pins the scalar backend when set (to anything
/// but `0` or the empty string). Read once, at the first kernel dispatch of
/// the process — flipping it later has no effect.
pub const FORCE_SCALAR_ENV: &str = "KG_FORCE_SCALAR";

/// Which kernel implementation the dispatcher selected for this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable scalar reference kernels (`*_scalar`).
    Scalar,
    /// Explicit AVX2 kernels ([`avx2`]) — x86-64 with runtime-detected
    /// AVX2 only.
    Avx2,
}

impl Backend {
    /// Stable lower-case name for logs and bench provenance records.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
        }
    }
}

/// Whether [`FORCE_SCALAR_ENV`] currently requests the scalar backend.
/// Unlike [`active_backend`] this reads the environment every call — the
/// dispatch decision itself latches only the value seen at first use.
pub fn force_scalar_requested() -> bool {
    std::env::var_os(FORCE_SCALAR_ENV).is_some_and(|v| !v.is_empty() && v != "0")
}

/// Whether this CPU can run the AVX2 backend (runtime detection; `false`
/// on every non-x86-64 architecture). Independent of the env knob — useful
/// for tests that exercise both backends explicitly in one process.
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The backend every dispatched kernel call uses, resolved once per
/// process (env knob first, then CPU detection — see the module docs).
pub fn active_backend() -> Backend {
    static BACKEND: OnceLock<Backend> = OnceLock::new();
    *BACKEND.get_or_init(|| {
        if !force_scalar_requested() && avx2_available() {
            Backend::Avx2
        } else {
            Backend::Scalar
        }
    })
}

/// Bit patterns for cross-backend equality checks, with every NaN mapped
/// to one canonical quiet pattern. This *is* the backend equality
/// contract in code: finite values, signed zeros, infinities and
/// invalid-operation indefinites must match raw, while the payload bits
/// of a NaN propagated from a NaN input are the one IEEE detail operand
/// order doesn't pin down (see the module docs) — canonicalising still
/// checks "NaN exactly where the reference has NaN", because a NaN never
/// maps to a non-NaN pattern. Every backend-equivalence suite compares
/// through this one helper so the contract cannot drift between them.
pub fn canonical_bits(x: &[f32]) -> Vec<u32> {
    x.iter().map(|v| if v.is_nan() { 0x7fc0_0000 } else { v.to_bits() }).collect()
}

/// The explicit AVX2 kernels: one SIMD lane per output element, separate
/// multiply and add (no FMA contraction), scalar ragged tails — every
/// output byte equals the scalar reference's.
///
/// All functions here are `unsafe` for one reason only: the caller must
/// guarantee the CPU supports AVX2 (`#[target_feature]` requirement).
/// The dispatched entry points in [`crate::gemm`] and [`crate::vecops`]
/// establish this via [`active_backend`]; tests may call these directly
/// under an [`avx2_available`] guard. Shape preconditions are asserted
/// exactly as in the scalar kernels.
#[cfg(target_arch = "x86_64")]
pub mod avx2 {
    use crate::gemm::{with_tile_scratch, NT_ROW_TILE, NT_UNROLL};
    use crate::matrix::Mat;
    use crate::vecops;
    use std::arch::x86_64::*;

    // The gemm_nt microkernel maps the scalar code's NT_UNROLL independent
    // accumulator chains onto the 8 lanes of one `__m256`.
    const _: () = assert!(NT_UNROLL == 8, "AVX2 gemm_nt assumes 8-wide unroll groups");

    /// AVX2 [`crate::gemm::gemm_nt_rows`]: lanes = `NT_UNROLL` entity
    /// rows per query, each lane its own strict sequential accumulator —
    /// `acc[u] = acc[u] + a[c] · tile[c][u]` as two separate rounded
    /// operations per step, exactly the scalar chain. The tile transpose
    /// and the ragged tile tail (< 8 rows, plain [`vecops::dot`]) are the
    /// scalar code paths verbatim.
    ///
    /// # Safety
    /// The CPU must support AVX2 (see [`super::avx2_available`]).
    ///
    /// # Panics
    /// Same shape panics as [`crate::gemm::gemm_nt_rows`].
    #[target_feature(enable = "avx2")]
    pub unsafe fn gemm_nt_rows(
        a: &[f32],
        m: usize,
        k: usize,
        b: &Mat,
        rows: std::ops::Range<usize>,
        out: &mut [f32],
    ) {
        crate::gemm::check_nt_rows_shapes(a, m, k, b, &rows, out);
        let width = rows.len();
        let bs = b.as_slice();
        with_tile_scratch(k, |tile| {
            let mut j0 = rows.start;
            while j0 < rows.end {
                let j1 = (j0 + NT_ROW_TILE).min(rows.end);
                let groups = (j1 - j0) / NT_UNROLL;
                crate::gemm::transpose_tile(bs, k, j0, j1, tile);
                for i in 0..m {
                    let a_row = &a[i * k..(i + 1) * k];
                    let out_row = &mut out[i * width..(i + 1) * width];
                    let col0 = j0 - rows.start;
                    for g in 0..groups {
                        let base = g * NT_UNROLL;
                        // 8 strict accumulator chains, one per lane:
                        // mul then add, never fused.
                        let mut acc = _mm256_setzero_ps();
                        for (c, &av) in a_row.iter().enumerate() {
                            let lanes = _mm256_loadu_ps(tile.as_ptr().add(c * NT_ROW_TILE + base));
                            acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(av), lanes));
                        }
                        _mm256_storeu_ps(out_row.as_mut_ptr().add(col0 + base), acc);
                    }
                    // Ragged tail of the tile: plain dots (scalar path).
                    for j in (j0 + groups * NT_UNROLL)..j1 {
                        out_row[j - rows.start] = vecops::dot(a_row, b.row(j));
                    }
                }
                j0 = j1;
            }
        });
    }

    /// AVX2 [`crate::gemm::gemm_acc_t`]: lanes = 8 output columns, each
    /// accumulating over table rows `r` in increasing order — per element
    /// `out[c] = out[c] + s[r] · b[r][c]`, two separate rounded operations,
    /// the scalar `axpy` step exactly. The `k % 8` column tail is scalar.
    ///
    /// # Safety
    /// The CPU must support AVX2 (see [`super::avx2_available`]).
    ///
    /// # Panics
    /// Same shape panics as [`crate::gemm::gemm_acc_t`].
    #[target_feature(enable = "avx2")]
    pub unsafe fn gemm_acc_t(s: &[f32], m: usize, b: &Mat, out: &mut [f32]) {
        let n = b.rows();
        let k = b.cols();
        assert_eq!(s.len(), m * n, "gemm_acc_t: S shape mismatch");
        assert_eq!(out.len(), m * k, "gemm_acc_t: out shape mismatch");
        vecops::zero(out);
        let wide = k - k % 8;
        for r in 0..n {
            let b_row = b.row(r);
            for i in 0..m {
                let coeff = s[i * n + r];
                let coeff8 = _mm256_set1_ps(coeff);
                let y = &mut out[i * k..(i + 1) * k];
                let mut c = 0;
                while c < wide {
                    let yv = _mm256_loadu_ps(y.as_ptr().add(c));
                    let xv = _mm256_loadu_ps(b_row.as_ptr().add(c));
                    let sum = _mm256_add_ps(yv, _mm256_mul_ps(coeff8, xv));
                    _mm256_storeu_ps(y.as_mut_ptr().add(c), sum);
                    c += 8;
                }
                while c < k {
                    y[c] += coeff * b_row[c];
                    c += 1;
                }
            }
        }
    }

    /// AVX2 [`crate::vecops::count_cmp`]: 8 floats compared per step with
    /// ordered-quiet predicates (`_CMP_GT_OQ` / `_CMP_EQ_OQ` — the exact
    /// IEEE semantics of the scalar `>` / `==`, so NaN counts as neither
    /// and `+0.0 == -0.0` ties), each all-ones mask subtracted from its
    /// own `u32` lane counter. Counts are order-independent integers, so
    /// the lane arrangement cannot change the result; slices up to
    /// `8 · 2³²` elements are exact.
    ///
    /// # Safety
    /// The CPU must support AVX2 (see [`super::avx2_available`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn count_cmp(scores: &[f32], threshold: f32) -> (usize, usize) {
        let t = _mm256_set1_ps(threshold);
        let mut gt = _mm256_setzero_si256();
        let mut eq = _mm256_setzero_si256();
        let mut chunks = scores.chunks_exact(8);
        for ch in chunks.by_ref() {
            let v = _mm256_loadu_ps(ch.as_ptr());
            // A true compare is an all-ones lane (-1 as i32): subtracting
            // it increments the lane's counter branchlessly.
            gt = _mm256_sub_epi32(gt, _mm256_castps_si256(_mm256_cmp_ps::<_CMP_GT_OQ>(v, t)));
            eq = _mm256_sub_epi32(eq, _mm256_castps_si256(_mm256_cmp_ps::<_CMP_EQ_OQ>(v, t)));
        }
        let mut gt_lanes = [0u32; 8];
        let mut eq_lanes = [0u32; 8];
        _mm256_storeu_si256(gt_lanes.as_mut_ptr().cast::<__m256i>(), gt);
        _mm256_storeu_si256(eq_lanes.as_mut_ptr().cast::<__m256i>(), eq);
        let mut gt_total: usize = gt_lanes.iter().map(|&c| c as usize).sum();
        let mut eq_total: usize = eq_lanes.iter().map(|&c| c as usize).sum();
        for &s in chunks.remainder() {
            gt_total += (s > threshold) as usize;
            eq_total += (s == threshold) as usize;
        }
        (gt_total, eq_total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_name_is_stable() {
        assert_eq!(Backend::Scalar.name(), "scalar");
        assert_eq!(Backend::Avx2.name(), "avx2");
    }

    #[test]
    fn active_backend_is_latched_and_consistent() {
        let first = active_backend();
        assert_eq!(active_backend(), first, "dispatch decision must be stable");
        if first == Backend::Avx2 {
            assert!(avx2_available(), "AVX2 backend selected without CPU support");
        }
    }
}

//! Explicit-SIMD kernel backend with one-time runtime dispatch.
//!
//! The hot kernels of the scoring engine — [`crate::gemm::gemm_nt`],
//! [`crate::gemm::gemm_nt_rows`], [`crate::gemm::gemm_acc_t`],
//! [`crate::vecops::count_cmp`] and the quantised coarse-tier kernels
//! [`crate::qgemm::dot_i8`] / [`crate::qgemm::gemm_i8_nt_rows`] — ship in
//! two implementations: the portable
//! scalar reference (what every consumer ran before this module existed,
//! kept public as `*_scalar`) and the explicit x86-64 AVX2 kernels in
//! [`avx2`]. The public kernel entry points dispatch on
//! [`active_backend`], which is resolved **once** per process:
//!
//! 1. if the [`FORCE_SCALAR_ENV`] environment variable (`KG_FORCE_SCALAR`)
//!    is set to anything but `0` or the empty string, the scalar backend is
//!    pinned — the A/B knob for benchmarking and for exercising the
//!    fallback on CPUs that would dispatch to AVX2;
//! 2. otherwise, if the CPU reports AVX2 at runtime
//!    (`is_x86_feature_detected!("avx2")`), the AVX2 backend is selected;
//! 3. on every other CPU and every non-x86-64 architecture, the scalar
//!    backend runs — there is no compile-time feature to set and no
//!    call-site change for consumers.
//!
//! # What the bit-identity contract demands of a backend
//!
//! Every backend must compute **each output element with the identical
//! floating-point operations in the identical order** as the scalar
//! reference. The scalar kernels already vectorise *across outputs* — 8
//! independent accumulator chains in `gemm_nt`, per-column accumulators in
//! `gemm_acc_t`, independent integer lanes in `count_cmp` — so the AVX2
//! kernels simply assign one SIMD lane per output element and use
//! **separate multiply and add intrinsics** (`_mm256_mul_ps` +
//! `_mm256_add_ps`, never an FMA): each lane then performs exactly the
//! scalar reference's rounding sequence and the results match bit for bit
//! — signed zeros, infinities and the canonical NaNs of invalid operations
//! (`0 · ∞`, `∞ − ∞`) included. The single exception is the payload bits
//! of a NaN *propagated from the input*: IEEE 754 lets an operation return
//! either operand's NaN payload, x86 returns the **first** operand's, and
//! LLVM freely commutes the scalar multiply — so propagated payload bits
//! are not pinned by either backend's source code. The contract there is
//! "NaN exactly where the reference has NaN" (element-wise NaN masks
//! coincide; ranking semantics never read NaN payloads), and since model
//! embeddings are NaN-free, every real workload is fully bit-identical.
//! A future backend that fuses
//! multiply-add (FMA contraction), reassociates a reduction, or tiles
//! *within* a single output's accumulation chain would break the contract
//! and must live behind a relaxed-equivalence gate instead — see the
//! ROADMAP's "Alternative backends" item.
//!
//! The i8 kernels in [`crate::qgemm`] have it easier: they accumulate in
//! exact i32 integer arithmetic, which is associative, so *any* lane
//! arrangement yields the identical bytes and the contract reduces to
//! "compute the exact integer dot product". They still dispatch through
//! the same seam and honour the same env knob.
//!
//! The equivalence proptests in `tests/proptests.rs` (SIMD vs scalar over
//! unaligned lengths, ragged shard ranges, NaN and ±0.0 payloads) and the
//! forced-scalar seam test in `tests/forced_scalar.rs` pin all of this
//! down; the engine-level suites (`batch_equivalence`, `shard_equivalence`,
//! `serve_equivalence`) inherit the guarantee unchanged.

use std::sync::OnceLock;

/// Environment variable that pins the scalar backend when set (to anything
/// but `0` or the empty string). Read once, at the first kernel dispatch of
/// the process — flipping it later has no effect.
pub const FORCE_SCALAR_ENV: &str = "KG_FORCE_SCALAR";

/// Which kernel implementation the dispatcher selected for this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable scalar reference kernels (`*_scalar`).
    Scalar,
    /// Explicit AVX2 kernels ([`avx2`]) — x86-64 with runtime-detected
    /// AVX2 only.
    Avx2,
}

impl Backend {
    /// Stable lower-case name for logs and bench provenance records.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
        }
    }
}

/// Whether [`FORCE_SCALAR_ENV`] currently requests the scalar backend.
/// Unlike [`active_backend`] this reads the environment every call — the
/// dispatch decision itself latches only the value seen at first use.
pub fn force_scalar_requested() -> bool {
    std::env::var_os(FORCE_SCALAR_ENV).is_some_and(|v| !v.is_empty() && v != "0")
}

/// Whether this CPU can run the AVX2 backend (runtime detection; `false`
/// on every non-x86-64 architecture). Independent of the env knob — useful
/// for tests that exercise both backends explicitly in one process.
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The backend every dispatched kernel call uses, resolved once per
/// process (env knob first, then CPU detection — see the module docs).
pub fn active_backend() -> Backend {
    static BACKEND: OnceLock<Backend> = OnceLock::new();
    *BACKEND.get_or_init(|| {
        if !force_scalar_requested() && avx2_available() {
            Backend::Avx2
        } else {
            Backend::Scalar
        }
    })
}

/// Bit patterns for cross-backend equality checks, with every NaN mapped
/// to one canonical quiet pattern. This *is* the backend equality
/// contract in code: finite values, signed zeros, infinities and
/// invalid-operation indefinites must match raw, while the payload bits
/// of a NaN propagated from a NaN input are the one IEEE detail operand
/// order doesn't pin down (see the module docs) — canonicalising still
/// checks "NaN exactly where the reference has NaN", because a NaN never
/// maps to a non-NaN pattern. Every backend-equivalence suite compares
/// through this one helper so the contract cannot drift between them.
pub fn canonical_bits(x: &[f32]) -> Vec<u32> {
    x.iter().map(|v| if v.is_nan() { 0x7fc0_0000 } else { v.to_bits() }).collect()
}

/// The explicit AVX2 kernels: one SIMD lane per output element, separate
/// multiply and add (no FMA contraction), scalar ragged tails — every
/// output byte equals the scalar reference's.
///
/// All functions here are `unsafe` for one reason only: the caller must
/// guarantee the CPU supports AVX2 (`#[target_feature]` requirement).
/// The dispatched entry points in [`crate::gemm`] and [`crate::vecops`]
/// establish this via [`active_backend`]; tests may call these directly
/// under an [`avx2_available`] guard. Shape preconditions are asserted
/// exactly as in the scalar kernels.
#[cfg(target_arch = "x86_64")]
pub mod avx2 {
    use crate::gemm::{with_tile_scratch, NT_ROW_TILE, NT_UNROLL};
    use crate::matrix::Mat;
    use crate::vecops;
    use std::arch::x86_64::*;

    // The gemm_nt microkernel maps the scalar code's NT_UNROLL independent
    // accumulator chains onto the 8 lanes of one `__m256`.
    const _: () = assert!(NT_UNROLL == 8, "AVX2 gemm_nt assumes 8-wide unroll groups");

    /// AVX2 [`crate::gemm::gemm_nt_rows`]: lanes = `NT_UNROLL` entity
    /// rows per query, each lane its own strict sequential accumulator —
    /// `acc[u] = acc[u] + a[c] · tile[c][u]` as two separate rounded
    /// operations per step, exactly the scalar chain. The tile transpose
    /// and the ragged tile tail (< 8 rows, plain [`vecops::dot`]) are the
    /// scalar code paths verbatim.
    ///
    /// # Safety
    /// The CPU must support AVX2 (see [`super::avx2_available`]).
    ///
    /// # Panics
    /// Same shape panics as [`crate::gemm::gemm_nt_rows`].
    #[target_feature(enable = "avx2")]
    pub unsafe fn gemm_nt_rows(
        a: &[f32],
        m: usize,
        k: usize,
        b: &Mat,
        rows: std::ops::Range<usize>,
        out: &mut [f32],
    ) {
        assert_eq!(b.cols(), k, "gemm_nt: inner dimension mismatch");
        gemm_nt_rows_slice(a, m, k, b.as_slice(), b.rows(), rows, out);
    }

    /// AVX2 [`crate::gemm::gemm_nt_rows_slice`]: the raw-slice core behind
    /// [`gemm_nt_rows`], shared with memory-mapped tables. Identical lane
    /// arrangement and strict mul-then-add accumulation.
    ///
    /// # Safety
    /// The CPU must support AVX2 (see [`super::avx2_available`]).
    ///
    /// # Panics
    /// Same shape panics as [`crate::gemm::gemm_nt_rows_slice`].
    #[target_feature(enable = "avx2")]
    pub unsafe fn gemm_nt_rows_slice(
        a: &[f32],
        m: usize,
        k: usize,
        bs: &[f32],
        n: usize,
        rows: std::ops::Range<usize>,
        out: &mut [f32],
    ) {
        crate::gemm::check_nt_rows_shapes(a, m, k, bs, n, &rows, out);
        let width = rows.len();
        with_tile_scratch(k, |tile| {
            let mut j0 = rows.start;
            while j0 < rows.end {
                let j1 = (j0 + NT_ROW_TILE).min(rows.end);
                let groups = (j1 - j0) / NT_UNROLL;
                crate::gemm::transpose_tile(bs, k, j0, j1, tile);
                for i in 0..m {
                    let a_row = &a[i * k..(i + 1) * k];
                    let out_row = &mut out[i * width..(i + 1) * width];
                    let col0 = j0 - rows.start;
                    for g in 0..groups {
                        let base = g * NT_UNROLL;
                        // 8 strict accumulator chains, one per lane:
                        // mul then add, never fused.
                        let mut acc = _mm256_setzero_ps();
                        for (c, &av) in a_row.iter().enumerate() {
                            let lanes = _mm256_loadu_ps(tile.as_ptr().add(c * NT_ROW_TILE + base));
                            acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(av), lanes));
                        }
                        _mm256_storeu_ps(out_row.as_mut_ptr().add(col0 + base), acc);
                    }
                    // Ragged tail of the tile: plain dots (scalar path).
                    for j in (j0 + groups * NT_UNROLL)..j1 {
                        out_row[j - rows.start] = vecops::dot(a_row, &bs[j * k..(j + 1) * k]);
                    }
                }
                j0 = j1;
            }
        });
    }

    /// AVX2 [`crate::gemm::gemm_acc_t`]: lanes = 8 output columns, each
    /// accumulating over table rows `r` in increasing order — per element
    /// `out[c] = out[c] + s[r] · b[r][c]`, two separate rounded operations,
    /// the scalar `axpy` step exactly. The `k % 8` column tail is scalar.
    ///
    /// # Safety
    /// The CPU must support AVX2 (see [`super::avx2_available`]).
    ///
    /// # Panics
    /// Same shape panics as [`crate::gemm::gemm_acc_t`].
    #[target_feature(enable = "avx2")]
    pub unsafe fn gemm_acc_t(s: &[f32], m: usize, b: &Mat, out: &mut [f32]) {
        let n = b.rows();
        let k = b.cols();
        assert_eq!(s.len(), m * n, "gemm_acc_t: S shape mismatch");
        assert_eq!(out.len(), m * k, "gemm_acc_t: out shape mismatch");
        vecops::zero(out);
        let wide = k - k % 8;
        for r in 0..n {
            let b_row = b.row(r);
            for i in 0..m {
                let coeff = s[i * n + r];
                let coeff8 = _mm256_set1_ps(coeff);
                let y = &mut out[i * k..(i + 1) * k];
                let mut c = 0;
                while c < wide {
                    let yv = _mm256_loadu_ps(y.as_ptr().add(c));
                    let xv = _mm256_loadu_ps(b_row.as_ptr().add(c));
                    let sum = _mm256_add_ps(yv, _mm256_mul_ps(coeff8, xv));
                    _mm256_storeu_ps(y.as_mut_ptr().add(c), sum);
                    c += 8;
                }
                while c < k {
                    y[c] += coeff * b_row[c];
                    c += 1;
                }
            }
        }
    }

    /// Exact integer i8 dot product without shape checks: the shared body
    /// of [`dot_i8`] and the [`gemm_i8_nt_rows`] inner loop. 32 codes per
    /// step — each 256-bit load is split into two 128-bit halves,
    /// sign-extended to i16 (`_mm256_cvtepi8_epi16`) and
    /// multiply-accumulated pairwise into i32 lanes (`_mm256_madd_epi16`);
    /// lane sums and the scalar tail fold with ordinary integer adds.
    /// Integer addition is associative, so this is the exact sum — equal
    /// to the scalar reference by construction. Lanes stay exact: each of
    /// the 8 accumulator lanes receives `k/8` products of magnitude
    /// ≤ 127², within i32 for every `k ≤ I8_DOT_MAX_K`.
    ///
    /// # Safety
    /// The CPU must support AVX2, and `a.len() == b.len()` must hold
    /// (callers assert it along with the `I8_DOT_MAX_K` bound).
    #[target_feature(enable = "avx2")]
    unsafe fn dot_i8_body(a: &[i8], b: &[i8], k: usize) -> i32 {
        debug_assert_eq!(a.len(), k);
        debug_assert_eq!(b.len(), k);
        let mut acc = _mm256_setzero_si256();
        let chunks = k / 32;
        for c in 0..chunks {
            let av = _mm256_loadu_si256(a.as_ptr().add(c * 32).cast::<__m256i>());
            let bv = _mm256_loadu_si256(b.as_ptr().add(c * 32).cast::<__m256i>());
            let alo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(av));
            let ahi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256::<1>(av));
            let blo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(bv));
            let bhi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256::<1>(bv));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(alo, blo));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(ahi, bhi));
        }
        let mut lanes = [0i32; 8];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast::<__m256i>(), acc);
        let mut total: i32 = lanes.iter().sum();
        for c in chunks * 32..k {
            total += *a.get_unchecked(c) as i32 * *b.get_unchecked(c) as i32;
        }
        total
    }

    /// AVX2 [`crate::qgemm::dot_i8`]: exact integer accumulation, so the
    /// result is bitwise-equal to the scalar reference (see
    /// `dot_i8_body` for the lane arrangement and exactness argument).
    ///
    /// # Safety
    /// The CPU must support AVX2 (see [`super::avx2_available`]).
    ///
    /// # Panics
    /// Same shape panics as [`crate::qgemm::dot_i8`].
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
        assert_eq!(a.len(), b.len(), "dot_i8: length mismatch");
        assert!(
            a.len() <= crate::qgemm::I8_DOT_MAX_K,
            "dot_i8: length {} exceeds exact-i32 bound",
            a.len()
        );
        dot_i8_body(a, b, a.len())
    }

    /// Sign-extend i8 codes to i16, 16 at a time (`_mm256_cvtepi8_epi16`),
    /// scalar tail. The i8 GEMM widens both operands **once** up front so
    /// its inner loop is pure load + `madd` — the per-pair sign-extension
    /// shuffles would otherwise saturate the shuffle port and dominate the
    /// kernel at coarse-tier dimensions (k = one cache line).
    ///
    /// # Safety
    /// The CPU must support AVX2, and `dst.len() == src.len()`.
    #[target_feature(enable = "avx2")]
    unsafe fn widen_i8_to_i16(src: &[i8], dst: &mut [i16]) {
        debug_assert_eq!(src.len(), dst.len());
        let n = src.len();
        let wide = n - n % 16;
        let mut c = 0;
        while c < wide {
            let v = _mm_loadu_si128(src.as_ptr().add(c).cast::<__m128i>());
            _mm256_storeu_si256(dst.as_mut_ptr().add(c).cast::<__m256i>(), _mm256_cvtepi8_epi16(v));
            c += 16;
        }
        while c < n {
            *dst.get_unchecked_mut(c) = *src.get_unchecked(c) as i16;
            c += 1;
        }
    }

    /// Entity rows reduced together per reduction in the i8 GEMM: four
    /// i32 dot products collapse through two `hadd` rounds and one
    /// cross-lane add into a single 4-lane store.
    const I8_ROW_GROUP: usize = 4;

    /// AVX2 [`crate::qgemm::gemm_i8_nt_rows`]: both operands are widened
    /// to i16 once (`widen_i8_to_i16` — queries per call, entity rows
    /// per `I8_ROW_GROUP` group, shared across the whole query block),
    /// so the inner loop is two loads, one `_mm256_madd_epi16` and one
    /// add per 16 codes. Four entity rows accumulate side by side and
    /// reduce together: `hadd(acc0,acc1)`, `hadd(acc2,acc3)`, `hadd` of
    /// those two, then the 128-bit halves added — yielding the four dots
    /// in row order for one contiguous store. Every intermediate is an
    /// exact i32 sum of products bounded by `127²·k` (within i32 for all
    /// `k ≤ I8_DOT_MAX_K`), and integer addition is associative, so the
    /// result equals the scalar reference bitwise by construction. Ragged
    /// row and code tails fall back to `dot_i8_body` / scalar products.
    ///
    /// # Safety
    /// The CPU must support AVX2 (see [`super::avx2_available`]).
    ///
    /// # Panics
    /// Same shape panics as [`crate::qgemm::gemm_i8_nt_rows`].
    #[target_feature(enable = "avx2")]
    pub unsafe fn gemm_i8_nt_rows(
        a: &[i8],
        m: usize,
        k: usize,
        b: &[i8],
        n: usize,
        rows: std::ops::Range<usize>,
        out: &mut [i32],
    ) {
        crate::qgemm::check_i8_nt_rows_shapes(a, m, k, b, n, &rows, out);
        let width = rows.len();
        let steps = k / 16;
        let k_wide = steps * 16;
        let mut q16 = vec![0i16; m * k];
        widen_i8_to_i16(&a[..m * k], &mut q16);
        let mut b16 = vec![0i16; I8_ROW_GROUP * k];
        let groups = width / I8_ROW_GROUP;
        for g in 0..groups {
            let j0 = rows.start + g * I8_ROW_GROUP;
            widen_i8_to_i16(&b[j0 * k..(j0 + I8_ROW_GROUP) * k], &mut b16);
            for i in 0..m {
                let q_row = q16.as_ptr().add(i * k);
                let mut acc0 = _mm256_setzero_si256();
                let mut acc1 = _mm256_setzero_si256();
                let mut acc2 = _mm256_setzero_si256();
                let mut acc3 = _mm256_setzero_si256();
                for s in 0..steps {
                    let qv = _mm256_loadu_si256(q_row.add(s * 16).cast::<__m256i>());
                    let bp = b16.as_ptr().add(s * 16);
                    let b0 = _mm256_loadu_si256(bp.cast::<__m256i>());
                    let b1 = _mm256_loadu_si256(bp.add(k).cast::<__m256i>());
                    let b2 = _mm256_loadu_si256(bp.add(2 * k).cast::<__m256i>());
                    let b3 = _mm256_loadu_si256(bp.add(3 * k).cast::<__m256i>());
                    acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(qv, b0));
                    acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(qv, b1));
                    acc2 = _mm256_add_epi32(acc2, _mm256_madd_epi16(qv, b2));
                    acc3 = _mm256_add_epi32(acc3, _mm256_madd_epi16(qv, b3));
                }
                // Reduce the four row accumulators to [dot0..dot3]:
                // hadd keeps 128-bit lane locality, the final add folds
                // the upper halves in.
                let t0 = _mm256_hadd_epi32(acc0, acc1);
                let t1 = _mm256_hadd_epi32(acc2, acc3);
                let t2 = _mm256_hadd_epi32(t0, t1);
                let mut sums = [0i32; 4];
                _mm_storeu_si128(
                    sums.as_mut_ptr().cast::<__m128i>(),
                    _mm_add_epi32(_mm256_castsi256_si128(t2), _mm256_extracti128_si256::<1>(t2)),
                );
                let a_row = &a[i * k..(i + 1) * k];
                let out_row = &mut out[i * width..(i + 1) * width];
                for r in 0..I8_ROW_GROUP {
                    let mut total = sums[r];
                    let b_row = &b[(j0 + r) * k..(j0 + r + 1) * k];
                    for c in k_wide..k {
                        total += *a_row.get_unchecked(c) as i32 * *b_row.get_unchecked(c) as i32;
                    }
                    out_row[j0 - rows.start + r] = total;
                }
            }
        }
        // Ragged row tail: per-pair dots.
        for j in (rows.start + groups * I8_ROW_GROUP)..rows.end {
            let b_row = &b[j * k..(j + 1) * k];
            for i in 0..m {
                out[i * width + (j - rows.start)] = dot_i8_body(&a[i * k..(i + 1) * k], b_row, k);
            }
        }
    }

    /// AVX2 [`crate::qgemm::coarse_sift`]: four entities per step — the
    /// i32 dots and f32 scales widen to f64 lanes (exact conversions),
    /// two `_mm256_mul_pd` evaluate `(s_q · s_e) · dot` with scalar f64's
    /// exact rounding (one IEEE multiply per step, lane-wise identical to
    /// the scalar backend), and `_CMP_GE_OQ` is precisely the scalar
    /// `>=` — false on NaN. The common all-reject step costs one branch.
    ///
    /// # Safety
    /// The CPU must support AVX2 (see [`super::avx2_available`]).
    ///
    /// # Panics
    /// Same shape panics as [`crate::qgemm::coarse_sift`].
    #[target_feature(enable = "avx2")]
    pub unsafe fn coarse_sift(
        dots: &[i32],
        scales: &[f32],
        sq: f64,
        thr: f64,
        base: u32,
        out: &mut Vec<u32>,
    ) {
        assert_eq!(dots.len(), scales.len(), "coarse_sift: length mismatch");
        let n = dots.len();
        let sqv = _mm256_set1_pd(sq);
        let thrv = _mm256_set1_pd(thr);
        let wide = n - n % 4;
        let mut j = 0;
        while j < wide {
            let d = _mm256_cvtepi32_pd(_mm_loadu_si128(dots.as_ptr().add(j).cast::<__m128i>()));
            let s = _mm256_cvtps_pd(_mm_loadu_ps(scales.as_ptr().add(j)));
            let coarse = _mm256_mul_pd(_mm256_mul_pd(sqv, s), d);
            let mask = _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_GE_OQ>(coarse, thrv));
            if mask != 0 {
                for bit in 0..4 {
                    if mask & (1 << bit) != 0 {
                        out.push(base + (j + bit) as u32);
                    }
                }
            }
            j += 4;
        }
        while j < n {
            if (sq * *scales.get_unchecked(j) as f64) * *dots.get_unchecked(j) as f64 >= thr {
                out.push(base + j as u32);
            }
            j += 1;
        }
    }

    /// AVX2 [`crate::vecops::count_cmp`]: 8 floats compared per step with
    /// ordered-quiet predicates (`_CMP_GT_OQ` / `_CMP_EQ_OQ` — the exact
    /// IEEE semantics of the scalar `>` / `==`, so NaN counts as neither
    /// and `+0.0 == -0.0` ties), each all-ones mask subtracted from its
    /// own `u32` lane counter. Counts are order-independent integers, so
    /// the lane arrangement cannot change the result; slices up to
    /// `8 · 2³²` elements are exact.
    ///
    /// # Safety
    /// The CPU must support AVX2 (see [`super::avx2_available`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn count_cmp(scores: &[f32], threshold: f32) -> (usize, usize) {
        let t = _mm256_set1_ps(threshold);
        let mut gt = _mm256_setzero_si256();
        let mut eq = _mm256_setzero_si256();
        let mut chunks = scores.chunks_exact(8);
        for ch in chunks.by_ref() {
            let v = _mm256_loadu_ps(ch.as_ptr());
            // A true compare is an all-ones lane (-1 as i32): subtracting
            // it increments the lane's counter branchlessly.
            gt = _mm256_sub_epi32(gt, _mm256_castps_si256(_mm256_cmp_ps::<_CMP_GT_OQ>(v, t)));
            eq = _mm256_sub_epi32(eq, _mm256_castps_si256(_mm256_cmp_ps::<_CMP_EQ_OQ>(v, t)));
        }
        let mut gt_lanes = [0u32; 8];
        let mut eq_lanes = [0u32; 8];
        _mm256_storeu_si256(gt_lanes.as_mut_ptr().cast::<__m256i>(), gt);
        _mm256_storeu_si256(eq_lanes.as_mut_ptr().cast::<__m256i>(), eq);
        let mut gt_total: usize = gt_lanes.iter().map(|&c| c as usize).sum();
        let mut eq_total: usize = eq_lanes.iter().map(|&c| c as usize).sum();
        for &s in chunks.remainder() {
            gt_total += (s > threshold) as usize;
            eq_total += (s == threshold) as usize;
        }
        (gt_total, eq_total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_name_is_stable() {
        assert_eq!(Backend::Scalar.name(), "scalar");
        assert_eq!(Backend::Avx2.name(), "avx2");
    }

    #[test]
    fn active_backend_is_latched_and_consistent() {
        let first = active_backend();
        assert_eq!(active_backend(), first, "dispatch decision must be stable");
        if first == Backend::Avx2 {
            assert!(avx2_available(), "AVX2 backend selected without CPU support");
        }
    }
}

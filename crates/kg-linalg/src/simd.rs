//! Explicit-SIMD kernel backends behind an explicit [`KernelPolicy`].
//!
//! The hot kernels of the scoring engine — [`crate::gemm::gemm_nt`],
//! [`crate::gemm::gemm_nt_rows`], [`crate::gemm::gemm_acc_t`],
//! [`crate::vecops::count_cmp`] and the quantised coarse-tier kernels
//! [`crate::qgemm::dot_i8`] / [`crate::qgemm::gemm_i8_nt_rows`] — ship in
//! three implementations: the portable scalar reference (what every
//! consumer ran before this module existed, kept public as `*_scalar`),
//! the bit-identical explicit x86-64 AVX2 kernels in [`avx2`], and the
//! **relaxed-precision** FMA kernels in [`avx2fma`].
//!
//! # The `KernelPolicy` seam
//!
//! Which implementation runs is a **value**, not a process global: every
//! f32 kernel has a `*_with(policy, ...)` form taking a [`KernelPolicy`],
//! and the plain entry points are [`KernelPolicy::Exact`] wrappers.
//! Higher layers carry the policy explicitly — `BatchScratch` in
//! kg-models, the evaluator configs in kg-eval, `KgEngineBuilder::policy`
//! in kg-serve — so two engines in one process can run different tiers.
//!
//! * [`KernelPolicy::Exact`] (the default) keeps today's bit-identity
//!   contract: scalar and AVX2 produce the same bytes (see below).
//! * [`KernelPolicy::Fast`] opts into the [`avx2fma`] kernels — FMA
//!   contraction plus multi-lane accumulator chains — which trade
//!   bit-identity for throughput. `Fast` is **relaxed, not wrong**: it is
//!   gated by a relaxed-equivalence suite (per-score error bounds vs the
//!   exact path plus a measured rank-inversion rate; see
//!   `tests/relaxed_fast.rs`). Where FMA hardware is missing, `Fast`
//!   resolves to the exact kernels — it never changes *what* is computed,
//!   only how tightly the intermediate roundings are pinned.
//!
//! A policy resolves to a concrete implementation via
//! [`KernelPolicy::resolve`]:
//!
//! 1. if the [`FORCE_SCALAR_ENV`] environment variable (`KG_FORCE_SCALAR`)
//!    is set to anything but `0` or the empty string, the scalar backend
//!    is pinned **for every policy** — the override is implemented through
//!    the policy seam ([`active_backend`] latches scalar, so `Fast`
//!    resolves to scalar too);
//! 2. otherwise, if the CPU reports AVX2 at runtime
//!    (`is_x86_feature_detected!("avx2")`), `Exact` resolves to the AVX2
//!    backend, and `Fast` resolves to [`ResolvedKernel::Avx2Fma`] when the
//!    CPU also reports FMA ([`fma_available`]) — falling back to the exact
//!    AVX2 kernels when it does not;
//! 3. on every other CPU and every non-x86-64 architecture, everything
//!    resolves to scalar — there is no compile-time feature to set and no
//!    call-site change for consumers.
//!
//! [`KernelPolicy::default_from_env`] reads the [`POLICY_ENV`] knob
//! (`KG_KERNEL_POLICY=fast`) so whole-process defaults (CI's fast-tier
//! job, benchmarks) can flip the tier at the *engine* layer without
//! touching the exact-by-default kernel entry points; `KG_FORCE_SCALAR`
//! beats it.
//!
//! # What the bit-identity contract demands of a backend
//!
//! Every backend must compute **each output element with the identical
//! floating-point operations in the identical order** as the scalar
//! reference. The scalar kernels already vectorise *across outputs* — 8
//! independent accumulator chains in `gemm_nt`, per-column accumulators in
//! `gemm_acc_t`, independent integer lanes in `count_cmp` — so the AVX2
//! kernels simply assign one SIMD lane per output element and use
//! **separate multiply and add intrinsics** (`_mm256_mul_ps` +
//! `_mm256_add_ps`, never an FMA): each lane then performs exactly the
//! scalar reference's rounding sequence and the results match bit for bit
//! — signed zeros, infinities and the canonical NaNs of invalid operations
//! (`0 · ∞`, `∞ − ∞`) included. The single exception is the payload bits
//! of a NaN *propagated from the input*: IEEE 754 lets an operation return
//! either operand's NaN payload, x86 returns the **first** operand's, and
//! LLVM freely commutes the scalar multiply — so propagated payload bits
//! are not pinned by either backend's source code. The contract there is
//! "NaN exactly where the reference has NaN" (element-wise NaN masks
//! coincide; ranking semantics never read NaN payloads), and since model
//! embeddings are NaN-free, every real workload is fully bit-identical.
//! A backend that fuses
//! multiply-add (FMA contraction), reassociates a reduction, or tiles
//! *within* a single output's accumulation chain breaks the contract and
//! lives behind [`KernelPolicy::Fast`] and its relaxed-equivalence gate
//! instead — [`avx2fma`] is exactly such a backend, and the same doorway
//! is what a future BLAS/AVX-512/GPU backend must walk through (see the
//! ROADMAP's "Alternative backends" item).
//!
//! The i8 kernels in [`crate::qgemm`] have it easier: they accumulate in
//! exact i32 integer arithmetic, which is associative, so *any* lane
//! arrangement yields the identical bytes and the contract reduces to
//! "compute the exact integer dot product". They still dispatch through
//! the same seam and honour the same env knob.
//!
//! The equivalence proptests in `tests/proptests.rs` (SIMD vs scalar over
//! unaligned lengths, ragged shard ranges, NaN and ±0.0 payloads) and the
//! forced-scalar seam test in `tests/forced_scalar.rs` pin all of this
//! down; the engine-level suites (`batch_equivalence`, `shard_equivalence`,
//! `serve_equivalence`) inherit the guarantee unchanged.

use std::sync::OnceLock;

/// Environment variable that pins the scalar backend when set (to anything
/// but `0` or the empty string). Read once, at the first kernel dispatch of
/// the process — flipping it later has no effect. Beats [`POLICY_ENV`]:
/// forced-scalar means `Exact` semantics on the scalar reference, whatever
/// policy a caller asks for.
pub const FORCE_SCALAR_ENV: &str = "KG_FORCE_SCALAR";

/// Environment variable that flips the **default** kernel policy (the one
/// [`KernelPolicy::default_from_env`] returns) to [`KernelPolicy::Fast`]
/// when set to `fast` (case-insensitive). Any other value — or
/// [`FORCE_SCALAR_ENV`] being set — keeps the default at
/// [`KernelPolicy::Exact`]. Only *defaults* read this knob (engine
/// scratches, builders, benches); the plain kernel entry points are hard
/// `Exact` wrappers regardless, so bit-identity suites cannot be flipped
/// from the outside.
pub const POLICY_ENV: &str = "KG_KERNEL_POLICY";

/// The precision tier a kernel call runs under — an explicit value threaded
/// through every layer (see the module docs), not a process global.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelPolicy {
    /// The bit-identity contract: every output element computed with the
    /// identical FLOPs in the identical order as the scalar reference.
    /// Scalar and AVX2 backends are byte-equal under this policy.
    #[default]
    Exact,
    /// The relaxed-precision tier: FMA contraction and multi-chain
    /// accumulator reassociation are allowed ([`avx2fma`]). Scores may
    /// differ from `Exact` in the last ULPs; ranks may invert only where
    /// the exact scores were within float noise of a tie (gated by the
    /// relaxed-equivalence suite). Falls back to the `Exact` kernels when
    /// FMA hardware is missing or `KG_FORCE_SCALAR` pins scalar. The
    /// integer (i8) coarse-tier kernels are exact by construction and
    /// ignore this policy entirely.
    Fast,
}

impl KernelPolicy {
    /// Stable lower-case name for logs and bench provenance records.
    pub fn name(self) -> &'static str {
        match self {
            KernelPolicy::Exact => "exact",
            KernelPolicy::Fast => "fast",
        }
    }

    /// The policy process-wide *defaults* start from: [`KernelPolicy::Fast`]
    /// iff [`POLICY_ENV`] is set to `fast` (case-insensitive) and
    /// [`FORCE_SCALAR_ENV`] does not pin scalar; [`KernelPolicy::Exact`]
    /// otherwise. Read every call (policies are plain values — nothing to
    /// latch); used by `BatchScratch::new`, the evaluator entry points and
    /// `KgEngineBuilder` so `KG_KERNEL_POLICY=fast` flips whole-process
    /// engine defaults without touching any explicit policy choice.
    pub fn default_from_env() -> Self {
        if force_scalar_requested() {
            return KernelPolicy::Exact;
        }
        match std::env::var(POLICY_ENV) {
            Ok(v) if v.eq_ignore_ascii_case("fast") => KernelPolicy::Fast,
            _ => KernelPolicy::Exact,
        }
    }

    /// The concrete kernel implementation this policy runs on this process
    /// ([`active_backend`] latches the `KG_FORCE_SCALAR`/AVX2 decision;
    /// `Fast` additionally requires runtime FMA support, else it degrades
    /// to the exact implementation). This is the single dispatch decision
    /// every f32 `*_with` kernel entry point consults.
    pub fn resolve(self) -> ResolvedKernel {
        match (active_backend(), self) {
            (Backend::Scalar, _) => ResolvedKernel::Scalar,
            (Backend::Avx2, KernelPolicy::Exact) => ResolvedKernel::Avx2,
            (Backend::Avx2, KernelPolicy::Fast) => {
                if fma_available() {
                    ResolvedKernel::Avx2Fma
                } else {
                    ResolvedKernel::Avx2
                }
            }
        }
    }
}

/// The concrete implementation a ([`KernelPolicy`], process) pair resolves
/// to — the provenance record benches and stats report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolvedKernel {
    /// Portable scalar reference kernels (`*_scalar`). Exact.
    Scalar,
    /// Bit-identical AVX2 kernels ([`avx2`]). Exact.
    Avx2,
    /// Relaxed-precision FMA kernels ([`avx2fma`]). Fast tier only.
    Avx2Fma,
}

impl ResolvedKernel {
    /// Stable lower-case name for logs and bench provenance records.
    pub fn name(self) -> &'static str {
        match self {
            ResolvedKernel::Scalar => "scalar",
            ResolvedKernel::Avx2 => "avx2",
            ResolvedKernel::Avx2Fma => "avx2+fma",
        }
    }
}

/// Which kernel implementation the dispatcher selected for this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable scalar reference kernels (`*_scalar`).
    Scalar,
    /// Explicit AVX2 kernels ([`avx2`]) — x86-64 with runtime-detected
    /// AVX2 only.
    Avx2,
}

impl Backend {
    /// Stable lower-case name for logs and bench provenance records.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
        }
    }
}

/// Whether [`FORCE_SCALAR_ENV`] currently requests the scalar backend.
/// Unlike [`active_backend`] this reads the environment every call — the
/// dispatch decision itself latches only the value seen at first use.
pub fn force_scalar_requested() -> bool {
    std::env::var_os(FORCE_SCALAR_ENV).is_some_and(|v| !v.is_empty() && v != "0")
}

/// Whether this CPU can run the AVX2 backend (runtime detection; `false`
/// on every non-x86-64 architecture). Independent of the env knob — useful
/// for tests that exercise both backends explicitly in one process.
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether this CPU can run the FMA kernels of the [`avx2fma`] fast tier
/// (runtime detection; `false` on every non-x86-64 architecture).
/// Independent of the env knobs — [`KernelPolicy::resolve`] combines this
/// with [`active_backend`], and tests/benches use it to decide whether the
/// fast tier actually engaged.
pub fn fma_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The backend every dispatched kernel call uses, resolved once per
/// process (env knob first, then CPU detection — see the module docs).
pub fn active_backend() -> Backend {
    static BACKEND: OnceLock<Backend> = OnceLock::new();
    *BACKEND.get_or_init(|| {
        if !force_scalar_requested() && avx2_available() {
            Backend::Avx2
        } else {
            Backend::Scalar
        }
    })
}

/// Bit patterns for cross-backend equality checks, with every NaN mapped
/// to one canonical quiet pattern. This *is* the backend equality
/// contract in code: finite values, signed zeros, infinities and
/// invalid-operation indefinites must match raw, while the payload bits
/// of a NaN propagated from a NaN input are the one IEEE detail operand
/// order doesn't pin down (see the module docs) — canonicalising still
/// checks "NaN exactly where the reference has NaN", because a NaN never
/// maps to a non-NaN pattern. Every backend-equivalence suite compares
/// through this one helper so the contract cannot drift between them.
pub fn canonical_bits(x: &[f32]) -> Vec<u32> {
    x.iter().map(|v| if v.is_nan() { 0x7fc0_0000 } else { v.to_bits() }).collect()
}

/// The explicit AVX2 kernels: one SIMD lane per output element, separate
/// multiply and add (no FMA contraction), scalar ragged tails — every
/// output byte equals the scalar reference's.
///
/// All functions here are `unsafe` for one reason only: the caller must
/// guarantee the CPU supports AVX2 (`#[target_feature]` requirement).
/// The dispatched entry points in [`crate::gemm`] and [`crate::vecops`]
/// establish this via [`active_backend`]; tests may call these directly
/// under an [`avx2_available`] guard. Shape preconditions are asserted
/// exactly as in the scalar kernels.
#[cfg(target_arch = "x86_64")]
pub mod avx2 {
    use crate::gemm::{with_tile_scratch, NT_ROW_TILE, NT_UNROLL};
    use crate::matrix::Mat;
    use crate::vecops;
    use std::arch::x86_64::*;

    // The gemm_nt microkernel maps the scalar code's NT_UNROLL independent
    // accumulator chains onto the 8 lanes of one `__m256`.
    const _: () = assert!(NT_UNROLL == 8, "AVX2 gemm_nt assumes 8-wide unroll groups");

    /// AVX2 [`crate::gemm::gemm_nt_rows`]: lanes = `NT_UNROLL` entity
    /// rows per query, each lane its own strict sequential accumulator —
    /// `acc[u] = acc[u] + a[c] · tile[c][u]` as two separate rounded
    /// operations per step, exactly the scalar chain. The tile transpose
    /// and the ragged tile tail (< 8 rows, plain [`vecops::dot`]) are the
    /// scalar code paths verbatim.
    ///
    /// # Safety
    /// The CPU must support AVX2 (see [`super::avx2_available`]).
    ///
    /// # Panics
    /// Same shape panics as [`crate::gemm::gemm_nt_rows`].
    #[target_feature(enable = "avx2")]
    pub unsafe fn gemm_nt_rows(
        a: &[f32],
        m: usize,
        k: usize,
        b: &Mat,
        rows: std::ops::Range<usize>,
        out: &mut [f32],
    ) {
        assert_eq!(b.cols(), k, "gemm_nt: inner dimension mismatch");
        gemm_nt_rows_slice(a, m, k, b.as_slice(), b.rows(), rows, out);
    }

    /// AVX2 [`crate::gemm::gemm_nt_rows_slice`]: the raw-slice core behind
    /// [`gemm_nt_rows`], shared with memory-mapped tables. Identical lane
    /// arrangement and strict mul-then-add accumulation.
    ///
    /// # Safety
    /// The CPU must support AVX2 (see [`super::avx2_available`]).
    ///
    /// # Panics
    /// Same shape panics as [`crate::gemm::gemm_nt_rows_slice`].
    #[target_feature(enable = "avx2")]
    pub unsafe fn gemm_nt_rows_slice(
        a: &[f32],
        m: usize,
        k: usize,
        bs: &[f32],
        n: usize,
        rows: std::ops::Range<usize>,
        out: &mut [f32],
    ) {
        crate::gemm::check_nt_rows_shapes(a, m, k, bs, n, &rows, out);
        let width = rows.len();
        with_tile_scratch(k, |tile| {
            let mut j0 = rows.start;
            while j0 < rows.end {
                let j1 = (j0 + NT_ROW_TILE).min(rows.end);
                let groups = (j1 - j0) / NT_UNROLL;
                crate::gemm::transpose_tile(bs, k, j0, j1, tile);
                for i in 0..m {
                    let a_row = &a[i * k..(i + 1) * k];
                    let out_row = &mut out[i * width..(i + 1) * width];
                    let col0 = j0 - rows.start;
                    for g in 0..groups {
                        let base = g * NT_UNROLL;
                        // 8 strict accumulator chains, one per lane:
                        // mul then add, never fused.
                        let mut acc = _mm256_setzero_ps();
                        for (c, &av) in a_row.iter().enumerate() {
                            let lanes = _mm256_loadu_ps(tile.as_ptr().add(c * NT_ROW_TILE + base));
                            acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(av), lanes));
                        }
                        _mm256_storeu_ps(out_row.as_mut_ptr().add(col0 + base), acc);
                    }
                    // Ragged tail of the tile: plain dots (scalar path).
                    for j in (j0 + groups * NT_UNROLL)..j1 {
                        out_row[j - rows.start] = vecops::dot(a_row, &bs[j * k..(j + 1) * k]);
                    }
                }
                j0 = j1;
            }
        });
    }

    /// AVX2 [`crate::gemm::gemm_acc_t`]: lanes = 8 output columns, each
    /// accumulating over table rows `r` in increasing order — per element
    /// `out[c] = out[c] + s[r] · b[r][c]`, two separate rounded operations,
    /// the scalar `axpy` step exactly. The `k % 8` column tail is scalar.
    ///
    /// # Safety
    /// The CPU must support AVX2 (see [`super::avx2_available`]).
    ///
    /// # Panics
    /// Same shape panics as [`crate::gemm::gemm_acc_t`].
    #[target_feature(enable = "avx2")]
    pub unsafe fn gemm_acc_t(s: &[f32], m: usize, b: &Mat, out: &mut [f32]) {
        let n = b.rows();
        let k = b.cols();
        assert_eq!(s.len(), m * n, "gemm_acc_t: S shape mismatch");
        assert_eq!(out.len(), m * k, "gemm_acc_t: out shape mismatch");
        vecops::zero(out);
        let wide = k - k % 8;
        for r in 0..n {
            let b_row = b.row(r);
            for i in 0..m {
                let coeff = s[i * n + r];
                let coeff8 = _mm256_set1_ps(coeff);
                let y = &mut out[i * k..(i + 1) * k];
                let mut c = 0;
                while c < wide {
                    let yv = _mm256_loadu_ps(y.as_ptr().add(c));
                    let xv = _mm256_loadu_ps(b_row.as_ptr().add(c));
                    let sum = _mm256_add_ps(yv, _mm256_mul_ps(coeff8, xv));
                    _mm256_storeu_ps(y.as_mut_ptr().add(c), sum);
                    c += 8;
                }
                while c < k {
                    y[c] += coeff * b_row[c];
                    c += 1;
                }
            }
        }
    }

    /// AVX2 [`crate::gemm::gemm_acc_t_rows`]: the shard-range variant of
    /// [`gemm_acc_t`] above — the same lane-per-column add-after-multiply
    /// steps over table rows `r ∈ rows` in increasing order, with the
    /// coefficient read from the shard-compact block
    /// (`s[i·w + (r − r_0)]`). Per-shard bytes equal the scalar reference's.
    ///
    /// # Safety
    /// The CPU must support AVX2 (see [`super::avx2_available`]).
    ///
    /// # Panics
    /// Same shape panics as [`crate::gemm::gemm_acc_t_rows`].
    #[target_feature(enable = "avx2")]
    pub unsafe fn gemm_acc_t_rows(
        s: &[f32],
        m: usize,
        b: &Mat,
        rows: std::ops::Range<usize>,
        out: &mut [f32],
    ) {
        let n = b.rows();
        let k = b.cols();
        crate::gemm::check_acc_t_rows_shapes(s, m, n, k, &rows, out);
        let width = rows.len();
        vecops::zero(out);
        let wide = k - k % 8;
        for (j, r) in rows.enumerate() {
            let b_row = b.row(r);
            for i in 0..m {
                let coeff = s[i * width + j];
                let coeff8 = _mm256_set1_ps(coeff);
                let y = &mut out[i * k..(i + 1) * k];
                let mut c = 0;
                while c < wide {
                    let yv = _mm256_loadu_ps(y.as_ptr().add(c));
                    let xv = _mm256_loadu_ps(b_row.as_ptr().add(c));
                    let sum = _mm256_add_ps(yv, _mm256_mul_ps(coeff8, xv));
                    _mm256_storeu_ps(y.as_mut_ptr().add(c), sum);
                    c += 8;
                }
                while c < k {
                    y[c] += coeff * b_row[c];
                    c += 1;
                }
            }
        }
    }

    /// Exact integer i8 dot product without shape checks: the shared body
    /// of [`dot_i8`] and the [`gemm_i8_nt_rows`] inner loop. 32 codes per
    /// step — each 256-bit load is split into two 128-bit halves,
    /// sign-extended to i16 (`_mm256_cvtepi8_epi16`) and
    /// multiply-accumulated pairwise into i32 lanes (`_mm256_madd_epi16`);
    /// lane sums and the scalar tail fold with ordinary integer adds.
    /// Integer addition is associative, so this is the exact sum — equal
    /// to the scalar reference by construction. Lanes stay exact: each of
    /// the 8 accumulator lanes receives `k/8` products of magnitude
    /// ≤ 127², within i32 for every `k ≤ I8_DOT_MAX_K`.
    ///
    /// # Safety
    /// The CPU must support AVX2, and `a.len() == b.len()` must hold
    /// (callers assert it along with the `I8_DOT_MAX_K` bound).
    #[target_feature(enable = "avx2")]
    unsafe fn dot_i8_body(a: &[i8], b: &[i8], k: usize) -> i32 {
        debug_assert_eq!(a.len(), k);
        debug_assert_eq!(b.len(), k);
        let mut acc = _mm256_setzero_si256();
        let chunks = k / 32;
        for c in 0..chunks {
            let av = _mm256_loadu_si256(a.as_ptr().add(c * 32).cast::<__m256i>());
            let bv = _mm256_loadu_si256(b.as_ptr().add(c * 32).cast::<__m256i>());
            let alo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(av));
            let ahi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256::<1>(av));
            let blo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(bv));
            let bhi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256::<1>(bv));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(alo, blo));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(ahi, bhi));
        }
        let mut lanes = [0i32; 8];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast::<__m256i>(), acc);
        let mut total: i32 = lanes.iter().sum();
        for c in chunks * 32..k {
            total += *a.get_unchecked(c) as i32 * *b.get_unchecked(c) as i32;
        }
        total
    }

    /// AVX2 [`crate::qgemm::dot_i8`]: exact integer accumulation, so the
    /// result is bitwise-equal to the scalar reference (see
    /// `dot_i8_body` for the lane arrangement and exactness argument).
    ///
    /// # Safety
    /// The CPU must support AVX2 (see [`super::avx2_available`]).
    ///
    /// # Panics
    /// Same shape panics as [`crate::qgemm::dot_i8`].
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
        assert_eq!(a.len(), b.len(), "dot_i8: length mismatch");
        assert!(
            a.len() <= crate::qgemm::I8_DOT_MAX_K,
            "dot_i8: length {} exceeds exact-i32 bound",
            a.len()
        );
        dot_i8_body(a, b, a.len())
    }

    /// Sign-extend i8 codes to i16, 16 at a time (`_mm256_cvtepi8_epi16`),
    /// scalar tail. The i8 GEMM widens both operands **once** up front so
    /// its inner loop is pure load + `madd` — the per-pair sign-extension
    /// shuffles would otherwise saturate the shuffle port and dominate the
    /// kernel at coarse-tier dimensions (k = one cache line).
    ///
    /// # Safety
    /// The CPU must support AVX2, and `dst.len() == src.len()`.
    #[target_feature(enable = "avx2")]
    unsafe fn widen_i8_to_i16(src: &[i8], dst: &mut [i16]) {
        debug_assert_eq!(src.len(), dst.len());
        let n = src.len();
        let wide = n - n % 16;
        let mut c = 0;
        while c < wide {
            let v = _mm_loadu_si128(src.as_ptr().add(c).cast::<__m128i>());
            _mm256_storeu_si256(dst.as_mut_ptr().add(c).cast::<__m256i>(), _mm256_cvtepi8_epi16(v));
            c += 16;
        }
        while c < n {
            *dst.get_unchecked_mut(c) = *src.get_unchecked(c) as i16;
            c += 1;
        }
    }

    /// Entity rows reduced together per reduction in the i8 GEMM: four
    /// i32 dot products collapse through two `hadd` rounds and one
    /// cross-lane add into a single 4-lane store.
    const I8_ROW_GROUP: usize = 4;

    /// AVX2 [`crate::qgemm::gemm_i8_nt_rows`]: both operands are widened
    /// to i16 once (`widen_i8_to_i16` — queries per call, entity rows
    /// per `I8_ROW_GROUP` group, shared across the whole query block),
    /// so the inner loop is two loads, one `_mm256_madd_epi16` and one
    /// add per 16 codes. Four entity rows accumulate side by side and
    /// reduce together: `hadd(acc0,acc1)`, `hadd(acc2,acc3)`, `hadd` of
    /// those two, then the 128-bit halves added — yielding the four dots
    /// in row order for one contiguous store. Every intermediate is an
    /// exact i32 sum of products bounded by `127²·k` (within i32 for all
    /// `k ≤ I8_DOT_MAX_K`), and integer addition is associative, so the
    /// result equals the scalar reference bitwise by construction. Ragged
    /// row and code tails fall back to `dot_i8_body` / scalar products.
    ///
    /// # Safety
    /// The CPU must support AVX2 (see [`super::avx2_available`]).
    ///
    /// # Panics
    /// Same shape panics as [`crate::qgemm::gemm_i8_nt_rows`].
    #[target_feature(enable = "avx2")]
    pub unsafe fn gemm_i8_nt_rows(
        a: &[i8],
        m: usize,
        k: usize,
        b: &[i8],
        n: usize,
        rows: std::ops::Range<usize>,
        out: &mut [i32],
    ) {
        crate::qgemm::check_i8_nt_rows_shapes(a, m, k, b, n, &rows, out);
        let width = rows.len();
        let steps = k / 16;
        let k_wide = steps * 16;
        let mut q16 = vec![0i16; m * k];
        widen_i8_to_i16(&a[..m * k], &mut q16);
        let mut b16 = vec![0i16; I8_ROW_GROUP * k];
        let groups = width / I8_ROW_GROUP;
        for g in 0..groups {
            let j0 = rows.start + g * I8_ROW_GROUP;
            widen_i8_to_i16(&b[j0 * k..(j0 + I8_ROW_GROUP) * k], &mut b16);
            for i in 0..m {
                let q_row = q16.as_ptr().add(i * k);
                let mut acc0 = _mm256_setzero_si256();
                let mut acc1 = _mm256_setzero_si256();
                let mut acc2 = _mm256_setzero_si256();
                let mut acc3 = _mm256_setzero_si256();
                for s in 0..steps {
                    let qv = _mm256_loadu_si256(q_row.add(s * 16).cast::<__m256i>());
                    let bp = b16.as_ptr().add(s * 16);
                    let b0 = _mm256_loadu_si256(bp.cast::<__m256i>());
                    let b1 = _mm256_loadu_si256(bp.add(k).cast::<__m256i>());
                    let b2 = _mm256_loadu_si256(bp.add(2 * k).cast::<__m256i>());
                    let b3 = _mm256_loadu_si256(bp.add(3 * k).cast::<__m256i>());
                    acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(qv, b0));
                    acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(qv, b1));
                    acc2 = _mm256_add_epi32(acc2, _mm256_madd_epi16(qv, b2));
                    acc3 = _mm256_add_epi32(acc3, _mm256_madd_epi16(qv, b3));
                }
                // Reduce the four row accumulators to [dot0..dot3]:
                // hadd keeps 128-bit lane locality, the final add folds
                // the upper halves in.
                let t0 = _mm256_hadd_epi32(acc0, acc1);
                let t1 = _mm256_hadd_epi32(acc2, acc3);
                let t2 = _mm256_hadd_epi32(t0, t1);
                let mut sums = [0i32; 4];
                _mm_storeu_si128(
                    sums.as_mut_ptr().cast::<__m128i>(),
                    _mm_add_epi32(_mm256_castsi256_si128(t2), _mm256_extracti128_si256::<1>(t2)),
                );
                let a_row = &a[i * k..(i + 1) * k];
                let out_row = &mut out[i * width..(i + 1) * width];
                for r in 0..I8_ROW_GROUP {
                    let mut total = sums[r];
                    let b_row = &b[(j0 + r) * k..(j0 + r + 1) * k];
                    for c in k_wide..k {
                        total += *a_row.get_unchecked(c) as i32 * *b_row.get_unchecked(c) as i32;
                    }
                    out_row[j0 - rows.start + r] = total;
                }
            }
        }
        // Ragged row tail: per-pair dots.
        for j in (rows.start + groups * I8_ROW_GROUP)..rows.end {
            let b_row = &b[j * k..(j + 1) * k];
            for i in 0..m {
                out[i * width + (j - rows.start)] = dot_i8_body(&a[i * k..(i + 1) * k], b_row, k);
            }
        }
    }

    /// AVX2 [`crate::qgemm::coarse_sift`]: four entities per step — the
    /// i32 dots and f32 scales widen to f64 lanes (exact conversions),
    /// two `_mm256_mul_pd` evaluate `(s_q · s_e) · dot` with scalar f64's
    /// exact rounding (one IEEE multiply per step, lane-wise identical to
    /// the scalar backend), and `_CMP_GE_OQ` is precisely the scalar
    /// `>=` — false on NaN. The common all-reject step costs one branch.
    ///
    /// # Safety
    /// The CPU must support AVX2 (see [`super::avx2_available`]).
    ///
    /// # Panics
    /// Same shape panics as [`crate::qgemm::coarse_sift`].
    #[target_feature(enable = "avx2")]
    pub unsafe fn coarse_sift(
        dots: &[i32],
        scales: &[f32],
        sq: f64,
        thr: f64,
        base: u32,
        out: &mut Vec<u32>,
    ) {
        assert_eq!(dots.len(), scales.len(), "coarse_sift: length mismatch");
        let n = dots.len();
        let sqv = _mm256_set1_pd(sq);
        let thrv = _mm256_set1_pd(thr);
        let wide = n - n % 4;
        let mut j = 0;
        while j < wide {
            let d = _mm256_cvtepi32_pd(_mm_loadu_si128(dots.as_ptr().add(j).cast::<__m128i>()));
            let s = _mm256_cvtps_pd(_mm_loadu_ps(scales.as_ptr().add(j)));
            let coarse = _mm256_mul_pd(_mm256_mul_pd(sqv, s), d);
            let mask = _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_GE_OQ>(coarse, thrv));
            if mask != 0 {
                for bit in 0..4 {
                    if mask & (1 << bit) != 0 {
                        out.push(base + (j + bit) as u32);
                    }
                }
            }
            j += 4;
        }
        while j < n {
            if (sq * *scales.get_unchecked(j) as f64) * *dots.get_unchecked(j) as f64 >= thr {
                out.push(base + j as u32);
            }
            j += 1;
        }
    }

    /// AVX2 [`crate::vecops::count_cmp`]: 8 floats compared per step with
    /// ordered-quiet predicates (`_CMP_GT_OQ` / `_CMP_EQ_OQ` — the exact
    /// IEEE semantics of the scalar `>` / `==`, so NaN counts as neither
    /// and `+0.0 == -0.0` ties), each all-ones mask subtracted from its
    /// own `u32` lane counter. Counts are order-independent integers, so
    /// the lane arrangement cannot change the result; slices up to
    /// `8 · 2³²` elements are exact.
    ///
    /// # Safety
    /// The CPU must support AVX2 (see [`super::avx2_available`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn count_cmp(scores: &[f32], threshold: f32) -> (usize, usize) {
        let t = _mm256_set1_ps(threshold);
        let mut gt = _mm256_setzero_si256();
        let mut eq = _mm256_setzero_si256();
        let mut chunks = scores.chunks_exact(8);
        for ch in chunks.by_ref() {
            let v = _mm256_loadu_ps(ch.as_ptr());
            // A true compare is an all-ones lane (-1 as i32): subtracting
            // it increments the lane's counter branchlessly.
            gt = _mm256_sub_epi32(gt, _mm256_castps_si256(_mm256_cmp_ps::<_CMP_GT_OQ>(v, t)));
            eq = _mm256_sub_epi32(eq, _mm256_castps_si256(_mm256_cmp_ps::<_CMP_EQ_OQ>(v, t)));
        }
        let mut gt_lanes = [0u32; 8];
        let mut eq_lanes = [0u32; 8];
        _mm256_storeu_si256(gt_lanes.as_mut_ptr().cast::<__m256i>(), gt);
        _mm256_storeu_si256(eq_lanes.as_mut_ptr().cast::<__m256i>(), eq);
        let mut gt_total: usize = gt_lanes.iter().map(|&c| c as usize).sum();
        let mut eq_total: usize = eq_lanes.iter().map(|&c| c as usize).sum();
        for &s in chunks.remainder() {
            gt_total += (s > threshold) as usize;
            eq_total += (s == threshold) as usize;
        }
        (gt_total, eq_total)
    }
}

/// The relaxed-precision FMA kernels behind [`KernelPolicy::Fast`]: fused
/// multiply-add plus **multiple accumulator chains per output**, folded at
/// the end. Both moves break the bit-identity contract on purpose —
/// contraction skips one rounding per multiply-add, and splitting one
/// output's reduction across four chains reassociates the sum — and both
/// are exactly what buys throughput: the exact kernel's single
/// add-after-add chain is serialised on the FP-add latency (4–5 cycles),
/// while four independent `fmadd` chains keep the FMA pipes full.
///
/// The error these kernels can introduce is classical: each output is a
/// dot product evaluated with ≤ k fused roundings instead of 2k separate
/// ones, under a different association — bounded by `O(k·ε)` relative to
/// the *absolute* sum `Σ|aᵢ·bᵢ|` (not the possibly-cancelled result). The
/// relaxed-equivalence suite (`tests/relaxed_fast.rs`) pins that bound and
/// measures the rank-inversion rate it can cause.
///
/// All functions are `unsafe` for one reason only: the caller must
/// guarantee the CPU supports AVX2 **and** FMA (`#[target_feature]`
/// requirement) — [`KernelPolicy::resolve`] establishes this via
/// [`fma_available`]; tests may call these directly under the same guard.
/// Shape preconditions are asserted exactly as in the exact kernels.
#[cfg(target_arch = "x86_64")]
pub mod avx2fma {
    use crate::gemm::{with_tile_scratch, NT_ROW_TILE, NT_UNROLL};
    use crate::vecops;
    use std::arch::x86_64::*;

    const _: () = assert!(NT_UNROLL == 8, "FMA gemm_nt assumes 8-wide unroll groups");

    /// How many independent accumulator chains each 8-output group runs
    /// over the shared inner dimension. Four chains cover the FMA latency
    /// (~4 cycles) with one fused op in flight per cycle per group.
    const FAST_CHAINS: usize = 4;

    /// Fast-tier [`crate::gemm::gemm_nt_rows_slice`]: same tile layout and
    /// ragged tails as the exact kernels, but each 8-output group
    /// accumulates over the inner dimension through `FAST_CHAINS` (4)
    /// independent `_mm256_fmadd_ps` chains (k strided by 4), folded
    /// `(c0+c1)+(c2+c3)` at the end. Groups are walked in pairs sharing
    /// one set of broadcast registers — the kernel is load-port-bound, so
    /// halving the broadcasts (not more chains) is what buys throughput.
    /// Output differs from the exact path only in rounding (see the
    /// module docs).
    ///
    /// # Safety
    /// The CPU must support AVX2 and FMA (see [`super::fma_available`]).
    ///
    /// # Panics
    /// Same shape panics as [`crate::gemm::gemm_nt_rows_slice`].
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn gemm_nt_rows_slice(
        a: &[f32],
        m: usize,
        k: usize,
        bs: &[f32],
        n: usize,
        rows: std::ops::Range<usize>,
        out: &mut [f32],
    ) {
        crate::gemm::check_nt_rows_shapes(a, m, k, bs, n, &rows, out);
        let width = rows.len();
        let k_wide = k - k % FAST_CHAINS;
        with_tile_scratch(k, |tile| {
            let mut j0 = rows.start;
            while j0 < rows.end {
                let j1 = (j0 + NT_ROW_TILE).min(rows.end);
                let groups = (j1 - j0) / NT_UNROLL;
                crate::gemm::transpose_tile(bs, k, j0, j1, tile);
                for i in 0..m {
                    let a_row = &a[i * k..(i + 1) * k];
                    let out_row = &mut out[i * width..(i + 1) * width];
                    let col0 = j0 - rows.start;
                    // Paired groups: 16 outputs per pass, one broadcast of
                    // each `a` coefficient feeding both groups' chains.
                    let mut g = 0;
                    while g + 1 < groups {
                        let base = g * NT_UNROLL;
                        let mut a0 = _mm256_setzero_ps();
                        let mut a1 = _mm256_setzero_ps();
                        let mut a2 = _mm256_setzero_ps();
                        let mut a3 = _mm256_setzero_ps();
                        let mut b0 = _mm256_setzero_ps();
                        let mut b1 = _mm256_setzero_ps();
                        let mut b2 = _mm256_setzero_ps();
                        let mut b3 = _mm256_setzero_ps();
                        let mut c = 0;
                        while c < k_wide {
                            let t = tile.as_ptr().add(c * NT_ROW_TILE + base);
                            let w0 = _mm256_set1_ps(*a_row.get_unchecked(c));
                            let w1 = _mm256_set1_ps(*a_row.get_unchecked(c + 1));
                            let w2 = _mm256_set1_ps(*a_row.get_unchecked(c + 2));
                            let w3 = _mm256_set1_ps(*a_row.get_unchecked(c + 3));
                            a0 = _mm256_fmadd_ps(w0, _mm256_loadu_ps(t), a0);
                            b0 = _mm256_fmadd_ps(w0, _mm256_loadu_ps(t.add(8)), b0);
                            a1 = _mm256_fmadd_ps(w1, _mm256_loadu_ps(t.add(NT_ROW_TILE)), a1);
                            b1 = _mm256_fmadd_ps(w1, _mm256_loadu_ps(t.add(NT_ROW_TILE + 8)), b1);
                            a2 = _mm256_fmadd_ps(w2, _mm256_loadu_ps(t.add(2 * NT_ROW_TILE)), a2);
                            b2 = _mm256_fmadd_ps(
                                w2,
                                _mm256_loadu_ps(t.add(2 * NT_ROW_TILE + 8)),
                                b2,
                            );
                            a3 = _mm256_fmadd_ps(w3, _mm256_loadu_ps(t.add(3 * NT_ROW_TILE)), a3);
                            b3 = _mm256_fmadd_ps(
                                w3,
                                _mm256_loadu_ps(t.add(3 * NT_ROW_TILE + 8)),
                                b3,
                            );
                            c += FAST_CHAINS;
                        }
                        // k % 4 tail folds into chain 0 of each group.
                        while c < k {
                            let t = tile.as_ptr().add(c * NT_ROW_TILE + base);
                            let w = _mm256_set1_ps(*a_row.get_unchecked(c));
                            a0 = _mm256_fmadd_ps(w, _mm256_loadu_ps(t), a0);
                            b0 = _mm256_fmadd_ps(w, _mm256_loadu_ps(t.add(8)), b0);
                            c += 1;
                        }
                        let acc_a = _mm256_add_ps(_mm256_add_ps(a0, a1), _mm256_add_ps(a2, a3));
                        let acc_b = _mm256_add_ps(_mm256_add_ps(b0, b1), _mm256_add_ps(b2, b3));
                        _mm256_storeu_ps(out_row.as_mut_ptr().add(col0 + base), acc_a);
                        _mm256_storeu_ps(out_row.as_mut_ptr().add(col0 + base + 8), acc_b);
                        g += 2;
                    }
                    // Odd group left over: the single-group chain layout.
                    if g < groups {
                        let base = g * NT_UNROLL;
                        let mut acc0 = _mm256_setzero_ps();
                        let mut acc1 = _mm256_setzero_ps();
                        let mut acc2 = _mm256_setzero_ps();
                        let mut acc3 = _mm256_setzero_ps();
                        let mut c = 0;
                        while c < k_wide {
                            let t = tile.as_ptr().add(c * NT_ROW_TILE + base);
                            acc0 = _mm256_fmadd_ps(
                                _mm256_set1_ps(*a_row.get_unchecked(c)),
                                _mm256_loadu_ps(t),
                                acc0,
                            );
                            acc1 = _mm256_fmadd_ps(
                                _mm256_set1_ps(*a_row.get_unchecked(c + 1)),
                                _mm256_loadu_ps(t.add(NT_ROW_TILE)),
                                acc1,
                            );
                            acc2 = _mm256_fmadd_ps(
                                _mm256_set1_ps(*a_row.get_unchecked(c + 2)),
                                _mm256_loadu_ps(t.add(2 * NT_ROW_TILE)),
                                acc2,
                            );
                            acc3 = _mm256_fmadd_ps(
                                _mm256_set1_ps(*a_row.get_unchecked(c + 3)),
                                _mm256_loadu_ps(t.add(3 * NT_ROW_TILE)),
                                acc3,
                            );
                            c += FAST_CHAINS;
                        }
                        while c < k {
                            acc0 = _mm256_fmadd_ps(
                                _mm256_set1_ps(*a_row.get_unchecked(c)),
                                _mm256_loadu_ps(tile.as_ptr().add(c * NT_ROW_TILE + base)),
                                acc0,
                            );
                            c += 1;
                        }
                        let acc =
                            _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3));
                        _mm256_storeu_ps(out_row.as_mut_ptr().add(col0 + base), acc);
                    }
                    // Ragged tail of the tile: plain dots (exact path; the
                    // relaxed contract never *requires* imprecision).
                    for j in (j0 + groups * NT_UNROLL)..j1 {
                        out_row[j - rows.start] = vecops::dot(a_row, &bs[j * k..(j + 1) * k]);
                    }
                }
                j0 = j1;
            }
        });
    }

    /// Fast-tier [`crate::gemm::gemm_acc_t`]: the same row-major streaming
    /// accumulation over table rows, with the per-element
    /// multiply-then-add fused into one `_mm256_fmadd_ps` and the column
    /// loop unrolled two registers wide. The accumulation *order* over
    /// rows is unchanged — only the per-step rounding is contracted.
    ///
    /// # Safety
    /// The CPU must support AVX2 and FMA (see [`super::fma_available`]).
    ///
    /// # Panics
    /// Same shape panics as [`crate::gemm::gemm_acc_t`].
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn gemm_acc_t(s: &[f32], m: usize, b: &crate::matrix::Mat, out: &mut [f32]) {
        let n = b.rows();
        let k = b.cols();
        assert_eq!(s.len(), m * n, "gemm_acc_t: S shape mismatch");
        assert_eq!(out.len(), m * k, "gemm_acc_t: out shape mismatch");
        vecops::zero(out);
        let wide16 = k - k % 16;
        let wide8 = k - k % 8;
        for r in 0..n {
            let b_row = b.row(r);
            for i in 0..m {
                let coeff = s[i * n + r];
                let coeff8 = _mm256_set1_ps(coeff);
                let y = &mut out[i * k..(i + 1) * k];
                let mut c = 0;
                while c < wide16 {
                    let y0 = _mm256_loadu_ps(y.as_ptr().add(c));
                    let y1 = _mm256_loadu_ps(y.as_ptr().add(c + 8));
                    let x0 = _mm256_loadu_ps(b_row.as_ptr().add(c));
                    let x1 = _mm256_loadu_ps(b_row.as_ptr().add(c + 8));
                    _mm256_storeu_ps(y.as_mut_ptr().add(c), _mm256_fmadd_ps(coeff8, x0, y0));
                    _mm256_storeu_ps(y.as_mut_ptr().add(c + 8), _mm256_fmadd_ps(coeff8, x1, y1));
                    c += 16;
                }
                while c < wide8 {
                    let yv = _mm256_loadu_ps(y.as_ptr().add(c));
                    let xv = _mm256_loadu_ps(b_row.as_ptr().add(c));
                    _mm256_storeu_ps(y.as_mut_ptr().add(c), _mm256_fmadd_ps(coeff8, xv, yv));
                    c += 8;
                }
                while c < k {
                    y[c] = coeff.mul_add(b_row[c], y[c]);
                    c += 1;
                }
            }
        }
    }

    /// Fast-tier [`crate::gemm::gemm_acc_t_rows`]: the shard-range variant
    /// of [`gemm_acc_t`] above — the same FMA-contracted streaming
    /// accumulation, restricted to table rows `r ∈ rows` with the
    /// coefficient read from the shard-compact block.
    ///
    /// # Safety
    /// The CPU must support AVX2 and FMA (see [`super::fma_available`]).
    ///
    /// # Panics
    /// Same shape panics as [`crate::gemm::gemm_acc_t_rows`].
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn gemm_acc_t_rows(
        s: &[f32],
        m: usize,
        b: &crate::matrix::Mat,
        rows: std::ops::Range<usize>,
        out: &mut [f32],
    ) {
        let n = b.rows();
        let k = b.cols();
        crate::gemm::check_acc_t_rows_shapes(s, m, n, k, &rows, out);
        let width = rows.len();
        vecops::zero(out);
        let wide16 = k - k % 16;
        let wide8 = k - k % 8;
        for (j, r) in rows.enumerate() {
            let b_row = b.row(r);
            for i in 0..m {
                let coeff = s[i * width + j];
                let coeff8 = _mm256_set1_ps(coeff);
                let y = &mut out[i * k..(i + 1) * k];
                let mut c = 0;
                while c < wide16 {
                    let y0 = _mm256_loadu_ps(y.as_ptr().add(c));
                    let y1 = _mm256_loadu_ps(y.as_ptr().add(c + 8));
                    let x0 = _mm256_loadu_ps(b_row.as_ptr().add(c));
                    let x1 = _mm256_loadu_ps(b_row.as_ptr().add(c + 8));
                    _mm256_storeu_ps(y.as_mut_ptr().add(c), _mm256_fmadd_ps(coeff8, x0, y0));
                    _mm256_storeu_ps(y.as_mut_ptr().add(c + 8), _mm256_fmadd_ps(coeff8, x1, y1));
                    c += 16;
                }
                while c < wide8 {
                    let yv = _mm256_loadu_ps(y.as_ptr().add(c));
                    let xv = _mm256_loadu_ps(b_row.as_ptr().add(c));
                    _mm256_storeu_ps(y.as_mut_ptr().add(c), _mm256_fmadd_ps(coeff8, xv, yv));
                    c += 8;
                }
                while c < k {
                    y[c] = coeff.mul_add(b_row[c], y[c]);
                    c += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_name_is_stable() {
        assert_eq!(Backend::Scalar.name(), "scalar");
        assert_eq!(Backend::Avx2.name(), "avx2");
    }

    #[test]
    fn policy_names_are_stable() {
        assert_eq!(KernelPolicy::Exact.name(), "exact");
        assert_eq!(KernelPolicy::Fast.name(), "fast");
        assert_eq!(ResolvedKernel::Scalar.name(), "scalar");
        assert_eq!(ResolvedKernel::Avx2.name(), "avx2");
        assert_eq!(ResolvedKernel::Avx2Fma.name(), "avx2+fma");
    }

    #[test]
    fn exact_is_the_default_policy() {
        assert_eq!(KernelPolicy::default(), KernelPolicy::Exact);
    }

    #[test]
    fn policy_resolution_is_consistent_with_detection() {
        // Exact never resolves to the FMA kernels.
        assert_ne!(KernelPolicy::Exact.resolve(), ResolvedKernel::Avx2Fma);
        match active_backend() {
            Backend::Scalar => {
                // Forced scalar (or no AVX2): both policies pin scalar.
                assert_eq!(KernelPolicy::Exact.resolve(), ResolvedKernel::Scalar);
                assert_eq!(KernelPolicy::Fast.resolve(), ResolvedKernel::Scalar);
            }
            Backend::Avx2 => {
                assert_eq!(KernelPolicy::Exact.resolve(), ResolvedKernel::Avx2);
                let want =
                    if fma_available() { ResolvedKernel::Avx2Fma } else { ResolvedKernel::Avx2 };
                assert_eq!(KernelPolicy::Fast.resolve(), want);
            }
        }
    }

    #[test]
    fn active_backend_is_latched_and_consistent() {
        let first = active_backend();
        assert_eq!(active_backend(), first, "dispatch decision must be stable");
        if first == Backend::Avx2 {
            assert!(avx2_available(), "AVX2 backend selected without CPU support");
        }
    }
}

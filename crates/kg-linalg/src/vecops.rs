//! Vector primitives used throughout the training and search code.
//!
//! All functions operate on `f32` slices, panic on length mismatch (length
//! mismatches are programming errors, never data errors), and avoid
//! allocation so they can sit in the innermost training loops.

/// Dot product `a · b`.
///
/// # Panics
/// Panics if `a.len() != b.len()`.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b.iter()) {
        acc += x * y;
    }
    acc
}

/// Triple dot product `⟨a, b, c⟩ = Σ_i a_i·b_i·c_i` — the basic building
/// block of every bilinear scoring function (paper, Notations).
#[inline]
pub fn triple_dot(a: &[f32], b: &[f32], c: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "triple_dot: length mismatch");
    assert_eq!(a.len(), c.len(), "triple_dot: length mismatch");
    let mut acc = 0.0f32;
    for i in 0..a.len() {
        acc += a[i] * b[i] * c[i];
    }
    acc
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// `y += alpha * (a ∘ b)` (Hadamard product accumulate) — the gradient of a
/// triple dot product with respect to its third argument.
#[inline]
pub fn hadamard_axpy(alpha: f32, a: &[f32], b: &[f32], y: &mut [f32]) {
    assert_eq!(a.len(), y.len(), "hadamard_axpy: length mismatch");
    assert_eq!(b.len(), y.len(), "hadamard_axpy: length mismatch");
    for i in 0..y.len() {
        y[i] += alpha * a[i] * b[i];
    }
}

/// Element-wise product written into `out`: `out = a ∘ b`.
#[inline]
pub fn hadamard(a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), b.len(), "hadamard: length mismatch");
    assert_eq!(a.len(), out.len(), "hadamard: length mismatch");
    for i in 0..out.len() {
        out[i] = a[i] * b[i];
    }
}

/// Scale in place: `x *= alpha`.
#[inline]
pub fn scale(alpha: f32, x: &mut [f32]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Squared L2 norm.
#[inline]
pub fn norm2_sq(x: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for xi in x {
        acc += xi * xi;
    }
    acc
}

/// L2 norm.
#[inline]
pub fn norm2(x: &[f32]) -> f32 {
    norm2_sq(x).sqrt()
}

/// L1 norm.
#[inline]
pub fn norm1(x: &[f32]) -> f32 {
    x.iter().map(|v| v.abs()).sum()
}

/// Fill with zeros.
#[inline]
pub fn zero(x: &mut [f32]) {
    for xi in x.iter_mut() {
        *xi = 0.0;
    }
}

/// Accumulator lanes in [`count_cmp`]: four independent integer chains, so
/// the comparison sweep vectorises instead of serialising on one counter.
const CMP_LANES: usize = 4;

/// Branchless comparison counting: `(#elements > threshold, #elements ==
/// threshold)` over the whole slice — the hot sweep of filtered ranking
/// (`rank = 1 + #better + #ties/2`).
///
/// Both comparisons are materialised as `bool as u32` adds into
/// `CMP_LANES` independent accumulators, so there is no data-dependent
/// branch for the predictor to miss on tie-heavy score rows and the loop
/// autovectorises to SIMD compare + subtract masks.
///
/// IEEE semantics are exactly those of the scalar `>` / `==` operators:
/// `+0.0 == -0.0` counts as a tie, and NaN (on either side) counts as
/// neither greater nor equal. The counts are therefore order-independent
/// integers — partial counts over disjoint sub-slices sum to the full-slice
/// counts exactly, which is what lets sharded ranking merge per-shard counts
/// into bit-identical global ranks. Each lane counts into a `u32`, so slices
/// up to `4 · 2³²` elements are exact.
///
/// Dispatches to the explicit AVX2 sweep ([`crate::simd::avx2::count_cmp`]
/// on x86-64) when [`crate::simd::active_backend`] selected it — the
/// counts are identical whatever the backend, because both lane layouts
/// sum the same order-independent integers.
#[inline]
pub fn count_cmp(scores: &[f32], threshold: f32) -> (usize, usize) {
    match crate::simd::active_backend() {
        // SAFETY: the AVX2 backend is only ever selected after
        // `is_x86_feature_detected!("avx2")` confirmed CPU support.
        #[cfg(target_arch = "x86_64")]
        crate::simd::Backend::Avx2 => unsafe { crate::simd::avx2::count_cmp(scores, threshold) },
        _ => count_cmp_scalar(scores, threshold),
    }
}

/// The scalar reference backend of [`count_cmp`], bypassing dispatch.
/// Public for A/B benchmarking and backend-equivalence tests; returns the
/// same counts as the dispatched sweep on every input.
#[inline]
pub fn count_cmp_scalar(scores: &[f32], threshold: f32) -> (usize, usize) {
    let mut gt = [0u32; CMP_LANES];
    let mut eq = [0u32; CMP_LANES];
    let mut chunks = scores.chunks_exact(CMP_LANES);
    for ch in chunks.by_ref() {
        for u in 0..CMP_LANES {
            gt[u] += (ch[u] > threshold) as u32;
            eq[u] += (ch[u] == threshold) as u32;
        }
    }
    for (u, &s) in chunks.remainder().iter().enumerate() {
        gt[u] += (s > threshold) as u32;
        eq[u] += (s == threshold) as u32;
    }
    (gt.iter().map(|&c| c as usize).sum(), eq.iter().map(|&c| c as usize).sum())
}

/// Accumulator lanes for [`softmax_inplace`]'s exponential sum — like
/// [`CMP_LANES`], independent chains that vectorise instead of serialising
/// on one `f32` accumulator.
const SOFTMAX_LANES: usize = 4;

/// Numerically-stable in-place softmax. Returns the log-sum-exp so callers
/// can compute a cross-entropy loss without a second pass.
///
/// **Not bit-identity-contracted.** The exponential sum accumulates in
/// `SOFTMAX_LANES` independent lanes (folded in a fixed order at the
/// end), so while the function is fully deterministic, its sum — and
/// therefore every normalised probability — differs in the last bits from
/// a naive serial-sum softmax. This is safe *only* because softmax sits
/// outside every bit-identity-contracted path: raw scores are ranked
/// before any softmax, and every consumer that needs reproducibility
/// (the multiclass losses' reference and block paths, NNM training)
/// funnels through this one function, so batched-vs-sequential
/// equivalence compares like with like. Do not compare its output against
/// an external serial-sum reference at the bit level, and do not move it
/// into a contracted path without re-serialising the sum.
pub fn softmax_inplace(x: &mut [f32]) -> f32 {
    assert!(!x.is_empty(), "softmax of empty slice");
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut lanes = [0.0f32; SOFTMAX_LANES];
    let mut chunks = x.chunks_exact_mut(SOFTMAX_LANES);
    for ch in chunks.by_ref() {
        for u in 0..SOFTMAX_LANES {
            ch[u] = (ch[u] - max).exp();
            lanes[u] += ch[u];
        }
    }
    for (u, xi) in chunks.into_remainder().iter_mut().enumerate() {
        *xi = (*xi - max).exp();
        lanes[u] += *xi;
    }
    // Fixed left-to-right lane fold: deterministic for every input length.
    let sum = lanes.iter().sum::<f32>();
    let inv = 1.0 / sum;
    for xi in x.iter_mut() {
        *xi *= inv;
    }
    max + sum.ln()
}

/// Log-sum-exp of a slice without mutating it.
pub fn log_sum_exp(x: &[f32]) -> f32 {
    assert!(!x.is_empty(), "log_sum_exp of empty slice");
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let sum: f32 = x.iter().map(|v| (v - max).exp()).sum();
    max + sum.ln()
}

/// Logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// `log(1 + exp(x))` computed without overflow — the softplus used by the
/// logistic loss.
#[inline]
pub fn softplus(x: f32) -> f32 {
    if x > 0.0 {
        x + (-x).exp().ln_1p()
    } else {
        x.exp().ln_1p()
    }
}

/// Mean of a slice; 0.0 for the empty slice.
pub fn mean(x: &[f32]) -> f32 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f32>() / x.len() as f32
    }
}

/// Pearson correlation between two equally-long slices (used to validate the
/// performance predictor, Principle (P1)). Returns 0.0 when either side has
/// zero variance.
pub fn pearson(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "pearson: length mismatch");
    if a.len() < 2 {
        return 0.0;
    }
    let ma = mean(a);
    let mb = mean(b);
    let mut cov = 0.0f32;
    let mut va = 0.0f32;
    let mut vb = 0.0f32;
    for i in 0..a.len() {
        let da = a[i] - ma;
        let db = b[i] - mb;
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    if va <= f32::EPSILON || vb <= f32::EPSILON {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

/// Spearman rank correlation — the predictor only needs to *rank* candidates
/// correctly (Principle (P1)), so rank correlation is the metric we report.
pub fn spearman(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "spearman: length mismatch");
    let ra = ranks(a);
    let rb = ranks(b);
    pearson(&ra, &rb)
}

/// Fractional ranks (average rank for ties), 1-based.
pub fn ranks(x: &[f32]) -> Vec<f32> {
    let n = x.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&i, &j| x[i].partial_cmp(&x[j]).unwrap_or(std::cmp::Ordering::Equal));
    let mut out = vec![0.0f32; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && x[idx[j + 1]] == x[idx[i]] {
            j += 1;
        }
        // average 1-based rank over the tie group [i, j]
        let avg = (i + j) as f32 / 2.0 + 1.0;
        for k in i..=j {
            out[idx[k]] = avg;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn triple_dot_matches_manual() {
        let a = [1.0, 2.0];
        let b = [3.0, 4.0];
        let c = [5.0, 6.0];
        assert_eq!(triple_dot(&a, &b, &c), 1.0 * 3.0 * 5.0 + 2.0 * 4.0 * 6.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = [1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, [7.0, 9.0]);
    }

    #[test]
    fn hadamard_axpy_matches_triple_dot_gradient() {
        // d/dc ⟨a,b,c⟩ = a∘b
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        let mut g = [0.0; 3];
        hadamard_axpy(1.0, &a, &b, &mut g);
        assert_eq!(g, [4.0, 10.0, 18.0]);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let mut x = [1000.0, 1000.0, 1000.0];
        softmax_inplace(&mut x);
        let s: f32 = x.iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        for v in x {
            assert!((v - 1.0 / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_returns_logsumexp() {
        let mut x = [0.0, 1.0, 2.0];
        let lse = softmax_inplace(&mut x);
        let expect = (0f32.exp() + 1f32.exp() + 2f32.exp()).ln();
        assert!((lse - expect).abs() < 1e-5);
    }

    #[test]
    fn sigmoid_extremes() {
        assert!(sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) < 0.001);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn softplus_no_overflow() {
        assert!((softplus(100.0) - 100.0).abs() < 1e-4);
        assert!(softplus(-100.0) < 1e-4);
        assert!((softplus(0.0) - 2f32.ln()).abs() < 1e-6);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-6);
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn pearson_zero_variance_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn spearman_is_rank_based() {
        // monotone but non-linear mapping still gives rho = 1
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [1.0, 10.0, 100.0, 1000.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn ranks_handle_ties() {
        let r = ranks(&[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    /// Scalar reference for [`count_cmp`] — the branchy loop it replaces.
    fn count_cmp_naive(scores: &[f32], threshold: f32) -> (usize, usize) {
        let mut gt = 0;
        let mut eq = 0;
        for &s in scores {
            if s > threshold {
                gt += 1;
            } else if s == threshold {
                eq += 1;
            }
        }
        (gt, eq)
    }

    #[test]
    fn count_cmp_matches_naive_across_lane_raggedness() {
        // every remainder length 0..CMP_LANES against the naive loop
        for len in 0..13 {
            let scores: Vec<f32> = (0..len).map(|i| (i % 5) as f32 - 2.0).collect();
            for t in [-3.0, -2.0, 0.0, 1.0, 2.5] {
                assert_eq!(count_cmp(&scores, t), count_cmp_naive(&scores, t), "len {len} t {t}");
            }
        }
    }

    #[test]
    fn count_cmp_empty_slice_is_zero() {
        assert_eq!(count_cmp(&[], 0.0), (0, 0));
        assert_eq!(count_cmp(&[], f32::NAN), (0, 0));
    }

    #[test]
    fn count_cmp_signed_zero_ties() {
        // IEEE: +0.0 == -0.0, and neither is greater than the other.
        let scores = [0.0, -0.0, 0.0, -0.0, 1.0];
        assert_eq!(count_cmp(&scores, 0.0), (1, 4));
        assert_eq!(count_cmp(&scores, -0.0), (1, 4));
    }

    #[test]
    fn count_cmp_nan_is_neither_greater_nor_equal() {
        let scores = [f32::NAN, 1.0, f32::NAN, -1.0];
        // NaN elements drop out of both counts
        assert_eq!(count_cmp(&scores, 0.0), (1, 0));
        // a NaN threshold compares false against everything, itself included
        assert_eq!(count_cmp(&scores, f32::NAN), (0, 0));
    }

    #[test]
    fn count_cmp_sub_slice_counts_sum_to_full_counts() {
        let scores: Vec<f32> = (0..37).map(|i| ((i * 7) % 11) as f32 * 0.5).collect();
        let t = 2.5;
        let full = count_cmp(&scores, t);
        for split in [0, 1, 4, 17, 36, 37] {
            let (a, b) = scores.split_at(split);
            let (ga, ea) = count_cmp(a, t);
            let (gb, eb) = count_cmp(b, t);
            assert_eq!((ga + gb, ea + eb), full, "split {split}");
        }
    }

    #[test]
    fn norms() {
        assert_eq!(norm2_sq(&[3.0, 4.0]), 25.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm1(&[-3.0, 4.0]), 7.0);
    }

    /// The dispatched sweep must agree with the scalar backend exactly —
    /// including NaN payloads, signed zeros and every lane-ragged length.
    #[test]
    fn count_cmp_dispatched_matches_scalar_backend() {
        for len in 0..35 {
            let scores: Vec<f32> = (0..len)
                .map(|i| match i % 7 {
                    0 => f32::NAN,
                    1 => 0.0,
                    2 => -0.0,
                    _ => (i % 5) as f32 - 2.0,
                })
                .collect();
            for t in [-2.0, 0.0, -0.0, 1.0, f32::NAN] {
                assert_eq!(
                    count_cmp(&scores, t),
                    count_cmp_scalar(&scores, t),
                    "len {len} threshold {t}"
                );
            }
        }
    }

    #[test]
    fn softmax_lane_sum_is_deterministic_and_close_to_serial() {
        // Lane accumulation reorders the sum, so only closeness against a
        // serial reference is promised — but repeat runs must be exact.
        let base: Vec<f32> = (0..23).map(|i| (i as f32 * 0.37).sin() * 3.0).collect();
        let mut a = base.clone();
        let lse_a = softmax_inplace(&mut a);
        let mut b = base.clone();
        let lse_b = softmax_inplace(&mut b);
        assert_eq!(a, b, "softmax must be deterministic");
        assert_eq!(lse_a, lse_b);
        let max = base.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let serial: f32 = base.iter().map(|v| (v - max).exp()).sum();
        let lse_serial = max + serial.ln();
        assert!((lse_a - lse_serial).abs() < 1e-5, "{lse_a} vs serial {lse_serial}");
    }
}

//! The dispatch seam itself: force the scalar backend through the
//! `KG_FORCE_SCALAR` env knob and prove (a) the dispatcher honours it and
//! (b) the scalar fallback produces byte-identical output to the explicit
//! AVX2 kernels — so a broken fallback cannot hide on AVX2 CI machines,
//! where every other suite exercises only the dispatched (AVX2) path.
//!
//! Integration tests run in their own process, so setting the variable
//! here — before any kernel has dispatched — is what latches the backend.
//! Everything lives in one `#[test]` because the knob must be set before
//! the first `active_backend()` call anywhere in the process, and the test
//! harness runs sibling tests concurrently.

use kg_linalg::rng::SeededRng;
use kg_linalg::{gemm, qgemm, simd, vecops, Mat};

/// The shared cross-backend comparator: NaNs canonicalised, everything
/// else raw — see [`simd::canonical_bits`] for the contract it encodes.
fn bits(x: &[f32]) -> Vec<u32> {
    simd::canonical_bits(x)
}

#[test]
fn forced_scalar_dispatch_is_honoured_and_byte_equal_to_simd() {
    // Latch the knob before anything can dispatch. (Safe in edition 2021;
    // this is the only thread that has run yet in this test process.)
    std::env::set_var(simd::FORCE_SCALAR_ENV, "1");
    assert!(simd::force_scalar_requested(), "env knob must read back as set");
    assert_eq!(
        simd::active_backend(),
        simd::Backend::Scalar,
        "KG_FORCE_SCALAR must pin the scalar backend regardless of CPU features"
    );

    let mut rng = SeededRng::new(2026);
    // Shapes unaligned with the 32-row tile, the 8-wide unroll and the
    // 8/4-wide compare lanes, plus awkward payloads.
    for (m, n, k) in [(1, 3, 5), (4, 29, 8), (7, 77, 13), (3, 130, 64)] {
        let mut a = Mat::zeros(m, k);
        rng.fill_normal(1.0, a.as_mut_slice());
        let mut b = Mat::zeros(n, k);
        rng.fill_normal(1.0, b.as_mut_slice());
        b.set(0, 0, f32::NAN);
        b.set(n / 2, k / 2, -0.0);
        b.set(n - 1, 0, f32::INFINITY);

        // The dispatched kernels must BE the scalar backend now.
        let mut dispatched = vec![0.0f32; m * n];
        gemm::gemm_nt(a.as_slice(), m, k, &b, &mut dispatched);
        let mut scalar = vec![0.0f32; m * n];
        gemm::gemm_nt_scalar(a.as_slice(), m, k, &b, &mut scalar);
        assert_eq!(bits(&dispatched), bits(&scalar), "gemm_nt ignored the forced-scalar knob");

        let (j0, j1) = (1, n - 1);
        let mut shard = vec![0.0f32; m * (j1 - j0)];
        gemm::gemm_nt_rows(a.as_slice(), m, k, &b, j0..j1, &mut shard);
        let mut shard_scalar = vec![0.0f32; m * (j1 - j0)];
        gemm::gemm_nt_rows_scalar(a.as_slice(), m, k, &b, j0..j1, &mut shard_scalar);
        assert_eq!(bits(&shard), bits(&shard_scalar), "gemm_nt_rows ignored the knob");

        let mut s = Mat::zeros(m, n);
        rng.fill_normal(1.0, s.as_mut_slice());
        let mut acc = vec![0.0f32; m * k];
        gemm::gemm_acc_t(s.as_slice(), m, &b, &mut acc);
        let mut acc_scalar = vec![0.0f32; m * k];
        gemm::gemm_acc_t_scalar(s.as_slice(), m, &b, &mut acc_scalar);
        assert_eq!(bits(&acc), bits(&acc_scalar), "gemm_acc_t ignored the knob");

        let row = &dispatched[..n];
        for t in [0.0f32, -0.0, 1.0, f32::NAN] {
            assert_eq!(
                vecops::count_cmp(row, t),
                vecops::count_cmp_scalar(row, t),
                "count_cmp ignored the knob (threshold {t})"
            );
        }

        // The i8 coarse-tier kernels sit behind the same seam: forced
        // scalar must be what dispatch runs, and the values are exact
        // integers so equality is plain `==`.
        let codes = |seed: u64, len: usize| -> Vec<i8> {
            let mut r = SeededRng::new(seed);
            (0..len).map(|_| (r.below(255) as i32 - 127) as i8).collect()
        };
        let qa = codes(7 + m as u64, m * k);
        let qb = codes(9 + n as u64, n * k);
        let mut qdispatched = vec![0i32; m * n];
        qgemm::gemm_i8_nt(&qa, m, k, &qb, n, &mut qdispatched);
        let mut qscalar = vec![0i32; m * n];
        qgemm::gemm_i8_nt_rows_scalar(&qa, m, k, &qb, n, 0..n, &mut qscalar);
        assert_eq!(qdispatched, qscalar, "gemm_i8_nt ignored the forced-scalar knob");
        assert_eq!(
            qgemm::dot_i8(&qa[..k], &qb[..k]),
            qgemm::dot_i8_scalar(&qa[..k], &qb[..k]),
            "dot_i8 ignored the forced-scalar knob"
        );

        // And the forced fallback must still be byte-equal to the explicit
        // SIMD kernels where the CPU has them — the cross-backend check
        // that makes a silently-broken scalar path impossible to miss on
        // AVX2 machines.
        #[cfg(target_arch = "x86_64")]
        if simd::avx2_available() {
            let mut explicit = vec![0.0f32; m * n];
            // SAFETY: guarded by runtime AVX2 detection.
            unsafe { simd::avx2::gemm_nt_rows(a.as_slice(), m, k, &b, 0..n, &mut explicit) };
            assert_eq!(bits(&explicit), bits(&scalar), "scalar and AVX2 gemm_nt diverged");

            let mut explicit_acc = vec![0.0f32; m * k];
            // SAFETY: guarded by runtime AVX2 detection.
            unsafe { simd::avx2::gemm_acc_t(s.as_slice(), m, &b, &mut explicit_acc) };
            assert_eq!(
                bits(&explicit_acc),
                bits(&acc_scalar),
                "scalar and AVX2 gemm_acc_t diverged"
            );

            for t in [0.0f32, -0.0, 1.0, f32::NAN] {
                // SAFETY: guarded by runtime AVX2 detection.
                let counts = unsafe { simd::avx2::count_cmp(row, t) };
                assert_eq!(
                    counts,
                    vecops::count_cmp_scalar(row, t),
                    "scalar and AVX2 count_cmp diverged (threshold {t})"
                );
            }

            let mut explicit_q = vec![0i32; m * n];
            // SAFETY: guarded by runtime AVX2 detection.
            unsafe { simd::avx2::gemm_i8_nt_rows(&qa, m, k, &qb, n, 0..n, &mut explicit_q) };
            assert_eq!(explicit_q, qscalar, "scalar and AVX2 gemm_i8_nt diverged");
        }
    }
}

//! The one environment-override test: `KG_FORCE_SCALAR` must pin the
//! scalar backend for **every** [`KernelPolicy`] — Exact and Fast alike —
//! so the escape hatch keeps working now that dispatch is policy-driven.
//!
//! Everything else about the dispatch seam (backend-pair byte identity,
//! policy resolution, the relaxed fast tier) lives in `policy_dispatch.rs`
//! and `relaxed_fast.rs`, which construct policies directly instead of
//! mutating the environment. Integration tests run in their own process,
//! so setting the variable here — before any kernel has dispatched — is
//! what latches the backend; everything lives in one `#[test]` because the
//! knob must be set before the first `active_backend()` call anywhere in
//! the process.

use kg_linalg::rng::SeededRng;
use kg_linalg::{gemm, simd, KernelPolicy, Mat};

#[test]
fn forced_scalar_pins_scalar_for_every_policy() {
    // Latch the knob before anything can dispatch. (Safe in edition 2021;
    // this is the only thread that has run yet in this test process.)
    std::env::set_var(simd::FORCE_SCALAR_ENV, "1");
    assert!(simd::force_scalar_requested(), "env knob must read back as set");
    assert_eq!(
        simd::active_backend(),
        simd::Backend::Scalar,
        "KG_FORCE_SCALAR must pin the scalar backend regardless of CPU features"
    );
    assert_eq!(
        KernelPolicy::default_from_env(),
        KernelPolicy::Exact,
        "KG_FORCE_SCALAR implies the exact tier"
    );
    for policy in [KernelPolicy::Exact, KernelPolicy::Fast] {
        assert_eq!(
            policy.resolve(),
            simd::ResolvedKernel::Scalar,
            "{} must resolve to scalar under KG_FORCE_SCALAR",
            policy.name()
        );
    }

    // And dispatch actually runs the scalar path: byte-identical output
    // under both policies on a tile-unaligned shape.
    let mut rng = SeededRng::new(2026);
    let (m, n, k) = (3usize, 29usize, 13usize);
    let mut a = Mat::zeros(m, k);
    rng.fill_normal(1.0, a.as_mut_slice());
    let mut b = Mat::zeros(n, k);
    rng.fill_normal(1.0, b.as_mut_slice());
    b.set(0, 0, f32::NAN);

    let mut reference = vec![0.0f32; m * n];
    gemm::gemm_nt_scalar(a.as_slice(), m, k, &b, &mut reference);
    for policy in [KernelPolicy::Exact, KernelPolicy::Fast] {
        let mut out = vec![0.0f32; m * n];
        gemm::gemm_nt_with(policy, a.as_slice(), m, k, &b, &mut out);
        assert_eq!(
            simd::canonical_bits(&out),
            simd::canonical_bits(&reference),
            "gemm_nt under {} ignored the forced-scalar knob",
            policy.name()
        );
    }
}

//! The dispatch seam, driven through explicit [`KernelPolicy`] values
//! instead of environment mutation: policies are plain data, so every
//! combination is testable concurrently in one ordinary process.
//!
//! * `Exact` must be byte-identical to the scalar reference whatever
//!   backend it resolves to — a broken AVX2 exact kernel cannot hide on
//!   AVX2 CI machines, and a broken scalar fallback cannot hide either
//!   (the backend-pair test compares them directly).
//! * `Fast` may relax the accumulation order and contract to FMA, but
//!   every element must stay within a condition-aware error bound of the
//!   f64 reference (the precise tier gate lives in `relaxed_fast.rs`).
//!
//! The one test that *must* mutate the environment stays in
//! `forced_scalar.rs`, alone in its own process.

use kg_linalg::rng::SeededRng;
use kg_linalg::{gemm, qgemm, simd, vecops, KernelPolicy, Mat};

/// The shared cross-backend comparator: NaNs canonicalised, everything
/// else raw — see [`simd::canonical_bits`] for the contract it encodes.
fn bits(x: &[f32]) -> Vec<u32> {
    simd::canonical_bits(x)
}

/// Shapes unaligned with the 32-row tile, the 8-wide unroll, the 4-chain
/// fast accumulators and the 8/4-wide compare lanes.
const SHAPES: [(usize, usize, usize); 4] = [(1, 3, 5), (4, 29, 8), (7, 77, 13), (3, 130, 64)];

fn test_matrices(rng: &mut SeededRng, m: usize, n: usize, k: usize) -> (Mat, Mat) {
    let mut a = Mat::zeros(m, k);
    rng.fill_normal(1.0, a.as_mut_slice());
    let mut b = Mat::zeros(n, k);
    rng.fill_normal(1.0, b.as_mut_slice());
    (a, b)
}

/// In a process with no override knobs set, the resolution table is pure
/// arithmetic over the detected CPU features.
#[test]
fn policy_resolution_follows_cpu_features() {
    // Printed (visible under `--nocapture`) so CI logs record what each
    // tier resolved to on the runner that executed the suite.
    println!(
        "backend={:?} fma={} | default_from_env={} → {} | exact → {} | fast → {}",
        simd::active_backend(),
        simd::fma_available(),
        KernelPolicy::default_from_env().name(),
        KernelPolicy::default_from_env().resolve().name(),
        KernelPolicy::Exact.resolve().name(),
        KernelPolicy::Fast.resolve().name(),
    );
    assert_eq!(KernelPolicy::default(), KernelPolicy::Exact, "exact must be the default tier");
    match simd::active_backend() {
        simd::Backend::Scalar => {
            for policy in [KernelPolicy::Exact, KernelPolicy::Fast] {
                assert_eq!(policy.resolve(), simd::ResolvedKernel::Scalar);
            }
        }
        simd::Backend::Avx2 => {
            assert_eq!(KernelPolicy::Exact.resolve(), simd::ResolvedKernel::Avx2);
            let fast = KernelPolicy::Fast.resolve();
            if simd::fma_available() {
                assert_eq!(fast, simd::ResolvedKernel::Avx2Fma);
                assert_eq!(fast.name(), "avx2+fma");
            } else {
                assert_eq!(fast, simd::ResolvedKernel::Avx2, "fast degrades to exact without FMA");
            }
        }
    }
}

/// `Exact` dispatch — whatever backend it resolves to on this machine —
/// must reproduce the scalar reference byte for byte, awkward payloads
/// (NaN, -0.0, infinity) included.
#[test]
fn exact_policy_is_byte_identical_to_scalar_reference() {
    let mut rng = SeededRng::new(2027);
    for (m, n, k) in SHAPES {
        let (a, mut b) = test_matrices(&mut rng, m, n, k);
        b.set(0, 0, f32::NAN);
        b.set(n / 2, k / 2, -0.0);
        b.set(n - 1, 0, f32::INFINITY);

        let mut dispatched = vec![0.0f32; m * n];
        gemm::gemm_nt_with(KernelPolicy::Exact, a.as_slice(), m, k, &b, &mut dispatched);
        let mut scalar = vec![0.0f32; m * n];
        gemm::gemm_nt_scalar(a.as_slice(), m, k, &b, &mut scalar);
        assert_eq!(bits(&dispatched), bits(&scalar), "exact gemm_nt diverged from scalar");

        let (j0, j1) = (1, n - 1);
        let mut shard = vec![0.0f32; m * (j1 - j0)];
        gemm::gemm_nt_rows_with(KernelPolicy::Exact, a.as_slice(), m, k, &b, j0..j1, &mut shard);
        let mut shard_scalar = vec![0.0f32; m * (j1 - j0)];
        gemm::gemm_nt_rows_scalar(a.as_slice(), m, k, &b, j0..j1, &mut shard_scalar);
        assert_eq!(bits(&shard), bits(&shard_scalar), "exact gemm_nt_rows diverged from scalar");

        let mut s = Mat::zeros(m, n);
        rng.fill_normal(1.0, s.as_mut_slice());
        let mut acc = vec![0.0f32; m * k];
        gemm::gemm_acc_t_with(KernelPolicy::Exact, s.as_slice(), m, &b, &mut acc);
        let mut acc_scalar = vec![0.0f32; m * k];
        gemm::gemm_acc_t_scalar(s.as_slice(), m, &b, &mut acc_scalar);
        assert_eq!(bits(&acc), bits(&acc_scalar), "exact gemm_acc_t diverged from scalar");
    }
}

/// `Fast` dispatch must stay within a condition-aware bound of the f64
/// reference on every element: `|fast − exact₆₄| ≤ ε · (k + 8) · Σ|aᵢbᵢ|`.
/// The bound scales with the accumulated magnitude, so it holds under
/// cancellation yet still catches wrong-math bugs (those err at the scale
/// of the terms, orders of magnitude past the bound).
#[test]
fn fast_policy_stays_within_condition_aware_bound() {
    let mut rng = SeededRng::new(2028);
    for (m, n, k) in SHAPES {
        let (a, b) = test_matrices(&mut rng, m, n, k);

        let mut fast = vec![0.0f32; m * n];
        gemm::gemm_nt_with(KernelPolicy::Fast, a.as_slice(), m, k, &b, &mut fast);
        for i in 0..m {
            for j in 0..n {
                let mut dot = 0.0f64;
                let mut mag = 0.0f64;
                for c in 0..k {
                    let term = a.as_slice()[i * k + c] as f64 * b.row(j)[c] as f64;
                    dot += term;
                    mag += term.abs();
                }
                let tol = f32::EPSILON as f64 * (k as f64 + 8.0) * mag;
                let err = (fast[i * n + j] as f64 - dot).abs();
                assert!(
                    err <= tol,
                    "fast gemm_nt [{i},{j}] err {err:e} > tol {tol:e} (m={m}, n={n}, k={k})"
                );
            }
        }

        let mut s = Mat::zeros(m, n);
        rng.fill_normal(1.0, s.as_mut_slice());
        let mut acc = vec![0.0f32; m * k];
        gemm::gemm_acc_t_with(KernelPolicy::Fast, s.as_slice(), m, &b, &mut acc);
        for i in 0..m {
            for c in 0..k {
                let mut dot = 0.0f64;
                let mut mag = 0.0f64;
                for j in 0..n {
                    let term = s.as_slice()[i * n + j] as f64 * b.row(j)[c] as f64;
                    dot += term;
                    mag += term.abs();
                }
                let tol = f32::EPSILON as f64 * (n as f64 + 8.0) * mag;
                let err = (acc[i * k + c] as f64 - dot).abs();
                assert!(
                    err <= tol,
                    "fast gemm_acc_t [{i},{c}] err {err:e} > tol {tol:e} (m={m}, n={n}, k={k})"
                );
            }
        }
    }
}

/// The explicit backend pairs — scalar versus the AVX2 kernels — must
/// agree byte for byte wherever the CPU has AVX2, including the dispatch-
/// independent kernels (`count_cmp`, the i8 coarse tier) that carry no
/// policy. This is the cross-backend check that makes a silently-broken
/// scalar fallback impossible to miss on AVX2 machines.
#[test]
fn explicit_backend_pairs_agree_byte_for_byte() {
    let mut rng = SeededRng::new(2029);
    for (m, n, k) in SHAPES {
        let (a, mut b) = test_matrices(&mut rng, m, n, k);
        b.set(0, 0, f32::NAN);
        b.set(n - 1, 0, f32::INFINITY);

        let mut scalar = vec![0.0f32; m * n];
        gemm::gemm_nt_scalar(a.as_slice(), m, k, &b, &mut scalar);
        let mut s = Mat::zeros(m, n);
        rng.fill_normal(1.0, s.as_mut_slice());
        let mut acc_scalar = vec![0.0f32; m * k];
        gemm::gemm_acc_t_scalar(s.as_slice(), m, &b, &mut acc_scalar);

        let codes = |seed: u64, len: usize| -> Vec<i8> {
            let mut r = SeededRng::new(seed);
            (0..len).map(|_| (r.below(255) as i32 - 127) as i8).collect()
        };
        let qa = codes(7 + m as u64, m * k);
        let qb = codes(9 + n as u64, n * k);
        let mut qscalar = vec![0i32; m * n];
        qgemm::gemm_i8_nt_rows_scalar(&qa, m, k, &qb, n, 0..n, &mut qscalar);

        #[cfg(target_arch = "x86_64")]
        if simd::avx2_available() {
            let mut explicit = vec![0.0f32; m * n];
            // SAFETY: guarded by runtime AVX2 detection.
            unsafe { simd::avx2::gemm_nt_rows(a.as_slice(), m, k, &b, 0..n, &mut explicit) };
            assert_eq!(bits(&explicit), bits(&scalar), "scalar and AVX2 gemm_nt diverged");

            let mut explicit_acc = vec![0.0f32; m * k];
            // SAFETY: guarded by runtime AVX2 detection.
            unsafe { simd::avx2::gemm_acc_t(s.as_slice(), m, &b, &mut explicit_acc) };
            assert_eq!(
                bits(&explicit_acc),
                bits(&acc_scalar),
                "scalar and AVX2 gemm_acc_t diverged"
            );

            let row = &scalar[..n];
            for t in [0.0f32, -0.0, 1.0, f32::NAN] {
                // SAFETY: guarded by runtime AVX2 detection.
                let counts = unsafe { simd::avx2::count_cmp(row, t) };
                assert_eq!(
                    counts,
                    vecops::count_cmp_scalar(row, t),
                    "scalar and AVX2 count_cmp diverged (threshold {t})"
                );
            }

            let mut explicit_q = vec![0i32; m * n];
            // SAFETY: guarded by runtime AVX2 detection.
            unsafe { simd::avx2::gemm_i8_nt_rows(&qa, m, k, &qb, n, 0..n, &mut explicit_q) };
            assert_eq!(explicit_q, qscalar, "scalar and AVX2 gemm_i8_nt diverged");

            assert_eq!(
                // SAFETY: guarded by runtime AVX2 detection.
                unsafe { simd::avx2::dot_i8(&qa[..k], &qb[..k]) },
                qgemm::dot_i8_scalar(&qa[..k], &qb[..k]),
                "scalar and AVX2 dot_i8 diverged"
            );
        }
    }
}

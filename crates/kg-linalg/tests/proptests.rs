//! Property-based tests for the math substrate.

use kg_linalg::vecops;
use proptest::prelude::*;

fn small_vec(n: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100.0f32..100.0, n..=n)
}

proptest! {
    #[test]
    fn dot_is_commutative(a in small_vec(16), b in small_vec(16)) {
        let ab = vecops::dot(&a, &b);
        let ba = vecops::dot(&b, &a);
        prop_assert!((ab - ba).abs() <= 1e-3 * (1.0 + ab.abs()));
    }

    #[test]
    fn triple_dot_is_fully_symmetric(a in small_vec(8), b in small_vec(8), c in small_vec(8)) {
        let abc = vecops::triple_dot(&a, &b, &c);
        let bca = vecops::triple_dot(&b, &c, &a);
        let cab = vecops::triple_dot(&c, &a, &b);
        prop_assert!((abc - bca).abs() <= 1e-2 * (1.0 + abc.abs()));
        prop_assert!((abc - cab).abs() <= 1e-2 * (1.0 + abc.abs()));
    }

    #[test]
    fn softmax_is_a_distribution(mut x in small_vec(12)) {
        vecops::softmax_inplace(&mut x);
        let sum: f32 = x.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(x.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn softmax_is_shift_invariant(x in small_vec(8), shift in -50.0f32..50.0) {
        let mut a = x.clone();
        let mut b: Vec<f32> = x.iter().map(|v| v + shift).collect();
        vecops::softmax_inplace(&mut a);
        vecops::softmax_inplace(&mut b);
        for (p, q) in a.iter().zip(b.iter()) {
            prop_assert!((p - q).abs() < 1e-4);
        }
    }

    #[test]
    fn sigmoid_complements(x in -80.0f32..80.0) {
        let s = vecops::sigmoid(x) + vecops::sigmoid(-x);
        prop_assert!((s - 1.0).abs() < 1e-5);
    }

    #[test]
    fn softplus_dominates_relu(x in -80.0f32..80.0) {
        let sp = vecops::softplus(x);
        prop_assert!(sp >= x.max(0.0) - 1e-4);
        prop_assert!(sp <= x.max(0.0) + 0.6932); // gap is ln 2 at x=0
    }

    #[test]
    fn ranks_are_a_valid_assignment(x in small_vec(10)) {
        let r = vecops::ranks(&x);
        let sum: f32 = r.iter().sum();
        // ranks always sum to n(n+1)/2 regardless of ties
        prop_assert!((sum - 55.0).abs() < 1e-3);
        prop_assert!(r.iter().all(|&v| (1.0..=10.0).contains(&v)));
    }

    #[test]
    fn pearson_is_bounded(a in small_vec(12), b in small_vec(12)) {
        let rho = vecops::pearson(&a, &b);
        prop_assert!((-1.0001..=1.0001).contains(&rho));
    }

    /// The branchless rank-count sweep agrees with the naive branchy scalar
    /// loop on NaN-free inputs, whatever the slice length (lane raggedness
    /// included) and wherever the threshold falls.
    #[test]
    fn count_cmp_matches_naive_loop(
        scores in prop::collection::vec(-4.0f32..4.0, 0..50),
        threshold in -4.0f32..4.0,
    ) {
        let mut gt = 0usize;
        let mut eq = 0usize;
        for &s in &scores {
            if s > threshold {
                gt += 1;
            } else if s == threshold {
                eq += 1;
            }
        }
        prop_assert_eq!(vecops::count_cmp(&scores, threshold), (gt, eq));
    }

    /// Ties are counted exactly when the threshold is drawn from the slice
    /// itself (quantised scores force heavy tie groups).
    #[test]
    fn count_cmp_counts_exact_ties(
        raw in prop::collection::vec(-3i32..3, 1..40),
        pick in 0usize..1_000,
    ) {
        let scores: Vec<f32> = raw.iter().map(|&v| v as f32).collect();
        let threshold = scores[pick % scores.len()];
        let gt = scores.iter().filter(|&&s| s > threshold).count();
        let eq = scores.iter().filter(|&&s| s == threshold).count();
        prop_assert!(eq >= 1, "the picked threshold always ties with itself");
        prop_assert_eq!(vecops::count_cmp(&scores, threshold), (gt, eq));
    }

    /// Partial counts over any two-way split sum to the whole — the
    /// order-independence sharded rank merging relies on.
    #[test]
    fn count_cmp_is_additive_over_splits(
        scores in prop::collection::vec(-2.0f32..2.0, 0..40),
        split in 0usize..1_000,
        threshold in -2.0f32..2.0,
    ) {
        let split = split % (scores.len() + 1);
        let (a, b) = scores.split_at(split);
        let (ga, ea) = vecops::count_cmp(a, threshold);
        let (gb, eb) = vecops::count_cmp(b, threshold);
        prop_assert_eq!((ga + gb, ea + eb), vecops::count_cmp(&scores, threshold));
    }

    #[test]
    fn axpy_matches_reference(alpha in -10.0f32..10.0, x in small_vec(8), y0 in small_vec(8)) {
        let mut y = y0.clone();
        vecops::axpy(alpha, &x, &mut y);
        for i in 0..8 {
            prop_assert!((y[i] - (y0[i] + alpha * x[i])).abs() < 1e-2);
        }
    }
}

/// Cross-backend equivalence for the dispatched kernels: on an AVX2
/// machine these run SIMD against the scalar reference (and additionally
/// pit the explicit AVX2 kernels against scalar even when the
/// `KG_FORCE_SCALAR` knob pinned the dispatcher — so the forced-scalar CI
/// pass still cross-checks both backends); elsewhere they pin
/// scalar-vs-scalar stability. All comparisons are on raw bit patterns, so
/// NaN payloads and signed zeros count, and lengths/ranges are drawn to be
/// unaligned with every tile, unroll and lane width.
mod simd_props {
    use super::*;
    use kg_linalg::{gemm, simd, vecops, Mat};

    /// `f32` payloads including NaN, ±0.0 and the infinities.
    fn awkward(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f32>> {
        prop::collection::vec((0u32..8, -100.0f32..100.0), n).prop_map(|raw| {
            raw.into_iter()
                .map(|(code, v)| match code {
                    0 => f32::NAN,
                    1 => 0.0,
                    2 => -0.0,
                    3 => f32::INFINITY,
                    4 => f32::NEG_INFINITY,
                    _ => v,
                })
                .collect()
        })
    }

    /// NaN-free payloads (±0.0 and infinities still included): on these
    /// the backends owe **raw** bit equality, invalid-op NaNs included.
    fn awkward_no_nan(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f32>> {
        awkward(n).prop_map(|v| v.into_iter().map(|x| if x.is_nan() { 1.5 } else { x }).collect())
    }

    /// The shared cross-backend comparator: NaNs canonicalised, everything
    /// else raw — see [`simd::canonical_bits`] for the contract it encodes.
    fn bits(x: &[f32]) -> Vec<u32> {
        simd::canonical_bits(x)
    }

    /// Raw bit patterns, NaN payloads included — for NaN-free inputs.
    fn raw_bits(x: &[f32]) -> Vec<u32> {
        x.iter().map(|v| v.to_bits()).collect()
    }

    /// Safe shims over the explicit AVX2 kernels: run the kernel and
    /// return `true` under runtime detection, `false` (untouched output)
    /// on CPUs and architectures without AVX2 — so the proptests compile
    /// and pass everywhere while exercising the explicit backend wherever
    /// it exists, even when `KG_FORCE_SCALAR` pinned the dispatcher.
    fn avx2_gemm_nt_rows(
        a: &[f32],
        m: usize,
        k: usize,
        b: &Mat,
        rows: std::ops::Range<usize>,
        out: &mut [f32],
    ) -> bool {
        #[cfg(target_arch = "x86_64")]
        if simd::avx2_available() {
            // SAFETY: guarded by runtime AVX2 detection.
            unsafe { simd::avx2::gemm_nt_rows(a, m, k, b, rows, out) };
            return true;
        }
        let _ = (a, m, k, b, rows, out);
        false
    }

    fn avx2_gemm_acc_t(s: &[f32], m: usize, b: &Mat, out: &mut [f32]) -> bool {
        #[cfg(target_arch = "x86_64")]
        if simd::avx2_available() {
            // SAFETY: guarded by runtime AVX2 detection.
            unsafe { simd::avx2::gemm_acc_t(s, m, b, out) };
            return true;
        }
        let _ = (s, m, b, out);
        false
    }

    fn avx2_count_cmp(scores: &[f32], threshold: f32) -> Option<(usize, usize)> {
        #[cfg(target_arch = "x86_64")]
        if simd::avx2_available() {
            // SAFETY: guarded by runtime AVX2 detection.
            return Some(unsafe { simd::avx2::count_cmp(scores, threshold) });
        }
        let _ = (scores, threshold);
        None
    }

    proptest! {
        /// Dispatched `gemm_nt` == scalar `gemm_nt`, byte for byte, on
        /// awkward payloads and unroll-unaligned table heights.
        #[test]
        fn gemm_nt_backends_bit_identical(
            a in awkward(8..33),
            b in awkward(0..400),
            m in 1usize..5,
        ) {
            let k = a.len() / m;
            prop_assume!(k > 0);
            let n = b.len() / k;
            let a = &a[..m * k];
            let b = Mat::from_vec(n, k, b[..n * k].to_vec());
            let mut dispatched = vec![0.0f32; m * n];
            gemm::gemm_nt(a, m, k, &b, &mut dispatched);
            let mut scalar = vec![0.0f32; m * n];
            gemm::gemm_nt_scalar(a, m, k, &b, &mut scalar);
            prop_assert_eq!(bits(&dispatched), bits(&scalar));
            let mut explicit = vec![0.0f32; m * n];
            if avx2_gemm_nt_rows(a, m, k, &b, 0..n, &mut explicit) {
                prop_assert_eq!(bits(&explicit), bits(&scalar));
            }
        }

        /// Dispatched `gemm_nt_rows` == scalar on arbitrary (ragged,
        /// width-0, unaligned) shard ranges of an awkward table.
        #[test]
        fn gemm_nt_rows_backends_bit_identical(
            a in awkward(6..25),
            b in awkward(0..300),
            lo in 0usize..1_000,
            hi in 0usize..1_000,
            m in 1usize..4,
        ) {
            let k = a.len() / m;
            prop_assume!(k > 0);
            let n = b.len() / k;
            let a = &a[..m * k];
            let b = Mat::from_vec(n, k, b[..n * k].to_vec());
            let (lo, hi) = (lo % (n + 1), hi % (n + 1));
            let (j0, j1) = if lo <= hi { (lo, hi) } else { (hi, lo) };
            let width = j1 - j0;
            let mut dispatched = vec![0.0f32; m * width];
            gemm::gemm_nt_rows(a, m, k, &b, j0..j1, &mut dispatched);
            let mut scalar = vec![0.0f32; m * width];
            gemm::gemm_nt_rows_scalar(a, m, k, &b, j0..j1, &mut scalar);
            prop_assert_eq!(bits(&dispatched), bits(&scalar));
            let mut explicit = vec![0.0f32; m * width];
            if avx2_gemm_nt_rows(a, m, k, &b, j0..j1, &mut explicit) {
                prop_assert_eq!(bits(&explicit), bits(&scalar));
            }
        }

        /// Dispatched `gemm_acc_t` == scalar on awkward coefficient blocks
        /// and lane-unaligned dimensions.
        #[test]
        fn gemm_acc_t_backends_bit_identical(
            s in awkward(4..40),
            b in awkward(0..300),
            m in 1usize..4,
        ) {
            let n = s.len() / m;
            prop_assume!(n > 0);
            let k = b.len() / n;
            prop_assume!(k > 0);
            let s = &s[..m * n];
            let b = Mat::from_vec(n, k, b[..n * k].to_vec());
            let mut dispatched = vec![0.0f32; m * k];
            gemm::gemm_acc_t(s, m, &b, &mut dispatched);
            let mut scalar = vec![0.0f32; m * k];
            gemm::gemm_acc_t_scalar(s, m, &b, &mut scalar);
            prop_assert_eq!(bits(&dispatched), bits(&scalar));
            let mut explicit = vec![0.0f32; m * k];
            if avx2_gemm_acc_t(s, m, &b, &mut explicit) {
                prop_assert_eq!(bits(&explicit), bits(&scalar));
            }
        }

        /// NaN-free inputs (±0.0 and infinities included — invalid
        /// operations may still produce NaN outputs) owe raw bit equality
        /// across backends, payloads of those indefinites included.
        #[test]
        fn gemm_nt_backends_raw_bit_identical_without_input_nans(
            a in awkward_no_nan(8..33),
            b in awkward_no_nan(0..400),
            m in 1usize..5,
        ) {
            let k = a.len() / m;
            prop_assume!(k > 0);
            let n = b.len() / k;
            let a = &a[..m * k];
            let b = Mat::from_vec(n, k, b[..n * k].to_vec());
            let mut dispatched = vec![0.0f32; m * n];
            gemm::gemm_nt(a, m, k, &b, &mut dispatched);
            let mut scalar = vec![0.0f32; m * n];
            gemm::gemm_nt_scalar(a, m, k, &b, &mut scalar);
            prop_assert_eq!(raw_bits(&dispatched), raw_bits(&scalar));
            let mut explicit = vec![0.0f32; m * n];
            if avx2_gemm_nt_rows(a, m, k, &b, 0..n, &mut explicit) {
                prop_assert_eq!(raw_bits(&explicit), raw_bits(&scalar));
            }
        }

        /// Dispatched `count_cmp` == scalar on awkward payloads (NaN
        /// thresholds included) at every lane-ragged length.
        #[test]
        fn count_cmp_backends_agree(
            scores in awkward(0..70),
            threshold in awkward(1..2),
        ) {
            let t = threshold[0];
            let scalar = vecops::count_cmp_scalar(&scores, t);
            prop_assert_eq!(vecops::count_cmp(&scores, t), scalar);
            if let Some(explicit) = avx2_count_cmp(&scores, t) {
                prop_assert_eq!(explicit, scalar);
            }
        }
    }
}

mod matrix_props {
    use super::*;
    use kg_linalg::Mat;

    fn small_mat(r: usize, c: usize) -> impl Strategy<Value = Mat> {
        prop::collection::vec(-10.0f32..10.0, r * c..=r * c)
            .prop_map(move |v| Mat::from_vec(r, c, v))
    }

    proptest! {
        /// The batched kernel agrees with the naive dense `A · Bᵀ` product.
        #[test]
        fn gemm_nt_matches_naive_matmul(a in small_mat(5, 6), b in small_mat(37, 6)) {
            let mut batched = vec![0.0f32; a.rows() * b.rows()];
            kg_linalg::gemm::gemm_nt(a.as_slice(), a.rows(), a.cols(), &b, &mut batched);
            let naive = a.matmul(&b.transposed());
            for i in 0..a.rows() {
                for j in 0..b.rows() {
                    let (x, y) = (batched[i * b.rows() + j], naive.get(i, j));
                    prop_assert!((x - y).abs() < 1e-3 * (1.0 + y.abs()),
                        "({i},{j}): batched {x} vs naive {y}");
                }
            }
        }

        /// The batched kernel is bit-identical to per-query GEMV, whatever
        /// the block shape (this is the contract kg-eval's block ranking
        /// relies on for reproducible metrics).
        #[test]
        fn gemm_nt_bit_identical_to_gemv(a in small_mat(4, 8), b in small_mat(29, 8)) {
            let mut batched = vec![0.0f32; a.rows() * b.rows()];
            kg_linalg::gemm::gemm_nt(a.as_slice(), a.rows(), a.cols(), &b, &mut batched);
            let mut row = vec![0.0f32; b.rows()];
            for i in 0..a.rows() {
                b.gemv(a.row(i), &mut row);
                prop_assert_eq!(&batched[i * b.rows()..(i + 1) * b.rows()], row.as_slice());
            }
        }

        /// The row-range shard kernel agrees with the naive scalar dot loop
        /// for any shard placement (NaN-free inputs).
        #[test]
        fn gemm_nt_rows_matches_naive_dots(
            a in small_mat(4, 8),
            b in small_mat(37, 8),
            lo in 0usize..=37,
            hi in 0usize..=37,
        ) {
            let (j0, j1) = if lo <= hi { (lo, hi) } else { (hi, lo) };
            let width = j1 - j0;
            let mut shard = vec![0.0f32; a.rows() * width];
            kg_linalg::gemm::gemm_nt_rows(a.as_slice(), a.rows(), a.cols(), &b, j0..j1, &mut shard);
            for i in 0..a.rows() {
                for j in j0..j1 {
                    let mut acc = 0.0f32;
                    for c in 0..a.cols() {
                        acc += a.get(i, c) * b.get(j, c);
                    }
                    let got = shard[i * width + (j - j0)];
                    prop_assert!((got - acc).abs() < 1e-3 * (1.0 + acc.abs()),
                        "({i},{j}): shard {got} vs naive {acc}");
                }
            }
        }

        /// Shard blocks are bit-identical column slices of the full-table
        /// kernel — the contract that lets sharded ranking merge counts
        /// without changing a single score byte.
        #[test]
        fn gemm_nt_rows_bit_identical_to_full_kernel_slice(
            a in small_mat(3, 8),
            b in small_mat(41, 8),
            lo in 0usize..=41,
            hi in 0usize..=41,
        ) {
            let (j0, j1) = if lo <= hi { (lo, hi) } else { (hi, lo) };
            let n = b.rows();
            let mut full = vec![0.0f32; a.rows() * n];
            kg_linalg::gemm::gemm_nt(a.as_slice(), a.rows(), a.cols(), &b, &mut full);
            let width = j1 - j0;
            let mut shard = vec![0.0f32; a.rows() * width];
            kg_linalg::gemm::gemm_nt_rows(a.as_slice(), a.rows(), a.cols(), &b, j0..j1, &mut shard);
            for i in 0..a.rows() {
                prop_assert_eq!(
                    &shard[i * width..(i + 1) * width],
                    &full[i * n + j0..i * n + j1],
                    "row {} shard {}..{}", i, j0, j1
                );
            }
        }

        /// Batched transposed accumulation is bit-identical to row-by-row
        /// `gemv_t` (the training path's backward kernel).
        #[test]
        fn gemm_acc_t_bit_identical_to_gemv_t(s in small_mat(3, 23), b in small_mat(23, 6)) {
            let mut batched = vec![0.0f32; s.rows() * b.cols()];
            kg_linalg::gemm::gemm_acc_t(s.as_slice(), s.rows(), &b, &mut batched);
            let mut row = vec![0.0f32; b.cols()];
            for i in 0..s.rows() {
                b.gemv_t(s.row(i), &mut row);
                prop_assert_eq!(&batched[i * b.cols()..(i + 1) * b.cols()], row.as_slice());
            }
        }
    }

    proptest! {
        #[test]
        fn transpose_is_involutive(m in small_mat(3, 5)) {
            prop_assert_eq!(m.transposed().transposed(), m);
        }

        #[test]
        fn gemv_t_equals_transpose_gemv(m in small_mat(4, 6), x in small_vec(4)) {
            let mut a = vec![0.0f32; 6];
            let mut b = vec![0.0f32; 6];
            m.gemv_t(&x, &mut a);
            m.transposed().gemv(&x, &mut b);
            for i in 0..6 {
                prop_assert!((a[i] - b[i]).abs() < 1e-3);
            }
        }

        #[test]
        fn matmul_is_associative_with_vector(m in small_mat(3, 4), n in small_mat(4, 2), x in small_vec(2)) {
            // (M N) x == M (N x)
            let mn = m.matmul(&n);
            let mut lhs = vec![0.0f32; 3];
            mn.gemv(&x, &mut lhs);
            let mut nx = vec![0.0f32; 4];
            n.gemv(&x, &mut nx);
            let mut rhs = vec![0.0f32; 3];
            m.gemv(&nx, &mut rhs);
            for i in 0..3 {
                prop_assert!((lhs[i] - rhs[i]).abs() < 1e-1, "{} vs {}", lhs[i], rhs[i]);
            }
        }
    }
}

/// Cross-backend equivalence for the i8 coarse-tier kernels: integer
/// accumulation is associative, so every backend owes the *exact* integer
/// result — plain `==`, no canonicalisation — over lengths drawn to be
/// ragged against the 32-code SIMD chunk.
mod qgemm_props {
    use super::*;
    use kg_linalg::{qgemm, simd, KernelPolicy};

    /// Full-range i8 codes, saturation values included.
    fn codes(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<i8>> {
        prop::collection::vec(-127i32..128, n)
            .prop_map(|raw| raw.into_iter().map(|v| v as i8).collect())
    }

    /// Safe shim over the explicit AVX2 i8 GEMM — same pattern as the f32
    /// shims above: exercised wherever the CPU has AVX2, even when
    /// `KG_FORCE_SCALAR` pinned the dispatcher.
    fn avx2_gemm_i8(
        a: &[i8],
        m: usize,
        k: usize,
        b: &[i8],
        n: usize,
        rows: std::ops::Range<usize>,
        out: &mut [i32],
    ) -> bool {
        #[cfg(target_arch = "x86_64")]
        if simd::avx2_available() {
            // SAFETY: guarded by runtime AVX2 detection.
            unsafe { simd::avx2::gemm_i8_nt_rows(a, m, k, b, n, rows, out) };
            return true;
        }
        let _ = (a, m, k, b, n, rows, out);
        false
    }

    proptest! {
        /// Dispatched, scalar and explicit-AVX2 dots agree exactly with a
        /// wide-integer reference on every ragged length (the buffers are
        /// truncated to a drawn length so every chunk remainder shows up).
        #[test]
        fn dot_i8_is_exact_across_backends(
            a in codes(100..101),
            b in codes(100..101),
            len in 0usize..101,
        ) {
            let (a, b) = (&a[..len], &b[..len]);
            let wide: i64 = a.iter().zip(b).map(|(&x, &y)| x as i64 * y as i64).sum();
            prop_assert_eq!(qgemm::dot_i8(a, b) as i64, wide);
            prop_assert_eq!(qgemm::dot_i8_scalar(a, b) as i64, wide);
            #[cfg(target_arch = "x86_64")]
            if simd::avx2_available() {
                // SAFETY: guarded by runtime AVX2 detection.
                let simd_dot = unsafe { simd::avx2::dot_i8(a, b) };
                prop_assert_eq!(simd_dot as i64, wide);
            }
        }

        /// The i8 GEMM agrees bitwise between backends over shapes and
        /// shard ranges unaligned with the 32-code chunk width.
        #[test]
        fn gemm_i8_backends_agree_bitwise(
            a_buf in codes(345..346),
            b_buf in codes(3381..3382),
            m in 1usize..6,
            n in 1usize..50,
            k in 1usize..70,
            lo in 0usize..1_000,
            hi in 0usize..1_000,
        ) {
            let a = &a_buf[..m * k];
            let b = &b_buf[..n * k];
            let (lo, hi) = (lo % (n + 1), hi % (n + 1));
            let rows = lo.min(hi)..lo.max(hi);
            let width = rows.len();
            let mut scalar = vec![0i32; m * width];
            qgemm::gemm_i8_nt_rows_scalar(a, m, k, b, n, rows.clone(), &mut scalar);
            let mut dispatched = vec![0i32; m * width];
            qgemm::gemm_i8_nt_rows(a, m, k, b, n, rows.clone(), &mut dispatched);
            prop_assert_eq!(&dispatched, &scalar);
            let mut explicit = vec![0i32; m * width];
            if avx2_gemm_i8(a, m, k, b, n, rows.clone(), &mut explicit) {
                prop_assert_eq!(&explicit, &scalar);
            }
            // And every element is the exact per-pair dot.
            for i in 0..m {
                for j in rows.clone() {
                    let d = qgemm::dot_i8_scalar(&a[i * k..(i + 1) * k], &b[j * k..(j + 1) * k]);
                    prop_assert_eq!(scalar[i * width + (j - rows.start)], d);
                }
            }
        }

        /// The policy seam is a no-op for the integer tier: `Fast` and
        /// `Exact` owe byte-identical i8-GEMM blocks on every shape and
        /// shard range (exact i32 accumulation leaves no rounding-order
        /// freedom to relax), and both match the scalar reference.
        #[test]
        fn gemm_i8_byte_identical_across_policies(
            a_buf in codes(345..346),
            b_buf in codes(3381..3382),
            m in 1usize..6,
            n in 1usize..50,
            k in 1usize..70,
            lo in 0usize..1_000,
            hi in 0usize..1_000,
        ) {
            let a = &a_buf[..m * k];
            let b = &b_buf[..n * k];
            let (lo, hi) = (lo % (n + 1), hi % (n + 1));
            let rows = lo.min(hi)..lo.max(hi);
            let width = rows.len();
            let mut exact = vec![0i32; m * width];
            qgemm::gemm_i8_nt_rows_with(
                KernelPolicy::Exact, a, m, k, b, n, rows.clone(), &mut exact,
            );
            let mut fast = vec![0i32; m * width];
            qgemm::gemm_i8_nt_rows_with(
                KernelPolicy::Fast, a, m, k, b, n, rows.clone(), &mut fast,
            );
            prop_assert_eq!(&fast, &exact);
            let mut scalar = vec![0i32; m * width];
            qgemm::gemm_i8_nt_rows_scalar(a, m, k, b, n, rows.clone(), &mut scalar);
            prop_assert_eq!(&exact, &scalar);
        }
    }
}

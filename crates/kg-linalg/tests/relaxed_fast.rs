//! The relaxed-equivalence gate for the `Fast` kernel tier.
//!
//! `KernelPolicy::Fast` deliberately breaks the bit-identity contract: its
//! kernels contract multiply–add to FMA and split the accumulation across
//! four independent chains. This suite pins down exactly *how far* the
//! tier may drift from `Exact`, on the workload shape that matters
//! (query-block × entity-table scoring):
//!
//! * **Per-score bound** — every fast score stays within a
//!   condition-aware absolute bound of the f64 reference, and within a
//!   per-score ULP bound of the exact f32 score wherever the dot product
//!   is well conditioned (no catastrophic cancellation). Raw ULP distance
//!   alone is meaningless under cancellation — the exact answer itself is
//!   then far from the true value — so the ULP gate applies only where
//!   `Σ|aᵢbᵢ| ≤ 4·|Σaᵢbᵢ|`.
//! * **Rank-inversion rate** — ranking by fast scores may only flip pairs
//!   whose exact score gap is inside the float-noise band, and such flips
//!   must stay rare (< 0.5 % of all pairs on random embeddings).
//! * **Shard accuracy** — the fast kernels hold the same noise-band
//!   bound over *any* row range, not just full tables. (Bit-identity
//!   across shard layouts is deliberately **not** promised under `Fast`:
//!   a column near a tile's ragged tail is computed by the exact path in
//!   one layout and by the FMA chains in another, so stitched answers may
//!   differ from single-shard answers by rounding. Only `Exact` carries
//!   the stitching-invariance guarantee.)
//!
//! Without FMA on the host, `Fast` degrades to the exact AVX2 kernels and
//! this suite collapses to bit-identity checks — still worth running, so
//! nothing here is feature-gated.

use kg_linalg::rng::SeededRng;
use kg_linalg::{gemm, KernelPolicy, Mat};

const N_ENTITIES: usize = 256;
const N_QUERIES: usize = 8;
const DIM: usize = 64;

/// Map a float onto the integers so that ULP distance is a subtraction
/// (the usual monotone reinterpretation of the IEEE bit pattern).
fn ordered(x: f32) -> i64 {
    let i = x.to_bits() as i32;
    (if i < 0 { i32::MIN.wrapping_sub(i) } else { i }) as i64
}

fn ulp_dist(a: f32, b: f32) -> u64 {
    (ordered(a) - ordered(b)).unsigned_abs()
}

/// A query-block × entity-table scoring workload: `q` (queries × dim) and
/// `e` (entities × dim), plus exact and fast score blocks.
struct Workload {
    q: Mat,
    e: Mat,
    exact: Vec<f32>,
    fast: Vec<f32>,
}

fn workload(seed: u64) -> Workload {
    let mut rng = SeededRng::new(seed);
    let mut q = Mat::zeros(N_QUERIES, DIM);
    rng.fill_normal(1.0, q.as_mut_slice());
    let mut e = Mat::zeros(N_ENTITIES, DIM);
    rng.fill_normal(1.0, e.as_mut_slice());
    let mut exact = vec![0.0f32; N_QUERIES * N_ENTITIES];
    gemm::gemm_nt_with(KernelPolicy::Exact, q.as_slice(), N_QUERIES, DIM, &e, &mut exact);
    let mut fast = vec![0.0f32; N_QUERIES * N_ENTITIES];
    gemm::gemm_nt_with(KernelPolicy::Fast, q.as_slice(), N_QUERIES, DIM, &e, &mut fast);
    Workload { q, e, exact, fast }
}

/// f64 reference dot and accumulated term magnitude for score `(i, j)`.
fn reference(w: &Workload, i: usize, j: usize) -> (f64, f64) {
    let mut dot = 0.0f64;
    let mut mag = 0.0f64;
    for c in 0..DIM {
        let term = w.q.row(i)[c] as f64 * w.e.row(j)[c] as f64;
        dot += term;
        mag += term.abs();
    }
    (dot, mag)
}

/// The absolute noise band for one score: how far an f32 evaluation in
/// *any* order (exact or fast) may sit from the f64 answer.
fn noise(mag: f64) -> f64 {
    f32::EPSILON as f64 * (DIM as f64 + 8.0) * mag
}

#[test]
fn fast_scores_hold_per_score_bounds() {
    // Generous but meaningful: well-conditioned scores may drift at most
    // this many ULPs from exact; wrong math drifts millions.
    let ulp_bound = 8 * (DIM as u64 + 8);
    let degraded = KernelPolicy::Fast.resolve() == KernelPolicy::Exact.resolve();
    for seed in [11u64, 12, 13] {
        let w = workload(seed);
        for i in 0..N_QUERIES {
            for j in 0..N_ENTITIES {
                let (exact, fast) = (w.exact[i * N_ENTITIES + j], w.fast[i * N_ENTITIES + j]);
                if degraded {
                    assert_eq!(exact.to_bits(), fast.to_bits(), "no FMA: fast must equal exact");
                    continue;
                }
                let (dot, mag) = reference(&w, i, j);
                let err = (fast as f64 - dot).abs();
                assert!(
                    err <= noise(mag),
                    "fast score [{i},{j}] err {err:e} exceeds noise band {:e}",
                    noise(mag)
                );
                if mag <= 4.0 * dot.abs() {
                    let ulps = ulp_dist(exact, fast);
                    assert!(
                        ulps <= ulp_bound,
                        "well-conditioned score [{i},{j}] drifted {ulps} ULPs (bound {ulp_bound})"
                    );
                }
            }
        }
    }
}

#[test]
fn fast_rank_inversions_are_rare_and_noise_bounded() {
    let mut pairs = 0u64;
    let mut inversions = 0u64;
    for seed in [21u64, 22, 23] {
        let w = workload(seed);
        for i in 0..N_QUERIES {
            let exact_row = &w.exact[i * N_ENTITIES..(i + 1) * N_ENTITIES];
            let fast_row = &w.fast[i * N_ENTITIES..(i + 1) * N_ENTITIES];
            for a in 0..N_ENTITIES {
                for b in (a + 1)..N_ENTITIES {
                    pairs += 1;
                    let exact_gap = exact_row[a] - exact_row[b];
                    let fast_gap = fast_row[a] - fast_row[b];
                    if (exact_gap > 0.0) == (fast_gap > 0.0) || exact_gap == 0.0 {
                        continue;
                    }
                    inversions += 1;
                    // An inversion is only legitimate where the exact gap
                    // itself sits inside the combined noise band.
                    let (_, mag_a) = reference(&w, i, a);
                    let (_, mag_b) = reference(&w, i, b);
                    let band = 2.0 * noise(mag_a.max(mag_b));
                    assert!(
                        (exact_gap as f64).abs() <= band,
                        "rank inversion outside the noise band: query {i}, entities {a}/{b}, \
                         exact gap {exact_gap:e}, band {band:e}"
                    );
                }
            }
        }
    }
    let rate = inversions as f64 / pairs as f64;
    assert!(rate < 5e-3, "rank-inversion rate {rate:e} over {pairs} pairs is too high");
}

#[test]
fn fast_shard_rows_stay_within_noise_of_reference() {
    let w = workload(31);
    for (j0, j1) in [(0usize, N_ENTITIES), (1, 9), (7, 200), (128, 256), (250, 251)] {
        let width = j1 - j0;
        let mut shard = vec![0.0f32; N_QUERIES * width];
        gemm::gemm_nt_rows_with(
            KernelPolicy::Fast,
            w.q.as_slice(),
            N_QUERIES,
            DIM,
            &w.e,
            j0..j1,
            &mut shard,
        );
        for i in 0..N_QUERIES {
            for j in j0..j1 {
                let (dot, mag) = reference(&w, i, j);
                let err = (shard[i * width + (j - j0)] as f64 - dot).abs();
                assert!(
                    err <= noise(mag),
                    "fast shard {j0}..{j1} score [{i},{j}] err {err:e} exceeds noise {:e}",
                    noise(mag)
                );
            }
        }
    }
}

//! The batched scoring engine's model-side interface.
//!
//! Filtered ranking and the multi-class loss both score *many* `(entity,
//! relation)` queries against the full entity table. [`BatchScorer`] lets a
//! model answer a whole block of queries at once, writing a row-major
//! `queries × n_entities` score block:
//!
//! * models that factor as `score(q, e) = ⟨query_vector, e⟩` (the BLM family
//!   via [`crate::BlockSpec::tail_query`], the Gen-Approx MLP via its query
//!   network) override the block methods with one cache-blocked GEMM
//!   ([`kg_linalg::gemm::gemm_nt`]) per block;
//! * models that don't factor (the translational-distance family, rule
//!   models) inherit the default per-row loop, so every
//!   [`LinkPredictor`] can sit behind the same evaluation pipeline.
//!
//! The engine guarantees **bit-identical scores** to the per-query path:
//! overrides must produce, for every row, exactly the bytes
//! [`LinkPredictor::score_tails`] / [`LinkPredictor::score_heads`] would
//! have written. `kg-eval`'s equivalence suite enforces this for every
//! shipped model.

use crate::predictor::LinkPredictor;

/// Reusable buffers for batched scoring — create once per worker and feed to
/// every block call so the steady-state loop performs no allocation.
#[derive(Debug, Default)]
pub struct BatchScratch {
    queries: Vec<f32>,
}

impl BatchScratch {
    /// Fresh, empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        BatchScratch::default()
    }

    /// A row-major `rows × dim` query block, reusing the allocation. The
    /// contents are unspecified (possibly stale from an earlier block) —
    /// callers overwrite every row they score.
    pub fn query_block(&mut self, rows: usize, dim: usize) -> &mut [f32] {
        let len = rows * dim;
        if self.queries.len() < len {
            self.queries.resize(len, 0.0);
        }
        &mut self.queries[..len]
    }
}

/// Block-scoring extension of [`LinkPredictor`] — the seam between models
/// and the batched ranking/training engine.
pub trait BatchScorer: LinkPredictor {
    /// Score every entity as a tail for each `(head, relation)` query,
    /// writing query `i`'s scores to `out[i·n .. (i+1)·n]`.
    ///
    /// # Panics
    /// Panics if `out.len() != queries.len() * n_entities`.
    fn score_tails_batch(
        &self,
        queries: &[(usize, usize)],
        out: &mut [f32],
        scratch: &mut BatchScratch,
    ) {
        let _ = scratch;
        let n = self.n_entities();
        assert_eq!(out.len(), queries.len() * n, "score_tails_batch: out length mismatch");
        for (row, &(h, r)) in queries.iter().enumerate() {
            self.score_tails(h, r, &mut out[row * n..(row + 1) * n]);
        }
    }

    /// Score every entity as a head for each `(relation, tail)` query,
    /// writing query `i`'s scores to `out[i·n .. (i+1)·n]`.
    ///
    /// # Panics
    /// Panics if `out.len() != queries.len() * n_entities`.
    fn score_heads_batch(
        &self,
        queries: &[(usize, usize)],
        out: &mut [f32],
        scratch: &mut BatchScratch,
    ) {
        let _ = scratch;
        let n = self.n_entities();
        assert_eq!(out.len(), queries.len() * n, "score_heads_batch: out length mismatch");
        for (row, &(r, t)) in queries.iter().enumerate() {
            self.score_heads(r, t, &mut out[row * n..(row + 1) * n]);
        }
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::{BatchScorer, BatchScratch};

    /// Check a model's batch path reproduces its per-query path bit for bit,
    /// for both directions and a mildly ragged block shape.
    pub fn assert_batch_matches_per_query(
        m: &dyn BatchScorer,
        tail_queries: &[(usize, usize)],
        head_queries: &[(usize, usize)],
    ) {
        let n = m.n_entities();
        let mut scratch = BatchScratch::new();
        let mut block = vec![0.0f32; tail_queries.len() * n];
        m.score_tails_batch(tail_queries, &mut block, &mut scratch);
        let mut row = vec![0.0f32; n];
        for (i, &(h, r)) in tail_queries.iter().enumerate() {
            m.score_tails(h, r, &mut row);
            assert_eq!(&block[i * n..(i + 1) * n], row.as_slice(), "tail query {i}");
        }
        let mut block = vec![0.0f32; head_queries.len() * n];
        m.score_heads_batch(head_queries, &mut block, &mut scratch);
        for (i, &(r, t)) in head_queries.iter().enumerate() {
            m.score_heads(r, t, &mut row);
            assert_eq!(&block[i * n..(i + 1) * n], row.as_slice(), "head query {i}");
        }
    }
}

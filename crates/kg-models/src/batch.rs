//! The batched scoring engine's model-side interface.
//!
//! Filtered ranking and the multi-class loss both score *many* `(entity,
//! relation)` queries against the full entity table. [`BatchScorer`] lets a
//! model answer a whole block of queries at once, writing a row-major
//! `queries × n_entities` score block:
//!
//! * models that factor as `score(q, e) = ⟨query_vector, e⟩` (the BLM family
//!   via [`crate::BlockSpec::tail_query`], the Gen-Approx MLP via its query
//!   network) override the block methods with one cache-blocked GEMM
//!   ([`kg_linalg::gemm::gemm_nt`]) per block;
//! * models that don't factor (the translational-distance family, rule
//!   models) inherit the default per-row loop, so every
//!   [`LinkPredictor`] can sit behind the same evaluation pipeline.
//!
//! On top of the block methods sit the **entity-shard** entry points
//! ([`BatchScorer::score_tails_shard`] / [`BatchScorer::score_heads_shard`]):
//! the same query block scored against only a contiguous row range of the
//! entity table, written as a compact `queries × shard_width` block. The
//! sharded parallel ranking engine in `kg-eval` hands each worker thread one
//! shard, so the threads cooperate on a single query block instead of each
//! re-streaming the whole table. Factorising models override the shard
//! methods with [`kg_linalg::gemm::gemm_nt_rows`]; the default falls back to
//! full-table scoring (delegating to the block methods when the shard *is*
//! the full table, copying the shard's columns out of a scratch row
//! otherwise), so correctness never depends on a model opting in.
//!
//! The engine guarantees **bit-identical scores** to the per-query path:
//! overrides must produce, for every row and every shard, exactly the bytes
//! [`LinkPredictor::score_tails`] / [`LinkPredictor::score_heads`] would
//! have written for those entity columns. `kg-eval`'s equivalence suites
//! enforce this for every shipped model.

use crate::predictor::LinkPredictor;
use kg_linalg::KernelPolicy;
use std::ops::Range;

/// Reusable buffers for batched scoring — create once per worker and feed to
/// every block call so the steady-state loop performs no allocation.
///
/// The scratch also carries the worker's [`KernelPolicy`]: the GEMM
/// overrides read [`BatchScratch::policy`] and forward it to the
/// `*_with` kernel entry points, so the policy rides the existing
/// scratch parameter through the object-safe [`BatchScorer`] trait
/// without changing any method signature.
#[derive(Debug)]
pub struct BatchScratch {
    queries: Vec<f32>,
    score_row: Vec<f32>,
    policy: KernelPolicy,
}

impl Default for BatchScratch {
    fn default() -> Self {
        BatchScratch::new()
    }
}

impl BatchScratch {
    /// Fresh, empty scratch (buffers grow on first use) under the
    /// environment-resolved default policy
    /// ([`KernelPolicy::default_from_env`]: `Exact` unless
    /// `KG_KERNEL_POLICY=fast`, with `KG_FORCE_SCALAR` pinning `Exact`).
    pub fn new() -> Self {
        BatchScratch::with_policy(KernelPolicy::default_from_env())
    }

    /// Fresh, empty scratch under an explicit [`KernelPolicy`].
    pub fn with_policy(policy: KernelPolicy) -> Self {
        BatchScratch { queries: Vec::new(), score_row: Vec::new(), policy }
    }

    /// The kernel policy block-scoring overrides must apply to their GEMMs.
    pub fn policy(&self) -> KernelPolicy {
        self.policy
    }

    /// Re-pin the policy on an existing scratch (buffers are kept).
    pub fn set_policy(&mut self, policy: KernelPolicy) {
        self.policy = policy;
    }

    /// A row-major `rows × dim` query block, reusing the allocation. The
    /// contents are unspecified (possibly stale from an earlier block) —
    /// callers overwrite every row they score.
    pub fn query_block(&mut self, rows: usize, dim: usize) -> &mut [f32] {
        let len = rows * dim;
        if self.queries.len() < len {
            self.queries.resize(len, 0.0);
        }
        &mut self.queries[..len]
    }

    /// A full-table score row of length `n`, reusing the allocation — the
    /// staging buffer for the default (non-factorising) shard path. Contents
    /// are unspecified; callers overwrite before reading.
    pub fn score_row(&mut self, n: usize) -> &mut [f32] {
        if self.score_row.len() < n {
            self.score_row.resize(n, 0.0);
        }
        &mut self.score_row[..n]
    }
}

/// Block-scoring extension of [`LinkPredictor`] — the seam between models
/// and the batched ranking/training engine.
pub trait BatchScorer: LinkPredictor {
    /// Whether this model's shard scoring does work proportional to the
    /// shard width (a row-restricted GEMM, as in the BLM/NNM overrides) —
    /// `false` means the default shard path, which stages *full-table* rows
    /// and copies the shard's columns out: correct, but every shard costs a
    /// whole scoring pass. The parallel ranking engine consults this to
    /// split work by entity shard (native) or by query rows (staged), so
    /// non-factorising models parallelise without redundant scoring.
    fn native_shard_scoring(&self) -> bool {
        false
    }

    /// Score every entity as a tail for each `(head, relation)` query,
    /// writing query `i`'s scores to `out[i·n .. (i+1)·n]`.
    ///
    /// # Panics
    /// Panics if `out.len() != queries.len() * n_entities`.
    fn score_tails_batch(
        &self,
        queries: &[(usize, usize)],
        out: &mut [f32],
        scratch: &mut BatchScratch,
    ) {
        let _ = scratch;
        let n = self.n_entities();
        assert_eq!(out.len(), queries.len() * n, "score_tails_batch: out length mismatch");
        for (row, &(h, r)) in queries.iter().enumerate() {
            self.score_tails(h, r, &mut out[row * n..(row + 1) * n]);
        }
    }

    /// Score every entity as a head for each `(relation, tail)` query,
    /// writing query `i`'s scores to `out[i·n .. (i+1)·n]`.
    ///
    /// # Panics
    /// Panics if `out.len() != queries.len() * n_entities`.
    fn score_heads_batch(
        &self,
        queries: &[(usize, usize)],
        out: &mut [f32],
        scratch: &mut BatchScratch,
    ) {
        let _ = scratch;
        let n = self.n_entities();
        assert_eq!(out.len(), queries.len() * n, "score_heads_batch: out length mismatch");
        for (row, &(r, t)) in queries.iter().enumerate() {
            self.score_heads(r, t, &mut out[row * n..(row + 1) * n]);
        }
    }

    /// Score only the entity rows `shard` as tails for each `(head,
    /// relation)` query, writing the compact shard-local block
    /// `out[i·w + (e − shard.start)]` with `w = shard.len()`.
    ///
    /// Every element must be bit-identical to the corresponding column of
    /// [`BatchScorer::score_tails_batch`] — sharding may only restrict
    /// *which* scores are produced, never change their value. The default
    /// delegates to the full-table path: block scoring when the shard covers
    /// the whole table, otherwise per-query full rows staged through
    /// [`BatchScratch::score_row`] with the shard's columns copied out.
    /// Factorising models override with a row-restricted GEMM
    /// ([`kg_linalg::gemm::gemm_nt_rows`]).
    ///
    /// # Panics
    /// Panics if `shard` is decreasing or exceeds `n_entities`, or if
    /// `out.len() != queries.len() * shard.len()`.
    fn score_tails_shard(
        &self,
        queries: &[(usize, usize)],
        shard: Range<usize>,
        out: &mut [f32],
        scratch: &mut BatchScratch,
    ) {
        let n = self.n_entities();
        let width = checked_shard_width(&shard, n, queries.len(), out.len(), "score_tails_shard");
        if width == n {
            return self.score_tails_batch(queries, out, scratch);
        }
        let row = scratch.score_row(n);
        for (i, &(h, r)) in queries.iter().enumerate() {
            self.score_tails(h, r, row);
            out[i * width..(i + 1) * width].copy_from_slice(&row[shard.clone()]);
        }
    }

    /// Score only the entity rows `shard` as heads for each `(relation,
    /// tail)` query — the head-direction counterpart of
    /// [`BatchScorer::score_tails_shard`], with the same layout, the same
    /// bit-identity contract and the same full-table default.
    ///
    /// # Panics
    /// Panics if `shard` is decreasing or exceeds `n_entities`, or if
    /// `out.len() != queries.len() * shard.len()`.
    fn score_heads_shard(
        &self,
        queries: &[(usize, usize)],
        shard: Range<usize>,
        out: &mut [f32],
        scratch: &mut BatchScratch,
    ) {
        let n = self.n_entities();
        let width = checked_shard_width(&shard, n, queries.len(), out.len(), "score_heads_shard");
        if width == n {
            return self.score_heads_batch(queries, out, scratch);
        }
        let row = scratch.score_row(n);
        for (i, &(r, t)) in queries.iter().enumerate() {
            self.score_heads(r, t, row);
            out[i * width..(i + 1) * width].copy_from_slice(&row[shard.clone()]);
        }
    }
}

/// Forward [`BatchScorer`] — including every overridden batch/shard fast
/// path and the [`BatchScorer::native_shard_scoring`] capability flag —
/// through a pointer type, so a shared `Arc<dyn BatchScorer + Send + Sync>`
/// keeps a model's GEMM overrides when the ranking engine or the `kg-serve`
/// worker crew calls through the trait object.
macro_rules! forward_batch_scorer {
    ($ptr:ty) => {
        impl<T: BatchScorer + ?Sized> BatchScorer for $ptr {
            fn native_shard_scoring(&self) -> bool {
                (**self).native_shard_scoring()
            }
            fn score_tails_batch(
                &self,
                queries: &[(usize, usize)],
                out: &mut [f32],
                scratch: &mut BatchScratch,
            ) {
                (**self).score_tails_batch(queries, out, scratch)
            }
            fn score_heads_batch(
                &self,
                queries: &[(usize, usize)],
                out: &mut [f32],
                scratch: &mut BatchScratch,
            ) {
                (**self).score_heads_batch(queries, out, scratch)
            }
            fn score_tails_shard(
                &self,
                queries: &[(usize, usize)],
                shard: Range<usize>,
                out: &mut [f32],
                scratch: &mut BatchScratch,
            ) {
                (**self).score_tails_shard(queries, shard, out, scratch)
            }
            fn score_heads_shard(
                &self,
                queries: &[(usize, usize)],
                shard: Range<usize>,
                out: &mut [f32],
                scratch: &mut BatchScratch,
            ) {
                (**self).score_heads_shard(queries, shard, out, scratch)
            }
        }
    };
}

forward_batch_scorer!(&T);
forward_batch_scorer!(Box<T>);
forward_batch_scorer!(std::sync::Arc<T>);

/// Validate a shard request against the table size and output length;
/// returns the shard width. Shared by the default shard paths and the
/// factorising overrides so every implementation rejects the same misuse.
pub fn checked_shard_width(
    shard: &Range<usize>,
    n_entities: usize,
    n_queries: usize,
    out_len: usize,
    ctx: &str,
) -> usize {
    assert!(
        shard.start <= shard.end && shard.end <= n_entities,
        "{ctx}: shard {shard:?} out of bounds for {n_entities} entities"
    );
    let width = shard.len();
    assert_eq!(out_len, n_queries * width, "{ctx}: out length mismatch");
    width
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::{BatchScorer, BatchScratch, KernelPolicy};

    /// Check a model's batch path reproduces its per-query path bit for bit,
    /// for both directions and a mildly ragged block shape. The scratch is
    /// pinned to [`KernelPolicy::Exact`] — bit-identity is the exact tier's
    /// contract, so these assertions must hold even when the environment
    /// (e.g. the fast-tier CI job) defaults the policy to `Fast`.
    pub fn assert_batch_matches_per_query(
        m: &dyn BatchScorer,
        tail_queries: &[(usize, usize)],
        head_queries: &[(usize, usize)],
    ) {
        let n = m.n_entities();
        let mut scratch = BatchScratch::with_policy(KernelPolicy::Exact);
        let mut block = vec![0.0f32; tail_queries.len() * n];
        m.score_tails_batch(tail_queries, &mut block, &mut scratch);
        let mut row = vec![0.0f32; n];
        for (i, &(h, r)) in tail_queries.iter().enumerate() {
            m.score_tails(h, r, &mut row);
            assert_eq!(&block[i * n..(i + 1) * n], row.as_slice(), "tail query {i}");
        }
        let mut block = vec![0.0f32; head_queries.len() * n];
        m.score_heads_batch(head_queries, &mut block, &mut scratch);
        for (i, &(r, t)) in head_queries.iter().enumerate() {
            m.score_heads(r, t, &mut row);
            assert_eq!(&block[i * n..(i + 1) * n], row.as_slice(), "head query {i}");
        }
        assert_shards_match_per_query(m, tail_queries, head_queries);
    }

    /// Check the shard paths reproduce the per-query columns bit for bit
    /// across a set of awkward shard splits: full table, width 0, width 1,
    /// unroll-unaligned interior shards and a ragged final shard.
    pub fn assert_shards_match_per_query(
        m: &dyn BatchScorer,
        tail_queries: &[(usize, usize)],
        head_queries: &[(usize, usize)],
    ) {
        let n = m.n_entities();
        let mut scratch = BatchScratch::with_policy(KernelPolicy::Exact);
        let mut row = vec![0.0f32; n];
        let cut_a = 1.min(n);
        let cut_b = (n / 3).max(cut_a);
        let cut_c = n.saturating_sub(1).max(cut_b);
        let bounds = [0, cut_a, cut_a, cut_b, cut_c, n];
        for w in bounds.windows(2) {
            let shard = w[0]..w[1];
            let width = shard.len();
            let mut block = vec![0.0f32; tail_queries.len() * width];
            m.score_tails_shard(tail_queries, shard.clone(), &mut block, &mut scratch);
            for (i, &(h, r)) in tail_queries.iter().enumerate() {
                m.score_tails(h, r, &mut row);
                assert_eq!(
                    &block[i * width..(i + 1) * width],
                    &row[shard.clone()],
                    "tail query {i}, shard {shard:?}"
                );
            }
            let mut block = vec![0.0f32; head_queries.len() * width];
            m.score_heads_shard(head_queries, shard.clone(), &mut block, &mut scratch);
            for (i, &(r, t)) in head_queries.iter().enumerate() {
                m.score_heads(r, t, &mut row);
                assert_eq!(
                    &block[i * width..(i + 1) * width],
                    &row[shard.clone()],
                    "head query {i}, shard {shard:?}"
                );
            }
        }
    }
}

//! The human-designed BLMs of Tab. I as [`BlockSpec`]s — exactly the
//! transformations listed in Sec. III-B3 (components 1-indexed in the paper,
//! 0-indexed here).

use super::spec::{Block, BlockSpec};

/// DistMult: `Σ_c ⟨h_c, r_c, t_c⟩` — the plain diagonal (Fig. 1a).
pub fn distmult() -> BlockSpec {
    BlockSpec::new((0..4).map(|c| Block::new(c, c, c, 1)).collect())
}

/// ComplEx (and HolE, which is equivalent): the paper's 8-term expansion of
/// `Re(⟨h, r, conj(t)⟩)` into 4 components (Fig. 1b).
pub fn complex() -> BlockSpec {
    BlockSpec::new(vec![
        Block::new(0, 0, 0, 1),
        Block::new(0, 2, 2, 1),
        Block::new(2, 0, 2, 1),
        Block::new(2, 2, 0, -1),
        Block::new(1, 1, 1, 1),
        Block::new(1, 3, 3, 1),
        Block::new(3, 1, 3, 1),
        Block::new(3, 3, 1, -1),
    ])
}

/// Analogy: one real (DistMult-like) half plus one complex half (Fig. 1c).
pub fn analogy() -> BlockSpec {
    BlockSpec::new(vec![
        Block::new(0, 0, 0, 1),
        Block::new(1, 1, 1, 1),
        Block::new(2, 2, 2, 1),
        Block::new(2, 3, 3, 1),
        Block::new(3, 2, 3, 1),
        Block::new(3, 3, 2, -1),
    ])
}

/// SimplE / CP: two coupled halves `⟨ĥ, r̂, t̆⟩ + ⟨h̆, r̆, t̂⟩` (Fig. 1d).
pub fn simple() -> BlockSpec {
    BlockSpec::new(vec![
        Block::new(0, 0, 2, 1),
        Block::new(1, 1, 3, 1),
        Block::new(2, 2, 0, 1),
        Block::new(3, 3, 1, 1),
    ])
}

/// All four named baselines with their paper names.
pub fn all() -> Vec<(&'static str, BlockSpec)> {
    vec![
        ("DistMult", distmult()),
        ("ComplEx", complex()),
        ("Analogy", analogy()),
        ("SimplE", simple()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_linalg::SeededRng;

    fn rand_vec(rng: &mut SeededRng, n: usize) -> Vec<f32> {
        let mut v = vec![0.0f32; n];
        rng.fill_normal(1.0, &mut v);
        v
    }

    /// ComplEx reference: Re(⟨h, r, conj(t)⟩) with re = components {0,1},
    /// im = components {2,3} (the `[v_re, v_im]` encoding of Sec. III-B1).
    fn complex_reference(h: &[f32], r: &[f32], t: &[f32], dsub: usize) -> f32 {
        let half = 2 * dsub;
        let (hre, him) = (&h[..half], &h[half..]);
        let (rre, rim) = (&r[..half], &r[half..]);
        let (tre, tim) = (&t[..half], &t[half..]);
        let mut acc = 0.0f32;
        for i in 0..half {
            acc += hre[i] * rre[i] * tre[i] + him[i] * rre[i] * tim[i] + hre[i] * rim[i] * tim[i]
                - him[i] * rim[i] * tre[i];
        }
        acc
    }

    /// SimplE reference: ⟨ĥ, r̂, t̆⟩ + ⟨h̆, r̆, t̂⟩ with hat = {0,1},
    /// breve = {2,3}.
    fn simple_reference(h: &[f32], r: &[f32], t: &[f32], dsub: usize) -> f32 {
        let half = 2 * dsub;
        let mut acc = 0.0f32;
        for i in 0..half {
            acc += h[i] * r[i] * t[half + i]; // ⟨ĥ, r̂, t̆⟩
            acc += h[half + i] * r[half + i] * t[i]; // ⟨h̆, r̆, t̂⟩
        }
        acc
    }

    /// DistMult reference: plain triple dot over the full vector.
    fn distmult_reference(h: &[f32], r: &[f32], t: &[f32]) -> f32 {
        kg_linalg::vecops::triple_dot(h, r, t)
    }

    /// Analogy reference: DistMult on the real half {0,1} plus ComplEx on
    /// the complex half {2,3}.
    fn analogy_reference(h: &[f32], r: &[f32], t: &[f32], dsub: usize) -> f32 {
        let half = 2 * dsub;
        let mut acc = 0.0f32;
        for i in 0..half {
            acc += h[i] * r[i] * t[i];
        }
        let (hre, him) = (&h[half..half + dsub], &h[half + dsub..]);
        let (rre, rim) = (&r[half..half + dsub], &r[half + dsub..]);
        let (tre, tim) = (&t[half..half + dsub], &t[half + dsub..]);
        for i in 0..dsub {
            acc += hre[i] * rre[i] * tre[i] + him[i] * rre[i] * tim[i] + hre[i] * rim[i] * tim[i]
                - him[i] * rim[i] * tre[i];
        }
        acc
    }

    #[test]
    fn distmult_matches_reference() {
        let mut rng = SeededRng::new(10);
        let dsub = 4;
        for _ in 0..5 {
            let h = rand_vec(&mut rng, 4 * dsub);
            let r = rand_vec(&mut rng, 4 * dsub);
            let t = rand_vec(&mut rng, 4 * dsub);
            let got = distmult().score(&h, &r, &t, dsub);
            assert!((got - distmult_reference(&h, &r, &t)).abs() < 1e-4);
        }
    }

    #[test]
    fn complex_matches_reference() {
        let mut rng = SeededRng::new(11);
        let dsub = 4;
        for _ in 0..5 {
            let h = rand_vec(&mut rng, 4 * dsub);
            let r = rand_vec(&mut rng, 4 * dsub);
            let t = rand_vec(&mut rng, 4 * dsub);
            let got = complex().score(&h, &r, &t, dsub);
            let want = complex_reference(&h, &r, &t, dsub);
            assert!((got - want).abs() < 1e-3, "got {got} want {want}");
        }
    }

    #[test]
    fn simple_matches_reference() {
        let mut rng = SeededRng::new(12);
        let dsub = 4;
        for _ in 0..5 {
            let h = rand_vec(&mut rng, 4 * dsub);
            let r = rand_vec(&mut rng, 4 * dsub);
            let t = rand_vec(&mut rng, 4 * dsub);
            let got = simple().score(&h, &r, &t, dsub);
            let want = simple_reference(&h, &r, &t, dsub);
            assert!((got - want).abs() < 1e-3);
        }
    }

    #[test]
    fn analogy_matches_reference() {
        let mut rng = SeededRng::new(13);
        let dsub = 4;
        for _ in 0..5 {
            let h = rand_vec(&mut rng, 4 * dsub);
            let r = rand_vec(&mut rng, 4 * dsub);
            let t = rand_vec(&mut rng, 4 * dsub);
            let got = analogy().score(&h, &r, &t, dsub);
            let want = analogy_reference(&h, &r, &t, dsub);
            assert!((got - want).abs() < 1e-3);
        }
    }

    #[test]
    fn distmult_is_symmetric_complex_is_not() {
        let mut rng = SeededRng::new(14);
        let dsub = 4;
        let h = rand_vec(&mut rng, 4 * dsub);
        let r = rand_vec(&mut rng, 4 * dsub);
        let t = rand_vec(&mut rng, 4 * dsub);
        let dm = distmult();
        assert!((dm.score(&h, &r, &t, dsub) - dm.score(&t, &r, &h, dsub)).abs() < 1e-4);
        let cx = complex();
        assert!((cx.score(&h, &r, &t, dsub) - cx.score(&t, &r, &h, dsub)).abs() > 1e-3);
    }

    #[test]
    fn block_counts_match_figure_1() {
        assert_eq!(distmult().n_blocks(), 4);
        assert_eq!(complex().n_blocks(), 8);
        assert_eq!(analogy().n_blocks(), 6);
        assert_eq!(simple().n_blocks(), 4);
    }

    #[test]
    fn all_returns_four_distinct_models() {
        let models = all();
        assert_eq!(models.len(), 4);
        for i in 0..models.len() {
            for j in i + 1..models.len() {
                assert_ne!(models[i].1, models[j].1, "{} == {}", models[i].0, models[j].0);
            }
        }
    }
}

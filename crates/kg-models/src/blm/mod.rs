//! Bilinear models under the paper's unified representation.
//!
//! * [`spec`] — [`BlockSpec`]: the 4×4 signed-diagonal-block structure
//!   `g(r)` of Definition 2, with scoring, ranking queries and closed-form
//!   gradients.
//! * [`classics`] — DistMult / ComplEx / Analogy / SimplE expressed as
//!   `BlockSpec`s (the transformations of Sec. III-B3).
//! * [`model`] — [`BlmModel`]: a `BlockSpec` bound to trained
//!   [`crate::Embeddings`], implementing [`crate::LinkPredictor`].

pub mod classics;
pub mod model;
pub mod spec;

pub use model::BlmModel;
pub use spec::{Block, BlockSpec};

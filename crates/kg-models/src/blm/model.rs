//! A [`BlockSpec`] bound to trained embeddings.

use super::spec::BlockSpec;
use crate::embeddings::Embeddings;
use crate::predictor::LinkPredictor;
use serde::{Deserialize, Serialize};

/// Structure + parameters: the deployable bilinear model.
///
/// Serialisable (structure and embeddings together), so trained models can
/// be checkpointed and served without retraining.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BlmModel {
    /// The scoring-function structure.
    pub spec: BlockSpec,
    /// Trained embeddings.
    pub emb: Embeddings,
}

impl BlmModel {
    /// Bind a structure to embeddings.
    pub fn new(spec: BlockSpec, emb: Embeddings) -> Self {
        BlmModel { spec, emb }
    }
}

impl LinkPredictor for BlmModel {
    fn n_entities(&self) -> usize {
        self.emb.n_entities()
    }

    fn score_triple(&self, h: usize, r: usize, t: usize) -> f32 {
        self.spec.score(
            self.emb.ent.row(h),
            self.emb.rel.row(r),
            self.emb.ent.row(t),
            self.emb.dsub(),
        )
    }

    fn score_tails(&self, h: usize, r: usize, out: &mut [f32]) {
        let mut q = vec![0.0f32; self.emb.dim()];
        self.spec.tail_query(self.emb.ent.row(h), self.emb.rel.row(r), &mut q, self.emb.dsub());
        self.emb.ent.gemv(&q, out);
    }

    fn score_heads(&self, r: usize, t: usize, out: &mut [f32]) {
        let mut p = vec![0.0f32; self.emb.dim()];
        self.spec.head_query(self.emb.ent.row(t), self.emb.rel.row(r), &mut p, self.emb.dsub());
        self.emb.ent.gemv(&p, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blm::classics;
    use crate::predictor::test_support::assert_consistent_scoring;
    use kg_linalg::SeededRng;

    fn model(spec: BlockSpec) -> BlmModel {
        let mut rng = SeededRng::new(21);
        BlmModel::new(spec, Embeddings::init(12, 3, 16, &mut rng))
    }

    #[test]
    fn ranking_paths_agree_for_all_classics() {
        for (name, spec) in classics::all() {
            let m = model(spec);
            for (h, r, t) in [(0, 0, 1), (5, 2, 7), (11, 1, 0)] {
                assert_consistent_scoring(&m, h, r, t);
            }
            let _ = name;
        }
    }

    #[test]
    fn distmult_model_scores_symmetrically() {
        let m = model(classics::distmult());
        for (h, r, t) in [(0, 0, 1), (3, 2, 9)] {
            let a = m.score_triple(h, r, t);
            let b = m.score_triple(t, r, h);
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn score_buffers_sized_by_entities() {
        let m = model(classics::simple());
        assert_eq!(m.n_entities(), 12);
        let mut out = vec![0.0f32; 12];
        m.score_tails(0, 0, &mut out);
        assert!(out.iter().any(|&v| v != 0.0));
    }
}

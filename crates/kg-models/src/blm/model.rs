//! A [`BlockSpec`] bound to trained embeddings.

use super::spec::BlockSpec;
use crate::batch::{BatchScorer, BatchScratch};
use crate::embeddings::Embeddings;
use crate::predictor::LinkPredictor;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

thread_local! {
    /// Per-thread query buffer backing the per-query [`LinkPredictor`]
    /// adapter, so steady-state ranking loops that call `score_tails` /
    /// `score_heads` one query at a time perform zero allocations.
    static QUERY_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` with a zeroed thread-local query vector of length `dim`.
fn with_query_scratch<R>(dim: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    QUERY_SCRATCH.with(|buf| {
        let mut buf = buf.borrow_mut();
        if buf.len() < dim {
            buf.resize(dim, 0.0);
        }
        f(&mut buf[..dim])
    })
}

/// Structure + parameters: the deployable bilinear model.
///
/// Serialisable (structure and embeddings together), so trained models can
/// be checkpointed and served without retraining.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BlmModel {
    /// The scoring-function structure.
    pub spec: BlockSpec,
    /// Trained embeddings.
    pub emb: Embeddings,
}

impl BlmModel {
    /// Bind a structure to embeddings.
    pub fn new(spec: BlockSpec, emb: Embeddings) -> Self {
        BlmModel { spec, emb }
    }
}

impl LinkPredictor for BlmModel {
    fn n_entities(&self) -> usize {
        self.emb.n_entities()
    }

    fn n_relations(&self) -> Option<usize> {
        Some(self.emb.n_relations())
    }

    fn score_triple(&self, h: usize, r: usize, t: usize) -> f32 {
        self.spec.score(
            self.emb.ent.row(h),
            self.emb.rel.row(r),
            self.emb.ent.row(t),
            self.emb.dsub(),
        )
    }

    fn score_tails(&self, h: usize, r: usize, out: &mut [f32]) {
        with_query_scratch(self.emb.dim(), |q| {
            self.spec.tail_query(self.emb.ent.row(h), self.emb.rel.row(r), q, self.emb.dsub());
            self.emb.ent.gemv(q, out);
        });
    }

    fn score_heads(&self, r: usize, t: usize, out: &mut [f32]) {
        with_query_scratch(self.emb.dim(), |p| {
            self.spec.head_query(self.emb.ent.row(t), self.emb.rel.row(r), p, self.emb.dsub());
            self.emb.ent.gemv(p, out);
        });
    }
}

impl BlmModel {
    /// Build the row-major tail-query block (`queries × dim`) in `scratch`.
    fn tail_query_block<'a>(
        &self,
        queries: &[(usize, usize)],
        scratch: &'a mut BatchScratch,
    ) -> &'a mut [f32] {
        let (dim, dsub) = (self.emb.dim(), self.emb.dsub());
        let q = scratch.query_block(queries.len(), dim);
        for (row, &(h, r)) in queries.iter().enumerate() {
            self.spec.tail_query(
                self.emb.ent.row(h),
                self.emb.rel.row(r),
                &mut q[row * dim..(row + 1) * dim],
                dsub,
            );
        }
        q
    }

    /// Build the row-major head-query block (`queries × dim`) in `scratch`.
    fn head_query_block<'a>(
        &self,
        queries: &[(usize, usize)],
        scratch: &'a mut BatchScratch,
    ) -> &'a mut [f32] {
        let (dim, dsub) = (self.emb.dim(), self.emb.dsub());
        let p = scratch.query_block(queries.len(), dim);
        for (row, &(r, t)) in queries.iter().enumerate() {
            self.spec.head_query(
                self.emb.ent.row(t),
                self.emb.rel.row(r),
                &mut p[row * dim..(row + 1) * dim],
                dsub,
            );
        }
        p
    }
}

impl BatchScorer for BlmModel {
    /// Shard scoring is a row-restricted GEMM: work is proportional to the
    /// shard, so the parallel engine may split the entity table.
    fn native_shard_scoring(&self) -> bool {
        true
    }

    /// One [`BlockSpec::tail_query`] per row plus a single cache-blocked
    /// GEMM against the entity table — the fast path the per-query adapter
    /// above funnels into one query at a time.
    fn score_tails_batch(
        &self,
        queries: &[(usize, usize)],
        out: &mut [f32],
        scratch: &mut BatchScratch,
    ) {
        let (dim, n) = (self.emb.dim(), self.n_entities());
        assert_eq!(out.len(), queries.len() * n, "score_tails_batch: out length mismatch");
        let policy = scratch.policy();
        let q = self.tail_query_block(queries, scratch);
        kg_linalg::gemm::gemm_nt_with(policy, q, queries.len(), dim, &self.emb.ent, out);
    }

    fn score_heads_batch(
        &self,
        queries: &[(usize, usize)],
        out: &mut [f32],
        scratch: &mut BatchScratch,
    ) {
        let (dim, n) = (self.emb.dim(), self.n_entities());
        assert_eq!(out.len(), queries.len() * n, "score_heads_batch: out length mismatch");
        let policy = scratch.policy();
        let p = self.head_query_block(queries, scratch);
        kg_linalg::gemm::gemm_nt_with(policy, p, queries.len(), dim, &self.emb.ent, out);
    }

    /// Same query block, row-restricted GEMM: the shard worker's slice of
    /// the entity table is scored without touching the rest.
    fn score_tails_shard(
        &self,
        queries: &[(usize, usize)],
        shard: std::ops::Range<usize>,
        out: &mut [f32],
        scratch: &mut BatchScratch,
    ) {
        let dim = self.emb.dim();
        crate::batch::checked_shard_width(
            &shard,
            self.n_entities(),
            queries.len(),
            out.len(),
            "score_tails_shard",
        );
        let policy = scratch.policy();
        let q = self.tail_query_block(queries, scratch);
        kg_linalg::gemm::gemm_nt_rows_with(
            policy,
            q,
            queries.len(),
            dim,
            &self.emb.ent,
            shard,
            out,
        );
    }

    fn score_heads_shard(
        &self,
        queries: &[(usize, usize)],
        shard: std::ops::Range<usize>,
        out: &mut [f32],
        scratch: &mut BatchScratch,
    ) {
        let dim = self.emb.dim();
        crate::batch::checked_shard_width(
            &shard,
            self.n_entities(),
            queries.len(),
            out.len(),
            "score_heads_shard",
        );
        let policy = scratch.policy();
        let p = self.head_query_block(queries, scratch);
        kg_linalg::gemm::gemm_nt_rows_with(
            policy,
            p,
            queries.len(),
            dim,
            &self.emb.ent,
            shard,
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blm::classics;
    use crate::predictor::test_support::assert_consistent_scoring;
    use kg_linalg::SeededRng;

    fn model(spec: BlockSpec) -> BlmModel {
        let mut rng = SeededRng::new(21);
        BlmModel::new(spec, Embeddings::init(12, 3, 16, &mut rng))
    }

    #[test]
    fn ranking_paths_agree_for_all_classics() {
        for (name, spec) in classics::all() {
            let m = model(spec);
            for (h, r, t) in [(0, 0, 1), (5, 2, 7), (11, 1, 0)] {
                assert_consistent_scoring(&m, h, r, t);
            }
            let _ = name;
        }
    }

    #[test]
    fn distmult_model_scores_symmetrically() {
        let m = model(classics::distmult());
        for (h, r, t) in [(0, 0, 1), (3, 2, 9)] {
            let a = m.score_triple(h, r, t);
            let b = m.score_triple(t, r, h);
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn batched_scores_match_per_query_bit_for_bit() {
        use crate::batch::test_support::assert_batch_matches_per_query;
        for (_, spec) in classics::all() {
            let m = model(spec);
            assert_batch_matches_per_query(
                &m,
                &[(0, 0), (5, 2), (11, 1), (3, 0), (7, 2)],
                &[(0, 1), (2, 5), (1, 11)],
            );
        }
    }

    #[test]
    fn score_buffers_sized_by_entities() {
        let m = model(classics::simple());
        assert_eq!(m.n_entities(), 12);
        let mut out = vec![0.0f32; 12];
        m.score_tails(0, 0, &mut out);
        assert!(out.iter().any(|&v| v != 0.0));
    }
}

//! The unified block structure `g(r)` (paper, Definition 2).
//!
//! A scoring function is a set of *blocks*: entry `(h_c, t_c)` of the 4×4
//! block matrix holds `± diag(r_{r_c})`, contributing
//! `sign · ⟨h_{h_c}, r_{r_c}, t_{t_c}⟩` to the score. The struct stores only
//! the non-zero blocks, so `f^{b+1} = f^b + s·⟨h_i, r_j, t_k⟩` (Eq. 7) is an
//! O(1) push.
//!
//! Everything the trainer needs is closed-form:
//!
//! * `score(h, r, t) = Σ_b s_b ⟨h_{i_b}, r_{k_b}, t_{j_b}⟩`
//! * tail ranking uses `q` with `q_{j_b} += s_b · h_{i_b} ∘ r_{k_b}` so that
//!   `score(h, r, e) = ⟨q, e⟩` for every candidate entity `e` — one GEMV
//!   against the entity table scores all tails;
//! * head ranking symmetrically with `p_{i_b} += s_b · r_{k_b} ∘ t_{j_b}`;
//! * gradients of `q` and `p` w.r.t. the inputs are Hadamard products.

use serde::{Deserialize, Serialize};

/// Number of embedding components in the unified representation (`k = 4`,
/// Sec. III-B3: any even `k ≥ 4` covers Tab. I; the paper fixes 4 for a
/// tractable space).
pub const K: usize = 4;

/// One non-zero block: `sign · ⟨h_{hc}, r_{rc}, t_{tc}⟩`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Block {
    /// Head component index (block-matrix row), `0..4`.
    pub hc: u8,
    /// Relation component index (which `r_i` fills the cell), `0..4`.
    pub rc: u8,
    /// Tail component index (block-matrix column), `0..4`.
    pub tc: u8,
    /// `+1` or `-1`.
    pub sign: i8,
}

impl Block {
    /// Construct, checking ranges.
    pub fn new(hc: u8, rc: u8, tc: u8, sign: i8) -> Self {
        assert!(hc < K as u8 && rc < K as u8 && tc < K as u8, "component index out of range");
        assert!(sign == 1 || sign == -1, "sign must be ±1");
        Block { hc, rc, tc, sign }
    }
}

/// A scoring-function structure: the non-zero blocks of `g(r)`.
///
/// ```
/// use kg_models::{Block, BlockSpec};
///
/// // DistMult's diagonal structure, built by hand
/// let spec = BlockSpec::new((0..4).map(|c| Block::new(c, c, c, 1)).collect());
/// let dsub = 2; // component size; full dimension is 4 * dsub
/// let h = [1.0; 8];
/// let r = [0.5; 8];
/// let t = [2.0; 8];
/// assert_eq!(spec.score(&h, &r, &t, dsub), 8.0);
/// assert_eq!(spec.formula(), "+<h1,r1,t1> +<h2,r2,t2> +<h3,r3,t3> +<h4,r4,t4>");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BlockSpec {
    blocks: Vec<Block>,
}

impl BlockSpec {
    /// Build from blocks.
    ///
    /// # Panics
    /// Panics if two blocks occupy the same `(hc, tc)` cell — Definition 2
    /// allows a single `a_ij` per cell.
    pub fn new(blocks: Vec<Block>) -> Self {
        let mut cells = [[false; K]; K];
        for b in &blocks {
            let cell = &mut cells[b.hc as usize][b.tc as usize];
            assert!(!*cell, "duplicate block at cell ({}, {})", b.hc, b.tc);
            *cell = true;
        }
        let mut blocks = blocks;
        blocks.sort_unstable();
        BlockSpec { blocks }
    }

    /// Like [`BlockSpec::new`] but returns `None` on a duplicate cell
    /// (used by the random generators in the search).
    pub fn try_new(blocks: Vec<Block>) -> Option<Self> {
        let mut cells = [[false; K]; K];
        for b in &blocks {
            let cell = &mut cells[b.hc as usize][b.tc as usize];
            if *cell {
                return None;
            }
            *cell = true;
        }
        let mut blocks = blocks;
        blocks.sort_unstable();
        Some(BlockSpec { blocks })
    }

    /// The blocks, sorted canonically.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Number of non-zero blocks (`b` in Alg. 2).
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Extend with one more multiplicative term (Eq. 7). Returns `None` when
    /// the target cell is already occupied.
    pub fn extended(&self, b: Block) -> Option<Self> {
        if self.blocks.iter().any(|x| x.hc == b.hc && x.tc == b.tc) {
            return None;
        }
        let mut blocks = self.blocks.clone();
        blocks.push(b);
        blocks.sort_unstable();
        Some(BlockSpec { blocks })
    }

    /// The 4×4 *substitute matrix* (Sec. IV-B2): entry `(i, j)` is
    /// `sign · (rc + 1)` for the block at cell `(i, j)`, else 0. Used by the
    /// filter and the SRF feature generator.
    pub fn substitute_matrix(&self) -> [[i8; K]; K] {
        let mut m = [[0i8; K]; K];
        for b in &self.blocks {
            m[b.hc as usize][b.tc as usize] = b.sign * (b.rc as i8 + 1);
        }
        m
    }

    /// Score one triple given component sub-dimension `dsub`
    /// (`h`, `r`, `t` are full `4·dsub`-long embedding rows).
    pub fn score(&self, h: &[f32], r: &[f32], t: &[f32], dsub: usize) -> f32 {
        debug_assert_eq!(h.len(), K * dsub);
        let mut acc = 0.0f32;
        for b in &self.blocks {
            let hs = &h[b.hc as usize * dsub..(b.hc as usize + 1) * dsub];
            let rs = &r[b.rc as usize * dsub..(b.rc as usize + 1) * dsub];
            let ts = &t[b.tc as usize * dsub..(b.tc as usize + 1) * dsub];
            let v = kg_linalg::vecops::triple_dot(hs, rs, ts);
            acc += b.sign as f32 * v;
        }
        acc
    }

    /// Tail-ranking query: fill `q` (length `4·dsub`) so that
    /// `score(h, r, e) = ⟨q, e⟩` for any entity embedding `e`.
    pub fn tail_query(&self, h: &[f32], r: &[f32], q: &mut [f32], dsub: usize) {
        debug_assert_eq!(q.len(), K * dsub);
        kg_linalg::vecops::zero(q);
        for b in &self.blocks {
            let hs = &h[b.hc as usize * dsub..(b.hc as usize + 1) * dsub];
            let rs = &r[b.rc as usize * dsub..(b.rc as usize + 1) * dsub];
            let qs = &mut q[b.tc as usize * dsub..(b.tc as usize + 1) * dsub];
            kg_linalg::vecops::hadamard_axpy(b.sign as f32, hs, rs, qs);
        }
    }

    /// Head-ranking query: fill `p` so that `score(e, r, t) = ⟨p, e⟩`.
    pub fn head_query(&self, t: &[f32], r: &[f32], p: &mut [f32], dsub: usize) {
        debug_assert_eq!(p.len(), K * dsub);
        kg_linalg::vecops::zero(p);
        for b in &self.blocks {
            let ts = &t[b.tc as usize * dsub..(b.tc as usize + 1) * dsub];
            let rs = &r[b.rc as usize * dsub..(b.rc as usize + 1) * dsub];
            let ps = &mut p[b.hc as usize * dsub..(b.hc as usize + 1) * dsub];
            kg_linalg::vecops::hadamard_axpy(b.sign as f32, ts, rs, ps);
        }
    }

    /// Backward through [`BlockSpec::tail_query`]: given `dL/dq`, accumulate
    /// `dL/dh` and `dL/dr`.
    pub fn tail_query_backward(
        &self,
        h: &[f32],
        r: &[f32],
        dq: &[f32],
        dh: &mut [f32],
        dr: &mut [f32],
        dsub: usize,
    ) {
        for b in &self.blocks {
            let hi = b.hc as usize * dsub;
            let ri = b.rc as usize * dsub;
            let qi = b.tc as usize * dsub;
            let s = b.sign as f32;
            // q_j = s · h_i ∘ r_k  ⇒  dh_i += s · dq_j ∘ r_k,  dr_k += s · dq_j ∘ h_i
            kg_linalg::vecops::hadamard_axpy(
                s,
                &dq[qi..qi + dsub],
                &r[ri..ri + dsub],
                &mut dh[hi..hi + dsub],
            );
            kg_linalg::vecops::hadamard_axpy(
                s,
                &dq[qi..qi + dsub],
                &h[hi..hi + dsub],
                &mut dr[ri..ri + dsub],
            );
        }
    }

    /// Backward through [`BlockSpec::head_query`]: given `dL/dp`, accumulate
    /// `dL/dt` and `dL/dr`.
    pub fn head_query_backward(
        &self,
        t: &[f32],
        r: &[f32],
        dp: &[f32],
        dt: &mut [f32],
        dr: &mut [f32],
        dsub: usize,
    ) {
        for b in &self.blocks {
            let ti = b.tc as usize * dsub;
            let ri = b.rc as usize * dsub;
            let pi = b.hc as usize * dsub;
            let s = b.sign as f32;
            kg_linalg::vecops::hadamard_axpy(
                s,
                &dp[pi..pi + dsub],
                &r[ri..ri + dsub],
                &mut dt[ti..ti + dsub],
            );
            kg_linalg::vecops::hadamard_axpy(
                s,
                &dp[pi..pi + dsub],
                &t[ti..ti + dsub],
                &mut dr[ri..ri + dsub],
            );
        }
    }

    /// Materialise the dense `d × d` relation matrix `R = g(r)` for a
    /// concrete relation embedding — test/debug only, the hot paths never
    /// build it.
    pub fn dense_relation_matrix(&self, r: &[f32], dsub: usize) -> kg_linalg::Mat {
        let d = K * dsub;
        let mut m = kg_linalg::Mat::zeros(d, d);
        for b in &self.blocks {
            let rs = &r[b.rc as usize * dsub..(b.rc as usize + 1) * dsub];
            for x in 0..dsub {
                let row = b.hc as usize * dsub + x;
                let col = b.tc as usize * dsub + x;
                m.set(row, col, b.sign as f32 * rs[x]);
            }
        }
        m
    }

    /// Render the block matrix the way Fig. 1 / Fig. 5 draw it.
    pub fn render(&self) -> String {
        let m = self.substitute_matrix();
        let mut out = String::new();
        for row in &m {
            out.push('[');
            for (c, v) in row.iter().enumerate() {
                if c > 0 {
                    out.push(' ');
                }
                let cell = match v {
                    0 => "   0".to_string(),
                    v => format!("{}r{}", if *v > 0 { " +" } else { " -" }, v.abs()),
                };
                out.push_str(&cell);
            }
            out.push_str(" ]\n");
        }
        out
    }

    /// Compact one-line form, e.g. `+<h1,r1,t1> -<h3,r3,t1>` (1-indexed to
    /// match the paper's notation).
    pub fn formula(&self) -> String {
        self.blocks
            .iter()
            .map(|b| {
                format!(
                    "{}<h{},r{},t{}>",
                    if b.sign > 0 { "+" } else { "-" },
                    b.hc + 1,
                    b.rc + 1,
                    b.tc + 1
                )
            })
            .collect::<Vec<_>>()
            .join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_linalg::SeededRng;

    fn rand_vec(rng: &mut SeededRng, n: usize) -> Vec<f32> {
        let mut v = vec![0.0f32; n];
        rng.fill_normal(1.0, &mut v);
        v
    }

    fn sample_spec() -> BlockSpec {
        BlockSpec::new(vec![
            Block::new(0, 0, 0, 1),
            Block::new(1, 2, 3, -1),
            Block::new(3, 1, 2, 1),
        ])
    }

    #[test]
    fn score_matches_dense_matrix() {
        let mut rng = SeededRng::new(3);
        let dsub = 5;
        let spec = sample_spec();
        let h = rand_vec(&mut rng, 4 * dsub);
        let r = rand_vec(&mut rng, 4 * dsub);
        let t = rand_vec(&mut rng, 4 * dsub);
        let dense = spec.dense_relation_matrix(&r, dsub);
        // hᵀ R t
        let mut rt = vec![0.0f32; 4 * dsub];
        dense.gemv(&t, &mut rt);
        let expect = kg_linalg::vecops::dot(&h, &rt);
        let got = spec.score(&h, &r, &t, dsub);
        assert!((expect - got).abs() < 1e-4, "dense {expect} vs blocked {got}");
    }

    #[test]
    fn tail_query_scores_all_entities() {
        let mut rng = SeededRng::new(4);
        let dsub = 3;
        let spec = sample_spec();
        let h = rand_vec(&mut rng, 4 * dsub);
        let r = rand_vec(&mut rng, 4 * dsub);
        let mut q = vec![0.0f32; 4 * dsub];
        spec.tail_query(&h, &r, &mut q, dsub);
        for _ in 0..5 {
            let e = rand_vec(&mut rng, 4 * dsub);
            let via_q = kg_linalg::vecops::dot(&q, &e);
            let direct = spec.score(&h, &r, &e, dsub);
            assert!((via_q - direct).abs() < 1e-4);
        }
    }

    #[test]
    fn head_query_scores_all_entities() {
        let mut rng = SeededRng::new(5);
        let dsub = 3;
        let spec = sample_spec();
        let t = rand_vec(&mut rng, 4 * dsub);
        let r = rand_vec(&mut rng, 4 * dsub);
        let mut p = vec![0.0f32; 4 * dsub];
        spec.head_query(&t, &r, &mut p, dsub);
        for _ in 0..5 {
            let e = rand_vec(&mut rng, 4 * dsub);
            let via_p = kg_linalg::vecops::dot(&p, &e);
            let direct = spec.score(&e, &r, &t, dsub);
            assert!((via_p - direct).abs() < 1e-4);
        }
    }

    #[test]
    fn tail_backward_matches_finite_differences() {
        let mut rng = SeededRng::new(6);
        let dsub = 3;
        let d = 4 * dsub;
        let spec = sample_spec();
        let h = rand_vec(&mut rng, d);
        let r = rand_vec(&mut rng, d);
        let dq = rand_vec(&mut rng, d); // arbitrary upstream gradient
        let mut dh = vec![0.0f32; d];
        let mut dr = vec![0.0f32; d];
        spec.tail_query_backward(&h, &r, &dq, &mut dh, &mut dr, dsub);

        // loss = dq · q(h, r)
        let loss = |h: &[f32], r: &[f32]| {
            let mut q = vec![0.0f32; d];
            spec.tail_query(h, r, &mut q, dsub);
            kg_linalg::vecops::dot(&dq, &q)
        };
        let eps = 1e-3f32;
        for i in 0..d {
            let mut hp = h.clone();
            hp[i] += eps;
            let mut hm = h.clone();
            hm[i] -= eps;
            let num = (loss(&hp, &r) - loss(&hm, &r)) / (2.0 * eps);
            assert!((num - dh[i]).abs() < 2e-2, "dh[{i}]: fd {num} vs bp {}", dh[i]);
            let mut rp = r.clone();
            rp[i] += eps;
            let mut rm = r.clone();
            rm[i] -= eps;
            let num = (loss(&h, &rp) - loss(&h, &rm)) / (2.0 * eps);
            assert!((num - dr[i]).abs() < 2e-2, "dr[{i}]: fd {num} vs bp {}", dr[i]);
        }
    }

    #[test]
    fn head_backward_matches_finite_differences() {
        let mut rng = SeededRng::new(7);
        let dsub = 2;
        let d = 4 * dsub;
        let spec = sample_spec();
        let t = rand_vec(&mut rng, d);
        let r = rand_vec(&mut rng, d);
        let dp = rand_vec(&mut rng, d);
        let mut dt = vec![0.0f32; d];
        let mut dr = vec![0.0f32; d];
        spec.head_query_backward(&t, &r, &dp, &mut dt, &mut dr, dsub);

        let loss = |t: &[f32], r: &[f32]| {
            let mut p = vec![0.0f32; d];
            spec.head_query(t, r, &mut p, dsub);
            kg_linalg::vecops::dot(&dp, &p)
        };
        let eps = 1e-3f32;
        for i in 0..d {
            let mut tp = t.clone();
            tp[i] += eps;
            let mut tm = t.clone();
            tm[i] -= eps;
            let num = (loss(&tp, &r) - loss(&tm, &r)) / (2.0 * eps);
            assert!((num - dt[i]).abs() < 2e-2, "dt[{i}]");
            let mut rp = r.clone();
            rp[i] += eps;
            let mut rm = r.clone();
            rm[i] -= eps;
            let num = (loss(&t, &rp) - loss(&t, &rm)) / (2.0 * eps);
            assert!((num - dr[i]).abs() < 2e-2, "dr[{i}]");
        }
    }

    #[test]
    #[should_panic(expected = "duplicate block")]
    fn duplicate_cell_panics() {
        BlockSpec::new(vec![Block::new(0, 0, 0, 1), Block::new(0, 1, 0, 1)]);
    }

    #[test]
    fn try_new_rejects_duplicates() {
        assert!(BlockSpec::try_new(vec![Block::new(0, 0, 0, 1), Block::new(0, 1, 0, 1)]).is_none());
        assert!(BlockSpec::try_new(vec![Block::new(0, 0, 0, 1)]).is_some());
    }

    #[test]
    fn extended_respects_cells() {
        let s = BlockSpec::new(vec![Block::new(0, 0, 0, 1)]);
        assert!(s.extended(Block::new(0, 3, 0, -1)).is_none());
        let s2 = s.extended(Block::new(1, 1, 1, 1)).expect("free cell");
        assert_eq!(s2.n_blocks(), 2);
        // the original is unchanged (persistent style)
        assert_eq!(s.n_blocks(), 1);
    }

    #[test]
    fn substitute_matrix_layout() {
        let s = BlockSpec::new(vec![Block::new(1, 2, 3, -1)]);
        let m = s.substitute_matrix();
        assert_eq!(m[1][3], -3);
        assert_eq!(m[0][0], 0);
    }

    #[test]
    fn formula_and_render_are_stable() {
        let s = sample_spec();
        assert_eq!(s.formula(), "+<h1,r1,t1> -<h2,r3,t4> +<h4,r2,t3>");
        let r = s.render();
        assert_eq!(r.lines().count(), 4);
        assert!(r.contains("+r1"));
        assert!(r.contains("-r3"));
    }

    #[test]
    fn blocks_are_canonically_sorted() {
        let a = BlockSpec::new(vec![Block::new(3, 1, 2, 1), Block::new(0, 0, 0, 1)]);
        let b = BlockSpec::new(vec![Block::new(0, 0, 0, 1), Block::new(3, 1, 2, 1)]);
        assert_eq!(a, b);
    }
}

//! Entity and relation embedding tables.
//!
//! Head and tail entities share one table (paper, Notations: "h, t share
//! the same set of embedding parameters e"); relation embeddings have the
//! same dimension as entity embeddings (Sec. III-B constrains them equal).

use kg_linalg::{Mat, SeededRng};
use serde::{Deserialize, Serialize};

/// Shared entity table + relation table, both `? × dim`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Embeddings {
    /// `n_entities × dim` entity embeddings.
    pub ent: Mat,
    /// `n_relations × dim` relation embeddings.
    pub rel: Mat,
}

impl Embeddings {
    /// Xavier-initialised embeddings.
    ///
    /// # Panics
    /// Panics unless `dim` is a positive multiple of 4 — the unified
    /// representation splits every embedding into 4 components.
    pub fn init(n_entities: usize, n_relations: usize, dim: usize, rng: &mut SeededRng) -> Self {
        assert!(dim > 0 && dim.is_multiple_of(4), "embedding dim must be a positive multiple of 4");
        let mut ent = Mat::zeros(n_entities, dim);
        let mut rel = Mat::zeros(n_relations, dim);
        rng.xavier_uniform(dim, ent.as_mut_slice());
        rng.xavier_uniform(dim, rel.as_mut_slice());
        Embeddings { ent, rel }
    }

    /// Embedding dimension `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.ent.cols()
    }

    /// Component sub-dimension `d/4`.
    #[inline]
    pub fn dsub(&self) -> usize {
        self.dim() / 4
    }

    /// Number of entities.
    #[inline]
    pub fn n_entities(&self) -> usize {
        self.ent.rows()
    }

    /// Number of relations.
    #[inline]
    pub fn n_relations(&self) -> usize {
        self.rel.rows()
    }

    /// Total parameter count.
    pub fn n_params(&self) -> usize {
        self.ent.rows() * self.ent.cols() + self.rel.rows() * self.rel.cols()
    }
}

/// Slice out component `c ∈ {0..4}` of a `dim`-long embedding row.
#[inline]
pub fn component(row: &[f32], c: usize, dsub: usize) -> &[f32] {
    &row[c * dsub..(c + 1) * dsub]
}

/// Mutable variant of [`component`].
#[inline]
pub fn component_mut(row: &mut [f32], c: usize, dsub: usize) -> &mut [f32] {
    &mut row[c * dsub..(c + 1) * dsub]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_shapes() {
        let mut rng = SeededRng::new(1);
        let e = Embeddings::init(10, 3, 16, &mut rng);
        assert_eq!(e.dim(), 16);
        assert_eq!(e.dsub(), 4);
        assert_eq!(e.n_entities(), 10);
        assert_eq!(e.n_relations(), 3);
        assert_eq!(e.n_params(), 10 * 16 + 3 * 16);
        // initialised, not all zero
        assert!(e.ent.as_slice().iter().any(|&v| v != 0.0));
    }

    #[test]
    #[should_panic(expected = "multiple of 4")]
    fn dim_must_be_multiple_of_four() {
        let mut rng = SeededRng::new(1);
        Embeddings::init(2, 1, 6, &mut rng);
    }

    #[test]
    fn components_partition_the_row() {
        let row: Vec<f32> = (0..8).map(|i| i as f32).collect();
        assert_eq!(component(&row, 0, 2), &[0.0, 1.0]);
        assert_eq!(component(&row, 3, 2), &[6.0, 7.0]);
    }

    #[test]
    fn component_mut_writes_through() {
        let mut row = vec![0.0f32; 8];
        component_mut(&mut row, 2, 2)[0] = 5.0;
        assert_eq!(row[4], 5.0);
    }
}

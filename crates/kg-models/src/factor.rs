//! The factorising-model interface: query vectors and entity rows as
//! first-class objects.
//!
//! [`BatchScorer`] only promises *score blocks*; it says nothing about
//! how they are produced. Models in the BLM family factor as
//! `score(h, r, e) = ⟨query(h, r), e⟩`, and consumers that exploit that
//! structure need the pieces, not the product:
//!
//! * the **two-stage ranker** in `kg-eval` quantises the query vector,
//!   scans a quantised mirror of the entity table for candidates, then
//!   rescores only the candidates with exact f32 dots against
//!   [`FactorScorer::entity_row`];
//! * the **image writer** ([`crate::image_model`]) snapshots the entity
//!   table as one contiguous segment.
//!
//! The contract that makes the two-stage rescore sound: for every
//! factorising model, `vecops::dot(entity_row(e), q)` with `q` from
//! [`FactorScorer::tail_query_into`] must be **bit-identical** to
//! element `e` of [`LinkPredictor::score_tails`] — same FLOPs, same
//! order. The shipped impls guarantee this by construction (both paths
//! funnel into [`kg_linalg::Mat::gemv`]'s per-row
//! [`kg_linalg::vecops::dot`], which the GEMM backends reproduce
//! bitwise), and `kg-eval`'s equivalence suite enforces it.
//!
//! [`LinkPredictor::score_tails`]: crate::predictor::LinkPredictor::score_tails

use crate::batch::BatchScorer;
use crate::blm::BlmModel;

/// A [`BatchScorer`] whose score factors as `⟨query vector, entity row⟩`
/// — the structural interface the quantised coarse tier and the model
/// image writer consume.
pub trait FactorScorer: BatchScorer {
    /// Dimension of query vectors and entity rows.
    fn dim(&self) -> usize;

    /// Write the tail-direction query vector of `(h, r, ?)` into `out`
    /// (length [`FactorScorer::dim`]): the vector `q` with
    /// `score(h, r, e) = ⟨q, entity_row(e)⟩` for every entity `e`.
    fn tail_query_into(&self, h: usize, r: usize, out: &mut [f32]);

    /// Write the head-direction query vector of `(?, r, t)` into `out` —
    /// the head counterpart of [`FactorScorer::tail_query_into`].
    fn head_query_into(&self, r: usize, t: usize, out: &mut [f32]);

    /// Entity `e`'s embedding row (length [`FactorScorer::dim`]) — the
    /// exact f32 values the full scoring paths dot against.
    fn entity_row(&self, e: usize) -> &[f32];
}

impl FactorScorer for BlmModel {
    fn dim(&self) -> usize {
        self.emb.dim()
    }

    fn tail_query_into(&self, h: usize, r: usize, out: &mut [f32]) {
        assert_eq!(out.len(), self.emb.dim(), "tail_query_into: out length mismatch");
        self.spec.tail_query(self.emb.ent.row(h), self.emb.rel.row(r), out, self.emb.dsub());
    }

    fn head_query_into(&self, r: usize, t: usize, out: &mut [f32]) {
        assert_eq!(out.len(), self.emb.dim(), "head_query_into: out length mismatch");
        self.spec.head_query(self.emb.ent.row(t), self.emb.rel.row(r), out, self.emb.dsub());
    }

    fn entity_row(&self, e: usize) -> &[f32] {
        self.emb.ent.row(e)
    }
}

/// Forward [`FactorScorer`] through a pointer type, mirroring the
/// [`crate::batch`] and [`crate::predictor`] forwarders, so a shared
/// `Arc<impl FactorScorer>` feeds the two-stage ranker directly.
macro_rules! forward_factor_scorer {
    ($ptr:ty) => {
        impl<T: FactorScorer + ?Sized> FactorScorer for $ptr {
            fn dim(&self) -> usize {
                (**self).dim()
            }
            fn tail_query_into(&self, h: usize, r: usize, out: &mut [f32]) {
                (**self).tail_query_into(h, r, out)
            }
            fn head_query_into(&self, r: usize, t: usize, out: &mut [f32]) {
                (**self).head_query_into(r, t, out)
            }
            fn entity_row(&self, e: usize) -> &[f32] {
                (**self).entity_row(e)
            }
        }
    };
}

forward_factor_scorer!(&T);
forward_factor_scorer!(Box<T>);
forward_factor_scorer!(std::sync::Arc<T>);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blm::classics;
    use crate::embeddings::Embeddings;
    use crate::predictor::LinkPredictor;
    use kg_linalg::{vecops, SeededRng};

    fn model() -> BlmModel {
        let mut rng = SeededRng::new(33);
        BlmModel::new(classics::analogy(), Embeddings::init(9, 4, 16, &mut rng))
    }

    /// The factorisation contract: dotting the query vector against each
    /// entity row reproduces the full scoring paths bit for bit.
    #[test]
    fn factored_dots_match_full_scoring_bitwise() {
        let m = model();
        let (n, dim) = (m.n_entities(), FactorScorer::dim(&m));
        let mut q = vec![0.0f32; dim];
        let mut full = vec![0.0f32; n];
        for (h, r) in [(0, 0), (5, 3), (8, 1)] {
            m.tail_query_into(h, r, &mut q);
            m.score_tails(h, r, &mut full);
            for e in 0..n {
                let d = vecops::dot(m.entity_row(e), &q);
                assert_eq!(d.to_bits(), full[e].to_bits(), "tail ({h},{r}) entity {e}");
            }
        }
        for (r, t) in [(0, 1), (2, 7)] {
            m.head_query_into(r, t, &mut q);
            m.score_heads(r, t, &mut full);
            for e in 0..n {
                let d = vecops::dot(m.entity_row(e), &q);
                assert_eq!(d.to_bits(), full[e].to_bits(), "head ({r},{t}) entity {e}");
            }
        }
    }

    #[test]
    fn pointer_forwarding_preserves_the_factorisation() {
        let m = std::sync::Arc::new(model());
        let mut q1 = vec![0.0f32; FactorScorer::dim(&m)];
        let mut q2 = q1.clone();
        m.tail_query_into(2, 1, &mut q1);
        (*m).tail_query_into(2, 1, &mut q2);
        assert_eq!(q1, q2);
        assert_eq!(m.entity_row(3), (*m).entity_row(3));
    }

    #[test]
    #[should_panic(expected = "tail_query_into: out length mismatch")]
    fn wrong_query_length_panics() {
        let m = model();
        let mut q = vec![0.0f32; 3];
        m.tail_query_into(0, 0, &mut q);
    }
}

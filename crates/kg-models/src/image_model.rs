//! The BLM model **image schema**: which `kg-table` segments hold what,
//! a writer that snapshots a trained [`BlmModel`] (f32 tables, the
//! quantised coarse mirror, the serialised spec), and [`ImageBlmModel`]
//! — the zero-copy, memory-mapped model that scores straight out of the
//! mapping.
//!
//! `kg-table` defines the container (header, directory, checksums,
//! 64-byte-aligned segments); this module fixes the segment ids and
//! shapes — the same split as an object-file format and its linker. An
//! image written by [`write_model_image`] holds seven segments:
//!
//! | id                | dtype | shape                  | contents |
//! |-------------------|-------|------------------------|----------|
//! | [`SEG_META_U64`]  | u64   | 4                      | n_entities, n_relations, dim, flags |
//! | [`SEG_ENT_F32`]   | f32   | n_entities × dim       | entity table |
//! | [`SEG_REL_F32`]   | f32   | n_relations × dim      | relation table |
//! | [`SEG_QUANT_I8`]  | i8    | n_entities × dim       | quantised entity codes |
//! | [`SEG_QSCALE_F32`]| f32   | n_entities             | per-row quantiser scales |
//! | [`SEG_QL1_U32`]   | u32   | n_entities             | per-row exact code L1 norms |
//! | [`SEG_SPEC_JSON`] | u8    | —                      | [`BlockSpec`] as JSON |
//!
//! `flags` bit 0 records the quantised table's `all_finite` property
//! (the certification gate, see `kg-table`'s crate docs). The i8 mirror
//! is baked at write time so a server restart pays no quantisation pass.
//!
//! [`ImageBlmModel`] validates the whole schema at open, on the caller's
//! thread — segment presence, dtypes, cross-checked shapes, a decodable
//! spec — so every later accessor is infallible and allocation-free:
//! `entity_row` and the GEMM fast paths read the mapping in place.
//! Scoring is **bit-identical** to the same model served from memory:
//! the image stores the exact f32 bytes, and every scoring path runs the
//! same kernels over them ([`BlmModel::from_image`] round-trips to an
//! equal in-memory model, which the tests pin down).

use crate::batch::{BatchScorer, BatchScratch};
use crate::blm::{BlmModel, BlockSpec};
use crate::embeddings::Embeddings;
use crate::factor::FactorScorer;
use crate::predictor::LinkPredictor;
use kg_linalg::{gemm, qgemm, Mat};
use kg_table::{Image, ImageError, ImageWriter, QuantTable, QuantView};
use std::cell::RefCell;
use std::path::Path;

/// Meta words: `[n_entities, n_relations, dim, flags]` (u64 each).
pub const SEG_META_U64: u32 = 1;
/// Entity embedding table, `n_entities × dim` f32 row-major.
pub const SEG_ENT_F32: u32 = 2;
/// Relation embedding table, `n_relations × dim` f32 row-major.
pub const SEG_REL_F32: u32 = 3;
/// Quantised entity codes, `n_entities × dim` i8 row-major.
pub const SEG_QUANT_I8: u32 = 4;
/// Per-row quantiser scales, `n_entities` f32.
pub const SEG_QSCALE_F32: u32 = 5;
/// Per-row exact integer L1 norms of the codes, `n_entities` u32.
pub const SEG_QL1_U32: u32 = 6;
/// The [`BlockSpec`] serialised as JSON (u8 segment).
pub const SEG_SPEC_JSON: u32 = 7;

/// Number of meta words in [`SEG_META_U64`].
const META_WORDS: usize = 4;
/// `flags` bit: every quantised entity row was finite (certification gate).
const FLAG_QUANT_ALL_FINITE: u64 = 1;

thread_local! {
    /// Per-thread query buffer for the per-query [`LinkPredictor`] paths —
    /// same zero-allocation steady state as the in-memory model.
    static QUERY_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

fn with_query_scratch<R>(dim: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    QUERY_SCRATCH.with(|buf| {
        let mut buf = buf.borrow_mut();
        if buf.len() < dim {
            buf.resize(dim, 0.0);
        }
        f(&mut buf[..dim])
    })
}

/// Serialise a trained model into image bytes: both f32 tables, the
/// freshly quantised i8 mirror of the entity table, and the spec.
///
/// Only fallible through the spec's JSON encoding (never for a valid
/// [`BlockSpec`]); the error is surfaced as [`ImageError::Schema`] rather
/// than a panic so callers get one error channel for the whole pipeline.
pub fn model_image_bytes(model: &BlmModel) -> Result<Vec<u8>, ImageError> {
    let (n, dim) = (model.emb.n_entities(), model.emb.dim());
    let quant = QuantTable::from_rows(model.emb.ent.as_slice(), n, dim);
    let spec_json = serde_json::to_string(&model.spec)
        .map_err(|e| ImageError::Schema(format!("spec serialisation failed: {e}")))?;
    let flags = if quant.all_finite() { FLAG_QUANT_ALL_FINITE } else { 0 };
    let meta = [n as u64, model.emb.n_relations() as u64, dim as u64, flags];
    let v = quant.view();
    let mut w = ImageWriter::new();
    w.seg_u64(SEG_META_U64, &meta)
        .seg_f32(SEG_ENT_F32, model.emb.ent.as_slice())
        .seg_f32(SEG_REL_F32, model.emb.rel.as_slice())
        .seg_i8(SEG_QUANT_I8, v.codes())
        .seg_f32(SEG_QSCALE_F32, v.scales())
        .seg_u32(SEG_QL1_U32, v.l1_norms())
        .seg_bytes(SEG_SPEC_JSON, spec_json.as_bytes());
    Ok(w.to_bytes())
}

/// Write a trained model to an image file at `path` (create/truncate).
/// See [`model_image_bytes`] for the layout.
pub fn write_model_image(model: &BlmModel, path: &Path) -> Result<(), ImageError> {
    let bytes = model_image_bytes(model)?;
    std::fs::write(path, bytes)?;
    Ok(())
}

/// A [`BlmModel`] served zero-copy out of a validated model image: every
/// scoring path reads embedding bytes straight from the mapping, and the
/// quantised coarse tier is available as a borrowed [`QuantView`].
///
/// Implements the full model interface ([`LinkPredictor`],
/// [`BatchScorer`] with the same GEMM fast paths as the in-memory model,
/// [`FactorScorer`]), so `kg-serve`'s engine builder and `kg-eval`'s
/// rankers accept it unchanged — bit-identical scores included.
#[derive(Debug)]
pub struct ImageBlmModel {
    img: Image,
    spec: BlockSpec,
    n_entities: usize,
    n_relations: usize,
    dim: usize,
    quant_all_finite: bool,
}

/// Shape-check one segment's element count, with a [`ImageError::Schema`]
/// message naming the segment.
fn expect_len(what: &str, got: usize, want: usize) -> Result<(), ImageError> {
    if got != want {
        return Err(ImageError::Schema(format!(
            "{what}: expected {want} elements, image holds {got}"
        )));
    }
    Ok(())
}

impl ImageBlmModel {
    /// Memory-map the image at `path` and validate the model schema on
    /// top of the container validation [`Image::open`] already performs.
    pub fn open(path: &Path) -> Result<ImageBlmModel, ImageError> {
        ImageBlmModel::new(Image::open(path)?)
    }

    /// Validate a model schema over an already-opened image. All segment
    /// presence, dtype and cross-shape checks happen here, on the
    /// caller's thread — after this returns, every accessor is
    /// infallible.
    pub fn new(img: Image) -> Result<ImageBlmModel, ImageError> {
        let meta = img.u64s(SEG_META_U64)?;
        expect_len("meta segment", meta.len(), META_WORDS)?;
        let (n_entities, n_relations, dim) = (meta[0] as usize, meta[1] as usize, meta[2] as usize);
        let flags = meta[3];
        if dim == 0 || dim % 4 != 0 {
            return Err(ImageError::Schema(format!(
                "embedding dim {dim} is not a positive multiple of 4"
            )));
        }
        if dim > qgemm::I8_DOT_MAX_K {
            return Err(ImageError::Schema(format!(
                "embedding dim {dim} exceeds the exact-i32 quantised-dot bound"
            )));
        }
        let ent_elems = n_entities
            .checked_mul(dim)
            .ok_or_else(|| ImageError::Schema("entity table size overflows".into()))?;
        let rel_elems = n_relations
            .checked_mul(dim)
            .ok_or_else(|| ImageError::Schema("relation table size overflows".into()))?;
        expect_len("entity table", img.f32s(SEG_ENT_F32)?.len(), ent_elems)?;
        expect_len("relation table", img.f32s(SEG_REL_F32)?.len(), rel_elems)?;
        expect_len("quantised codes", img.i8s(SEG_QUANT_I8)?.len(), ent_elems)?;
        expect_len("quantiser scales", img.f32s(SEG_QSCALE_F32)?.len(), n_entities)?;
        expect_len("code L1 norms", img.u32s(SEG_QL1_U32)?.len(), n_entities)?;
        let spec_bytes = img.bytes(SEG_SPEC_JSON)?;
        let spec_str = std::str::from_utf8(spec_bytes)
            .map_err(|e| ImageError::Schema(format!("spec segment is not UTF-8: {e}")))?;
        let spec: BlockSpec = serde_json::from_str(spec_str)
            .map_err(|e| ImageError::Schema(format!("spec segment does not parse: {e}")))?;
        Ok(ImageBlmModel {
            img,
            spec,
            n_entities,
            n_relations,
            dim,
            quant_all_finite: flags & FLAG_QUANT_ALL_FINITE != 0,
        })
    }

    /// The scoring-function structure decoded from the image.
    pub fn spec(&self) -> &BlockSpec {
        &self.spec
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    fn dsub(&self) -> usize {
        self.dim / 4
    }

    /// The full entity table, row-major, borrowed from the mapping.
    pub fn ent(&self) -> &[f32] {
        // Validated in `new`: present, F32, n_entities × dim elements.
        self.img.f32s(SEG_ENT_F32).expect("validated at open")
    }

    /// The full relation table, row-major, borrowed from the mapping.
    pub fn rel(&self) -> &[f32] {
        self.img.f32s(SEG_REL_F32).expect("validated at open")
    }

    fn rel_row(&self, r: usize) -> &[f32] {
        &self.rel()[r * self.dim..(r + 1) * self.dim]
    }

    /// The quantised coarse tier, borrowed zero-copy from the mapping —
    /// what the two-stage ranker scans for candidates.
    pub fn quant(&self) -> QuantView<'_> {
        QuantView::from_parts(
            self.img.i8s(SEG_QUANT_I8).expect("validated at open"),
            self.img.f32s(SEG_QSCALE_F32).expect("validated at open"),
            self.img.u32s(SEG_QL1_U32).expect("validated at open"),
            self.n_entities,
            self.dim,
            self.quant_all_finite,
        )
    }

    /// The underlying container (for [`Image::verify`] or inspection).
    pub fn image(&self) -> &Image {
        &self.img
    }
}

impl BlmModel {
    /// Copy an image back into an owned in-memory model — the inverse of
    /// [`write_model_image`], used where mutation (training) is needed.
    /// Embeddings and spec are bit-identical to what was written.
    pub fn from_image(img: &Image) -> Result<BlmModel, ImageError> {
        // Reuse the schema validation; borrow per-call accessors after.
        let meta = img.u64s(SEG_META_U64)?;
        expect_len("meta segment", meta.len(), META_WORDS)?;
        let (n_entities, n_relations, dim) = (meta[0] as usize, meta[1] as usize, meta[2] as usize);
        if dim == 0 || dim % 4 != 0 {
            return Err(ImageError::Schema(format!(
                "embedding dim {dim} is not a positive multiple of 4"
            )));
        }
        let ent = img.f32s(SEG_ENT_F32)?;
        let rel = img.f32s(SEG_REL_F32)?;
        expect_len("entity table", ent.len(), n_entities * dim)?;
        expect_len("relation table", rel.len(), n_relations * dim)?;
        let spec_str = std::str::from_utf8(img.bytes(SEG_SPEC_JSON)?)
            .map_err(|e| ImageError::Schema(format!("spec segment is not UTF-8: {e}")))?;
        let spec: BlockSpec = serde_json::from_str(spec_str)
            .map_err(|e| ImageError::Schema(format!("spec segment does not parse: {e}")))?;
        let emb = Embeddings {
            ent: Mat::from_vec(n_entities, dim, ent.to_vec()),
            rel: Mat::from_vec(n_relations, dim, rel.to_vec()),
        };
        Ok(BlmModel::new(spec, emb))
    }
}

impl LinkPredictor for ImageBlmModel {
    fn n_entities(&self) -> usize {
        self.n_entities
    }

    fn n_relations(&self) -> Option<usize> {
        Some(self.n_relations)
    }

    fn score_triple(&self, h: usize, r: usize, t: usize) -> f32 {
        self.spec.score(self.entity_row(h), self.rel_row(r), self.entity_row(t), self.dsub())
    }

    fn score_tails(&self, h: usize, r: usize, out: &mut [f32]) {
        assert_eq!(out.len(), self.n_entities, "score_tails: out length mismatch");
        with_query_scratch(self.dim, |q| {
            self.spec.tail_query(self.entity_row(h), self.rel_row(r), q, self.dsub());
            // Same per-row dot, same order, as `Mat::gemv` — bit-identical
            // to the in-memory model.
            for (e, o) in out.iter_mut().enumerate() {
                *o = kg_linalg::vecops::dot(self.entity_row(e), q);
            }
        });
    }

    fn score_heads(&self, r: usize, t: usize, out: &mut [f32]) {
        assert_eq!(out.len(), self.n_entities, "score_heads: out length mismatch");
        with_query_scratch(self.dim, |p| {
            self.spec.head_query(self.entity_row(t), self.rel_row(r), p, self.dsub());
            for (e, o) in out.iter_mut().enumerate() {
                *o = kg_linalg::vecops::dot(self.entity_row(e), p);
            }
        });
    }
}

impl ImageBlmModel {
    /// Build the row-major tail-query block (`queries × dim`) in `scratch`.
    fn tail_query_block<'a>(
        &self,
        queries: &[(usize, usize)],
        scratch: &'a mut BatchScratch,
    ) -> &'a mut [f32] {
        let (dim, dsub) = (self.dim, self.dsub());
        let q = scratch.query_block(queries.len(), dim);
        for (row, &(h, r)) in queries.iter().enumerate() {
            self.spec.tail_query(
                self.entity_row(h),
                self.rel_row(r),
                &mut q[row * dim..(row + 1) * dim],
                dsub,
            );
        }
        q
    }

    /// Build the row-major head-query block (`queries × dim`) in `scratch`.
    fn head_query_block<'a>(
        &self,
        queries: &[(usize, usize)],
        scratch: &'a mut BatchScratch,
    ) -> &'a mut [f32] {
        let (dim, dsub) = (self.dim, self.dsub());
        let p = scratch.query_block(queries.len(), dim);
        for (row, &(r, t)) in queries.iter().enumerate() {
            self.spec.head_query(
                self.entity_row(t),
                self.rel_row(r),
                &mut p[row * dim..(row + 1) * dim],
                dsub,
            );
        }
        p
    }
}

impl BatchScorer for ImageBlmModel {
    /// Same row-restricted GEMM as the in-memory model — the slice-core
    /// kernels run directly over the mapped entity segment.
    fn native_shard_scoring(&self) -> bool {
        true
    }

    fn score_tails_batch(
        &self,
        queries: &[(usize, usize)],
        out: &mut [f32],
        scratch: &mut BatchScratch,
    ) {
        let (dim, n) = (self.dim, self.n_entities);
        assert_eq!(out.len(), queries.len() * n, "score_tails_batch: out length mismatch");
        let policy = scratch.policy();
        let q = self.tail_query_block(queries, scratch);
        gemm::gemm_nt_slice_with(policy, q, queries.len(), dim, self.ent(), n, out);
    }

    fn score_heads_batch(
        &self,
        queries: &[(usize, usize)],
        out: &mut [f32],
        scratch: &mut BatchScratch,
    ) {
        let (dim, n) = (self.dim, self.n_entities);
        assert_eq!(out.len(), queries.len() * n, "score_heads_batch: out length mismatch");
        let policy = scratch.policy();
        let p = self.head_query_block(queries, scratch);
        gemm::gemm_nt_slice_with(policy, p, queries.len(), dim, self.ent(), n, out);
    }

    fn score_tails_shard(
        &self,
        queries: &[(usize, usize)],
        shard: std::ops::Range<usize>,
        out: &mut [f32],
        scratch: &mut BatchScratch,
    ) {
        let (dim, n) = (self.dim, self.n_entities);
        crate::batch::checked_shard_width(&shard, n, queries.len(), out.len(), "score_tails_shard");
        let policy = scratch.policy();
        let q = self.tail_query_block(queries, scratch);
        gemm::gemm_nt_rows_slice_with(policy, q, queries.len(), dim, self.ent(), n, shard, out);
    }

    fn score_heads_shard(
        &self,
        queries: &[(usize, usize)],
        shard: std::ops::Range<usize>,
        out: &mut [f32],
        scratch: &mut BatchScratch,
    ) {
        let (dim, n) = (self.dim, self.n_entities);
        crate::batch::checked_shard_width(&shard, n, queries.len(), out.len(), "score_heads_shard");
        let policy = scratch.policy();
        let p = self.head_query_block(queries, scratch);
        gemm::gemm_nt_rows_slice_with(policy, p, queries.len(), dim, self.ent(), n, shard, out);
    }
}

impl FactorScorer for ImageBlmModel {
    fn dim(&self) -> usize {
        self.dim
    }

    fn tail_query_into(&self, h: usize, r: usize, out: &mut [f32]) {
        assert_eq!(out.len(), self.dim, "tail_query_into: out length mismatch");
        self.spec.tail_query(self.entity_row(h), self.rel_row(r), out, self.dsub());
    }

    fn head_query_into(&self, r: usize, t: usize, out: &mut [f32]) {
        assert_eq!(out.len(), self.dim, "head_query_into: out length mismatch");
        self.spec.head_query(self.entity_row(t), self.rel_row(r), out, self.dsub());
    }

    fn entity_row(&self, e: usize) -> &[f32] {
        &self.ent()[e * self.dim..(e + 1) * self.dim]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blm::classics;
    use kg_linalg::SeededRng;

    fn model() -> BlmModel {
        let mut rng = SeededRng::new(77);
        BlmModel::new(classics::simple(), Embeddings::init(11, 3, 16, &mut rng))
    }

    fn image_model(m: &BlmModel) -> ImageBlmModel {
        let bytes = model_image_bytes(m).expect("serialise");
        ImageBlmModel::new(Image::from_bytes(&bytes).expect("container parses"))
            .expect("schema validates")
    }

    #[test]
    fn image_scoring_is_bit_identical_to_the_source_model() {
        let m = model();
        let im = image_model(&m);
        assert_eq!(im.n_entities(), m.n_entities());
        assert_eq!(im.n_relations(), m.n_relations());
        // Embedding bytes survive untouched.
        assert_eq!(im.ent(), m.emb.ent.as_slice());
        assert_eq!(im.rel(), m.emb.rel.as_slice());
        let n = m.n_entities();
        let (mut a, mut b) = (vec![0.0f32; n], vec![0.0f32; n]);
        for (h, r) in [(0, 0), (7, 2), (10, 1)] {
            m.score_tails(h, r, &mut a);
            im.score_tails(h, r, &mut b);
            assert_eq!(a, b, "tails ({h},{r})");
            m.score_heads(r, h, &mut a);
            im.score_heads(r, h, &mut b);
            assert_eq!(a, b, "heads ({r},{h})");
            assert_eq!(m.score_triple(h, r, 3).to_bits(), im.score_triple(h, r, 3).to_bits());
        }
    }

    #[test]
    fn image_batch_paths_match_per_query_bit_for_bit() {
        let m = model();
        let im = image_model(&m);
        crate::batch::test_support::assert_batch_matches_per_query(
            &im,
            &[(0, 0), (5, 2), (10, 1), (3, 0)],
            &[(0, 1), (2, 5), (1, 9)],
        );
    }

    #[test]
    fn quant_view_matches_a_fresh_quantisation() {
        let m = model();
        let im = image_model(&m);
        let fresh = QuantTable::from_rows(m.emb.ent.as_slice(), m.n_entities(), m.emb.dim());
        let (fv, iv) = (fresh.view(), im.quant());
        assert_eq!(iv.codes(), fv.codes());
        assert_eq!(iv.scales(), fv.scales());
        assert_eq!(iv.l1_norms(), fv.l1_norms());
        assert_eq!(iv.all_finite(), fv.all_finite());
        assert!(iv.all_finite(), "xavier-initialised table is finite");
    }

    #[test]
    fn from_image_round_trips_the_model() {
        let m = model();
        let bytes = model_image_bytes(&m).unwrap();
        let img = Image::from_bytes(&bytes).unwrap();
        let back = BlmModel::from_image(&img).expect("round-trip");
        assert_eq!(back.spec, m.spec);
        assert_eq!(back.emb.ent.as_slice(), m.emb.ent.as_slice());
        assert_eq!(back.emb.rel.as_slice(), m.emb.rel.as_slice());
    }

    #[test]
    fn nonfinite_entity_rows_clear_the_certification_flag() {
        let mut m = model();
        m.emb.ent.as_mut_slice()[5] = f32::NAN;
        let im = image_model(&m);
        assert!(!im.quant().all_finite());
    }

    #[test]
    fn schema_violations_are_typed_errors() {
        let m = model();

        // Missing segment: an image with only the meta word.
        let mut w = ImageWriter::new();
        w.seg_u64(SEG_META_U64, &[4, 1, 8, 1]);
        let img = Image::from_bytes(&w.to_bytes()).unwrap();
        assert!(matches!(ImageBlmModel::new(img), Err(ImageError::MissingSegment { .. })));

        // Meta claiming the wrong entity count: shape mismatch → Schema.
        let quant = QuantTable::from_rows(m.emb.ent.as_slice(), m.n_entities(), m.emb.dim());
        let v = quant.view();
        let spec_json = serde_json::to_string(&m.spec).unwrap();
        let mut w = ImageWriter::new();
        w.seg_u64(SEG_META_U64, &[m.n_entities() as u64 + 1, 3, 16, 1])
            .seg_f32(SEG_ENT_F32, m.emb.ent.as_slice())
            .seg_f32(SEG_REL_F32, m.emb.rel.as_slice())
            .seg_i8(SEG_QUANT_I8, v.codes())
            .seg_f32(SEG_QSCALE_F32, v.scales())
            .seg_u32(SEG_QL1_U32, v.l1_norms())
            .seg_bytes(SEG_SPEC_JSON, spec_json.as_bytes());
        let img = Image::from_bytes(&w.to_bytes()).unwrap();
        assert!(matches!(ImageBlmModel::new(img), Err(ImageError::Schema(_))));

        // Undecodable spec JSON → Schema.
        let mut w = ImageWriter::new();
        w.seg_u64(SEG_META_U64, &[m.n_entities() as u64, 3, 16, 1])
            .seg_f32(SEG_ENT_F32, m.emb.ent.as_slice())
            .seg_f32(SEG_REL_F32, m.emb.rel.as_slice())
            .seg_i8(SEG_QUANT_I8, v.codes())
            .seg_f32(SEG_QSCALE_F32, v.scales())
            .seg_u32(SEG_QL1_U32, v.l1_norms())
            .seg_bytes(SEG_SPEC_JSON, b"not json at all");
        let img = Image::from_bytes(&w.to_bytes()).unwrap();
        assert!(matches!(ImageBlmModel::new(img), Err(ImageError::Schema(_))));

        // Dim not a multiple of 4 → Schema.
        let mut w = ImageWriter::new();
        w.seg_u64(SEG_META_U64, &[2, 1, 6, 1]);
        let img = Image::from_bytes(&w.to_bytes()).unwrap();
        assert!(matches!(ImageBlmModel::new(img), Err(ImageError::Schema(_))));
    }

    #[test]
    fn file_round_trip_serves_identically() {
        let m = model();
        let path = std::env::temp_dir().join(format!("kg-models-img-{}.kgi", std::process::id()));
        write_model_image(&m, &path).expect("write");
        let im = ImageBlmModel::open(&path).expect("open");
        im.image().verify().expect("payload intact");
        let n = m.n_entities();
        let (mut a, mut b) = (vec![0.0f32; n], vec![0.0f32; n]);
        m.score_tails(4, 1, &mut a);
        im.score_tails(4, 1, &mut b);
        assert_eq!(a, b);
        std::fs::remove_file(&path).ok();
    }
}

//! Scoring functions for knowledge-graph embedding.
//!
//! The paper's central object is the **unified bilinear representation**
//! (Sec. III-B): embeddings split into four components and the relation
//! matrix `g(r)` is a 4×4 grid of signed diagonal blocks. [`blm`] implements
//! that representation ([`blm::BlockSpec`]) with closed-form scoring and
//! gradients, plus the four human-designed BLMs it unifies (DistMult,
//! ComplEx, Analogy, SimplE — Tab. I / Fig. 1).
//!
//! For the paper's baseline table we also implement:
//! * [`tdm`] — translational-distance models (TransE, TransH, RotatE), each
//!   with self-contained negative-sampling training;
//! * [`nnm`] — the "Gen-Approx" MLP scorer of Fig. 6 / Appendix D;
//! * [`rules`] — a simplified anytime bottom-up rule learner standing in
//!   for AnyBURL (see DESIGN.md §2).
//!
//! Everything rankable implements [`predictor::LinkPredictor`] plus its
//! block-scoring extension [`batch::BatchScorer`] — the interfaces
//! `kg-eval`'s batched ranking engine consumes. Models that factor as
//! `⟨query, entity⟩` answer whole query blocks with one cache-blocked GEMM
//! and expose the factorisation itself through [`factor::FactorScorer`] —
//! the seam the quantised two-stage ranker and the zero-copy model image
//! ([`image_model`]) build on.

// Index loops mirror the paper's subscript notation in numeric kernels.
#![allow(clippy::needless_range_loop)]
pub mod batch;
pub mod blm;
pub mod embeddings;
pub mod factor;
pub mod image_model;
pub mod nnm;
pub mod predictor;
pub mod rules;
pub mod tdm;

pub use batch::{BatchScorer, BatchScratch};
pub use blm::{classics, BlmModel, Block, BlockSpec};
pub use embeddings::Embeddings;
pub use factor::FactorScorer;
pub use image_model::{model_image_bytes, write_model_image, ImageBlmModel};
pub use kg_linalg::KernelPolicy;
pub use predictor::LinkPredictor;

//! The neural-network scoring baseline ("Gen-Approx", Fig. 6 / Appendix D).
//!
//! Two MLPs: `NN1` combines `(h, r)` into a query vector scored against
//! tail embeddings, `NN2` combines `(t, r)` for the head direction — so
//! ranking stays one GEMV per query, as in the appendix ("to ensure quick
//! training and testing"). Both networks share the 128-64-64 shape at
//! `d = 64` (here `[2d, d, d]`) and are trained jointly with the same
//! multi-class loss as the BLMs.
//!
//! The paper's point, which Fig. 6 reproduces: this general approximator is
//! *too* flexible for KGE — with no domain-specific constraint it overfits
//! and loses to the bilinear search space.

use crate::batch::{BatchScorer, BatchScratch};
use crate::embeddings::Embeddings;
use crate::predictor::LinkPredictor;
use kg_core::Triple;
use kg_linalg::{Activation, Adagrad, Mlp, Optimizer, SeededRng};
use serde::{Deserialize, Serialize};

/// Training configuration for [`GenApprox`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NnmConfig {
    /// Embedding dimension `d` (must be a multiple of 4 to share the
    /// [`Embeddings`] type; the MLP itself has no such constraint).
    pub dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adagrad learning rate.
    pub lr: f32,
    /// L2 penalty on embeddings and weights.
    pub l2: f32,
}

impl Default for NnmConfig {
    fn default() -> Self {
        NnmConfig { dim: 32, epochs: 30, lr: 0.1, l2: 1e-4 }
    }
}

/// The Gen-Approx model: entity/relation embeddings + two query networks.
pub struct GenApprox {
    emb: Embeddings,
    nn_tail: Mlp,
    nn_head: Mlp,
    cfg: NnmConfig,
    opt_emb: Adagrad,
    opt_tail: Adagrad,
    opt_head: Adagrad,
}

impl GenApprox {
    /// Initialise model and optimizers.
    pub fn init(
        n_entities: usize,
        n_relations: usize,
        cfg: NnmConfig,
        rng: &mut SeededRng,
    ) -> Self {
        let emb = Embeddings::init(n_entities, n_relations, cfg.dim, rng);
        let sizes = [2 * cfg.dim, cfg.dim, cfg.dim];
        let nn_tail = Mlp::new(&sizes, Activation::Relu, Activation::Identity, rng);
        let nn_head = Mlp::new(&sizes, Activation::Relu, Activation::Identity, rng);
        let opt_emb = Adagrad::new(emb.n_params(), cfg.lr, 1.0);
        let opt_tail = Adagrad::new(nn_tail.param_count(), cfg.lr, 1.0);
        let opt_head = Adagrad::new(nn_head.param_count(), cfg.lr, 1.0);
        GenApprox { emb, nn_tail, nn_head, cfg, opt_emb, opt_tail, opt_head }
    }

    fn concat(a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut v = Vec::with_capacity(a.len() + b.len());
        v.extend_from_slice(a);
        v.extend_from_slice(b);
        v
    }

    /// One full-softmax step in one direction. Returns the cross-entropy.
    ///
    /// `ent_idx` is the conditioning entity (head for tail-prediction),
    /// `target` the entity to rank first.
    fn direction_step(&mut self, tail_dir: bool, ent_idx: usize, r: usize, target: usize) -> f32 {
        let d = self.cfg.dim;
        let n_ent = self.emb.n_entities();
        let x = Self::concat(self.emb.ent.row(ent_idx), self.emb.rel.row(r));
        let net = if tail_dir { &self.nn_tail } else { &self.nn_head };
        let cache = net.forward_cached(&x);
        let v = cache.output().to_vec();
        let mut scores = vec![0.0f32; n_ent];
        self.emb.ent.gemv(&v, &mut scores);
        let _ = kg_linalg::vecops::softmax_inplace(&mut scores);
        let ce = -(scores[target].max(1e-12)).ln();
        // dL/dscores = p - onehot
        scores[target] -= 1.0;
        // dL/dv = entᵀ (p - onehot)
        let mut dv = vec![0.0f32; d];
        self.emb.ent.gemv_t(&scores, &mut dv);
        // dL/dE = (p - onehot) vᵀ  (+ L2 on the target row)
        // applied row-wise through Adagrad below.
        let mut grads = net.zero_grads();
        let dx = net.backward(&cache, &dv, &mut grads);
        // update the network
        let net_opt = if tail_dir { &mut self.opt_tail } else { &mut self.opt_head };
        let net_mut = if tail_dir { &mut self.nn_tail } else { &mut self.nn_head };
        net_mut.apply_grads(&grads, net_opt, self.cfg.l2);
        // update embeddings: conditioning entity + relation from dx, all
        // entities from the softmax outer product.
        let l2 = self.cfg.l2;
        let ent_cols = self.emb.ent.cols();
        {
            // candidate entities: grad row e = scores[e] * v (rank-1)
            let mut grow = vec![0.0f32; d];
            for e in 0..n_ent {
                let p = scores[e];
                if p.abs() < 1e-9 && e != ent_idx {
                    continue;
                }
                for i in 0..d {
                    grow[i] = p * v[i] + l2 * self.emb.ent.get(e, i);
                }
                if e == ent_idx {
                    kg_linalg::vecops::axpy(1.0, &dx[..d], &mut grow);
                }
                let offset = e * ent_cols;
                self.opt_emb.update(offset, self.emb.ent.row_mut(e), &grow);
            }
        }
        {
            let mut grow = vec![0.0f32; d];
            grow.copy_from_slice(&dx[d..]);
            for i in 0..d {
                grow[i] += l2 * self.emb.rel.get(r, i);
            }
            let offset = self.emb.ent.rows() * ent_cols + r * self.emb.rel.cols();
            self.opt_emb.update(offset, self.emb.rel.row_mut(r), &grow);
        }
        ce
    }

    /// Train on `triples`; returns per-epoch mean cross-entropies.
    pub fn train(&mut self, triples: &[Triple], rng: &mut SeededRng) -> Vec<f32> {
        let mut order: Vec<usize> = (0..triples.len()).collect();
        let mut out = Vec::with_capacity(self.cfg.epochs);
        for _ in 0..self.cfg.epochs {
            rng.shuffle(&mut order);
            let mut total = 0.0f32;
            for &i in &order {
                let tr = triples[i];
                total += self.direction_step(true, tr.h.idx(), tr.r.idx(), tr.t.idx());
                total += self.direction_step(false, tr.t.idx(), tr.r.idx(), tr.h.idx());
            }
            out.push(total / (2.0 * triples.len().max(1) as f32));
        }
        out
    }
}

impl LinkPredictor for GenApprox {
    fn n_entities(&self) -> usize {
        self.emb.n_entities()
    }

    fn n_relations(&self) -> Option<usize> {
        Some(self.emb.n_relations())
    }

    /// Symmetrised score: the model is direction-specific by construction
    /// (two networks), so the triple score averages both directions.
    fn score_triple(&self, h: usize, r: usize, t: usize) -> f32 {
        let x1 = Self::concat(self.emb.ent.row(h), self.emb.rel.row(r));
        let v1 = self.nn_tail.forward(&x1);
        let x2 = Self::concat(self.emb.ent.row(t), self.emb.rel.row(r));
        let v2 = self.nn_head.forward(&x2);
        0.5 * (kg_linalg::vecops::dot(&v1, self.emb.ent.row(t))
            + kg_linalg::vecops::dot(&v2, self.emb.ent.row(h)))
    }

    fn score_tails(&self, h: usize, r: usize, out: &mut [f32]) {
        let x = Self::concat(self.emb.ent.row(h), self.emb.rel.row(r));
        let v = self.nn_tail.forward(&x);
        self.emb.ent.gemv(&v, out);
    }

    fn score_heads(&self, r: usize, t: usize, out: &mut [f32]) {
        let x = Self::concat(self.emb.ent.row(t), self.emb.rel.row(r));
        let v = self.nn_head.forward(&x);
        self.emb.ent.gemv(&v, out);
    }
}

impl GenApprox {
    /// Run one query network forward pass per query, filling the row-major
    /// `queries × d` block in `scratch` (shared by the batch and shard
    /// scoring paths).
    fn query_block<'a>(
        &self,
        queries: &[(usize, usize)],
        tail_dir: bool,
        scratch: &'a mut BatchScratch,
    ) -> &'a mut [f32] {
        let d = self.cfg.dim;
        let q = scratch.query_block(queries.len(), d);
        for (row, &(a, b)) in queries.iter().enumerate() {
            // tail direction queries are (h, r); head direction are (r, t)
            let (ent, rel) = if tail_dir { (a, b) } else { (b, a) };
            let x = Self::concat(self.emb.ent.row(ent), self.emb.rel.row(rel));
            let net = if tail_dir { &self.nn_tail } else { &self.nn_head };
            q[row * d..(row + 1) * d].copy_from_slice(&net.forward(&x));
        }
        q
    }
}

impl BatchScorer for GenApprox {
    /// Shard scoring re-runs the query-network forward passes but restricts
    /// the GEMM rows; the dominant cost scales with the shard.
    fn native_shard_scoring(&self) -> bool {
        true
    }

    /// The query networks factor scoring as `⟨NN(e, r), candidate⟩`, so a
    /// block runs one forward pass per query and a single GEMM.
    fn score_tails_batch(
        &self,
        queries: &[(usize, usize)],
        out: &mut [f32],
        scratch: &mut BatchScratch,
    ) {
        let (d, n) = (self.cfg.dim, self.n_entities());
        assert_eq!(out.len(), queries.len() * n, "score_tails_batch: out length mismatch");
        let policy = scratch.policy();
        let q = self.query_block(queries, true, scratch);
        kg_linalg::gemm::gemm_nt_with(policy, q, queries.len(), d, &self.emb.ent, out);
    }

    fn score_heads_batch(
        &self,
        queries: &[(usize, usize)],
        out: &mut [f32],
        scratch: &mut BatchScratch,
    ) {
        let (d, n) = (self.cfg.dim, self.n_entities());
        assert_eq!(out.len(), queries.len() * n, "score_heads_batch: out length mismatch");
        let policy = scratch.policy();
        let q = self.query_block(queries, false, scratch);
        kg_linalg::gemm::gemm_nt_with(policy, q, queries.len(), d, &self.emb.ent, out);
    }

    /// Same forward passes, row-restricted GEMM over the worker's shard.
    fn score_tails_shard(
        &self,
        queries: &[(usize, usize)],
        shard: std::ops::Range<usize>,
        out: &mut [f32],
        scratch: &mut BatchScratch,
    ) {
        let d = self.cfg.dim;
        crate::batch::checked_shard_width(
            &shard,
            self.n_entities(),
            queries.len(),
            out.len(),
            "score_tails_shard",
        );
        let policy = scratch.policy();
        let q = self.query_block(queries, true, scratch);
        kg_linalg::gemm::gemm_nt_rows_with(policy, q, queries.len(), d, &self.emb.ent, shard, out);
    }

    fn score_heads_shard(
        &self,
        queries: &[(usize, usize)],
        shard: std::ops::Range<usize>,
        out: &mut [f32],
        scratch: &mut BatchScratch,
    ) {
        let d = self.cfg.dim;
        crate::batch::checked_shard_width(
            &shard,
            self.n_entities(),
            queries.len(),
            out.len(),
            "score_heads_shard",
        );
        let policy = scratch.policy();
        let q = self.query_block(queries, false, scratch);
        kg_linalg::gemm::gemm_nt_rows_with(policy, q, queries.len(), d, &self.emb.ent, shard, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_triples() -> Vec<Triple> {
        // a small deterministic pattern: i → i+1 mod 10
        (0..10).map(|i| Triple::new(i, 0, (i + 1) % 10)).collect()
    }

    #[test]
    fn training_reduces_cross_entropy() {
        let mut rng = SeededRng::new(71);
        let cfg = NnmConfig { dim: 16, epochs: 25, lr: 0.1, l2: 1e-5 };
        let mut m = GenApprox::init(10, 1, cfg, &mut rng);
        let losses = m.train(&toy_triples(), &mut rng);
        assert!(
            losses.last().unwrap() < &losses[0],
            "CE did not decrease: {} -> {}",
            losses[0],
            losses.last().unwrap()
        );
    }

    #[test]
    fn memorises_small_pattern() {
        let mut rng = SeededRng::new(72);
        let cfg = NnmConfig { dim: 16, epochs: 60, lr: 0.2, l2: 0.0 };
        let mut m = GenApprox::init(10, 1, cfg, &mut rng);
        m.train(&toy_triples(), &mut rng);
        // true tail should be at or near the top
        let mut scores = vec![0.0f32; 10];
        m.score_tails(3, 0, &mut scores);
        let true_score = scores[4];
        let better = scores.iter().filter(|&&s| s > true_score).count();
        assert!(better <= 2, "true tail ranked {}", better + 1);
    }

    #[test]
    fn batched_and_sharded_scores_match_per_query_bit_for_bit() {
        use crate::batch::test_support::assert_batch_matches_per_query;
        let mut rng = SeededRng::new(74);
        let m = GenApprox::init(11, 2, NnmConfig { dim: 8, ..Default::default() }, &mut rng);
        assert_batch_matches_per_query(&m, &[(0, 0), (5, 1), (10, 0), (3, 1)], &[(0, 1), (1, 10)]);
    }

    #[test]
    fn ranking_buffers_fit() {
        let mut rng = SeededRng::new(73);
        let m = GenApprox::init(7, 2, NnmConfig { dim: 8, ..Default::default() }, &mut rng);
        let mut out = vec![0.0f32; 7];
        m.score_tails(0, 1, &mut out);
        m.score_heads(1, 6, &mut out);
        let s = m.score_triple(0, 0, 1);
        assert!(s.is_finite());
    }
}

//! The interface every rankable model exposes to evaluation.
//!
//! [`LinkPredictor`] is object-safe, and the pointer impls below forward it
//! through `&T`, [`Box<T>`] and [`std::sync::Arc<T>`] (including unsized
//! `T = dyn LinkPredictor + …`), so a shared `Arc<dyn …>` model can be
//! handed to every generic consumer — offline evaluation, training, search
//! and the `kg-serve` worker crew — without re-wrapping.

/// A trained model that can score triples and rank entities — the contract
/// consumed by `kg-eval`'s filtered ranking and triplet classification.
pub trait LinkPredictor {
    /// Number of entities the model ranks over.
    fn n_entities(&self) -> usize;

    /// Number of relations the model can score, when it has a relation
    /// vocabulary of its own — `None` when the model genuinely cannot tell
    /// (a learned scorer always can; ad-hoc test scorers often cannot).
    ///
    /// Consumers use this to validate relation ids *before* dispatching a
    /// query: `kg-serve` rejects an out-of-range id at submit time, on the
    /// caller's thread, instead of letting it panic a worker. Every shipped
    /// model overrides this; the default exists so minimal
    /// [`LinkPredictor`] impls (oracles, constant scorers) stay one-method
    /// simple.
    fn n_relations(&self) -> Option<usize> {
        None
    }

    /// Plausibility score of one triple (higher = more plausible).
    fn score_triple(&self, h: usize, r: usize, t: usize) -> f32;

    /// Scores of `(h, r, e)` for every entity `e`; `out.len()` must equal
    /// [`LinkPredictor::n_entities`].
    fn score_tails(&self, h: usize, r: usize, out: &mut [f32]);

    /// Scores of `(e, r, t)` for every entity `e`.
    fn score_heads(&self, r: usize, t: usize, out: &mut [f32]);
}

/// Forward [`LinkPredictor`] through a pointer type so trait objects
/// (`&dyn`, `Box<dyn>`, `Arc<dyn>`) satisfy the same generic bounds as
/// concrete models.
macro_rules! forward_link_predictor {
    ($ptr:ty) => {
        impl<T: LinkPredictor + ?Sized> LinkPredictor for $ptr {
            fn n_entities(&self) -> usize {
                (**self).n_entities()
            }
            fn n_relations(&self) -> Option<usize> {
                (**self).n_relations()
            }
            fn score_triple(&self, h: usize, r: usize, t: usize) -> f32 {
                (**self).score_triple(h, r, t)
            }
            fn score_tails(&self, h: usize, r: usize, out: &mut [f32]) {
                (**self).score_tails(h, r, out)
            }
            fn score_heads(&self, r: usize, t: usize, out: &mut [f32]) {
                (**self).score_heads(r, t, out)
            }
        }
    };
}

forward_link_predictor!(&T);
forward_link_predictor!(Box<T>);
forward_link_predictor!(std::sync::Arc<T>);

#[cfg(test)]
pub(crate) mod test_support {
    use super::LinkPredictor;

    /// Check the two ranking paths agree with the triple scorer — shared by
    /// every model's test module.
    pub fn assert_consistent_scoring(m: &dyn LinkPredictor, h: usize, r: usize, t: usize) {
        let n = m.n_entities();
        let mut tails = vec![0.0f32; n];
        let mut heads = vec![0.0f32; n];
        m.score_tails(h, r, &mut tails);
        m.score_heads(r, t, &mut heads);
        let direct = m.score_triple(h, r, t);
        assert!((tails[t] - direct).abs() < 1e-3, "tail path {} vs direct {}", tails[t], direct);
        assert!((heads[h] - direct).abs() < 1e-3, "head path {} vs direct {}", heads[h], direct);
    }
}

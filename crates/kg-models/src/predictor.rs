//! The interface every rankable model exposes to evaluation.

/// A trained model that can score triples and rank entities — the contract
/// consumed by `kg-eval`'s filtered ranking and triplet classification.
pub trait LinkPredictor {
    /// Number of entities the model ranks over.
    fn n_entities(&self) -> usize;

    /// Plausibility score of one triple (higher = more plausible).
    fn score_triple(&self, h: usize, r: usize, t: usize) -> f32;

    /// Scores of `(h, r, e)` for every entity `e`; `out.len()` must equal
    /// [`LinkPredictor::n_entities`].
    fn score_tails(&self, h: usize, r: usize, out: &mut [f32]);

    /// Scores of `(e, r, t)` for every entity `e`.
    fn score_heads(&self, r: usize, t: usize, out: &mut [f32]);
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::LinkPredictor;

    /// Check the two ranking paths agree with the triple scorer — shared by
    /// every model's test module.
    pub fn assert_consistent_scoring(m: &dyn LinkPredictor, h: usize, r: usize, t: usize) {
        let n = m.n_entities();
        let mut tails = vec![0.0f32; n];
        let mut heads = vec![0.0f32; n];
        m.score_tails(h, r, &mut tails);
        m.score_heads(r, t, &mut heads);
        let direct = m.score_triple(h, r, t);
        assert!((tails[t] - direct).abs() < 1e-3, "tail path {} vs direct {}", tails[t], direct);
        assert!((heads[h] - direct).abs() < 1e-3, "head path {} vs direct {}", heads[h], direct);
    }
}

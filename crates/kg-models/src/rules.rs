//! A simplified anytime bottom-up rule learner, standing in for AnyBURL
//! (Meilicke et al. 2019 — the rule-based row of Tab. IV).
//!
//! We mine the three Horn-rule shapes that explain most of AnyBURL's
//! benchmark performance:
//!
//! * equivalence  `r(X, Y) ← r₂(X, Y)`
//! * inversion    `r(X, Y) ← r₂(Y, X)`
//! * composition  `r(X, Y) ← r₁(X, Z) ∧ r₂(Z, Y)`
//!
//! each scored by its Laplace-smoothed confidence
//! `support / (body_count + pc)`. Prediction aggregates by maximum rule
//! confidence (AnyBURL's max-aggregation). The full AnyBURL system also
//! samples longer paths and constant-bound rules under an anytime budget;
//! DESIGN.md records this simplification.

use crate::batch::BatchScorer;
use crate::predictor::LinkPredictor;
use kg_core::fxhash::FxHashSet;
use kg_core::{EntityId, FilterIndex, RelationId, Triple};
use serde::{Deserialize, Serialize};

/// The body shape of a mined rule for head relation `r`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RuleBody {
    /// `r(X,Y) ← other(X,Y)`
    Equivalence(RelationId),
    /// `r(X,Y) ← other(Y,X)`
    Inversion(RelationId),
    /// `r(X,Y) ← first(X,Z) ∧ second(Z,Y)`
    Composition(RelationId, RelationId),
}

/// A mined rule with its confidence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// Head relation the rule predicts.
    pub head: RelationId,
    /// Body shape.
    pub body: RuleBody,
    /// Laplace-smoothed confidence in (0, 1].
    pub confidence: f32,
    /// Number of body groundings that are known positives.
    pub support: usize,
}

/// Mining hyper-parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RuleConfig {
    /// Minimum support to keep a rule.
    pub min_support: usize,
    /// Minimum confidence to keep a rule.
    pub min_confidence: f32,
    /// Laplace pseudo-count in the confidence denominator.
    pub pseudo_count: f32,
}

impl Default for RuleConfig {
    fn default() -> Self {
        RuleConfig { min_support: 3, min_confidence: 0.1, pseudo_count: 5.0 }
    }
}

/// A trained rule model: the mined rules plus the training-graph index used
/// to ground them at prediction time.
pub struct RuleModel {
    rules_by_head: Vec<Vec<Rule>>,
    index: FilterIndex,
    n_entities: usize,
}

impl RuleModel {
    /// Mine rules from the training triples.
    pub fn learn(
        triples: &[Triple],
        n_entities: usize,
        n_relations: usize,
        cfg: RuleConfig,
    ) -> Self {
        let index = FilterIndex::build(triples);
        // per-relation pair sets
        let mut pairs: Vec<Vec<(EntityId, EntityId)>> = vec![Vec::new(); n_relations];
        for t in triples {
            pairs[t.r.idx()].push((t.h, t.t));
        }
        let pair_sets: Vec<FxHashSet<(EntityId, EntityId)>> =
            pairs.iter().map(|ps| ps.iter().copied().collect()).collect();

        let mut rules_by_head: Vec<Vec<Rule>> = vec![Vec::new(); n_relations];
        let conf = |support: usize, body: usize| support as f32 / (body as f32 + cfg.pseudo_count);

        // Equivalence and inversion: one pass per (body, head) pair.
        for body_rel in 0..n_relations {
            let body_pairs = &pairs[body_rel];
            if body_pairs.is_empty() {
                continue;
            }
            let mut eq_support = vec![0usize; n_relations];
            let mut inv_support = vec![0usize; n_relations];
            for &(x, y) in body_pairs {
                for head in 0..n_relations {
                    if head != body_rel && pair_sets[head].contains(&(x, y)) {
                        eq_support[head] += 1;
                    }
                    if head != body_rel && pair_sets[head].contains(&(y, x)) {
                        inv_support[head] += 1;
                    }
                }
            }
            for head in 0..n_relations {
                let body_n = body_pairs.len();
                for (support, mk) in [
                    (eq_support[head], RuleBody::Equivalence(RelationId(body_rel as u32))),
                    (inv_support[head], RuleBody::Inversion(RelationId(body_rel as u32))),
                ] {
                    let c = conf(support, body_n);
                    if support >= cfg.min_support && c >= cfg.min_confidence {
                        rules_by_head[head].push(Rule {
                            head: RelationId(head as u32),
                            body: mk,
                            confidence: c,
                            support,
                        });
                    }
                }
            }
        }

        // Composition: ground r1 ∘ r2 joins and count which heads they hit.
        for r1 in 0..n_relations {
            if pairs[r1].is_empty() {
                continue;
            }
            for r2 in 0..n_relations {
                if pairs[r2].is_empty() {
                    continue;
                }
                let mut body_count = 0usize;
                let mut support = vec![0usize; n_relations];
                let mut seen: FxHashSet<(EntityId, EntityId)> = FxHashSet::default();
                for &(x, z) in &pairs[r1] {
                    for &y in index.tails(z, RelationId(r2 as u32)) {
                        if x == y || !seen.insert((x, y)) {
                            continue;
                        }
                        body_count += 1;
                        for head in 0..n_relations {
                            if pair_sets[head].contains(&(x, y)) {
                                support[head] += 1;
                            }
                        }
                    }
                }
                if body_count == 0 {
                    continue;
                }
                for head in 0..n_relations {
                    // skip trivial self-explanations
                    if head == r1 && head == r2 {
                        continue;
                    }
                    let c = conf(support[head], body_count);
                    if support[head] >= cfg.min_support && c >= cfg.min_confidence {
                        rules_by_head[head].push(Rule {
                            head: RelationId(head as u32),
                            body: RuleBody::Composition(
                                RelationId(r1 as u32),
                                RelationId(r2 as u32),
                            ),
                            confidence: c,
                            support: support[head],
                        });
                    }
                }
            }
        }

        for rules in &mut rules_by_head {
            rules.sort_by(|a, b| b.confidence.total_cmp(&a.confidence));
        }
        RuleModel { rules_by_head, index, n_entities }
    }

    /// All rules mined for head relation `r`, best first.
    pub fn rules_for(&self, r: RelationId) -> &[Rule] {
        &self.rules_by_head[r.idx()]
    }

    /// Total number of rules.
    pub fn n_rules(&self) -> usize {
        self.rules_by_head.iter().map(Vec::len).sum()
    }

    /// Max-aggregate candidate tails of `(h, r, ?)` into `out` (adding each
    /// candidate's best rule confidence).
    fn apply_tail_rules(&self, h: EntityId, r: RelationId, out: &mut [f32]) {
        for rule in &self.rules_by_head[r.idx()] {
            match rule.body {
                RuleBody::Equivalence(b) => {
                    for &y in self.index.tails(h, b) {
                        out[y.idx()] = out[y.idx()].max(rule.confidence);
                    }
                }
                RuleBody::Inversion(b) => {
                    for &y in self.index.heads(b, h) {
                        out[y.idx()] = out[y.idx()].max(rule.confidence);
                    }
                }
                RuleBody::Composition(b1, b2) => {
                    for &z in self.index.tails(h, b1) {
                        for &y in self.index.tails(z, b2) {
                            out[y.idx()] = out[y.idx()].max(rule.confidence);
                        }
                    }
                }
            }
        }
    }

    /// Max-aggregate candidate heads of `(?, r, t)`.
    fn apply_head_rules(&self, r: RelationId, t: EntityId, out: &mut [f32]) {
        for rule in &self.rules_by_head[r.idx()] {
            match rule.body {
                RuleBody::Equivalence(b) => {
                    for &x in self.index.heads(b, t) {
                        out[x.idx()] = out[x.idx()].max(rule.confidence);
                    }
                }
                RuleBody::Inversion(b) => {
                    for &x in self.index.tails(t, b) {
                        out[x.idx()] = out[x.idx()].max(rule.confidence);
                    }
                }
                RuleBody::Composition(b1, b2) => {
                    for &z in self.index.heads(b2, t) {
                        for &x in self.index.heads(b1, z) {
                            out[x.idx()] = out[x.idx()].max(rule.confidence);
                        }
                    }
                }
            }
        }
    }
}

impl LinkPredictor for RuleModel {
    fn n_entities(&self) -> usize {
        self.n_entities
    }

    fn n_relations(&self) -> Option<usize> {
        Some(self.rules_by_head.len())
    }

    fn score_triple(&self, h: usize, r: usize, t: usize) -> f32 {
        let mut out = vec![0.0f32; self.n_entities];
        self.apply_tail_rules(EntityId(h as u32), RelationId(r as u32), &mut out);
        out[t]
    }

    fn score_tails(&self, h: usize, r: usize, out: &mut [f32]) {
        kg_linalg::vecops::zero(out);
        self.apply_tail_rules(EntityId(h as u32), RelationId(r as u32), out);
    }

    fn score_heads(&self, r: usize, t: usize, out: &mut [f32]) {
        kg_linalg::vecops::zero(out);
        self.apply_head_rules(RelationId(r as u32), EntityId(t as u32), out);
    }
}

// Rule scores come from index lookups, not dot products — default loop.
impl BatchScorer for RuleModel {}

/// Helper: lookup a rule by body shape.
pub fn find_rule(rules: &[Rule], body: RuleBody) -> Option<&Rule> {
    rules.iter().find(|r| r.body == body)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// r0: i -> i+50; r1 mirrors r0.
    fn inverse_data() -> Vec<Triple> {
        let mut ts = Vec::new();
        for i in 0..20u32 {
            ts.push(Triple::new(i, 0, i + 50));
            ts.push(Triple::new(i + 50, 1, i));
        }
        ts
    }

    #[test]
    fn mines_inversion_rule() {
        let m = RuleModel::learn(&inverse_data(), 80, 2, RuleConfig::default());
        let r = find_rule(m.rules_for(RelationId(0)), RuleBody::Inversion(RelationId(1)))
            .expect("inversion rule for r0 ← r1 reversed");
        assert!(r.confidence > 0.7, "confidence {}", r.confidence);
        assert_eq!(r.support, 20);
    }

    #[test]
    fn inversion_rule_predicts_held_out_tail() {
        // train on everything except (19, r0, 69); its mirror IS in train.
        let mut train = inverse_data();
        train.retain(|t| *t != Triple::new(19, 0, 69));
        let m = RuleModel::learn(&train, 80, 2, RuleConfig::default());
        let mut scores = vec![0.0f32; 80];
        m.score_tails(19, 0, &mut scores);
        let best =
            scores.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i).unwrap();
        assert_eq!(best, 69, "rule should recover the mirrored edge");
    }

    #[test]
    fn mines_composition_rule() {
        // r0: a→b (i → i+30), r1: b→c (i+30 → i+60), r2 = r0∘r1 direct edges
        let mut ts = Vec::new();
        for i in 0..15u32 {
            ts.push(Triple::new(i, 0, i + 30));
            ts.push(Triple::new(i + 30, 1, i + 60));
            ts.push(Triple::new(i, 2, i + 60));
        }
        let m = RuleModel::learn(&ts, 90, 3, RuleConfig::default());
        let r = find_rule(
            m.rules_for(RelationId(2)),
            RuleBody::Composition(RelationId(0), RelationId(1)),
        )
        .expect("composition rule");
        assert!(r.confidence > 0.6);
    }

    #[test]
    fn head_scoring_mirrors_tail_scoring() {
        let m = RuleModel::learn(&inverse_data(), 80, 2, RuleConfig::default());
        let mut heads = vec![0.0f32; 80];
        m.score_heads(0, 55, &mut heads);
        // (5, r0, 55) should be recoverable from (55, r1, 5)
        assert!(heads[5] > 0.5, "head score {}", heads[5]);
    }

    #[test]
    fn no_rules_for_random_noise() {
        let mut rng = kg_linalg::SeededRng::new(9);
        let ts: Vec<Triple> =
            (0..60).map(|_| Triple::new(rng.below(40) as u32, 0, rng.below(40) as u32)).collect();
        let m = RuleModel::learn(&ts, 40, 1, RuleConfig::default());
        // a single random relation admits no (non-trivial) high-confidence rules
        for r in m.rules_for(RelationId(0)) {
            assert!(r.confidence < 0.5, "suspiciously confident rule {:?} on noise", r);
        }
    }

    #[test]
    fn score_triple_uses_rules() {
        let m = RuleModel::learn(&inverse_data(), 80, 2, RuleConfig::default());
        assert!(m.score_triple(3, 0, 53) > 0.5);
        assert!(m.score_triple(3, 0, 54) < 0.5);
    }
}

//! Translational-distance models (Sec. II-A): TransE, TransH, RotatE.
//!
//! TDMs interpret a relation as a translation (or rotation) in embedding
//! space and score by negative distance. They are provably less expressive
//! than BLMs (Wang et al. 2017, cited as \[41\]) and serve as the baseline
//! family in Tab. IV. Each model is self-contained: its own parameters,
//! margin-based negative-sampling training (the loss family these models
//! were published with) and a [`crate::LinkPredictor`] implementation.
//! None of them factor as `⟨q, e⟩`, so they cannot reuse the BLM trainer.

pub mod rotate;
pub mod transe;
pub mod transh;

pub use rotate::RotatE;
pub use transe::TransE;
pub use transh::TransH;

use kg_core::Triple;
use kg_linalg::SeededRng;
use serde::{Deserialize, Serialize};

// Distance scores don't factor as `⟨query, entity⟩`, so no TDM gets a GEMM
// shortcut — but every TDM scores shards natively: each score depends only
// on its own entity row, so a distance-restricted loop over shard rows does
// work proportional to the shard width. TransE/TransH implement theirs in
// their own modules; RotatE's paired-lane `(re, im)` shard kernel lives in
// `rotate.rs`.

/// Shared training configuration for the TDM family.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TdmConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// Ranking margin γ.
    pub margin: f32,
    /// Negative samples per positive.
    pub n_negatives: usize,
}

impl Default for TdmConfig {
    fn default() -> Self {
        TdmConfig { dim: 32, epochs: 50, lr: 0.05, margin: 2.0, n_negatives: 4 }
    }
}

/// Corrupt one side of a triple uniformly (the classic negative sampler of
/// Alg. 1 step 5): returns the corrupted triple.
pub(crate) fn corrupt(t: Triple, n_entities: usize, rng: &mut SeededRng) -> Triple {
    let e = rng.below(n_entities) as u32;
    if rng.coin() {
        Triple::new(e, t.r.0, t.t.0)
    } else {
        Triple::new(t.h.0, t.r.0, e)
    }
}

/// L2-normalise every row of a matrix in place (TransE's per-epoch entity
/// normalisation).
pub(crate) fn normalise_rows(m: &mut kg_linalg::Mat) {
    for r in 0..m.rows() {
        let row = m.row_mut(r);
        let n = kg_linalg::vecops::norm2(row);
        if n > 1e-9 {
            kg_linalg::vecops::scale(1.0 / n, row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corrupt_changes_exactly_one_side() {
        let mut rng = SeededRng::new(1);
        let pos = Triple::new(3, 1, 7);
        for _ in 0..50 {
            let neg = corrupt(pos, 20, &mut rng);
            assert_eq!(neg.r, pos.r);
            assert!(neg.h == pos.h || neg.t == pos.t, "both sides corrupted");
        }
    }

    /// The TDM family rides the default per-row batch loop with native
    /// shard overrides (TransE/TransH distance-restricted loops, RotatE's
    /// paired-lane kernel) — check each model reproduces the per-query
    /// rows (and their shard columns) bit for bit.
    #[test]
    fn default_batch_and_shard_paths_match_per_query() {
        use crate::batch::test_support::assert_batch_matches_per_query;
        let mut rng = SeededRng::new(31);
        let cfg = TdmConfig { dim: 8, ..Default::default() };
        let tails = [(0, 0), (5, 1), (9, 0)];
        let heads = [(1, 3), (0, 9)];
        let transe = TransE::init(10, 2, cfg, &mut rng);
        assert_batch_matches_per_query(&transe, &tails, &heads);
        let transh = TransH::init(10, 2, cfg, &mut rng);
        assert_batch_matches_per_query(&transh, &tails, &heads);
        let rotate = RotatE::init(10, 2, cfg, &mut rng);
        assert_batch_matches_per_query(&rotate, &tails, &heads);
    }

    #[test]
    fn normalise_rows_unit_norm() {
        let mut m = kg_linalg::Mat::from_vec(2, 2, vec![3.0, 4.0, 0.0, 2.0]);
        normalise_rows(&mut m);
        assert!((kg_linalg::vecops::norm2(m.row(0)) - 1.0).abs() < 1e-6);
        assert!((kg_linalg::vecops::norm2(m.row(1)) - 1.0).abs() < 1e-6);
    }
}

//! RotatE (Sun et al. 2019): relations as rotations in complex space,
//! `f(h, r, t) = -‖h ∘ r - t‖₂` with `|r_i| = 1` (each relation coordinate is
//! a unit complex number `e^{iθ}` parameterised by its phase).
//!
//! Rotations compose and invert, so RotatE models symmetric (θ = π),
//! anti-symmetric, inverse and compositional relations — the strongest TDM
//! in Tab. IV.

use super::{corrupt, TdmConfig};
use crate::batch::{checked_shard_width, BatchScorer, BatchScratch};
use crate::predictor::LinkPredictor;
use kg_core::Triple;
use kg_linalg::{Mat, SeededRng};

/// RotatE model: complex entity embeddings (`dim/2` complex coordinates
/// stored `[re..., im...]`) and per-relation phase vectors.
#[derive(Debug, Clone)]
pub struct RotatE {
    /// `n_entities × dim` (first half real parts, second half imaginary).
    ent: Mat,
    /// `n_relations × dim/2` phases θ.
    phase: Mat,
    cfg: TdmConfig,
}

impl RotatE {
    /// Initialise; `cfg.dim` must be even.
    pub fn init(
        n_entities: usize,
        n_relations: usize,
        cfg: TdmConfig,
        rng: &mut SeededRng,
    ) -> Self {
        assert!(cfg.dim.is_multiple_of(2), "RotatE needs an even dimension");
        let mut ent = Mat::zeros(n_entities, cfg.dim);
        rng.xavier_uniform(cfg.dim, ent.as_mut_slice());
        let mut phase = Mat::zeros(n_relations, cfg.dim / 2);
        for v in phase.as_mut_slice() {
            *v = rng.uniform_range(-std::f64::consts::PI, std::f64::consts::PI) as f32;
        }
        RotatE { ent, phase, cfg }
    }

    /// Residual `h ∘ r - t` into `(re, im)` halves of `out`.
    fn residual(&self, h: usize, r: usize, t: usize, out: &mut [f32]) {
        let half = self.cfg.dim / 2;
        let hv = self.ent.row(h);
        let tv = self.ent.row(t);
        let ph = self.phase.row(r);
        for i in 0..half {
            let (c, s) = (ph[i].cos(), ph[i].sin());
            let (hre, him) = (hv[i], hv[half + i]);
            out[i] = hre * c - him * s - tv[i];
            out[half + i] = hre * s + him * c - tv[half + i];
        }
    }

    fn distance(&self, h: usize, r: usize, t: usize) -> f32 {
        let mut res = vec![0.0f32; self.cfg.dim];
        self.residual(h, r, t, &mut res);
        kg_linalg::vecops::norm2(&res)
    }

    /// Gradient step on one triple; `dir` is +1 for positives (minimise
    /// distance) and -1 for negatives.
    fn grad_step(&mut self, tr: Triple, dir: f32) {
        let half = self.cfg.dim / 2;
        let (hi, ri, ti) = (tr.h.idx(), tr.r.idx(), tr.t.idx());
        let mut res = vec![0.0f32; self.cfg.dim];
        self.residual(hi, ri, ti, &mut res);
        let d = kg_linalg::vecops::norm2(&res).max(1e-6);
        let scale = dir * self.cfg.lr / d; // d‖res‖/dres = res / ‖res‖
        for i in 0..half {
            let ph = self.phase.get(ri, i);
            let (c, s) = (ph.cos(), ph.sin());
            let (hre, him) = (self.ent.get(hi, i), self.ent.get(hi, half + i));
            let (gre, gim) = (res[i], res[half + i]);
            // dres_re/dh_re = cos, dres_re/dh_im = -sin, dres_im/dh_re = sin, dres_im/dh_im = cos
            let dh_re = gre * c + gim * s;
            let dh_im = -gre * s + gim * c;
            self.ent.set(hi, i, hre - scale * dh_re);
            self.ent.set(hi, half + i, him - scale * dh_im);
            // dres/dt = -I
            self.ent.set(ti, i, self.ent.get(ti, i) + scale * gre);
            self.ent.set(ti, half + i, self.ent.get(ti, half + i) + scale * gim);
            // dres_re/dθ = -h_re sin - h_im cos ; dres_im/dθ = h_re cos - h_im sin
            let dtheta = gre * (-hre * s - him * c) + gim * (hre * c - him * s);
            self.phase.set(ri, i, ph - scale * dtheta);
        }
    }

    /// Train with the margin loss `max(0, γ + d(pos) - d(neg))`; returns
    /// per-epoch mean hinge losses.
    pub fn train(&mut self, triples: &[Triple], rng: &mut SeededRng) -> Vec<f32> {
        let mut order: Vec<usize> = (0..triples.len()).collect();
        let mut losses = Vec::with_capacity(self.cfg.epochs);
        for _ in 0..self.cfg.epochs {
            rng.shuffle(&mut order);
            let mut total = 0.0f32;
            let mut count = 0usize;
            for &i in &order {
                let pos = triples[i];
                for _ in 0..self.cfg.n_negatives {
                    let neg = corrupt(pos, self.ent.rows(), rng);
                    let loss = self.cfg.margin
                        + self.distance(pos.h.idx(), pos.r.idx(), pos.t.idx())
                        - self.distance(neg.h.idx(), neg.r.idx(), neg.t.idx());
                    if loss > 0.0 {
                        self.grad_step(pos, 1.0);
                        self.grad_step(neg, -1.0);
                        total += loss;
                    }
                    count += 1;
                }
            }
            losses.push(if count > 0 { total / count as f32 } else { 0.0 });
        }
        losses
    }
}

impl LinkPredictor for RotatE {
    fn n_entities(&self) -> usize {
        self.ent.rows()
    }

    fn n_relations(&self) -> Option<usize> {
        Some(self.phase.rows())
    }

    fn score_triple(&self, h: usize, r: usize, t: usize) -> f32 {
        -self.distance(h, r, t)
    }

    fn score_tails(&self, h: usize, r: usize, out: &mut [f32]) {
        for (e, o) in out.iter_mut().enumerate() {
            *o = -self.distance(h, r, e);
        }
    }

    fn score_heads(&self, r: usize, t: usize, out: &mut [f32]) {
        for (e, o) in out.iter_mut().enumerate() {
            *o = -self.distance(e, r, t);
        }
    }
}

/// The rotation doesn't factor as `⟨query, entity⟩`, so batch scoring rides
/// the default per-row loop — but shards *are* native, via paired `(re, im)`
/// lanes. Tail queries rotate the head **once** per query (`h ∘ r` is
/// entity-independent) and then stream only the shard's tail rows through
/// the residual-subtract-and-norm loop; head queries hoist the per-phase
/// `cos`/`sin` pair and rotate each shard entity in paired lanes. Both
/// restrict work to the shard width while performing, per entity, exactly
/// the floating-point operations of the private `RotatE::distance` in the
/// same order
/// (`cos`/`sin` are deterministic, so hoisting them re-uses the identical
/// values), so shard columns are bit-identical to the full-table rows.
impl BatchScorer for RotatE {
    fn native_shard_scoring(&self) -> bool {
        true
    }

    fn score_tails_shard(
        &self,
        queries: &[(usize, usize)],
        shard: std::ops::Range<usize>,
        out: &mut [f32],
        scratch: &mut BatchScratch,
    ) {
        let _ = scratch;
        let width = checked_shard_width(
            &shard,
            self.n_entities(),
            queries.len(),
            out.len(),
            "score_tails_shard",
        );
        let half = self.cfg.dim / 2;
        let mut rot = vec![0.0f32; self.cfg.dim];
        let mut res = vec![0.0f32; self.cfg.dim];
        for (i, &(h, r)) in queries.iter().enumerate() {
            // Rotate the head once per query: rot = h ∘ r.
            let hv = self.ent.row(h);
            let ph = self.phase.row(r);
            for j in 0..half {
                let (c, s) = (ph[j].cos(), ph[j].sin());
                let (hre, him) = (hv[j], hv[half + j]);
                rot[j] = hre * c - him * s;
                rot[half + j] = hre * s + him * c;
            }
            let out_row = &mut out[i * width..(i + 1) * width];
            for (o, e) in out_row.iter_mut().zip(shard.clone()) {
                let tv = self.ent.row(e);
                // `(hre·c − him·s) − tv[j]`: the same op order as
                // `residual`, with the rotation reused across the shard.
                for j in 0..self.cfg.dim {
                    res[j] = rot[j] - tv[j];
                }
                *o = -kg_linalg::vecops::norm2(&res);
            }
        }
    }

    fn score_heads_shard(
        &self,
        queries: &[(usize, usize)],
        shard: std::ops::Range<usize>,
        out: &mut [f32],
        scratch: &mut BatchScratch,
    ) {
        let _ = scratch;
        let width = checked_shard_width(
            &shard,
            self.n_entities(),
            queries.len(),
            out.len(),
            "score_heads_shard",
        );
        let half = self.cfg.dim / 2;
        let mut cos = vec![0.0f32; half];
        let mut sin = vec![0.0f32; half];
        let mut res = vec![0.0f32; self.cfg.dim];
        for (i, &(r, t)) in queries.iter().enumerate() {
            // The head varies per entity, so hoist only the phase pair.
            let ph = self.phase.row(r);
            for j in 0..half {
                cos[j] = ph[j].cos();
                sin[j] = ph[j].sin();
            }
            let tv = self.ent.row(t);
            let out_row = &mut out[i * width..(i + 1) * width];
            for (o, e) in out_row.iter_mut().zip(shard.clone()) {
                let ev = self.ent.row(e);
                for j in 0..half {
                    let (hre, him) = (ev[j], ev[half + j]);
                    res[j] = hre * cos[j] - him * sin[j] - tv[j];
                    res[half + j] = hre * sin[j] + him * cos[j] - tv[half + j];
                }
                *o = -kg_linalg::vecops::norm2(&res);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::test_support::assert_consistent_scoring;

    #[test]
    fn rotation_preserves_norm() {
        let mut rng = SeededRng::new(55);
        let m = RotatE::init(4, 1, TdmConfig { dim: 8, ..TdmConfig::default() }, &mut rng);
        // ‖h ∘ r‖ = ‖h‖ since |r_i| = 1 ⇒ residual to t=0-vector has norm ‖h‖
        let mut res = vec![0.0f32; 8];
        let mut zeroed = m.clone();
        for i in 0..8 {
            zeroed.ent.set(1, i, 0.0);
        }
        zeroed.residual(0, 0, 1, &mut res);
        let rotated_norm = kg_linalg::vecops::norm2(&res);
        let h_norm = kg_linalg::vecops::norm2(m.ent.row(0));
        assert!((rotated_norm - h_norm).abs() < 1e-4);
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = SeededRng::new(56);
        // a symmetric relation: pairs in both directions — RotatE can model
        // it with θ = π
        let mut triples = Vec::new();
        for i in 0..12u32 {
            triples.push(Triple::new(2 * i, 0, 2 * i + 1));
            triples.push(Triple::new(2 * i + 1, 0, 2 * i));
        }
        let cfg = TdmConfig { dim: 16, epochs: 40, lr: 0.05, margin: 3.0, n_negatives: 2 };
        let mut m = RotatE::init(24, 1, cfg, &mut rng);
        let losses = m.train(&triples, &mut rng);
        let early: f32 = losses[..5].iter().sum::<f32>() / 5.0;
        let late: f32 = losses[losses.len() - 5..].iter().sum::<f32>() / 5.0;
        assert!(late < early, "loss did not decrease: {early} -> {late}");
    }

    #[test]
    fn scoring_paths_consistent() {
        let mut rng = SeededRng::new(57);
        let m = RotatE::init(9, 2, TdmConfig { dim: 8, ..TdmConfig::default() }, &mut rng);
        assert_consistent_scoring(&m, 2, 0, 5);
        assert_consistent_scoring(&m, 8, 1, 1);
    }

    /// The paired-lane shard kernel must be bit-identical to the per-query
    /// reference: hoisting the rotation (tails) and the `cos`/`sin` pair
    /// (heads) reuses identical values, never reorders an operation.
    #[test]
    fn native_shard_kernel_matches_per_query_bit_for_bit() {
        use crate::batch::test_support::{
            assert_batch_matches_per_query, assert_shards_match_per_query,
        };
        let mut rng = SeededRng::new(59);
        let m = RotatE::init(13, 2, TdmConfig { dim: 8, ..TdmConfig::default() }, &mut rng);
        assert!(m.native_shard_scoring(), "RotatE shard scoring should be native");
        let tails = [(0, 0), (5, 1), (12, 0)];
        let heads = [(1, 3), (0, 12), (1, 0)];
        assert_batch_matches_per_query(&m, &tails, &heads);
        assert_shards_match_per_query(&m, &tails, &heads);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = SeededRng::new(58);
        let cfg = TdmConfig { dim: 4, epochs: 1, lr: 1.0, margin: 0.0, n_negatives: 1 };
        let m = RotatE::init(3, 1, cfg, &mut rng);
        // numeric check of d(distance)/d(phase[0])
        let eps = 1e-3f32;
        let mut mp = m.clone();
        mp.phase.set(0, 0, m.phase.get(0, 0) + eps);
        let mut mm = m.clone();
        mm.phase.set(0, 0, m.phase.get(0, 0) - eps);
        let num = (mp.distance(0, 0, 1) - mm.distance(0, 0, 1)) / (2.0 * eps);
        // analytic: replicate the grad_step formula
        let half = 2;
        let mut res = vec![0.0f32; 4];
        m.residual(0, 0, 1, &mut res);
        let d = kg_linalg::vecops::norm2(&res);
        let ph = m.phase.get(0, 0);
        let (c, s) = (ph.cos(), ph.sin());
        let (hre, him) = (m.ent.get(0, 0), m.ent.get(0, half));
        let dtheta = (res[0] * (-hre * s - him * c) + res[half] * (hre * c - him * s)) / d;
        assert!((num - dtheta).abs() < 1e-2, "fd {num} vs analytic {dtheta}");
    }
}

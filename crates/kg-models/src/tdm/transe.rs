//! TransE (Bordes et al. 2013): `f(h, r, t) = -‖h + r - t‖₁`.

use super::{corrupt, normalise_rows, TdmConfig};
use crate::batch::{checked_shard_width, BatchScorer, BatchScratch};
use crate::predictor::LinkPredictor;
use kg_core::Triple;
use kg_linalg::{Mat, SeededRng};

/// TransE model with L1 distance and margin-ranking training.
#[derive(Debug, Clone)]
pub struct TransE {
    ent: Mat,
    rel: Mat,
    cfg: TdmConfig,
}

impl TransE {
    /// Initialise with Xavier-uniform embeddings, entities normalised.
    pub fn init(
        n_entities: usize,
        n_relations: usize,
        cfg: TdmConfig,
        rng: &mut SeededRng,
    ) -> Self {
        let mut ent = Mat::zeros(n_entities, cfg.dim);
        let mut rel = Mat::zeros(n_relations, cfg.dim);
        rng.xavier_uniform(cfg.dim, ent.as_mut_slice());
        rng.xavier_uniform(cfg.dim, rel.as_mut_slice());
        normalise_rows(&mut ent);
        TransE { ent, rel, cfg }
    }

    fn distance(&self, h: usize, r: usize, t: usize) -> f32 {
        let (hv, rv, tv) = (self.ent.row(h), self.rel.row(r), self.ent.row(t));
        let mut d = 0.0f32;
        for i in 0..self.cfg.dim {
            d += (hv[i] + rv[i] - tv[i]).abs();
        }
        d
    }

    /// One margin-ranking SGD step on (pos, neg); returns the hinge loss.
    fn step(&mut self, pos: Triple, neg: Triple) -> f32 {
        let loss = self.cfg.margin + self.distance(pos.h.idx(), pos.r.idx(), pos.t.idx())
            - self.distance(neg.h.idx(), neg.r.idx(), neg.t.idx());
        if loss <= 0.0 {
            return 0.0;
        }
        let lr = self.cfg.lr;
        let dim = self.cfg.dim;
        // d‖v‖₁/dv = sign(v); positive distance is minimised, negative maximised.
        for (triple, dir) in [(pos, 1.0f32), (neg, -1.0f32)] {
            let (hi, ri, ti) = (triple.h.idx(), triple.r.idx(), triple.t.idx());
            for i in 0..dim {
                let g = dir
                    * (self.ent.get(hi, i) + self.rel.get(ri, i) - self.ent.get(ti, i)).signum();
                let step = lr * g;
                // gradient descent on the hinge: subtract
                self.ent.set(hi, i, self.ent.get(hi, i) - step);
                self.rel.set(ri, i, self.rel.get(ri, i) - step);
                self.ent.set(ti, i, self.ent.get(ti, i) + step);
            }
        }
        loss
    }

    /// Train on `triples` (Alg. 1 with margin loss); returns per-epoch mean
    /// hinge losses.
    pub fn train(&mut self, triples: &[Triple], rng: &mut SeededRng) -> Vec<f32> {
        let mut order: Vec<usize> = (0..triples.len()).collect();
        let mut losses = Vec::with_capacity(self.cfg.epochs);
        for _ in 0..self.cfg.epochs {
            rng.shuffle(&mut order);
            let mut total = 0.0f32;
            let mut count = 0usize;
            for &i in &order {
                let pos = triples[i];
                for _ in 0..self.cfg.n_negatives {
                    let neg = corrupt(pos, self.ent.rows(), rng);
                    total += self.step(pos, neg);
                    count += 1;
                }
            }
            normalise_rows(&mut self.ent);
            losses.push(if count > 0 { total / count as f32 } else { 0.0 });
        }
        losses
    }
}

impl LinkPredictor for TransE {
    fn n_entities(&self) -> usize {
        self.ent.rows()
    }

    fn n_relations(&self) -> Option<usize> {
        Some(self.rel.rows())
    }

    fn score_triple(&self, h: usize, r: usize, t: usize) -> f32 {
        -self.distance(h, r, t)
    }

    fn score_tails(&self, h: usize, r: usize, out: &mut [f32]) {
        for (e, o) in out.iter_mut().enumerate() {
            *o = -self.distance(h, r, e);
        }
    }

    fn score_heads(&self, r: usize, t: usize, out: &mut [f32]) {
        for (e, o) in out.iter_mut().enumerate() {
            *o = -self.distance(e, r, t);
        }
    }
}

/// The distance doesn't factor as `⟨query, entity⟩`, so batch scoring rides
/// the default per-row loop — but shards *are* native: each score depends
/// only on its own entity row, so restricting the distance loop to the
/// shard's rows does work proportional to the shard width and is
/// bit-identical to the full-table columns by construction.
impl BatchScorer for TransE {
    fn native_shard_scoring(&self) -> bool {
        true
    }

    fn score_tails_shard(
        &self,
        queries: &[(usize, usize)],
        shard: std::ops::Range<usize>,
        out: &mut [f32],
        scratch: &mut BatchScratch,
    ) {
        let _ = scratch;
        let width = checked_shard_width(
            &shard,
            self.n_entities(),
            queries.len(),
            out.len(),
            "score_tails_shard",
        );
        for (i, &(h, r)) in queries.iter().enumerate() {
            let out_row = &mut out[i * width..(i + 1) * width];
            for (o, e) in out_row.iter_mut().zip(shard.clone()) {
                *o = -self.distance(h, r, e);
            }
        }
    }

    fn score_heads_shard(
        &self,
        queries: &[(usize, usize)],
        shard: std::ops::Range<usize>,
        out: &mut [f32],
        scratch: &mut BatchScratch,
    ) {
        let _ = scratch;
        let width = checked_shard_width(
            &shard,
            self.n_entities(),
            queries.len(),
            out.len(),
            "score_heads_shard",
        );
        for (i, &(r, t)) in queries.iter().enumerate() {
            let out_row = &mut out[i * width..(i + 1) * width];
            for (o, e) in out_row.iter_mut().zip(shard.clone()) {
                *o = -self.distance(e, r, t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::test_support::assert_consistent_scoring;

    fn chain_triples(n: u32) -> Vec<Triple> {
        (0..n - 1).map(|i| Triple::new(i, 0, i + 1)).collect()
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = SeededRng::new(33);
        let triples = chain_triples(20);
        let cfg = TdmConfig { dim: 16, epochs: 30, lr: 0.05, margin: 1.0, n_negatives: 2 };
        let mut m = TransE::init(20, 1, cfg, &mut rng);
        let losses = m.train(&triples, &mut rng);
        let early: f32 = losses[..5].iter().sum::<f32>() / 5.0;
        let late: f32 = losses[losses.len() - 5..].iter().sum::<f32>() / 5.0;
        assert!(late < early, "loss did not decrease: {early} -> {late}");
    }

    #[test]
    fn trained_model_ranks_true_tail_above_random() {
        let mut rng = SeededRng::new(34);
        let triples = chain_triples(30);
        let cfg = TdmConfig { dim: 16, epochs: 60, lr: 0.05, margin: 1.0, n_negatives: 4 };
        let mut m = TransE::init(30, 1, cfg, &mut rng);
        m.train(&triples, &mut rng);
        // true tail of (4, 0, ?) is 5; it should beat the median entity
        let mut scores = vec![0.0f32; 30];
        m.score_tails(4, 0, &mut scores);
        let true_score = scores[5];
        let better = scores.iter().filter(|&&s| s > true_score).count();
        assert!(better < 15, "true tail ranked {better}/30");
    }

    #[test]
    fn scoring_paths_consistent() {
        let mut rng = SeededRng::new(35);
        let m = TransE::init(10, 2, TdmConfig::default(), &mut rng);
        assert_consistent_scoring(&m, 1, 0, 2);
        assert_consistent_scoring(&m, 9, 1, 0);
    }

    #[test]
    fn translation_structure_is_respected() {
        // If h + r == t exactly, the distance is 0 (best possible score).
        let mut rng = SeededRng::new(36);
        let mut m = TransE::init(3, 1, TdmConfig { dim: 4, ..TdmConfig::default() }, &mut rng);
        for i in 0..4 {
            m.ent.set(0, i, 0.1 * i as f32);
            m.rel.set(0, i, 0.05);
            m.ent.set(1, i, 0.1 * i as f32 + 0.05);
        }
        assert!(m.score_triple(0, 0, 1).abs() < 1e-6);
        assert!(m.score_triple(1, 0, 0) < -1e-3);
    }
}

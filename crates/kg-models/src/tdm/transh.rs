//! TransH (Wang et al. 2014): translation on relation-specific hyperplanes,
//! `f(h, r, t) = -‖h_⊥ + d_r - t_⊥‖₂²` with `v_⊥ = v - (w_rᵀv) w_r`.
//!
//! Projecting onto a per-relation hyperplane lets one entity hold different
//! roles under different relations, which plain TransE cannot model for
//! 1-to-N / N-to-1 relations.

use super::{corrupt, normalise_rows, TdmConfig};
use crate::batch::{checked_shard_width, BatchScorer, BatchScratch};
use crate::predictor::LinkPredictor;
use kg_core::Triple;
use kg_linalg::{Mat, SeededRng};

/// TransH model.
#[derive(Debug, Clone)]
pub struct TransH {
    ent: Mat,
    /// Translation vectors `d_r`.
    rel: Mat,
    /// Hyperplane normals `w_r` (kept unit-norm).
    norm: Mat,
    cfg: TdmConfig,
}

impl TransH {
    /// Initialise with Xavier-uniform parameters; normals normalised.
    pub fn init(
        n_entities: usize,
        n_relations: usize,
        cfg: TdmConfig,
        rng: &mut SeededRng,
    ) -> Self {
        let mut ent = Mat::zeros(n_entities, cfg.dim);
        let mut rel = Mat::zeros(n_relations, cfg.dim);
        let mut norm = Mat::zeros(n_relations, cfg.dim);
        rng.xavier_uniform(cfg.dim, ent.as_mut_slice());
        rng.xavier_uniform(cfg.dim, rel.as_mut_slice());
        rng.xavier_uniform(cfg.dim, norm.as_mut_slice());
        normalise_rows(&mut ent);
        normalise_rows(&mut norm);
        TransH { ent, rel, norm, cfg }
    }

    /// The residual vector `h_⊥ + d_r - t_⊥`.
    fn residual(&self, h: usize, r: usize, t: usize, out: &mut [f32]) {
        let (hv, rv, tv, wv) =
            (self.ent.row(h), self.rel.row(r), self.ent.row(t), self.norm.row(r));
        let wh = kg_linalg::vecops::dot(wv, hv);
        let wt = kg_linalg::vecops::dot(wv, tv);
        for i in 0..self.cfg.dim {
            let hp = hv[i] - wh * wv[i];
            let tp = tv[i] - wt * wv[i];
            out[i] = hp + rv[i] - tp;
        }
    }

    fn distance_sq(&self, h: usize, r: usize, t: usize) -> f32 {
        let mut res = vec![0.0f32; self.cfg.dim];
        self.residual(h, r, t, &mut res);
        kg_linalg::vecops::norm2_sq(&res)
    }

    /// Gradient step for one triple with direction `dir` (+1 positive,
    /// -1 negative) on the hinge.
    fn grad_step(&mut self, tr: Triple, dir: f32) {
        let dim = self.cfg.dim;
        let (hi, ri, ti) = (tr.h.idx(), tr.r.idx(), tr.t.idx());
        let mut res = vec![0.0f32; dim];
        self.residual(hi, ri, ti, &mut res);
        let lr = self.cfg.lr;
        let wv: Vec<f32> = self.norm.row(ri).to_vec();
        let hv: Vec<f32> = self.ent.row(hi).to_vec();
        let tv: Vec<f32> = self.ent.row(ti).to_vec();
        let wh = kg_linalg::vecops::dot(&wv, &hv);
        let wt = kg_linalg::vecops::dot(&wv, &tv);
        let wres = kg_linalg::vecops::dot(&wv, &res);
        // d(‖res‖²)/dv = 2 res · d(res)/dv; dir folds the hinge sign.
        for i in 0..dim {
            let g = 2.0 * dir * res[i];
            // dres/dh_i = δ - w_i w  (projection Jacobian)
            self.ent.set(hi, i, self.ent.get(hi, i) - lr * (g - 2.0 * dir * wres * wv[i]));
            self.rel.set(ri, i, self.rel.get(ri, i) - lr * g);
            self.ent.set(ti, i, self.ent.get(ti, i) + lr * (g - 2.0 * dir * wres * wv[i]));
            // dres/dw = -(wᵀh) δh... full term: -(w·res)(h - t) - ((h-t)·w) res
            let dwi = -2.0 * dir * (wres * (hv[i] - tv[i]) + (wh - wt) * res[i]);
            self.norm.set(ri, i, self.norm.get(ri, i) - lr * dwi);
        }
    }

    /// Train with margin ranking loss; returns per-epoch mean hinge losses.
    pub fn train(&mut self, triples: &[Triple], rng: &mut SeededRng) -> Vec<f32> {
        let mut order: Vec<usize> = (0..triples.len()).collect();
        let mut losses = Vec::with_capacity(self.cfg.epochs);
        for _ in 0..self.cfg.epochs {
            rng.shuffle(&mut order);
            let mut total = 0.0f32;
            let mut count = 0usize;
            for &i in &order {
                let pos = triples[i];
                for _ in 0..self.cfg.n_negatives {
                    let neg = corrupt(pos, self.ent.rows(), rng);
                    let loss = self.cfg.margin
                        + self.distance_sq(pos.h.idx(), pos.r.idx(), pos.t.idx())
                        - self.distance_sq(neg.h.idx(), neg.r.idx(), neg.t.idx());
                    if loss > 0.0 {
                        self.grad_step(pos, 1.0);
                        self.grad_step(neg, -1.0);
                        total += loss;
                    }
                    count += 1;
                }
            }
            normalise_rows(&mut self.ent);
            normalise_rows(&mut self.norm);
            losses.push(if count > 0 { total / count as f32 } else { 0.0 });
        }
        losses
    }
}

impl LinkPredictor for TransH {
    fn n_entities(&self) -> usize {
        self.ent.rows()
    }

    fn n_relations(&self) -> Option<usize> {
        Some(self.rel.rows())
    }

    fn score_triple(&self, h: usize, r: usize, t: usize) -> f32 {
        -self.distance_sq(h, r, t)
    }

    fn score_tails(&self, h: usize, r: usize, out: &mut [f32]) {
        for (e, o) in out.iter_mut().enumerate() {
            *o = -self.distance_sq(h, r, e);
        }
    }

    fn score_heads(&self, r: usize, t: usize, out: &mut [f32]) {
        for (e, o) in out.iter_mut().enumerate() {
            *o = -self.distance_sq(e, r, t);
        }
    }
}

/// Same shard story as TransE: the hyperplane distance doesn't factor, but
/// each score depends only on its own entity row, so the shard override
/// restricts the distance loop to the shard's rows — work proportional to
/// the shard width, bit-identical to the full-table columns by
/// construction.
impl BatchScorer for TransH {
    fn native_shard_scoring(&self) -> bool {
        true
    }

    fn score_tails_shard(
        &self,
        queries: &[(usize, usize)],
        shard: std::ops::Range<usize>,
        out: &mut [f32],
        scratch: &mut BatchScratch,
    ) {
        let _ = scratch;
        let width = checked_shard_width(
            &shard,
            self.n_entities(),
            queries.len(),
            out.len(),
            "score_tails_shard",
        );
        for (i, &(h, r)) in queries.iter().enumerate() {
            let out_row = &mut out[i * width..(i + 1) * width];
            for (o, e) in out_row.iter_mut().zip(shard.clone()) {
                *o = -self.distance_sq(h, r, e);
            }
        }
    }

    fn score_heads_shard(
        &self,
        queries: &[(usize, usize)],
        shard: std::ops::Range<usize>,
        out: &mut [f32],
        scratch: &mut BatchScratch,
    ) {
        let _ = scratch;
        let width = checked_shard_width(
            &shard,
            self.n_entities(),
            queries.len(),
            out.len(),
            "score_heads_shard",
        );
        for (i, &(r, t)) in queries.iter().enumerate() {
            let out_row = &mut out[i * width..(i + 1) * width];
            for (o, e) in out_row.iter_mut().zip(shard.clone()) {
                *o = -self.distance_sq(e, r, t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::test_support::assert_consistent_scoring;

    #[test]
    fn training_reduces_loss() {
        let mut rng = SeededRng::new(44);
        let triples: Vec<Triple> = (0..25).map(|i| Triple::new(i, 0, (i + 1) % 26)).collect();
        let cfg = TdmConfig { dim: 16, epochs: 30, lr: 0.02, margin: 1.0, n_negatives: 2 };
        let mut m = TransH::init(26, 1, cfg, &mut rng);
        let losses = m.train(&triples, &mut rng);
        let early: f32 = losses[..5].iter().sum::<f32>() / 5.0;
        let late: f32 = losses[losses.len() - 5..].iter().sum::<f32>() / 5.0;
        assert!(late < early, "loss did not decrease: {early} -> {late}");
    }

    #[test]
    fn scoring_paths_consistent() {
        let mut rng = SeededRng::new(45);
        let m = TransH::init(8, 2, TdmConfig::default(), &mut rng);
        assert_consistent_scoring(&m, 0, 1, 3);
        assert_consistent_scoring(&m, 7, 0, 7);
    }

    #[test]
    fn projection_grad_matches_finite_differences() {
        let mut rng = SeededRng::new(46);
        let cfg = TdmConfig { dim: 6, epochs: 1, lr: 0.0, margin: 0.0, n_negatives: 1 };
        let m = TransH::init(4, 1, cfg, &mut rng);
        // numeric sanity: distance is invariant to moving h along w
        let w: Vec<f32> = m.norm.row(0).to_vec();
        let base = m.distance_sq(0, 0, 1);
        let mut shifted = m.clone();
        for i in 0..6 {
            let v = shifted.ent.get(0, i);
            shifted.ent.set(0, i, v + 0.3 * w[i]);
        }
        let moved = shifted.distance_sq(0, 0, 1);
        assert!((base - moved).abs() < 1e-3, "{base} vs {moved}");
    }
}

//! Pins the object-safety contract of [`LinkPredictor`] / [`BatchScorer`]:
//! both traits stay usable as `dyn` objects, and the pointer forwarding
//! impls (`&T`, `Box<T>`, `Arc<T>`) satisfy the same generic bounds as
//! concrete models — including through `?Sized` targets, so a single
//! `Arc<dyn BatchScorer + Send + Sync>` can be shared across worker
//! threads. This is the seam `kg-serve`'s engine is built on; if it stops
//! compiling, the serving API breaks.

use kg_models::blm::classics;
use kg_models::{BatchScorer, BatchScratch, BlmModel, Embeddings, KernelPolicy, LinkPredictor};
use std::sync::Arc;

fn model() -> BlmModel {
    let mut rng = kg_linalg::SeededRng::new(7);
    BlmModel::new(classics::complex(), Embeddings::init(9, 2, 8, &mut rng))
}

/// A generic consumer with the same bounds as the batched ranking engine.
/// Pinned to `Exact`: this suite compares the batch path against the
/// per-query reference and shard columns against full-table columns, both
/// of which only the exact tier promises bitwise — a fast-tier CI
/// environment must not flip the scratch's default from outside.
fn generic_batch<M: BatchScorer + Sync>(m: &M) -> (bool, Vec<f32>) {
    let mut scratch = BatchScratch::with_policy(KernelPolicy::Exact);
    let mut out = vec![0.0f32; 2 * m.n_entities()];
    m.score_tails_batch(&[(0, 0), (3, 1)], &mut out, &mut scratch);
    (m.native_shard_scoring(), out)
}

/// A generic consumer with per-query (`LinkPredictor`) bounds only.
fn generic_per_query<M: LinkPredictor + ?Sized>(m: &M) -> Vec<f32> {
    let mut out = vec![0.0f32; m.n_entities()];
    m.score_tails(0, 0, &mut out);
    out
}

#[test]
fn arc_dyn_batch_scorer_forwards_overrides() {
    let concrete = model();
    let (native, reference) = generic_batch(&concrete);
    assert!(native, "BLM models advertise native shard scoring");

    // The same model behind a shared trait object: every call — including
    // the overridden GEMM batch path and the capability flag — must forward
    // bit-identically.
    let shared: Arc<dyn BatchScorer + Send + Sync> = Arc::new(model());
    let (native_dyn, scores_dyn) = generic_batch(&shared);
    assert!(native_dyn, "native_shard_scoring must forward through Arc<dyn>");
    assert_eq!(scores_dyn, reference, "Arc<dyn> batch scores diverged from concrete model");

    // The relation-vocabulary bound — what lets `kg-serve` reject a bad
    // relation id at submit time — must survive the trait object too.
    assert_eq!(concrete.n_relations(), Some(2));
    assert_eq!(shared.n_relations(), Some(2), "n_relations must forward through Arc<dyn>");

    // And the trait object still hands out bit-identical shard columns
    // (an Exact-tier guarantee, hence the pinned scratch).
    let mut scratch = BatchScratch::with_policy(KernelPolicy::Exact);
    let mut shard_block = vec![0.0f32; 2 * 3];
    shared.score_tails_shard(&[(0, 0), (3, 1)], 2..5, &mut shard_block, &mut scratch);
    assert_eq!(&shard_block[..3], &reference[2..5]);
    assert_eq!(&shard_block[3..], &reference[9 + 2..9 + 5]);
}

#[test]
fn every_pointer_flavor_satisfies_the_generic_bounds() {
    let concrete = model();
    let reference = generic_per_query(&concrete);

    let by_ref: &BlmModel = &concrete;
    assert_eq!(generic_per_query(&by_ref), reference);

    let boxed: Box<dyn BatchScorer + Send + Sync> = Box::new(model());
    assert_eq!(generic_per_query(&boxed), reference);
    assert_eq!(generic_batch(&boxed).1[..9], reference[..]);

    let arc: Arc<dyn LinkPredictor + Send + Sync> = Arc::new(model());
    assert_eq!(generic_per_query(&arc), reference);

    // `?Sized` consumers accept the bare trait object too.
    let dyn_ref: &dyn LinkPredictor = &concrete;
    assert_eq!(generic_per_query(dyn_ref), reference);
}

#[test]
fn arc_clones_share_one_model() {
    let arc: Arc<dyn BatchScorer + Send + Sync> = Arc::new(model());
    let clone = Arc::clone(&arc);
    let a = std::thread::scope(|s| {
        let h = s.spawn(move || generic_batch(&clone).1);
        h.join().expect("scoring thread panicked")
    });
    assert_eq!(a, generic_batch(&arc).1, "clones of one Arc model diverged across threads");
}

//! Property-based tests for the unified block representation.

use kg_linalg::SeededRng;
use kg_models::{Block, BlockSpec};
use proptest::prelude::*;

/// Strategy: a random valid structure with 1..=8 blocks on distinct cells.
fn arb_spec() -> impl Strategy<Value = BlockSpec> {
    prop::collection::vec((0u8..4, 0u8..4, 0u8..4, prop::bool::ANY), 1..8).prop_map(|raw| {
        let mut spec = BlockSpec::new(vec![]);
        for (hc, rc, tc, pos) in raw {
            let b = Block { hc, rc, tc, sign: if pos { 1 } else { -1 } };
            if let Some(next) = spec.extended(b) {
                spec = next;
            }
        }
        if spec.n_blocks() == 0 {
            spec.extended(Block::new(0, 0, 0, 1)).expect("empty spec accepts any block")
        } else {
            spec
        }
    })
}

fn rand_vec(seed: u64, n: usize) -> Vec<f32> {
    let mut rng = SeededRng::new(seed);
    let mut v = vec![0.0f32; n];
    rng.fill_normal(1.0, &mut v);
    v
}

proptest! {
    /// Blocked scoring equals the dense `hᵀ g(r) t` for any structure.
    #[test]
    fn score_equals_dense_matrix(spec in arb_spec(), seed in 0u64..1000) {
        let dsub = 3;
        let d = 4 * dsub;
        let h = rand_vec(seed, d);
        let r = rand_vec(seed ^ 1, d);
        let t = rand_vec(seed ^ 2, d);
        let dense = spec.dense_relation_matrix(&r, dsub);
        let mut rt = vec![0.0f32; d];
        dense.gemv(&t, &mut rt);
        let expect = kg_linalg::vecops::dot(&h, &rt);
        let got = spec.score(&h, &r, &t, dsub);
        prop_assert!((expect - got).abs() < 1e-3 * (1.0 + expect.abs()),
            "dense {expect} vs blocked {got}");
    }

    /// The tail query vector satisfies `score(h, r, e) = ⟨q, e⟩` for all e.
    #[test]
    fn tail_query_is_linear_form(spec in arb_spec(), seed in 0u64..1000) {
        let dsub = 2;
        let d = 4 * dsub;
        let h = rand_vec(seed, d);
        let r = rand_vec(seed ^ 3, d);
        let e = rand_vec(seed ^ 4, d);
        let mut q = vec![0.0f32; d];
        spec.tail_query(&h, &r, &mut q, dsub);
        let via_q = kg_linalg::vecops::dot(&q, &e);
        let direct = spec.score(&h, &r, &e, dsub);
        prop_assert!((via_q - direct).abs() < 1e-3 * (1.0 + direct.abs()));
    }

    /// Head query symmetrically.
    #[test]
    fn head_query_is_linear_form(spec in arb_spec(), seed in 0u64..1000) {
        let dsub = 2;
        let d = 4 * dsub;
        let t = rand_vec(seed, d);
        let r = rand_vec(seed ^ 5, d);
        let e = rand_vec(seed ^ 6, d);
        let mut p = vec![0.0f32; d];
        spec.head_query(&t, &r, &mut p, dsub);
        let via_p = kg_linalg::vecops::dot(&p, &e);
        let direct = spec.score(&e, &r, &t, dsub);
        prop_assert!((via_p - direct).abs() < 1e-3 * (1.0 + direct.abs()));
    }

    /// Scoring is linear in the relation embedding (the property behind
    /// Proposition 1's general-asymmetric construction).
    #[test]
    fn score_is_linear_in_relation(spec in arb_spec(), seed in 0u64..500, a in -3.0f32..3.0, b in -3.0f32..3.0) {
        let dsub = 2;
        let d = 4 * dsub;
        let h = rand_vec(seed, d);
        let r1 = rand_vec(seed ^ 7, d);
        let r2 = rand_vec(seed ^ 8, d);
        let t = rand_vec(seed ^ 9, d);
        let combo: Vec<f32> = r1.iter().zip(&r2).map(|(x, y)| a * x + b * y).collect();
        let lhs = spec.score(&h, &combo, &t, dsub);
        let rhs = a * spec.score(&h, &r1, &t, dsub) + b * spec.score(&h, &r2, &t, dsub);
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    /// The substitute matrix round-trips the block list.
    #[test]
    fn substitute_matrix_roundtrip(spec in arb_spec()) {
        let m = spec.substitute_matrix();
        let mut rebuilt = Vec::new();
        for (i, row) in m.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v != 0 {
                    rebuilt.push(Block {
                        hc: i as u8,
                        rc: (v.unsigned_abs() - 1),
                        tc: j as u8,
                        sign: v.signum(),
                    });
                }
            }
        }
        prop_assert_eq!(BlockSpec::new(rebuilt), spec);
    }

    /// `extended` never clobbers existing cells and adds exactly one block.
    #[test]
    fn extended_preserves_blocks(spec in arb_spec(), hc in 0u8..4, rc in 0u8..4, tc in 0u8..4) {
        let b = Block::new(hc, rc, tc, 1);
        match spec.extended(b) {
            Some(bigger) => {
                prop_assert_eq!(bigger.n_blocks(), spec.n_blocks() + 1);
                for blk in spec.blocks() {
                    prop_assert!(bigger.blocks().contains(blk));
                }
            }
            None => {
                // the cell must have been occupied
                prop_assert!(spec.blocks().iter().any(|x| x.hc == hc && x.tc == tc));
            }
        }
    }
}

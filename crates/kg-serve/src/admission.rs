//! Admission control vocabulary: the typed overload errors and the
//! per-class latency histogram.
//!
//! The serving engine never queues without bound. Each request class has a
//! queue cap ([`crate::KgEngineBuilder::max_queued`]): a submission against
//! a full queue is **shed** on the caller's thread with
//! [`SubmitError::Shed`] — the request never enters the engine, and the
//! error carries a `retry_after` hint sized from the backlog it would have
//! waited behind. An optional deadline
//! ([`crate::KgEngineBuilder::deadline`]) additionally **expires** admitted
//! requests that have already waited longer than the deadline when their
//! block is cut, failing the ticket with [`ServeError::Expired`] *before*
//! any crew time is spent scoring them. Together the two bound both queue
//! memory and queueing delay: under sustained overload, every admitted
//! request is answered within a bounded time and every over-capacity
//! request fails fast instead of stretching the tail.

use std::fmt;
use std::time::Duration;

/// Which batch a request rides in — triple scores batch together, row
/// queries batch per direction. Queue caps, depth counters and latency
/// histograms are all kept per class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestClass {
    /// Single-triple plausibility scores ([`crate::KgEngine::submit_score`]).
    Score,
    /// Tail-row queries: `rank_tail` and `top_k_tails`.
    Tails,
    /// Head-row queries: `rank_head` and `top_k_heads`.
    Heads,
}

impl RequestClass {
    /// All classes, in the engine's canonical order (the order
    /// [`crate::EngineStats`] reports depths and histograms in).
    pub const ALL: [RequestClass; 3] =
        [RequestClass::Score, RequestClass::Tails, RequestClass::Heads];
}

impl fmt::Display for RequestClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RequestClass::Score => "score",
            RequestClass::Tails => "tails",
            RequestClass::Heads => "heads",
        })
    }
}

/// Why a `submit_*` call refused to enqueue — returned on the **caller's
/// thread**, before the request enters the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The request's class queue is at its [`crate::KgEngineBuilder::max_queued`]
    /// cap. Nothing was enqueued and no ticket exists; the caller should
    /// back off for roughly `retry_after` before resubmitting.
    Shed {
        /// The class whose queue was full.
        class: RequestClass,
        /// Queue depth observed at the submit attempt (≥ the cap).
        depth: usize,
        /// A backoff hint: the engine's estimate of how long the backlog
        /// ahead of a new request would take to drain, from the depth and
        /// the recent mean block service time. A *hint*, not a guarantee —
        /// resubmitting after `retry_after` may still shed if other
        /// clients refilled the queue first, but honouring it keeps a
        /// rejected client from hot-looping on a full engine.
        retry_after: Duration,
    },
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Shed { class, depth, retry_after } => write!(
                f,
                "request shed: {class} queue at capacity (depth {depth}); retry after {retry_after:?}"
            ),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why an **admitted** request's ticket settled without an answer —
/// returned by the `wait_result` ticket methods (plain `wait` panics with
/// the same rendering).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request sat in its queue past the engine's
    /// [`crate::KgEngineBuilder::deadline`]: the dispatcher dropped it when
    /// cutting its block, before any crew time was spent scoring it.
    Expired {
        /// The class the request was queued in.
        class: RequestClass,
        /// How long it had waited when the dispatcher examined it.
        waited: Duration,
        /// The engine's configured deadline.
        deadline: Duration,
    },
    /// The engine could not answer: the model panicked on this request,
    /// the engine shut down with it pending, or an infrastructure failure
    /// poisoned the engine. The message carries the original cause.
    Failed(String),
}

impl ServeError {
    /// Shorthand constructor for the infrastructure/shutdown/panic case.
    pub(crate) fn failed(why: impl Into<String>) -> ServeError {
        ServeError::Failed(why.into())
    }

    /// `true` for the deadline-shedding case — the one failure a client
    /// under overload should treat as load feedback rather than an error.
    pub fn is_expired(&self) -> bool {
        matches!(self, ServeError::Expired { .. })
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Expired { class, waited, deadline } => write!(
                f,
                "request expired unscored: waited {waited:?} in the {class} queue \
                 against a {deadline:?} deadline"
            ),
            ServeError::Failed(why) => f.write_str(why),
        }
    }
}

impl std::error::Error for ServeError {}

/// Number of buckets in a [`LatencyHistogram`].
pub const LATENCY_BUCKETS: usize = 32;

/// Width of bucket 0 in nanoseconds; every later bucket doubles, so the 32
/// buckets span 250 ns to ~17 minutes — the full plausible submit→settle
/// range at log-spaced resolution.
const BUCKET0_NANOS: u64 = 250;

/// The bucket a latency of `nanos` lands in: log₂-spaced, bucket `i`
/// covering roughly `[250ns · 2^i, 250ns · 2^(i+1))`, with the first and
/// last buckets absorbing the tails.
pub(crate) fn bucket_index(nanos: u64) -> usize {
    ((nanos / BUCKET0_NANOS).max(1).ilog2() as usize).min(LATENCY_BUCKETS - 1)
}

/// A fixed-bucket, log-spaced latency histogram: one submit→settle sample
/// per settled request (answered, expired or failed), kept per request
/// class. Snapshots come from [`crate::EngineStats`]; recording is
/// lock-free on the engine side, so the histograms cost the hot path one
/// relaxed atomic increment per settle.
///
/// ```
/// # use kg_models::{blm::classics, BlmModel, Embeddings};
/// # let mut rng = kg_linalg::SeededRng::new(41);
/// # let model = BlmModel::new(classics::simple(), Embeddings::init(10, 2, 8, &mut rng));
/// let engine = kg_serve::KgEngine::with_filter(model, Default::default()).build();
/// for i in 0..10 {
///     let _ = engine.rank_tail(i % 10, 0, (i + 1) % 10);
/// }
/// let hist = engine.stats().latency_tails;
/// assert_eq!(hist.count(), 10);
/// assert!(hist.quantile(0.99).expect("non-empty") > std::time::Duration::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Sample counts; bucket `i` covers [`LatencyHistogram::bucket_bounds`]`(i)`.
    pub buckets: [u64; LATENCY_BUCKETS],
}

impl LatencyHistogram {
    /// Total settled requests recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The latency range bucket `i` covers: `(lower, upper]` — log-spaced,
    /// doubling per bucket from 500 ns. The first bucket's lower bound is
    /// zero and the last bucket absorbs everything beyond its lower bound.
    ///
    /// # Panics
    /// Panics if `i >= LATENCY_BUCKETS`.
    pub fn bucket_bounds(i: usize) -> (Duration, Duration) {
        assert!(i < LATENCY_BUCKETS, "bucket {i} out of range");
        let lower = if i == 0 { 0 } else { BUCKET0_NANOS << i };
        (Duration::from_nanos(lower), Duration::from_nanos(BUCKET0_NANOS << (i + 1)))
    }

    /// An upper bound on the `q`-quantile latency (`0.0 < q <= 1.0`): the
    /// upper edge of the bucket the quantile sample falls in, so the true
    /// quantile is at most one log-spaced bucket (2×) below the returned
    /// value. `None` on an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Some(LatencyHistogram::bucket_bounds(i).1);
            }
        }
        Some(LatencyHistogram::bucket_bounds(LATENCY_BUCKETS - 1).1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log_spaced_and_clamped() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(249), 0);
        assert_eq!(bucket_index(250), 0);
        assert_eq!(bucket_index(500), 1);
        assert_eq!(bucket_index(1_000), 2);
        // Microsecond-scale doubling: each bucket is exactly one octave.
        for i in 1..LATENCY_BUCKETS - 1 {
            let (lo, hi) = LatencyHistogram::bucket_bounds(i);
            assert_eq!(bucket_index(lo.as_nanos() as u64), i);
            assert_eq!(bucket_index(hi.as_nanos() as u64 - 1), i);
        }
        // Way past the last bucket's range: clamped, never out of bounds.
        assert_eq!(bucket_index(u64::MAX), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn quantile_walks_the_cumulative_counts() {
        let mut hist = LatencyHistogram { buckets: [0; LATENCY_BUCKETS] };
        assert_eq!(hist.quantile(0.5), None);
        hist.buckets[3] = 98; // ~2-4 µs
        hist.buckets[10] = 2; // ~256-512 µs
        assert_eq!(hist.count(), 100);
        assert_eq!(hist.quantile(0.5), Some(LatencyHistogram::bucket_bounds(3).1));
        assert_eq!(hist.quantile(0.98), Some(LatencyHistogram::bucket_bounds(3).1));
        assert_eq!(hist.quantile(0.99), Some(LatencyHistogram::bucket_bounds(10).1));
        assert_eq!(hist.quantile(1.0), Some(LatencyHistogram::bucket_bounds(10).1));
    }

    #[test]
    fn errors_render_their_cause() {
        let shed = SubmitError::Shed {
            class: RequestClass::Tails,
            depth: 64,
            retry_after: Duration::from_micros(300),
        };
        let msg = shed.to_string();
        assert!(msg.contains("tails") && msg.contains("64") && msg.contains("retry"));
        let expired = ServeError::Expired {
            class: RequestClass::Score,
            waited: Duration::from_millis(7),
            deadline: Duration::from_millis(5),
        };
        assert!(expired.is_expired());
        assert!(expired.to_string().contains("expired"));
        // `Failed` passes the original cause through verbatim — ticket
        // panic messages rely on this.
        assert_eq!(ServeError::failed("engine shut down").to_string(), "engine shut down");
        assert!(!ServeError::failed("x").is_expired());
    }
}

//! The [`KgEngine`] facade: a query-batching, latency-aware frontend over
//! the sharded scoring engine.
//!
//! # Architecture
//!
//! Clients submit single link-prediction requests from any thread; the
//! engine accumulates them in per-class FIFO queues (triple scores, tail
//! row queries, head row queries). A dispatcher thread cuts blocks of up to
//! `block` same-class queries and hands each block to a **persistent worker
//! crew** — the same [`kg_eval::engine::plan_shards`] split the offline
//! parallel ranker uses: models with
//! [`kg_models::BatchScorer::native_shard_scoring`] get the entity table
//! cut into even contiguous shards (row-restricted GEMM, each shard
//! cache-resident in its worker), other models get the block's query rows
//! split full-width. Workers score through
//! [`kg_eval::engine::score_block_shard`] into reusable buffers
//! ([`kg_models::BatchScratch`] per worker, zero steady-state allocation),
//! the dispatcher stitches the shard columns back into full score rows and
//! answers each request with the shared per-query primitives
//! ([`kg_eval::ranking::filtered_rank`], [`kg_eval::ranking::top_k`]).
//!
//! # Scheduling policy
//!
//! The dispatcher is **FIFO within each class, oldest class first**: the
//! class whose front request has waited longest is served next, so no class
//! starves. Two latency-aware refinements sit on top:
//!
//! * **Linger** ([`KgEngineBuilder::linger`], default zero): a partially
//!   filled row block may wait a bounded time for co-batchable queries
//!   before it is cut — the deadline is the front request's arrival time
//!   plus the linger budget, so no request is ever delayed by more than the
//!   budget. Microseconds of added latency buy full-block GEMM locality.
//! * **Split-crew dual-direction draining** ([`KgEngineBuilder::split_crew`],
//!   default on): when tail *and* head queries are both queued and the crew
//!   has at least two workers, the crew is partitioned into two sub-crews
//!   (each re-planned with [`kg_eval::engine::split_plan`]) and one block
//!   per direction is scored concurrently. Mixed workloads no longer
//!   serialise by direction: a deep backlog in one direction cannot
//!   head-of-line-block the other, and one direction running dry never
//!   idles half the engine. While both lanes drain, triple-score requests
//!   are answered inline between lane completions.
//! * **Pipelined double-buffered dispatch**: every worker owns two output
//!   buffers, so the moment block `N`'s shards land the dispatcher hands
//!   the crew block `N+1` (when the policy above would cut one without
//!   waiting) *before* stitching and answering block `N` — the crew scores
//!   `N+1` while the dispatcher runs `filtered_rank`/`top_k` over `N`.
//!   This holds in the serialised regime and independently in each
//!   split-crew lane, so rank conversion never idles the scoring crew.
//!
//! [`KgEngine::stats`] exposes a lock-free [`EngineStats`] snapshot
//! (queries served, blocks cut, mean block fill, split blocks, per-class
//! queue depths, latency histograms, admission counters,
//! pipeline-occupancy counters) so operators and benchmarks can watch the
//! scheduler work.
//!
//! # Admission control
//!
//! The queues are bounded ([`KgEngineBuilder::max_queued`], default
//! [`KgEngineBuilder::DEFAULT_MAX_QUEUED`] per class): a submission
//! against a full class queue is shed on the caller's thread with
//! [`crate::SubmitError::Shed`] — carrying the observed depth and a
//! `retry_after` backoff hint priced from the recent mean block service
//! time — before any engine resource is committed. An optional
//! [`KgEngineBuilder::deadline`] expires requests that outwait it in the
//! queue: the dispatcher drops them when cutting their block, *before*
//! spending crew time, failing the ticket with
//! [`crate::ServeError::Expired`]. Per-client fair dequeue
//! ([`KgEngine::client`] + [`KgEngineBuilder::fair_dequeue`]) makes block
//! cuts round-robin across client lanes so one flooding client cannot
//! monopolise a full queue. All of this sits **above** block cutting — it
//! decides which requests reach a block, never what any request answers —
//! so the bit-identity contract below is untouched.
//!
//! # Bit-identity
//!
//! Shard blocks are bit-identical column (or row) slices of the full-table
//! per-query output — the [`kg_models::BatchScorer`] contract — so the
//! stitched row equals what [`kg_models::LinkPredictor::score_tails`] /
//! `score_heads` would have written, byte for byte, regardless of batch
//! composition, arrival order, thread count, block size, linger budget or
//! crew split. Ranks and top-k are then computed by the same helpers a
//! per-query caller would use, so every response is **bit-identical to the
//! sequential reference** under every scheduler configuration
//! (`tests/serve_equivalence.rs` pins this for every shipped model family
//! and every knob).
//!
//! # Failure semantics
//!
//! Malformed requests are rejected **at submit time**, on the caller's
//! thread: entity ids are checked against the model's table, relation ids
//! against the relation vocabulary — which [`KgEngine::builder`] takes from
//! the graph and [`KgEngine::with_filter`] derives from the model's own
//! [`kg_models::LinkPredictor::n_relations`], so a bad id panics the caller
//! instead of a worker.
//!
//! A panic *inside* a model's scoring code (the residual case: a model that
//! cannot declare its bounds, or a genuinely fallible override) is caught
//! by the worker and **isolated to the offending request**: the dispatcher
//! rescores the affected block one query at a time through the per-query
//! reference path — bit-identical by contract — fails only the requests
//! whose own query panics, and answers the rest. The engine stays healthy
//! for every other client. Only infrastructure failures (the worker crew
//! hanging up, the dispatcher itself panicking) poison the engine, failing
//! pending and future requests with the original cause; requests never
//! hang. Dropping the engine signals shutdown, fails still-pending tickets
//! and joins the crew.

use crate::admission::{
    bucket_index, LatencyHistogram, RequestClass, ServeError, SubmitError, LATENCY_BUCKETS,
};
use crate::ticket::{RankTicket, Reply, ScoreTicket, TicketInner, TopKTicket};
use kg_core::{Dataset, EntityId, FilterIndex, RelationId};
use kg_eval::engine::{plan_shards, score_block_shard, split_plan, Direction, WorkerShard, BLOCK};
use kg_eval::ranking::{filtered_rank, top_k_into};
use kg_models::{BatchScorer, BatchScratch, KernelPolicy};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The model type the engine serves: any [`BatchScorer`] behind a shared
/// pointer, so one set of trained parameters backs every worker thread.
type SharedModel = Arc<dyn BatchScorer + Send + Sync>;

/// One queued request.
#[derive(Debug, Clone)]
enum Request {
    /// Plausibility of a single triple (`score_triple` semantics).
    Score { h: usize, r: usize, t: usize },
    /// Filtered rank of `target` in the given direction's score row.
    Rank { dir: Direction, h: usize, r: usize, t: usize },
    /// The `k` best completions of the direction's query.
    TopK { dir: Direction, first: usize, second: usize, k: usize },
}

/// Which batch a request can ride in: triple scores batch together, row
/// queries batch per direction (one GEMM block each).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    Score,
    Row(Direction),
}

impl Class {
    /// The public name of this class — the vocabulary admission errors and
    /// stats speak.
    fn public(self) -> RequestClass {
        match self {
            Class::Score => RequestClass::Score,
            Class::Row(Direction::Tails) => RequestClass::Tails,
            Class::Row(Direction::Heads) => RequestClass::Heads,
        }
    }

    /// Index into per-class arrays (caps, histograms) — the
    /// [`RequestClass::ALL`] order.
    fn index(self) -> usize {
        match self {
            Class::Score => 0,
            Class::Row(Direction::Tails) => 1,
            Class::Row(Direction::Heads) => 2,
        }
    }
}

impl RequestClass {
    /// The engine-internal class this public name denotes.
    fn internal(self) -> Class {
        match self {
            RequestClass::Score => Class::Score,
            RequestClass::Tails => Class::Row(Direction::Tails),
            RequestClass::Heads => Class::Row(Direction::Heads),
        }
    }
}

impl Request {
    fn class(&self) -> Class {
        match self {
            Request::Score { .. } => Class::Score,
            Request::Rank { dir, .. } | Request::TopK { dir, .. } => Class::Row(*dir),
        }
    }

    /// The `(entity, relation)` or `(relation, entity)` pair handed to the
    /// batch scorer for row requests.
    fn query(&self) -> (usize, usize) {
        match *self {
            Request::Rank { dir: Direction::Tails, h, r, .. } => (h, r),
            Request::Rank { dir: Direction::Heads, r, t, .. } => (r, t),
            Request::TopK { first, second, .. } => (first, second),
            Request::Score { .. } => unreachable!("score requests carry no row query"),
        }
    }
}

/// One request waiting in a class queue.
#[derive(Debug)]
struct Queued {
    /// Global arrival sequence number — the oldest-class-first key.
    seq: u64,
    /// Arrival time — the linger/deadline anchor and the latency
    /// histogram's start mark.
    arrived: Instant,
    /// The client key this request was submitted under
    /// ([`KgEngine::client`]), `None` for anonymous submissions.
    client: Option<u64>,
    request: Request,
    ticket: Arc<TicketInner>,
}

/// A batch cut off a class queue, ready for dispatch. Entries keep their
/// queue metadata so the settle path can record submit→settle latency.
type Batch = Vec<Queued>;

/// One client's FIFO run inside a [`ClassQueue`].
#[derive(Debug)]
struct ClientLane {
    key: Option<u64>,
    q: VecDeque<Queued>,
}

/// One class's queue: a ring of per-client FIFO lanes.
///
/// With fair dequeue off — or when no submitter uses a client key — every
/// request lands in a single `None` lane and the queue degenerates to the
/// plain FIFO deque it used to be, at the same O(1) cost. With keys in
/// play, [`ClassQueue::pop_rr`] takes one request from the front lane and
/// rotates it to the back: block cuts round-robin across clients while
/// each client's own requests stay strictly FIFO, so one greedy client can
/// fill the queue but cannot monopolise the blocks cut from it.
#[derive(Debug, Default)]
struct ClassQueue {
    lanes: VecDeque<ClientLane>,
    len: usize,
}

impl ClassQueue {
    fn push(&mut self, item: Queued, fair: bool) {
        let key = if fair { item.client } else { None };
        self.len += 1;
        match self.lanes.iter_mut().find(|lane| lane.key == key) {
            Some(lane) => lane.q.push_back(item),
            None => self.lanes.push_back(ClientLane { key, q: VecDeque::from([item]) }),
        }
    }

    /// The queue's globally oldest request (minimum arrival sequence
    /// across the lane fronts) — the oldest-class-first and linger anchor.
    fn front(&self) -> Option<&Queued> {
        self.lanes.iter().filter_map(|lane| lane.q.front()).min_by_key(|q| q.seq)
    }

    /// Pop one request round-robin: the front lane's front request, the
    /// lane rotating to the back (and evaporating once empty).
    fn pop_rr(&mut self) -> Option<Queued> {
        let mut lane = self.lanes.pop_front()?;
        let item = lane.q.pop_front().expect("queue lanes are never empty");
        if !lane.q.is_empty() {
            self.lanes.push_back(lane);
        }
        self.len -= 1;
        Some(item)
    }

    /// Empty the queue, yielding every request in lane order.
    fn drain_all(&mut self) -> impl Iterator<Item = Queued> {
        self.len = 0;
        std::mem::take(&mut self.lanes).into_iter().flat_map(|lane| lane.q)
    }
}

/// Queue shared between clients, dispatcher and `Drop`.
///
/// Requests live in one [`ClassQueue`] per [`Class`], tagged with a global
/// arrival sequence number: the dispatcher picks the class whose oldest
/// request arrived first, then cuts a block round-robin across that
/// class's client lanes — O(1) per request (plus a lane scan bounded by
/// the number of distinct client keys), whatever the class mix.
#[derive(Debug, Default)]
struct QueueState {
    score: ClassQueue,
    tails: ClassQueue,
    heads: ClassQueue,
    next_seq: u64,
    shutdown: bool,
    /// Set on an infrastructure failure (worker crew hung up, dispatcher
    /// panicked): every in-flight, pending and future request fails with
    /// this message. Model panics do *not* poison — they are isolated to
    /// the offending request.
    poisoned: Option<String>,
}

impl QueueState {
    fn queue(&self, class: Class) -> &ClassQueue {
        match class {
            Class::Score => &self.score,
            Class::Row(Direction::Tails) => &self.tails,
            Class::Row(Direction::Heads) => &self.heads,
        }
    }

    fn queue_mut(&mut self, class: Class) -> &mut ClassQueue {
        match class {
            Class::Score => &mut self.score,
            Class::Row(Direction::Tails) => &mut self.tails,
            Class::Row(Direction::Heads) => &mut self.heads,
        }
    }

    fn push(
        &mut self,
        request: Request,
        client: Option<u64>,
        ticket: Arc<TicketInner>,
        fair: bool,
        stats: &StatCells,
    ) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let class = request.class();
        let item = Queued { seq, arrived: Instant::now(), client, request, ticket };
        self.queue_mut(class).push(item, fair);
        stats.depth(class).fetch_add(1, Relaxed);
    }

    /// The class whose front request has waited longest (global FIFO
    /// across the per-class queues).
    fn oldest_class(&self) -> Option<Class> {
        [Class::Score, Class::Row(Direction::Tails), Class::Row(Direction::Heads)]
            .into_iter()
            .filter_map(|class| self.queue(class).front().map(|q| (q.seq, class)))
            .min_by_key(|(seq, _)| *seq)
            .map(|(_, class)| class)
    }

    /// Cut up to `max` *live* requests off `class`'s queue, round-robin
    /// across client lanes. Requests already past the engine's deadline
    /// are expired right here — settled with [`ServeError::Expired`],
    /// counted, latency-recorded — and never occupy a block slot, so an
    /// overloaded queue sheds its stale backlog at block-cut speed instead
    /// of wasting crew time scoring answers nobody is waiting for.
    fn pop_block(
        &mut self,
        class: Class,
        max: usize,
        deadline: Option<Duration>,
        stats: &StatCells,
    ) -> Batch {
        let now = Instant::now();
        let queue = self.queue_mut(class);
        let mut batch = Batch::with_capacity(max.min(queue.len));
        let mut first_client: Option<Option<u64>> = None;
        let mut mixed_clients = false;
        while batch.len() < max {
            let Some(item) = queue.pop_rr() else { break };
            stats.depth(class).fetch_sub(1, Relaxed);
            let waited = now.saturating_duration_since(item.arrived);
            if let Some(deadline) = deadline.filter(|d| waited > *d) {
                stats.queries_expired.fetch_add(1, Relaxed);
                stats.record_settle(class, item.arrived);
                item.ticket.fail(ServeError::Expired { class: class.public(), waited, deadline });
                continue;
            }
            match first_client {
                None => first_client = Some(item.client),
                Some(first) => mixed_clients |= first != item.client,
            }
            batch.push(item);
        }
        if mixed_clients {
            stats.fair_cuts.fetch_add(1, Relaxed);
        }
        batch
    }

    /// Fail every queued request with `why`, emptying the queues. Depths
    /// are decremented per request — never zeroed wholesale — so a counter
    /// leak anywhere else shows up as a non-zero final depth instead of
    /// being papered over here.
    fn drain_fail(&mut self, why: &str, stats: &StatCells) {
        for class in [Class::Score, Class::Row(Direction::Tails), Class::Row(Direction::Heads)] {
            for q in self.queue_mut(class).drain_all() {
                stats.queries_failed.fetch_add(1, Relaxed);
                stats.depth(class).fetch_sub(1, Relaxed);
                stats.record_settle(class, q.arrived);
                q.ticket.fail(ServeError::failed(why));
            }
        }
    }
}

/// Lock-free histogram cells backing one class's [`LatencyHistogram`].
#[derive(Debug, Default)]
struct HistCells([AtomicU64; LATENCY_BUCKETS]);

impl HistCells {
    fn snapshot(&self) -> LatencyHistogram {
        LatencyHistogram { buckets: std::array::from_fn(|i| self.0[i].load(Relaxed)) }
    }
}

/// Lock-free scheduler counters (all `Relaxed` — each counter is exact,
/// but a snapshot may straddle an in-flight block).
#[derive(Debug, Default)]
struct StatCells {
    queries_served: AtomicU64,
    queries_failed: AtomicU64,
    queries_shed: AtomicU64,
    queries_expired: AtomicU64,
    fair_cuts: AtomicU64,
    blocks_cut: AtomicU64,
    block_fill: AtomicU64,
    /// Total wall-clock nanoseconds from block dispatch to block answered,
    /// summed over all row blocks — with `blocks_cut`, the mean block
    /// service time the shed path's `retry_after` hint is derived from.
    block_nanos: AtomicU64,
    split_blocks: AtomicU64,
    blocks_overlapped: AtomicU64,
    lead_idle: AtomicU64,
    crew_idle: AtomicU64,
    depth_score: AtomicU64,
    depth_tails: AtomicU64,
    depth_heads: AtomicU64,
    hist_score: HistCells,
    hist_tails: HistCells,
    hist_heads: HistCells,
}

impl StatCells {
    fn depth(&self, class: Class) -> &AtomicU64 {
        match class {
            Class::Score => &self.depth_score,
            Class::Row(Direction::Tails) => &self.depth_tails,
            Class::Row(Direction::Heads) => &self.depth_heads,
        }
    }

    fn hist(&self, class: Class) -> &HistCells {
        match class {
            Class::Score => &self.hist_score,
            Class::Row(Direction::Tails) => &self.hist_tails,
            Class::Row(Direction::Heads) => &self.hist_heads,
        }
    }

    /// Record one settled request's submit→settle latency. Called at every
    /// settle site — answered, expired, failed — so each class's histogram
    /// count equals its admitted-and-settled request count.
    fn record_settle(&self, class: Class, arrived: Instant) {
        let nanos = u64::try_from(arrived.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.hist(class).0[bucket_index(nanos)].fetch_add(1, Relaxed);
    }

    /// Record a row block handed to (a sub-crew of) the worker crew.
    fn record_block(&self, fill: usize, split: bool) {
        self.blocks_cut.fetch_add(1, Relaxed);
        self.block_fill.fetch_add(fill as u64, Relaxed);
        if split {
            self.split_blocks.fetch_add(1, Relaxed);
        }
    }

    /// The shed path's backoff hint: the backlog a new request would sit
    /// behind, priced at the recent mean block service time (100 µs before
    /// the first block answers), clamped to a sane retry window.
    fn retry_hint(&self, depth: usize, block: usize) -> Duration {
        let per_block = self
            .block_nanos
            .load(Relaxed)
            .checked_div(self.blocks_cut.load(Relaxed))
            .map_or(100_000, |mean| mean.max(1));
        let backlog_blocks = (depth / block.max(1)) as u64 + 1;
        Duration::from_nanos(
            (per_block.saturating_mul(backlog_blocks)).clamp(10_000, 1_000_000_000),
        )
    }
}

/// A lock-free snapshot of the scheduler's counters — see
/// [`KgEngine::stats`].
///
/// Counters are monotone except the queue depths, which track the live
/// queues. Reading a snapshot never takes the queue lock, so it can be
/// polled from a metrics thread at any rate; individual counters are exact
/// but one snapshot may straddle an in-flight block (e.g. `blocks_cut`
/// already incremented, `queries_served` not yet).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineStats {
    /// Requests answered successfully since the engine started.
    pub queries_served: u64,
    /// Requests failed (model panic, shutdown, poisoning, rejected push).
    /// Deadline expiries are *not* counted here — see `queries_expired`.
    pub queries_failed: u64,
    /// Submissions refused at the door because their class queue was at
    /// its [`KgEngineBuilder::max_queued`] cap — never enqueued, no ticket
    /// created ([`crate::SubmitError::Shed`]).
    pub queries_shed: u64,
    /// Admitted requests dropped unscored because they outwaited the
    /// engine's [`KgEngineBuilder::deadline`]
    /// ([`crate::ServeError::Expired`]).
    pub queries_expired: u64,
    /// Block cuts that mixed requests from two or more distinct client
    /// keys — how often the round-robin fair dequeue actually interleaved
    /// clients (always zero without client keys or with
    /// [`KgEngineBuilder::fair_dequeue`] off).
    pub fair_cuts: u64,
    /// Row blocks dispatched to the crew (triple-score batches are
    /// answered inline and not counted here).
    pub blocks_cut: u64,
    /// Mean queries per dispatched row block — how full the batching queue
    /// manages to cut blocks (the GEMM-locality measure a linger budget
    /// improves). Zero before the first block.
    pub mean_block_fill: f64,
    /// Row blocks scored by a half crew while the opposite direction had
    /// work in flight or queued — how often split-crew mode engaged. (A
    /// direction that outlives the other is handed back to the full crew
    /// and counts as ordinary blocks again.)
    pub split_blocks: u64,
    /// Row blocks dispatched to the crew (or a sub-crew lane) *before* the
    /// previously scored block was stitched and answered — how often the
    /// double-buffered dispatch pipeline actually overlapped scoring with
    /// rank conversion.
    pub blocks_overlapped: u64,
    /// Times the dispatcher (the pipeline's lead) transitioned to waiting
    /// on the crew with nothing left to answer. A high rate relative to
    /// `blocks_cut` means scoring is the bottleneck — the healthy state.
    pub lead_idle: u64,
    /// Times the crew (or a sub-crew lane) finished a block with no
    /// follow-up block dispatched, leaving it idle until more work queued.
    /// A high rate under saturating row traffic means stitching/ranking or
    /// the queue lock is the bottleneck.
    pub crew_idle: u64,
    /// Triple-score requests currently queued.
    pub depth_score: u64,
    /// Tail row queries currently queued.
    pub depth_tails: u64,
    /// Head row queries currently queued.
    pub depth_heads: u64,
    /// Submit→settle latency of every settled triple-score request
    /// (answered, expired or failed).
    pub latency_score: LatencyHistogram,
    /// Submit→settle latency of every settled tail row query.
    pub latency_tails: LatencyHistogram,
    /// Submit→settle latency of every settled head row query.
    pub latency_heads: LatencyHistogram,
    /// The [`KernelPolicy`] every worker scores under — recorded so an
    /// operator reading a metrics snapshot can tell whether answers came
    /// from the bit-identical `Exact` tier or the relaxed-precision `Fast`
    /// tier (see [`KgEngineBuilder::policy`]).
    pub policy: KernelPolicy,
}

/// State shared by the engine handle, the dispatcher and submitters.
struct Shared {
    model: SharedModel,
    filter: FilterIndex,
    n_entities: usize,
    /// Relation vocabulary bound when known ([`KgEngine::builder`] takes it
    /// from the graph, [`KgEngine::with_filter`] from the model's own
    /// [`kg_models::LinkPredictor::n_relations`];
    /// [`KgEngineBuilder::relations`] overrides explicitly). `None` skips
    /// submit-time relation checks — a bad relation id then panics inside
    /// the model and fails that request.
    n_relations: Option<usize>,
    block: usize,
    linger: Duration,
    /// Per-class queue caps in [`RequestClass::ALL`] order — submissions
    /// against a full queue are shed at the door.
    max_queued: [usize; 3],
    /// Queueing-delay bound: requests older than this when their block is
    /// cut expire unscored. `None` disables deadline shedding.
    deadline: Option<Duration>,
    /// Round-robin block cutting across client lanes (`false` collapses
    /// every class to one strict-FIFO lane).
    fair: bool,
    /// Kernel policy every worker's scratch is built with — fixed for the
    /// engine's lifetime (see [`KgEngineBuilder::policy`]).
    policy: KernelPolicy,
    queue: Mutex<QueueState>,
    queue_cv: Condvar,
    stats: StatCells,
}

impl Shared {
    fn cap(&self, class: Class) -> usize {
        self.max_queued[class.index()]
    }
}

/// One scoring assignment for a worker: the block's queries (the worker
/// slices its own rows for query-split shards), the shard to score — per
/// job, because sub-crew layouts differ from the full-crew layout — the
/// lane the result routes back to, and the reusable output buffer.
struct Job {
    dir: Direction,
    queries: Arc<Vec<(usize, usize)>>,
    shard: WorkerShard,
    lane: usize,
    out: Vec<f32>,
}

enum WorkerMsg {
    Job(Job),
    Shutdown,
}

/// A worker's answer: its filled buffer, or the panic it caught.
struct WorkerDone {
    worker: usize,
    lane: usize,
    out: Result<Vec<f32>, String>,
}

/// Render a caught panic payload for ticket failure messages.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

/// Builder for [`KgEngine`] — see [`KgEngine::builder`].
///
/// ```
/// use kg_models::{blm::classics, BlmModel, Embeddings};
/// let mut rng = kg_linalg::SeededRng::new(2);
/// let model = BlmModel::new(classics::simple(), Embeddings::init(16, 2, 8, &mut rng));
/// let engine = kg_serve::KgEngine::with_filter(model, Default::default())
///     .threads(2)
///     .block(8)
///     .build();
/// assert_eq!(engine.n_entities(), 16);
/// ```
#[must_use = "the builder does nothing until build() is called"]
pub struct KgEngineBuilder {
    model: SharedModel,
    filter: FilterIndex,
    n_relations: Option<usize>,
    threads: usize,
    block: usize,
    linger: Duration,
    max_queued: [usize; 3],
    deadline: Option<Duration>,
    fair: bool,
    split_crew: bool,
    policy: KernelPolicy,
}

impl KgEngineBuilder {
    /// Default per-class queue cap: 64 full blocks of backlog per class.
    /// Deep enough that no sane closed-loop workload ever sheds, shallow
    /// enough that a runaway open-loop client bounds queue memory and
    /// queueing delay instead of growing both forever.
    pub const DEFAULT_MAX_QUEUED: usize = 4096;

    /// Size of the persistent worker crew (default 1). Models with native
    /// shard scoring get one even entity shard per worker (capped at the
    /// table size); others get the block's query rows split evenly. The
    /// crew is clamped to the entity count — a worker per entity is the
    /// most any layout can use, so `threads(1_000)` over a 12-entity model
    /// builds a 12-worker crew instead of parking 988 threads on
    /// permanently empty shards.
    ///
    /// ```
    /// # use kg_models::{blm::classics, BlmModel, Embeddings};
    /// # let mut rng = kg_linalg::SeededRng::new(3);
    /// # let model = BlmModel::new(classics::simple(), Embeddings::init(10, 2, 8, &mut rng));
    /// let engine = kg_serve::KgEngine::with_filter(model, Default::default()).threads(4).build();
    /// assert_eq!(engine.threads(), 4);
    /// ```
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Maximum queries batched into one scoring block (default
    /// [`kg_eval::engine::BLOCK`] = 64, the same block size offline ranking
    /// uses). `block(1)` disables batching — every request is its own
    /// dispatch, the "one-at-a-time" baseline the microbenchmark compares
    /// against.
    ///
    /// ```
    /// # use kg_models::{blm::classics, BlmModel, Embeddings};
    /// # let mut rng = kg_linalg::SeededRng::new(4);
    /// # let model = BlmModel::new(classics::simple(), Embeddings::init(10, 2, 8, &mut rng));
    /// let engine = kg_serve::KgEngine::with_filter(model, Default::default()).block(1).build();
    /// assert_eq!(engine.block(), 1);
    /// ```
    pub fn block(mut self, queries: usize) -> Self {
        self.block = queries;
        self
    }

    /// Let a partially filled row block wait up to `budget` for
    /// co-batchable queries before it is cut (default zero: cut as soon as
    /// the crew is free, today's latency-first behaviour). The deadline is
    /// anchored to the block's *oldest* request, so no query is ever
    /// delayed more than `budget` by lingering; a block that fills to
    /// [`KgEngineBuilder::block`] is cut immediately. Microseconds of
    /// added latency buy full-block GEMM locality on trickling traffic.
    ///
    /// ```
    /// # use kg_models::{blm::classics, BlmModel, Embeddings};
    /// # use std::time::Duration;
    /// # let mut rng = kg_linalg::SeededRng::new(21);
    /// # let model = BlmModel::new(classics::simple(), Embeddings::init(10, 2, 8, &mut rng));
    /// let engine = kg_serve::KgEngine::with_filter(model, Default::default())
    ///     .linger(Duration::from_micros(200))
    ///     .build();
    /// assert_eq!(engine.rank_tail(0, 0, 1), engine.rank_tail(0, 0, 1)); // answers unchanged
    /// ```
    pub fn linger(mut self, budget: Duration) -> Self {
        self.linger = budget;
        self
    }

    /// Enable or disable dual-direction draining (default enabled): with
    /// two or more workers, a crew may split into two sub-crews and score
    /// one tail and one head block concurrently whenever both directions
    /// are queued. Disabling restores the strictly serialised
    /// one-block-at-a-time dispatcher (the microbenchmark's baseline).
    /// Answers are bit-identical either way.
    ///
    /// ```
    /// # use kg_models::{blm::classics, BlmModel, Embeddings};
    /// # let mut rng = kg_linalg::SeededRng::new(22);
    /// # let model = BlmModel::new(classics::simple(), Embeddings::init(10, 2, 8, &mut rng));
    /// let engine = kg_serve::KgEngine::with_filter(model, Default::default())
    ///     .threads(2)
    ///     .split_crew(false)
    ///     .build();
    /// assert!(engine.rank_head(0, 0, 1) >= 1.0);
    /// ```
    pub fn split_crew(mut self, enabled: bool) -> Self {
        self.split_crew = enabled;
        self
    }

    /// Pick the [`KernelPolicy`] every worker scores under, fixed for the
    /// engine's lifetime (default: resolved from the environment via
    /// [`KernelPolicy::default_from_env`], i.e. `Exact` unless
    /// `KG_KERNEL_POLICY=fast` is set). `Exact` keeps the engine's answers
    /// bit-identical to the scalar reference; `Fast` lets GEMM-backed
    /// models use the relaxed-precision FMA tier where the CPU supports
    /// it, trading bit-identity for throughput. The chosen policy is
    /// recorded in [`EngineStats::policy`] so snapshots say which tier
    /// produced the answers.
    ///
    /// ```
    /// # use kg_models::{blm::classics, BlmModel, Embeddings, KernelPolicy};
    /// # let mut rng = kg_linalg::SeededRng::new(41);
    /// # let model = BlmModel::new(classics::simple(), Embeddings::init(10, 2, 8, &mut rng));
    /// let engine = kg_serve::KgEngine::with_filter(model, Default::default())
    ///     .policy(KernelPolicy::Exact)
    ///     .build();
    /// assert_eq!(engine.stats().policy, KernelPolicy::Exact);
    /// ```
    pub fn policy(mut self, policy: KernelPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Declare the relation vocabulary size so out-of-range relation ids
    /// are rejected at submission, on the caller's thread, instead of
    /// panicking inside a worker. Rarely needed explicitly:
    /// [`KgEngine::builder`] sets this from the graph, and
    /// [`KgEngine::with_filter`] already derives it from the model's own
    /// [`kg_models::LinkPredictor::n_relations`] — this override exists for
    /// models that cannot report a bound (it is then the caller's only way
    /// to get submit-time validation).
    ///
    /// ```
    /// # use kg_models::{blm::classics, BlmModel, Embeddings};
    /// # let mut rng = kg_linalg::SeededRng::new(8);
    /// # let model = BlmModel::new(classics::simple(), Embeddings::init(10, 2, 8, &mut rng));
    /// let engine =
    ///     kg_serve::KgEngine::with_filter(model, Default::default()).relations(2).build();
    /// let bad = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
    ///     engine.score(0, 9, 1)
    /// }));
    /// assert!(bad.is_err()); // rejected at submit — the engine stays up
    /// assert!(engine.score(0, 1, 1).is_finite());
    /// ```
    pub fn relations(mut self, n: usize) -> Self {
        self.n_relations = Some(n);
        self
    }

    /// Cap `class`'s queue at `n` requests (default
    /// [`KgEngineBuilder::DEFAULT_MAX_QUEUED`] per class). A `submit_*`
    /// call against a full queue returns [`crate::SubmitError::Shed`] on
    /// the caller's thread — nothing is enqueued, so queue memory and
    /// worst-case queueing delay stay bounded however fast clients push.
    /// Use `usize::MAX` to restore the old unbounded behaviour.
    ///
    /// # Panics
    /// Panics if `n` is zero — a cap of zero would shed every request.
    ///
    /// ```
    /// # use kg_models::{blm::classics, BlmModel, Embeddings};
    /// # use kg_serve::RequestClass;
    /// # let mut rng = kg_linalg::SeededRng::new(31);
    /// # let model = BlmModel::new(classics::simple(), Embeddings::init(10, 2, 8, &mut rng));
    /// let engine = kg_serve::KgEngine::with_filter(model, Default::default())
    ///     .max_queued(RequestClass::Tails, 256)
    ///     .build();
    /// assert!(engine.submit_rank_tail(0, 0, 1).is_ok()); // far below the cap
    /// ```
    pub fn max_queued(mut self, class: RequestClass, n: usize) -> Self {
        assert!(n > 0, "a queue cap of zero would shed every {class} request");
        self.max_queued[class.internal().index()] = n;
        self
    }

    /// Expire requests still queued after `limit` (default: no deadline).
    /// The dispatcher drops expired requests when it cuts their block —
    /// *before* any crew time is spent scoring them — failing the ticket
    /// with [`crate::ServeError::Expired`]. Under overload this converts
    /// stale backlog into fast typed failures instead of late answers:
    /// clients that have stopped waiting no longer consume the crew.
    ///
    /// ```
    /// # use kg_models::{blm::classics, BlmModel, Embeddings};
    /// # use std::time::Duration;
    /// # let mut rng = kg_linalg::SeededRng::new(32);
    /// # let model = BlmModel::new(classics::simple(), Embeddings::init(10, 2, 8, &mut rng));
    /// let engine = kg_serve::KgEngine::with_filter(model, Default::default())
    ///     .deadline(Duration::from_secs(5))
    ///     .build();
    /// // An idle engine answers far inside a generous deadline.
    /// assert!(engine.rank_tail(0, 0, 1) >= 1.0);
    /// ```
    pub fn deadline(mut self, limit: Duration) -> Self {
        self.deadline = Some(limit);
        self
    }

    /// Enable or disable per-client fair dequeue (default enabled). When
    /// enabled, requests submitted through [`KgEngine::client`] queue in
    /// per-client FIFO lanes and block cuts round-robin across the lanes,
    /// so a greedy client that fills a queue cannot monopolise the blocks
    /// cut from it; anonymous submissions share one lane. Disabling
    /// restores strict arrival-order FIFO regardless of client keys.
    /// Answers are bit-identical either way — fairness only reorders which
    /// requests share a block, never what any request answers.
    ///
    /// ```
    /// # use kg_models::{blm::classics, BlmModel, Embeddings};
    /// # let mut rng = kg_linalg::SeededRng::new(33);
    /// # let model = BlmModel::new(classics::simple(), Embeddings::init(10, 2, 8, &mut rng));
    /// let engine =
    ///     kg_serve::KgEngine::with_filter(model, Default::default()).fair_dequeue(false).build();
    /// let ticket = engine.client(7).submit_rank_tail(0, 0, 1).expect("admitted");
    /// assert!(ticket.wait() >= 1.0);
    /// ```
    pub fn fair_dequeue(mut self, enabled: bool) -> Self {
        self.fair = enabled;
        self
    }

    /// Spawn the dispatcher and worker crew and return the ready engine.
    ///
    /// # Panics
    /// Panics if `threads` or `block` is zero.
    ///
    /// ```
    /// # use kg_models::{blm::classics, BlmModel, Embeddings};
    /// # let mut rng = kg_linalg::SeededRng::new(5);
    /// # let model = BlmModel::new(classics::distmult(), Embeddings::init(10, 2, 8, &mut rng));
    /// let engine = kg_serve::KgEngine::with_filter(model, Default::default()).build();
    /// let _ = engine.score(0, 0, 1);
    /// ```
    pub fn build(self) -> KgEngine {
        assert!(self.threads > 0, "KgEngine needs at least one worker thread");
        assert!(self.block > 0, "KgEngine needs a block size of at least one query");
        // Clamp the crew: beyond one worker per entity every layout hands
        // out width-0 entity shards or empty query slices — threads that
        // would park forever doing nothing.
        let threads = self.threads.min(self.model.n_entities().max(1));
        let shared = Arc::new(Shared {
            n_entities: self.model.n_entities(),
            model: self.model,
            filter: self.filter,
            n_relations: self.n_relations,
            block: self.block,
            linger: self.linger,
            max_queued: self.max_queued,
            deadline: self.deadline,
            fair: self.fair,
            policy: self.policy,
            queue: Mutex::new(QueueState::default()),
            queue_cv: Condvar::new(),
            stats: StatCells::default(),
        });
        // Crew layouts are fixed for the engine's lifetime: the full-crew
        // plan (the same shard plan the offline parallel ranker would
        // pick) and, when dual-direction draining is possible, one plan
        // per sub-crew.
        let full_plan = plan_shards(&shared.model, threads);
        let n_workers = full_plan.len();
        let split_plans =
            (self.split_crew && n_workers >= 2).then(|| split_plan(&shared.model, n_workers));
        let (done_tx, done_rx) = channel::<WorkerDone>();
        let mut senders = Vec::with_capacity(n_workers);
        let mut workers = Vec::with_capacity(n_workers);
        for idx in 0..n_workers {
            let (job_tx, job_rx) = channel::<WorkerMsg>();
            senders.push(job_tx);
            let model = Arc::clone(&shared.model);
            let done = done_tx.clone();
            let n_entities = shared.n_entities;
            let policy = shared.policy;
            workers.push(
                std::thread::Builder::new()
                    .name(format!("kg-serve-worker-{idx}"))
                    .spawn(move || worker_loop(model, n_entities, policy, idx, job_rx, done))
                    .expect("spawn kg-serve worker"),
            );
        }
        drop(done_tx);
        let dispatcher_shared = Arc::clone(&shared);
        let dispatcher = std::thread::Builder::new()
            .name("kg-serve-dispatcher".to_string())
            .spawn(move || {
                dispatcher_thread(dispatcher_shared, full_plan, split_plans, senders, done_rx)
            })
            .expect("spawn kg-serve dispatcher");
        KgEngine { shared, dispatcher: Some(dispatcher), workers }
    }
}

/// An online link-prediction engine: request-level scoring, ranking and
/// top-k over a shared model, with single queries transparently batched
/// into GEMM blocks and sharded across a persistent worker crew by a
/// latency-aware dispatcher (see the [crate docs](crate) for the
/// scheduling policy).
///
/// Construct via [`KgEngine::builder`] (filtered ranking against a
/// [`Dataset`]'s known positives) or [`KgEngine::with_filter`] (explicit —
/// possibly empty — [`FilterIndex`]). All request methods are `&self` and
/// thread-safe: share the engine behind an [`Arc`] (or scoped-thread
/// reference) and submit from as many client threads as you like.
///
/// ```
/// use kg_core::{Dataset, Triple};
/// use kg_models::{blm::classics, BlmModel, Embeddings, KernelPolicy, LinkPredictor};
///
/// let mut rng = kg_linalg::SeededRng::new(11);
/// let model = BlmModel::new(classics::complex(), Embeddings::init(30, 2, 8, &mut rng));
/// let graph = Dataset::with_vocab("toy", 30, 2, vec![Triple::new(0, 0, 1)], vec![], vec![]);
///
/// // Under the exact kernel tier the engine answers exactly — bit for
/// // bit — what the per-query reference would.
/// let mut row = vec![0.0f32; 30];
/// model.score_tails(4, 1, &mut row);
/// let reference = kg_eval::top_k(&row, 5);
///
/// let engine = kg_serve::KgEngine::builder(model, &graph)
///     .threads(2)
///     .block(16)
///     .policy(KernelPolicy::Exact)
///     .build();
/// assert_eq!(engine.top_k_tails(4, 1, 5), reference);
/// ```
pub struct KgEngine {
    shared: Arc<Shared>,
    dispatcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl KgEngine {
    /// Start building an engine that serves `model` with filtered ranking
    /// against every known positive of `graph` (train + valid + test — the
    /// standard filtered-evaluation convention). The graph also supplies
    /// the relation vocabulary bound for submit-time validation.
    ///
    /// `model` is anything implementing [`BatchScorer`] — a concrete model,
    /// or an already-shared `Arc<dyn BatchScorer + Send + Sync>` (the
    /// pointer forwarding impls in `kg-models` keep its GEMM overrides).
    ///
    /// ```
    /// use kg_core::{Dataset, Triple};
    /// use kg_models::{blm::classics, BlmModel, Embeddings};
    /// let mut rng = kg_linalg::SeededRng::new(12);
    /// let model = BlmModel::new(classics::simple(), Embeddings::init(20, 2, 8, &mut rng));
    /// let graph = Dataset::with_vocab("toy", 20, 2, vec![Triple::new(0, 0, 1)], vec![], vec![]);
    /// let engine = kg_serve::KgEngine::builder(model, &graph).build();
    /// // (0, 0, 1) is a known positive, so it is excluded when ranking
    /// // other tails for (0, 0, ·).
    /// assert!(engine.rank_tail(0, 0, 2) >= 1.0);
    /// ```
    pub fn builder<M: BatchScorer + Send + Sync + 'static>(
        model: M,
        graph: &Dataset,
    ) -> KgEngineBuilder {
        KgEngine::with_filter(model, FilterIndex::from_dataset(graph)).relations(graph.n_relations)
    }

    /// Start building an engine with an explicit filter index (use
    /// `FilterIndex::default()` for unfiltered ranking). The relation
    /// vocabulary bound is derived from the model's own
    /// [`kg_models::LinkPredictor::n_relations`] when it reports one, so an
    /// out-of-range relation id is rejected at submit time instead of
    /// panicking a worker — [`KgEngineBuilder::relations`] overrides it.
    ///
    /// ```
    /// use kg_models::{blm::classics, BlmModel, Embeddings};
    /// let mut rng = kg_linalg::SeededRng::new(13);
    /// let model = BlmModel::new(classics::analogy(), Embeddings::init(20, 2, 8, &mut rng));
    /// let engine = kg_serve::KgEngine::with_filter(model, Default::default()).build();
    /// assert!(engine.rank_tail(0, 0, 3) >= 1.0);
    /// ```
    pub fn with_filter<M: BatchScorer + Send + Sync + 'static>(
        model: M,
        filter: FilterIndex,
    ) -> KgEngineBuilder {
        let n_relations = model.n_relations();
        KgEngineBuilder {
            model: Arc::new(model),
            filter,
            n_relations,
            threads: 1,
            block: BLOCK,
            linger: Duration::ZERO,
            max_queued: [KgEngineBuilder::DEFAULT_MAX_QUEUED; 3],
            deadline: None,
            fair: true,
            split_crew: true,
            policy: KernelPolicy::default_from_env(),
        }
    }

    /// Number of entities the served model ranks over.
    ///
    /// ```
    /// # use kg_models::{blm::classics, BlmModel, Embeddings};
    /// # let mut rng = kg_linalg::SeededRng::new(14);
    /// # let model = BlmModel::new(classics::simple(), Embeddings::init(20, 2, 8, &mut rng));
    /// let engine = kg_serve::KgEngine::with_filter(model, Default::default()).build();
    /// assert_eq!(engine.n_entities(), 20);
    /// ```
    pub fn n_entities(&self) -> usize {
        self.shared.n_entities
    }

    /// Size of the worker crew this engine runs (after clamping to the
    /// entity count — see [`KgEngineBuilder::threads`]).
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Maximum queries per scoring block this engine was built with.
    pub fn block(&self) -> usize {
        self.shared.block
    }

    /// A lock-free snapshot of the scheduler counters — see
    /// [`EngineStats`]. Never blocks submitters or the dispatcher.
    ///
    /// ```
    /// # use kg_models::{blm::classics, BlmModel, Embeddings};
    /// # let mut rng = kg_linalg::SeededRng::new(23);
    /// # let model = BlmModel::new(classics::simple(), Embeddings::init(10, 2, 8, &mut rng));
    /// let engine = kg_serve::KgEngine::with_filter(model, Default::default()).build();
    /// let _ = engine.rank_tail(0, 0, 1);
    /// let stats = engine.stats();
    /// assert_eq!(stats.queries_served, 1);
    /// assert_eq!(stats.blocks_cut, 1);
    /// assert_eq!(stats.mean_block_fill, 1.0);
    /// ```
    pub fn stats(&self) -> EngineStats {
        snapshot_stats(&self.shared.stats, self.shared.policy)
    }

    /// A detachable stats reader: the probe holds its own reference to the
    /// engine's counters, so metrics threads — and shutdown tests — can
    /// keep snapshotting after the engine itself is dropped (the final
    /// snapshot shows the drained queues: all depths zero, every admitted
    /// request settled).
    ///
    /// ```
    /// # use kg_models::{blm::classics, BlmModel, Embeddings};
    /// # let mut rng = kg_linalg::SeededRng::new(35);
    /// # let model = BlmModel::new(classics::simple(), Embeddings::init(10, 2, 8, &mut rng));
    /// let engine = kg_serve::KgEngine::with_filter(model, Default::default()).build();
    /// let probe = engine.stats_probe();
    /// let _ = engine.rank_tail(0, 0, 1);
    /// drop(engine);
    /// let last = probe.stats();
    /// assert_eq!(last.queries_served, 1);
    /// assert_eq!((last.depth_score, last.depth_tails, last.depth_heads), (0, 0, 0));
    /// ```
    pub fn stats_probe(&self) -> StatsProbe {
        StatsProbe { shared: Arc::clone(&self.shared) }
    }

    /// Plausibility score of one triple — bit-identical to
    /// [`kg_models::LinkPredictor::score_triple`] on the served model.
    /// Blocking shorthand for [`KgEngine::submit_score`]` + wait`.
    ///
    /// ```
    /// use kg_models::{blm::classics, BlmModel, Embeddings, LinkPredictor};
    /// let mut rng = kg_linalg::SeededRng::new(15);
    /// let model = BlmModel::new(classics::distmult(), Embeddings::init(20, 2, 8, &mut rng));
    /// let reference = model.score_triple(2, 1, 9);
    /// let engine = kg_serve::KgEngine::with_filter(model, Default::default()).build();
    /// assert_eq!(engine.score(2, 1, 9), reference);
    /// ```
    pub fn score(&self, h: usize, r: usize, t: usize) -> f32 {
        self.submit_score(h, r, t).unwrap_or_else(|e| panic!("kg-serve: {e}")).wait()
    }

    /// Filtered rank of tail `t` among all completions of `(h, r, ·)` —
    /// ties count half, known positives other than `t` are excluded.
    /// Bit-identical to scoring the row with
    /// [`kg_models::LinkPredictor::score_tails`] and calling
    /// [`kg_eval::ranking::filtered_rank`] — an exact-tier guarantee
    /// (see [`KgEngineBuilder::policy`]).
    ///
    /// ```
    /// use kg_models::{blm::classics, BlmModel, Embeddings, KernelPolicy, LinkPredictor};
    /// let mut rng = kg_linalg::SeededRng::new(16);
    /// let model = BlmModel::new(classics::complex(), Embeddings::init(20, 2, 8, &mut rng));
    /// let mut row = vec![0.0f32; 20];
    /// model.score_tails(3, 0, &mut row);
    /// let reference = kg_eval::filtered_rank(&row, 8, &[]);
    /// let engine = kg_serve::KgEngine::with_filter(model, Default::default())
    ///     .policy(KernelPolicy::Exact)
    ///     .build();
    /// assert_eq!(engine.rank_tail(3, 0, 8), reference);
    /// ```
    pub fn rank_tail(&self, h: usize, r: usize, t: usize) -> f64 {
        self.submit_rank_tail(h, r, t).unwrap_or_else(|e| panic!("kg-serve: {e}")).wait()
    }

    /// Filtered rank of head `h` among all completions of `(·, r, t)` — the
    /// head-direction counterpart of [`KgEngine::rank_tail`].
    ///
    /// ```
    /// use kg_models::{blm::classics, BlmModel, Embeddings, KernelPolicy, LinkPredictor};
    /// let mut rng = kg_linalg::SeededRng::new(17);
    /// let model = BlmModel::new(classics::simple(), Embeddings::init(20, 2, 8, &mut rng));
    /// let mut row = vec![0.0f32; 20];
    /// model.score_heads(0, 9, &mut row);
    /// let reference = kg_eval::filtered_rank(&row, 4, &[]);
    /// let engine = kg_serve::KgEngine::with_filter(model, Default::default())
    ///     .policy(KernelPolicy::Exact)
    ///     .build();
    /// assert_eq!(engine.rank_head(4, 0, 9), reference);
    /// ```
    pub fn rank_head(&self, h: usize, r: usize, t: usize) -> f64 {
        self.submit_rank_head(h, r, t).unwrap_or_else(|e| panic!("kg-serve: {e}")).wait()
    }

    /// The `k` best tail completions of `(h, r, ·)` as `(entity, score)`
    /// pairs, deterministically ordered (score descending, ties by entity
    /// id ascending — [`kg_eval::ranking::top_k`] on the unfiltered row;
    /// matching the per-query row bitwise is an exact-tier guarantee, see
    /// [`KgEngineBuilder::policy`]).
    ///
    /// ```
    /// use kg_models::{blm::classics, BlmModel, Embeddings, KernelPolicy, LinkPredictor};
    /// let mut rng = kg_linalg::SeededRng::new(18);
    /// let model = BlmModel::new(classics::analogy(), Embeddings::init(20, 2, 8, &mut rng));
    /// let mut row = vec![0.0f32; 20];
    /// model.score_tails(1, 1, &mut row);
    /// let reference = kg_eval::top_k(&row, 4);
    /// let engine = kg_serve::KgEngine::with_filter(model, Default::default())
    ///     .policy(KernelPolicy::Exact)
    ///     .build();
    /// assert_eq!(engine.top_k_tails(1, 1, 4), reference);
    /// ```
    pub fn top_k_tails(&self, h: usize, r: usize, k: usize) -> Vec<(usize, f32)> {
        self.submit_top_k_tails(h, r, k).unwrap_or_else(|e| panic!("kg-serve: {e}")).wait()
    }

    /// The `k` best head completions of `(·, r, t)` — the head-direction
    /// counterpart of [`KgEngine::top_k_tails`].
    ///
    /// ```
    /// use kg_models::{blm::classics, BlmModel, Embeddings, KernelPolicy, LinkPredictor};
    /// let mut rng = kg_linalg::SeededRng::new(19);
    /// let model = BlmModel::new(classics::distmult(), Embeddings::init(20, 2, 8, &mut rng));
    /// let mut row = vec![0.0f32; 20];
    /// model.score_heads(1, 6, &mut row);
    /// let reference = kg_eval::top_k(&row, 2);
    /// let engine = kg_serve::KgEngine::with_filter(model, Default::default())
    ///     .policy(KernelPolicy::Exact)
    ///     .build();
    /// assert_eq!(engine.top_k_heads(1, 6, 2), reference);
    /// ```
    pub fn top_k_heads(&self, r: usize, t: usize, k: usize) -> Vec<(usize, f32)> {
        self.submit_top_k_heads(r, t, k).unwrap_or_else(|e| panic!("kg-serve: {e}")).wait()
    }

    /// Enqueue a triple-score request without blocking; see
    /// [`KgEngine::score`] and [`ScoreTicket`]. Sheds (instead of
    /// enqueueing) when the score queue is at its cap — see
    /// [`KgEngineBuilder::max_queued`].
    pub fn submit_score(&self, h: usize, r: usize, t: usize) -> Result<ScoreTicket, SubmitError> {
        self.submit_score_keyed(None, h, r, t)
    }

    /// Enqueue a tail-rank request without blocking; see
    /// [`KgEngine::rank_tail`], [`RankTicket`] and
    /// [`KgEngineBuilder::max_queued`].
    pub fn submit_rank_tail(
        &self,
        h: usize,
        r: usize,
        t: usize,
    ) -> Result<RankTicket, SubmitError> {
        self.submit_rank_tail_keyed(None, h, r, t)
    }

    /// Enqueue a head-rank request without blocking; see
    /// [`KgEngine::rank_head`], [`RankTicket`] and
    /// [`KgEngineBuilder::max_queued`].
    pub fn submit_rank_head(
        &self,
        h: usize,
        r: usize,
        t: usize,
    ) -> Result<RankTicket, SubmitError> {
        self.submit_rank_head_keyed(None, h, r, t)
    }

    /// Enqueue a tail top-k request without blocking; see
    /// [`KgEngine::top_k_tails`], [`TopKTicket`] and
    /// [`KgEngineBuilder::max_queued`].
    pub fn submit_top_k_tails(
        &self,
        h: usize,
        r: usize,
        k: usize,
    ) -> Result<TopKTicket, SubmitError> {
        self.submit_top_k_tails_keyed(None, h, r, k)
    }

    /// Enqueue a head top-k request without blocking; see
    /// [`KgEngine::top_k_heads`], [`TopKTicket`] and
    /// [`KgEngineBuilder::max_queued`].
    pub fn submit_top_k_heads(
        &self,
        r: usize,
        t: usize,
        k: usize,
    ) -> Result<TopKTicket, SubmitError> {
        self.submit_top_k_heads_keyed(None, r, t, k)
    }

    /// A handle that tags every submission with `key`, giving this client
    /// its own FIFO lane in each class queue: with
    /// [`KgEngineBuilder::fair_dequeue`] enabled (the default), block cuts
    /// round-robin across client lanes, so one client flooding a queue
    /// cannot starve the others out of the blocks cut from it. Handles are
    /// cheap (`Copy`-sized borrow), answers are bit-identical to anonymous
    /// submission, and a client's own requests always settle in their
    /// submission order.
    ///
    /// ```
    /// # use kg_models::{blm::classics, BlmModel, Embeddings};
    /// # let mut rng = kg_linalg::SeededRng::new(34);
    /// # let model = BlmModel::new(classics::simple(), Embeddings::init(10, 2, 8, &mut rng));
    /// let engine = kg_serve::KgEngine::with_filter(model, Default::default()).build();
    /// let alice = engine.client(1);
    /// let bob = engine.client(2);
    /// let a = alice.submit_rank_tail(0, 0, 1).expect("admitted");
    /// let b = bob.submit_rank_tail(0, 0, 1).expect("admitted");
    /// assert_eq!(a.wait(), b.wait()); // same query, same answer
    /// ```
    pub fn client(&self, key: u64) -> ClientHandle<'_> {
        ClientHandle { engine: self, key }
    }

    fn submit_score_keyed(
        &self,
        client: Option<u64>,
        h: usize,
        r: usize,
        t: usize,
    ) -> Result<ScoreTicket, SubmitError> {
        self.check_entity(h);
        self.check_entity(t);
        self.check_relation(r);
        Ok(ScoreTicket { inner: self.enqueue(Request::Score { h, r, t }, client)? })
    }

    fn submit_rank_tail_keyed(
        &self,
        client: Option<u64>,
        h: usize,
        r: usize,
        t: usize,
    ) -> Result<RankTicket, SubmitError> {
        self.check_entity(h);
        self.check_entity(t);
        self.check_relation(r);
        let request = Request::Rank { dir: Direction::Tails, h, r, t };
        Ok(RankTicket { inner: self.enqueue(request, client)? })
    }

    fn submit_rank_head_keyed(
        &self,
        client: Option<u64>,
        h: usize,
        r: usize,
        t: usize,
    ) -> Result<RankTicket, SubmitError> {
        self.check_entity(h);
        self.check_entity(t);
        self.check_relation(r);
        let request = Request::Rank { dir: Direction::Heads, h, r, t };
        Ok(RankTicket { inner: self.enqueue(request, client)? })
    }

    fn submit_top_k_tails_keyed(
        &self,
        client: Option<u64>,
        h: usize,
        r: usize,
        k: usize,
    ) -> Result<TopKTicket, SubmitError> {
        self.check_entity(h);
        self.check_relation(r);
        let request = Request::TopK { dir: Direction::Tails, first: h, second: r, k };
        Ok(TopKTicket { inner: self.enqueue(request, client)? })
    }

    fn submit_top_k_heads_keyed(
        &self,
        client: Option<u64>,
        r: usize,
        t: usize,
        k: usize,
    ) -> Result<TopKTicket, SubmitError> {
        self.check_entity(t);
        self.check_relation(r);
        let request = Request::TopK { dir: Direction::Heads, first: r, second: t, k };
        Ok(TopKTicket { inner: self.enqueue(request, client)? })
    }

    fn check_entity(&self, e: usize) {
        assert!(
            e < self.shared.n_entities,
            "entity id {e} out of range for a {}-entity model",
            self.shared.n_entities
        );
    }

    /// Reject an out-of-range relation id on the caller's thread when the
    /// vocabulary bound is known — one malformed request must not panic a
    /// worker, and clients learn about their bad input at the submit site.
    fn check_relation(&self, r: usize) {
        if let Some(n) = self.shared.n_relations {
            assert!(r < n, "relation id {r} out of range for a {n}-relation graph");
        }
    }

    /// Admit a request — or shed it at the door. On a poisoned or
    /// shut-down engine the ticket is admitted and failed immediately (so
    /// `wait()` propagates the failure rather than hanging); on a class
    /// queue at its cap nothing is enqueued and the caller gets
    /// [`SubmitError::Shed`] with a backoff hint, on its own thread,
    /// before any engine resource was committed.
    fn enqueue(
        &self,
        request: Request,
        client: Option<u64>,
    ) -> Result<Arc<TicketInner>, SubmitError> {
        let stats = &self.shared.stats;
        let class = request.class();
        let ticket = TicketInner::new();
        let mut q = self.shared.queue.lock().expect("serve queue lock");
        if let Some(why) = &q.poisoned {
            stats.queries_failed.fetch_add(1, Relaxed);
            stats.record_settle(class, Instant::now());
            ticket.fail(ServeError::failed(why));
        } else if q.shutdown {
            stats.queries_failed.fetch_add(1, Relaxed);
            stats.record_settle(class, Instant::now());
            ticket.fail(ServeError::failed("engine shut down with the query still pending"));
        } else {
            let depth = q.queue(class).len;
            if depth >= self.shared.cap(class) {
                stats.queries_shed.fetch_add(1, Relaxed);
                return Err(SubmitError::Shed {
                    class: class.public(),
                    depth,
                    retry_after: stats.retry_hint(depth, self.shared.block),
                });
            }
            q.push(request, client, Arc::clone(&ticket), self.shared.fair, stats);
            self.shared.queue_cv.notify_one();
        }
        Ok(ticket)
    }
}

/// A per-client submission handle — see [`KgEngine::client`]. Each method
/// mirrors the engine's matching `submit_*`, tagging the request with this
/// handle's key so fair dequeue can round-robin across clients.
#[derive(Clone, Copy)]
pub struct ClientHandle<'a> {
    engine: &'a KgEngine,
    key: u64,
}

impl ClientHandle<'_> {
    /// Keyed [`KgEngine::submit_score`].
    pub fn submit_score(&self, h: usize, r: usize, t: usize) -> Result<ScoreTicket, SubmitError> {
        self.engine.submit_score_keyed(Some(self.key), h, r, t)
    }

    /// Keyed [`KgEngine::submit_rank_tail`].
    pub fn submit_rank_tail(
        &self,
        h: usize,
        r: usize,
        t: usize,
    ) -> Result<RankTicket, SubmitError> {
        self.engine.submit_rank_tail_keyed(Some(self.key), h, r, t)
    }

    /// Keyed [`KgEngine::submit_rank_head`].
    pub fn submit_rank_head(
        &self,
        h: usize,
        r: usize,
        t: usize,
    ) -> Result<RankTicket, SubmitError> {
        self.engine.submit_rank_head_keyed(Some(self.key), h, r, t)
    }

    /// Keyed [`KgEngine::submit_top_k_tails`].
    pub fn submit_top_k_tails(
        &self,
        h: usize,
        r: usize,
        k: usize,
    ) -> Result<TopKTicket, SubmitError> {
        self.engine.submit_top_k_tails_keyed(Some(self.key), h, r, k)
    }

    /// Keyed [`KgEngine::submit_top_k_heads`].
    pub fn submit_top_k_heads(
        &self,
        r: usize,
        t: usize,
        k: usize,
    ) -> Result<TopKTicket, SubmitError> {
        self.engine.submit_top_k_heads_keyed(Some(self.key), r, t, k)
    }
}

/// An engine-independent [`EngineStats`] reader — see
/// [`KgEngine::stats_probe`].
#[derive(Clone)]
pub struct StatsProbe {
    shared: Arc<Shared>,
}

impl StatsProbe {
    /// The same lock-free snapshot [`KgEngine::stats`] returns, valid
    /// before and after the engine is dropped.
    pub fn stats(&self) -> EngineStats {
        snapshot_stats(&self.shared.stats, self.shared.policy)
    }
}

/// Materialise a lock-free [`EngineStats`] snapshot from the live cells.
fn snapshot_stats(s: &StatCells, policy: KernelPolicy) -> EngineStats {
    let blocks_cut = s.blocks_cut.load(Relaxed);
    let block_fill = s.block_fill.load(Relaxed);
    EngineStats {
        queries_served: s.queries_served.load(Relaxed),
        queries_failed: s.queries_failed.load(Relaxed),
        queries_shed: s.queries_shed.load(Relaxed),
        queries_expired: s.queries_expired.load(Relaxed),
        fair_cuts: s.fair_cuts.load(Relaxed),
        blocks_cut,
        mean_block_fill: if blocks_cut == 0 { 0.0 } else { block_fill as f64 / blocks_cut as f64 },
        split_blocks: s.split_blocks.load(Relaxed),
        blocks_overlapped: s.blocks_overlapped.load(Relaxed),
        lead_idle: s.lead_idle.load(Relaxed),
        crew_idle: s.crew_idle.load(Relaxed),
        depth_score: s.depth_score.load(Relaxed),
        depth_tails: s.depth_tails.load(Relaxed),
        depth_heads: s.depth_heads.load(Relaxed),
        latency_score: s.hist_score.snapshot(),
        latency_tails: s.hist_tails.snapshot(),
        latency_heads: s.hist_heads.snapshot(),
        policy,
    }
}

impl Drop for KgEngine {
    /// Signal shutdown, fail still-pending requests, and join the
    /// dispatcher and every worker — never blocks on queued work and never
    /// leaks a thread, even after the engine was poisoned.
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().expect("serve queue lock");
            q.shutdown = true;
            self.shared.queue_cv.notify_all();
        }
        if let Some(dispatcher) = self.dispatcher.take() {
            // The dispatcher fails leftover tickets and closes the job
            // channels, which in turn stops the workers.
            let _ = dispatcher.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Worker-crew thread: score whatever [`Job`]s arrive against the shard
/// each job carries (full-crew and sub-crew layouts share the workers),
/// catching panics so a failing model override reaches the dispatcher as
/// an error instead of a dead thread.
fn worker_loop(
    model: SharedModel,
    n_entities: usize,
    policy: KernelPolicy,
    idx: usize,
    jobs: Receiver<WorkerMsg>,
    done: Sender<WorkerDone>,
) {
    let mut scratch = BatchScratch::with_policy(policy);
    while let Ok(WorkerMsg::Job(job)) = jobs.recv() {
        let mut out = job.out;
        let scored = catch_unwind(AssertUnwindSafe(|| {
            let rows = job.shard.rows(job.queries.len());
            let width = job.shard.width(n_entities);
            let queries = &job.queries[rows];
            out.resize(queries.len() * width, 0.0);
            score_block_shard(&model, job.dir, queries, &job.shard, &mut out, &mut scratch);
        }));
        let result = match scored {
            Ok(()) => Ok(out),
            Err(payload) => Err(panic_message(payload)),
        };
        if done.send(WorkerDone { worker: idx, lane: job.lane, out: result }).is_err() {
            return; // dispatcher gone: engine is shutting down
        }
    }
}

/// What the dispatcher decided to do after waiting (and possibly
/// lingering) on the queue.
enum Decision {
    Shutdown,
    /// A batch of triple-score requests, answered inline.
    Scores(Batch),
    /// One same-direction row block for the full crew.
    Single(Direction, Batch),
    /// Both directions are queued (and the crew can split): enter the
    /// dual-lane draining regime, which cuts its own blocks.
    Split,
}

/// Dispatcher thread: wait for work, cut blocks, fan them out to the crew
/// (whole or split), stitch the shard results and answer the tickets.
/// Wraps the loop in `catch_unwind` so an unexpected dispatcher panic
/// still fails outstanding tickets instead of stranding their clients.
fn dispatcher_thread(
    shared: Arc<Shared>,
    full_plan: Vec<WorkerShard>,
    split_plans: Option<(Vec<WorkerShard>, Vec<WorkerShard>)>,
    senders: Vec<Sender<WorkerMsg>>,
    done: Receiver<WorkerDone>,
) {
    let crashed = catch_unwind(AssertUnwindSafe(|| {
        dispatcher_loop(&shared, &full_plan, split_plans.as_ref(), &senders, &done)
    }));
    let why = match crashed {
        Ok(()) => return, // clean shutdown: tickets already settled
        Err(payload) => format!("dispatcher panicked: {}", panic_message(payload)),
    };
    let mut q = shared.queue.lock().expect("serve queue lock");
    q.poisoned.get_or_insert_with(|| why.clone());
    q.drain_fail(&why, &shared.stats);
    // Dropping `senders` (when this thread exits) closes the job channels
    // and the workers drain out on their own.
}

fn dispatcher_loop(
    shared: &Shared,
    full_plan: &[WorkerShard],
    split_plans: Option<&(Vec<WorkerShard>, Vec<WorkerShard>)>,
    senders: &[Sender<WorkerMsg>],
    done: &Receiver<WorkerDone>,
) {
    // Reusable buffers: *two* compact blocks per worker (round-tripped
    // through the job channel — the double buffer that lets block N+1
    // score while block N's results are still being stitched), one
    // stitched full-width block per lane, and one top-k selection scratch
    // per lane.
    let mut pool: Vec<Vec<Vec<f32>>> =
        (0..senders.len()).map(|_| vec![Vec::new(), Vec::new()]).collect();
    let mut stitched = [Vec::new(), Vec::new()];
    let mut topk: [Vec<(usize, f32)>; 2] = [Vec::new(), Vec::new()];
    loop {
        match next_decision(shared, split_plans.is_some()) {
            Decision::Shutdown => {
                let mut q = shared.queue.lock().expect("serve queue lock");
                q.drain_fail("engine shut down with the query still pending", &shared.stats);
                drop(q);
                for sender in senders {
                    let _ = sender.send(WorkerMsg::Shutdown);
                }
                return;
            }
            Decision::Scores(batch) => answer_scores(shared, batch),
            Decision::Single(dir, batch) => {
                run_serial_regime(
                    shared,
                    dir,
                    batch,
                    full_plan,
                    split_plans.is_some(),
                    senders,
                    done,
                    &mut pool,
                    &mut stitched[0],
                    &mut topk[0],
                );
            }
            Decision::Split => {
                let (plan_a, plan_b) = split_plans.expect("split decision requires sub-crew plans");
                run_split_regime(
                    shared,
                    plan_a,
                    plan_b,
                    senders,
                    done,
                    &mut pool,
                    &mut stitched,
                    &mut topk,
                );
            }
        }
    }
}

/// Wait until there is something to do, apply the linger budget, and
/// decide the next dispatch — see the module docs for the policy.
fn next_decision(shared: &Shared, can_split: bool) -> Decision {
    let mut q = shared.queue.lock().expect("serve queue lock");
    loop {
        if q.shutdown {
            return Decision::Shutdown;
        }
        let Some(class) = q.oldest_class() else {
            q = shared.queue_cv.wait(q).expect("serve queue wait");
            continue;
        };
        if let Class::Row(dir) = class {
            // Linger: an under-filled row block may wait for co-batchable
            // arrivals until its oldest request's linger deadline — capped
            // at the engine's expiry deadline, so a request never lingers
            // past the point where cutting would only expire it.
            // Re-evaluated from scratch after every wake-up, so a filled
            // block, a passed deadline or a shutdown all cut immediately.
            if !shared.linger.is_zero() && q.queue(class).len < shared.block {
                let budget = shared.deadline.map_or(shared.linger, |d| shared.linger.min(d));
                let cut_at =
                    q.queue(class).front().expect("oldest class is non-empty").arrived + budget;
                if let Some(remaining) = cut_at.checked_duration_since(Instant::now()) {
                    if !remaining.is_zero() {
                        let (guard, _) = shared
                            .queue_cv
                            .wait_timeout(q, remaining)
                            .expect("serve queue linger wait");
                        q = guard;
                        continue;
                    }
                }
            }
            if can_split && q.queue(Class::Row(dir.opposite())).len > 0 {
                return Decision::Split;
            }
            let batch = q.pop_block(class, shared.block, shared.deadline, &shared.stats);
            if batch.is_empty() {
                continue; // the whole cut expired: nothing to dispatch
            }
            return Decision::Single(dir, batch);
        }
        let batch = q.pop_block(class, shared.block, shared.deadline, &shared.stats);
        if batch.is_empty() {
            continue;
        }
        return Decision::Scores(batch);
    }
}

/// Answer a batch of triple-score requests inline — O(dim) each, no row to
/// shard. A panicking `score_triple` fails its own ticket only.
fn answer_scores(shared: &Shared, batch: Batch) {
    for item in batch {
        let Request::Score { h, r, t } = item.request else {
            unreachable!("score batch holds score requests")
        };
        let model = &shared.model;
        let settled = catch_unwind(AssertUnwindSafe(|| model.score_triple(h, r, t)));
        shared.stats.record_settle(Class::Score, item.arrived);
        match settled {
            Ok(score) => {
                shared.stats.queries_served.fetch_add(1, Relaxed);
                item.ticket.fulfill(Reply::Score(score));
            }
            Err(payload) => {
                shared.stats.queries_failed.fetch_add(1, Relaxed);
                let why = format!("model panicked: {}", panic_message(payload));
                item.ticket.fail(ServeError::failed(why));
            }
        }
    }
}

/// One row block in flight on the crew (or a sub-crew lane): its batch and
/// queries, how many shard results are still outstanding, whether any
/// worker reported a model panic, and the landed shard buffers aligned
/// with the plan that dispatched it.
struct Inflight {
    batch: Batch,
    queries: Arc<Vec<(usize, usize)>>,
    /// Dispatch time — with the answer time, one `block_nanos` sample for
    /// the `retry_after` service-time estimate.
    started: Instant,
    outstanding: usize,
    model_panic: bool,
    results: Vec<Option<Vec<f32>>>,
}

/// Fan one row block out to the crew slice `plan` (workers
/// `base .. base + plan.len()`), taking one free buffer per worker from
/// the double-buffered `pool`. On a hung-up crew the batch is failed and
/// the engine poisoned; the in-flight record is still returned whenever
/// any job landed, so the caller's collection loop recycles the buffers of
/// jobs that did go out.
#[allow(clippy::too_many_arguments)] // dispatcher wiring: every argument is a distinct lane resource
fn dispatch_block(
    shared: &Shared,
    dir: Direction,
    mut batch: Batch,
    plan: &[WorkerShard],
    base: usize,
    lane: usize,
    senders: &[Sender<WorkerMsg>],
    pool: &mut [Vec<Vec<f32>>],
) -> Option<Inflight> {
    let queries: Arc<Vec<(usize, usize)>> =
        Arc::new(batch.iter().map(|item| item.request.query()).collect());
    let mut outstanding = 0;
    let mut hangup = false;
    for (i, shard) in plan.iter().enumerate() {
        let w = base + i;
        let job = Job {
            dir,
            queries: Arc::clone(&queries),
            shard: shard.clone(),
            lane,
            out: pool[w].pop().expect("free worker buffer in pool"),
        };
        if senders[w].send(WorkerMsg::Job(job)).is_ok() {
            outstanding += 1;
        } else {
            // A worker can only be gone if the crew is already tearing
            // down; its buffer went with the failed send — restore depth.
            hangup = true;
            pool[w].push(Vec::new());
        }
    }
    if hangup {
        let why = "worker crew hung up".to_string();
        fail_batch(shared, &mut batch, &why);
        poison(shared, &why);
    }
    (outstanding > 0).then(|| Inflight {
        batch,
        queries,
        started: Instant::now(),
        outstanding,
        model_panic: false,
        results: (0..plan.len()).map(|_| None).collect(),
    })
}

/// Route done-channel results into `block` until every outstanding shard
/// has landed, counting a lead-idle transition if the dispatcher has to
/// block with nothing left to answer. Returns `false` if the done channel
/// hung up (the crew is gone).
fn collect_block(
    shared: &Shared,
    block: &mut Inflight,
    base: usize,
    done: &Receiver<WorkerDone>,
) -> bool {
    let mut waited = false;
    while block.outstanding > 0 {
        let msg = match done.try_recv() {
            Ok(msg) => Ok(msg),
            Err(TryRecvError::Empty) => {
                if !waited {
                    waited = true;
                    shared.stats.lead_idle.fetch_add(1, Relaxed);
                }
                done.recv().map_err(|_| ())
            }
            Err(TryRecvError::Disconnected) => Err(()),
        };
        match msg {
            Ok(WorkerDone { worker, out, .. }) => {
                block.outstanding -= 1;
                match out {
                    Ok(buf) => block.results[worker - base] = Some(buf),
                    Err(_why) => block.model_panic = true,
                }
            }
            Err(()) => return false,
        }
    }
    true
}

/// Return a finished block's shard buffers to the double-buffered pool.
/// Slots that lost their buffer (a panicking worker drops its output, a
/// failed send loses the job) get a fresh one, keeping every worker's
/// stack at depth two.
fn release_results(results: &mut [Option<Vec<f32>>], base: usize, pool: &mut [Vec<Vec<f32>>]) {
    for (i, slot) in results.iter_mut().enumerate() {
        pool[base + i].push(slot.take().unwrap_or_default());
    }
}

/// Stitch one fully-collected block and answer its tickets (or isolate a
/// model panic through the per-query reference path), recycling the shard
/// buffers. A batch already emptied by the hangup path only recycles.
#[allow(clippy::too_many_arguments)] // dispatcher wiring: every argument is a distinct lane resource
fn answer_inflight(
    shared: &Shared,
    mut block: Inflight,
    dir: Direction,
    plan: &[WorkerShard],
    base: usize,
    pool: &mut [Vec<Vec<f32>>],
    stitched: &mut Vec<f32>,
    topk: &mut Vec<(usize, f32)>,
) {
    if block.batch.is_empty() {
        release_results(&mut block.results, base, pool);
        return;
    }
    if block.model_panic {
        release_results(&mut block.results, base, pool);
        answer_block_isolating(shared, dir, block.batch);
        return;
    }
    stitch(plan, &block.results, block.queries.len(), shared.n_entities, stitched);
    release_results(&mut block.results, base, pool);
    // One dispatch→answered service-time sample for the retry_after hint.
    let service = u64::try_from(block.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    shared.stats.block_nanos.fetch_add(service, Relaxed);
    // Count before fulfilling: the ticket lock orders this store before
    // any client that has seen its answer can read the stats.
    shared.stats.queries_served.fetch_add(block.batch.len() as u64, Relaxed);
    for (i, item) in block.batch.drain(..).enumerate() {
        let row = &stitched[i * shared.n_entities..(i + 1) * shared.n_entities];
        shared.stats.record_settle(Class::Row(dir), item.arrived);
        item.ticket.fulfill(answer(shared, &item.request, row, topk));
    }
}

/// Cut the next serialised row block if — and only if — the scheduling
/// policy would dispatch one *right now* without waiting: the oldest
/// class is a row class, its linger deadline (if any) has expired or its
/// block is full, and the split regime isn't due to take over. Anything
/// else returns `None` and lets the main loop's [`next_decision`] handle
/// waiting, lingering, splits, score batches and shutdown.
fn pop_serial_block(shared: &Shared, can_split: bool) -> Option<(Direction, Batch)> {
    let mut q = shared.queue.lock().expect("serve queue lock");
    if q.shutdown || q.poisoned.is_some() {
        return None;
    }
    let class = q.oldest_class()?;
    let Class::Row(dir) = class else { return None };
    if still_lingering(&q, class, shared) {
        return None;
    }
    if can_split && q.queue(Class::Row(dir.opposite())).len > 0 {
        return None;
    }
    let batch = q.pop_block(class, shared.block, shared.deadline, &shared.stats);
    // An entirely expired cut chains no block — the main loop re-decides.
    (!batch.is_empty()).then_some((dir, batch))
}

/// Whether `class`'s under-filled block is still inside its linger window
/// — `false` the moment the front request would only expire if cut later,
/// so a deadline shorter than the linger budget always wins.
fn still_lingering(q: &QueueState, class: Class, shared: &Shared) -> bool {
    if shared.linger.is_zero() || q.queue(class).len >= shared.block {
        return false;
    }
    let Some(front) = q.queue(class).front() else { return false };
    let budget = shared.deadline.map_or(shared.linger, |d| shared.linger.min(d));
    front.arrived.elapsed() < budget
}

/// The serialised regime, pipelined: the full crew scores one block at a
/// time, but the dispatch runs two deep — the moment block `N`'s shards
/// land, block `N+1` (when [`pop_serial_block`] can cut one) is handed to
/// the crew *before* block `N` is stitched and answered, so the crew
/// scores `N+1` while the dispatcher converts `N`. Returns to the main
/// loop whenever the policy wouldn't chain another immediate row block.
/// A model panic falls back to per-query isolation; a hung-up crew
/// poisons the engine.
#[allow(clippy::too_many_arguments)] // internal: mirrors the dispatcher's shared-state layout
fn run_serial_regime(
    shared: &Shared,
    dir: Direction,
    batch: Batch,
    plan: &[WorkerShard],
    can_split: bool,
    senders: &[Sender<WorkerMsg>],
    done: &Receiver<WorkerDone>,
    pool: &mut [Vec<Vec<f32>>],
    stitched: &mut Vec<f32>,
    topk: &mut Vec<(usize, f32)>,
) {
    shared.stats.record_block(batch.len(), false);
    let Some(mut current) = dispatch_block(shared, dir, batch, plan, 0, 0, senders, pool) else {
        return; // crew already gone: batch failed, engine poisoned
    };
    let mut dir = dir;
    loop {
        if !collect_block(shared, &mut current, 0, done) {
            let why = "worker crew hung up".to_string();
            fail_batch(shared, &mut current.batch, &why);
            release_results(&mut current.results, 0, pool);
            poison(shared, &why);
            return;
        }
        // Pipeline: hand the crew its next block before answering this
        // one, so scoring N+1 overlaps the stitching/ranking of N.
        let next = match pop_serial_block(shared, can_split) {
            Some((next_dir, next_batch)) => {
                shared.stats.record_block(next_batch.len(), false);
                shared.stats.blocks_overlapped.fetch_add(1, Relaxed);
                dispatch_block(shared, next_dir, next_batch, plan, 0, 0, senders, pool)
                    .map(|inflight| (next_dir, inflight))
            }
            None => {
                shared.stats.crew_idle.fetch_add(1, Relaxed);
                None
            }
        };
        answer_inflight(shared, current, dir, plan, 0, pool, stitched, topk);
        match next {
            Some((next_dir, inflight)) => {
                dir = next_dir;
                current = inflight;
            }
            None => return,
        }
    }
}

/// Cut and dispatch a new block for one split-regime lane if the policy
/// allows it right now. A lane only cuts while there is genuinely
/// dual-direction work (`other_inflight`, or the opposite queue
/// non-empty): once one direction runs dry, the regime winds down and
/// hands the surviving backlog back to the serialised loop's *full* crew
/// instead of draining it at half throughput. The linger budget applies
/// here too — an under-filled lane block inside its deadline stays queued
/// — but without a timed wait: deferred cuts are re-examined at the next
/// lane event, and if both lanes end up deferred the regime exits to the
/// main loop, whose linger wait is a proper timed sleep.
#[allow(clippy::too_many_arguments)] // internal: mirrors the dispatcher's shared-state layout
fn refill_lane(
    shared: &Shared,
    dir: Direction,
    other_inflight: bool,
    plan: &[WorkerShard],
    base: usize,
    lane: usize,
    senders: &[Sender<WorkerMsg>],
    pool: &mut [Vec<Vec<f32>>],
) -> Option<Inflight> {
    let batch = {
        let mut q = shared.queue.lock().expect("serve queue lock");
        let dual = other_inflight || q.queue(Class::Row(dir.opposite())).len > 0;
        if q.shutdown
            || q.poisoned.is_some()
            || !dual
            || still_lingering(&q, Class::Row(dir), shared)
        {
            return None;
        }
        q.pop_block(Class::Row(dir), shared.block, shared.deadline, &shared.stats)
    };
    if batch.is_empty() {
        return None;
    }
    shared.stats.record_block(batch.len(), true);
    dispatch_block(shared, dir, batch, plan, base, lane, senders, pool)
}

/// The dual-direction draining regime: two sub-crews, one lane per
/// direction, each lane re-cutting a new block the moment its previous one
/// has *scored* — the refill is dispatched before the finished block is
/// stitched and answered, so a lane's sub-crew scores block `N+1` while
/// the dispatcher converts its block `N`, and a backlog in one direction
/// never head-of-line-blocks the other. Triple-score requests are
/// answered inline between lane events. Returns to the serialised loop
/// once both directions run dry (or on shutdown, leaving queued work to
/// the main loop's shutdown path).
#[allow(clippy::too_many_arguments)] // dispatcher wiring: every argument is a distinct lane resource
fn run_split_regime(
    shared: &Shared,
    plan_a: &[WorkerShard],
    plan_b: &[WorkerShard],
    senders: &[Sender<WorkerMsg>],
    done: &Receiver<WorkerDone>,
    pool: &mut [Vec<Vec<f32>>],
    stitched: &mut [Vec<f32>; 2],
    topk: &mut [Vec<(usize, f32)>; 2],
) {
    // Lane 0 drains tails on workers 0..plan_a.len(); lane 1 drains heads
    // on workers half.. — the `split_plan` layout.
    let half = senders.len() / 2;
    let lanes = [(Direction::Tails, plan_a, 0usize), (Direction::Heads, plan_b, half)];
    let mut inflight: [Option<Inflight>; 2] = [None, None];
    loop {
        // Triple scores need no crew: answer whatever queued, so they are
        // never starved by a long dual-direction drain.
        loop {
            let batch = {
                let mut q = shared.queue.lock().expect("serve queue lock");
                q.pop_block(Class::Score, shared.block, shared.deadline, &shared.stats)
            };
            if batch.is_empty() {
                break;
            }
            answer_scores(shared, batch);
        }
        // Refill idle lanes (unless shutting down or poisoned — the main
        // loop handles those once in-flight work lands).
        for (lane, &(dir, plan, base)) in lanes.iter().enumerate() {
            if inflight[lane].is_some() {
                continue;
            }
            let other = inflight[1 - lane].is_some();
            inflight[lane] = refill_lane(shared, dir, other, plan, base, lane, senders, pool);
        }
        if inflight.iter().all(Option::is_none) {
            return;
        }
        // Wait for one worker result and route it to its lane, counting a
        // lead-idle transition when the dispatcher has nothing to answer.
        let msg = match done.try_recv() {
            Ok(msg) => Ok(msg),
            Err(TryRecvError::Empty) => {
                shared.stats.lead_idle.fetch_add(1, Relaxed);
                done.recv().map_err(|_| ())
            }
            Err(TryRecvError::Disconnected) => Err(()),
        };
        match msg {
            Ok(WorkerDone { worker, lane, out }) => {
                let finished = match &mut inflight[lane] {
                    Some(block) => {
                        block.outstanding -= 1;
                        match out {
                            Ok(buf) => {
                                let base = lanes[lane].2;
                                block.results[worker - base] = Some(buf);
                            }
                            Err(_why) => block.model_panic = true,
                        }
                        block.outstanding == 0
                    }
                    None => {
                        // Lane already failed by the hangup path: recycle.
                        pool[worker].push(out.unwrap_or_default());
                        false
                    }
                };
                if finished {
                    let block = inflight[lane].take().expect("finished lane has a block");
                    let (dir, plan, base) = lanes[lane];
                    // Pipeline: refill this lane *before* stitching and
                    // answering, so the sub-crew scores its next block
                    // while the dispatcher converts this one.
                    let other = inflight[1 - lane].is_some();
                    inflight[lane] =
                        refill_lane(shared, dir, other, plan, base, lane, senders, pool);
                    if inflight[lane].is_some() {
                        shared.stats.blocks_overlapped.fetch_add(1, Relaxed);
                    } else {
                        shared.stats.crew_idle.fetch_add(1, Relaxed);
                    }
                    answer_inflight(
                        shared,
                        block,
                        dir,
                        plan,
                        base,
                        pool,
                        &mut stitched[lane],
                        &mut topk[lane],
                    );
                }
            }
            Err(()) => {
                // Every worker hung up mid-flight: fail both lanes and
                // poison.
                let why = "worker crew hung up".to_string();
                for (lane, block) in inflight.iter_mut().enumerate() {
                    if let Some(mut block) = block.take() {
                        fail_batch(shared, &mut block.batch, &why);
                        release_results(&mut block.results, lanes[lane].2, pool);
                    }
                }
                poison(shared, &why);
                return;
            }
        }
    }
}

/// A worker panicked while scoring this block: isolate the failure by
/// rescoring each request alone through the per-query reference path
/// (bit-identical to the batched path by the [`BatchScorer`] contract).
/// Only requests whose own query panics fail — with the model's original
/// message — and every other request is answered; the engine stays
/// healthy.
fn answer_block_isolating(shared: &Shared, dir: Direction, mut batch: Batch) {
    let mut row = vec![0.0f32; shared.n_entities];
    // Failure path: a fresh top-k scratch per block is fine, but it is
    // still reused across the batch's requests.
    let mut topk: Vec<(usize, f32)> = Vec::new();
    for item in batch.drain(..) {
        let result = catch_unwind(AssertUnwindSafe(|| {
            let (first, second) = item.request.query();
            match dir {
                Direction::Tails => shared.model.score_tails(first, second, &mut row),
                Direction::Heads => shared.model.score_heads(first, second, &mut row),
            }
            answer(shared, &item.request, &row, &mut topk)
        }));
        shared.stats.record_settle(Class::Row(dir), item.arrived);
        match result {
            Ok(reply) => {
                shared.stats.queries_served.fetch_add(1, Relaxed);
                item.ticket.fulfill(reply);
            }
            Err(payload) => {
                shared.stats.queries_failed.fetch_add(1, Relaxed);
                let why = format!("model panicked: {}", panic_message(payload));
                item.ticket.fail(ServeError::failed(why));
            }
        }
    }
}

/// Fail every ticket of a batch with `why` (counted before failing, so a
/// client that saw its failure also sees it in the stats).
fn fail_batch(shared: &Shared, batch: &mut Batch, why: &str) {
    shared.stats.queries_failed.fetch_add(batch.len() as u64, Relaxed);
    for item in batch.drain(..) {
        shared.stats.record_settle(item.request.class(), item.arrived);
        item.ticket.fail(ServeError::failed(why));
    }
}

/// Copy each worker's compact shard block back into full-width score rows.
/// Entity shards are column ranges, query shards are row ranges; both are
/// bit-identical slices of the reference row, so `full` ends up exactly as
/// the per-query path would have written it. `results` is the in-flight
/// block's landed buffers, aligned with `plan`.
fn stitch(
    plan: &[WorkerShard],
    results: &[Option<Vec<f32>>],
    block_len: usize,
    n_entities: usize,
    full: &mut Vec<f32>,
) {
    full.resize(block_len * n_entities, 0.0);
    for (w, shard) in plan.iter().enumerate() {
        let buf = results[w].as_ref().expect("worker buffer returned");
        match shard {
            WorkerShard::Entities(range) => {
                let width = range.len();
                for q in 0..block_len {
                    full[q * n_entities + range.start..q * n_entities + range.end]
                        .copy_from_slice(&buf[q * width..(q + 1) * width]);
                }
            }
            WorkerShard::Queries { .. } => {
                let rows = shard.rows(block_len);
                full[rows.start * n_entities..rows.end * n_entities]
                    .copy_from_slice(&buf[..rows.len() * n_entities]);
            }
        }
    }
}

/// Answer one row request from its stitched full-width score row with the
/// shared per-query primitives. `topk` is the caller's reusable selection
/// scratch ([`top_k_into`] grows it to `n_entities` pairs once, then
/// steady-state top-k answers allocate only the `k`-entry reply itself) —
/// the dispatcher keeps one per lane so concurrent lanes never contend.
fn answer(shared: &Shared, request: &Request, row: &[f32], topk: &mut Vec<(usize, f32)>) -> Reply {
    match *request {
        Request::Rank { dir: Direction::Tails, h, r, t } => {
            let known = shared.filter.tails(EntityId(h as u32), RelationId(r as u32));
            Reply::Rank(filtered_rank(row, t, known))
        }
        Request::Rank { dir: Direction::Heads, h, r, t } => {
            let known = shared.filter.heads(RelationId(r as u32), EntityId(t as u32));
            Reply::Rank(filtered_rank(row, h, known))
        }
        Request::TopK { k, .. } => {
            top_k_into(row, k, topk);
            Reply::TopK(topk.clone())
        }
        Request::Score { .. } => unreachable!("score requests never reach the row path"),
    }
}

/// Permanently fail the engine: every pending and future request gets
/// `why`. Reserved for infrastructure failures (hung-up crew, dispatcher
/// panic) — model panics are isolated per request instead.
fn poison(shared: &Shared, why: &str) {
    let mut q = shared.queue.lock().expect("serve queue lock");
    q.poisoned.get_or_insert_with(|| why.to_string());
    q.drain_fail(why, &shared.stats);
}
